// Freeenergy runs a Bennett-Acceptance-Ratio free-energy perturbation
// project — the second plugin the paper ships — across a chain of λ windows
// on a distributed fabric, sampling until the total standard error drops
// below the user's target (the paper's stop criterion), and compares the
// estimate against the analytically exact answer.
//
//	go run ./examples/freeenergy [-deltaf 3.0] [-target 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	copernicus "copernicus"
)

func main() {
	deltaf := flag.Float64("deltaf", 3.0, "exact ΔF of the synthetic perturbation (kT)")
	target := flag.Float64("target", 0.05, "target total standard error (kT)")
	windows := flag.Int("windows", 5, "lambda windows")
	flag.Parse()

	params := copernicus.DefaultBARParams()
	params.Offset = *deltaf
	params.TargetStdErr = *target
	params.Windows = *windows

	fmt.Printf("freeenergy: %d λ-windows, exact ΔF = %.3f kT, target error ±%.3f kT\n",
		params.Windows, params.Offset, params.TargetStdErr)

	res, err := copernicus.RunBAR(params, copernicus.FabricConfig{
		Servers:          1,
		WorkersPerServer: 4,
	}, 10*time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %10s %10s %10s\n", "window", "ΔF/kT", "±err", "overlap")
	for _, w := range res.Windows {
		fmt.Printf("λ %.2f → %.2f     %10.4f %10.4f %10.3f\n",
			w.LambdaFrom, w.LambdaTo, w.DeltaF, w.StdErr, w.Overlap)
	}
	fmt.Printf("\ntotal: ΔF = %.4f ± %.4f kT after %d rounds (%d samples)\n",
		res.Total.DeltaF, res.Total.StdErr, res.Rounds, res.SamplesUsed)
	fmt.Printf("exact: ΔF = %.4f kT (deviation %+.4f kT)\n",
		res.ExactDeltaF, res.Total.DeltaF-res.ExactDeltaF)
}
