// Scaling reproduces the paper's performance study (Figs 7–9) with the
// discrete-event simulation of the controller's activity — the same
// methodology the authors used: measure the single-simulation speedup
// curve, then simulate the command queue for every (total cores, cores per
// simulation) combination.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	copernicus "copernicus"
	"copernicus/internal/experiments"
)

func main() {
	base := copernicus.PaperScalingParams()
	ref, err := copernicus.ScalingReference(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaling: villin MSM command set, tres(1) = %.3g h (paper: 1.1e5 h)\n\n", ref)

	points, err := experiments.Fig7Points()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatFig7(points))
	fmt.Println(experiments.FormatFig8(points))
	fmt.Println(experiments.FormatFig9(points))

	// The paper's headline: 20,000 cores at 53% efficiency, ~10 h.
	p := base
	p.TotalCores = 20000
	p.CoresPerSim = 96
	r, err := copernicus.SimulateScaling(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("headline: 20,000 cores (96/sim): %.1f h at %.0f%% efficiency (paper: ~10 h, 53%%)\n",
		r.Hours, 100*copernicus.ScalingEfficiency(ref, 20000, r.Hours))
}
