// Quickstart: bring up an in-process Copernicus deployment (one project
// server, one relay server, four workers), submit a small adaptive-sampling
// project, watch its progress, and print the result — the whole §2
// architecture in about fifty lines of API use.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	copernicus "copernicus"
)

func main() {
	// A fabric is the Fig 1 topology in one process: server-0 holds the
	// project, server-1 relays for its workers, and every component speaks
	// the same wire protocol used over TLS in real deployments.
	fabric, err := copernicus.NewFabric(copernicus.FabricConfig{
		Servers:          2,
		WorkersPerServer: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fabric.Close()

	// A small adaptive MSM project: 3 unfolded starts × 4 trajectories,
	// 25-ns commands, 3 clustering generations.
	params := copernicus.DefaultMSMParams()
	params.NStarts = 3
	params.TasksPerStart = 4
	params.SegmentNs = 25
	params.FrameNs = 2.5
	params.SegmentsPerGen = 32
	params.Generations = 3
	params.Clusters = 80
	params.LagNs = 10
	params.PropagateNs = 1000

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := fabric.Submit(ctx, "quickstart", copernicus.MSMControllerName, &params); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quickstart: project submitted; polling status...")

	// Monitor over the wire, exactly as cpcctl does.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			st, err := fabric.Status(ctx, "quickstart")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  state=%-9s gen=%d queued=%-3d running=%-3d finished=%-4d  %s\n",
				st.State, st.Generation, st.Queued, st.Running, st.Finished, st.Note)
			if st.State != "running" {
				return
			}
			time.Sleep(500 * time.Millisecond)
		}
	}()

	st, err := fabric.Wait(ctx, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	<-done
	if st.State != "finished" {
		log.Fatalf("project ended in state %q: %s", st.State, st.Note)
	}

	var res copernicus.MSMResult
	if err := decode(st.Result, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquickstart: result")
	for _, g := range res.Generations {
		fmt.Printf("  generation %d: %5.0f ns sampled, min RMSD %.2f Å, %d ergodic states\n",
			g.Generation, g.SimulatedNs, g.MinRMSD, g.States)
	}
	fmt.Printf("  blind native-state prediction: %.2f Å from native\n", res.FinalTopStateRMSD)
	if res.FinalTopStateRMSD > 3.5 {
		fmt.Println("  (demo-scale sampling; run examples/villinfold -scale paper for the converged model)")
	}
	if res.THalfOK {
		fmt.Printf("  folding t1/2 from the MSM: %.0f ns\n", res.THalfNs)
	}
	fmt.Printf("  overlay traffic: %d bytes across %d connections\n",
		fabric.Net.BytesSent(), fabric.Net.Conns())
}

// decode unwraps the gob-encoded project result.
func decode(data []byte, v any) error {
	return copernicus.UnmarshalResult(data, v)
}
