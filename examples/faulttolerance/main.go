// Faulttolerance demonstrates §2.3 of the paper live: a worker takes a
// long-running command, streams checkpoints with its heartbeats, and then
// dies silently. The server notices the missed heartbeats (2× the
// interval), requeues the command *with the last checkpoint*, and a second
// worker picks it up and finishes from where the first one stopped — no
// work lost. This is the property that let Copernicus "schedule runs even
// for very short periods of time on unreliable systems, e.g. during cluster
// burn-in, and still do useful work".
//
// It also shows the plugin API: the project is driven by a custom
// controller defined right here in the example.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/server"
	"copernicus/internal/wire"
	"copernicus/internal/worker"
)

// slowEngine counts to Total in Step-sized increments, sleeping between
// them, checkpointing its progress — a stand-in for a multi-hour MD command.
type slowEngine struct{ stepDelay time.Duration }

type slowCheckpoint struct{ Done int }

func (e *slowEngine) Name() string { return "slow-sim" }

func (e *slowEngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	const total = 20
	state := slowCheckpoint{}
	if len(spec.Checkpoint) > 0 {
		if err := wire.Unmarshal(spec.Checkpoint, &state); err != nil {
			return nil, err
		}
		fmt.Printf("    engine: resuming from checkpoint at step %d/%d\n", state.Done, total)
	}
	for state.Done < total {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(e.stepDelay):
		}
		state.Done++
		if progress != nil {
			if ck, err := wire.Marshal(&state); err == nil {
				progress(ck)
			}
		}
	}
	return wire.Marshal(&state)
}

// oneShotController submits a single slow command and finishes the project
// when its result arrives — a minimal custom plugin.
type oneShotController struct{ done chan slowCheckpoint }

func (c *oneShotController) Name() string { return "one-shot" }

func (c *oneShotController) Start(ctx controller.Context, _ []byte) error {
	return ctx.Submit(wire.CommandSpec{
		ID: "the-command", Type: "slow-sim", MinCores: 1, MaxCores: 1,
	})
}

func (c *oneShotController) CommandFinished(ctx controller.Context, res *wire.CommandResult) error {
	var state slowCheckpoint
	if err := wire.Unmarshal(res.Output, &state); err != nil {
		return err
	}
	c.done <- state
	ctx.Finish(res.Output)
	return nil
}

func (c *oneShotController) CommandFailed(ctx controller.Context, cmd wire.CommandSpec, reason string) error {
	ctx.Fail(fmt.Errorf("command lost terminally: %s", reason))
	return nil
}

func main() {
	net := overlay.NewMemNetwork()
	ctrl := &oneShotController{done: make(chan slowCheckpoint, 1)}
	reg := controller.NewRegistry()
	reg.Register("one-shot", func() controller.Controller { return ctrl })

	// Server with a fast heartbeat so the demo fails over in seconds
	// (production default is 120 s).
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		log.Fatal(err)
	}
	srv := server.New(sNode, reg, server.Config{
		HeartbeatInterval: 300 * time.Millisecond,
		Obs:               obs.NewWith(obs.Options{LogWriter: os.Stdout, LogLevel: obs.LevelInfo}),
	})
	defer srv.Close()
	defer sNode.Close()

	startWorker := func(seed uint64, name string) (*worker.Worker, context.CancelFunc) {
		n := overlay.NewNode(overlay.NewIdentityFromSeed(seed), overlay.NewTrustStore(), net.Transport())
		if _, err := n.ConnectPeer("srv"); err != nil {
			log.Fatal(err)
		}
		wk, err := worker.New(n, sNode.ID(), []engines.Engine{&slowEngine{stepDelay: 100 * time.Millisecond}},
			worker.Config{PollInterval: 50 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() { _ = wk.Run(ctx) }()
		fmt.Printf("%s: worker %s online\n", name, wk.ID()[:8])
		return wk, cancel
	}

	// Submit the project, then bring the flaky worker up.
	payload, err := wire.Marshal(&wire.ProjectSubmit{Name: "burnin", Controller: "one-shot"})
	if err != nil {
		log.Fatal(err)
	}
	client := overlay.NewNode(overlay.NewIdentityFromSeed(99), overlay.NewTrustStore(), net.Transport())
	defer client.Close()
	if _, err := client.ConnectPeer("srv"); err != nil {
		log.Fatal(err)
	}
	subCtx, cancelSub := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelSub()
	if _, err := client.Request(subCtx, sNode.ID(), wire.MsgSubmit, payload); err != nil {
		log.Fatal(err)
	}
	fmt.Println("project submitted: one 20-step command (~2 s of compute)")

	_, killFlaky := startWorker(2, "flaky ")
	// Let it do roughly half the work, then crash it mid-command.
	time.Sleep(1100 * time.Millisecond)
	fmt.Println("flaky : SIGKILL (no goodbye, heartbeats just stop)")
	killFlaky()

	// The server declares the worker dead after 2×300 ms without
	// heartbeats and requeues from the last checkpoint.
	_, stopHealthy := startWorker(3, "healthy")
	defer stopHealthy()

	select {
	case state := <-ctrl.done:
		st, _ := srv.Project("burnin")
		fmt.Printf("project %s: command completed at step %d/20 — the resumed worker\n",
			st.State, state.Done)
		fmt.Println("finished from the dead worker's checkpoint instead of restarting.")
	case <-time.After(30 * time.Second):
		log.Fatal("failover did not complete")
	}
}
