// Villinfold runs the paper's §3 experiment end-to-end: adaptive Markov-
// State-Model sampling of the villin folding surrogate — 9 unfolded starts
// × 25 trajectories, 50-ns commands, periodic clustering with adaptive
// respawning — and prints the generation log plus the Figs 2–5 analyses.
//
//	go run ./examples/villinfold              # reduced scale (seconds)
//	go run ./examples/villinfold -scale paper # full protocol (minutes)
package main

import (
	"flag"
	"fmt"
	"log"

	"copernicus/internal/experiments"
)

func main() {
	scale := flag.String("scale", "small", "small or paper")
	workers := flag.Int("workers", 6, "fabric workers")
	flag.Parse()

	sc := experiments.ScaleSmall
	if *scale == "paper" {
		sc = experiments.ScalePaper
	}
	p := experiments.VillinParams(sc)
	fmt.Printf("villinfold: %d starts × %d tasks, %g-ns segments, %d generations, %d clusters, %s weighting\n",
		p.NStarts, p.TasksPerStart, p.SegmentNs, p.Generations, p.Clusters, p.Weighting)

	res, err := experiments.RunVillin(sc, *workers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(experiments.Fig2(res))
	fmt.Println(experiments.Fig3(res))
	fmt.Println(experiments.Fig4(res))
	fmt.Println(experiments.Fig5(res))
}
