// Command cpcserver runs a Copernicus server node over TLS: it listens for
// workers, clients and peer servers, holds projects, and relays work. All
// servers run identical code (the paper's symmetric architecture); a node
// becomes a project server simply by receiving a submission.
//
// Usage:
//
//	cpcserver -listen :7770 [-peer host:port ...] [-seed N] [-fs-token T]
//
// With -seed the node identity is deterministic (useful for scripted
// overlays); otherwise a fresh Ed25519 identity is generated and its node ID
// printed so operators can exchange keys. Without -trust entries the server
// accepts any peer (bootstrap mode), matching the paper's "open — but
// authenticated" spectrum.
//
// Replication: a -state-dir server started with -replicate accepts a warm
// standby and ships it every WAL record; a server started with
// -standby-of <addr> runs as that primary's standby, holding a replayable
// copy and promoting itself when the heartbeat lease lapses (see
// docs/PERSISTENCE.md, "Replication & failover"). Either node resumes
// whatever role its durable replica metadata last recorded, so a fenced
// ex-primary restarts as a standby without operator intervention.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/server"
	"copernicus/internal/store"
	"copernicus/internal/store/replica"
)

func main() {
	listen := flag.String("listen", ":7770", "address to listen on")
	peers := flag.String("peer", "", "comma-separated peer server addresses to connect to")
	seed := flag.Uint64("seed", 0, "deterministic identity seed (0 = random identity)")
	heartbeat := flag.Duration("heartbeat-interval", 120*time.Second, "worker heartbeat interval")
	flag.DurationVar(heartbeat, "heartbeat", 120*time.Second, "deprecated alias for -heartbeat-interval")
	relayTimeout := flag.Duration("relay-timeout", 0, "anycast work-search deadline per announce (0 = default 2s)")
	relayCooldown := flag.Duration("relay-cooldown", 0, "pause between fruitless work searches (0 = relay-timeout)")
	maxQueued := flag.Int("max-queued", 0, "global queued-command bound across all tenants; submits beyond it are shed (0 = unlimited)")
	starvationAge := flag.Duration("starvation-age", 0, "queued-command age that jumps fair-share order (0 = default 30s, negative disables)")
	preemptAge := flag.Duration("preempt-age", 0, "tenant starvation age that triggers checkpoint-boundary preemption of the dominant tenant (0 = disabled)")
	walSlowAppend := flag.Duration("wal-slow-append", 0, "WAL append-latency EWMA at which backpressure saturates and matching sheds (0 = default 100ms)")
	chaosCfg := chaos.RegisterFlags(flag.CommandLine)
	monitor := flag.String("monitor-addr", "", "HTTP monitoring address (e.g. :8080); empty disables")
	flag.StringVar(monitor, "monitor", "", "deprecated alias for -monitor-addr")
	metricsAddr := flag.String("metrics-addr", "", "standalone /metrics+/debug address (e.g. :9090); empty disables (the -monitor handler always includes them)")
	logLevel := flag.String("log-level", "", "log level: debug, info, warn, error, off (empty = off; -v = debug)")
	fsToken := flag.String("fs-token", "", "shared-filesystem token (enables by-path result exchange)")
	stateDir := flag.String("state-dir", "", "durable state directory (WAL + snapshots); empty keeps all project state in memory")
	fsyncInterval := flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit window: how long the WAL syncer waits for more appends before one shared fsync (0 = fsync each batch immediately)")
	snapshotEvery := flag.Int("snapshot-every", 512, "WAL records between snapshots (snapshots truncate the log; 0 disables automatic snapshots)")
	standbyOf := flag.String("standby-of", "", "primary server address to replicate from: run as its warm standby and promote on lease lapse (requires -state-dir)")
	replicate := flag.Bool("replicate", false, "accept a standby and ship it the WAL (requires -state-dir)")
	leaseInterval := flag.Duration("lease-interval", time.Second, "replication ship/heartbeat cadence")
	leaseTimeout := flag.Duration("lease-timeout", 0, "failover lease: contactless time before a standby promotes itself (0 = 5×lease-interval)")
	verbose := flag.Bool("v", false, "verbose logging (shorthand for -log-level debug)")
	flag.Parse()

	level := obs.LevelOff
	if *verbose {
		level = obs.LevelDebug
	}
	if *logLevel != "" {
		var err error
		if level, err = obs.ParseLevel(*logLevel); err != nil {
			log.Fatalf("-log-level: %v", err)
		}
	}
	o := obs.NewWith(obs.Options{LogWriter: os.Stderr, LogLevel: level})

	var id *overlay.Identity
	if *seed != 0 {
		id = overlay.NewIdentityFromSeed(*seed)
	} else {
		var err error
		id, err = overlay.NewIdentity()
		if err != nil {
			log.Fatalf("generating identity: %v", err)
		}
	}
	trust := overlay.NewTrustStore()
	var tr overlay.Transport
	tr, err := overlay.NewTLSTransport(id, trust)
	if err != nil {
		log.Fatalf("tls transport: %v", err)
	}
	tr = chaos.Wrap(tr, *chaosCfg, o)
	node := overlay.NewNode(id, trust, tr)
	node.Obs = o
	if err := node.Listen(*listen); err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}

	// Replication role. Flags pick the configured role; durable replica
	// metadata in the state directory overrides it, so a node that was
	// promoted or fenced while its operator's scripts still said otherwise
	// comes back in the role the protocol left it in.
	role := ""
	if *standbyOf != "" {
		role = store.RoleStandby
	} else if *replicate {
		role = store.RolePrimary
	}
	if role != "" {
		if *stateDir == "" {
			log.Fatalf("-standby-of/-replicate require -state-dir")
		}
		meta, err := store.LoadReplicaMeta(*stateDir)
		if err != nil {
			log.Fatalf("reading replica metadata in %s: %v", *stateDir, err)
		}
		if meta != nil && meta.Role != "" {
			role = meta.Role
		}
	}

	storeOptions := func() store.Options {
		return store.Options{
			Dir:           *stateDir,
			FsyncInterval: *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
			Obs:           o,
		}
	}
	serverConfig := func(st *store.Store) server.Config {
		return server.Config{
			HeartbeatInterval: *heartbeat,
			RelayTimeout:      *relayTimeout,
			RelayCooldown:     *relayCooldown,
			FSToken:           *fsToken,
			MaxQueuedTotal:    *maxQueued,
			StarvationAge:     *starvationAge,
			PreemptAge:        *preemptAge,
			WALSlowAppend:     *walSlowAppend,
			Store:             st,
			Obs:               o,
		}
	}

	// A standby serves as a storeless relay until promoted — its replica
	// peer owns the state directory and feeds it through recovery at
	// promotion time.
	var st *store.Store
	if *stateDir != "" && role != store.RoleStandby {
		st, err = store.Open(storeOptions())
		if err != nil {
			log.Fatalf("opening state dir %s: %v", *stateDir, err)
		}
		rec := st.Recovered()
		if rec.Snapshot != nil || len(rec.Records) > 0 {
			fmt.Printf("cpcserver: recovering state from %s (%d WAL records)\n", *stateDir, len(rec.Records))
		}
	}
	registry := controller.DefaultRegistry()
	var smu sync.Mutex
	srv := server.New(node, registry, serverConfig(st))
	currentServer := func() *server.Server {
		smu.Lock()
		defer smu.Unlock()
		return srv
	}
	defer node.Close()
	defer func() {
		smu.Lock()
		defer smu.Unlock()
		srv.Close()
		if st != nil {
			st.Close()
		}
	}()

	var peer *replica.Peer
	if role != "" {
		cfg := replica.Config{
			Dir:          *stateDir,
			Role:         role,
			SelfAddr:     *listen,
			Interval:     *leaseInterval,
			LeaseTimeout: *leaseTimeout,
			StoreOptions: storeOptions(),
			Obs:          o,
			Hooks: replica.Hooks{
				Promote: func(recovered *store.Store, epoch uint64) ([]string, error) {
					smu.Lock()
					defer smu.Unlock()
					srv.Close()
					st = recovered
					srv = server.New(node, registry, serverConfig(st))
					fmt.Printf("cpcserver: promoted to primary (epoch %d), serving %d projects\n",
						epoch, len(srv.ProjectNames()))
					return srv.ProjectNames(), nil
				},
				Demote: func(epoch uint64, newPrimaryID string) error {
					smu.Lock()
					defer smu.Unlock()
					srv.Close()
					if st != nil {
						st.Close()
						st = nil
					}
					srv = server.New(node, registry, serverConfig(nil))
					fmt.Printf("cpcserver: fenced at epoch %d; demoted to standby of %s\n",
						epoch, newPrimaryID)
					return nil
				},
			},
		}
		if role == store.RoleStandby {
			if *standbyOf == "" {
				log.Fatalf("replica metadata says standby but no -standby-of address given")
			}
			primaryID, err := node.ConnectPeer(*standbyOf)
			if err != nil {
				log.Fatalf("connecting to primary %s: %v", *standbyOf, err)
			}
			cfg.PeerID = primaryID
			cfg.PeerAddr = *standbyOf
			fmt.Printf("cpcserver: standby of %s (%s)\n", *standbyOf, primaryID)
		}
		// A primary learns its standby's ID from the standby's join.
		if peer, err = replica.NewPeer(node, st, cfg); err != nil {
			log.Fatalf("starting replication peer: %v", err)
		}
		defer peer.Close()
	}

	fmt.Printf("cpcserver: node %s listening on %s\n", node.ID(), *listen)
	if *monitor != "" {
		go func() {
			fmt.Printf("cpcserver: monitoring interface on http://%s/\n", *monitor)
			handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				currentServer().MonitorHandler().ServeHTTP(w, r)
			})
			if err := http.ListenAndServe(*monitor, handler); err != nil {
				log.Printf("cpcserver: monitor: %v", err)
			}
		}()
	}
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("cpcserver: metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, o.Handler()); err != nil {
				log.Printf("cpcserver: metrics: %v", err)
			}
		}()
	}
	if *peers != "" {
		for _, addr := range strings.Split(*peers, ",") {
			peerID, err := node.ConnectPeer(strings.TrimSpace(addr))
			if err != nil {
				log.Fatalf("connecting to peer %s: %v", addr, err)
			}
			fmt.Printf("cpcserver: connected to peer %s (%s)\n", addr, peerID)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("cpcserver: shutting down")
}
