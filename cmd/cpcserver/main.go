// Command cpcserver runs a Copernicus server node over TLS: it listens for
// workers, clients and peer servers, holds projects, and relays work. All
// servers run identical code (the paper's symmetric architecture); a node
// becomes a project server simply by receiving a submission.
//
// Usage:
//
//	cpcserver -listen :7770 [-peer host:port ...] [-seed N] [-fs-token T]
//
// With -seed the node identity is deterministic (useful for scripted
// overlays); otherwise a fresh Ed25519 identity is generated and its node ID
// printed so operators can exchange keys. Without -trust entries the server
// accepts any peer (bootstrap mode), matching the paper's "open — but
// authenticated" spectrum.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/server"
	"copernicus/internal/store"
)

func main() {
	listen := flag.String("listen", ":7770", "address to listen on")
	peers := flag.String("peer", "", "comma-separated peer server addresses to connect to")
	seed := flag.Uint64("seed", 0, "deterministic identity seed (0 = random identity)")
	heartbeat := flag.Duration("heartbeat", 120*time.Second, "worker heartbeat interval")
	relayTimeout := flag.Duration("relay-timeout", 0, "anycast work-search deadline per announce (0 = default 2s)")
	relayCooldown := flag.Duration("relay-cooldown", 0, "pause between fruitless work searches (0 = relay-timeout)")
	chaosCfg := chaos.RegisterFlags(flag.CommandLine)
	monitor := flag.String("monitor", "", "HTTP monitoring address (e.g. :8080); empty disables")
	metricsAddr := flag.String("metrics-addr", "", "standalone /metrics+/debug address (e.g. :9090); empty disables (the -monitor handler always includes them)")
	logLevel := flag.String("log-level", "", "log level: debug, info, warn, error, off (empty = off; -v = debug)")
	fsToken := flag.String("fs-token", "", "shared-filesystem token (enables by-path result exchange)")
	stateDir := flag.String("state-dir", "", "durable state directory (WAL + snapshots); empty keeps all project state in memory")
	fsyncInterval := flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit window: how long the WAL syncer waits for more appends before one shared fsync (0 = fsync each batch immediately)")
	snapshotEvery := flag.Int("snapshot-every", 512, "WAL records between snapshots (snapshots truncate the log; 0 disables automatic snapshots)")
	verbose := flag.Bool("v", false, "verbose logging (shorthand for -log-level debug)")
	flag.Parse()

	level := obs.LevelOff
	if *verbose {
		level = obs.LevelDebug
	}
	if *logLevel != "" {
		var err error
		if level, err = obs.ParseLevel(*logLevel); err != nil {
			log.Fatalf("-log-level: %v", err)
		}
	}
	o := obs.NewWith(obs.Options{LogWriter: os.Stderr, LogLevel: level})

	var id *overlay.Identity
	if *seed != 0 {
		id = overlay.NewIdentityFromSeed(*seed)
	} else {
		var err error
		id, err = overlay.NewIdentity()
		if err != nil {
			log.Fatalf("generating identity: %v", err)
		}
	}
	trust := overlay.NewTrustStore()
	var tr overlay.Transport
	tr, err := overlay.NewTLSTransport(id, trust)
	if err != nil {
		log.Fatalf("tls transport: %v", err)
	}
	tr = chaos.Wrap(tr, *chaosCfg, o)
	node := overlay.NewNode(id, trust, tr)
	node.Obs = o
	if err := node.Listen(*listen); err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	var st *store.Store
	if *stateDir != "" {
		st, err = store.Open(store.Options{
			Dir:           *stateDir,
			FsyncInterval: *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
			Obs:           o,
		})
		if err != nil {
			log.Fatalf("opening state dir %s: %v", *stateDir, err)
		}
		defer st.Close()
		rec := st.Recovered()
		if rec.Snapshot != nil || len(rec.Records) > 0 {
			fmt.Printf("cpcserver: recovering state from %s (%d WAL records)\n", *stateDir, len(rec.Records))
		}
	}
	srv := server.New(node, controller.DefaultRegistry(), server.Config{
		HeartbeatInterval: *heartbeat,
		RelayTimeout:      *relayTimeout,
		RelayCooldown:     *relayCooldown,
		FSToken:           *fsToken,
		Store:             st,
		Obs:               o,
	})
	defer srv.Close()
	defer node.Close()

	fmt.Printf("cpcserver: node %s listening on %s\n", node.ID(), *listen)
	if *monitor != "" {
		go func() {
			fmt.Printf("cpcserver: monitoring interface on http://%s/\n", *monitor)
			if err := http.ListenAndServe(*monitor, srv.MonitorHandler()); err != nil {
				log.Printf("cpcserver: monitor: %v", err)
			}
		}()
	}
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("cpcserver: metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, o.Handler()); err != nil {
				log.Printf("cpcserver: metrics: %v", err)
			}
		}()
	}
	if *peers != "" {
		for _, addr := range strings.Split(*peers, ",") {
			peerID, err := node.ConnectPeer(strings.TrimSpace(addr))
			if err != nil {
				log.Fatalf("connecting to peer %s: %v", addr, err)
			}
			fmt.Printf("cpcserver: connected to peer %s (%s)\n", addr, peerID)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("cpcserver: shutting down")
}
