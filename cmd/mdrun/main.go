// Command mdrun drives the classical MD engine standalone — the reproduction
// of the Gromacs binary the paper's workers execute. It builds a synthetic
// system (LJ fluid, flexible water box, or coarse-grained polymer), runs
// dynamics with the selected thermostat, and prints an energy log.
//
// Usage:
//
//	mdrun -system ljfluid -n 256 -steps 5000 -thermostat nose-hoover -temp 120
//	mdrun -system water -n 216 -steps 2000 -ranks 4    # message-passing mode
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"

	"copernicus/internal/md"
	"copernicus/internal/obs"
	"copernicus/internal/topology"
)

func main() {
	system := flag.String("system", "ljfluid", "system kind: ljfluid, water, polymer, peptide")
	n := flag.Int("n", 256, "atoms (ljfluid) / molecules (water) / beads (polymer)")
	density := flag.Float64("density", 8, "ljfluid number density, nm^-3")
	steps := flag.Int("steps", 5000, "integration steps")
	dt := flag.Float64("dt", 0.002, "timestep, ps")
	thermostat := flag.String("thermostat", "nose-hoover", "none, berendsen, langevin, nose-hoover")
	temp := flag.Float64("temp", 120, "target temperature, K")
	cutoff := flag.Float64("cutoff", 0.9, "non-bonded cutoff, nm")
	shards := flag.Int("shards", 0, "force-loop shards (thread level); 0 auto-sizes to all cores (runtime.NumCPU)")
	ranks := flag.Int("ranks", 0, "message-passing ranks; >0 selects the MPI-style driver")
	seed := flag.Uint64("seed", 1, "RNG seed")
	logEvery := flag.Int("log-every", 500, "energy log interval, steps")
	flag.IntVar(logEvery, "log", 500, "deprecated alias for -log-every")
	metricsAddr := flag.String("metrics-addr", "", "serve copernicus_md_* kernel metrics on this address (e.g. :9092); empty disables")
	flag.Parse()

	if *shards <= 0 {
		*shards = runtime.NumCPU()
	}
	if *metricsAddr != "" {
		o := obs.New()
		md.EnableMetrics(o)
		go func() {
			fmt.Printf("mdrun: metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, o.Handler()); err != nil {
				log.Printf("mdrun: metrics: %v", err)
			}
		}()
	}

	var sys *topology.System
	var err error
	switch *system {
	case "ljfluid":
		sys, err = topology.LJFluid(*n, *density, *seed)
	case "water":
		sys, err = topology.WaterBox(*n, *seed)
	case "polymer":
		sys, err = topology.PolymerChain(*n, *seed)
	case "peptide":
		sys, err = topology.Peptide(*n, *seed)
	default:
		log.Fatalf("mdrun: unknown system %q", *system)
	}
	if err != nil {
		log.Fatalf("mdrun: building system: %v", err)
	}

	cfg := md.DefaultConfig()
	cfg.Dt = *dt
	cfg.Cutoff = *cutoff
	cfg.Temperature = *temp
	cfg.Shards = *shards
	cfg.Seed = *seed
	switch *thermostat {
	case "none":
		cfg.Thermostat = md.NoThermostat
	case "berendsen":
		cfg.Thermostat = md.Berendsen
	case "langevin":
		cfg.Thermostat = md.Langevin
	case "nose-hoover":
		cfg.Thermostat = md.NoseHoover
	default:
		log.Fatalf("mdrun: unknown thermostat %q", *thermostat)
	}

	fmt.Printf("mdrun: %s, %d atoms, %d steps, dt=%g ps, thermostat=%s\n",
		*system, sys.Top.NAtoms(), *steps, *dt, cfg.Thermostat)

	if *ranks > 0 {
		sim, stats, err := md.RunRanks(sys, cfg, *ranks, *steps)
		if err != nil {
			log.Fatalf("mdrun: %v", err)
		}
		e := sim.Energies()
		fmt.Printf("ranks=%d  messages=%d  bytes=%d  bytes/step=%.0f\n",
			stats.Ranks, stats.MessagesSent, stats.BytesSent, stats.BytesPerStep)
		fmt.Printf("final: T=%.1f K  Epot=%.2f  Etot=%.2f kJ/mol\n",
			sim.Temperature(), e.Potential(), e.Total())
		return
	}

	sim, err := md.New(sys, cfg)
	if err != nil {
		log.Fatalf("mdrun: %v", err)
	}
	defer sim.Close()
	fmt.Printf("%10s %12s %12s %12s %10s\n", "step", "time/ps", "Epot", "Etot", "T/K")
	for done := 0; done < *steps; {
		chunk := *logEvery
		if done+chunk > *steps {
			chunk = *steps - done
		}
		if err := sim.Step(chunk); err != nil {
			log.Fatalf("mdrun: %v", err)
		}
		done += chunk
		e := sim.Energies()
		fmt.Printf("%10d %12.3f %12.3f %12.3f %10.1f\n",
			sim.StepCount(), sim.Time(), e.Potential(), e.Total(), sim.Temperature())
	}
}
