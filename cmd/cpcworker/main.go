// Command cpcworker runs a Copernicus worker: it connects to its nearest
// server over TLS, announces its resources and installed executables, and
// executes simulation commands until interrupted — the bootstrap flow of
// §2.3. Start one per batch-queue slot; the paper's pattern of submitting
// workers to a cluster's queue maps to launching this binary from the job
// script.
//
// Usage:
//
//	cpcworker -server head1:7770,head2:7770 [-cores N] [-platform smp]
//
// -server takes a comma-separated list: the worker homes on the first
// address that answers and re-homes round-robin through the rest when its
// home stops responding. -result-spool survives full partitions by spooling
// finished results to disk for later redelivery, and the -retry-* / -chaos-*
// flags expose the retry policy and fault-injection harness used by the
// chaos soak tests (see docs/ROBUSTNESS.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/engines"
	"copernicus/internal/md"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/retry"
	"copernicus/internal/worker"
)

func main() {
	serverList := flag.String("server", "127.0.0.1:7770", "comma-separated server addresses; first responder becomes home, the rest are re-home candidates")
	cores := flag.Int("cores", runtime.NumCPU(), "cores to announce; MD commands clamp their force-loop shards to this grant (payload Shards<=0 auto-sizes to it)")
	platform := flag.String("platform", "smp", "platform plugin name")
	poll := flag.Duration("poll", 2*time.Second, "idle re-announce interval")
	fsToken := flag.String("fs-token", "", "shared-filesystem token")
	spool := flag.String("spool-dir", "", "shared-filesystem spool directory")
	flag.StringVar(spool, "spool", "", "deprecated alias for -spool-dir")
	resultSpool := flag.String("result-spool-dir", "", "directory to spool undeliverable results for redelivery; empty disables")
	flag.StringVar(resultSpool, "result-spool", "", "deprecated alias for -result-spool-dir")
	ckptDir := flag.String("checkpoint-dir", "", "directory for local engine-checkpoint durability; a restarted worker resumes re-dispatched commands from here (empty disables)")
	retryAttempts := flag.Int("retry-attempts", 0, "max attempts per overlay request (0 = default)")
	retryBase := flag.Duration("retry-base-delay", 0, "initial retry backoff (0 = default)")
	retryMax := flag.Duration("retry-max-delay", 0, "backoff cap (0 = default)")
	retryPerAttempt := flag.Duration("retry-per-attempt", 0, "per-attempt request deadline (0 = default)")
	chaosCfg := chaos.RegisterFlags(flag.CommandLine)
	metricsAddr := flag.String("metrics-addr", "", "standalone /metrics+/debug address (e.g. :9091); empty disables")
	logLevel := flag.String("log-level", "", "log level: debug, info, warn, error, off (empty = off; -v = debug)")
	verbose := flag.Bool("v", false, "verbose logging (shorthand for -log-level debug)")
	flag.Parse()

	level := obs.LevelOff
	if *verbose {
		level = obs.LevelDebug
	}
	if *logLevel != "" {
		var perr error
		if level, perr = obs.ParseLevel(*logLevel); perr != nil {
			log.Fatalf("-log-level: %v", perr)
		}
	}
	o := obs.NewWith(obs.Options{LogWriter: os.Stderr, LogLevel: level})
	// Kernel observability: the MD engine records copernicus_md_* (pair
	// throughput, rebuild cadence, force-loop time, ns/day) into the same
	// bundle served on -metrics-addr.
	md.EnableMetrics(o)

	id, err := overlay.NewIdentity()
	if err != nil {
		log.Fatalf("generating identity: %v", err)
	}
	trust := overlay.NewTrustStore()
	var tr overlay.Transport
	tr, err = overlay.NewTLSTransport(id, trust)
	if err != nil {
		log.Fatalf("tls transport: %v", err)
	}
	tr = chaos.Wrap(tr, *chaosCfg, o)
	node := overlay.NewNode(id, trust, tr)
	node.Obs = o
	defer node.Close()

	servers := splitAddrs(*serverList)
	if len(servers) == 0 {
		log.Fatal("-server: no addresses given")
	}
	// Cycle through the address list a few times before giving up: the
	// worker may start before its server (batch queues make no ordering
	// promises), and under -chaos-* the handshake itself can be eaten.
	var home string
	var connErr error
	for round := 0; round < 5 && home == ""; round++ {
		if round > 0 {
			time.Sleep(time.Duration(round) * 500 * time.Millisecond)
		}
		for _, addr := range servers {
			if home, connErr = node.ConnectPeer(addr); connErr == nil {
				break
			}
			log.Printf("connecting to %s: %v", addr, connErr)
		}
	}
	if home == "" {
		log.Fatalf("no server reachable from %v: %v", servers, connErr)
	}
	wk, err := worker.New(node, home, engines.Default(), worker.Config{
		Platform:     *platform,
		Cores:        *cores,
		PollInterval: *poll,
		Retry: retry.Policy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			PerAttempt:  *retryPerAttempt,
		},
		ServerAddrs:    servers,
		ResultSpoolDir: *resultSpool,
		CheckpointDir:  *ckptDir,
		FSToken:        *fsToken,
		SpoolDir:       *spool,
		Obs:            o,
	})
	if err != nil {
		log.Fatalf("creating worker: %v", err)
	}
	fmt.Printf("cpcworker: %s attached to server %s (%d cores, platform %s)\n",
		wk.ID(), home, *cores, *platform)
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("cpcworker: metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, o.Handler()); err != nil {
				log.Printf("cpcworker: metrics: %v", err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()
	if err := wk.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("worker: %v", err)
	}
	fmt.Printf("cpcworker: done (%d commands completed)\n", wk.Completed())
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
