// Command cpcworker runs a Copernicus worker: it connects to its nearest
// server over TLS, announces its resources and installed executables, and
// executes simulation commands until interrupted — the bootstrap flow of
// §2.3. Start one per batch-queue slot; the paper's pattern of submitting
// workers to a cluster's queue maps to launching this binary from the job
// script.
//
// Usage:
//
//	cpcworker -server head-node:7770 [-cores N] [-platform smp]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/worker"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:7770", "nearest server address")
	cores := flag.Int("cores", runtime.NumCPU(), "cores to announce")
	platform := flag.String("platform", "smp", "platform plugin name")
	poll := flag.Duration("poll", 2*time.Second, "idle re-announce interval")
	fsToken := flag.String("fs-token", "", "shared-filesystem token")
	spool := flag.String("spool", "", "shared-filesystem spool directory")
	metricsAddr := flag.String("metrics-addr", "", "standalone /metrics+/debug address (e.g. :9091); empty disables")
	logLevel := flag.String("log-level", "", "log level: debug, info, warn, error, off (empty = off; -v = debug)")
	verbose := flag.Bool("v", false, "verbose logging (shorthand for -log-level debug)")
	flag.Parse()

	level := obs.LevelOff
	if *verbose {
		level = obs.LevelDebug
	}
	if *logLevel != "" {
		var perr error
		if level, perr = obs.ParseLevel(*logLevel); perr != nil {
			log.Fatalf("-log-level: %v", perr)
		}
	}
	o := obs.NewWith(obs.Options{LogWriter: os.Stderr, LogLevel: level})

	id, err := overlay.NewIdentity()
	if err != nil {
		log.Fatalf("generating identity: %v", err)
	}
	trust := overlay.NewTrustStore()
	tr, err := overlay.NewTLSTransport(id, trust)
	if err != nil {
		log.Fatalf("tls transport: %v", err)
	}
	node := overlay.NewNode(id, trust, tr)
	node.Obs = o
	defer node.Close()

	home, err := node.ConnectPeer(*serverAddr)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *serverAddr, err)
	}
	wk, err := worker.New(node, home, engines.Default(), worker.Config{
		Platform:     *platform,
		Cores:        *cores,
		PollInterval: *poll,
		FSToken:      *fsToken,
		SpoolDir:     *spool,
		Obs:          o,
	})
	if err != nil {
		log.Fatalf("creating worker: %v", err)
	}
	fmt.Printf("cpcworker: %s attached to server %s (%d cores, platform %s)\n",
		wk.ID(), home, *cores, *platform)
	if *metricsAddr != "" {
		go func() {
			fmt.Printf("cpcworker: metrics on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, o.Handler()); err != nil {
				log.Printf("cpcworker: metrics: %v", err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()
	if err := wk.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("worker: %v", err)
	}
	fmt.Printf("cpcworker: done (%d commands completed)\n", wk.Completed())
}
