// Command cpcctl is the Copernicus command-line client: it submits projects
// to a server and monitors them — the paper's "command line client" from
// Fig 1.
//
// Usage:
//
//	cpcctl -server host:7770 submit -name myrun -controller msm [-tenant T] [-priority N] [-deadline D] [flags]
//	cpcctl -server host:7770 status -name myrun [-watch]
//	cpcctl -server host:7770 repex stats -name myrun
//	cpcctl -server host:7770 tenant list
//	cpcctl -server host:7770 tenant quota get -tenant T
//	cpcctl -server host:7770 tenant quota set -tenant T [-weight W] [-max-queued N] [-max-cores N] [-max-storage-bytes N]
//	cpcctl state inspect <state-dir>
//
// Controller flags (submit):
//
//	msm: -generations -clusters -starts -tasks -segment-ns -weighting
//	     -stream -stream-every-ns -converge-tol -converge-checks
//	bar: -windows -samples -target-stderr -delta-f
//	repex: -replicas -t-min -t-max -mode -segment-steps -epochs
//
// A sync-mode repex project submits each exchange epoch as one
// gang-scheduled command group; `repex stats` prints the ladder's live
// per-pair exchange acceptance rates from the server's status detail.
//
// Flag names are kebab-case (`-state-dir` style). `-deltaf` remains as a
// deprecated alias for `-delta-f`.
//
// `state inspect` is offline: it reads a server's -state-dir directly
// (snapshot + WAL tail as JSON, CRCs verified) without contacting any
// server, for operator debugging of durable state.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"copernicus/internal/client"
	"copernicus/internal/controller"
	"copernicus/internal/msm"
	"copernicus/internal/overlay"
	"copernicus/internal/store"
	"copernicus/internal/wire"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:7770", "server address")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: cpcctl -server ADDR {submit|status} [flags] | cpcctl state inspect DIR")
		os.Exit(2)
	}

	// The state subcommand works on local files; dispatch it before dialing
	// any server.
	if flag.Arg(0) == "state" {
		stateCmd(flag.Args()[1:])
		return
	}

	id, err := overlay.NewIdentity()
	if err != nil {
		log.Fatalf("identity: %v", err)
	}
	trust := overlay.NewTrustStore()
	tr, err := overlay.NewTLSTransport(id, trust)
	if err != nil {
		log.Fatalf("tls: %v", err)
	}
	node := overlay.NewNode(id, trust, tr)
	defer node.Close()
	serverID, err := node.ConnectPeer(*serverAddr)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *serverAddr, err)
	}

	cl := client.New(node, client.Config{Server: serverID})
	switch flag.Arg(0) {
	case "submit":
		submit(cl, flag.Args()[1:])
	case "status":
		status(cl, flag.Args()[1:])
	case "repex":
		repexCmd(cl, flag.Args()[1:])
	case "tenant":
		tenantCmd(cl, flag.Args()[1:])
	default:
		fmt.Fprintf(os.Stderr, "cpcctl: unknown subcommand %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// stateCmd handles the offline `state inspect <dir>` subcommand.
func stateCmd(args []string) {
	if len(args) < 2 || args[0] != "inspect" {
		fmt.Fprintln(os.Stderr, "usage: cpcctl state inspect DIR")
		os.Exit(2)
	}
	insp, err := store.Inspect(args[1])
	if err != nil {
		log.Fatalf("cpcctl state inspect: %v", err)
	}
	out, err := json.MarshalIndent(insp, "", "  ")
	if err != nil {
		log.Fatalf("cpcctl state inspect: %v", err)
	}
	fmt.Println(string(out))
	// The JSON above is the machine surface; repeat the operator-critical
	// replication facts on stderr so they are not lost in a pipe.
	fmt.Fprintf(os.Stderr, "cpcctl: last journaled seq %d\n", insp.LastSeq)
	if insp.Replica != nil {
		fmt.Fprintf(os.Stderr, "cpcctl: replica role=%s epoch=%d peer=%s\n",
			insp.Replica.Role, insp.Replica.Epoch, insp.Replica.PeerID)
	}
	if insp.Gap != "" {
		fmt.Fprintf(os.Stderr, "cpcctl: WARNING: replay gap: %s\n", insp.Gap)
	}
	if !insp.Healthy {
		os.Exit(1)
	}
}

func submit(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "project name (required)")
	ctrl := fs.String("controller", "msm", "controller plugin: msm, bar or repex")
	// MSM flags.
	generations := fs.Int("generations", 8, "msm: clustering generations")
	clusters := fs.Int("clusters", 1000, "msm: microstate count")
	starts := fs.Int("starts", 9, "msm: unfolded starting conformations")
	tasks := fs.Int("tasks", 25, "msm: trajectories per start")
	segment := fs.Float64("segment-ns", 50, "msm: command length in ns")
	weighting := fs.String("weighting", "adaptive", "msm: adaptive or even")
	stream := fs.Bool("stream", false, "msm: stream frame chunks + incremental clustering")
	streamEvery := fs.Float64("stream-every-ns", 0, "msm: worker flush interval in ns (0 = 5×frame)")
	convTol := fs.Float64("converge-tol", 0, "msm: population-convergence TV tolerance (0 = default)")
	convChecks := fs.Int("converge-checks", 0, "msm: consecutive passing checks per generation (0 = default)")
	// BAR flags.
	windows := fs.Int("windows", 5, "bar: lambda windows")
	samples := fs.Int("samples", 500, "bar: samples per command")
	target := fs.Float64("target-stderr", 0.05, "bar: stop at this total error (kT)")
	deltaf := fs.Float64("delta-f", 3.0, "bar: exact ΔF of the synthetic system (kT)")
	fs.Float64Var(deltaf, "deltaf", 3.0, "deprecated alias for -delta-f")
	// Repex flags.
	replicas := fs.Int("replicas", 8, "repex: temperature-ladder rungs")
	tMin := fs.Float64("t-min", 100, "repex: ladder bottom temperature (K)")
	tMax := fs.Float64("t-max", 200, "repex: ladder top temperature (K)")
	mode := fs.String("mode", "sync", "repex: exchange pattern, sync (gang-scheduled epochs) or async")
	segSteps := fs.Int("segment-steps", 40, "repex: MD steps between exchange attempts")
	epochs := fs.Int("epochs", 4, "repex: segments per rung")
	seed := fs.Uint64("seed", 1, "project RNG seed")
	// Multi-tenant submission flags.
	tenant := fs.String("tenant", "", "tenant account to bill the project to (empty = default tenant)")
	priority := fs.Int("priority", 0, "base priority the project's commands inherit")
	deadline := fs.Duration("deadline", 0, "reject the submission if not admitted within this duration (0 = none)")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	if *name == "" {
		log.Fatal("cpcctl submit: -name is required")
	}

	var params []byte
	var err error
	switch *ctrl {
	case "msm":
		p := controller.DefaultMSMParams()
		p.Generations = *generations
		p.Clusters = *clusters
		p.NStarts = *starts
		p.TasksPerStart = *tasks
		p.SegmentNs = *segment
		p.Seed = *seed
		p.Stream = *stream
		p.StreamEveryNs = *streamEvery
		p.ConvergeTol = *convTol
		p.ConvergeChecks = *convChecks
		switch *weighting {
		case "adaptive":
			p.Weighting = msm.AdaptiveWeighting
		case "even":
			p.Weighting = msm.EvenWeighting
		default:
			log.Fatalf("cpcctl: unknown weighting %q", *weighting)
		}
		params, err = wire.Marshal(&p)
	case "bar":
		p := controller.DefaultBARParams()
		p.Windows = *windows
		p.SamplesPerCommand = *samples
		p.TargetStdErr = *target
		p.Offset = *deltaf
		p.Seed = *seed
		params, err = wire.Marshal(&p)
	case "repex":
		p := controller.DefaultRepexParams()
		p.Replicas = *replicas
		p.TMin = *tMin
		p.TMax = *tMax
		p.Mode = *mode
		p.SegmentSteps = *segSteps
		p.Epochs = *epochs
		p.Seed = *seed
		params, err = wire.Marshal(&p)
	default:
		log.Fatalf("cpcctl: unknown controller %q", *ctrl)
	}
	if err != nil {
		log.Fatalf("encoding params: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := client.SubmitRequest{
		Name:       *name,
		Controller: *ctrl,
		Params:     params,
		Tenant:     *tenant,
		Priority:   *priority,
	}
	if *deadline != 0 {
		req.Deadline = time.Now().Add(*deadline)
	}
	receipt, err := cl.Submit(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, client.ErrQuotaExceeded):
			log.Fatalf("submit: rejected by tenant quota (terminal — raise the quota or drain usage): %v", err)
		case errors.Is(err, client.ErrAdmissionShed):
			log.Fatalf("submit: shed by admission control (retryable — back off and resubmit): %v", err)
		default:
			log.Fatalf("submit: %v", err)
		}
	}
	fmt.Printf("cpcctl: project %q submitted (%s controller, tenant %q) to %s\n",
		*name, *ctrl, receipt.Tenant, receipt.Server)
}

// repexCmd handles `repex stats -name X`: it decodes the controller's live
// status detail into the exchange ladder's per-pair acceptance table.
func repexCmd(cl *client.Client, args []string) {
	if len(args) < 1 || args[0] != "stats" {
		fmt.Fprintln(os.Stderr, "usage: cpcctl repex stats -name NAME")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("repex stats", flag.ExitOnError)
	name := fs.String("name", "", "project name (required)")
	if err := fs.Parse(args[1:]); err != nil {
		log.Fatal(err)
	}
	if *name == "" {
		log.Fatal("cpcctl repex stats: -name is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Status(ctx, *name)
	if err != nil {
		log.Fatalf("repex stats: %v", err)
	}
	if st.Controller != controller.RepexControllerName {
		log.Fatalf("repex stats: project %q runs controller %q, not %q",
			*name, st.Controller, controller.RepexControllerName)
	}
	if len(st.Detail) == 0 {
		log.Fatalf("repex stats: no controller detail for %q (server predates repex or project not started)", *name)
	}
	var d controller.RepexDetail
	if err := wire.Unmarshal(st.Detail, &d); err != nil {
		log.Fatalf("repex stats: decoding detail: %v", err)
	}
	fmt.Printf("%s  state=%s mode=%s epoch=%d segments=%d waiting=%d round-trips=%d\n",
		st.Name, st.State, d.Mode, d.Epoch, d.Segments, d.Waiting, d.RoundTrips)
	var att, acc uint64
	for i := range d.Attempts {
		att += d.Attempts[i]
		acc += d.Accepts[i]
		rate := 0.0
		if d.Attempts[i] > 0 {
			rate = float64(d.Accepts[i]) / float64(d.Attempts[i])
		}
		fmt.Printf("  pair %2d-%-2d  %7.2fK <-> %7.2fK  accepted %d/%d (%.0f%%)\n",
			i, i+1, d.Temps[i], d.Temps[i+1], d.Accepts[i], d.Attempts[i], 100*rate)
	}
	if att > 0 {
		fmt.Printf("  overall    accepted %d/%d (%.0f%%)\n", acc, att, 100*float64(acc)/float64(att))
	}
}

// tenantCmd handles `tenant list`, `tenant quota get` and `tenant quota set`.
func tenantCmd(cl *client.Client, args []string) {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: cpcctl tenant {list | quota get -tenant T | quota set -tenant T [flags]}")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	switch args[0] {
	case "list":
		tenants, err := cl.Tenants(ctx)
		if err != nil {
			log.Fatalf("tenant list: %v", err)
		}
		for _, t := range tenants {
			printTenant(t)
		}
	case "quota":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: cpcctl tenant quota {get|set} -tenant T [flags]")
			os.Exit(2)
		}
		switch args[1] {
		case "get":
			fs := flag.NewFlagSet("tenant quota get", flag.ExitOnError)
			tenant := fs.String("tenant", "", "tenant ID (required)")
			if err := fs.Parse(args[2:]); err != nil {
				log.Fatal(err)
			}
			if *tenant == "" {
				log.Fatal("cpcctl tenant quota get: -tenant is required")
			}
			st, err := cl.TenantQuota(ctx, *tenant)
			if err != nil {
				log.Fatalf("tenant quota get: %v", err)
			}
			printTenant(st)
		case "set":
			fs := flag.NewFlagSet("tenant quota set", flag.ExitOnError)
			tenant := fs.String("tenant", "", "tenant ID (required)")
			weight := fs.Float64("weight", 0, "fair-share weight (0 = keep current)")
			maxQueued := fs.Int("max-queued", -1, "max queued commands (-1 = keep, 0 = unlimited)")
			maxCores := fs.Int("max-cores", -1, "max concurrent cores (-1 = keep, 0 = unlimited)")
			maxStorage := fs.Int64("max-storage-bytes", -1, "max stored result bytes (-1 = keep, 0 = unlimited)")
			if err := fs.Parse(args[2:]); err != nil {
				log.Fatal(err)
			}
			if *tenant == "" {
				log.Fatal("cpcctl tenant quota set: -tenant is required")
			}
			st, err := cl.SetTenantQuota(ctx, wire.TenantQuotaUpdate{
				Tenant:          *tenant,
				Weight:          *weight,
				MaxQueued:       *maxQueued,
				MaxCores:        *maxCores,
				MaxStorageBytes: *maxStorage,
			})
			if err != nil {
				log.Fatalf("tenant quota set: %v", err)
			}
			printTenant(st)
		default:
			fmt.Fprintf(os.Stderr, "cpcctl tenant quota: unknown action %q\n", args[1])
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "cpcctl tenant: unknown action %q\n", args[0])
		os.Exit(2)
	}
}

func printTenant(t wire.TenantStatus) {
	id := t.ID
	if id == "" {
		id = "(default)"
	}
	fmt.Printf("%s  weight=%g max-queued=%d max-cores=%d max-storage-bytes=%d  queued=%d inflight-cores=%d core-seconds=%.1f storage-bytes=%d oldest-wait=%.1fs\n",
		id, t.Weight, t.MaxQueued, t.MaxCores, t.MaxStorageBytes,
		t.Queued, t.InflightCores, t.CoreSeconds, t.StorageBytes, t.OldestWaitSeconds)
}

func status(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	name := fs.String("name", "", "project name (required)")
	watch := fs.Bool("watch", false, "poll until the project finishes")
	interval := fs.Duration("interval", 5*time.Second, "watch poll interval")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	if *name == "" {
		log.Fatal("cpcctl status: -name is required")
	}
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := cl.Status(ctx, *name)
		cancel()
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		fmt.Printf("%s  state=%s gen=%d queued=%d running=%d finished=%d failed=%d  %s\n",
			st.Name, st.State, st.Generation, st.Queued, st.Running, st.Finished, st.Failed, st.Note)
		if !*watch || st.State != "running" {
			return
		}
		time.Sleep(*interval)
	}
}
