// Command cpcctl is the Copernicus command-line client: it submits projects
// to a server and monitors them — the paper's "command line client" from
// Fig 1.
//
// Usage:
//
//	cpcctl -server host:7770 submit -name myrun -controller msm [flags]
//	cpcctl -server host:7770 status -name myrun [-watch]
//	cpcctl state inspect <state-dir>
//
// Controller flags (submit):
//
//	msm: -generations -clusters -starts -tasks -segment-ns -weighting
//	bar: -windows -samples -target-stderr -deltaf
//
// `state inspect` is offline: it reads a server's -state-dir directly
// (snapshot + WAL tail as JSON, CRCs verified) without contacting any
// server, for operator debugging of durable state.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"copernicus/internal/client"
	"copernicus/internal/controller"
	"copernicus/internal/msm"
	"copernicus/internal/overlay"
	"copernicus/internal/store"
	"copernicus/internal/wire"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:7770", "server address")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: cpcctl -server ADDR {submit|status} [flags] | cpcctl state inspect DIR")
		os.Exit(2)
	}

	// The state subcommand works on local files; dispatch it before dialing
	// any server.
	if flag.Arg(0) == "state" {
		stateCmd(flag.Args()[1:])
		return
	}

	id, err := overlay.NewIdentity()
	if err != nil {
		log.Fatalf("identity: %v", err)
	}
	trust := overlay.NewTrustStore()
	tr, err := overlay.NewTLSTransport(id, trust)
	if err != nil {
		log.Fatalf("tls: %v", err)
	}
	node := overlay.NewNode(id, trust, tr)
	defer node.Close()
	serverID, err := node.ConnectPeer(*serverAddr)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *serverAddr, err)
	}

	cl := client.New(node, client.Config{Server: serverID})
	switch flag.Arg(0) {
	case "submit":
		submit(cl, flag.Args()[1:])
	case "status":
		status(cl, flag.Args()[1:])
	default:
		fmt.Fprintf(os.Stderr, "cpcctl: unknown subcommand %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// stateCmd handles the offline `state inspect <dir>` subcommand.
func stateCmd(args []string) {
	if len(args) < 2 || args[0] != "inspect" {
		fmt.Fprintln(os.Stderr, "usage: cpcctl state inspect DIR")
		os.Exit(2)
	}
	insp, err := store.Inspect(args[1])
	if err != nil {
		log.Fatalf("cpcctl state inspect: %v", err)
	}
	out, err := json.MarshalIndent(insp, "", "  ")
	if err != nil {
		log.Fatalf("cpcctl state inspect: %v", err)
	}
	fmt.Println(string(out))
	// The JSON above is the machine surface; repeat the operator-critical
	// replication facts on stderr so they are not lost in a pipe.
	fmt.Fprintf(os.Stderr, "cpcctl: last journaled seq %d\n", insp.LastSeq)
	if insp.Replica != nil {
		fmt.Fprintf(os.Stderr, "cpcctl: replica role=%s epoch=%d peer=%s\n",
			insp.Replica.Role, insp.Replica.Epoch, insp.Replica.PeerID)
	}
	if insp.Gap != "" {
		fmt.Fprintf(os.Stderr, "cpcctl: WARNING: replay gap: %s\n", insp.Gap)
	}
	if !insp.Healthy {
		os.Exit(1)
	}
}

func submit(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "project name (required)")
	ctrl := fs.String("controller", "msm", "controller plugin: msm or bar")
	// MSM flags.
	generations := fs.Int("generations", 8, "msm: clustering generations")
	clusters := fs.Int("clusters", 1000, "msm: microstate count")
	starts := fs.Int("starts", 9, "msm: unfolded starting conformations")
	tasks := fs.Int("tasks", 25, "msm: trajectories per start")
	segment := fs.Float64("segment-ns", 50, "msm: command length in ns")
	weighting := fs.String("weighting", "adaptive", "msm: adaptive or even")
	// BAR flags.
	windows := fs.Int("windows", 5, "bar: lambda windows")
	samples := fs.Int("samples", 500, "bar: samples per command")
	target := fs.Float64("target-stderr", 0.05, "bar: stop at this total error (kT)")
	deltaf := fs.Float64("deltaf", 3.0, "bar: exact ΔF of the synthetic system (kT)")
	seed := fs.Uint64("seed", 1, "project RNG seed")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	if *name == "" {
		log.Fatal("cpcctl submit: -name is required")
	}

	var params []byte
	var err error
	switch *ctrl {
	case "msm":
		p := controller.DefaultMSMParams()
		p.Generations = *generations
		p.Clusters = *clusters
		p.NStarts = *starts
		p.TasksPerStart = *tasks
		p.SegmentNs = *segment
		p.Seed = *seed
		switch *weighting {
		case "adaptive":
			p.Weighting = msm.AdaptiveWeighting
		case "even":
			p.Weighting = msm.EvenWeighting
		default:
			log.Fatalf("cpcctl: unknown weighting %q", *weighting)
		}
		params, err = wire.Marshal(&p)
	case "bar":
		p := controller.DefaultBARParams()
		p.Windows = *windows
		p.SamplesPerCommand = *samples
		p.TargetStdErr = *target
		p.Offset = *deltaf
		p.Seed = *seed
		params, err = wire.Marshal(&p)
	default:
		log.Fatalf("cpcctl: unknown controller %q", *ctrl)
	}
	if err != nil {
		log.Fatalf("encoding params: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.Submit(ctx, *name, *ctrl, params); err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("cpcctl: project %q submitted (%s controller)\n", *name, *ctrl)
}

func status(cl *client.Client, args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	name := fs.String("name", "", "project name (required)")
	watch := fs.Bool("watch", false, "poll until the project finishes")
	interval := fs.Duration("interval", 5*time.Second, "watch poll interval")
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
	if *name == "" {
		log.Fatal("cpcctl status: -name is required")
	}
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		st, err := cl.Status(ctx, *name)
		cancel()
		if err != nil {
			log.Fatalf("status: %v", err)
		}
		fmt.Printf("%s  state=%s gen=%d queued=%d running=%d finished=%d failed=%d  %s\n",
			st.Name, st.State, st.Generation, st.Queued, st.Running, st.Finished, st.Failed, st.Note)
		if !*watch || st.State != "running" {
			return
		}
		time.Sleep(*interval)
	}
}
