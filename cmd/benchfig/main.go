// Command benchfig regenerates the paper's figures and tables from the
// reproduction (the full experiment index lives in DESIGN.md §3):
//
//	benchfig -fig 2      per-generation trajectory RMSD (villin surrogate)
//	benchfig -fig 3      first folded conformation / blind prediction
//	benchfig -fig 4      MSM population evolution, t1/2
//	benchfig -fig 5      ensemble average RMSD vs time
//	benchfig -fig 6      measured communication hierarchy
//	benchfig -fig 7      scaling efficiency sweep (discrete-event study)
//	benchfig -fig 8      time-to-solution sweep
//	benchfig -fig 9      ensemble bandwidth sweep
//	benchfig -fig t1     heartbeat protocol budget
//	benchfig -fig t2     single-simulation strong scaling
//	benchfig -fig t3     adaptive vs even weighting
//	benchfig -fig all    everything
//
// Figures 2–5 share one adaptive run; -scale paper runs the full §3
// protocol (9×25 trajectories, 8 generations; minutes), -scale small the
// reduced one (seconds).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"copernicus/internal/controller"
	"copernicus/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2..9, t1..t3, or all")
	scale := flag.String("scale", "small", "villin run scale: small or paper")
	workers := flag.Int("workers", 4, "fabric workers for the villin run")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "small":
		sc = experiments.ScaleSmall
	case "paper":
		sc = experiments.ScalePaper
	default:
		log.Fatalf("benchfig: unknown scale %q", *scale)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	// Figs 2–5 share one adaptive MSM run.
	var msmRes *controller.MSMResult
	needMSM := all || want["2"] || want["3"] || want["4"] || want["5"]
	if needMSM {
		fmt.Printf("# running adaptive villin project (scale=%s, %d workers)...\n", *scale, *workers)
		var err error
		msmRes, err = experiments.RunVillin(sc, *workers)
		if err != nil {
			log.Fatalf("benchfig: villin run: %v", err)
		}
		fmt.Printf("# done: %d generations, %d trajectories\n\n",
			len(msmRes.Generations), len(msmRes.Trajs))
	}
	if all || want["2"] {
		fmt.Println(experiments.Fig2(msmRes))
	}
	if all || want["3"] {
		fmt.Println(experiments.Fig3(msmRes))
	}
	if all || want["4"] {
		fmt.Println(experiments.Fig4(msmRes))
	}
	if all || want["5"] {
		fmt.Println(experiments.Fig5(msmRes))
	}
	if all || want["6"] {
		r, err := experiments.Fig6()
		if err != nil {
			log.Fatalf("benchfig: fig 6: %v", err)
		}
		fmt.Println(experiments.FormatFig6(r))
	}
	if all || want["7"] || want["8"] || want["9"] {
		points, err := experiments.Fig7Points()
		if err != nil {
			log.Fatalf("benchfig: scaling sweep: %v", err)
		}
		if all || want["7"] {
			fmt.Println(experiments.FormatFig7(points))
		}
		if all || want["8"] {
			fmt.Println(experiments.FormatFig8(points))
		}
		if all || want["9"] {
			fmt.Println(experiments.FormatFig9(points))
		}
	}
	if all || want["t1"] {
		s, err := experiments.T1Heartbeat()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(s)
	}
	if all || want["t2"] {
		s, err := experiments.T2SingleSimScaling()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(s)
	}
	if all || want["t3"] {
		s, err := experiments.T3AdaptiveVsEven()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(s)
	}
}
