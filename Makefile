# Convenience targets; scripts/ci.sh is the canonical gate.
GO ?= go

.PHONY: all build vet test race chaos ci bench fmt

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled tests for the concurrency-heavy packages.
race:
	$(GO) test -race ./internal/obs/... ./internal/server/... \
		./internal/worker/... ./internal/queue/... ./internal/overlay/...

# Chaos soak: the MSM pipeline completing under seeded fault injection
# (25% dropped writes, partial frames, a forced full partition) — see
# docs/ROBUSTNESS.md.
chaos:
	$(GO) test -race -run TestChaosSoak -v -timeout 300s ./internal/core/

ci:
	sh scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

fmt:
	gofmt -w ./cmd ./internal ./examples *.go
