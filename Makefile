# Convenience targets; scripts/ci.sh is the canonical gate.
GO ?= go

.PHONY: all build vet test race chaos crash failover tenants repex stream ci bench fmt

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled tests for the concurrency-heavy packages
# (./internal/store/... includes internal/store/replica).
race:
	$(GO) test -race ./internal/obs/... ./internal/server/... \
		./internal/worker/... ./internal/queue/... ./internal/overlay/... \
		./internal/store/... ./internal/store/replica/... ./internal/repex/... \
		./internal/msm/...

# Chaos soak: the MSM pipeline completing under seeded fault injection
# (25% dropped writes, partial frames, a forced full partition) — see
# docs/ROBUSTNESS.md.
chaos:
	$(GO) test -race -run TestChaosSoak -v -timeout 300s ./internal/core/

# Kill-and-restart: the project server hard-killed mid-ensemble and
# rebuilt from its -state-dir, with and without WAL write faults — see
# docs/PERSISTENCE.md.
crash:
	$(GO) test -race -run TestFabricCrashRestart -v -timeout 600s ./internal/core/

# Heartbeat-lease failover: the project server hard-killed (and fully
# partitioned) mid-ensemble, its warm standby promoting and finishing the
# campaign, the fenced ex-primary rejoining as standby — see
# docs/PERSISTENCE.md ("Replication & failover").
failover:
	$(GO) test -race -run TestFailover -v -timeout 600s ./internal/core/

# The multi-tenant scheduling acceptance scenario: 2000 tenants with
# heavy-tailed traffic against the real fair-share queue, with a
# slow-fsync WAL fault window — see docs/SCHEDULING.md.
tenants:
	$(GO) test -race -run 'TestMultiTenantScenario|TestTenantScenario' -v -timeout 300s ./internal/des/

# The replica-exchange scheduling scenario: sync vs async REMD ladders
# against the real gang-scheduling queue, with a worker-churn fault
# window — see docs/SCHEDULING.md ("Gang scheduling").
repex:
	$(GO) test -race -run TestRepexDES -v -timeout 300s ./internal/des/

# The streaming-analysis scenario: incremental mini-batch clustering vs
# full batch reclustering over a 20-round adaptive campaign, on the real
# internal/msm code — flat per-round analysis cost, ≥5× cheaper by round
# 20 — see docs/PERFORMANCE.md ("Streaming analysis").
stream:
	$(GO) test -race -run TestStreamAnalysisDES -v -timeout 300s ./internal/des/

ci:
	sh scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

fmt:
	gofmt -w ./cmd ./internal ./examples *.go
