#!/bin/sh
# bench.sh — runs the MD kernel micro-benchmarks plus the Fig-level
# throughput benches and records the numbers in BENCH_md.json.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime   go -benchtime value for the micro-benches (default 2s;
#               pass e.g. 1x for a smoke run)
#
# The parallel-speedup numbers (shard scaling, rebuild workers) are
# meaningless on a single-core host, so such runs are refused unless
# BENCH_ALLOW_SINGLE_CORE=1 — and then the output is annotated so nobody
# mistakes the figures for real scaling data. The host core count is
# stamped into BENCH_md.json either way.
set -eu
cd "$(dirname "$0")/.."

NPROC="$(nproc 2>/dev/null || echo 1)"
SINGLE_CORE=0
if [ "$NPROC" -le 1 ]; then
    if [ "${BENCH_ALLOW_SINGLE_CORE:-0}" = "1" ]; then
        SINGLE_CORE=1
        echo "bench: WARNING: single-core host ($NPROC cpu) — parallel speedups below are NOT meaningful" >&2
    else
        echo "bench: refusing to benchmark on a single-core host ($NPROC cpu):" >&2
        echo "bench: shard/worker speedup numbers would be noise. Set BENCH_ALLOW_SINGLE_CORE=1 to override." >&2
        exit 1
    fi
fi

BENCHTIME="${1:-2s}"
OUT="BENCH_md.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== kernel micro-benches (internal/md, -benchtime $BENCHTIME) =="
go test -run=NONE -bench='BenchmarkNonbondedKernel|BenchmarkNeighborRebuild|BenchmarkStepVillinBox' \
    -benchtime "$BENCHTIME" ./internal/md | tee "$TMP"

echo "== Fig-level benches (repo root, -benchtime 1x) =="
go test -run=NONE -bench='BenchmarkMDEngineThroughput|BenchmarkT2_SingleSimScaling' \
    -benchtime 1x . | tee -a "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v nproc="$NPROC" -v single="$SINGLE_CORE" '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"nproc\": %d,\n", nproc
    if (single) printf "  \"single_core_host\": true,\n"
    printf "  \"ns_per_op\": {\n"
    n = 0
    for (k in ns) order[n++] = k
    for (i = 0; i < n; i++) {
        k = order[i]
        printf "    \"%s\": %s%s\n", k, ns[k], (i < n-1 ? "," : "")
    }
    printf "  }"
    if (("StepVillinBox/serial" in ns) && ("StepVillinBox/shards4" in ns) && ns["StepVillinBox/shards4"] > 0)
        printf ",\n  \"villin_speedup_4shards\": %.3f", ns["StepVillinBox/serial"] / ns["StepVillinBox/shards4"]
    if (("NeighborRebuild/workers1" in ns) && ("NeighborRebuild/workers4" in ns) && ns["NeighborRebuild/workers4"] > 0)
        printf ",\n  \"rebuild_speedup_4workers\": %.3f", ns["NeighborRebuild/workers1"] / ns["NeighborRebuild/workers4"]
    printf "\n}\n"
}' "$TMP" > "$OUT"

echo "bench: wrote $OUT"
cat "$OUT"
