#!/bin/sh
# bench.sh — runs the MD kernel micro-benchmarks plus the Fig-level
# throughput benches and records the numbers in BENCH_md.json.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime   go -benchtime value for the micro-benches (default 2s;
#               pass e.g. 1x for a smoke run)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_md.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== kernel micro-benches (internal/md, -benchtime $BENCHTIME) =="
go test -run=NONE -bench='BenchmarkNonbondedKernel|BenchmarkNeighborRebuild|BenchmarkStepVillinBox' \
    -benchtime "$BENCHTIME" ./internal/md | tee "$TMP"

echo "== Fig-level benches (repo root, -benchtime 1x) =="
go test -run=NONE -bench='BenchmarkMDEngineThroughput|BenchmarkT2_SingleSimScaling' \
    -benchtime 1x . | tee -a "$TMP"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v nproc="$(nproc 2>/dev/null || echo 1)" '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns[name] = $i
    }
}
END {
    printf "{\n"
    printf "  \"generated\": \"%s\",\n", date
    printf "  \"nproc\": %d,\n", nproc
    printf "  \"ns_per_op\": {\n"
    n = 0
    for (k in ns) order[n++] = k
    for (i = 0; i < n; i++) {
        k = order[i]
        printf "    \"%s\": %s%s\n", k, ns[k], (i < n-1 ? "," : "")
    }
    printf "  }"
    if (("StepVillinBox/serial" in ns) && ("StepVillinBox/shards4" in ns) && ns["StepVillinBox/shards4"] > 0)
        printf ",\n  \"villin_speedup_4shards\": %.3f", ns["StepVillinBox/serial"] / ns["StepVillinBox/shards4"]
    if (("NeighborRebuild/workers1" in ns) && ("NeighborRebuild/workers4" in ns) && ns["NeighborRebuild/workers4"] > 0)
        printf ",\n  \"rebuild_speedup_4workers\": %.3f", ns["NeighborRebuild/workers1"] / ns["NeighborRebuild/workers4"]
    printf "\n}\n"
}' "$TMP" > "$OUT"

echo "bench: wrote $OUT"
cat "$OUT"
