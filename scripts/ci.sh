#!/bin/sh
# ci.sh — the checks a change must pass before merging:
# vet, build, full test suite, and race-enabled tests for the
# concurrency-heavy packages. Usage: scripts/ci.sh [quick]
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

if [ "${1:-}" = "quick" ]; then
    echo "ci: quick mode, skipping race tests"
    exit 0
fi

echo "== go test -race (obs, server, worker, queue, overlay, retry, chaos, store, store/replica, md, des, repex, msm) =="
go test -race ./internal/obs/... ./internal/server/... \
    ./internal/worker/... ./internal/queue/... ./internal/overlay/... \
    ./internal/retry/... ./internal/chaos/... ./internal/store/... \
    ./internal/store/replica/... ./internal/md/... ./internal/des/... \
    ./internal/repex/... ./internal/msm/...

echo "== md bench smoke =="
go test -run=NONE -bench=. -benchtime=1x ./internal/md

echo "== chaos soak (race) =="
go test -race -run TestChaosSoak -timeout 300s ./internal/core/

echo "== crash-restart recovery (race) =="
go test -race -run TestFabricCrashRestart -timeout 600s ./internal/core/

echo "== standby failover (race) =="
go test -race -run TestFailover -timeout 600s ./internal/core/

echo "== multi-tenant scheduling scenario (race) =="
go test -race -run TestMultiTenantScenario -timeout 300s ./internal/des/

echo "== replica-exchange scheduling scenario (race) =="
go test -race -run TestRepexDES -timeout 300s ./internal/des/

echo "== streaming-analysis scenario (race) =="
go test -race -run TestStreamAnalysisDES -timeout 300s ./internal/des/

echo "ci: all checks passed"
