package copernicus

// One benchmark per figure/table of the paper's evaluation (DESIGN.md §3
// maps each to its modules). Each benchmark regenerates its figure from
// scratch and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both times the reproduction pipeline and re-derives the paper's numbers.
// cmd/benchfig prints the full rows/series.

import (
	"math"
	"testing"
	"time"

	"copernicus/internal/des"
	"copernicus/internal/experiments"
	"copernicus/internal/md"
	"copernicus/internal/topology"
)

// benchVillin runs the reduced-scale adaptive project once per iteration.
func benchVillin(b *testing.B) *MSMResult {
	b.Helper()
	res, err := experiments.RunVillin(experiments.ScaleSmall, 4)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFig2_GenerationRMSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchVillin(b)
		if s := experiments.Fig2(res); len(s) == 0 {
			b.Fatal("empty figure")
		}
		last := res.Generations[len(res.Generations)-1]
		b.ReportMetric(last.MinRMSD, "minRMSD_A")
		b.ReportMetric(float64(last.States), "ergodic_states")
	}
}

func BenchmarkFig3_FirstFolded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchVillin(b)
		if res.FirstFoldedGen < 0 {
			b.Fatal("no folded conformation found")
		}
		b.ReportMetric(float64(res.FirstFoldedGen), "first_folded_gen")
		b.ReportMetric(res.FinalTopStateRMSD, "blind_prediction_A")
	}
}

func BenchmarkFig4_PopulationEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchVillin(b)
		if len(res.PopFolded) == 0 {
			b.Fatal("no population curve")
		}
		final := res.PopFolded[len(res.PopFolded)-1]
		if final <= 0 || final > 1 {
			b.Fatalf("fraction folded at 2µs = %v", final)
		}
		b.ReportMetric(100*final, "folded_at_2us_pct")
		if res.THalfOK {
			b.ReportMetric(res.THalfNs, "t_half_ns")
		}
	}
}

func BenchmarkFig5_EnsembleRMSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchVillin(b)
		if len(res.RMSDMean) == 0 {
			b.Fatal("no ensemble curve")
		}
		// The ensemble average must decay from the unfolded plateau.
		first, last := res.RMSDMean[0], res.RMSDMean[len(res.RMSDMean)-1]
		if last >= first {
			b.Fatalf("ensemble RMSD did not decay: %v -> %v", first, last)
		}
		b.ReportMetric(last, "final_mean_RMSD_A")
	}
}

func BenchmarkFig6_HierarchyBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if r.RankBytesPerStep <= 0 || r.EnsembleBytes <= 0 {
			b.Fatalf("hierarchy measurement empty: %+v", r)
		}
		// Structural claim of Fig 6: the simulation level moves orders of
		// magnitude more data per unit work than the ensemble level.
		b.ReportMetric(r.RankBytesPerStep, "mpi_bytes_per_step")
		b.ReportMetric(float64(r.EnsembleBytes)/r.EnsembleSeconds/1e6, "overlay_MBps")
		b.ReportMetric(float64(r.HeartbeatBytes), "heartbeat_bytes")
		if r.HeartbeatBytes >= 200 {
			b.Fatalf("heartbeat %d bytes, paper requires <200", r.HeartbeatBytes)
		}
	}
}

func BenchmarkFig7_ScalingEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := des.PaperParams()
		ref, err := des.ReferenceHours(base)
		if err != nil {
			b.Fatal(err)
		}
		p := base
		p.TotalCores = 20000
		p.CoresPerSim = 96
		r, err := des.Simulate(p)
		if err != nil {
			b.Fatal(err)
		}
		eff := des.Efficiency(ref, 20000, r.Hours)
		if eff < 0.4 || eff > 0.65 {
			b.Fatalf("efficiency at 20k cores = %v, paper 0.53", eff)
		}
		b.ReportMetric(ref, "tres1_hours")
		b.ReportMetric(100*eff, "efficiency_20k_pct")
	}
}

func BenchmarkFig8_TimeToSolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := des.PaperParams() // 5,000 cores, 24 per simulation
		r, err := des.Simulate(p)
		if err != nil {
			b.Fatal(err)
		}
		if r.Hours < 20 || r.Hours > 45 {
			b.Fatalf("time at 5000 cores = %v h, paper ~30", r.Hours)
		}
		p.TotalCores = 20000
		p.CoresPerSim = 96
		r20k, err := des.Simulate(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Hours, "hours_5k_cores")
		b.ReportMetric(r20k.Hours, "hours_20k_cores")
	}
}

func BenchmarkFig9_EnsembleBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := des.Sweep(des.PaperParams(), []int{24}, []int{240, 2400, 21600})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range points {
			if pt.BandwidthMBps <= 0 || pt.BandwidthMBps > 1 {
				b.Fatalf("bandwidth at N=%d out of the paper's regime: %v MB/s",
					pt.TotalCores, pt.BandwidthMBps)
			}
		}
		b.ReportMetric(points[len(points)-1].BandwidthMBps, "MBps_at_21600")
	}
}

func BenchmarkT1_HeartbeatTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.T1Heartbeat()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkT2_SingleSimScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.T2SingleSimScaling()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkT3_AdaptiveVsEven(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.T3AdaptiveVsEven()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkMDEngineThroughput measures the raw compute kernel (the level of
// the hierarchy the paper delegates to Gromacs): ns/day of the 192-molecule
// water box on this machine.
func BenchmarkMDEngineThroughput(b *testing.B) {
	sys, err := topology.WaterBox(192, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := md.DefaultConfig()
	cfg.Cutoff = 0.6
	cfg.Skin = 0.08
	sim, err := md.New(sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		simulatedNs := float64(b.N) * 10 * cfg.Dt / 1000
		b.ReportMetric(simulatedNs/(elapsed/86400), "ns_per_day")
	}
}

// BenchmarkFabricCommandRoundTrip measures control-plane overhead per
// command: announce → assign → execute(trivial) → result.
func BenchmarkFabricCommandRoundTrip(b *testing.B) {
	p := DefaultBARParams()
	p.Windows = 1
	p.SamplesPerCommand = 2
	p.BatchPerWindow = b.N
	p.MaxRounds = 1
	p.TargetStdErr = 1000 // stop after one round regardless
	b.ResetTimer()
	res, err := RunBAR(p, FabricConfig{Servers: 1, WorkersPerServer: 2}, 10*time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	if res.SamplesUsed != 4*b.N {
		b.Fatalf("samples = %d, want %d", res.SamplesUsed, 4*b.N)
	}
}

// sanity-check that the public facade exposes a working surface.
func TestPublicAPISurface(t *testing.T) {
	model, err := NewFoldingModel(DefaultFoldingParams())
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 3 {
		t.Errorf("Dim = %d", model.Dim())
	}
	sys, err := LJFluid(64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMDConfig()
	cfg.Cutoff = 0.7
	sim, err := NewMD(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(10); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sim.Temperature()) {
		t.Error("temperature NaN")
	}
	ref, err := ScalingReference(PaperScalingParams())
	if err != nil {
		t.Fatal(err)
	}
	if ref < 1e5 || ref > 1.2e5 {
		t.Errorf("tres(1) = %v", ref)
	}
	reg := DefaultControllerRegistry()
	if got := len(reg.Names()); got != 3 {
		t.Errorf("bundled controllers = %d", got)
	}
}
