package core

import (
	"net/http/httptest"
	"testing"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/wire"
)

// waitForProgress polls project status until at least minFinished commands
// have completed — "mid-ensemble", the moment the crash tests pull the plug.
func waitForProgress(t *testing.T, f *Fabric, name string, minFinished int) wire.ProjectStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := f.Status(ctxTimeout(t, 10*time.Second), name)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			t.Fatalf("project left running state before the crash: %q (%s)", st.State, st.Note)
		}
		if st.Finished >= minFinished {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("project never reached the crash point")
	return wire.ProjectStatus{}
}

// crashRestartMSM is the kill-and-restart harness: run a small adaptive MSM
// project, hard-kill the project server mid-ensemble, restart it from the
// state directory, and require the project to still converge — with workers
// redelivering results they spooled during the outage.
func crashRestartMSM(t *testing.T, cfg FabricConfig) {
	t.Helper()
	cfg.Servers = 1
	cfg.WorkersPerServer = 3
	cfg.StateDir = t.TempDir()
	cfg.ResultSpoolDir = t.TempDir()
	cfg.FsyncInterval = 200 * time.Microsecond
	cfg.SnapshotEvery = 48
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	p := smallMSMParams()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "crash-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, f, "crash-msm", 6)

	// Pull the plug only once the journal provably holds a record past the
	// last snapshot rotation. A snapshot's LastSeq is fixed at rotation, so
	// such a record reaches the replay tail even if a background snapshot
	// capture is racing the crash — keeping the replayed-records assertion
	// below deterministic (a crash right after a snapshot that covered the
	// whole journal would legitimately replay nothing).
	tailDeadline := time.Now().Add(10 * time.Second)
	for f.Stores[0].AppendedSinceRotation() == 0 {
		if time.Now().After(tailDeadline) {
			t.Fatal("journal never accumulated a post-rotation record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.CrashServer(0)
	// Let in-flight commands finish against a dead server so workers are
	// forced through the retry → spool path.
	time.Sleep(300 * time.Millisecond)
	if err := f.RestartServer(0); err != nil {
		t.Fatal(err)
	}

	st, err := f.Wait(ctxTimeout(t, 4*time.Minute), "crash-msm")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
	var res controller.MSMResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != p.Generations {
		t.Fatalf("converged with %d generations, want %d", len(res.Generations), p.Generations)
	}
	for i := 1; i < len(res.Generations); i++ {
		if res.Generations[i].MinRMSD > res.Generations[i-1].MinRMSD+1e-9 {
			t.Errorf("min RMSD increased between generations %d and %d", i-1, i)
		}
	}

	// The recovery must be visible in /metrics: the store recovered at least
	// once (the restart), replayed a non-empty tail, journaled appends, and
	// truncated the log with at least one snapshot along the way.
	ms := httptest.NewServer(f.Obs.Handler())
	defer ms.Close()
	body := httpGetBody(t, ms.URL+"/metrics")
	for _, check := range []struct {
		metric string
		min    float64
	}{
		{"copernicus_store_recoveries_total", 1},
		{"copernicus_store_replayed_records", 1},
		{"copernicus_store_wal_appends_total", 10},
		{"copernicus_store_snapshots_total", 1},
	} {
		if v := promValue(t, body, check.metric); v < check.min {
			t.Errorf("%s = %v, want >= %v", check.metric, v, check.min)
		}
	}
}

func TestFabricCrashRestartMSMConverges(t *testing.T) {
	crashRestartMSM(t, FabricConfig{})
}

// TestFabricCrashRestartWithWALFaults repeats the kill-and-restart run with
// chaos faults injected into the WAL itself: occasional append errors (the
// server logs them and keeps serving) and short writes (torn frames on
// disk). Recovery must degrade to bounded re-execution — never a lost or
// corrupted project.
func TestFabricCrashRestartWithWALFaults(t *testing.T) {
	o := obs.New()
	crashRestartMSM(t, FabricConfig{
		Obs: o,
		// skipFirst=1 shields the project-submit record: tearing it models a
		// submission the client never had acked (and would re-submit), not
		// silent state loss.
		StoreWriteHook: chaos.WALFaults(7, 1, 0.03, 0.03, o),
	})
	ms := httptest.NewServer(o.Handler())
	defer ms.Close()
	body := httpGetBody(t, ms.URL+"/metrics")
	if v := promValue(t, body, "copernicus_chaos_faults_total"); v < 1 {
		t.Errorf("no WAL faults fired (copernicus_chaos_faults_total = %v); the chaos run proved nothing", v)
	}
}
