// Package core assembles the Copernicus pieces into runnable deployments:
// an overlay of servers, a fleet of workers with the standard engines, and
// client-side helpers to submit projects and wait for their results.
//
// The Fabric type is the in-process deployment used by tests, examples and
// benchmarks — functionally the Fig 1 topology (project server, relay
// servers, workers) over the in-memory transport. Real deployments use the
// same server/worker packages over TLS via cmd/cpcserver and cmd/cpcworker.
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/client"
	"copernicus/internal/controller"
	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/retry"
	"copernicus/internal/server"
	"copernicus/internal/store"
	"copernicus/internal/store/replica"
	"copernicus/internal/wire"
	"copernicus/internal/worker"
)

// FabricConfig shapes an in-process deployment.
type FabricConfig struct {
	// Servers is the length of the server chain; Servers[0] is the project
	// server, the rest act as relays (≥1; default 1).
	Servers int
	// WorkersPerServer attaches that many workers to every server
	// (default 2).
	WorkersPerServer int
	// WorkerCores is each worker's announced core count (default 1).
	WorkerCores int
	// Heartbeat is the server-side heartbeat interval (default 200 ms in
	// fabric deployments — scaled down from the paper's 120 s so tests can
	// exercise failure detection quickly).
	Heartbeat time.Duration
	// Poll is the workers' idle re-announce interval (default 20 ms).
	Poll time.Duration
	// Latency injects a per-write delay on the in-memory network.
	Latency time.Duration
	// Engines overrides the default engine set.
	Engines []engines.Engine
	// Registry overrides the default controller registry.
	Registry *controller.Registry
	// FSToken simulates a shared filesystem between servers and workers
	// when non-empty; SpoolDir is where outputs are exchanged.
	FSToken  string
	SpoolDir string
	// Chaos, when enabled, wraps every worker's transport in a
	// fault-injection layer (each worker gets its own chaos.Transport,
	// seeded Chaos.Seed+index, reachable as Fabric.Chaos for partition
	// control). Server↔server and client links stay clean so the harness
	// measures worker-path resilience, not total blackout.
	Chaos chaos.Config
	// WorkerRetry is the retry/backoff policy handed to every worker
	// (announce, heartbeat, result delivery). Zero fields take defaults.
	WorkerRetry retry.Policy
	// ResultSpoolDir, when set, gives each worker a private subdirectory to
	// spool undeliverable results for post-partition redelivery.
	ResultSpoolDir string
	// StateDir, when set, gives every server a durable state directory
	// (StateDir/server-N holding its WAL and snapshots) and arms
	// CrashServer/RestartServer: a restarted server replays its journal and
	// resumes its projects. Empty keeps all project state in memory.
	StateDir string
	// FsyncInterval and SnapshotEvery tune each server's store; see
	// store.Options. StoreNoSync skips fsyncs (unit tests on throwaway
	// dirs); StoreWriteHook intercepts WAL frames before they hit disk —
	// chaos.WALFaults plugs in here.
	FsyncInterval  time.Duration
	SnapshotEvery  int
	StoreNoSync    bool
	StoreWriteHook func(frame []byte) ([]byte, error)
	// Standbys maps a primary server index to a standby server index. The
	// standby runs as a storeless relay while mirroring the primary's WAL
	// into StateDir/replica-<standby> through a replica.Peer; when its lease
	// on the primary lapses it promotes itself, replays the copy through the
	// normal recovery path, and takes the projects over. Requires StateDir.
	Standbys map[int]int
	// ReplInterval is the replication ship/heartbeat cadence (default 50 ms
	// in fabric deployments — scaled down, like Heartbeat, so failover tests
	// run in milliseconds). LeaseTimeout defaults to 5×ReplInterval.
	ReplInterval time.Duration
	LeaseTimeout time.Duration
	// ServerChaos, when non-nil, wraps every server node's transport in its
	// own fault-injection layer (seeded ServerChaos.Seed+index, reachable as
	// Fabric.ServerChaos) so tests can drop or partition server↔server
	// links — most importantly the replication link. A pointer rather than a
	// value: a zero Config is a valid choice here (no probabilistic faults,
	// pure Partition/Heal control).
	ServerChaos *chaos.Config
	// Obs is the observability bundle shared by every component in the
	// fabric — one metrics registry, one span tracer, one logger — so a
	// command's whole lifecycle (submit → queue → dispatch → run → result →
	// controller) lands in a single trace. nil means a fresh silent bundle,
	// reachable afterwards as Fabric.Obs.
	Obs *obs.Obs
}

func (c *FabricConfig) fill() {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.WorkersPerServer <= 0 {
		c.WorkersPerServer = 2
	}
	if c.WorkerCores <= 0 {
		c.WorkerCores = 1
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 200 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = 20 * time.Millisecond
	}
	if c.ReplInterval <= 0 {
		c.ReplInterval = 50 * time.Millisecond
	}
	if c.Engines == nil {
		c.Engines = engines.Default()
	}
	if c.Registry == nil {
		c.Registry = controller.DefaultRegistry()
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
}

// Fabric is a running in-process Copernicus deployment.
type Fabric struct {
	Net     *overlay.MemNetwork
	Servers []*server.Server
	Workers []*worker.Worker
	// Stores holds each server's durable store, index-aligned with Servers;
	// entries are nil when FabricConfig.StateDir is unset. The fabric owns
	// them: they are (re)opened by NewFabric/RestartServer and closed by
	// CrashServer/Close.
	Stores []*store.Store
	// Chaos holds each worker's fault-injection transport (index-aligned
	// with Workers) when FabricConfig.Chaos is enabled; empty otherwise.
	// Tests drive partitions through these.
	Chaos []*chaos.Transport
	// ServerChaos holds each server node's fault-injection transport
	// (index-aligned with Servers) when FabricConfig.ServerChaos is set;
	// empty otherwise. Partitioning the standby's entry against the
	// primary's address severs the replication link.
	ServerChaos []*chaos.Transport
	// ClientChaos wraps the client node's transport (pure Partition/Heal
	// control, no probabilistic faults) when FabricConfig.ServerChaos is
	// set. Partition tests need it: the client peers with both the primary
	// and the standby, and the overlay forwards envelopes multi-hop, so a
	// cut of only the server↔server link would be healed by the client
	// relaying replication traffic around it — which is exactly the lease
	// protocol behaving well, not a partition.
	ClientChaos *chaos.Transport
	// Peers holds each server's replication peer, index-aligned with
	// Servers; nil where the server has no replication role. Promote/demote
	// hooks swap Servers[i] and Stores[i] at runtime, so concurrent readers
	// must go through Fabric.Server/Store/Peer.
	Peers []*replica.Peer
	// Obs is the bundle shared by every node, server and worker; serve
	// Obs.Handler() (or any server's MonitorHandler) to expose /metrics and
	// /debug/trace for the whole fabric.
	Obs *obs.Obs

	cfg         FabricConfig
	tr          overlay.Transport
	serverSeeds []uint64 // identity seeds, so restarts keep node IDs
	serverIDs   []string // node IDs, index-aligned with Servers
	smu         sync.Mutex
	nodes       []*overlay.Node
	clientNode  *overlay.Node
	cl          *client.Client
	cancel      context.CancelFunc
	wg          sync.WaitGroup
}

// openStore opens (or re-opens) server i's durable store; nil when the
// fabric runs without a state directory or i is a replication standby
// (standbys run storeless until promoted; their replica.Peer owns the warm
// copy).
func (f *Fabric) openStore(i int) (*store.Store, error) {
	if f.cfg.StateDir == "" || f.isStandbyIdx(i) {
		return nil, nil
	}
	return f.openStoreDir(filepath.Join(f.cfg.StateDir, fmt.Sprintf("server-%d", i)))
}

func (f *Fabric) openStoreDir(dir string) (*store.Store, error) {
	return store.Open(store.Options{
		Dir:           dir,
		FsyncInterval: f.cfg.FsyncInterval,
		SnapshotEvery: f.cfg.SnapshotEvery,
		NoSync:        f.cfg.StoreNoSync,
		WriteHook:     f.cfg.StoreWriteHook,
		Obs:           f.cfg.Obs,
	})
}

// NewFabric builds and starts the deployment: a chain of servers
// (server-0 — server-1 — …), workers attached round-robin, and a client
// node connected to the project server.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	cfg.fill()
	if err := cfg.validateStandbys(); err != nil {
		return nil, err
	}
	f := &Fabric{Net: overlay.NewMemNetwork(), Obs: cfg.Obs, cfg: cfg}
	f.Net.Latency = cfg.Latency
	tr := f.Net.Transport()
	f.tr = tr
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel

	seed := uint64(1000)
	newNode := func(nodeTr overlay.Transport) *overlay.Node {
		seed++
		n := overlay.NewNode(overlay.NewIdentityFromSeed(seed), overlay.NewTrustStore(), nodeTr)
		n.Obs = cfg.Obs
		f.nodes = append(f.nodes, n)
		return n
	}

	// Server chain. Server i's node is f.nodes[i] (servers are created
	// first), which CrashServer relies on.
	serverAddrs := make([]string, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		serverTr := tr
		if cfg.ServerChaos != nil {
			sc := *cfg.ServerChaos
			sc.Seed = cfg.ServerChaos.Seed + uint64(i)
			ct := chaos.New(tr, sc, cfg.Obs)
			f.ServerChaos = append(f.ServerChaos, ct)
			serverTr = ct
		}
		node := newNode(serverTr)
		f.serverSeeds = append(f.serverSeeds, seed)
		f.serverIDs = append(f.serverIDs, node.ID())
		addr := fmt.Sprintf("server-%d", i)
		serverAddrs[i] = addr
		if err := node.Listen(addr); err != nil {
			f.Close()
			return nil, err
		}
		if i > 0 {
			if _, err := node.ConnectPeer(fmt.Sprintf("server-%d", i-1)); err != nil {
				f.Close()
				return nil, err
			}
		}
		st, err := f.openStore(i)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Stores = append(f.Stores, st)
		srv := server.New(node, cfg.Registry, server.Config{
			HeartbeatInterval: cfg.Heartbeat,
			RelayTimeout:      2 * time.Second,
			FSToken:           cfg.FSToken,
			Store:             st,
			Obs:               cfg.Obs,
		})
		f.Servers = append(f.Servers, srv)
		f.Peers = append(f.Peers, nil)
	}

	// Replication peers need every server node built first (each side
	// addresses the other by node ID).
	if err := f.setupReplication(); err != nil {
		f.Close()
		return nil, err
	}

	// Workers, attached round-robin across servers. Each worker gets its own
	// chaos transport (when enabled) so faults and partitions can be aimed
	// at individual worker↔server links.
	for i := 0; i < cfg.Servers*cfg.WorkersPerServer; i++ {
		workerTr := tr
		if cfg.Chaos.Enabled() {
			ccfg := cfg.Chaos
			ccfg.Seed = cfg.Chaos.Seed + uint64(i)
			ct := chaos.New(tr, ccfg, cfg.Obs)
			f.Chaos = append(f.Chaos, ct)
			workerTr = ct
		}
		node := newNode(workerTr)
		home := f.Servers[i%cfg.Servers]
		var connErr error
		for attempt := 0; attempt < 5; attempt++ {
			if _, connErr = node.ConnectPeer(fmt.Sprintf("server-%d", i%cfg.Servers)); connErr == nil {
				break
			}
		}
		if connErr != nil {
			if !cfg.Chaos.Enabled() {
				f.Close()
				return nil, connErr
			}
			// The fault injector ate every join attempt; the worker starts
			// peerless and re-homes onto a server on its first announce.
			cfg.Obs.Log.Named("core").Warn("worker joins overlay degraded",
				"worker", i, "err", connErr)
		}
		spool := ""
		if cfg.ResultSpoolDir != "" {
			spool = filepath.Join(cfg.ResultSpoolDir, fmt.Sprintf("worker-%d", i))
		}
		wretry := cfg.WorkerRetry
		wretry.Seed = cfg.WorkerRetry.Seed + uint64(i)
		wk, err := worker.New(node, home.Node().ID(), cfg.Engines, worker.Config{
			Cores:          cfg.WorkerCores,
			PollInterval:   cfg.Poll,
			Retry:          wretry,
			ServerAddrs:    serverAddrs,
			ResultSpoolDir: spool,
			FSToken:        cfg.FSToken,
			SpoolDir:       cfg.SpoolDir,
			Obs:            cfg.Obs,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Workers = append(f.Workers, wk)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			_ = wk.Run(ctx)
		}()
	}

	// Client node for submissions and monitoring. With replication enabled
	// it also peers with every standby, so a promotion announcement reaches
	// it directly and anycast status queries survive the primary's death.
	clientTr := tr
	if cfg.ServerChaos != nil {
		f.ClientChaos = chaos.New(tr, chaos.Config{}, cfg.Obs)
		clientTr = f.ClientChaos
	}
	f.clientNode = newNode(clientTr)
	if _, err := f.clientNode.ConnectPeer("server-0"); err != nil {
		f.Close()
		return nil, err
	}
	for _, s := range cfg.Standbys {
		if _, err := f.clientNode.ConnectPeer(fmt.Sprintf("server-%d", s)); err != nil {
			f.Close()
			return nil, err
		}
	}
	f.cl = client.New(f.clientNode, client.Config{
		Server: f.Servers[0].Node().ID(),
		Poll:   cfg.Poll,
	})
	return f, nil
}

// Server returns server i's current serving instance under the fabric lock.
// During a failover the instance at an index changes (a promoted standby
// swaps its relay for a project server; a fenced primary swaps back), so
// tests racing a failover must read through these accessors rather than
// indexing the exported slices.
func (f *Fabric) Server(i int) *server.Server {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.Servers[i]
}

// Store returns server i's current durable store (nil for storeless relays
// and standbys) under the fabric lock.
func (f *Fabric) Store(i int) *store.Store {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.Stores[i]
}

// Peer returns server i's replication peer (nil when i has no replication
// role) under the fabric lock.
func (f *Fabric) Peer(i int) *replica.Peer {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.Peers[i]
}

// ProjectServer returns the server holding submitted projects.
func (f *Fabric) ProjectServer() *server.Server { return f.Servers[0] }

// Client returns the fabric's project client — the same client.Client type
// cpcctl uses over TLS, here bound to the in-memory overlay.
func (f *Fabric) Client() *client.Client { return f.cl }

// Submit creates a project on the project server through the wire protocol
// (exactly what cmd/cpcctl does over TLS). Options set tenant, priority and
// deadline on the underlying client.SubmitRequest.
func (f *Fabric) Submit(ctx context.Context, name, controllerName string, params any, opts ...client.SubmitOption) error {
	blob, err := wire.Marshal(params)
	if err != nil {
		return err
	}
	_, err = f.cl.Submit(ctx, client.SubmitRequest{
		Name:       name,
		Controller: controllerName,
		Params:     blob,
	}, opts...)
	return err
}

// Status queries a project over the wire.
func (f *Fabric) Status(ctx context.Context, name string) (wire.ProjectStatus, error) {
	return f.cl.Status(ctx, name)
}

// Wait blocks until the project completes (or ctx is done) and returns its
// final status. It polls over the wire rather than peeking at server
// internals, so it behaves identically for in-process and remote callers.
func (f *Fabric) Wait(ctx context.Context, name string) (wire.ProjectStatus, error) {
	return f.cl.Wait(ctx, name)
}

// CrashServer simulates a hard failure of server i: its overlay node is
// torn out (links to workers, peers and the client all die mid-flight) and
// its store is closed without writing a snapshot — leaving exactly the disk
// image a kill -9 leaves behind: the snapshots and fsynced WAL tail, and
// nothing that lived only in memory. RestartServer rebuilds the server from
// that image. Requires FabricConfig.StateDir (otherwise the crashed
// server's projects are simply gone, which is the pre-store behaviour).
func (f *Fabric) CrashServer(i int) {
	// The replication peer closes outside the fabric lock: its run loop may
	// be inside a promote/demote hook that needs smu, and Close waits for
	// that loop to finish.
	f.smu.Lock()
	p := f.Peers[i]
	f.Peers[i] = nil
	f.smu.Unlock()
	if p != nil {
		p.Close()
	}
	f.smu.Lock()
	defer f.smu.Unlock()
	f.Servers[i].Close()
	f.nodes[i].Close()
	if f.Stores[i] != nil {
		f.Stores[i].Close()
		f.Stores[i] = nil
	}
}

// relistenServer rebuilds server i's overlay node: the same identity seed
// (so its node ID — which workers announce to, spool results for, and the
// client addresses — is unchanged), the same listen address and transport
// (including any server chaos wrapper), and re-dials to its chain
// neighbours in both directions: at bootstrap only server i dialled i-1,
// but after a crash the neighbours' links are dead too and nobody else
// redials.
func (f *Fabric) relistenServer(i int) (*overlay.Node, error) {
	tr := f.tr
	if len(f.ServerChaos) > i && f.ServerChaos[i] != nil {
		tr = f.ServerChaos[i]
	}
	node := overlay.NewNode(overlay.NewIdentityFromSeed(f.serverSeeds[i]), overlay.NewTrustStore(), tr)
	node.Obs = f.cfg.Obs
	if err := node.Listen(fmt.Sprintf("server-%d", i)); err != nil {
		node.Close()
		return nil, fmt.Errorf("core: restarting server %d: %w", i, err)
	}
	for _, j := range []int{i - 1, i + 1} {
		if j < 0 || j >= len(f.Servers) {
			continue
		}
		if _, err := node.ConnectPeer(fmt.Sprintf("server-%d", j)); err != nil {
			f.cfg.Obs.Log.Named("core").Warn("restart could not reach chain neighbour",
				"server", i, "peer", j, "err", err)
		}
	}
	return node, nil
}

// reconnectClient re-dials the fabric's client link after server i came
// back, for the servers the client peers with (the project server and any
// standby).
func (f *Fabric) reconnectClient(i int) error {
	if f.clientNode == nil || (i != 0 && !f.isStandbyIdx(i)) {
		return nil
	}
	if _, err := f.clientNode.ConnectPeer(fmt.Sprintf("server-%d", i)); err != nil {
		return fmt.Errorf("core: reconnecting client after restart: %w", err)
	}
	return nil
}

// RestartServer rebuilds a crashed server from its state directory: a fresh
// store whose recovery the new server replays, the same node identity and
// listen address, and healed links. A server with a replication role comes
// back in whatever role its durable replica metadata last recorded — see
// restartReplicated.
func (f *Fabric) RestartServer(i int) error {
	if _, _, _, replicated := f.replRole(i); replicated {
		return f.restartReplicated(i)
	}
	st, err := f.openStore(i)
	if err != nil {
		return err
	}
	node, err := f.relistenServer(i)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	f.smu.Lock()
	f.nodes[i] = node
	f.Stores[i] = st
	f.Servers[i] = server.New(node, f.cfg.Registry, f.serverConfig(st))
	f.smu.Unlock()
	return f.reconnectClient(i)
}

// Close tears the deployment down.
func (f *Fabric) Close() {
	if f.cancel != nil {
		f.cancel()
	}
	// Replication peers stop first (their hooks swap servers and stores;
	// nothing may churn underneath the teardown), outside the fabric lock
	// for the same reason CrashServer closes them outside it.
	for i := range f.Peers {
		f.smu.Lock()
		p := f.Peers[i]
		f.Peers[i] = nil
		f.smu.Unlock()
		if p != nil {
			p.Close()
		}
	}
	for _, s := range f.Servers {
		s.Close()
	}
	f.wg.Wait()
	for _, ct := range f.Chaos {
		ct.Stop()
	}
	for _, ct := range f.ServerChaos {
		ct.Stop()
	}
	if f.ClientChaos != nil {
		f.ClientChaos.Stop()
	}
	for _, n := range f.nodes {
		n.Close()
	}
	// Stores close after the servers that journal to them.
	for _, st := range f.Stores {
		if st != nil {
			st.Close()
		}
	}
}

// RunMSM executes a full adaptive MSM project on a fresh fabric and returns
// the decoded result — the one-call entry point behind the villin
// experiments (Figs 2–5).
func RunMSM(params controller.MSMParams, cfg FabricConfig, timeout time.Duration) (*controller.MSMResult, error) {
	f, err := NewFabric(cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := f.Submit(ctx, "msm-project", controller.MSMControllerName, &params); err != nil {
		return nil, err
	}
	st, err := f.Wait(ctx, "msm-project")
	if err != nil {
		return nil, err
	}
	if st.State != "finished" {
		return nil, fmt.Errorf("core: MSM project ended in state %q: %s", st.State, st.Note)
	}
	var res controller.MSMResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RunBAR executes a BAR free-energy project on a fresh fabric.
func RunBAR(params controller.BARParams, cfg FabricConfig, timeout time.Duration) (*controller.BARResult, error) {
	f, err := NewFabric(cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := f.Submit(ctx, "bar-project", controller.BARControllerName, &params); err != nil {
		return nil, err
	}
	st, err := f.Wait(ctx, "bar-project")
	if err != nil {
		return nil, err
	}
	if st.State != "finished" {
		return nil, fmt.Errorf("core: BAR project ended in state %q: %s", st.State, st.Note)
	}
	var res controller.BARResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
