// Fabric-side wiring for WAL-shipped standby replication: which server
// replicates into which, the promote/demote hooks that swap the serving
// layer in and out around a replica.Peer's role transitions, and the
// replication-aware restart path that resumes whatever role a server's
// durable replica metadata says it last held.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"copernicus/internal/server"
	"copernicus/internal/store"
	"copernicus/internal/store/replica"
)

// replRole resolves server i's replication role from FabricConfig.Standbys:
// the state directory its Peer replicates from or into, its configured role,
// and the index of its counterpart. ok is false when i has no replication
// role.
//
// A primary replicates out of its own serving directory (server-i); a
// standby mirrors into a separate replica-i directory so its relay duties
// never mix with the warm copy. After a promotion the replica directory IS
// the serving directory — RestartServer follows the durable metadata, not
// the original naming.
func (f *Fabric) replRole(i int) (dir, role string, peerIdx int, ok bool) {
	for p, s := range f.cfg.Standbys {
		switch i {
		case p:
			return filepath.Join(f.cfg.StateDir, fmt.Sprintf("server-%d", i)),
				store.RolePrimary, s, true
		case s:
			return filepath.Join(f.cfg.StateDir, fmt.Sprintf("replica-%d", i)),
				store.RoleStandby, p, true
		}
	}
	return "", "", 0, false
}

// isStandbyIdx reports whether server i is configured as a standby (and so
// runs as a storeless relay until promoted).
func (f *Fabric) isStandbyIdx(i int) bool {
	for _, s := range f.cfg.Standbys {
		if s == i {
			return true
		}
	}
	return false
}

// validateStandbys rejects replication topologies the fabric cannot run.
func (c *FabricConfig) validateStandbys() error {
	if len(c.Standbys) == 0 {
		return nil
	}
	if c.StateDir == "" {
		return fmt.Errorf("core: FabricConfig.Standbys requires StateDir")
	}
	used := make(map[int]bool)
	for p, s := range c.Standbys {
		if p < 0 || p >= c.Servers || s < 0 || s >= c.Servers {
			return fmt.Errorf("core: standby mapping %d→%d outside server range [0,%d)", p, s, c.Servers)
		}
		if p == s {
			return fmt.Errorf("core: server %d cannot be its own standby", p)
		}
		if _, isPrimary := c.Standbys[s]; isPrimary {
			return fmt.Errorf("core: server %d is both a primary and a standby (chains are not supported)", s)
		}
		if used[s] {
			return fmt.Errorf("core: server %d is the standby of two primaries", s)
		}
		used[s] = true
	}
	return nil
}

// replStoreOptions are the options replica.Peer uses when it (re)opens a
// replica store — the standby mirror and the post-promotion recovery open.
// The WAL write hook is deliberately absent: chaos WAL faults target the
// primary's disk, and replicating the injected corruption would double-count
// every fault.
func (f *Fabric) replStoreOptions() store.Options {
	return store.Options{
		FsyncInterval: f.cfg.FsyncInterval,
		SnapshotEvery: f.cfg.SnapshotEvery,
		NoSync:        f.cfg.StoreNoSync,
		Obs:           f.cfg.Obs,
	}
}

// serverConfig builds server i's serving configuration around st (nil for a
// storeless relay).
func (f *Fabric) serverConfig(st *store.Store) server.Config {
	return server.Config{
		HeartbeatInterval: f.cfg.Heartbeat,
		RelayTimeout:      2 * time.Second,
		FSToken:           f.cfg.FSToken,
		Store:             st,
		Obs:               f.cfg.Obs,
	}
}

// replConfig builds the replica.Config for server i acting as role against
// counterpart peerIdx, replicating via dir.
func (f *Fabric) replConfig(i, peerIdx int, dir, role string) replica.Config {
	return replica.Config{
		Dir:          dir,
		Role:         role,
		PeerID:       f.serverIDs[peerIdx],
		PeerAddr:     fmt.Sprintf("server-%d", peerIdx),
		SelfAddr:     fmt.Sprintf("server-%d", i),
		Interval:     f.cfg.ReplInterval,
		LeaseTimeout: f.cfg.LeaseTimeout,
		StoreOptions: f.replStoreOptions(),
		Hooks:        f.replHooks(i),
		Obs:          f.cfg.Obs,
	}
}

// replHooks connect server i's replica.Peer to the fabric's serving layer.
// Both hooks run on the Peer's own goroutine and swap f.Servers[i] /
// f.Stores[i] under the fabric lock, so tests watching the failover must
// read through Fabric.Server/Store/Peer rather than indexing the slices.
func (f *Fabric) replHooks(i int) replica.Hooks {
	return replica.Hooks{
		// Promote: the replica store has already been re-opened through the
		// normal recovery path (snapshot + tail replay, torn-tail handling).
		// Building a server on top of it replays that image — projects
		// resume, the queue re-seeds, orphaned commands requeue — exactly as
		// if the primary had restarted, just on this node.
		Promote: func(st *store.Store, epoch uint64) ([]string, error) {
			f.smu.Lock()
			defer f.smu.Unlock()
			f.Servers[i].Close() // retire the relay-only server
			srv := server.New(f.nodes[i], f.cfg.Registry, f.serverConfig(st))
			f.Servers[i] = srv
			f.Stores[i] = st
			f.cfg.Obs.Log.Named("core").Info("standby promoted to project server",
				"server", i, "epoch", epoch)
			return srv.ProjectNames(), nil
		},
		// Demote: a fenced ex-primary tears its serving side down; the Peer
		// then archives the divergent state directory and rejoins the new
		// primary as a standby. The node keeps relaying for its attached
		// workers in the meantime.
		Demote: func(epoch uint64, newPrimaryID string) error {
			f.smu.Lock()
			defer f.smu.Unlock()
			f.Servers[i].Close()
			if f.Stores[i] != nil {
				f.Stores[i].Close()
				f.Stores[i] = nil
			}
			f.Servers[i] = server.New(f.nodes[i], f.cfg.Registry, f.serverConfig(nil))
			f.cfg.Obs.Log.Named("core").Info("fenced server demoted to relay",
				"server", i, "epoch", epoch, "new_primary", newPrimaryID)
			return nil
		},
	}
}

// setupReplication creates the replica.Peer for every server with a
// replication role. Called by NewFabric after all server nodes exist (peers
// need each other's node IDs).
func (f *Fabric) setupReplication() error {
	for i := range f.Servers {
		dir, role, peerIdx, ok := f.replRole(i)
		if !ok {
			continue
		}
		var st *store.Store
		if role == store.RolePrimary {
			st = f.Stores[i] // standby peers open their own replica store
		}
		p, err := replica.NewPeer(f.nodes[i], st, f.replConfig(i, peerIdx, dir, role))
		if err != nil {
			return fmt.Errorf("core: replication peer for server %d: %w", i, err)
		}
		f.Peers[i] = p
	}
	return nil
}

// restartReplicated rebuilds a crashed server that has a replication role.
// Unlike the plain restart path, the role it comes back in is whatever its
// durable replica metadata recorded — an ex-primary that was fenced while
// down must resume as a standby, and a promoted standby must resume as a
// primary serving out of its replica directory.
func (f *Fabric) restartReplicated(i int) error {
	dir, role, peerIdx, _ := f.replRole(i)
	if meta, err := store.LoadReplicaMeta(dir); err != nil {
		return fmt.Errorf("core: restarting server %d: %w", i, err)
	} else if meta != nil && meta.Role != "" {
		role = meta.Role
	}

	node, err := f.relistenServer(i)
	if err != nil {
		return err
	}
	var st *store.Store
	if role == store.RolePrimary {
		if st, err = f.openStoreDir(dir); err != nil {
			node.Close()
			return fmt.Errorf("core: restarting server %d: %w", i, err)
		}
	}
	srv := server.New(node, f.cfg.Registry, f.serverConfig(st))
	peer, err := replica.NewPeer(node, st, f.replConfig(i, peerIdx, dir, role))
	if err != nil {
		srv.Close()
		if st != nil {
			st.Close()
		}
		node.Close()
		return fmt.Errorf("core: restarting server %d: %w", i, err)
	}

	f.smu.Lock()
	f.nodes[i] = node
	f.Stores[i] = st
	f.Servers[i] = srv
	f.Peers[i] = peer
	f.smu.Unlock()
	return f.reconnectClient(i)
}
