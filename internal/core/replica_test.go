package core

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/store"
	"copernicus/internal/wire"
)

// replicatedFabric builds the standard failover topology: server-0 holds
// projects, server-1 is its warm standby (and a relay for half the
// workers), with replication timers scaled down so a failover completes in
// well under a second.
func replicatedFabric(t *testing.T, mutate func(*FabricConfig)) *Fabric {
	t.Helper()
	cfg := FabricConfig{
		Servers:          2,
		WorkersPerServer: 2,
		Standbys:         map[int]int{0: 1},
		StateDir:         t.TempDir(),
		ResultSpoolDir:   t.TempDir(),
		ReplInterval:     25 * time.Millisecond,
		LeaseTimeout:     350 * time.Millisecond,
		FsyncInterval:    200 * time.Microsecond,
		SnapshotEvery:    48,
		Obs:              obs.New(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// waitClosed fails the test unless ch closes within timeout.
func waitClosed(t *testing.T, ch <-chan struct{}, timeout time.Duration, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(timeout):
		t.Fatalf("timed out waiting for %s", what)
	}
}

// waitReplicaCaughtUp blocks until the standby of primary pi has
// acknowledged the primary's whole journal (at least min records), and
// returns the acknowledged frontier.
func waitReplicaCaughtUp(t *testing.T, f *Fabric, pi int, min uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		last := f.Store(pi).LastSeq()
		acked := f.Peer(pi).AckedSeq()
		if acked == last && last >= min {
			return acked
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("standby never caught up to primary %d (acked %d, journal %d)",
		pi, f.Peer(pi).AckedSeq(), f.Store(pi).LastSeq())
	return 0
}

// assertMSMResult decodes st as an MSM result and applies the convergence
// checks: every generation present, min RMSD non-increasing.
func assertMSMResult(t *testing.T, st wire.ProjectStatus, p controller.MSMParams) {
	t.Helper()
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
	var res controller.MSMResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != p.Generations {
		t.Fatalf("converged with %d generations, want %d", len(res.Generations), p.Generations)
	}
	for i := 1; i < len(res.Generations); i++ {
		if res.Generations[i].MinRMSD > res.Generations[i-1].MinRMSD+1e-9 {
			t.Errorf("min RMSD increased between generations %d and %d", i-1, i)
		}
	}
}

// TestFailoverPromotesStandbyMidMSM is the tentpole end-to-end: an adaptive
// MSM campaign is running against a replicated project server when the
// server is hard-killed. The standby's lease lapses, it replays its warm
// copy through the normal recovery path, promotes itself, re-seeds the
// queue, and the campaign converges to a full result — no command lost.
// The client follows the promotion announcement, and a later restart of the
// ex-primary ends with it fenced and demoted to standby, its divergent
// state directory archived: exactly one primary at every step that matters.
func TestFailoverPromotesStandbyMidMSM(t *testing.T) {
	f := replicatedFabric(t, nil)
	defer f.Close()
	stateDir := f.cfg.StateDir

	p := smallMSMParams()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "failover-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, f, "failover-msm", 6)
	waitReplicaCaughtUp(t, f, 0, 10)

	f.CrashServer(0)
	waitClosed(t, f.Peer(1).Promoted(), 30*time.Second, "standby promotion")
	if got := f.Peer(1).Role(); got != store.RolePrimary {
		t.Fatalf("promoted standby role = %q, want %q", got, store.RolePrimary)
	}
	if e := f.Peer(1).Epoch(); e != 2 {
		t.Fatalf("promoted standby epoch = %d, want 2", e)
	}
	if f.Store(1) == nil {
		t.Fatal("promotion did not hand the recovered store to the serving layer")
	}

	st, err := f.Wait(ctxTimeout(t, 4*time.Minute), "failover-msm")
	if err != nil {
		t.Fatal(err)
	}
	assertMSMResult(t, st, p)

	// The promotion announcement must have retargeted the client's
	// submissions to the new primary.
	promotedID := f.Server(1).Node().ID()
	deadline := time.Now().Add(10 * time.Second)
	for f.Client().Server() != promotedID {
		if time.Now().After(deadline) {
			t.Fatalf("client still targets %s, want promoted %s", f.Client().Server(), promotedID)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The fenced ex-primary comes back, discovers the higher epoch on its
	// first shipment, and demotes to standby instead of split-braining.
	if err := f.RestartServer(0); err != nil {
		t.Fatal(err)
	}
	waitClosed(t, f.Peer(0).Demoted(), 30*time.Second, "ex-primary demotion")
	if got := f.Peer(0).Role(); got != store.RoleStandby {
		t.Fatalf("restarted ex-primary role = %q, want %q", got, store.RoleStandby)
	}
	if got := f.Peer(1).Role(); got != store.RolePrimary {
		t.Fatalf("two primaries after rejoin: server 1 role = %q", got)
	}
	archives, err := filepath.Glob(filepath.Join(stateDir, "server-0.fenced-e*"))
	if err != nil || len(archives) == 0 {
		t.Fatalf("fenced ex-primary's divergent state directory was not archived (err=%v)", err)
	}
	// And it resyncs: the new standby's applied frontier reaches the new
	// primary's journal end.
	deadline = time.Now().Add(30 * time.Second)
	for f.Peer(0).AckedSeq() != f.Store(1).LastSeq() || f.Store(1).LastSeq() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("demoted standby never resynced (applied %d, primary journal %d)",
				f.Peer(0).AckedSeq(), f.Store(1).LastSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Satellite: the replication gauges are live on /metrics.
	ms := httptest.NewServer(f.Obs.Handler())
	defer ms.Close()
	body := httpGetBody(t, ms.URL+"/metrics")
	for metric, min := range map[string]float64{
		"copernicus_replica_ship_seconds_count":    1,
		"copernicus_replica_shipped_records_total": 10,
		"copernicus_replica_promotions_total":      1,
		"copernicus_replica_fencings_total":        1,
	} {
		if v := promValue(t, body, metric); v < min {
			t.Errorf("%s = %v, want >= %v", metric, v, min)
		}
	}
	// Lease state: the promoted primary holds the lease (1) and the demoted
	// standby is back in contact (1) — summed across both nodes: 2.
	if v := promValue(t, body, "copernicus_replica_lease_state"); v != 2 {
		t.Errorf("copernicus_replica_lease_state sum = %v, want 2 (both sides held)", v)
	}
}

// TestFailoverUnderPartitionChaos drives the same campaign through a full
// network partition of the replication link (plus probabilistic write drops
// on the server↔server transports): the standby promotes during the
// partition, the healed ex-primary is fenced on its next shipment and
// demotes, and the campaign still converges — the split-brain window closes
// by epoch fencing, not luck.
func TestFailoverUnderPartitionChaos(t *testing.T) {
	f := replicatedFabric(t, func(cfg *FabricConfig) {
		cfg.ServerChaos = &chaos.Config{Seed: 11, DropProb: 0.02}
	})
	defer f.Close()

	p := smallMSMParams()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "partition-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, f, "partition-msm", 6)
	waitReplicaCaughtUp(t, f, 0, 10)

	// Sever the primary's island from the standby's: the direct replication
	// link in both directions, plus the client's bridge to the primary (the
	// overlay forwards envelopes multi-hop, so a client peered with both
	// sides would relay batches around a server-only cut). The campaign
	// keeps running on the primary while the standby's lease runs out.
	f.ServerChaos[0].Partition("server-1")
	f.ServerChaos[1].Partition("server-0")
	f.ClientChaos.Partition("server-0")
	waitClosed(t, f.Peer(1).Promoted(), 30*time.Second, "standby promotion during partition")

	// Heal. The ex-primary's next shipment is refused with the higher epoch
	// and it demotes — the serving side moves wholesale to the new primary.
	f.ServerChaos[0].Heal("server-1")
	f.ServerChaos[1].Heal("server-0")
	f.ClientChaos.Heal("server-0")
	waitClosed(t, f.Peer(0).Demoted(), 30*time.Second, "fenced ex-primary demotion")
	if got := f.Peer(0).Role(); got != store.RoleStandby {
		t.Fatalf("fenced ex-primary role = %q, want %q", got, store.RoleStandby)
	}
	if got := f.Peer(1).Role(); got != store.RolePrimary {
		t.Fatalf("promoted standby role = %q, want %q", got, store.RolePrimary)
	}

	st, err := f.Wait(ctxTimeout(t, 4*time.Minute), "partition-msm")
	if err != nil {
		t.Fatal(err)
	}
	assertMSMResult(t, st, p)

	// The chaos layer must actually have fired faults, or this proved
	// nothing about the replication link's resilience.
	ms := httptest.NewServer(f.Obs.Handler())
	defer ms.Close()
	body := httpGetBody(t, ms.URL+"/metrics")
	if v := promValue(t, body, "copernicus_chaos_faults_total"); v < 1 {
		t.Errorf("no chaos faults fired (copernicus_chaos_faults_total = %v)", v)
	}
}

// smallRepexParams is a three-rung sync REMD ladder sized so the whole
// epoch gang fits one worker and a run lasts a few seconds — long enough
// to kill the primary mid-ladder.
func smallRepexParams() controller.RepexParams {
	p := controller.DefaultRepexParams()
	p.Replicas = 3
	p.SegmentSteps = 600
	p.Epochs = 4
	p.CheckpointEvery = 150
	p.Config.Shards = 1
	return p
}

// waitRepexProgress gates the crash on the primary's in-process project
// state rather than a wire status poll: the 3-replica MD gang saturates a
// small host (worse under the race detector), so anycast polls can starve
// past the overlay timeout — or miss the whole run — without the server
// being gone. Peeking keeps the kill inside the ladder deterministically.
func waitRepexProgress(t *testing.T, f *Fabric, si int, name string, minFinished int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := f.Server(si).Project(name)
		if !ok {
			t.Fatalf("project %q not on server %d", name, si)
		}
		if st.State != "running" {
			t.Fatalf("project left running state before the crash: %q (%s)", st.State, st.Note)
		}
		if st.Finished >= minFinished {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("project never reached the crash point")
}

// TestFailoverPreservesRepexLadder kills the primary in the middle of a
// gang-scheduled sync REMD ladder. The promoted standby must resume the
// exchange ladder — RNG, acceptance statistics, walker positions, boundary
// states — exactly where the primary's journal left it: the final result
// blob must be byte-identical to an uninterrupted run of the same project,
// and no half-running gang may be stranded across the failover.
func TestFailoverPreservesRepexLadder(t *testing.T) {
	p := smallRepexParams()

	// Reference: the same project on an identical (but unharmed) topology.
	// The project seed derives from the name, so the command stream and
	// every Metropolis draw must match the failover run's.
	ref := replicatedFabric(t, func(cfg *FabricConfig) {
		cfg.WorkerCores = p.Replicas
	})
	if err := ref.Submit(ctxTimeout(t, 30*time.Second), "failover-repex", controller.RepexControllerName, &p); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Wait(ctxTimeout(t, 4*time.Minute), "failover-repex")
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	if want.State != "finished" {
		t.Fatalf("reference state = %q (%s)", want.State, want.Note)
	}

	f := replicatedFabric(t, func(cfg *FabricConfig) {
		cfg.WorkerCores = p.Replicas
	})
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "failover-repex", controller.RepexControllerName, &p); err != nil {
		t.Fatal(err)
	}
	waitRepexProgress(t, f, 0, "failover-repex", 2)
	waitReplicaCaughtUp(t, f, 0, 10)

	f.CrashServer(0)
	waitClosed(t, f.Peer(1).Promoted(), 30*time.Second, "standby promotion")

	st, err := f.Wait(ctxTimeout(t, 4*time.Minute), "failover-repex")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
	// No stranded half-gang: the ladder drained completely.
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("gang members stranded across failover: %d queued, %d running", st.Queued, st.Running)
	}

	var res, refRes controller.RepexResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if err := wire.Unmarshal(want.Result, &refRes); err != nil {
		t.Fatal(err)
	}
	if res.SegmentsRun != p.Replicas*p.Epochs {
		t.Errorf("segments = %d, want %d", res.SegmentsRun, p.Replicas*p.Epochs)
	}
	// The acceptance criterion: exchange statistics and boundary physics
	// survive promotion bitwise-intact.
	if !bytes.Equal(st.Result, want.Result) {
		t.Errorf("failover result diverged from uninterrupted run:\nuninterrupted: %+v\nfailover:      %+v",
			refRes, res)
	}

	// The promoted server also serves the live Detail blob: per-pair
	// acceptance statistics matching the final result.
	if len(st.Detail) == 0 {
		t.Fatal("promoted server returned no controller detail")
	}
	var d controller.RepexDetail
	if err := wire.Unmarshal(st.Detail, &d); err != nil {
		t.Fatal(err)
	}
	for i := range d.Attempts {
		if d.Attempts[i] != res.Attempts[i] || d.Accepts[i] != res.Accepts[i] {
			t.Errorf("detail pair %d diverges from result", i)
		}
	}
}

// TestFailoverDuplicateResultAbsorbedOnce is the duplicate-delivery
// satellite: a result the old primary journaled (and replicated) before its
// death is delivered again to the promoted standby — the worker's retry
// path does exactly this when an ack is lost in the failover window. The
// promoted server must absorb it idempotently: "ignored" reply, duplicate
// counter bumped, finished count unchanged.
func TestFailoverDuplicateResultAbsorbedOnce(t *testing.T) {
	f := replicatedFabric(t, nil)
	defer f.Close()
	stateDir := f.cfg.StateDir

	p := smallMSMParams()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "dup-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, f, "dup-msm", 6)
	replicatedUpTo := waitReplicaCaughtUp(t, f, 0, 10)

	f.CrashServer(0)
	waitClosed(t, f.Peer(1).Promoted(), 30*time.Second, "standby promotion")
	st, err := f.Wait(ctxTimeout(t, 4*time.Minute), "dup-msm")
	if err != nil {
		t.Fatal(err)
	}
	assertMSMResult(t, st, p)

	// Dig a finished result out of the dead primary's WAL — preferably one
	// that was provably replicated before the crash, so the promoted server
	// already absorbed it during replay. A snapshot rotation near the crash
	// point can compact those out of the tail; any result record for the
	// project still proves absorb-once, since the promoted server finished
	// every command either way. Its Data field is the verbatim
	// wire.CommandResult the worker originally delivered.
	rec, err := store.ReadAll(filepath.Join(stateDir, "server-0"))
	if err != nil {
		t.Fatal(err)
	}
	var dup *store.Record
	for i := range rec.Records {
		r := &rec.Records[i]
		if r.Type != store.RecResult || r.Project != "dup-msm" {
			continue
		}
		if dup == nil || r.Seq <= replicatedUpTo {
			dup = r
		}
		if r.Seq <= replicatedUpTo {
			break
		}
	}
	if dup == nil {
		t.Fatal("no result record in the dead primary's WAL")
	}

	// Deliver it again, as a retrying worker would, straight to the
	// promoted server.
	sender := overlay.NewNode(overlay.NewIdentityFromSeed(99999), overlay.NewTrustStore(), f.Net.Transport())
	defer sender.Close()
	if _, err := sender.ConnectPeer("server-1"); err != nil {
		t.Fatal(err)
	}
	before, err := f.Status(ctxTimeout(t, 10*time.Second), "dup-msm")
	if err != nil {
		t.Fatal(err)
	}
	ms := httptest.NewServer(f.Obs.Handler())
	defer ms.Close()
	dupsBefore := promValue(t, httpGetBody(t, ms.URL+"/metrics"), "copernicus_results_duplicate_total")

	reply, err := sender.RequestTimeout(f.Server(1).Node().ID(), wire.MsgResult, dup.Data, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ignored" {
		t.Fatalf("duplicate result reply = %q, want \"ignored\"", reply)
	}

	after, err := f.Status(ctxTimeout(t, 10*time.Second), "dup-msm")
	if err != nil {
		t.Fatal(err)
	}
	if after.Finished != before.Finished {
		t.Fatalf("duplicate result changed the finished count: %d → %d", before.Finished, after.Finished)
	}
	dupsAfter := promValue(t, httpGetBody(t, ms.URL+"/metrics"), "copernicus_results_duplicate_total")
	if dupsAfter < dupsBefore+1 {
		t.Errorf("copernicus_results_duplicate_total = %v, want >= %v", dupsAfter, dupsBefore+1)
	}
}
