package core

import (
	"context"
	"math"
	"testing"
	"time"

	"copernicus/internal/controller"
)

// ctxTimeout returns a context cancelled after d, cleaned up with the test.
func ctxTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// smallMSMParams is a scaled-down villin protocol that completes in seconds.
func smallMSMParams() controller.MSMParams {
	p := controller.DefaultMSMParams()
	p.NStarts = 3
	p.TasksPerStart = 4
	p.SegmentNs = 20
	p.FrameNs = 2
	p.SegmentsPerGen = 18
	p.Generations = 3
	p.Clusters = 30
	p.LagNs = 6
	p.PropagateNs = 400
	return p
}

func TestFabricMSMEndToEnd(t *testing.T) {
	res, err := RunMSM(smallMSMParams(), FabricConfig{Servers: 1, WorkersPerServer: 3}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != 3 {
		t.Fatalf("generations = %d, want 3", len(res.Generations))
	}
	for i, g := range res.Generations {
		if g.Generation != i {
			t.Errorf("generation %d labelled %d", i, g.Generation)
		}
		if g.SegmentsDone < 18 {
			t.Errorf("generation %d has %d segments, want >= 18", i, g.SegmentsDone)
		}
		if g.States < 1 {
			t.Errorf("generation %d has empty connected set", i)
		}
		if g.MinRMSD <= 0 || math.IsInf(g.MinRMSD, 1) {
			t.Errorf("generation %d min RMSD = %v", i, g.MinRMSD)
		}
	}
	// Min RMSD must be monotonically non-increasing across generations.
	for i := 1; i < len(res.Generations); i++ {
		if res.Generations[i].MinRMSD > res.Generations[i-1].MinRMSD+1e-9 {
			t.Errorf("min RMSD increased between generations %d and %d", i-1, i)
		}
	}
	if len(res.Trajs) < 36 { // 12 initial + 12 per respawn round
		t.Errorf("only %d trajectories recorded", len(res.Trajs))
	}
	if len(res.PopTimesNs) == 0 || len(res.PopFolded) != len(res.PopTimesNs) {
		t.Errorf("population curve missing: %d/%d points", len(res.PopTimesNs), len(res.PopFolded))
	}
	if len(res.RMSDTimesNs) == 0 || len(res.RMSDMean) != len(res.RMSDTimesNs) {
		t.Errorf("ensemble RMSD curve missing")
	}
}

func TestFabricMSMDistributedAcrossRelays(t *testing.T) {
	// Three-server chain; workers on relay servers must still receive
	// commands (relayed announcements) and return results to the project
	// server through the overlay.
	p := smallMSMParams()
	p.Generations = 2
	f, err := NewFabric(FabricConfig{Servers: 3, WorkersPerServer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "relay-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	st, err := f.Wait(ctxTimeout(t, 2*time.Minute), "relay-msm")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
	// Workers homed at relay servers must have done real work.
	relayWork := 0
	for i, w := range f.Workers {
		if i%3 != 0 { // workers 1 and 2 are on relay servers
			relayWork += w.Completed()
		}
	}
	if relayWork == 0 {
		t.Error("relay-homed workers completed no commands; relaying is broken")
	}
}

func TestFabricBAREndToEnd(t *testing.T) {
	p := controller.DefaultBARParams()
	p.Windows = 3
	p.SamplesPerCommand = 400
	p.BatchPerWindow = 2
	p.TargetStdErr = 0.08
	p.Offset = 2.5
	res, err := RunBAR(p, FabricConfig{Servers: 1, WorkersPerServer: 2}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	if math.Abs(res.Total.DeltaF-2.5) > 5*res.Total.StdErr+0.15 {
		t.Errorf("ΔF = %v ± %v, exact 2.5", res.Total.DeltaF, res.Total.StdErr)
	}
	if res.Total.StdErr > p.TargetStdErr && res.Rounds < p.MaxRounds {
		t.Errorf("stopped with error %v above target %v at round %d",
			res.Total.StdErr, p.TargetStdErr, res.Rounds)
	}
	if res.SamplesUsed == 0 {
		t.Error("no samples recorded")
	}
}

func TestFabricStatusOverWire(t *testing.T) {
	p := smallMSMParams()
	p.Generations = 1
	f, err := NewFabric(FabricConfig{Servers: 1, WorkersPerServer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "status-test", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	st, err := f.Status(ctxTimeout(t, 10*time.Second), "status-test")
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "status-test" || st.Controller != "msm" {
		t.Errorf("status = %+v", st)
	}
	if st.State != "running" && st.State != "finished" {
		t.Errorf("state = %q", st.State)
	}
	if _, err := f.Wait(ctxTimeout(t, 2*time.Minute), "status-test"); err != nil {
		t.Fatal(err)
	}
	st, err = f.Status(ctxTimeout(t, 10*time.Second), "status-test")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" || st.Result == nil {
		t.Errorf("final status = %q, result %d bytes", st.State, len(st.Result))
	}
}

func TestFabricUnknownController(t *testing.T) {
	f, err := NewFabric(FabricConfig{Servers: 1, WorkersPerServer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "bad", "no-such-controller", &struct{}{}); err == nil {
		t.Error("unknown controller accepted")
	}
}

func TestFabricDuplicateProject(t *testing.T) {
	p := controller.DefaultBARParams()
	p.Windows = 1
	p.SamplesPerCommand = 10
	p.BatchPerWindow = 1
	p.MaxRounds = 1
	f, err := NewFabric(FabricConfig{Servers: 1, WorkersPerServer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "dup", controller.BARControllerName, &p); err != nil {
		t.Fatal(err)
	}
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "dup", controller.BARControllerName, &p); err == nil {
		t.Error("duplicate project name accepted")
	}
}

func TestFabricSharedFS(t *testing.T) {
	dir := t.TempDir()
	p := controller.DefaultBARParams()
	p.Windows = 2
	p.SamplesPerCommand = 200
	p.BatchPerWindow = 1
	p.TargetStdErr = 0.5
	f, err := NewFabric(FabricConfig{
		Servers: 1, WorkersPerServer: 2,
		FSToken: "fs-1", SpoolDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "sharedfs", controller.BARControllerName, &p); err != nil {
		t.Fatal(err)
	}
	st, err := f.Wait(ctxTimeout(t, time.Minute), "sharedfs")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
}

func TestWaitTimeout(t *testing.T) {
	f, err := NewFabric(FabricConfig{Servers: 1, WorkersPerServer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Wait(ctxTimeout(t, 10*time.Millisecond), "nonexistent"); err == nil {
		t.Error("waiting on unknown project should fail")
	}
}
