package core

import (
	"context"
	"testing"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/engines"
	"copernicus/internal/overlay"
	"copernicus/internal/server"
	"copernicus/internal/wire"
	"copernicus/internal/worker"
)

// TestTLSDeploymentEndToEnd runs a complete project over real TLS on
// localhost — the deployment path of cmd/cpcserver + cmd/cpcworker +
// cpcctl, with mutual key exchange.
func TestTLSDeploymentEndToEnd(t *testing.T) {
	serverID := overlay.NewIdentityFromSeed(101)
	workerID := overlay.NewIdentityFromSeed(102)
	clientID := overlay.NewIdentityFromSeed(103)

	// Explicit key exchange: the server trusts the worker and the client;
	// they trust the server.
	sTrust := overlay.NewTrustStore()
	sTrust.Add(workerID.Pub)
	sTrust.Add(clientID.Pub)
	wTrust := overlay.NewTrustStore()
	wTrust.Add(serverID.Pub)
	cTrust := overlay.NewTrustStore()
	cTrust.Add(serverID.Pub)

	mkNode := func(id *overlay.Identity, trust *overlay.TrustStore) *overlay.Node {
		tr, err := overlay.NewTLSTransport(id, trust)
		if err != nil {
			t.Fatal(err)
		}
		return overlay.NewNode(id, trust, tr)
	}
	sNode := mkNode(serverID, sTrust)
	if err := sNode.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer sNode.Close()
	addr := sNode.ListenAddrs()[0]

	srv := server.New(sNode, controller.DefaultRegistry(), server.Config{
		HeartbeatInterval: time.Second,
	})
	defer srv.Close()

	wNode := mkNode(workerID, wTrust)
	defer wNode.Close()
	if _, err := wNode.ConnectPeer(addr); err != nil {
		t.Fatal(err)
	}
	wk, err := worker.New(wNode, sNode.ID(), engines.Default(), worker.Config{
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = wk.Run(ctx) }()

	// Submit a small BAR project through a TLS client, like cpcctl.
	cNode := mkNode(clientID, cTrust)
	defer cNode.Close()
	if _, err := cNode.ConnectPeer(addr); err != nil {
		t.Fatal(err)
	}
	p := controller.DefaultBARParams()
	p.Windows = 2
	p.SamplesPerCommand = 200
	p.BatchPerWindow = 1
	p.TargetStdErr = 0.5
	params, err := wire.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Marshal(&wire.ProjectSubmit{
		Name: "tls-project", Controller: "bar", Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cNode.RequestTimeout(sNode.ID(), wire.MsgSubmit, payload, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := srv.WaitProject(ctxTimeout(t, time.Minute), "tls-project")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
	var res controller.BARResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed == 0 {
		t.Error("no work executed over TLS")
	}
}

// TestHighLatencyFabric injects per-write latency into the overlay — the
// paper's clusters-on-different-continents scenario — and verifies the
// project still completes correctly.
func TestHighLatencyFabric(t *testing.T) {
	p := controller.DefaultBARParams()
	p.Windows = 2
	p.SamplesPerCommand = 100
	p.BatchPerWindow = 1
	p.TargetStdErr = 0.5
	f, err := NewFabric(FabricConfig{
		Servers:          2,
		WorkersPerServer: 1,
		Latency:          2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "wan", controller.BARControllerName, &p); err != nil {
		t.Fatal(err)
	}
	st, err := f.Wait(ctxTimeout(t, 2*time.Minute), "wan")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q (%s)", st.State, st.Note)
	}
}
