package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/controller"
	"copernicus/internal/retry"
	"copernicus/internal/wire"
)

// fabricMetric sums the named metric family across the fabric's registry.
func fabricMetric(t *testing.T, f *Fabric, name string) float64 {
	t.Helper()
	var buf strings.Builder
	f.Obs.Metrics.WriteText(&buf)
	return promValue(t, buf.String(), name)
}

func waitMetric(t *testing.T, f *Fabric, name string, min float64, timeout time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if fabricMetric(t, f, name) >= min {
			return true
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false
}

// TestChaosSoakMSMRecovers is the headline robustness soak: a full adaptive
// MSM project runs to completion while the chaos harness drops a quarter of
// every worker's writes, truncates a few more, and one worker is forcibly
// partitioned from every server mid-command. The assertions pin the whole
// degradation ladder: retries actually fired, the partitioned worker spooled
// its undeliverable result to disk and redelivered every byte of it after
// the heal, and the project still finished.
func TestChaosSoakMSMRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	spoolRoot := t.TempDir()
	f, err := NewFabric(FabricConfig{
		Servers:          2,
		WorkersPerServer: 2,
		Heartbeat:        250 * time.Millisecond,
		Poll:             20 * time.Millisecond,
		Chaos: chaos.Config{
			Seed:        42,
			DropProb:    0.25,
			PartialProb: 0.05,
		},
		WorkerRetry: retry.Policy{
			MaxAttempts: 4,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
			// Short per-attempt deadline: a write severed mid-envelope
			// never gets an error reply, so attempts must time out fast.
			PerAttempt: 500 * time.Millisecond,
		},
		ResultSpoolDir: spoolRoot,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	p := smallMSMParams()
	ctx := ctxTimeout(t, 3*time.Minute)
	if err := f.Submit(ctx, "chaos-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}

	// Wait until worker 0 is actually executing a command, then cut it off
	// from both servers so its finished result has nowhere to go.
	deadline := time.Now().Add(30 * time.Second)
	for len(f.Workers[0].RunningCommands()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker 0 never got work")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Chaos[0].Partition("server-0")
	f.Chaos[0].Partition("server-1")
	t.Log("worker 0 partitioned from all servers")

	// The command completes into the void: the worker retries, falls back
	// to anycast, then spools the result to disk.
	if !waitMetric(t, f, "copernicus_worker_results_spooled_total", 1, 20*time.Second) {
		t.Fatal("partitioned worker never spooled its undeliverable result")
	}
	spooled := fabricMetric(t, f, "copernicus_worker_results_spooled_total")
	t.Logf("worker 0 spooled %.0f result(s) while partitioned", spooled)

	f.Chaos[0].Heal("server-0")
	f.Chaos[0].Heal("server-1")
	t.Log("partition healed")

	st, err := f.Wait(ctx, "chaos-msm")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("project state = %q (%s)", st.State, st.Note)
	}
	var res controller.MSMResult
	if err := wire.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != p.Generations {
		t.Errorf("ran %d generations, want %d", len(res.Generations), p.Generations)
	}

	// Redelivery may trail the project finish (it rides the next successful
	// announce). Calm the weather — stop injecting new faults, keeping any
	// partitions — so the drain is pure catch-up, then every spool directory
	// must empty out. (Spool files are keyed by command ID, so a command
	// re-executed after a requeue overwrites its earlier spool file; the
	// spooled counter can therefore exceed the file count, which is why the
	// invariant is "no files left", not "redelivered == spooled".)
	for _, ct := range f.Chaos {
		ct.SetFaults(chaos.Config{})
	}
	drained := func() bool {
		left, _ := filepath.Glob(filepath.Join(spoolRoot, "*", "*.result"))
		return len(left) == 0 &&
			fabricMetric(t, f, "copernicus_worker_results_redelivered_total") >= spooled
	}
	drainDeadline := time.Now().Add(20 * time.Second)
	for !drained() {
		if time.Now().After(drainDeadline) {
			left, _ := filepath.Glob(filepath.Join(spoolRoot, "*", "*.result"))
			for i, w := range f.Workers {
				t.Logf("worker %d: home=%s completed=%d running=%v", i, w.Home(), w.Completed(), w.RunningCommands())
			}
			t.Fatalf("redelivered %.0f of %.0f spooled results; %d files left: %v",
				fabricMetric(t, f, "copernicus_worker_results_redelivered_total"),
				fabricMetric(t, f, "copernicus_worker_results_spooled_total"), len(left), left)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The fault injector and the retry layer both demonstrably fired.
	if got := fabricMetric(t, f, "copernicus_chaos_faults_total"); got == 0 {
		t.Error("chaos transport injected no faults")
	}
	if got := fabricMetric(t, f, "copernicus_retry_attempts_total"); got == 0 {
		t.Error("no request was ever retried under 25% drop probability")
	}
	t.Logf("faults=%.0f retries=%.0f spooled=%.0f redelivered=%.0f duplicates=%.0f",
		fabricMetric(t, f, "copernicus_chaos_faults_total"),
		fabricMetric(t, f, "copernicus_retry_attempts_total"),
		spooled,
		fabricMetric(t, f, "copernicus_worker_results_redelivered_total"),
		fabricMetric(t, f, "copernicus_results_duplicate_total"))
}
