package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/obs"
)

// httpGetBody fetches url and returns the body, failing the test on error.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(body)
}

// promValue sums the sample values of every series of a metric family in a
// Prometheus text exposition body.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	var total float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Exact family match only: next char must open labels or a space.
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestFabricObservabilityEndToEnd runs a small MSM project on a fabric with
// a shared Obs bundle and then checks the tentpole claims: the trace holds
// at least one command's complete lifecycle (submit → queue_wait → dispatch
// → run → result → controller) with causally ordered timestamps, and the
// MonitorHandler's /metrics reports the work that was done.
func TestFabricObservabilityEndToEnd(t *testing.T) {
	o := obs.New()
	p := smallMSMParams()
	p.Generations = 2
	f, err := NewFabric(FabricConfig{Servers: 1, WorkersPerServer: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Submit(ctxTimeout(t, 30*time.Second), "obs-msm", controller.MSMControllerName, &p); err != nil {
		t.Fatal(err)
	}
	if st, err := f.Wait(ctxTimeout(t, 2*time.Minute), "obs-msm"); err != nil || st.State != "finished" {
		t.Fatalf("project did not finish: state=%v err=%v", st.State, err)
	}

	// Group lifecycle spans by command and find one with all six stages.
	byCmd := make(map[string][]obs.Span)
	for _, s := range o.Trace.Spans() {
		if s.Command != "" {
			byCmd[s.Command] = append(byCmd[s.Command], s)
		}
	}
	if len(byCmd) == 0 {
		t.Fatal("no command spans recorded")
	}
	var complete []obs.Span
	for _, spans := range byCmd {
		stages := make(map[string]bool)
		for _, s := range spans {
			stages[s.Stage] = true
		}
		if len(stages) == len(obs.StageOrder) {
			complete = spans
			break
		}
	}
	if complete == nil {
		t.Fatalf("no command recorded all %d lifecycle stages across %d commands",
			len(obs.StageOrder), len(byCmd))
	}
	// Keep the earliest span per stage (requeues may repeat stages), then
	// check stage start times follow the causal order.
	earliest := make(map[string]obs.Span)
	for _, s := range complete {
		if prev, ok := earliest[s.Stage]; !ok || s.Start.Before(prev.Start) {
			earliest[s.Stage] = s
		}
	}
	ordered := make([]obs.Span, 0, len(earliest))
	for _, s := range earliest {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return obs.StageOrder[ordered[i].Stage] < obs.StageOrder[ordered[j].Stage]
	})
	for i := 1; i < len(ordered); i++ {
		// A stage may start while the previous one is still open (queue_wait
		// spans open at submit time), but never before the previous started.
		if ordered[i].Start.Before(ordered[i-1].Start) {
			t.Errorf("stage %s started at %v, before %s at %v",
				ordered[i].Stage, ordered[i].Start, ordered[i-1].Stage, ordered[i-1].Start)
		}
	}
	for _, s := range ordered {
		if s.Duration < 0 {
			t.Errorf("stage %s has negative duration %v", s.Stage, s.Duration)
		}
	}

	// The per-stage summaries must cover every lifecycle stage.
	sums := obs.Summarize(o.Trace.Spans())
	for stage := range obs.StageOrder {
		if sums[stage].Count == 0 {
			t.Errorf("stage %s missing from summaries", stage)
		}
	}

	// /metrics through the real MonitorHandler must report the finished work.
	srv := httptest.NewServer(f.ProjectServer().MonitorHandler())
	defer srv.Close()
	body := httpGetBody(t, srv.URL+"/metrics")
	finished := promValue(t, body, "copernicus_commands_finished_total")
	if finished == 0 {
		t.Error("copernicus_commands_finished_total is zero after a finished project")
	}
	for _, name := range []string{
		"copernicus_queue_depth",
		"copernicus_dispatch_latency_seconds_count",
		"copernicus_worker_commands_total",
		"copernicus_worker_command_seconds_count",
		"copernicus_generations_total",
		"copernicus_overlay_messages_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// /debug/trace serves the spans as JSON with the summaries attached.
	var dump struct {
		Recorded uint64                      `json:"recorded"`
		Stages   map[string]obs.StageSummary `json:"stages"`
		Spans    []obs.Span                  `json:"spans"`
	}
	if err := json.Unmarshal([]byte(httpGetBody(t, srv.URL+"/debug/trace")), &dump); err != nil {
		t.Fatalf("decoding /debug/trace: %v", err)
	}
	if dump.Recorded == 0 || len(dump.Spans) == 0 {
		t.Error("/debug/trace served no spans")
	}
	if dump.Stages[obs.StageRun].Count == 0 {
		t.Error("/debug/trace summaries missing the run stage")
	}
}
