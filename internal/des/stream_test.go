package des

import "testing"

// TestStreamAnalysisDES is the streaming-analysis acceptance scenario: over
// a 20-round adaptive campaign, per-round incremental analysis cost stays
// flat while batch reclustering grows linearly, and by round 20 the
// incremental path is at least 5× cheaper. Assertions lean on the
// deterministic work-unit model; wall-time checks use generous factors so
// loaded CI machines don't flake them.
func TestStreamAnalysisDES(t *testing.T) {
	p := DefaultStreamAnalysisParams()
	res, err := SimulateStreamAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != p.Rounds {
		t.Fatalf("got %d rounds, want %d", len(res.Rounds), p.Rounds)
	}

	// Flat incremental cost: once the center budget is full (first round —
	// it sees far more frames than K), every round touches the same number
	// of frames against the same number of centers.
	first := res.Rounds[0]
	for _, sr := range res.Rounds[1:] {
		if sr.IncrementalUnits != first.IncrementalUnits {
			t.Errorf("round %d: incremental units %.0f != round 1's %.0f (not flat)",
				sr.Round, sr.IncrementalUnits, first.IncrementalUnits)
		}
	}
	// Batch cost grows strictly with the campaign.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].BatchUnits <= res.Rounds[i-1].BatchUnits {
			t.Errorf("round %d: batch units %.0f did not grow past %.0f",
				res.Rounds[i].Round, res.Rounds[i].BatchUnits, res.Rounds[i-1].BatchUnits)
		}
	}

	// The acceptance bound: ≥5× cheaper than a full recluster by round 20,
	// in both the deterministic model and the measured wall time of the
	// real clustering code.
	if s := res.UnitSpeedup(20); s < 5 {
		t.Errorf("unit speedup at round 20 = %.1f×, want ≥ 5×", s)
	}
	if s := res.MeasuredSpeedup(20); s < 5 {
		t.Errorf("measured speedup at round 20 = %.1f×, want ≥ 5×", s)
	}
	if res.IncrementalTotalSeconds <= 0 ||
		res.BatchTotalSeconds/res.IncrementalTotalSeconds < 5 {
		t.Errorf("campaign totals: batch %.3fs vs incremental %.3fs, want ≥ 5× apart",
			res.BatchTotalSeconds, res.IncrementalTotalSeconds)
	}

	// Measured flatness, with slack for scheduler noise: the final
	// incremental round may not cost more than 5× the cheapest one, while
	// the final batch round must clearly outgrow its first.
	minInc := res.Rounds[0].IncrementalSeconds
	for _, sr := range res.Rounds {
		if sr.IncrementalSeconds < minInc {
			minInc = sr.IncrementalSeconds
		}
	}
	last := res.Rounds[len(res.Rounds)-1]
	if minInc > 0 && last.IncrementalSeconds/minInc > 5 {
		t.Errorf("incremental wall time drifted: round 20 %.4fs vs min %.4fs",
			last.IncrementalSeconds, minInc)
	}
	if last.BatchSeconds < 4*res.Rounds[0].BatchSeconds {
		t.Errorf("batch wall time did not grow: round 1 %.4fs, round 20 %.4fs",
			res.Rounds[0].BatchSeconds, last.BatchSeconds)
	}

	t.Logf("round 20: batch %.0f units (%.4fs) vs incremental %.0f units (%.4fs) — %.1f× / %.1f× cheaper",
		last.BatchUnits, last.BatchSeconds, last.IncrementalUnits, last.IncrementalSeconds,
		res.UnitSpeedup(20), res.MeasuredSpeedup(20))
	t.Logf("campaign: batch %.3fs vs incremental %.3fs over %d rounds",
		res.BatchTotalSeconds, res.IncrementalTotalSeconds, p.Rounds)
}

// TestStreamAnalysisDeterministic pins that the scenario itself is
// reproducible: same params → identical unit accounting (wall times vary).
func TestStreamAnalysisDeterministic(t *testing.T) {
	p := DefaultStreamAnalysisParams()
	p.Rounds = 4
	a, err := SimulateStreamAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateStreamAnalysis(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.BatchUnits != rb.BatchUnits || ra.IncrementalUnits != rb.IncrementalUnits ||
			ra.TotalFrames != rb.TotalFrames {
			t.Errorf("round %d units diverged across runs: %+v vs %+v", ra.Round, ra, rb)
		}
	}
}

func TestStreamAnalysisParamValidation(t *testing.T) {
	p := DefaultStreamAnalysisParams()
	p.Rounds = 0
	if _, err := SimulateStreamAnalysis(p); err == nil {
		t.Error("zero rounds accepted")
	}
	p = DefaultStreamAnalysisParams()
	p.Clusters = 0
	if _, err := SimulateStreamAnalysis(p); err == nil {
		t.Error("zero clusters accepted")
	}
}
