package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedModelShape(t *testing.T) {
	m := PaperParams().Speed
	if e := m.Efficiency(1); math.Abs(e-1) > 1e-9 {
		t.Errorf("E(1) = %v, want 1", e)
	}
	// Efficiency decreases monotonically with cores.
	prev := 2.0
	for _, c := range []int{1, 12, 24, 48, 96, 192, 1000} {
		e := m.Efficiency(c)
		if e <= 0 || e > 1 {
			t.Errorf("E(%d) = %v out of (0,1]", c, e)
		}
		if e >= prev {
			t.Errorf("E(%d) = %v did not decrease", c, e)
		}
		prev = e
	}
	// Speed still increases with cores in the strong-scaling regime.
	if m.NsPerDay(96) <= m.NsPerDay(24) {
		t.Error("s(96) should exceed s(24)")
	}
	if m.Efficiency(0) != 0 {
		t.Error("E(0) should be 0")
	}
}

func TestSegmentHours(t *testing.T) {
	m := SpeedModel{S1: 10, C0: 1000, Alpha: 2}
	// 50 ns at ~10 ns/day on one core ≈ 5 days = 120 h.
	h := m.SegmentHours(1, 50)
	if math.Abs(h-120) > 1 {
		t.Errorf("segment hours = %v, want ~120", h)
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.TotalCores = 0 },
		func(p *Params) { p.CoresPerSim = 0 },
		func(p *Params) { p.CoresPerSim = p.TotalCores + 1 },
		func(p *Params) { p.Trajectories = 0 },
		func(p *Params) { p.RoundsPerGen = 0 },
		func(p *Params) { p.Generations = 0 },
		func(p *Params) { p.SegmentNs = 0 },
		func(p *Params) { p.Speed.S1 = 0 },
	}
	for i, mutate := range bad {
		p := PaperParams()
		mutate(&p)
		if _, err := Simulate(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPaperCalibration(t *testing.T) {
	p := PaperParams()
	ref, err := ReferenceHours(p)
	if err != nil {
		t.Fatal(err)
	}
	// tres(1) = 1.1e5 hours (Fig 7 caption).
	if ref < 1.0e5 || ref > 1.2e5 {
		t.Errorf("tres(1) = %v h, paper 1.1e5", ref)
	}
	// First folded conformation at ~5000 cores in roughly 30 h (§4).
	r5000, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if r5000.Hours < 24 || r5000.Hours > 40 {
		t.Errorf("time at 5000 cores = %v h, paper ~30", r5000.Hours)
	}
	// One generation takes 10–11 h on the paper's resources (§4).
	gen := p
	gen.Generations = 1
	rg, err := Simulate(gen)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Hours < 9 || rg.Hours > 13 {
		t.Errorf("generation time = %v h, paper 10-11", rg.Hours)
	}
	// 20,000 cores: "just over 10 h" and ~53% efficiency (§4, Fig 8).
	big := p
	big.TotalCores = 20000
	big.CoresPerSim = 96
	rb, err := Simulate(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Hours < 9 || rb.Hours > 13 {
		t.Errorf("time at 20k cores = %v h, paper ~10.4", rb.Hours)
	}
	eff := Efficiency(ref, 20000, rb.Hours)
	if eff < 0.45 || eff > 0.60 {
		t.Errorf("efficiency at 20k cores = %v, paper 0.53", eff)
	}
}

func TestTimeDecreasesWithCores(t *testing.T) {
	// Fig 8: more cores, less wall time, until the command count saturates.
	p := PaperParams()
	p.CoresPerSim = 24
	prev := math.Inf(1)
	for _, n := range []int{24, 240, 1200, 5400} {
		p.TotalCores = n
		r, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Hours >= prev {
			t.Errorf("time did not decrease at N=%d: %v >= %v", n, r.Hours, prev)
		}
		prev = r.Hours
	}
}

func TestTimePlateausBeyondSaturation(t *testing.T) {
	// Once workers exceed trajectories, extra cores stop helping — the
	// Fig 8 plateau ("the time to result ceases to decrease").
	p := PaperParams()
	p.CoresPerSim = 24
	p.TotalCores = 24 * 225 // exactly one worker per trajectory
	sat, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.TotalCores = 24 * 225 * 4
	beyond, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if beyond.Hours < sat.Hours*0.99 {
		t.Errorf("time kept decreasing past saturation: %v vs %v", beyond.Hours, sat.Hours)
	}
}

func TestEfficiencyDropsAtSaturation(t *testing.T) {
	// Fig 7: efficiency collapses once N exceeds what the command pool can
	// use.
	p := PaperParams()
	p.CoresPerSim = 1
	ref, err := ReferenceHours(p)
	if err != nil {
		t.Fatal(err)
	}
	effAt := func(n int) float64 {
		q := p
		q.TotalCores = n
		r, err := Simulate(q)
		if err != nil {
			t.Fatal(err)
		}
		return Efficiency(ref, n, r.Hours)
	}
	small := effAt(100)  // under-saturated: near 1
	large := effAt(2000) // far past 225 single-core workers
	if small < 0.85 {
		t.Errorf("efficiency at 100 cores = %v, want near 1", small)
	}
	if large > small/2 {
		t.Errorf("efficiency did not collapse past saturation: %v vs %v", large, small)
	}
}

func TestBiggerTasksExtendScaling(t *testing.T) {
	// The paper's central trade-off: at large N, decomposing individual
	// simulations over more cores (c=96) beats c=1 on time-to-solution even
	// though per-simulation efficiency is lower.
	p := PaperParams()
	at := func(n, c int) float64 {
		q := p
		q.TotalCores = n
		q.CoresPerSim = c
		r, err := Simulate(q)
		if err != nil {
			t.Fatal(err)
		}
		return r.Hours
	}
	n := 20000
	if at(n, 96) >= at(n, 1) {
		t.Errorf("at N=%d, c=96 (%v h) should beat c=1 (%v h)", n, at(n, 96), at(n, 1))
	}
	// And conversely at small N, c=1 wins (no decomposition overhead).
	n = 225
	if at(n, 1) > at(n, 96) {
		t.Errorf("at N=%d, c=1 (%v h) should beat c=96 (%v h)", n, at(n, 1), at(n, 96))
	}
}

func TestBandwidthGrowsWithCores(t *testing.T) {
	// Fig 9: ensemble bandwidth rises with core count (more results per
	// wall-clock second) and stays in the sub-MB/s regime.
	p := PaperParams()
	p.CoresPerSim = 24
	prev := 0.0
	for _, n := range []int{240, 2400, 5400} {
		p.TotalCores = n
		r, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.BandwidthMBps <= prev {
			t.Errorf("bandwidth did not grow at N=%d", n)
		}
		if r.BandwidthMBps > 1 {
			t.Errorf("bandwidth %v MB/s implausibly high", r.BandwidthMBps)
		}
		prev = r.BandwidthMBps
	}
}

func TestCommandAccounting(t *testing.T) {
	p := PaperParams()
	p.TotalCores = 1000
	r, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Trajectories * p.RoundsPerGen * p.Generations
	if r.Commands != want {
		t.Errorf("commands = %d, want %d", r.Commands, want)
	}
	if r.SimulatedNs != float64(want)*p.SegmentNs {
		t.Errorf("simulated ns = %v", r.SimulatedNs)
	}
	if r.Workers != 1000/24 {
		t.Errorf("workers = %d", r.Workers)
	}
	if r.BusyFraction <= 0 || r.BusyFraction > 1 {
		t.Errorf("busy fraction = %v", r.BusyFraction)
	}
}

func TestPropertyEfficiencyBounded(t *testing.T) {
	p := PaperParams()
	ref, err := ReferenceHours(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nRaw, cRaw uint16) bool {
		n := int(nRaw)%50000 + 1
		cs := []int{1, 12, 24, 48, 96}
		c := cs[int(cRaw)%len(cs)]
		if c > n {
			return true
		}
		q := p
		q.TotalCores = n
		q.CoresPerSim = c
		r, err := Simulate(q)
		if err != nil {
			return false
		}
		eff := Efficiency(ref, n, r.Hours)
		return eff > 0 && eff <= 1.05 // small slack for rounding at N=1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSweep(t *testing.T) {
	p := PaperParams()
	points, err := Sweep(p, []int{1, 24}, []int{100, 1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	// c=1 at all three N, c=24 at all three N (24 < 100).
	if len(points) != 6 {
		t.Fatalf("sweep points = %d", len(points))
	}
	for _, pt := range points {
		if pt.Hours <= 0 || pt.Efficiency <= 0 {
			t.Errorf("bad point %+v", pt)
		}
	}
}

func TestSweepSkipsInfeasible(t *testing.T) {
	p := PaperParams()
	points, err := Sweep(p, []int{96}, []int{10, 96})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].TotalCores != 96 {
		t.Errorf("points = %+v", points)
	}
}

func BenchmarkSimulate5000(b *testing.B) {
	p := PaperParams()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(p); err != nil {
			b.Fatal(err)
		}
	}
}
