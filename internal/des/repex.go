// Replica-exchange scheduling scenario: a discrete-event simulation that
// drives the REAL fair-share queue (internal/queue) with its gang
// scheduler under a virtual clock, comparing the two REMD exchange
// patterns (Treikalis et al.) at scales the unit tests cannot reach:
//
//   - "sync": every epoch the whole temperature ladder is submitted as one
//     gang-scheduled command group — all-or-nothing dispatch to a single
//     partition-sized worker, global barrier at the segment boundary, then
//     even/odd neighbour exchange sweeps.
//   - "async": replicas run as independent solo commands; a replica
//     reaching its boundary exchanges with a neighbour already waiting
//     there, or parks until one arrives. No global barrier.
//
// With uniform segment durations the barrier is free and both patterns
// keep the ladder busy; under heavy-tailed durations the sync barrier
// stalls every replica on the epoch's slowest straggler, while async pays
// only nearest-neighbour waits — the scenario quantifies that gap as
// exchange throughput. A worker-churn fault window additionally exercises
// the gang contract: kills preempt whole gangs at checkpoint boundaries
// (per-member release-then-requeue, exactly the server's ordering) and
// the run must finish with no partial-gang dispatch and no leaked core
// grant.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"

	"copernicus/internal/obs"
	"copernicus/internal/queue"
	"copernicus/internal/repex"
	"copernicus/internal/wire"
)

// RepexDESParams configures one replica-exchange scheduling scenario. The
// zero value is not runnable; start from DefaultRepexDESParams.
type RepexDESParams struct {
	Replicas int    // temperature-ladder rungs
	Epochs   int    // segments per rung
	Mode     string // "sync" or "async"

	Workers        int
	CoresPerWorker int // sync mode needs >= Replicas (the gang is indivisible)

	// MeanSegSeconds is the mean segment duration. ParetoAlpha selects the
	// duration law: 0 means every segment takes exactly the mean (uniform
	// hardware); alpha > 1 draws from a Pareto with that mean, modelling
	// the heavy-tailed segment times of shared clusters. MaxSegFactor > 0
	// truncates draws at MaxSegFactor x mean (a segment is a bounded step
	// count, so its duration cannot grow without limit).
	MeanSegSeconds float64
	ParetoAlpha    float64
	MaxSegFactor   float64

	// TMin, TMax span the ladder; exchange decisions use real Metropolis
	// acceptance over synthetic boundary potentials so acceptance rates
	// are physical rather than coin flips.
	TMin, TMax float64

	// DispatchLatency is the delay between a queue state change and the
	// matching round that reacts to it (announce round-trip).
	DispatchLatency float64

	// Worker churn: every ChurnEvery seconds inside [ChurnStart, ChurnEnd)
	// a worker is killed — its running commands are checkpoint-preempted
	// (progress floored to CheckpointSeconds) and requeued member by
	// member — and rejoins ReviveAfter seconds later. ChurnEvery = 0
	// disables churn.
	ChurnStart, ChurnEnd, ChurnEvery, ReviveAfter float64
	CheckpointSeconds                             float64

	Seed uint64
	// Obs, when set, receives the queue's metric families.
	Obs *obs.Obs
}

// DefaultRepexDESParams is a CI-sized ladder: 64 replicas, uniform
// ten-minute segments, one partition-sized worker plus a spare.
func DefaultRepexDESParams() RepexDESParams {
	return RepexDESParams{
		Replicas:          64,
		Epochs:            6,
		Mode:              "sync",
		Workers:           2,
		CoresPerWorker:    64,
		MeanSegSeconds:    600,
		ParetoAlpha:       0,
		TMin:              300,
		TMax:              450,
		DispatchLatency:   1,
		CheckpointSeconds: 60,
		Seed:              7,
	}
}

func (p *RepexDESParams) validate() error {
	if p.Replicas < 2 || p.Epochs < 1 {
		return fmt.Errorf("des: need >= 2 replicas and >= 1 epoch")
	}
	switch p.Mode {
	case "sync", "async":
	default:
		return fmt.Errorf("des: unknown repex mode %q", p.Mode)
	}
	if p.Workers < 1 || p.CoresPerWorker < 1 {
		return fmt.Errorf("des: need at least one worker with one core")
	}
	if p.Mode == "sync" && p.CoresPerWorker < p.Replicas {
		return fmt.Errorf("des: sync gang of %d replicas cannot fit a %d-core worker",
			p.Replicas, p.CoresPerWorker)
	}
	if p.MeanSegSeconds <= 0 {
		return fmt.Errorf("des: segment duration must be positive")
	}
	if p.ParetoAlpha != 0 && p.ParetoAlpha <= 1 {
		return fmt.Errorf("des: ParetoAlpha must be 0 (uniform) or > 1")
	}
	if p.TMin <= 0 || p.TMax <= p.TMin {
		return fmt.Errorf("des: need 0 < TMin < TMax")
	}
	if p.DispatchLatency <= 0 {
		p.DispatchLatency = 1
	}
	return nil
}

// RepexDESResult is the scenario scorecard.
type RepexDESResult struct {
	Params RepexDESParams

	Completed       bool // all rungs ran all epochs (no deadlock)
	MakespanSeconds float64
	SegmentsRun     int

	ExchangeAttempts uint64
	ExchangeAccepts  uint64
	ExchangesPerHour float64 // attempts / makespan — the mixing rate

	// ReplicaUtilization is busy replica-seconds over Replicas × makespan:
	// the fraction of ladder capacity actually simulating.
	ReplicaUtilization float64

	// Fault-window accounting.
	WorkerKills      int
	RequeuedSegments int
	DemotedSegments  int // gang stragglers demoted to solo (broken-gang rule)

	// Invariant violations — all must be zero.
	PartialGangDispatches int // a Match returned a strict subset of a gang
	GrantImbalance        int // cores granted minus cores returned at the end
	QueueLeft             int // commands still queued after completion
}

// rxRun tracks one dispatched segment.
type rxRun struct {
	rung    int
	wi      int
	cores   int
	started float64
	seq     uint64 // assignment generation; stale completions are dropped
}

// rxScenario is the engine state for one SimulateRepex run.
type rxScenario struct {
	p      RepexDESParams
	now    float64
	seq    uint64
	events tEventHeap
	rng    *rand.Rand
	q      *queue.Queue

	temps []float64
	stats *repex.Stats

	// Per-rung controller state (mirrors RepexController's rung model).
	segs    []int
	waiting []bool
	retired []bool
	pot     []float64

	rem     map[string]float64 // cmdID -> remaining run time
	owner   map[string]int     // cmdID -> rung
	running map[string]*rxRun
	specs   map[string]wire.CommandSpec

	free    []int
	alive   []bool
	granted int

	epoch     int // sync: completed exchange rounds
	pendSync  int // sync: members not yet reported this epoch
	gangSeq   int
	nextCmd   int
	busy      float64
	done      bool
	dispatchQ bool // a matching round is already scheduled

	res RepexDESResult
}

const (
	rxDispatch = iota
	rxComplete
	rxKill
	rxRevive
)

func (s *rxScenario) schedule(at float64, ev tEvent) {
	ev.at = at
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

// wake schedules one matching round after the dispatch latency, coalescing
// bursts of queue changes into a single round.
func (s *rxScenario) wake() {
	if s.dispatchQ {
		return
	}
	s.dispatchQ = true
	s.schedule(s.now+s.p.DispatchLatency, tEvent{kind: rxDispatch})
}

// segDur draws a segment duration.
func (s *rxScenario) segDur() float64 {
	if s.p.ParetoAlpha == 0 {
		return s.p.MeanSegSeconds
	}
	// Pareto with the configured mean: xm·U^(-1/alpha), xm = mean·(α-1)/α.
	xm := s.p.MeanSegSeconds * (s.p.ParetoAlpha - 1) / s.p.ParetoAlpha
	u := s.rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	d := xm * math.Pow(u, -1/s.p.ParetoAlpha)
	if cap := s.p.MaxSegFactor * s.p.MeanSegSeconds; cap > 0 && d > cap {
		d = cap
	}
	return d
}

// samplePotential draws a synthetic boundary potential for rung r: mean
// scales with temperature (equipartition) and fluctuations with √T, so
// neighbouring rungs overlap and Metropolis acceptance is physical.
func (s *rxScenario) samplePotential(r int) float64 {
	t := s.temps[r]
	return 3*t + 12*math.Sqrt(t)*s.rng.NormFloat64()
}

// submitSegment queues rung r's next segment. Sync epochs travel as a
// gang; async segments go solo.
func (s *rxScenario) submitSegment(r int, gangID string, gangSize int) {
	s.nextCmd++
	id := fmt.Sprintf("seg%06d", s.nextCmd)
	spec := wire.CommandSpec{
		ID: id, Project: "remd", Tenant: "remd",
		Type: "sim", MinCores: 1, MaxCores: 1,
		GangID: gangID, GangSize: gangSize,
	}
	if err := s.q.Push(spec); err != nil {
		panic(fmt.Sprintf("des: repex push: %v", err)) // single tenant, no quotas: must admit
	}
	s.rem[id] = s.segDur()
	s.owner[id] = r
	s.specs[id] = spec
	s.wake()
}

// submitEpochGang queues the whole ladder as one gang (sync mode).
func (s *rxScenario) submitEpochGang() {
	gangID := fmt.Sprintf("remd/e%05d", s.gangSeq)
	s.gangSeq++
	s.pendSync = s.p.Replicas
	for r := 0; r < s.p.Replicas; r++ {
		s.submitSegment(r, gangID, s.p.Replicas)
	}
}

// attemptExchange runs one Metropolis attempt between rungs i and i+1.
func (s *rxScenario) attemptExchange(i int) {
	acc := repex.Accept(s.temps[i], s.pot[i], s.temps[i+1], s.pot[i+1], s.rng.Float64())
	s.stats.Record(i, acc)
	s.res.ExchangeAttempts++
	if acc {
		s.res.ExchangeAccepts++
		s.pot[i], s.pot[i+1] = s.pot[i+1], s.pot[i]
	}
}

// boundary handles rung r finishing a segment — the controller logic of
// RepexController, re-expressed over virtual time.
func (s *rxScenario) boundary(r int) {
	s.segs[r]++
	s.res.SegmentsRun++
	s.pot[r] = s.samplePotential(r)

	if s.p.Mode == "sync" {
		s.pendSync--
		if s.pendSync > 0 {
			return
		}
		for _, i := range repex.SweepPairs(s.p.Replicas, s.epoch%2 == 1) {
			s.attemptExchange(i)
		}
		s.epoch++
		if s.epoch >= s.p.Epochs {
			s.done = true
			return
		}
		s.submitEpochGang()
		return
	}

	// Async: retire, pair with a waiting neighbour, wait, or run on alone.
	if s.segs[r] >= s.p.Epochs {
		s.retired[r] = true
		s.kickStranded()
		s.done = s.allRetired()
		return
	}
	partner := -1
	for _, n := range []int{r - 1, r + 1} {
		if n < 0 || n >= s.p.Replicas || !s.waiting[n] {
			continue
		}
		if partner == -1 || s.segs[n] < s.segs[partner] ||
			(s.segs[n] == s.segs[partner] && n < partner) {
			partner = n
		}
	}
	if partner >= 0 {
		lo := r
		if partner < r {
			lo = partner
		}
		s.attemptExchange(lo)
		s.waiting[partner] = false
		s.submitSegment(r, "", 0)
		s.submitSegment(partner, "", 0)
		return
	}
	if s.hasLiveNeighbor(r) {
		s.waiting[r] = true
		return
	}
	s.submitSegment(r, "", 0)
}

func (s *rxScenario) hasLiveNeighbor(r int) bool {
	for _, n := range []int{r - 1, r + 1} {
		if n >= 0 && n < s.p.Replicas && !s.retired[n] {
			return true
		}
	}
	return false
}

func (s *rxScenario) kickStranded() {
	for r := 0; r < s.p.Replicas; r++ {
		if s.waiting[r] && !s.retired[r] && !s.hasLiveNeighbor(r) {
			s.waiting[r] = false
			s.submitSegment(r, "", 0)
		}
	}
}

func (s *rxScenario) allRetired() bool {
	for _, ret := range s.retired {
		if !ret {
			return false
		}
	}
	return true
}

// matchRound lets every live worker announce its free cores and start what
// the scheduler hands back, checking the gang contract on each workload.
func (s *rxScenario) matchRound() {
	for wi := range s.free {
		if !s.alive[wi] || s.free[wi] < 1 {
			continue
		}
		wl := s.q.Match(wire.WorkerInfo{
			ID:          fmt.Sprintf("w%03d", wi),
			Platform:    "smp",
			Cores:       s.free[wi],
			Executables: []string{"sim"},
		})
		// The gang contract: a workload never contains a strict subset of
		// a gang.
		gangHere := make(map[string]int)
		for _, c := range wl.Commands {
			if c.GangID != "" {
				gangHere[c.GangID]++
			}
		}
		for _, c := range wl.Commands {
			if c.GangID != "" && gangHere[c.GangID] != c.GangSize {
				s.res.PartialGangDispatches++
			}
		}
		for _, c := range wl.Commands {
			cores := wl.Cores[c.ID]
			s.free[wi] -= cores
			s.granted += cores
			s.seq++
			run := &rxRun{rung: s.owner[c.ID], wi: wi, cores: cores,
				started: s.now, seq: s.seq}
			s.running[c.ID] = run
			s.schedule(s.now+s.rem[c.ID], tEvent{kind: rxComplete,
				who: wi, cmdID: c.ID, gen: run.seq})
		}
	}
}

// kill takes worker wi down: every running command is checkpoint-preempted
// and requeued with the server's per-member release-then-requeue ordering
// (the gang's inflight count keeps it alive across the interleave).
func (s *rxScenario) kill(wi int) {
	if !s.alive[wi] {
		return
	}
	s.alive[wi] = false
	s.free[wi] = 0
	s.res.WorkerKills++
	touched := make(map[string]bool)
	for id, run := range s.running {
		if run.wi != wi {
			continue
		}
		if g := s.specs[id].GangID; g != "" {
			touched[g] = true
		}
		elapsed := s.now - run.started
		banked := elapsed
		if s.p.CheckpointSeconds > 0 {
			banked = math.Floor(elapsed/s.p.CheckpointSeconds) * s.p.CheckpointSeconds
		}
		s.busy += banked
		s.rem[id] -= banked
		if s.rem[id] < 0 {
			s.rem[id] = 0
		}
		s.granted -= run.cores
		delete(s.running, id)
		s.q.Release(id, elapsed)
		if err := s.q.Requeue(s.specs[id]); err != nil {
			panic(fmt.Sprintf("des: repex requeue: %v", err))
		}
		s.res.RequeuedSegments++
	}
	// The server's broken-gang rule: members that finished before the kill
	// are gone for good, so a requeued remnant smaller than the gang can
	// never reassemble — demote its stragglers to solo commands.
	for gid := range touched {
		queued, size, inflight, ok := s.q.Gang(gid)
		if ok && inflight == 0 && queued > 0 && queued < size {
			s.res.DemotedSegments += s.q.DemoteGang(gid)
		}
	}
	s.schedule(s.now+s.p.ReviveAfter, tEvent{kind: rxRevive, who: wi})
	s.wake()
}

// SimulateRepex runs the replica-exchange scheduling scenario. It is
// deterministic for a given RepexDESParams.
func SimulateRepex(p RepexDESParams) (RepexDESResult, error) {
	if err := p.validate(); err != nil {
		return RepexDESResult{}, err
	}
	temps, err := repex.Ladder(p.TMin, p.TMax, p.Replicas)
	if err != nil {
		return RepexDESResult{}, err
	}
	s := &rxScenario{
		p:       p,
		rng:     rand.New(rand.NewSource(int64(p.Seed))),
		temps:   temps,
		stats:   repex.NewStats(p.Replicas),
		segs:    make([]int, p.Replicas),
		waiting: make([]bool, p.Replicas),
		retired: make([]bool, p.Replicas),
		pot:     make([]float64, p.Replicas),
		rem:     make(map[string]float64),
		owner:   make(map[string]int),
		running: make(map[string]*rxRun),
		specs:   make(map[string]wire.CommandSpec),
	}
	s.res.Params = p

	epoch := time.Unix(1_700_000_000, 0)
	s.q = queue.NewWithConfig(queue.Config{
		Clock: func() time.Time { return epoch.Add(time.Duration(s.now * float64(time.Second))) },
	})
	if p.Obs != nil {
		s.q.SetObs(p.Obs, obs.L("node", "des-repex"))
	}

	for r := 0; r < p.Replicas; r++ {
		s.pot[r] = s.samplePotential(r)
	}
	for wi := 0; wi < p.Workers; wi++ {
		s.free = append(s.free, p.CoresPerWorker)
		s.alive = append(s.alive, true)
	}
	if p.Mode == "sync" {
		s.submitEpochGang()
	} else {
		for r := 0; r < p.Replicas; r++ {
			s.submitSegment(r, "", 0)
		}
	}
	if p.ChurnEvery > 0 {
		k := 0
		for at := p.ChurnStart; at < p.ChurnEnd; at += p.ChurnEvery {
			s.schedule(at, tEvent{kind: rxKill, who: k % p.Workers})
			k++
		}
	}

	const maxEvents = 20_000_000 // runaway backstop; a deadlock otherwise spins on polls
	for n := 0; s.events.Len() > 0 && !s.done && n < maxEvents; n++ {
		ev := heap.Pop(&s.events).(tEvent)
		s.now = ev.at
		switch ev.kind {
		case rxDispatch:
			s.dispatchQ = false
			s.matchRound()
		case rxComplete:
			run, ok := s.running[ev.cmdID]
			if !ok || run.seq != ev.gen {
				continue // preempted before finishing; a fresh run owns it now
			}
			delete(s.running, ev.cmdID)
			s.busy += s.now - run.started
			s.granted -= run.cores
			s.free[run.wi] += run.cores
			s.q.Release(ev.cmdID, s.now-run.started)
			delete(s.rem, ev.cmdID)
			delete(s.specs, ev.cmdID)
			rung := s.owner[ev.cmdID]
			delete(s.owner, ev.cmdID)
			s.boundary(rung)
			s.wake()
		case rxKill:
			s.kill(ev.who)
		case rxRevive:
			s.alive[ev.who] = true
			s.free[ev.who] = p.CoresPerWorker
			s.wake()
		}
	}

	s.res.Completed = s.done
	s.res.MakespanSeconds = s.now
	s.res.GrantImbalance = s.granted
	s.res.QueueLeft = s.q.Len()
	if s.now > 0 {
		s.res.ExchangesPerHour = float64(s.res.ExchangeAttempts) / s.now * 3600
		s.res.ReplicaUtilization = s.busy / (float64(p.Replicas) * s.now)
	}
	return s.res, nil
}
