// Multi-tenant control-plane scenario: a discrete-event simulation that
// drives the REAL fair-share scheduler (internal/queue) under a virtual
// clock. Thousands of tenants submit heavy-tailed bursts of commands, a
// small set of "heavy hitter" tenants in distinct weight classes keep
// permanent backlogs, and a slow-fsync WAL fault window in the middle of
// the run exercises admission backpressure. The scenario measures the
// control plane's multi-tenant SLOs:
//
//   - core-time delivered to saturated tenants is proportional to their
//     configured weights,
//   - no tenant is starved (every backlogged tenant keeps being served
//     within a bounded gap, fault window included),
//   - during the fault the in-flight window drains and admission sheds
//     instead of letting the queue grow without bound.
//
// The WAL is modelled the way servers wire it: an append-latency EWMA
// (same alpha as internal/store) divided by the slow-append threshold
// becomes the queue's pressure signal. During the fault window every
// append sees fsync latencies well past the threshold, exactly like the
// chaos harness's slow-fsync WriteHook does to a real store.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"copernicus/internal/obs"
	"copernicus/internal/queue"
	"copernicus/internal/wire"
)

// TenantParams configures the multi-tenant scenario. The zero value is not
// runnable; start from DefaultTenantParams.
type TenantParams struct {
	// Tenants is the background tenant population (each submits rare,
	// heavy-tailed bursts).
	Tenants int
	// WeightClasses are the fair-share weights exercised by the heavy
	// hitters; HeavyPerClass saturated tenants are created per class.
	WeightClasses []float64
	HeavyPerClass int
	// HeavyBacklog is the queued-command depth each heavy hitter tops its
	// sub-queue up to, keeping it permanently saturated.
	HeavyBacklog int

	Workers        int
	CoresPerWorker int

	// HorizonSeconds is the simulated duration.
	HorizonSeconds float64
	// MeanCmdSeconds is the mean command service time (exponential).
	MeanCmdSeconds float64
	// BackgroundLoad is the fraction of fleet capacity the background
	// population is tuned to request in aggregate.
	BackgroundLoad float64
	// ParetoAlpha shapes background burst sizes (P[B >= k] ~ k^-alpha);
	// MaxBatch truncates them.
	ParetoAlpha float64
	MaxBatch    int

	// CappedTenants background tenants get a MaxQueued quota of
	// CappedMaxQueued, so oversized bursts exercise the terminal
	// quota-rejection path.
	CappedTenants   int
	CappedMaxQueued int

	// StarvationAge is passed through to the queue (see queue.Config).
	StarvationAge time.Duration
	// MaxQueuedTotal bounds the whole queue (0 = unlimited).
	MaxQueuedTotal int

	// The WAL fault window [FaultStartFrac, FaultEndFrac) of the horizon.
	// Appends see WALFaultSeconds latency inside it and WALBaseSeconds
	// outside; pressure = EWMA / WALSlowSeconds.
	FaultStartFrac  float64
	FaultEndFrac    float64
	WALBaseSeconds  float64
	WALFaultSeconds float64
	WALSlowSeconds  float64

	// GapSLOSeconds is the starvation SLO: a tenant whose backlogged wait
	// between consecutive dispatches ever exceeds it counts as starved.
	GapSLOSeconds float64

	Seed uint64
	// Obs, when set, receives the queue's copernicus_queue_* and
	// copernicus_tenant_* metric families.
	Obs *obs.Obs
}

// DefaultTenantParams is a CI-sized run: 2000 background tenants plus eight
// saturated heavy hitters across four weight classes, one simulated hour,
// with a six-minute slow-fsync fault window at mid-run.
func DefaultTenantParams() TenantParams {
	return TenantParams{
		Tenants:         2000,
		WeightClasses:   []float64{1, 2, 4, 8},
		HeavyPerClass:   2,
		HeavyBacklog:    40,
		Workers:         25,
		CoresPerWorker:  8,
		HorizonSeconds:  3600,
		MeanCmdSeconds:  60,
		BackgroundLoad:  0.25,
		ParetoAlpha:     1.5,
		MaxBatch:        64,
		CappedTenants:   20,
		CappedMaxQueued: 2,
		StarvationAge:   30 * time.Second,
		FaultStartFrac:  0.50,
		FaultEndFrac:    0.60,
		WALBaseSeconds:  0.002,
		WALFaultSeconds: 0.300,
		WALSlowSeconds:  0.100,
		GapSLOSeconds:   900,
		Seed:            7,
	}
}

// TenantSLO is the per-tenant scorecard.
type TenantSLO struct {
	ID          string
	Weight      float64
	Submitted   int
	Dispatched  int
	Completed   int
	Shed        int // retryable admission rejections
	QuotaReject int // terminal quota rejections
	CoreSeconds float64
	// MaxWaitSeconds is the longest queue wait among dispatched commands;
	// MaxGapSeconds the longest backlogged stretch without a dispatch.
	MaxWaitSeconds float64
	MaxGapSeconds  float64
}

// TenantResult summarises a scenario run.
type TenantResult struct {
	Params   TenantParams
	Capacity int // total fleet cores

	Submitted   int
	Dispatched  int
	Completed   int
	Shed        int
	QuotaReject int

	// Heavy holds the saturated tenants' scorecards; MaxShareError is the
	// worst relative deviation of CoreSeconds/Weight among them (0.10 =
	// 10% off perfect weighted fairness).
	Heavy         []TenantSLO
	MaxShareError float64

	// Starvation accounting across ALL tenants.
	MaxWaitSeconds float64
	MaxGapSeconds  float64
	Starved        []string

	// Fault-window accounting.
	PeakPressure           float64
	FinalPressure          float64
	FaultSheds             int
	InflightAtFaultStart   int
	InflightAtFaultEnd     int
	MinInflightDuringFault int
	PeakInflightCores      int
	DispatchesAfterFault   int

	Utilization float64 // completed core-seconds / capacity core-seconds
}

// simWAL mirrors the store's append-latency EWMA (internal/store uses the
// same alpha) so queue pressure is derived exactly as servers derive it.
type simWAL struct {
	ewma float64
	slow float64
}

func (w *simWAL) append(lat float64) {
	const alpha = 0.2
	w.ewma = (1-alpha)*w.ewma + alpha*lat
}

func (w *simWAL) pressure() float64 { return w.ewma / w.slow }

// Event kinds for the scenario's virtual-time loop.
const (
	evArrival  = iota // background tenant submits a burst
	evRefill          // heavy hitter tops its backlog up
	evAnnounce        // worker announces free cores
	evComplete        // a dispatched command finishes
	evWALTick         // periodic control-plane journal append
)

type tEvent struct {
	at   float64
	seq  uint64
	kind int
	who  int // tenant index (arrival/refill) or worker index (announce/complete)
	// completion payload
	cmdID string
	cores int
	dur   float64
	// gen is the dispatch generation the completion belongs to (repex
	// scenario): a segment preempted and re-dispatched invalidates the
	// completion scheduled by its earlier run.
	gen uint64
}

type tEventHeap []tEvent

func (h tEventHeap) Len() int { return len(h) }
func (h tEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h tEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *tEventHeap) Push(x any)   { *h = append(*h, x.(tEvent)) }
func (h *tEventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type tenantStat struct {
	id     string
	weight float64
	TenantSLO
	backlog      int
	backlogSince float64
	lastServed   float64
	everServed   bool
}

// scenario is the engine state for one SimulateTenants run.
type scenario struct {
	p        TenantParams
	now      float64
	seq      uint64
	events   tEventHeap
	rng      *rand.Rand
	q        *queue.Queue
	wal      *simWAL
	stats    []*tenantStat // heavy hitters first, then background
	heavyN   int
	free     []int  // per-worker free cores
	polled   []bool // per-worker: an announce event is already queued
	enqAt    map[string]float64
	cmdOwner map[string]int // cmdID -> stats index
	nextCmd  int
	res      TenantResult
	inflight int
}

func (s *scenario) schedule(at float64, ev tEvent) {
	ev.at = at
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

func (s *scenario) inFault() bool {
	h := s.p.HorizonSeconds
	return s.now >= s.p.FaultStartFrac*h && s.now < s.p.FaultEndFrac*h
}

func (s *scenario) walAppend() {
	lat := s.p.WALBaseSeconds
	if s.inFault() {
		lat = s.p.WALFaultSeconds
	}
	s.wal.append(lat)
	if p := s.wal.pressure(); p > s.res.PeakPressure {
		s.res.PeakPressure = p
	}
}

// submit pushes one command for tenant ti, with full admission accounting.
func (s *scenario) submit(ti int) {
	st := s.stats[ti]
	s.nextCmd++
	id := fmt.Sprintf("c%07d", s.nextCmd)
	err := s.q.Push(wire.CommandSpec{
		ID: id, Project: st.id, Tenant: st.id,
		Type: "sim", MinCores: 1, MaxCores: 1,
	})
	switch {
	case err == nil:
		st.Submitted++
		s.res.Submitted++
		if st.backlog == 0 {
			st.backlogSince = s.now
		}
		st.backlog++
		s.enqAt[id] = s.now
		s.cmdOwner[id] = ti
		s.walAppend() // servers journal every admitted command
	case errors.Is(err, wire.ErrQuotaExceeded):
		st.QuotaReject++
		s.res.QuotaReject++
	case errors.Is(err, wire.ErrAdmissionShed):
		st.Shed++
		s.res.Shed++
		if s.inFault() {
			s.res.FaultSheds++
		}
	}
}

// dispatchFrom lets worker wi announce its free cores and start whatever the
// scheduler hands back.
func (s *scenario) dispatchFrom(wi int) {
	if s.free[wi] < 1 {
		return
	}
	wl := s.q.Match(wire.WorkerInfo{
		ID:          fmt.Sprintf("w%03d", wi),
		Platform:    "smp",
		Cores:       s.free[wi],
		Executables: []string{"sim"},
	})
	faultEnd := s.p.FaultEndFrac * s.p.HorizonSeconds
	for _, c := range wl.Commands {
		cores := wl.Cores[c.ID]
		s.free[wi] -= cores
		s.inflight += cores
		if s.inflight > s.res.PeakInflightCores {
			s.res.PeakInflightCores = s.inflight
		}
		ti := s.cmdOwner[c.ID]
		st := s.stats[ti]
		st.Dispatched++
		s.res.Dispatched++
		if s.now >= faultEnd {
			s.res.DispatchesAfterFault++
		}
		// Starvation bookkeeping: how long since this tenant was last
		// served while backlogged?
		ref := st.backlogSince
		if st.everServed && st.lastServed > ref {
			ref = st.lastServed
		}
		if gap := s.now - ref; gap > st.MaxGapSeconds {
			st.MaxGapSeconds = gap
		}
		st.lastServed = s.now
		st.everServed = true
		st.backlog--
		if st.backlog > 0 {
			st.backlogSince = s.now
		}
		if wait := s.now - s.enqAt[c.ID]; wait > st.MaxWaitSeconds {
			st.MaxWaitSeconds = wait
		}
		delete(s.enqAt, c.ID)
		dur := s.rng.ExpFloat64() * s.p.MeanCmdSeconds
		s.schedule(s.now+dur, tEvent{kind: evComplete, who: wi,
			cmdID: c.ID, cores: cores, dur: dur})
	}
	if len(wl.Commands) == 0 && !s.polled[wi] {
		// Nothing runnable (empty queue or shed): poll again shortly, the
		// way idle workers re-announce.
		s.polled[wi] = true
		s.schedule(s.now+2, tEvent{kind: evAnnounce, who: wi})
	}
}

// SimulateTenants runs the multi-tenant control-plane scenario and returns
// its SLO scorecard. It is deterministic for a given TenantParams.
func SimulateTenants(p TenantParams) (TenantResult, error) {
	if p.Tenants < 1 || p.Workers < 1 || p.CoresPerWorker < 1 {
		return TenantResult{}, fmt.Errorf("des: tenants, workers and cores must be positive")
	}
	if p.HorizonSeconds <= 0 || p.MeanCmdSeconds <= 0 {
		return TenantResult{}, fmt.Errorf("des: horizon and command time must be positive")
	}
	if len(p.WeightClasses) == 0 || p.HeavyPerClass < 1 {
		return TenantResult{}, fmt.Errorf("des: need at least one weight class and heavy hitter")
	}
	if p.ParetoAlpha <= 1 {
		return TenantResult{}, fmt.Errorf("des: ParetoAlpha must exceed 1")
	}

	s := &scenario{
		p:        p,
		rng:      rand.New(rand.NewSource(int64(p.Seed))),
		wal:      &simWAL{slow: p.WALSlowSeconds},
		enqAt:    make(map[string]float64),
		cmdOwner: make(map[string]int),
	}
	s.res.Params = p
	s.res.Capacity = p.Workers * p.CoresPerWorker
	s.res.MinInflightDuringFault = s.res.Capacity + 1

	epoch := time.Unix(1_700_000_000, 0)
	s.q = queue.NewWithConfig(queue.Config{
		Clock:          func() time.Time { return epoch.Add(time.Duration(s.now * float64(time.Second))) },
		StarvationAge:  p.StarvationAge,
		Pressure:       s.wal.pressure,
		MaxQueuedTotal: p.MaxQueuedTotal,
	})
	if p.Obs != nil {
		s.q.SetObs(p.Obs, obs.L("node", "des"))
	}

	// Heavy hitters: HeavyPerClass saturated tenants per weight class.
	for ci, w := range p.WeightClasses {
		for j := 0; j < p.HeavyPerClass; j++ {
			st := &tenantStat{id: fmt.Sprintf("heavy-%d-%d", ci, j), weight: w}
			st.TenantSLO.ID = st.id
			st.TenantSLO.Weight = w
			s.stats = append(s.stats, st)
			s.q.SetQuota(wire.TenantQuotaUpdate{Tenant: st.id, Weight: w})
		}
	}
	s.heavyN = len(s.stats)

	// Background population, weight 1; the first CappedTenants carry a
	// tight queued-command quota.
	for i := 0; i < p.Tenants; i++ {
		st := &tenantStat{id: fmt.Sprintf("bg-%04d", i), weight: 1}
		st.TenantSLO.ID = st.id
		st.TenantSLO.Weight = 1
		s.stats = append(s.stats, st)
		if i < p.CappedTenants && p.CappedMaxQueued > 0 {
			s.q.SetQuota(wire.TenantQuotaUpdate{
				Tenant: st.id, MaxQueued: p.CappedMaxQueued,
				MaxCores: -1, MaxStorageBytes: -1,
			})
		}
	}

	// Background arrival rate: tune per-tenant exponential gaps so the
	// population requests BackgroundLoad of fleet capacity. Mean burst for
	// a truncated Pareto is approximated by alpha/(alpha-1).
	meanBurst := p.ParetoAlpha / (p.ParetoAlpha - 1)
	bgCommands := p.BackgroundLoad * float64(s.res.Capacity) * p.HorizonSeconds / p.MeanCmdSeconds
	arrivalsTotal := bgCommands / meanBurst
	meanGap := float64(p.Tenants) * p.HorizonSeconds / arrivalsTotal

	for i := 0; i < p.Tenants; i++ {
		s.schedule(s.rng.ExpFloat64()*meanGap, tEvent{kind: evArrival, who: s.heavyN + i})
	}
	for i := 0; i < s.heavyN; i++ {
		s.schedule(0, tEvent{kind: evRefill, who: i})
	}
	for w := 0; w < p.Workers; w++ {
		s.free = append(s.free, p.CoresPerWorker)
		s.polled = append(s.polled, true)
		s.schedule(0, tEvent{kind: evAnnounce, who: w})
	}
	s.schedule(0, tEvent{kind: evWALTick})

	faultStart := p.FaultStartFrac * p.HorizonSeconds
	faultEnd := p.FaultEndFrac * p.HorizonSeconds
	sawFaultStart, sawFaultEnd := false, false
	var completedCoreSeconds float64

	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(tEvent)
		if ev.at > p.HorizonSeconds {
			break
		}
		s.now = ev.at
		if !sawFaultStart && s.now >= faultStart {
			sawFaultStart = true
			s.res.InflightAtFaultStart = s.inflight
		}
		if !sawFaultEnd && s.now >= faultEnd {
			sawFaultEnd = true
			s.res.InflightAtFaultEnd = s.inflight
		}
		switch ev.kind {
		case evArrival:
			// Heavy-tailed burst: discrete Pareto, truncated.
			u := s.rng.Float64()
			if u < 1e-12 {
				u = 1e-12 // keep the power law finite
			}
			burst := int(1 / math.Pow(u, 1/p.ParetoAlpha))
			if burst < 1 {
				burst = 1
			}
			if burst > p.MaxBatch {
				burst = p.MaxBatch
			}
			for k := 0; k < burst; k++ {
				s.submit(ev.who)
			}
			s.schedule(s.now+s.rng.ExpFloat64()*meanGap, tEvent{kind: evArrival, who: ev.who})
		case evRefill:
			st := s.stats[ev.who]
			for st.backlog < p.HeavyBacklog {
				before := st.Submitted
				s.submit(ev.who)
				if st.Submitted == before {
					break // admission shed; retry at the next refill
				}
			}
			s.schedule(s.now+30, tEvent{kind: evRefill, who: ev.who})
		case evAnnounce:
			s.polled[ev.who] = false
			s.dispatchFrom(ev.who)
		case evComplete:
			s.q.Release(ev.cmdID, ev.dur)
			s.inflight -= ev.cores
			if s.inFault() && s.inflight < s.res.MinInflightDuringFault {
				s.res.MinInflightDuringFault = s.inflight
			}
			s.free[ev.who] += ev.cores
			st := s.stats[s.cmdOwner[ev.cmdID]]
			st.Completed++
			s.res.Completed++
			completedCoreSeconds += ev.dur * float64(ev.cores)
			delete(s.cmdOwner, ev.cmdID)
			s.walAppend() // servers journal every result
			s.dispatchFrom(ev.who)
			if s.free[ev.who] > 0 && !s.polled[ev.who] {
				s.polled[ev.who] = true
				s.schedule(s.now+2, tEvent{kind: evAnnounce, who: ev.who})
			}
		case evWALTick:
			// Periodic control-plane journal traffic (snapshots, worker
			// lifecycle) keeps the latency EWMA current even when admission
			// is shedding, so pressure can decay once fsync recovers.
			s.walAppend()
			s.schedule(s.now+15, tEvent{kind: evWALTick})
		}
	}
	s.now = p.HorizonSeconds
	if s.res.MinInflightDuringFault > s.res.Capacity {
		s.res.MinInflightDuringFault = 0
	}
	s.res.FinalPressure = s.wal.pressure()
	s.res.Utilization = completedCoreSeconds / (float64(s.res.Capacity) * p.HorizonSeconds)

	// Fold still-backlogged tenants into the gap accounting and collect
	// the global SLOs.
	gapSLO := p.GapSLOSeconds
	if gapSLO <= 0 {
		gapSLO = 900
	}
	for _, st := range s.stats {
		if st.backlog > 0 {
			ref := st.backlogSince
			if st.everServed && st.lastServed > ref {
				ref = st.lastServed
			}
			if gap := s.now - ref; gap > st.MaxGapSeconds {
				st.MaxGapSeconds = gap
			}
		}
		if ts, ok := s.q.Tenant(st.id); ok {
			st.CoreSeconds = ts.CoreSeconds
		}
		if st.MaxWaitSeconds > s.res.MaxWaitSeconds {
			s.res.MaxWaitSeconds = st.MaxWaitSeconds
		}
		if st.MaxGapSeconds > s.res.MaxGapSeconds {
			s.res.MaxGapSeconds = st.MaxGapSeconds
		}
		if st.MaxGapSeconds > gapSLO {
			s.res.Starved = append(s.res.Starved, st.id)
		}
	}
	sort.Strings(s.res.Starved)

	// Weighted-fairness score across the saturated heavy hitters: the
	// spread of CoreSeconds/Weight relative to its mean.
	var shareSum float64
	shares := make([]float64, s.heavyN)
	for i := 0; i < s.heavyN; i++ {
		st := s.stats[i]
		s.res.Heavy = append(s.res.Heavy, st.TenantSLO)
		shares[i] = st.CoreSeconds / st.weight
		shareSum += shares[i]
	}
	mean := shareSum / float64(s.heavyN)
	for _, sh := range shares {
		if mean <= 0 {
			s.res.MaxShareError = 1
			break
		}
		if err := absF(sh/mean - 1); err > s.res.MaxShareError {
			s.res.MaxShareError = err
		}
	}
	return s.res, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
