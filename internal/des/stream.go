// Streaming-analysis scenario: a discrete-event comparison of the two ways
// the MSM controller can rebuild its model as an adaptive campaign grows.
// The batch path reclusters every frame ever produced at each analysis
// round (k-centers seeding + full reassignment + transition recounting), so
// its cost grows linearly with campaign length; the incremental path feeds
// only the round's new frames through the mini-batch StreamClusterer, so
// its cost is flat. Both paths here run the REAL internal/msm code on the
// same deterministic trajectories — the scenario measures what the
// controller would actually pay at each generation barrier, in both
// modelled distance evaluations (deterministic, what the tests assert on)
// and measured wall time (reported, asserted with generous factors).
package des

import (
	"fmt"
	"time"

	"copernicus/internal/msm"
	"copernicus/internal/rng"
)

// StreamAnalysisParams configures the streaming-analysis scenario.
type StreamAnalysisParams struct {
	Trajectories   int    // parallel trajectories in the ensemble
	FramesPerRound int    // frames each trajectory produces per round
	Rounds         int    // analysis rounds (generation barriers)
	Clusters       int    // microstate budget K
	Lag            int    // transition-counting lag, in frames
	Dim            int    // conformation dimensionality
	Seed           uint64 // drives the synthetic random-walk ensemble
}

// DefaultStreamAnalysisParams sizes the scenario like a long adaptive
// campaign: by the final round the batch path is reclustering ~58k frames
// while the incremental path still touches only ~3k.
func DefaultStreamAnalysisParams() StreamAnalysisParams {
	return StreamAnalysisParams{
		Trajectories:   48,
		FramesPerRound: 60,
		Rounds:         20,
		Clusters:       120,
		Lag:            4,
		Dim:            3,
		Seed:           1,
	}
}

func (p *StreamAnalysisParams) validate() error {
	if p.Trajectories < 1 || p.FramesPerRound < 1 || p.Rounds < 1 {
		return fmt.Errorf("des: trajectory/frame/round counts must be positive")
	}
	if p.Clusters < 1 || p.Lag < 1 || p.Dim < 1 {
		return fmt.Errorf("des: cluster/lag/dim must be positive")
	}
	return nil
}

// StreamRound reports one analysis round of the scenario.
type StreamRound struct {
	Round       int // 1-based
	NewFrames   int // frames produced this round (all trajectories)
	TotalFrames int // frames accumulated so far

	// Modelled analysis cost in center-distance evaluations — the unit both
	// pipelines are built from. Batch pays one k-centers seeding pass plus
	// one assignment pass over every accumulated frame; incremental pays
	// one assignment-and-nudge pass over only the new frames.
	BatchUnits       float64
	IncrementalUnits float64

	// Measured wall time of the real internal/msm code for this round.
	BatchSeconds       float64
	IncrementalSeconds float64
}

// StreamAnalysisResult is the full scenario outcome.
type StreamAnalysisResult struct {
	Rounds                  []StreamRound
	BatchTotalSeconds       float64
	IncrementalTotalSeconds float64
	BatchTotalUnits         float64
	IncrementalTotalUnits   float64
}

// UnitSpeedup returns the modelled batch/incremental cost ratio at the
// given 1-based round.
func (r *StreamAnalysisResult) UnitSpeedup(round int) float64 {
	sr := r.Rounds[round-1]
	if sr.IncrementalUnits <= 0 {
		return 0
	}
	return sr.BatchUnits / sr.IncrementalUnits
}

// MeasuredSpeedup returns the measured batch/incremental wall-time ratio at
// the given 1-based round.
func (r *StreamAnalysisResult) MeasuredSpeedup(round int) float64 {
	sr := r.Rounds[round-1]
	if sr.IncrementalSeconds <= 0 {
		return 0
	}
	return sr.BatchSeconds / sr.IncrementalSeconds
}

// SimulateStreamAnalysis grows a deterministic random-walk ensemble round
// by round and, at every round boundary, runs both analysis paths on the
// real internal/msm code: a full batch recluster of everything so far, and
// an incremental mini-batch update over only the new frames.
func SimulateStreamAnalysis(p StreamAnalysisParams) (*StreamAnalysisResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	stream, err := msm.NewStreamClusterer(msm.StreamConfig{K: p.Clusters, Lag: p.Lag})
	if err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)
	// Walker positions persist across rounds so each trajectory is one
	// continuous pseudo-Brownian path, like a real extended trajectory.
	pos := make([][]float64, p.Trajectories)
	ids := make([]string, p.Trajectories)
	for i := range pos {
		pos[i] = make([]float64, p.Dim)
		for d := range pos[i] {
			pos[i][d] = 4 * r.Norm()
		}
		ids[i] = fmt.Sprintf("t%03d", i)
	}
	trajs := make([][][]float64, p.Trajectories) // full history for the batch path

	res := &StreamAnalysisResult{}
	for round := 1; round <= p.Rounds; round++ {
		// Produce this round's frames.
		fresh := make([][][]float64, p.Trajectories)
		for i := range pos {
			for f := 0; f < p.FramesPerRound; f++ {
				for d := range pos[i] {
					pos[i][d] += 0.5 * r.Norm()
				}
				frame := append([]float64(nil), pos[i]...)
				fresh[i] = append(fresh[i], frame)
				trajs[i] = append(trajs[i], frame)
			}
		}
		newFrames := p.Trajectories * p.FramesPerRound
		totalFrames := newFrames * round

		// Incremental path: only the new frames pass through the stream.
		t0 := time.Now()
		for i := range fresh {
			for _, frame := range fresh[i] {
				if _, err := stream.Observe(ids[i], frame); err != nil {
					return nil, err
				}
			}
		}
		incSeconds := time.Since(t0).Seconds()

		// Batch path: recluster and recount everything accumulated so far,
		// exactly what the fixed-cadence controller does at each barrier.
		t0 = time.Now()
		var all [][]float64
		for i := range trajs {
			all = append(all, trajs[i]...)
		}
		clu, err := msm.KCenters(all, p.Clusters, p.Seed)
		if err != nil {
			return nil, err
		}
		dtrajs := make([][]int, p.Trajectories)
		for i := range trajs {
			dtrajs[i] = clu.AssignAll(trajs[i])
		}
		if _, err := msm.CountTransitions(dtrajs, clu.K(), p.Lag); err != nil {
			return nil, err
		}
		batchSeconds := time.Since(t0).Seconds()

		sr := StreamRound{
			Round:       round,
			NewFrames:   newFrames,
			TotalFrames: totalFrames,
			// Seeding pass + assignment pass over every frame vs one
			// assignment-and-nudge pass over the new frames.
			BatchUnits:         2 * float64(totalFrames) * float64(clu.K()),
			IncrementalUnits:   float64(newFrames) * float64(stream.K()),
			BatchSeconds:       batchSeconds,
			IncrementalSeconds: incSeconds,
		}
		res.Rounds = append(res.Rounds, sr)
		res.BatchTotalSeconds += batchSeconds
		res.IncrementalTotalSeconds += incSeconds
		res.BatchTotalUnits += sr.BatchUnits
		res.IncrementalTotalUnits += sr.IncrementalUnits
	}
	return res, nil
}
