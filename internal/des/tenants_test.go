package des

import (
	"strings"
	"testing"

	"copernicus/internal/obs"
)

// TestMultiTenantScenario is the acceptance run for the multi-tenant
// control plane: 2000 background tenants plus saturated heavy hitters in
// four weight classes drive the real fair-share queue for a simulated
// hour with a slow-fsync WAL fault window at mid-run.
func TestMultiTenantScenario(t *testing.T) {
	p := DefaultTenantParams()
	o := obs.New()
	p.Obs = o
	res, err := SimulateTenants(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("submitted=%d dispatched=%d completed=%d shed=%d quotaReject=%d util=%.2f",
		res.Submitted, res.Dispatched, res.Completed, res.Shed, res.QuotaReject, res.Utilization)
	t.Logf("shareErr=%.3f maxWait=%.0fs maxGap=%.0fs starved=%d",
		res.MaxShareError, res.MaxWaitSeconds, res.MaxGapSeconds, len(res.Starved))
	t.Logf("fault: peakPressure=%.2f sheds=%d inflight start=%d min=%d end=%d after-fault dispatches=%d",
		res.PeakPressure, res.FaultSheds, res.InflightAtFaultStart,
		res.MinInflightDuringFault, res.InflightAtFaultEnd, res.DispatchesAfterFault)

	// The fleet must actually be busy for the fairness claims to mean
	// anything: heavy hitters keep it saturated outside the fault window.
	if res.Utilization < 0.6 {
		t.Errorf("utilization = %.2f, want >= 0.6", res.Utilization)
	}

	// Acceptance: per-tenant core time proportional to weights within 10%
	// across the saturated tenants.
	if res.MaxShareError > 0.10 {
		for _, h := range res.Heavy {
			t.Logf("  %s w=%g coreSeconds=%.0f share=%.1f",
				h.ID, h.Weight, h.CoreSeconds, h.CoreSeconds/h.Weight)
		}
		t.Errorf("weighted share error = %.3f, want <= 0.10", res.MaxShareError)
	}
	for _, h := range res.Heavy {
		if h.Dispatched == 0 {
			t.Errorf("heavy hitter %s never dispatched", h.ID)
		}
	}

	// Acceptance: zero starved tenants — every backlogged tenant keeps
	// being served within the gap SLO, fault window included.
	if len(res.Starved) != 0 {
		t.Errorf("starved tenants (gap > %.0fs): %v", p.GapSLOSeconds, res.Starved)
	}

	// Acceptance: the slow-fsync fault window is visible and bounded. WAL
	// pressure must cross the shed threshold, admission must shed, and the
	// in-flight window must drain rather than pile up.
	if res.PeakPressure < 0.95 {
		t.Errorf("peak pressure = %.2f, want >= 0.95 during the fault window", res.PeakPressure)
	}
	if res.FaultSheds == 0 {
		t.Error("no submissions shed during the WAL fault window")
	}
	if res.InflightAtFaultEnd >= res.InflightAtFaultStart {
		t.Errorf("in-flight did not drain under backpressure: start=%d end=%d",
			res.InflightAtFaultStart, res.InflightAtFaultEnd)
	}
	if res.MinInflightDuringFault > res.Capacity/4 {
		t.Errorf("in-flight window stayed at %d cores during the fault, want <= %d",
			res.MinInflightDuringFault, res.Capacity/4)
	}
	// And the cluster recovers: pressure decays and dispatching resumes.
	if res.FinalPressure > 0.5 {
		t.Errorf("final pressure = %.2f, want < 0.5 after the fault clears", res.FinalPressure)
	}
	if res.DispatchesAfterFault == 0 {
		t.Error("no dispatches after the fault window cleared")
	}

	// Quota enforcement: the capped background tenants' oversized bursts
	// hit the terminal rejection path.
	if res.QuotaReject == 0 {
		t.Error("no terminal quota rejections despite capped tenants")
	}

	// The per-tenant metric families are populated for operators.
	var b strings.Builder
	o.Metrics.WriteText(&b)
	text := b.String()
	for _, family := range []string{
		"copernicus_tenant_queued",
		"copernicus_tenant_inflight_cores",
		"copernicus_queue_pressure",
		"copernicus_queue_shed_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics output missing %s", family)
		}
	}
	if !strings.Contains(text, `tenant="heavy-0-0"`) {
		t.Error("metrics output missing per-tenant labels")
	}
}

func TestTenantScenarioDeterministic(t *testing.T) {
	p := DefaultTenantParams()
	// Trim for speed: determinism does not need the full hour.
	p.Tenants = 300
	p.HorizonSeconds = 600
	a, err := SimulateTenants(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTenants(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Submitted != b.Submitted || a.Completed != b.Completed ||
		a.Shed != b.Shed || a.MaxShareError != b.MaxShareError {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestTenantParamsValidation(t *testing.T) {
	bad := []TenantParams{
		{},
		{Tenants: 1, Workers: 1, CoresPerWorker: 1, HorizonSeconds: 10, MeanCmdSeconds: 1,
			WeightClasses: []float64{1}, HeavyPerClass: 1, ParetoAlpha: 1},
		{Tenants: 1, Workers: 1, CoresPerWorker: 1, HorizonSeconds: 10, MeanCmdSeconds: 1,
			HeavyPerClass: 1, ParetoAlpha: 2},
	}
	for i, p := range bad {
		if _, err := SimulateTenants(p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}
