// Package des implements the discrete-event simulator behind the paper's
// scaling study. Figures 7–9 of the paper were produced exactly this way:
// "we additionally benchmarked simulations with different numbers of cores
// and then simulated the controller's activity given different numbers of
// cores per task and total resources allocated."
//
// The model: a villin MSM project is a sequence of generations; each
// generation runs RoundsPerGen 50-ns segments per trajectory (the second
// round models the controller extending trajectories as they finish), with
// a clustering barrier between generations. Workers of CoresPerSim cores
// each pull segments from the queue; segment wall time follows a measured
// single-simulation speedup curve. The simulator reports time-to-solution,
// scaling efficiency tres(1)/(N·tres(N)) and ensemble-level bandwidth —
// the exact quantities plotted in Figs 7, 8 and 9.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// SpeedModel is the single-simulation performance curve s(c):
//
//	s(c) = S1 · c · E(c),  E(c) = (1+(1/C0)^Alpha) / (1+(c/C0)^Alpha)
//
// normalised so E(1) = 1. S1 is the measured single-core speed in ns/day;
// C0 and Alpha shape the parallel-efficiency falloff of the MD engine.
type SpeedModel struct {
	S1    float64 // ns/day on one core
	C0    float64 // cores at which efficiency has roughly halved
	Alpha float64 // falloff steepness
}

// Efficiency returns E(c) in (0, 1].
func (m SpeedModel) Efficiency(cores int) float64 {
	if cores < 1 {
		return 0
	}
	norm := 1 + math.Pow(1/m.C0, m.Alpha)
	return norm / (1 + math.Pow(float64(cores)/m.C0, m.Alpha))
}

// NsPerDay returns the simulation speed on the given core count.
func (m SpeedModel) NsPerDay(cores int) float64 {
	return m.S1 * float64(cores) * m.Efficiency(cores)
}

// SegmentHours returns the wall time of one segment of the given length.
func (m SpeedModel) SegmentHours(cores int, segmentNs float64) float64 {
	return segmentNs / m.NsPerDay(cores) * 24
}

// Params describes one scaling-study scenario.
type Params struct {
	TotalCores  int // total cores across all resources
	CoresPerSim int // cores assigned to each individual simulation

	Trajectories int     // parallel trajectories per generation (paper: 225)
	SegmentNs    float64 // command length (paper: 50 ns)
	RoundsPerGen int     // sequential segments per trajectory per generation
	Generations  int     // generations to the stop criterion (first folded: 3)

	Speed SpeedModel

	// ClusteringHours is the controller's analysis pause at each
	// generation barrier.
	ClusteringHours float64
	// TransferSecondsPerCommand models result upload + workload pickup
	// latency per command (the paper estimates ≤30 s per running day).
	TransferSecondsPerCommand float64
	// BytesPerCommand is the result payload per finished command, for the
	// Fig 9 bandwidth accounting.
	BytesPerCommand float64
}

// PaperParams returns the scenario calibrated to the paper's villin run:
// tres(1) = 1.1·10⁵ hours for the full MSM command set, ~10–11 h per
// generation on ~5,000 cores, first folded conformation after three
// generations (~30 h), and ~53 % efficiency at 20,000 cores. See
// EXPERIMENTS.md for the calibration derivation.
func PaperParams() Params {
	return Params{
		TotalCores:                5000,
		CoresPerSim:               24,
		Trajectories:              225,
		SegmentNs:                 50,
		RoundsPerGen:              2,
		Generations:               3,
		Speed:                     SpeedModel{S1: 14.73, C0: 172.3, Alpha: 1.762},
		ClusteringHours:           0.25,
		TransferSecondsPerCommand: 15,
		BytesPerCommand:           4e6,
	}
}

func (p *Params) validate() error {
	if p.TotalCores < 1 {
		return fmt.Errorf("des: need at least one core")
	}
	if p.CoresPerSim < 1 {
		return fmt.Errorf("des: need at least one core per simulation")
	}
	if p.CoresPerSim > p.TotalCores {
		return fmt.Errorf("des: cores per simulation %d exceeds total %d", p.CoresPerSim, p.TotalCores)
	}
	if p.Trajectories < 1 || p.RoundsPerGen < 1 || p.Generations < 1 {
		return fmt.Errorf("des: trajectory/round/generation counts must be positive")
	}
	if p.SegmentNs <= 0 {
		return fmt.Errorf("des: segment length must be positive")
	}
	if p.Speed.S1 <= 0 || p.Speed.C0 <= 0 || p.Speed.Alpha <= 0 {
		return fmt.Errorf("des: speed model parameters must be positive")
	}
	return nil
}

// Result reports one simulated scenario.
type Result struct {
	Hours         float64 // time to solution
	Workers       int     // concurrent simulations
	Commands      int     // 50-ns segments executed
	SimulatedNs   float64 // total trajectory-ns produced
	BusyFraction  float64 // mean worker utilisation
	BandwidthMBps float64 // ensemble-level result traffic (Fig 9)
}

// workerHeap orders workers by the time they become free.
type workerHeap []float64

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *workerHeap) Pop() any          { old := *h; v := old[len(old)-1]; *h = old[:len(old)-1]; return v }

// Simulate runs the event simulation and returns the scenario metrics.
func Simulate(p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	workers := p.TotalCores / p.CoresPerSim
	if workers < 1 {
		workers = 1
	}
	segHours := p.Speed.SegmentHours(p.CoresPerSim, p.SegmentNs)
	overhead := p.TransferSecondsPerCommand / 3600

	free := make(workerHeap, workers)
	heap.Init(&free)

	now := 0.0
	commands := 0
	busyHours := 0.0
	for gen := 0; gen < p.Generations; gen++ {
		// Each trajectory is a chain of RoundsPerGen sequential segments;
		// chains run independently (a trajectory's extension starts as soon
		// as its previous segment finishes and a worker is available — the
		// paper's extend-on-finish behaviour).
		ready := make([]float64, p.Trajectories) // chain next-segment ready time
		remaining := make([]int, p.Trajectories)
		for i := range ready {
			ready[i] = now
			remaining[i] = p.RoundsPerGen
		}
		genEnd := now
		total := p.Trajectories * p.RoundsPerGen
		for done := 0; done < total; done++ {
			// Earliest-ready chain with work left.
			best := -1
			for i := range ready {
				if remaining[i] > 0 && (best < 0 || ready[i] < ready[best]) {
					best = i
				}
			}
			w := heap.Pop(&free).(float64)
			start := math.Max(w, ready[best])
			end := start + segHours + overhead
			heap.Push(&free, end)
			ready[best] = end
			remaining[best]--
			commands++
			busyHours += segHours
			if end > genEnd {
				genEnd = end
			}
		}
		// Clustering barrier: all workers idle until analysis completes.
		now = genEnd + p.ClusteringHours
		for i := range free {
			if free[i] < now {
				free[i] = now
			}
		}
		heap.Init(&free)
	}
	hours := now - p.ClusteringHours // the final analysis is the result itself

	res := Result{
		Hours:       hours,
		Workers:     workers,
		Commands:    commands,
		SimulatedNs: float64(commands) * p.SegmentNs,
	}
	if hours > 0 {
		res.BusyFraction = busyHours / (hours * float64(workers))
		res.BandwidthMBps = float64(commands) * p.BytesPerCommand / 1e6 / (hours * 3600)
	}
	return res, nil
}

// ReferenceHours returns tres(1): the same workload on a single core — the
// normalisation of the Fig 7 efficiency axis.
func ReferenceHours(p Params) (float64, error) {
	p.TotalCores = 1
	p.CoresPerSim = 1
	r, err := Simulate(p)
	if err != nil {
		return 0, err
	}
	return r.Hours, nil
}

// Efficiency returns the paper's scaling-efficiency metric
// tres(1)/(N·tres(N)).
func Efficiency(refHours float64, totalCores int, hours float64) float64 {
	if hours <= 0 || totalCores <= 0 {
		return 0
	}
	return refHours / (float64(totalCores) * hours)
}

// SweepPoint is one point of a Figs 7–9 sweep.
type SweepPoint struct {
	TotalCores  int
	CoresPerSim int
	Result
	Efficiency float64
}

// Sweep simulates the cross product of total-core counts and cores-per-sim
// choices (skipping infeasible combinations where c > N), computing each
// point's efficiency against the shared single-core reference.
func Sweep(base Params, coresPerSim, totalCores []int) ([]SweepPoint, error) {
	ref, err := ReferenceHours(base)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, c := range coresPerSim {
		for _, n := range totalCores {
			if c > n {
				continue
			}
			p := base
			p.CoresPerSim = c
			p.TotalCores = n
			r, err := Simulate(p)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepPoint{
				TotalCores:  n,
				CoresPerSim: c,
				Result:      r,
				Efficiency:  Efficiency(ref, n, r.Hours),
			})
		}
	}
	return out, nil
}
