package des

import (
	"testing"
)

// TestRepexDESUniformUtilization: with uniform segment durations the
// barrier is free — both exchange patterns must keep the 64-rung ladder
// above 95% replica utilization.
func TestRepexDESUniformUtilization(t *testing.T) {
	for _, mode := range []string{"sync", "async"} {
		p := DefaultRepexDESParams()
		p.Mode = mode
		r, err := SimulateRepex(p)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatalf("%s: ladder did not complete", mode)
		}
		if r.SegmentsRun != p.Replicas*p.Epochs {
			t.Errorf("%s: segments = %d, want %d", mode, r.SegmentsRun, p.Replicas*p.Epochs)
		}
		if r.ReplicaUtilization < 0.95 {
			t.Errorf("%s: replica utilization = %.3f, want >= 0.95", mode, r.ReplicaUtilization)
		}
		if r.PartialGangDispatches != 0 || r.GrantImbalance != 0 || r.QueueLeft != 0 {
			t.Errorf("%s: invariants violated: %+v", mode, r)
		}
		if r.ExchangeAttempts == 0 || r.ExchangeAccepts == 0 {
			t.Errorf("%s: no exchanges recorded (attempts=%d accepts=%d)",
				mode, r.ExchangeAttempts, r.ExchangeAccepts)
		}
	}
}

// TestRepexDESAsyncBeatsSyncHeavyTailed reproduces the async-REMD claim at
// 256 replicas: under Pareto segment durations the sync barrier stalls the
// whole ladder on each epoch's slowest replica, so the asynchronous
// pattern must deliver at least twice the exchange throughput.
func TestRepexDESAsyncBeatsSyncHeavyTailed(t *testing.T) {
	base := DefaultRepexDESParams()
	base.Replicas = 256
	base.Epochs = 12
	base.Workers = 2
	base.CoresPerWorker = 256
	base.ParetoAlpha = 1.5
	base.MaxSegFactor = 20

	sync := base
	sync.Mode = "sync"
	rs, err := SimulateRepex(sync)
	if err != nil {
		t.Fatal(err)
	}
	async := base
	async.Mode = "async"
	ra, err := SimulateRepex(async)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Completed || !ra.Completed {
		t.Fatalf("ladders did not complete: sync=%v async=%v", rs.Completed, ra.Completed)
	}
	if ra.ExchangesPerHour < 2*rs.ExchangesPerHour {
		t.Errorf("async exchange throughput %.1f/h not >= 2x sync %.1f/h",
			ra.ExchangesPerHour, rs.ExchangesPerHour)
	}
	if rs.ReplicaUtilization >= ra.ReplicaUtilization {
		t.Errorf("sync utilization %.3f not below async %.3f under heavy tails",
			rs.ReplicaUtilization, ra.ReplicaUtilization)
	}
}

// TestRepexDESWorkerChurn drives both modes through a kill window: whole
// gangs are preempted at checkpoint boundaries and requeued member by
// member. The ladder must still finish with zero partial-gang dispatches
// and zero leaked core grants — the gang contract under churn.
func TestRepexDESWorkerChurn(t *testing.T) {
	for _, mode := range []string{"sync", "async"} {
		p := DefaultRepexDESParams()
		p.Mode = mode
		p.Workers = 3
		p.Epochs = 8
		p.ParetoAlpha = 1.8
		p.ChurnStart = 500
		p.ChurnEnd = 3000
		p.ChurnEvery = 400
		p.ReviveAfter = 150
		r, err := SimulateRepex(p)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatalf("%s: ladder deadlocked under churn: %+v", mode, r)
		}
		if r.WorkerKills == 0 || r.RequeuedSegments == 0 {
			t.Errorf("%s: churn window had no effect (kills=%d requeued=%d)",
				mode, r.WorkerKills, r.RequeuedSegments)
		}
		if r.PartialGangDispatches != 0 {
			t.Errorf("%s: %d partial gang dispatches", mode, r.PartialGangDispatches)
		}
		if r.GrantImbalance != 0 {
			t.Errorf("%s: %d leaked core grants", mode, r.GrantImbalance)
		}
		if r.QueueLeft != 0 {
			t.Errorf("%s: %d commands stranded in queue", mode, r.QueueLeft)
		}
		if r.SegmentsRun != p.Replicas*p.Epochs {
			t.Errorf("%s: segments = %d, want %d", mode, r.SegmentsRun, p.Replicas*p.Epochs)
		}
	}
}

// TestRepexDESValidation rejects unrunnable scenarios.
func TestRepexDESValidation(t *testing.T) {
	cases := []func(*RepexDESParams){
		func(p *RepexDESParams) { p.Replicas = 1 },
		func(p *RepexDESParams) { p.Mode = "psync" },
		func(p *RepexDESParams) { p.CoresPerWorker = p.Replicas - 1 }, // sync gang cannot fit
		func(p *RepexDESParams) { p.ParetoAlpha = 0.5 },
		func(p *RepexDESParams) { p.MeanSegSeconds = 0 },
	}
	for i, mutate := range cases {
		p := DefaultRepexDESParams()
		mutate(&p)
		if _, err := SimulateRepex(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// TestRepexDESDeterminism: same params, same scorecard.
func TestRepexDESDeterminism(t *testing.T) {
	p := DefaultRepexDESParams()
	p.ParetoAlpha = 1.5
	a, err := SimulateRepex(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRepex(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}
