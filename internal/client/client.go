// Package client is the one project-facing API surface of the overlay:
// submitting projects, querying status, and waiting for completion. The
// in-process Fabric, the cpcctl CLI, and any remote tool all speak through
// the same Client, so retry behaviour, idempotent resubmission and status
// polling are implemented exactly once.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"copernicus/internal/overlay"
	"copernicus/internal/retry"
	"copernicus/internal/wire"
)

// Config tunes a Client.
type Config struct {
	// Server is the node ID submissions are addressed to; status queries go
	// anycast so any server in the overlay can answer for the holder.
	Server string
	// Retry is the backoff policy for every request; zero fields take the
	// retry package defaults. PerAttempt defaults to 5 s.
	Retry retry.Policy
	// Poll is the Wait status-poll interval (default 50 ms — in-process
	// fabrics finish projects in seconds; remote callers may want more).
	Poll time.Duration
}

// Client issues project operations against an overlay it is connected to.
type Client struct {
	node *overlay.Node
	cfg  Config

	mu     sync.Mutex
	server string // current submission target; follows failover promotions
}

// New binds a client to an overlay node that is (or will be) connected to
// at least one server.
func New(node *overlay.Node, cfg Config) *Client {
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.Retry.PerAttempt <= 0 {
		cfg.Retry.PerAttempt = 5 * time.Second
	}
	if cfg.Retry.Obs == nil {
		cfg.Retry.Obs = node.Obs
	}
	cfg.Retry.Scope = node.ID()
	c := &Client{node: node, cfg: cfg, server: cfg.Server}
	// Status and Wait already find a promoted standby through anycast; the
	// promotion announcement additionally retargets submissions, so a client
	// peered with the new primary keeps working without operator action.
	node.Handle(wire.MsgPromoted, func(from string, payload []byte) ([]byte, error) {
		var ann wire.Promoted
		if err := wire.Unmarshal(payload, &ann); err != nil {
			return nil, err
		}
		if ann.NodeID != "" {
			c.mu.Lock()
			c.server = ann.NodeID
			c.mu.Unlock()
		}
		return []byte{}, nil
	})
	return c
}

// Node returns the client's overlay node.
func (c *Client) Node() *overlay.Node { return c.node }

// Server returns the node ID submissions are currently addressed to. It
// starts as Config.Server and follows failover promotion announcements.
func (c *Client) Server() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// Submit creates a project. Submission is not naturally idempotent (a
// project name can only be created once), so when a retried attempt learns
// the project "already exists", that means an earlier attempt succeeded but
// its reply was lost — Submit reports success.
func (c *Client) Submit(ctx context.Context, name, controllerName string, params []byte) error {
	payload, err := wire.Marshal(&wire.ProjectSubmit{
		Name:       name,
		Controller: controllerName,
		Params:     params,
	})
	if err != nil {
		return err
	}
	attempt := 0
	return c.cfg.Retry.Do(ctx, "submit", func(ctx context.Context) error {
		attempt++
		_, err := c.node.Request(ctx, c.Server(), wire.MsgSubmit, payload)
		var remote *overlay.RemoteError
		if errors.As(err, &remote) {
			if attempt > 1 && strings.Contains(remote.Msg, "already exists") {
				return nil // the lost first attempt landed
			}
			return retry.Permanent(err)
		}
		return err
	})
}

// Status queries the project's current state; any server holding it may
// answer (anycast), so it works through relays and after a re-home.
func (c *Client) Status(ctx context.Context, name string) (wire.ProjectStatus, error) {
	payload, err := wire.Marshal(&wire.ProjectStatusRequest{Name: name})
	if err != nil {
		return wire.ProjectStatus{}, err
	}
	var st wire.ProjectStatus
	err = c.cfg.Retry.Do(ctx, "status", func(ctx context.Context) error {
		reply, err := c.node.Request(ctx, "", wire.MsgStatus, payload)
		if err != nil {
			var remote *overlay.RemoteError
			if errors.As(err, &remote) || errors.Is(err, context.DeadlineExceeded) {
				// Answered with an error, or no server knows the project —
				// retrying the same question gets the same silence.
				return retry.Permanent(err)
			}
			return err
		}
		return wire.Unmarshal(reply, &st)
	})
	return st, err
}

// Wait polls Status until the project leaves the "running" state or ctx is
// done. Transient status failures (a dropped link mid-poll) do not abort
// the wait; the last error is reported if ctx expires first.
func (c *Client) Wait(ctx context.Context, name string) (wire.ProjectStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for {
		st, err := c.Status(ctx, name)
		if err == nil && st.State != "" && st.State != "running" {
			return st, nil
		}
		if err != nil {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return wire.ProjectStatus{}, fmt.Errorf("client: waiting for project %q: %w", name, lastErr)
		case <-time.After(c.cfg.Poll):
		}
	}
}
