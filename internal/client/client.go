// Package client is the one project-facing API surface of the overlay:
// submitting projects, querying status, and waiting for completion. The
// in-process Fabric, the cpcctl CLI, and any remote tool all speak through
// the same Client, so retry behaviour, idempotent resubmission and status
// polling are implemented exactly once.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"copernicus/internal/overlay"
	"copernicus/internal/retry"
	"copernicus/internal/wire"
)

// Config tunes a Client.
type Config struct {
	// Server is the node ID submissions are addressed to; status queries go
	// anycast so any server in the overlay can answer for the holder.
	Server string
	// Retry is the backoff policy for every request; zero fields take the
	// retry package defaults. PerAttempt defaults to 5 s.
	Retry retry.Policy
	// Poll is the Wait status-poll interval (default 50 ms — in-process
	// fabrics finish projects in seconds; remote callers may want more).
	Poll time.Duration
}

// Client issues project operations against an overlay it is connected to.
type Client struct {
	node *overlay.Node
	cfg  Config

	mu     sync.Mutex
	server string // current submission target; follows failover promotions
}

// New binds a client to an overlay node that is (or will be) connected to
// at least one server.
func New(node *overlay.Node, cfg Config) *Client {
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	if cfg.Retry.PerAttempt <= 0 {
		cfg.Retry.PerAttempt = 5 * time.Second
	}
	if cfg.Retry.Obs == nil {
		cfg.Retry.Obs = node.Obs
	}
	cfg.Retry.Scope = node.ID()
	c := &Client{node: node, cfg: cfg, server: cfg.Server}
	// Status and Wait already find a promoted standby through anycast; the
	// promotion announcement additionally retargets submissions, so a client
	// peered with the new primary keeps working without operator action.
	node.Handle(wire.MsgPromoted, func(from string, payload []byte) ([]byte, error) {
		var ann wire.Promoted
		if err := wire.Unmarshal(payload, &ann); err != nil {
			return nil, err
		}
		if ann.NodeID != "" {
			c.mu.Lock()
			c.server = ann.NodeID
			c.mu.Unlock()
		}
		return []byte{}, nil
	})
	return c
}

// Node returns the client's overlay node.
func (c *Client) Node() *overlay.Node { return c.node }

// Server returns the node ID submissions are currently addressed to. It
// starts as Config.Server and follows failover promotion announcements.
func (c *Client) Server() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// Typed admission outcomes, re-exported so callers can classify rejections
// without importing the wire package. Quota violations are terminal: the
// same submission fails until the tenant's quota or usage changes.
// Admission sheds are retryable: the server (or its WAL) is overloaded and
// backing off is the correct response — Submit does so automatically under
// its retry policy.
var (
	ErrQuotaExceeded = wire.ErrQuotaExceeded
	ErrAdmissionShed = wire.ErrAdmissionShed
)

// SubmitRequest describes one project submission.
type SubmitRequest struct {
	// Name is the unique project name; Controller the plugin that drives it.
	Name       string
	Controller string
	// Params is the controller-specific configuration blob.
	Params []byte
	// Tenant bills the project's commands to this fair-share account
	// ("" = the default tenant).
	Tenant string
	// Priority is the base priority commands inherit when the controller
	// does not set one.
	Priority int
	// Deadline, when non-zero, tells the server to reject the submission
	// (with ErrAdmissionShed) if it is admitted after this instant — the
	// client has given up by then.
	Deadline time.Time
}

// SubmitOption mutates a SubmitRequest; use with Submit for call sites that
// prefer options over struct literals.
type SubmitOption func(*SubmitRequest)

// WithTenant bills the project to the given tenant account.
func WithTenant(tenant string) SubmitOption {
	return func(r *SubmitRequest) { r.Tenant = tenant }
}

// WithPriority sets the base priority the project's commands inherit.
func WithPriority(priority int) SubmitOption {
	return func(r *SubmitRequest) { r.Priority = priority }
}

// WithDeadline bounds how stale the submission may be when admitted.
func WithDeadline(d time.Time) SubmitOption {
	return func(r *SubmitRequest) { r.Deadline = d }
}

// Submit creates a project and returns the server's admission receipt.
// Admission rejections carry typed retry classes: errors.Is(err,
// ErrQuotaExceeded) is terminal, errors.Is(err, ErrAdmissionShed) means the
// server shed load — Submit already retried under its policy, so a caller
// seeing it should back off longer before resubmitting.
//
// Submission is not naturally idempotent (a project name can only be
// created once), so when a retried attempt learns the project "already
// exists", that means an earlier attempt succeeded but its reply was lost —
// Submit reports success with a synthesized receipt.
func (c *Client) Submit(ctx context.Context, req SubmitRequest, opts ...SubmitOption) (wire.SubmitReceipt, error) {
	for _, opt := range opts {
		opt(&req)
	}
	sub := wire.ProjectSubmit{
		Name:       req.Name,
		Controller: req.Controller,
		Params:     req.Params,
		Tenant:     req.Tenant,
		Priority:   req.Priority,
	}
	if !req.Deadline.IsZero() {
		sub.DeadlineUnixNano = req.Deadline.UnixNano()
	}
	payload, err := wire.Marshal(&sub)
	if err != nil {
		return wire.SubmitReceipt{}, err
	}
	var receipt wire.SubmitReceipt
	attempt := 0
	err = c.cfg.Retry.Do(ctx, "submit", func(ctx context.Context) error {
		attempt++
		reply, err := c.node.Request(ctx, c.Server(), wire.MsgSubmit, payload)
		var remote *overlay.RemoteError
		if errors.As(err, &remote) {
			if attempt > 1 && strings.Contains(remote.Msg, "already exists") {
				// The lost first attempt landed.
				receipt = wire.SubmitReceipt{Project: req.Name, Tenant: req.Tenant, Server: c.Server()}
				return nil
			}
			if errors.Is(err, wire.ErrAdmissionShed) {
				return err // retryable: back off and try again
			}
			return retry.Permanent(err)
		}
		if err != nil {
			return err
		}
		return wire.Unmarshal(reply, &receipt)
	})
	return receipt, err
}

// --- tenant administration ---

// Tenants lists every tenant account the submission server's scheduler
// knows about (weights, quotas, usage).
func (c *Client) Tenants(ctx context.Context) ([]wire.TenantStatus, error) {
	payload, err := wire.Marshal(&wire.TenantListRequest{})
	if err != nil {
		return nil, err
	}
	var list wire.TenantList
	err = c.request(ctx, "tenant_list", wire.MsgTenantList, payload, &list)
	return list.Tenants, err
}

// TenantQuota reports one tenant's weight, quotas and usage.
func (c *Client) TenantQuota(ctx context.Context, tenant string) (wire.TenantStatus, error) {
	payload, err := wire.Marshal(&wire.TenantQuotaRequest{Tenant: tenant})
	if err != nil {
		return wire.TenantStatus{}, err
	}
	var st wire.TenantStatus
	err = c.request(ctx, "tenant_quota_get", wire.MsgTenantQuotaGet, payload, &st)
	return st, err
}

// SetTenantQuota applies a weight/quota update (wire.TenantQuotaUpdate
// semantics: Weight <= 0 keeps, negative quota keeps, zero clears) and
// returns the resulting status.
func (c *Client) SetTenantQuota(ctx context.Context, upd wire.TenantQuotaUpdate) (wire.TenantStatus, error) {
	payload, err := wire.Marshal(&upd)
	if err != nil {
		return wire.TenantStatus{}, err
	}
	var st wire.TenantStatus
	err = c.request(ctx, "tenant_quota_set", wire.MsgTenantQuotaSet, payload, &st)
	return st, err
}

// request runs one retried unicast request against the submission server
// and decodes the reply. Remote handler errors are permanent (the server
// answered; asking again changes nothing).
func (c *Client) request(ctx context.Context, op string, t wire.MsgType, payload []byte, out any) error {
	return c.cfg.Retry.Do(ctx, op, func(ctx context.Context) error {
		reply, err := c.node.Request(ctx, c.Server(), t, payload)
		if err != nil {
			var remote *overlay.RemoteError
			if errors.As(err, &remote) {
				return retry.Permanent(err)
			}
			return err
		}
		return wire.Unmarshal(reply, out)
	})
}

// Status queries the project's current state; any server holding it may
// answer (anycast), so it works through relays and after a re-home.
func (c *Client) Status(ctx context.Context, name string) (wire.ProjectStatus, error) {
	payload, err := wire.Marshal(&wire.ProjectStatusRequest{Name: name})
	if err != nil {
		return wire.ProjectStatus{}, err
	}
	var st wire.ProjectStatus
	err = c.cfg.Retry.Do(ctx, "status", func(ctx context.Context) error {
		reply, err := c.node.Request(ctx, "", wire.MsgStatus, payload)
		if err != nil {
			var remote *overlay.RemoteError
			if errors.As(err, &remote) || errors.Is(err, context.DeadlineExceeded) {
				// Answered with an error, or no server knows the project —
				// retrying the same question gets the same silence.
				return retry.Permanent(err)
			}
			return err
		}
		return wire.Unmarshal(reply, &st)
	})
	return st, err
}

// Wait polls Status until the project leaves the "running" state or ctx is
// done. Transient status failures (a dropped link mid-poll) do not abort
// the wait; the last error is reported if ctx expires first.
func (c *Client) Wait(ctx context.Context, name string) (wire.ProjectStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for {
		st, err := c.Status(ctx, name)
		if err == nil && st.State != "" && st.State != "running" {
			return st, nil
		}
		if err != nil {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return wire.ProjectStatus{}, fmt.Errorf("client: waiting for project %q: %w", name, lastErr)
		case <-time.After(c.cfg.Poll):
		}
	}
}
