package worker

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"copernicus/internal/chaos"
	"copernicus/internal/controller"
	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/retry"
	"copernicus/internal/server"
	"copernicus/internal/wire"
)

// ctxTimeout returns a context cancelled after d, cleaned up with the test.
func ctxTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// fakeEngine is a scriptable engine for worker tests.
type fakeEngine struct {
	name     string
	delay    time.Duration
	fail     bool
	block    bool // run until context cancelled
	ckpts    [][]byte
	ran      atomic.Int32
	canceled atomic.Int32
}

func (e *fakeEngine) Name() string { return e.name }

func (e *fakeEngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	e.ran.Add(1)
	for _, ck := range e.ckpts {
		if progress != nil {
			progress(ck)
		}
	}
	if e.block {
		<-ctx.Done()
		e.canceled.Add(1)
		return nil, ctx.Err()
	}
	if e.delay > 0 {
		select {
		case <-time.After(e.delay):
		case <-ctx.Done():
			e.canceled.Add(1)
			return nil, ctx.Err()
		}
	}
	if e.fail {
		return nil, errors.New("engine exploded")
	}
	return []byte("output-" + spec.ID + fmt.Sprintf("-%dcores", cores)), nil
}

// recController records server-side events for assertions.
type recController struct {
	mu       sync.Mutex
	submit   []wire.CommandSpec
	results  []*wire.CommandResult
	failures []string
	finishOn int
}

func (c *recController) Name() string { return "rec" }
func (c *recController) Start(ctx controller.Context, _ []byte) error {
	for _, cmd := range c.submit {
		if err := ctx.Submit(cmd); err != nil {
			return err
		}
	}
	return nil
}
func (c *recController) CommandFinished(ctx controller.Context, res *wire.CommandResult) error {
	c.mu.Lock()
	c.results = append(c.results, res)
	n := len(c.results)
	c.mu.Unlock()
	if c.finishOn > 0 && n >= c.finishOn {
		ctx.Finish([]byte("done"))
	}
	return nil
}
func (c *recController) CommandFailed(ctx controller.Context, cmd wire.CommandSpec, reason string) error {
	c.mu.Lock()
	c.failures = append(c.failures, cmd.ID)
	c.mu.Unlock()
	return nil
}
func (c *recController) snapshot() (res []*wire.CommandResult, fails []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*wire.CommandResult(nil), c.results...), append([]string(nil), c.failures...)
}

// rig wires one server, one worker (with the given engines) and returns both.
type rig struct {
	srv  *server.Server
	wk   *Worker
	ctrl *recController
	stop context.CancelFunc
}

func newRig(t *testing.T, ctrl *recController, engs []engines.Engine, wcfg Config) *rig {
	t.Helper()
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	reg := controller.NewRegistry()
	reg.Register("rec", func() controller.Controller { return ctrl })
	srv := server.New(sNode, reg, server.Config{HeartbeatInterval: 100 * time.Millisecond})

	wNode := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), net.Transport())
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	if wcfg.PollInterval == 0 {
		wcfg.PollInterval = 10 * time.Millisecond
	}
	wk, err := New(wNode, sNode.ID(), engs, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = wk.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		srv.Close()
		wNode.Close()
		sNode.Close()
	})
	return &rig{srv: srv, wk: wk, ctrl: ctrl, stop: cancel}
}

func (r *rig) submitProject(t *testing.T) {
	t.Helper()
	// Submit through the server's own handler via a local call path: use
	// the project server API directly through the overlay is already
	// covered elsewhere; here we drive the handler through a client node.
	payload, err := wire.Marshal(&wire.ProjectSubmit{Name: "p", Controller: "rec"})
	if err != nil {
		t.Fatal(err)
	}
	// The worker node doubles as a client for submission simplicity.
	if _, err := r.wk.node.RequestTimeout(r.srv.Node().ID(), wire.MsgSubmit, payload, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func mkCmd(id, typ string) wire.CommandSpec {
	return wire.CommandSpec{ID: id, Type: typ, MinCores: 1, MaxCores: 2}
}

func TestWorkerExecutesAndReports(t *testing.T) {
	eng := &fakeEngine{name: "sim"}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim"), mkCmd("c2", "sim")}, finishOn: 2}
	r := newRig(t, ctrl, []engines.Engine{eng}, Config{Cores: 2})
	r.submitProject(t)
	st, err := r.srv.WaitProject(ctxTimeout(t, 10*time.Second), "p")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Fatalf("state = %q", st.State)
	}
	results, _ := ctrl.snapshot()
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if !res.OK || res.WorkerID != r.wk.ID() || len(res.Output) == 0 {
			t.Errorf("result = %+v", res)
		}
		if res.WallSeconds < 0 {
			t.Errorf("wall time = %v", res.WallSeconds)
		}
	}
	// The completion counter increments after the result is sent, so it can
	// trail WaitProject by a beat.
	waitCond(t, 2*time.Second, func() bool { return r.wk.Completed() == 2 })
}

func TestWorkerNoEngineReportsFailure(t *testing.T) {
	eng := &fakeEngine{name: "sim"}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim")}}
	r := newRig(t, ctrl, []engines.Engine{eng}, Config{})
	// Submit a command of a type the worker DOES have, plus verify that a
	// command type the worker lacks is simply never assigned (queue keeps it).
	r.submitProject(t)
	waitCond(t, 5*time.Second, func() bool {
		res, _ := ctrl.snapshot()
		return len(res) == 1
	})
}

func TestWorkerEngineErrorPropagates(t *testing.T) {
	eng := &fakeEngine{name: "sim", fail: true}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim")}}
	r := newRig(t, ctrl, []engines.Engine{eng}, Config{})
	r.submitProject(t)
	// The server rejects worker-reported failures with an error reply; the
	// command stays "running" until heartbeats lapse. What we verify here
	// is that the engine ran and no success was recorded.
	waitCond(t, 5*time.Second, func() bool { return eng.ran.Load() >= 1 })
	res, _ := ctrl.snapshot()
	if len(res) != 0 {
		t.Errorf("failed command produced a success result")
	}
}

// TestWorkerRefusesPartialGang: a workload carrying only part of a gang —
// as a mixed-version server whose relay hop dropped the gang fields could
// produce — has the stray members refused with a failure result; complete
// gangs and solo commands still run. The real queue never splits a gang,
// so the workload is forged directly against vetGangs.
func TestWorkerRefusesPartialGang(t *testing.T) {
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(11), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var failed []*wire.CommandResult
	sNode.Handle(wire.MsgResult, func(from string, payload []byte) ([]byte, error) {
		var res wire.CommandResult
		if err := wire.Unmarshal(payload, &res); err != nil {
			return nil, err
		}
		mu.Lock()
		failed = append(failed, &res)
		mu.Unlock()
		return []byte("ok"), nil
	})
	wNode := overlay.NewNode(overlay.NewIdentityFromSeed(12), overlay.NewTrustStore(), net.Transport())
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wNode.Close(); sNode.Close() })
	wk, err := New(wNode, sNode.ID(), []engines.Engine{&fakeEngine{name: "sim"}}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	gangCmd := func(id, gang string, size int) wire.CommandSpec {
		c := mkCmd(id, "sim")
		c.Project = "p"
		c.Origin = sNode.ID()
		c.GangID = gang
		c.GangSize = size
		return c
	}
	cmds := []wire.CommandSpec{
		gangCmd("s1", "", 0),       // solo: always cleared
		gangCmd("h1", "p/half", 3), // partial gang: 2 of 3 present
		gangCmd("h2", "p/half", 3), //
		gangCmd("f1", "p/full", 2), // complete gang: cleared
		gangCmd("f2", "p/full", 2), //
		gangCmd("z1", "p/zero", 0), // gang ID with bogus size: refused
	}
	cleared := wk.vetGangs(ctxTimeout(t, 5*time.Second), cmds)

	want := map[string]bool{"s1": true, "f1": true, "f2": true}
	if len(cleared) != len(want) {
		t.Fatalf("cleared = %v", cleared)
	}
	for _, c := range cleared {
		if !want[c.ID] {
			t.Errorf("partial gang member %s cleared to run", c.ID)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	refused := map[string]bool{}
	for _, res := range failed {
		if res.OK {
			t.Errorf("refusal for %s reported OK", res.CommandID)
		}
		if !strings.Contains(res.Error, "partial gang dispatch") {
			t.Errorf("refusal error = %q", res.Error)
		}
		refused[res.CommandID] = true
	}
	if !refused["h1"] || !refused["h2"] || !refused["z1"] || len(refused) != 3 {
		t.Errorf("refused = %v, want h1 h2 z1", refused)
	}
}

func TestWorkerPartialCheckpointsReachServer(t *testing.T) {
	eng := &fakeEngine{name: "sim", ckpts: [][]byte{[]byte("ck1"), []byte("ck2")}, delay: 50 * time.Millisecond}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim")}, finishOn: 1}
	r := newRig(t, ctrl, []engines.Engine{eng}, Config{})
	r.submitProject(t)
	if _, err := r.srv.WaitProject(ctxTimeout(t, 10*time.Second), "p"); err != nil {
		t.Fatal(err)
	}
	// The final result must still be OK (partials don't complete commands).
	res, _ := ctrl.snapshot()
	if len(res) != 1 || !res[0].OK {
		t.Fatalf("results = %v", res)
	}
}

func TestWorkerSharedFSSpool(t *testing.T) {
	dir := t.TempDir()
	eng := &fakeEngine{name: "sim"}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim")}, finishOn: 1}
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	reg := controller.NewRegistry()
	reg.Register("rec", func() controller.Controller { return ctrl })
	srv := server.New(sNode, reg, server.Config{
		HeartbeatInterval: time.Hour, FSToken: "shared-1",
	})
	wNode := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), net.Transport())
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	wk, err := New(wNode, sNode.ID(), []engines.Engine{eng}, Config{
		PollInterval: 10 * time.Millisecond,
		FSToken:      "shared-1",
		SpoolDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = wk.Run(ctx) }()
	defer func() { srv.Close(); wNode.Close(); sNode.Close() }()

	payload, _ := wire.Marshal(&wire.ProjectSubmit{Name: "p", Controller: "rec"})
	if _, err := wNode.RequestTimeout(sNode.ID(), wire.MsgSubmit, payload, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.WaitProject(ctxTimeout(t, 10*time.Second), "p"); err != nil {
		t.Fatal(err)
	}
	res, _ := ctrl.snapshot()
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	// The server must have loaded the output from the spool path.
	if string(res[0].Output) == "" {
		t.Error("shared-FS output not loaded")
	}
	if res[0].OutputPath == "" {
		t.Error("result did not travel by path reference")
	}
}

func TestWorkerValidation(t *testing.T) {
	net := overlay.NewMemNetwork()
	n := overlay.NewNode(overlay.NewIdentityFromSeed(9), overlay.NewTrustStore(), net.Transport())
	defer n.Close()
	if _, err := New(n, "", []engines.Engine{&fakeEngine{name: "x"}}, Config{}); err == nil {
		t.Error("empty home accepted")
	}
	if _, err := New(n, "home", nil, Config{}); err == nil {
		t.Error("no engines accepted")
	}
	if _, err := New(n, "home", []engines.Engine{&fakeEngine{name: "x"}, &fakeEngine{name: "x"}}, Config{}); err == nil {
		t.Error("duplicate engines accepted")
	}
}

func TestWorkerInfoAnnouncesEverything(t *testing.T) {
	net := overlay.NewMemNetwork()
	n := overlay.NewNode(overlay.NewIdentityFromSeed(9), overlay.NewTrustStore(), net.Transport())
	defer n.Close()
	wk, err := New(n, "home", []engines.Engine{&fakeEngine{name: "a"}, &fakeEngine{name: "b"}}, Config{
		Platform: "mpi", Cores: 48, FSToken: "fs",
	})
	if err != nil {
		t.Fatal(err)
	}
	info := wk.info()
	if info.Platform != "mpi" || info.Cores != 48 || info.FSToken != "fs" {
		t.Errorf("info = %+v", info)
	}
	if len(info.Executables) != 2 {
		t.Errorf("executables = %v", info.Executables)
	}
}

func TestWorkerRunStopsOnContextCancel(t *testing.T) {
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	defer sNode.Close()
	wNode := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), net.Transport())
	defer wNode.Close()
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	wk, err := New(wNode, sNode.ID(), []engines.Engine{&fakeEngine{name: "x"}}, Config{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- wk.Run(ctx) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
}

// terminatingController submits a fast probe command and a blocking one;
// when the probe finishes it terminates the blocking command from within
// the event handler, exercising the heartbeat-ack abort path of §3.2
// ("marking trajectories for termination").
type terminatingController struct {
	recController
	terminated atomic.Bool
}

func (c *terminatingController) CommandFinished(ctx controller.Context, res *wire.CommandResult) error {
	if res.CommandID == "probe" && !c.terminated.Swap(true) {
		ctx.Terminate("c1")
	}
	return c.recController.CommandFinished(ctx, res)
}

func TestWorkerAbortsTerminatedCommand(t *testing.T) {
	blockEng := &fakeEngine{name: "sim", block: true} // runs until cancelled
	probeEng := &fakeEngine{name: "probe"}
	eng := blockEng
	ctrl := &terminatingController{recController: recController{
		submit: []wire.CommandSpec{mkCmd("c1", "sim"), mkCmd("probe", "probe")},
	}}
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	reg := controller.NewRegistry()
	reg.Register("rec", func() controller.Controller { return ctrl })
	srv := server.New(sNode, reg, server.Config{HeartbeatInterval: 80 * time.Millisecond})
	wNode := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), net.Transport())
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	wk, err := New(wNode, sNode.ID(), []engines.Engine{eng, probeEng}, Config{
		Cores:        2, // run the blocking command and the probe concurrently
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = wk.Run(ctx) }()
	defer func() { cancel(); srv.Close(); wNode.Close(); sNode.Close() }()

	payload, _ := wire.Marshal(&wire.ProjectSubmit{Name: "p", Controller: "rec"})
	if _, err := wNode.RequestTimeout(sNode.ID(), wire.MsgSubmit, payload, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The blocking engine must get cancelled via the heartbeat abort once
	// the probe's completion triggers Terminate("c1").
	waitCond(t, 10*time.Second, func() bool { return blockEng.canceled.Load() >= 1 })
	// Only the probe may have produced a success result.
	res, _ := ctrl.snapshot()
	for _, r := range res {
		if r.CommandID != "probe" {
			t.Errorf("terminated command produced a result: %s", r.CommandID)
		}
	}
}

// metricValue sums every sample of the named metric in o's text exposition.
func metricValue(t *testing.T, o *obs.Obs, name string) float64 {
	t.Helper()
	var buf strings.Builder
	o.Metrics.WriteText(&buf)
	total := 0.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			total += v
		}
	}
	return total
}

// TestResultSpoolAndRedeliver walks the degradation ladder end to end: the
// worker finishes a command while partitioned from every server, spools the
// undeliverable result to disk, and redelivers it after the partition heals
// — no finished work lost.
func TestResultSpoolAndRedeliver(t *testing.T) {
	onet := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), onet.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim")}, finishOn: 1}
	reg := controller.NewRegistry()
	reg.Register("rec", func() controller.Controller { return ctrl })
	srv := server.New(sNode, reg, server.Config{HeartbeatInterval: time.Hour})

	o := obs.New()
	ct := chaos.New(onet.Transport(), chaos.Config{Seed: 7}, o)
	wNode := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), ct)
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	wk, err := New(wNode, sNode.ID(), []engines.Engine{&fakeEngine{name: "sim"}}, Config{
		Cores:          1,
		ResultSpoolDir: spool,
		Obs:            o,
		Retry:          retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, PerAttempt: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		ct.Stop()
		wNode.Close()
		sNode.Close()
	})
	ctx := context.Background()

	payload, err := wire.Marshal(&wire.ProjectSubmit{Name: "p", Controller: "rec"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wNode.RequestTimeout(sNode.ID(), wire.MsgSubmit, payload, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	wl, err := wk.announce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 1 {
		t.Fatalf("workload = %v", wl.Commands)
	}

	// Sever the worker↔server link and wait until the overlay notices.
	ct.Partition("srv")
	waitCond(t, 2*time.Second, func() bool { return len(wNode.Peers()) == 0 })

	res := wire.CommandResult{CommandID: "c1", Project: "p", WorkerID: wk.ID(), OK: true, Output: []byte("out")}
	wk.sendResult(ctx, sNode.ID(), &res)
	files, err := filepath.Glob(filepath.Join(spool, "*.result"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spooled files = %v (err %v), want exactly 1", files, err)
	}
	if got := metricValue(t, o, "copernicus_worker_results_spooled_total"); got != 1 {
		t.Errorf("copernicus_worker_results_spooled_total = %g, want 1", got)
	}
	if results, _ := ctrl.snapshot(); len(results) != 0 {
		t.Fatalf("server saw %d results while partitioned", len(results))
	}

	// Heal, reconnect (the Run loop does this via rehome) and drain.
	ct.Heal("srv")
	if _, err := wNode.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	wk.drainSpool(ctx)
	if files, _ := filepath.Glob(filepath.Join(spool, "*.result")); len(files) != 0 {
		t.Errorf("spool not emptied after redelivery: %v", files)
	}
	if got := metricValue(t, o, "copernicus_worker_results_redelivered_total"); got != 1 {
		t.Errorf("copernicus_worker_results_redelivered_total = %g, want 1", got)
	}
	results, _ := ctrl.snapshot()
	if len(results) != 1 || !results[0].OK || results[0].CommandID != "c1" {
		t.Fatalf("server results after redelivery = %+v", results)
	}
}
