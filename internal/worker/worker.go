// Package worker implements the Copernicus worker client of §2.3: it
// announces its resources (platform, cores, installed executables) to its
// nearest server, receives a workload, executes the commands through the
// engine plugins, streams heartbeats, reports partial checkpoints for
// failover, and returns results to each command's project server through
// the overlay.
package worker

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/retry"
	"copernicus/internal/store/atomicfile"
	"copernicus/internal/wire"
)

// Config tunes a worker.
type Config struct {
	// Platform is the announced platform plugin name ("smp" by default).
	Platform string
	// Cores is the announced core count (default 1).
	Cores int
	// PollInterval is the idle re-announcement period (default 500 ms —
	// batch systems would use seconds; tests use milliseconds).
	PollInterval time.Duration
	// RequestTimeout bounds each overlay request attempt (default 10 s).
	RequestTimeout time.Duration
	// Retry is the backoff policy applied to every overlay request the
	// worker makes (announce, heartbeat, result upload). Zero fields take
	// the retry package defaults; PerAttempt defaults to RequestTimeout.
	Retry retry.Policy
	// ServerAddrs lists transport addresses of known servers. When the home
	// peer stays unreachable for RehomeAfter consecutive announce rounds,
	// the worker dials the next address round-robin and adopts whichever
	// server answers as its new home — the paper's "connect to the nearest
	// available server" under churn.
	ServerAddrs []string
	// RehomeAfter is the number of consecutive failed announce rounds
	// (post-retry) before the worker tries another server (default 2).
	RehomeAfter int
	// ResultSpoolDir, when set, lets the worker persist results it cannot
	// deliver to any server and redeliver them after the next successful
	// announcement, so finished CPU-hours survive a full partition.
	ResultSpoolDir string
	// FSToken and SpoolDir enable the shared-filesystem result path: when
	// the assigning server advertises the same token, results are written
	// under SpoolDir and passed by reference.
	FSToken  string
	SpoolDir string
	// CheckpointDir, when set, persists every engine progress checkpoint to
	// local disk (atomically, one file per command) so a restarted worker
	// process resumes a re-dispatched command from its own last checkpoint
	// even when the server never saw one — the server's checkpoint remains
	// authoritative whenever the dispatch carries it. Files are removed when
	// the command settles.
	CheckpointDir string
	// Obs carries the worker's metrics registry, span tracer and logger.
	// nil means a fresh silent bundle; pass a shared one to see worker run
	// spans alongside the server's lifecycle spans.
	Obs *obs.Obs
}

func (c *Config) fill() {
	if c.Platform == "" {
		c.Platform = "smp"
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RehomeAfter <= 0 {
		c.RehomeAfter = 2
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	if c.Retry.PerAttempt <= 0 {
		c.Retry.PerAttempt = c.RequestTimeout
	}
	c.Retry.Obs = c.Obs
}

// Worker executes commands against a home server.
type Worker struct {
	node    *overlay.Node
	engines map[string]engines.Engine
	cfg     Config
	rpol    retry.Policy
	log     *obs.Logger
	met     workerMetrics

	mu      sync.Mutex
	home    string // node ID of the current home server
	running map[string]context.CancelFunc

	// announceFails counts consecutive post-retry announce failures (only
	// touched from the Run loop); nextServer round-robins ServerAddrs.
	announceFails int
	nextServer    int

	// Completed counts finished commands (for tests and monitoring).
	completed int
}

// workerMetrics holds this worker's registry handles. Per-engine command
// wall-time histograms are resolved lazily (get-or-create) in runCommand.
type workerMetrics struct {
	announces       *obs.Counter
	announceErrors  *obs.Counter
	commandsOK      *obs.Counter
	commandsFailed  *obs.Counter
	resultErrors    *obs.Counter
	resultsSpooled  *obs.Counter
	redelivered     *obs.Counter
	rehomes         *obs.Counter
	gangRejects     *obs.Counter
	checkpointBytes *obs.Histogram
	streamChunks    *obs.Counter
	streamFrames    *obs.Counter
	streamErrors    *obs.Counter
	ckptResumes     *obs.Counter
}

func newWorkerMetrics(o *obs.Obs, workerID string) workerMetrics {
	l := obs.L("worker", workerID)
	return workerMetrics{
		announces: o.Metrics.Counter("copernicus_worker_announces_total",
			"Resource announcements sent to the home server.", l),
		announceErrors: o.Metrics.Counter("copernicus_worker_announce_errors_total",
			"Announcements that failed at the overlay layer.", l),
		commandsOK: o.Metrics.Counter("copernicus_worker_commands_ok_total",
			"Commands this worker completed successfully.", l),
		commandsFailed: o.Metrics.Counter("copernicus_worker_commands_failed_total",
			"Commands whose engine run returned an error.", l),
		resultErrors: o.Metrics.Counter("copernicus_worker_result_errors_total",
			"Result uploads that failed to reach the project server.", l),
		resultsSpooled: o.Metrics.Counter("copernicus_worker_results_spooled_total",
			"Finished results persisted to disk because no server was reachable.", l),
		redelivered: o.Metrics.Counter("copernicus_worker_results_redelivered_total",
			"Spooled results successfully delivered after connectivity returned.", l),
		rehomes: o.Metrics.Counter("copernicus_worker_rehomes_total",
			"Times this worker adopted a different home server after its peer became unreachable.", l),
		gangRejects: o.Metrics.Counter("copernicus_worker_gang_rejects_total",
			"Gang members refused because the workload carried only part of their gang.", l),
		checkpointBytes: o.Metrics.Histogram("copernicus_worker_checkpoint_bytes",
			"Size of partial-result checkpoints reported for failover.",
			obs.SizeBuckets(), l),
		streamChunks: o.Metrics.Counter("copernicus_worker_stream_chunks_total",
			"Frame chunks delivered to a project server.", l),
		streamFrames: o.Metrics.Counter("copernicus_worker_stream_frames_total",
			"Frames delivered inside streamed chunks.", l),
		streamErrors: o.Metrics.Counter("copernicus_worker_stream_chunk_errors_total",
			"Frame chunks dropped because no server accepted them.", l),
		ckptResumes: o.Metrics.Counter("copernicus_worker_checkpoint_resumes_total",
			"Commands resumed from a locally persisted engine checkpoint.", l),
	}
}

// New creates a worker bound to an overlay node that is already connected
// to its home server.
func New(node *overlay.Node, home string, engs []engines.Engine, cfg Config) (*Worker, error) {
	cfg.fill()
	if home == "" {
		return nil, fmt.Errorf("worker: home server ID required")
	}
	if len(engs) == 0 {
		return nil, fmt.Errorf("worker: no engines installed")
	}
	w := &Worker{
		node:    node,
		home:    home,
		engines: make(map[string]engines.Engine, len(engs)),
		cfg:     cfg,
		running: make(map[string]context.CancelFunc),
	}
	for _, e := range engs {
		if _, dup := w.engines[e.Name()]; dup {
			return nil, fmt.Errorf("worker: duplicate engine %q", e.Name())
		}
		w.engines[e.Name()] = e
	}
	w.rpol = cfg.Retry
	w.rpol.Scope = node.ID()
	w.log = cfg.Obs.Log.Named("worker").With("worker", node.ID())
	w.met = newWorkerMetrics(cfg.Obs, node.ID())
	// A promoted standby announces ownership of its dead primary's projects;
	// adopting it as home immediately beats waiting out failed announces
	// before the rehome dial loop finds it.
	node.Handle(wire.MsgPromoted, func(from string, payload []byte) ([]byte, error) {
		var ann wire.Promoted
		if err := wire.Unmarshal(payload, &ann); err != nil {
			return nil, err
		}
		if ann.NodeID != "" && ann.NodeID != w.Home() {
			w.log.Info("server promotion announced; re-homing",
				"new_home", ann.NodeID, "epoch", ann.Epoch)
			w.met.rehomes.Inc()
			w.setHome(ann.NodeID)
		}
		return []byte{}, nil
	})
	return w, nil
}

// ID returns the worker's overlay node ID.
func (w *Worker) ID() string { return w.node.ID() }

// Home returns the node ID of the current home server (it changes when the
// worker re-homes after a partition).
func (w *Worker) Home() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.home
}

func (w *Worker) setHome(id string) {
	w.mu.Lock()
	w.home = id
	w.mu.Unlock()
}

// Completed returns the number of commands this worker has finished.
func (w *Worker) Completed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.completed
}

// RunningCommands returns the IDs of commands currently executing (for
// tests and the chaos harness, which partitions a worker only once it is
// actually busy).
func (w *Worker) RunningCommands() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.running))
	for id := range w.running {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// request runs one overlay request under the worker's retry policy. Remote
// handler errors are permanent (the request was delivered; the answer will
// not change); transport errors — no route, timeouts, dropped links — are
// retried with backoff.
func (w *Worker) request(ctx context.Context, op, to string, t wire.MsgType, payload []byte) ([]byte, error) {
	var reply []byte
	err := w.rpol.Do(ctx, op, func(ctx context.Context) error {
		r, err := w.node.Request(ctx, to, t, payload)
		if err != nil {
			var remote *overlay.RemoteError
			if errors.As(err, &remote) {
				return retry.Permanent(err)
			}
			return err
		}
		reply = r
		return nil
	})
	return reply, err
}

// info builds the announcement payload.
func (w *Worker) info() wire.WorkerInfo {
	names := make([]string, 0, len(w.engines))
	for n := range w.engines {
		names = append(names, n)
	}
	return wire.WorkerInfo{
		ID:          w.node.ID(),
		Platform:    w.cfg.Platform,
		Cores:       w.cfg.Cores,
		Executables: names,
		FSToken:     w.cfg.FSToken,
	}
}

// Run announces, executes and reports until ctx is cancelled. It returns
// ctx.Err() on cancellation, or the first fatal protocol error.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		wl, err := w.announce(ctx)
		if err != nil {
			w.met.announceErrors.Inc()
			w.log.Warn("announce failed", "err", err)
			w.announceFails++
			if w.announceFails >= w.cfg.RehomeAfter {
				w.rehome()
			}
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		w.announceFails = 0
		w.drainSpool(ctx)
		if len(wl.Commands) == 0 {
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		w.execute(ctx, wl)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// announce sends the resource announcement and decodes the workload.
func (w *Worker) announce(ctx context.Context) (*wire.Workload, error) {
	w.met.announces.Inc()
	payload, err := wire.Marshal(&wire.AnnounceRequest{Info: w.info()})
	if err != nil {
		return nil, err
	}
	reply, err := w.request(ctx, "announce", w.Home(), wire.MsgAnnounce, payload)
	if err != nil {
		return nil, err
	}
	var wl wire.Workload
	if err := wire.Unmarshal(reply, &wl); err != nil {
		return nil, err
	}
	return &wl, nil
}

// rehome dials the next known server address round-robin and adopts the
// responding server as the new home peer. Called from the Run loop after
// RehomeAfter consecutive announce failures; a worker with no configured
// addresses keeps hammering its original home.
func (w *Worker) rehome() {
	if len(w.cfg.ServerAddrs) == 0 {
		return
	}
	for i := 0; i < len(w.cfg.ServerAddrs); i++ {
		addr := w.cfg.ServerAddrs[w.nextServer%len(w.cfg.ServerAddrs)]
		w.nextServer++
		peerID, err := w.node.ConnectPeer(addr)
		if err != nil {
			w.log.Warn("re-home dial failed", "addr", addr, "err", err)
			continue
		}
		if peerID != w.Home() {
			w.met.rehomes.Inc()
			w.log.Info("re-homed to new server", "addr", addr, "server", peerID)
		}
		w.setHome(peerID)
		w.announceFails = 0
		return
	}
}

// drainSpool redelivers results spooled during an outage, anycast so any
// server holding the project can accept them. Files stay on disk until a
// delivery succeeds; servers treat duplicates idempotently, so redelivering
// a result the origin already counted is harmless.
func (w *Worker) drainSpool(ctx context.Context) {
	if w.cfg.ResultSpoolDir == "" {
		return
	}
	paths, err := filepath.Glob(filepath.Join(w.cfg.ResultSpoolDir, "*.result"))
	if err != nil || len(paths) == 0 {
		return
	}
	sort.Strings(paths)
	for _, path := range paths {
		payload, err := os.ReadFile(path)
		if err != nil {
			w.log.Warn("reading spooled result failed", "path", path, "err", err)
			continue
		}
		if _, err := w.request(ctx, "result_redeliver", "", wire.MsgResult, payload); err != nil {
			w.log.Warn("redelivering spooled result failed", "path", path, "err", err)
			return // connectivity degraded again; keep the rest for later
		}
		w.met.redelivered.Inc()
		w.log.Info("redelivered spooled result", "path", path)
		if err := os.Remove(path); err != nil {
			w.log.Warn("removing delivered spool file failed", "path", path, "err", err)
		}
	}
}

// vetGangs enforces the worker's side of the all-or-nothing gang contract:
// a workload must carry either every member of a gang or none of them. A
// mixed-version or misbehaving server that dispatches a partial gang (for
// example after the gang fields were dropped on an old-frame relay hop)
// gets each stray member refused with a failure result instead of a
// silently half-running gang; the server's orphan recovery then requeues
// the members for a correct dispatch. Returns the commands cleared to run.
func (w *Worker) vetGangs(ctx context.Context, cmds []wire.CommandSpec) []wire.CommandSpec {
	present := make(map[string]int)
	for _, c := range cmds {
		if c.GangID != "" {
			present[c.GangID]++
		}
	}
	cleared := make([]wire.CommandSpec, 0, len(cmds))
	for _, c := range cmds {
		if c.GangID == "" || (c.GangSize >= 2 && present[c.GangID] == c.GangSize) {
			cleared = append(cleared, c)
			continue
		}
		w.met.gangRejects.Inc()
		w.log.Warn("refusing partial gang dispatch",
			"command", c.ID, "gang", c.GangID,
			"present", present[c.GangID], "size", c.GangSize)
		res := wire.CommandResult{
			CommandID: c.ID, Project: c.Project, WorkerID: w.ID(),
			Error: fmt.Sprintf("worker: partial gang dispatch: %d of %d members of gang %q present",
				present[c.GangID], c.GangSize, c.GangID),
		}
		w.sendResult(ctx, c.Origin, &res)
	}
	return cleared
}

// execute runs a workload: one goroutine per command plus a heartbeat
// ticker, blocking until every command has completed or aborted.
func (w *Worker) execute(ctx context.Context, wl *wire.Workload) {
	cmds := w.vetGangs(ctx, wl.Commands)
	if len(cmds) == 0 {
		return
	}
	var wg sync.WaitGroup
	ids := make([]string, 0, len(cmds))
	for _, cmd := range cmds {
		ids = append(ids, cmd.ID)
	}

	hbStop := make(chan struct{})
	hbInterval := time.Duration(wl.HeartbeatSeconds * float64(time.Second))
	if hbInterval <= 0 {
		hbInterval = 120 * time.Second
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx, hbStop, hbInterval, ids)
	}()

	var cmdWg sync.WaitGroup
	for _, cmd := range cmds {
		cmdWg.Add(1)
		go func(cmd wire.CommandSpec) {
			defer cmdWg.Done()
			w.runCommand(ctx, cmd, wl.Cores[cmd.ID], wl.SharedFS)
		}(cmd)
	}
	cmdWg.Wait()
	close(hbStop)
	wg.Wait()
}

// heartbeatLoop reports liveness and processes abort instructions.
func (w *Worker) heartbeatLoop(ctx context.Context, stop <-chan struct{}, interval time.Duration, ids []string) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.mu.Lock()
		live := make([]string, 0, len(ids))
		for _, id := range ids {
			if _, ok := w.running[id]; ok {
				live = append(live, id)
			}
		}
		w.mu.Unlock()
		payload, err := wire.Marshal(&wire.Heartbeat{WorkerID: w.ID(), CommandIDs: live})
		if err != nil {
			continue
		}
		reply, err := w.request(ctx, "heartbeat", w.Home(), wire.MsgHeartbeat, payload)
		if err != nil {
			w.log.Warn("heartbeat failed", "err", err)
			continue
		}
		var ack wire.HeartbeatAck
		if err := wire.Unmarshal(reply, &ack); err != nil {
			continue
		}
		for _, id := range ack.AbortCommandIDs {
			w.mu.Lock()
			cancel := w.running[id]
			w.mu.Unlock()
			if cancel != nil {
				w.log.Info("aborting terminated command", "command", id)
				cancel()
			}
		}
	}
}

// runCommand executes one command and reports its result to the project
// server.
func (w *Worker) runCommand(ctx context.Context, cmd wire.CommandSpec, cores int, sharedFS bool) {
	if cores <= 0 {
		cores = cmd.MinCores
	}
	eng := w.engines[cmd.Type]
	res := wire.CommandResult{
		CommandID: cmd.ID,
		Project:   cmd.Project,
		WorkerID:  w.ID(),
		CoresUsed: cores,
	}
	if eng == nil {
		res.Error = fmt.Sprintf("worker: no engine for %q", cmd.Type)
		w.sendResult(ctx, cmd.Origin, &res)
		return
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.running[cmd.ID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.running, cmd.ID)
		w.mu.Unlock()
	}()

	// The server's checkpoint is authoritative; the local copy only covers
	// the dispatch arriving without one — a worker restart before the server
	// noticed any progress, or a requeue that lost the checkpoint.
	if len(cmd.Checkpoint) == 0 {
		if ck := w.loadLocalCheckpoint(cmd.ID); len(ck) > 0 {
			w.met.ckptResumes.Inc()
			w.log.Info("resuming from local checkpoint",
				"command", cmd.ID, "bytes", len(ck))
			cmd.Checkpoint = ck
		}
	}

	progress := func(checkpoint []byte) {
		w.saveLocalCheckpoint(cmd.ID, checkpoint)
		partial := wire.CommandResult{
			CommandID:  cmd.ID,
			Project:    cmd.Project,
			WorkerID:   w.ID(),
			OK:         true,
			Partial:    true,
			Checkpoint: checkpoint,
		}
		w.met.checkpointBytes.Observe(float64(len(checkpoint)))
		w.sendResult(ctx, cmd.Origin, &partial)
	}

	start := time.Now()
	var output []byte
	var err error
	if streamer, ok := eng.(engines.Streamer); ok {
		emit := func(chunk *wire.FrameChunk) {
			chunk.WorkerID = w.ID()
			w.sendChunk(ctx, cmd.Origin, chunk)
		}
		output, err = streamer.RunStream(runCtx, cmd, cores, progress, emit)
	} else {
		output, err = eng.Run(runCtx, cmd, cores, progress)
	}
	res.WallSeconds = time.Since(start).Seconds()
	w.cfg.Obs.Metrics.Histogram("copernicus_worker_command_seconds",
		"Wall time of engine runs, by engine type.",
		obs.DefBuckets(), obs.L("worker", w.ID(), "engine", cmd.Type)).
		Observe(res.WallSeconds)
	span := obs.Span{
		Stage:    obs.StageRun,
		Command:  cmd.ID,
		Project:  cmd.Project,
		Worker:   w.ID(),
		Start:    start,
		Duration: time.Since(start),
		Attrs:    map[string]string{"engine": cmd.Type, "cores": fmt.Sprint(cores)},
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		span.Err = err.Error()
	}
	w.cfg.Obs.Trace.Record(span)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Terminated by the controller: nothing to report. Keep the
			// local checkpoint only when the whole worker is shutting down —
			// a deliberate per-command abort means the command is dead.
			if ctx.Err() == nil {
				w.dropLocalCheckpoint(cmd.ID)
			}
			return
		}
		w.met.commandsFailed.Inc()
		w.log.Warn("command failed", "command", cmd.ID, "engine", cmd.Type, "err", err)
		res.Error = err.Error()
		w.dropLocalCheckpoint(cmd.ID)
		w.sendResult(ctx, cmd.Origin, &res)
		return
	}
	w.met.commandsOK.Inc()
	w.dropLocalCheckpoint(cmd.ID)
	res.OK = true
	if sharedFS && w.cfg.SpoolDir != "" {
		if path, werr := w.spoolOutput(cmd.ID, output); werr == nil {
			res.OutputPath = path
		} else {
			res.Output = output
		}
	} else {
		res.Output = output
	}
	w.sendResult(ctx, cmd.Origin, &res)
	w.mu.Lock()
	w.completed++
	w.mu.Unlock()
}

// spoolOutput writes output to the shared filesystem and returns its path.
// The write is atomic: the server may read the path the moment the result
// message lands, so it must never observe a half-written file.
func (w *Worker) spoolOutput(cmdID string, output []byte) (string, error) {
	if err := os.MkdirAll(w.cfg.SpoolDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(w.cfg.SpoolDir, cmdID+".out")
	if err := atomicfile.WriteFile(path, output, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sendResult routes a result to the project server with the full
// degradation ladder: retried direct delivery to the origin, then retried
// anycast (any server in the overlay can accept and forward), and finally —
// for completed results — a disk spool redelivered after the next
// successful announcement. A finished command's CPU-hours are only lost if
// every rung fails AND the spool is disabled.
func (w *Worker) sendResult(ctx context.Context, origin string, res *wire.CommandResult) {
	payload, err := wire.Marshal(res)
	if err != nil {
		w.met.resultErrors.Inc()
		w.log.Error("encoding result failed", "command", res.CommandID, "err", err)
		return
	}
	if origin != "" {
		if _, err = w.request(ctx, "result", origin, wire.MsgResult, payload); err == nil {
			return
		}
		w.log.Warn("sending result to origin failed, trying anycast", "command", res.CommandID, "err", err)
	}
	if _, err = w.request(ctx, "result_anycast", "", wire.MsgResult, payload); err == nil {
		return
	}
	w.met.resultErrors.Inc()
	if res.Partial {
		// Checkpoints are advisory; the next one supersedes this one.
		w.log.Warn("dropping undeliverable checkpoint", "command", res.CommandID, "err", err)
		return
	}
	if w.cfg.ResultSpoolDir == "" {
		w.log.Error("result lost: no server reachable and spooling disabled", "command", res.CommandID, "err", err)
		return
	}
	if serr := w.spoolResult(res.CommandID, payload); serr != nil {
		w.log.Error("spooling undeliverable result failed", "command", res.CommandID, "err", serr)
		return
	}
	w.met.resultsSpooled.Inc()
	w.log.Warn("spooled undeliverable result for redelivery", "command", res.CommandID, "err", err)
}

// sendChunk ships one streamed frame chunk to the project server: retried
// direct delivery to the origin, then retried anycast. There is no disk
// rung — chunks are an optimization overlay on the batch path, and the
// final result blob carries every frame, so a dropped chunk costs analysis
// latency, never data.
func (w *Worker) sendChunk(ctx context.Context, origin string, chunk *wire.FrameChunk) {
	payload, err := wire.Marshal(chunk)
	if err != nil {
		w.met.streamErrors.Inc()
		w.log.Error("encoding frame chunk failed", "command", chunk.CommandID, "err", err)
		return
	}
	delivered := false
	if origin != "" {
		_, err = w.request(ctx, "framechunk", origin, wire.MsgFrameChunk, payload)
		delivered = err == nil
	}
	if !delivered {
		_, err = w.request(ctx, "framechunk_anycast", "", wire.MsgFrameChunk, payload)
		delivered = err == nil
	}
	if !delivered {
		w.met.streamErrors.Inc()
		w.log.Warn("dropping undeliverable frame chunk",
			"command", chunk.CommandID, "seq", chunk.Seq, "err", err)
		return
	}
	w.met.streamChunks.Inc()
	w.met.streamFrames.Add(uint64(len(chunk.Frames)))
}

// checkpointPath maps a command ID to its local checkpoint file.
func (w *Worker) checkpointPath(cmdID string) string {
	name := strings.ReplaceAll(cmdID, string(filepath.Separator), "_")
	return filepath.Join(w.cfg.CheckpointDir, name+".ckpt")
}

// saveLocalCheckpoint persists an engine checkpoint atomically; failures
// are logged and otherwise ignored — the server-side checkpoint path still
// covers the command.
func (w *Worker) saveLocalCheckpoint(cmdID string, ck []byte) {
	if w.cfg.CheckpointDir == "" || len(ck) == 0 {
		return
	}
	if err := os.MkdirAll(w.cfg.CheckpointDir, 0o755); err != nil {
		w.log.Warn("creating checkpoint dir failed", "err", err)
		return
	}
	if err := atomicfile.WriteFile(w.checkpointPath(cmdID), ck, 0o644); err != nil {
		w.log.Warn("persisting local checkpoint failed", "command", cmdID, "err", err)
	}
}

// loadLocalCheckpoint returns the persisted checkpoint for a command, or
// nil if there is none.
func (w *Worker) loadLocalCheckpoint(cmdID string) []byte {
	if w.cfg.CheckpointDir == "" {
		return nil
	}
	b, err := os.ReadFile(w.checkpointPath(cmdID))
	if err != nil {
		return nil
	}
	return b
}

// dropLocalCheckpoint removes a settled command's checkpoint file.
func (w *Worker) dropLocalCheckpoint(cmdID string) {
	if w.cfg.CheckpointDir == "" {
		return
	}
	if err := os.Remove(w.checkpointPath(cmdID)); err != nil && !os.IsNotExist(err) {
		w.log.Warn("removing local checkpoint failed", "command", cmdID, "err", err)
	}
}

// spoolResult persists one wire-encoded CommandResult for later redelivery.
func (w *Worker) spoolResult(cmdID string, payload []byte) error {
	if err := os.MkdirAll(w.cfg.ResultSpoolDir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(cmdID, string(filepath.Separator), "_")
	path := filepath.Join(w.cfg.ResultSpoolDir, name+".result")
	return atomicfile.WriteFile(path, payload, 0o644)
}
