// Package worker implements the Copernicus worker client of §2.3: it
// announces its resources (platform, cores, installed executables) to its
// nearest server, receives a workload, executes the commands through the
// engine plugins, streams heartbeats, reports partial checkpoints for
// failover, and returns results to each command's project server through
// the overlay.
package worker

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/wire"
)

// Config tunes a worker.
type Config struct {
	// Platform is the announced platform plugin name ("smp" by default).
	Platform string
	// Cores is the announced core count (default 1).
	Cores int
	// PollInterval is the idle re-announcement period (default 500 ms —
	// batch systems would use seconds; tests use milliseconds).
	PollInterval time.Duration
	// RequestTimeout bounds each overlay request (default 10 s).
	RequestTimeout time.Duration
	// FSToken and SpoolDir enable the shared-filesystem result path: when
	// the assigning server advertises the same token, results are written
	// under SpoolDir and passed by reference.
	FSToken  string
	SpoolDir string
	// Obs carries the worker's metrics registry, span tracer and logger.
	// nil means a fresh silent bundle; pass a shared one to see worker run
	// spans alongside the server's lifecycle spans.
	Obs *obs.Obs
}

func (c *Config) fill() {
	if c.Platform == "" {
		c.Platform = "smp"
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
}

// Worker executes commands against a home server.
type Worker struct {
	node    *overlay.Node
	home    string // node ID of the nearest server
	engines map[string]engines.Engine
	cfg     Config
	log     *obs.Logger
	met     workerMetrics

	mu      sync.Mutex
	running map[string]context.CancelFunc

	// Completed counts finished commands (for tests and monitoring).
	completed int
}

// workerMetrics holds this worker's registry handles. Per-engine command
// wall-time histograms are resolved lazily (get-or-create) in runCommand.
type workerMetrics struct {
	announces       *obs.Counter
	announceErrors  *obs.Counter
	commandsOK      *obs.Counter
	commandsFailed  *obs.Counter
	resultErrors    *obs.Counter
	checkpointBytes *obs.Histogram
}

func newWorkerMetrics(o *obs.Obs, workerID string) workerMetrics {
	l := obs.L("worker", workerID)
	return workerMetrics{
		announces: o.Metrics.Counter("copernicus_worker_announces_total",
			"Resource announcements sent to the home server.", l),
		announceErrors: o.Metrics.Counter("copernicus_worker_announce_errors_total",
			"Announcements that failed at the overlay layer.", l),
		commandsOK: o.Metrics.Counter("copernicus_worker_commands_ok_total",
			"Commands this worker completed successfully.", l),
		commandsFailed: o.Metrics.Counter("copernicus_worker_commands_failed_total",
			"Commands whose engine run returned an error.", l),
		resultErrors: o.Metrics.Counter("copernicus_worker_result_errors_total",
			"Result uploads that failed to reach the project server.", l),
		checkpointBytes: o.Metrics.Histogram("copernicus_worker_checkpoint_bytes",
			"Size of partial-result checkpoints reported for failover.",
			obs.SizeBuckets(), l),
	}
}

// New creates a worker bound to an overlay node that is already connected
// to its home server.
func New(node *overlay.Node, home string, engs []engines.Engine, cfg Config) (*Worker, error) {
	cfg.fill()
	if home == "" {
		return nil, fmt.Errorf("worker: home server ID required")
	}
	if len(engs) == 0 {
		return nil, fmt.Errorf("worker: no engines installed")
	}
	w := &Worker{
		node:    node,
		home:    home,
		engines: make(map[string]engines.Engine, len(engs)),
		cfg:     cfg,
		running: make(map[string]context.CancelFunc),
	}
	for _, e := range engs {
		if _, dup := w.engines[e.Name()]; dup {
			return nil, fmt.Errorf("worker: duplicate engine %q", e.Name())
		}
		w.engines[e.Name()] = e
	}
	w.log = cfg.Obs.Log.Named("worker").With("worker", node.ID())
	w.met = newWorkerMetrics(cfg.Obs, node.ID())
	return w, nil
}

// ID returns the worker's overlay node ID.
func (w *Worker) ID() string { return w.node.ID() }

// Completed returns the number of commands this worker has finished.
func (w *Worker) Completed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.completed
}

// info builds the announcement payload.
func (w *Worker) info() wire.WorkerInfo {
	names := make([]string, 0, len(w.engines))
	for n := range w.engines {
		names = append(names, n)
	}
	return wire.WorkerInfo{
		ID:          w.node.ID(),
		Platform:    w.cfg.Platform,
		Cores:       w.cfg.Cores,
		Executables: names,
		FSToken:     w.cfg.FSToken,
	}
}

// Run announces, executes and reports until ctx is cancelled. It returns
// ctx.Err() on cancellation, or the first fatal protocol error.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		wl, err := w.announce()
		if err != nil {
			w.met.announceErrors.Inc()
			w.log.Warn("announce failed", "err", err)
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		if len(wl.Commands) == 0 {
			if !sleepCtx(ctx, w.cfg.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		w.execute(ctx, wl)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// announce sends the resource announcement and decodes the workload.
func (w *Worker) announce() (*wire.Workload, error) {
	w.met.announces.Inc()
	payload, err := wire.Marshal(&wire.AnnounceRequest{Info: w.info()})
	if err != nil {
		return nil, err
	}
	reply, err := w.node.Request(w.home, wire.MsgAnnounce, payload, w.cfg.RequestTimeout)
	if err != nil {
		return nil, err
	}
	var wl wire.Workload
	if err := wire.Unmarshal(reply, &wl); err != nil {
		return nil, err
	}
	return &wl, nil
}

// execute runs a workload: one goroutine per command plus a heartbeat
// ticker, blocking until every command has completed or aborted.
func (w *Worker) execute(ctx context.Context, wl *wire.Workload) {
	var wg sync.WaitGroup
	ids := make([]string, 0, len(wl.Commands))
	for _, cmd := range wl.Commands {
		ids = append(ids, cmd.ID)
	}

	hbStop := make(chan struct{})
	hbInterval := time.Duration(wl.HeartbeatSeconds * float64(time.Second))
	if hbInterval <= 0 {
		hbInterval = 120 * time.Second
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx, hbStop, hbInterval, ids)
	}()

	var cmdWg sync.WaitGroup
	for _, cmd := range wl.Commands {
		cmdWg.Add(1)
		go func(cmd wire.CommandSpec) {
			defer cmdWg.Done()
			w.runCommand(ctx, cmd, wl.Cores[cmd.ID], wl.SharedFS)
		}(cmd)
	}
	cmdWg.Wait()
	close(hbStop)
	wg.Wait()
}

// heartbeatLoop reports liveness and processes abort instructions.
func (w *Worker) heartbeatLoop(ctx context.Context, stop <-chan struct{}, interval time.Duration, ids []string) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		w.mu.Lock()
		live := make([]string, 0, len(ids))
		for _, id := range ids {
			if _, ok := w.running[id]; ok {
				live = append(live, id)
			}
		}
		w.mu.Unlock()
		payload, err := wire.Marshal(&wire.Heartbeat{WorkerID: w.ID(), CommandIDs: live})
		if err != nil {
			continue
		}
		reply, err := w.node.Request(w.home, wire.MsgHeartbeat, payload, w.cfg.RequestTimeout)
		if err != nil {
			w.log.Warn("heartbeat failed", "err", err)
			continue
		}
		var ack wire.HeartbeatAck
		if err := wire.Unmarshal(reply, &ack); err != nil {
			continue
		}
		for _, id := range ack.AbortCommandIDs {
			w.mu.Lock()
			cancel := w.running[id]
			w.mu.Unlock()
			if cancel != nil {
				w.log.Info("aborting terminated command", "command", id)
				cancel()
			}
		}
	}
}

// runCommand executes one command and reports its result to the project
// server.
func (w *Worker) runCommand(ctx context.Context, cmd wire.CommandSpec, cores int, sharedFS bool) {
	if cores <= 0 {
		cores = cmd.MinCores
	}
	eng := w.engines[cmd.Type]
	res := wire.CommandResult{
		CommandID: cmd.ID,
		Project:   cmd.Project,
		WorkerID:  w.ID(),
		CoresUsed: cores,
	}
	if eng == nil {
		res.Error = fmt.Sprintf("worker: no engine for %q", cmd.Type)
		w.sendResult(cmd.Origin, &res)
		return
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.running[cmd.ID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.running, cmd.ID)
		w.mu.Unlock()
	}()

	progress := func(checkpoint []byte) {
		partial := wire.CommandResult{
			CommandID:  cmd.ID,
			Project:    cmd.Project,
			WorkerID:   w.ID(),
			OK:         true,
			Partial:    true,
			Checkpoint: checkpoint,
		}
		w.met.checkpointBytes.Observe(float64(len(checkpoint)))
		w.sendResult(cmd.Origin, &partial)
	}

	start := time.Now()
	output, err := eng.Run(runCtx, cmd, cores, progress)
	res.WallSeconds = time.Since(start).Seconds()
	w.cfg.Obs.Metrics.Histogram("copernicus_worker_command_seconds",
		"Wall time of engine runs, by engine type.",
		obs.DefBuckets(), obs.L("worker", w.ID(), "engine", cmd.Type)).
		Observe(res.WallSeconds)
	span := obs.Span{
		Stage:    obs.StageRun,
		Command:  cmd.ID,
		Project:  cmd.Project,
		Worker:   w.ID(),
		Start:    start,
		Duration: time.Since(start),
		Attrs:    map[string]string{"engine": cmd.Type, "cores": fmt.Sprint(cores)},
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		span.Err = err.Error()
	}
	w.cfg.Obs.Trace.Record(span)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Terminated by the controller: nothing to report.
			return
		}
		w.met.commandsFailed.Inc()
		w.log.Warn("command failed", "command", cmd.ID, "engine", cmd.Type, "err", err)
		res.Error = err.Error()
		w.sendResult(cmd.Origin, &res)
		return
	}
	w.met.commandsOK.Inc()
	res.OK = true
	if sharedFS && w.cfg.SpoolDir != "" {
		if path, werr := w.spoolOutput(cmd.ID, output); werr == nil {
			res.OutputPath = path
		} else {
			res.Output = output
		}
	} else {
		res.Output = output
	}
	w.sendResult(cmd.Origin, &res)
	w.mu.Lock()
	w.completed++
	w.mu.Unlock()
}

// spoolOutput writes output to the shared filesystem and returns its path.
func (w *Worker) spoolOutput(cmdID string, output []byte) (string, error) {
	if err := os.MkdirAll(w.cfg.SpoolDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(w.cfg.SpoolDir, cmdID+".out")
	if err := os.WriteFile(path, output, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sendResult routes a result to the project server, falling back to anycast
// if the origin is unknown.
func (w *Worker) sendResult(origin string, res *wire.CommandResult) {
	payload, err := wire.Marshal(res)
	if err != nil {
		w.met.resultErrors.Inc()
		w.log.Error("encoding result failed", "command", res.CommandID, "err", err)
		return
	}
	if _, err := w.node.Request(origin, wire.MsgResult, payload, w.cfg.RequestTimeout); err != nil {
		w.met.resultErrors.Inc()
		w.log.Warn("sending result failed", "command", res.CommandID, "err", err)
	}
}
