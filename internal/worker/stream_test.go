package worker

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"copernicus/internal/engines"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/wire"
)

// streamEngine is a Streamer fake: it emits nChunks sequential frame chunks
// (2 frames each, starting at frame 1) and then returns a normal output.
type streamEngine struct {
	fakeEngine
	nChunks int
}

func (e *streamEngine) RunStream(ctx context.Context, spec wire.CommandSpec, cores int,
	progress func([]byte), emit func(*wire.FrameChunk)) ([]byte, error) {
	for i := 0; i < e.nChunks; i++ {
		emit(&wire.FrameChunk{
			Project: spec.Project, CommandID: spec.ID,
			Seq: i, FirstFrame: 1 + 2*i,
			Times:  []float64{float64(1 + 2*i), float64(2 + 2*i)},
			Frames: [][]float64{{1, 0}, {2, 0}},
			RMSD:   []float64{1, 1},
			Final:  i == e.nChunks-1,
		})
	}
	return e.fakeEngine.Run(ctx, spec, cores, progress)
}

// TestWorkerStreamsChunksToServer: a streaming engine's chunks ship to the
// project server as produced. The delivery counters only advance after the
// server acknowledges, so they prove end-to-end arrival, not just emission.
func TestWorkerStreamsChunksToServer(t *testing.T) {
	o := obs.New()
	eng := &streamEngine{fakeEngine: fakeEngine{name: "sim"}, nChunks: 3}
	ctrl := &recController{submit: []wire.CommandSpec{mkCmd("c1", "sim")}, finishOn: 1}
	r := newRig(t, ctrl, []engines.Engine{eng}, Config{Obs: o})
	r.submitProject(t)
	if _, err := r.srv.WaitProject(ctxTimeout(t, 10*time.Second), "p"); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, o, "copernicus_worker_stream_chunks_total"); got != 3 {
		t.Errorf("copernicus_worker_stream_chunks_total = %g, want 3", got)
	}
	if got := metricValue(t, o, "copernicus_worker_stream_frames_total"); got != 6 {
		t.Errorf("copernicus_worker_stream_frames_total = %g, want 6", got)
	}
	if got := metricValue(t, o, "copernicus_worker_stream_chunk_errors_total"); got != 0 {
		t.Errorf("copernicus_worker_stream_chunk_errors_total = %g, want 0", got)
	}
	// The final result still carries the command to completion as usual.
	res, _ := ctrl.snapshot()
	if len(res) != 1 || !res[0].OK {
		t.Fatalf("results = %+v", res)
	}
}

// resumeEngine distinguishes a fresh start (checkpoints, then blocks until
// cancelled — a worker dying mid-command) from a checkpointed dispatch
// (finishes immediately, recording what checkpoint it was given).
type resumeEngine struct {
	name string
	mu   sync.Mutex
	saw  []byte // checkpoint received on the resumed run
}

func (e *resumeEngine) Name() string { return e.name }

func (e *resumeEngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	if len(spec.Checkpoint) == 0 {
		if progress != nil {
			progress([]byte("half"))
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	e.mu.Lock()
	e.saw = append([]byte(nil), spec.Checkpoint...)
	e.mu.Unlock()
	return []byte("resumed"), nil
}

// TestWorkerLocalCheckpointResume is the durability satellite: checkpoints
// persist to CheckpointDir on every progress call, survive a worker-process
// death, and are adopted when the command is re-dispatched without a server
// checkpoint — while a deliberate per-command abort discards them.
func TestWorkerLocalCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(21), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var results []*wire.CommandResult
	sNode.Handle(wire.MsgResult, func(from string, payload []byte) ([]byte, error) {
		var res wire.CommandResult
		if err := wire.Unmarshal(payload, &res); err != nil {
			return nil, err
		}
		mu.Lock()
		results = append(results, &res)
		mu.Unlock()
		return []byte("ok"), nil
	})
	t.Cleanup(func() { sNode.Close() })

	eng := &resumeEngine{name: "sim"}
	cmd := mkCmd("c1", "sim")
	cmd.Project = "p"
	cmd.Origin = sNode.ID()

	newWorker := func(seed uint64, o *obs.Obs) *Worker {
		wNode := overlay.NewNode(overlay.NewIdentityFromSeed(seed), overlay.NewTrustStore(), net.Transport())
		if _, err := wNode.ConnectPeer("srv"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { wNode.Close() })
		cfg := Config{CheckpointDir: dir}
		if o != nil {
			cfg.Obs = o
		}
		wk, err := New(wNode, sNode.ID(), []engines.Engine{eng}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return wk
	}

	// Phase 1: the command checkpoints, then the whole worker process dies
	// (context cancelled) before it finishes.
	wk1 := newWorker(22, nil)
	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { wk1.runCommand(ctx1, cmd, 1, false); close(done) }()
	waitCond(t, 5*time.Second, func() bool { return len(wk1.loadLocalCheckpoint(cmd.ID)) > 0 })
	cancel1()
	<-done
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) != 1 {
		t.Fatalf("checkpoint files after worker death = %v, want 1", files)
	}

	// Phase 2: a restarted worker gets the command re-dispatched without a
	// server checkpoint and must resume from the local one.
	o := obs.New()
	wk2 := newWorker(23, o)
	wk2.runCommand(context.Background(), cmd, 1, false)
	eng.mu.Lock()
	saw := string(eng.saw)
	eng.mu.Unlock()
	if saw != "half" {
		t.Fatalf("resumed run saw checkpoint %q, want \"half\"", saw)
	}
	if got := metricValue(t, o, "copernicus_worker_checkpoint_resumes_total"); got != 1 {
		t.Errorf("copernicus_worker_checkpoint_resumes_total = %g, want 1", got)
	}
	// Success settles the command: the local checkpoint must be gone.
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) != 0 {
		t.Errorf("checkpoint files after success = %v, want none", files)
	}
	mu.Lock()
	var final *wire.CommandResult
	for _, res := range results {
		if !res.Partial {
			final = res
		}
	}
	mu.Unlock()
	if final == nil || !final.OK || string(final.Output) != "resumed" {
		t.Fatalf("final result = %+v", final)
	}

	// Phase 3: a per-command abort (worker alive, command terminated) must
	// discard the checkpoint — the command is dead, not interrupted.
	cmd2 := mkCmd("c2", "sim")
	cmd2.Project = "p"
	cmd2.Origin = sNode.ID()
	done2 := make(chan struct{})
	go func() { wk2.runCommand(context.Background(), cmd2, 1, false); close(done2) }()
	waitCond(t, 5*time.Second, func() bool { return len(wk2.loadLocalCheckpoint(cmd2.ID)) > 0 })
	wk2.mu.Lock()
	abort := wk2.running[cmd2.ID]
	wk2.mu.Unlock()
	abort()
	<-done2
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) != 0 {
		t.Errorf("checkpoint files after per-command abort = %v, want none", files)
	}
}
