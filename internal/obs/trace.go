package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Command lifecycle stages, in causal order. A command that completes
// successfully leaves one span per stage in the tracer (run spans are
// recorded by the worker, the rest by the project server — an in-process
// Fabric shares one tracer, so all six appear together).
const (
	StageSubmit     = "submit"     // controller handed the command to the queue
	StageQueueWait  = "queue_wait" // time spent queued (recorded at dispatch)
	StageDispatch   = "dispatch"   // matched to a worker's announcement
	StageRun        = "run"        // engine execution on the worker
	StageResult     = "result"     // result uploaded to the project server
	StageController = "controller" // controller reaction (MSM rebuild / respawn)
)

// StageOrder maps lifecycle stages to their causal position, for sorting
// and completeness checks.
var StageOrder = map[string]int{
	StageSubmit:     0,
	StageQueueWait:  1,
	StageDispatch:   2,
	StageRun:        3,
	StageResult:     4,
	StageController: 5,
}

// Span is one recorded lifecycle (or auxiliary) event. Start is when the
// spanned work began; Duration is zero for instantaneous events.
type Span struct {
	Stage    string            `json:"stage"`
	Command  string            `json:"command,omitempty"`
	Project  string            `json:"project,omitempty"`
	Worker   string            `json:"worker,omitempty"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Err      string            `json:"error,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded ring buffer: the newest Capacity
// spans are retained, older ones are evicted in FIFO order. A nil *Tracer
// drops all records.
type Tracer struct {
	capn  int
	mu    sync.Mutex
	buf   []Span
	next  int    // ring write position
	total uint64 // spans ever recorded
}

// DefaultTraceCapacity bounds the ring buffer when no capacity is given.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capn: capacity, buf: make([]Span, 0, capacity)}
}

// Capacity returns the ring buffer size.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capn
}

// Record stores a span, stamping Start with the current time if unset.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Start.IsZero() {
		s.Start = time.Now()
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		out = append(out, t.buf...)
		return out
	}
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns the number of spans ever recorded (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// StageSummary is the per-stage latency digest served on /debug/trace.
type StageSummary struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P90ms float64 `json:"p90_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Summarize computes latency quantiles per stage over the retained spans.
func Summarize(spans []Span) map[string]StageSummary {
	byStage := make(map[string][]float64)
	for _, s := range spans {
		byStage[s.Stage] = append(byStage[s.Stage], float64(s.Duration)/float64(time.Millisecond))
	}
	out := make(map[string]StageSummary, len(byStage))
	for stage, ds := range byStage {
		sort.Float64s(ds)
		q := func(p float64) float64 {
			i := int(p * float64(len(ds)-1))
			return ds[i]
		}
		out[stage] = StageSummary{
			Count: len(ds),
			P50ms: q(0.50),
			P90ms: q(0.90),
			P99ms: q(0.99),
			MaxMs: ds[len(ds)-1],
		}
	}
	return out
}

// traceDump is the JSON shape of /debug/trace.
type traceDump struct {
	Capacity int                     `json:"capacity"`
	Recorded uint64                  `json:"recorded"`
	Retained int                     `json:"retained"`
	Stages   map[string]StageSummary `json:"stages"`
	Spans    []Span                  `json:"spans"`
}

// Handler serves the retained spans and per-stage quantiles as JSON.
// Optional query parameters filter the span list (but not the summaries):
// ?command=ID, ?project=NAME, ?stage=NAME.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Spans()
		dump := traceDump{
			Capacity: t.Capacity(),
			Recorded: t.Total(),
			Retained: len(spans),
			Stages:   Summarize(spans),
		}
		q := req.URL.Query()
		cmd, project, stage := q.Get("command"), q.Get("project"), q.Get("stage")
		dump.Spans = spans[:0]
		for _, s := range spans {
			if (cmd == "" || s.Command == cmd) &&
				(project == "" || s.Project == project) &&
				(stage == "" || s.Stage == stage) {
				dump.Spans = append(dump.Spans, s)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(&dump)
	})
}
