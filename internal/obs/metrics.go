// Package obs is the observability substrate of the reproduction: a
// dependency-free metrics registry with Prometheus text exposition, a
// leveled key=value structured logger, and a lightweight span tracer that
// follows each command through its full lifecycle (submit → queue wait →
// dispatch → worker run → result upload → controller reaction).
//
// It plays the role of the paper's §3 monitoring interface, extended with
// the per-stage timing data that ensemble frameworks need to tune their
// schedulers: every control-plane package (server, worker, overlay, queue,
// controller) records into one shared Obs bundle, and the server's
// MonitorHandler serves the results on /metrics, /debug/trace and
// /debug/pprof.
//
// All metric primitives are safe for concurrent use and safe to call on a
// nil receiver (a nil Counter/Gauge/Histogram silently drops the update),
// so instrumentation can be threaded through hot paths unconditionally.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a metric's label set. The zero value (nil) means no labels.
type Labels map[string]string

// L builds a Labels set from alternating key/value pairs: L("worker", id).
// An odd trailing key is dropped.
func L(kv ...string) Labels {
	ls := make(Labels, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		ls[kv[i]] = kv[i+1]
	}
	return ls
}

// render serialises labels in sorted-key order as {k="v",...}; empty labels
// render as "". The result doubles as the series key and the exposition
// suffix.
func (ls Labels) render(extra ...string) string {
	if len(ls) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(ls[k]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if len(keys) > 0 || i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing metric. Nil receivers no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. Nil receivers no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram observes a value distribution into fixed cumulative buckets
// (Prometheus semantics: bucket le="x" counts observations ≤ x). Nil
// receivers no-op.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// DefBuckets are general-purpose latency buckets in seconds (5 ms – 10 s).
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// SizeBuckets are byte-size buckets (256 B – 16 MiB).
func SizeBuckets() []float64 {
	return []float64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, so v ≤ bounds[i]
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metric is one registered series.
type metric struct {
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups the series of one metric name.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	buckets []float64
	series  map[string]*metric // rendered labels → series
}

// Registry holds metric families and serves them in Prometheus text format.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating if needed) the family and the series for labels.
// It panics if the name was previously registered with a different type —
// a programming error, mirroring the Prometheus client.
func (r *Registry) lookup(name, help, typ string, labels Labels, buckets []float64) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*metric)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	key := labels.render()
	m := f.series[key]
	if m == nil {
		m = &metric{}
		switch typ {
		case "counter":
			m.counter = &Counter{}
		case "gauge":
			m.gauge = &Gauge{}
		case "histogram":
			m.hist = newHistogram(f.buckets)
		}
		f.series[key] = m
	}
	return m
}

// Counter returns the counter series name{labels}, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, nil).counter
}

// Gauge returns the gauge series name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels, nil).gauge
}

// GaugeFunc registers a callback-backed gauge, sampled at exposition time.
// The callback must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, "gauge", labels, nil).gaugeFn = fn
}

// Histogram returns the histogram series name{labels} with the given
// bucket upper bounds (nil selects DefBuckets). Buckets are fixed by the
// first registration of the name.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets()
	}
	return r.lookup(name, help, "histogram", labels, buckets).hist
}

// formatFloat renders a sample value the way Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteText writes every family in Prometheus text exposition format
// (families and series in sorted order, so output is deterministic).
func (r *Registry) WriteText(w io.Writer) {
	// Snapshot the family and series maps under the lock — lookup keeps
	// inserting series concurrently — then format outside it; the sample
	// values themselves are atomics, safe to read unlocked.
	type famSnap struct {
		f    *family
		keys []string
		ms   []*metric
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]famSnap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		sn := famSnap{f: f, keys: make([]string, 0, len(f.series))}
		for k := range f.series {
			sn.keys = append(sn.keys, k)
		}
		sort.Strings(sn.keys)
		sn.ms = make([]*metric, len(sn.keys))
		for i, k := range sn.keys {
			sn.ms[i] = f.series[k]
		}
		fams = append(fams, sn)
	}
	r.mu.Unlock()

	for _, sn := range fams {
		f := sn.f
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, k := range sn.keys {
			m := sn.ms[i]
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", f.name, k, m.counter.Value())
			case "gauge":
				v := m.gauge.Value()
				if m.gaugeFn != nil {
					v = m.gaugeFn()
				}
				fmt.Fprintf(w, "%s%s %s\n", f.name, k, formatFloat(v))
			case "histogram":
				h := m.hist
				// Re-render the base labels with le appended per bucket.
				base := parseSeriesKey(k)
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, base.render("le", formatFloat(bound)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, base.render("le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, k, formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, k, h.Count())
			}
		}
	}
}

// parseSeriesKey inverts Labels.render (keys never contain quotes or '=').
func parseSeriesKey(key string) Labels {
	if key == "" {
		return nil
	}
	ls := make(Labels)
	body := strings.TrimSuffix(strings.TrimPrefix(key, "{"), "}")
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			break
		}
		k := body[:eq]
		rest := body[eq+1:]
		v, err := strconv.QuotedPrefix(rest)
		if err != nil {
			break
		}
		uq, _ := strconv.Unquote(v)
		ls[k] = uq
		body = strings.TrimPrefix(rest[len(v):], ",")
	}
	return ls
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WriteText(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write([]byte(b.String()))
	})
}
