package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObsHandlerEndpoints(t *testing.T) {
	o := New()
	o.Metrics.Counter("copernicus_test_total", "", nil).Inc()
	o.Trace.Record(Span{Stage: StageRun, Command: "c1"})
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}

	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}
	resp := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if resp := get("/debug/trace"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/trace = %d", resp.StatusCode)
	}
	if resp := get("/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}

	// Writes are rejected on the guarded endpoints.
	for _, path := range []string{"/metrics", "/debug/trace"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("POST %s Allow = %q", path, allow)
		}
	}
}

func TestNamedSharesMetricsAndTrace(t *testing.T) {
	o := New()
	child := o.Named("server")
	if child.Metrics != o.Metrics || child.Trace != o.Trace {
		t.Fatal("Named must share the registry and tracer")
	}
}

func TestNilObsNamed(t *testing.T) {
	var o *Obs
	if o.Named("x") != nil {
		t.Fatal("nil Obs should stay nil through Named")
	}
}
