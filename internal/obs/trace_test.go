package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestTracerEvictionOrder fills the ring past capacity and checks that the
// oldest spans are evicted first and the survivors come back oldest-first.
func TestTracerEvictionOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Span{Stage: StageRun, Command: fmt.Sprintf("c%d", i)})
	}
	if got := tr.Total(); got != 7 {
		t.Fatalf("total = %d, want 7", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		want := fmt.Sprintf("c%d", i+3) // c0..c2 evicted
		if s.Command != want {
			t.Errorf("span %d = %q, want %q", i, s.Command, want)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Stage: StageSubmit, Command: "a"})
	tr.Record(Span{Stage: StageRun, Command: "b"})
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Command != "a" || spans[1].Command != "b" {
		t.Fatalf("unexpected spans: %+v", spans)
	}
	if spans[0].Start.IsZero() {
		t.Error("Record should stamp a zero Start")
	}
}

func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Stage: StageRun})
	if tr.Spans() != nil || tr.Total() != 0 || tr.Capacity() != 0 {
		t.Fatal("nil tracer should read as empty")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Span{Stage: StageRun, Command: fmt.Sprintf("g%d-%d", g, i)})
				_ = tr.Spans()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Total(); got != 4000 {
		t.Fatalf("total = %d, want 4000", got)
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	var spans []Span
	for i := 1; i <= 100; i++ {
		spans = append(spans, Span{Stage: StageRun, Duration: time.Duration(i) * time.Millisecond})
	}
	spans = append(spans, Span{Stage: StageSubmit, Duration: 5 * time.Millisecond})
	sum := Summarize(spans)
	run := sum[StageRun]
	if run.Count != 100 {
		t.Fatalf("run count = %d, want 100", run.Count)
	}
	if run.P50ms < 49 || run.P50ms > 51 {
		t.Errorf("p50 = %v, want ≈50", run.P50ms)
	}
	if run.MaxMs != 100 {
		t.Errorf("max = %v, want 100", run.MaxMs)
	}
	if sum[StageSubmit].Count != 1 || sum[StageSubmit].MaxMs != 5 {
		t.Errorf("submit summary wrong: %+v", sum[StageSubmit])
	}
}

func TestTraceHandlerFilters(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Stage: StageSubmit, Command: "c1", Project: "p"})
	tr.Record(Span{Stage: StageRun, Command: "c1", Project: "p"})
	tr.Record(Span{Stage: StageRun, Command: "c2", Project: "p"})

	get := func(url string) traceDump {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("Cache-Control = %q, want no-store", cc)
		}
		var dump traceDump
		if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
		return dump
	}

	all := get("/debug/trace")
	if all.Retained != 3 || len(all.Spans) != 3 || all.Recorded != 3 {
		t.Fatalf("unfiltered dump wrong: %+v", all)
	}
	if all.Stages[StageRun].Count != 2 {
		t.Errorf("run stage count = %d, want 2", all.Stages[StageRun].Count)
	}
	byCmd := get("/debug/trace?command=c1")
	if len(byCmd.Spans) != 2 {
		t.Errorf("command filter kept %d spans, want 2", len(byCmd.Spans))
	}
	byStage := get("/debug/trace?stage=run&command=c2")
	if len(byStage.Spans) != 1 || byStage.Spans[0].Command != "c2" {
		t.Errorf("combined filter wrong: %+v", byStage.Spans)
	}
	// Summaries are computed over everything, not the filtered subset.
	if byStage.Stages[StageSubmit].Count != 1 {
		t.Errorf("summaries should ignore filters: %+v", byStage.Stages)
	}
}

func TestStageOrderComplete(t *testing.T) {
	stages := []string{StageSubmit, StageQueueWait, StageDispatch, StageRun, StageResult, StageController}
	for i, s := range stages {
		if StageOrder[s] != i {
			t.Errorf("StageOrder[%s] = %d, want %d", s, StageOrder[s], i)
		}
	}
}
