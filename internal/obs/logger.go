package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, in increasing order. LevelOff disables all output.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel converts a level name ("debug", "info", "warn", "error",
// "off") to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "silent", "none", "":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// sink is the shared output/level state behind a Logger and its children.
type sink struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	now func() time.Time // overridable for deterministic tests
}

// Logger emits leveled key=value lines tagged with a component name:
//
//	ts=2026-08-05T10:11:12.000Z level=info component=server msg="command requeued" cmd=c1 retry=1
//
// Derive component- or field-bound children with Named and With; all
// children share the parent's writer and level. A nil *Logger is safe to
// call and discards everything.
type Logger struct {
	s         *sink
	component string
	bound     string // pre-rendered " k=v" pairs from With
}

// NewLogger writes lines at or above min to w. A nil w discards output.
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		w = io.Discard
	}
	s := &sink{w: w, now: time.Now}
	s.min.Store(int32(min))
	return &Logger{s: s}
}

// NewStderrLogger is shorthand for NewLogger(os.Stderr, min).
func NewStderrLogger(min Level) *Logger { return NewLogger(os.Stderr, min) }

// NopLogger discards everything.
func NopLogger() *Logger { return NewLogger(io.Discard, LevelOff) }

// Named returns a child logger tagged with the component name.
func (l *Logger) Named(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s, component: component, bound: l.bound}
}

// With returns a child logger with alternating key/value pairs appended to
// every line it emits.
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString(l.bound)
	appendKVs(&b, kvs)
	return &Logger{s: l.s, component: l.component, bound: b.String()}
}

// SetLevel changes the minimum emitted level for this logger and everything
// sharing its sink.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.s.min.Store(int32(min))
}

// Enabled reports whether lines at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.s.min.Load()) && level < LevelOff
}

// Log emits one line at the given level with alternating key/value pairs.
func (l *Logger) Log(level Level, msg string, kvs ...any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(96 + len(msg))
	b.WriteString("ts=")
	b.WriteString(l.s.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	if l.component != "" {
		b.WriteString(" component=")
		writeValue(&b, l.component)
	}
	b.WriteString(" msg=")
	writeValue(&b, msg)
	b.WriteString(l.bound)
	appendKVs(&b, kvs)
	b.WriteByte('\n')
	l.s.mu.Lock()
	_, _ = io.WriteString(l.s.w, b.String())
	l.s.mu.Unlock()
}

// Debug emits a debug line.
func (l *Logger) Debug(msg string, kvs ...any) { l.Log(LevelDebug, msg, kvs...) }

// Info emits an info line.
func (l *Logger) Info(msg string, kvs ...any) { l.Log(LevelInfo, msg, kvs...) }

// Warn emits a warning line.
func (l *Logger) Warn(msg string, kvs ...any) { l.Log(LevelWarn, msg, kvs...) }

// Error emits an error line.
func (l *Logger) Error(msg string, kvs ...any) { l.Log(LevelError, msg, kvs...) }

// Infof emits a printf-formatted info line — the migration shim for former
// Logf call sites that have no structure to preserve.
func (l *Logger) Infof(format string, args ...any) {
	if !l.Enabled(LevelInfo) {
		return
	}
	l.Log(LevelInfo, fmt.Sprintf(format, args...))
}

// appendKVs renders alternating key/value pairs; an odd trailing key is
// emitted with the value "(MISSING)".
func appendKVs(b *strings.Builder, kvs []any) {
	for i := 0; i < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		if i+1 < len(kvs) {
			writeValue(b, fmt.Sprint(kvs[i+1]))
		} else {
			b.WriteString("(MISSING)")
		}
	}
}

// writeValue quotes values that would break key=value parsing.
func writeValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(strconv.Quote(v))
		return
	}
	b.WriteString(v)
}
