package obs

import (
	"io"
	"net/http"
	"net/http/pprof"
)

// Obs bundles the three observability primitives every component records
// into. Components receive an *Obs through their Config; a nil Obs in a
// config is replaced with New() (metrics and traces recorded but unserved,
// logs discarded), so instrumentation is always safe to call.
type Obs struct {
	Metrics *Registry
	Trace   *Tracer
	Log     *Logger
}

// Options tunes NewWith.
type Options struct {
	// LogWriter receives log lines; nil discards them.
	LogWriter io.Writer
	// LogLevel is the minimum emitted level (LevelOff with a nil writer).
	LogLevel Level
	// TraceCapacity bounds the span ring buffer (DefaultTraceCapacity if 0).
	TraceCapacity int
}

// New returns a silent Obs: metrics and traces are recorded (and can be
// served later), log output is discarded.
func New() *Obs {
	return NewWith(Options{})
}

// NewWith returns an Obs configured by opts.
func NewWith(opts Options) *Obs {
	return &Obs{
		Metrics: NewRegistry(),
		Trace:   NewTracer(opts.TraceCapacity),
		Log:     NewLogger(opts.LogWriter, opts.LogLevel),
	}
}

// Named returns a shallow copy whose logger is tagged with the component
// name; metrics and traces are shared with the parent.
func (o *Obs) Named(component string) *Obs {
	if o == nil {
		return nil
	}
	return &Obs{Metrics: o.Metrics, Trace: o.Trace, Log: o.Log.Named(component)}
}

// Register mounts the observability endpoints on mux:
//
//	GET /metrics              Prometheus text exposition
//	GET /debug/trace          command-lifecycle spans + per-stage quantiles
//	GET /debug/pprof/...      runtime profiling (CPU, heap, goroutine, ...)
//
// All endpoints are read-only; guard them at the deployment layer if the
// address is reachable from untrusted networks.
func (o *Obs) Register(mux *http.ServeMux) {
	mux.Handle("/metrics", ReadOnly(o.Metrics.Handler()))
	mux.Handle("/debug/trace", ReadOnly(o.Trace.Handler()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns a standalone mux with the Register endpoints plus a
// /healthz liveness probe — what cpcserver and cpcworker serve on
// -metrics-addr.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	o.Register(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// ReadOnly rejects every method except GET and HEAD with 405 — the guard
// in front of every monitoring endpoint (they perform no writes).
func ReadOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}
