package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "test counter", nil)
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestNilPrimitivesNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil primitives should read as zero")
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("test_gauge", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation equal
// to a bound lands in that bound's bucket, one just above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 6, math.Inf(1)} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // (≤1)=2, (1,2]=2, (2,5]=1, (5,∞)=2
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if !math.IsInf(h.Sum(), 1) {
		t.Errorf("sum = %v, want +Inf", h.Sum())
	}
}

func TestHistogramUnsortedBucketsSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "", []float64{5, 1, 2}, nil)
	h.Observe(1.5)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("1.5 should land in the (1,2] bucket, counts=%v", []uint64{
			h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load(), h.counts[3].Load()})
	}
}

func TestRegistryReuseAndTypePanic(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", L("k", "v"))
	b := r.Counter("dup_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	if c := r.Counter("dup_total", "", L("k", "other")); c == a {
		t.Fatal("different labels should return a distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("dup_total", "", nil)
}

// TestWriteTextGolden pins the exact Prometheus text exposition output.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cmd_total", "Commands processed.", L("node", "s0")).Add(3)
	r.Counter("cmd_total", "Commands processed.", L("node", "s1")).Add(1)
	r.Gauge("depth", "Queue depth.", nil).Set(2)
	r.GaugeFunc("workers", "Announced workers.", nil, func() float64 { return 4 })
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1}, L("node", "s0"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	r.WriteText(&b)
	want := `# HELP cmd_total Commands processed.
# TYPE cmd_total counter
cmd_total{node="s0"} 3
cmd_total{node="s1"} 1
# HELP depth Queue depth.
# TYPE depth gauge
depth 2
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{node="s0",le="0.1"} 1
lat_seconds_bucket{node="s0",le="1"} 2
lat_seconds_bucket{node="s0",le="+Inf"} 3
lat_seconds_sum{node="s0"} 2.55
lat_seconds_count{node="s0"} 3
# HELP workers Announced workers.
# TYPE workers gauge
workers 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:               "0",
		2:               "2",
		-3:              "-3",
		0.25:            "0.25",
		math.Inf(1):     "+Inf",
		math.Inf(-1):    "-Inf",
		1e15:            "1e+15",
		1234567890123:   "1234567890123",
		0.005:           "0.005",
		2.5500000000004: "2.5500000000004",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestParseSeriesKeyRoundTrip(t *testing.T) {
	ls := L("node", "s0", "peer", `we"ird=x`, "dir", "rx")
	back := parseSeriesKey(ls.render())
	if len(back) != len(ls) {
		t.Fatalf("round trip lost labels: %v vs %v", back, ls)
	}
	for k, v := range ls {
		if back[k] != v {
			t.Errorf("label %q = %q, want %q", k, back[k], v)
		}
	}
}
