package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedLogger returns a logger with a pinned clock so lines are deterministic.
func fixedLogger(min Level) (*Logger, *strings.Builder) {
	var b strings.Builder
	l := NewLogger(&b, min)
	l.s.now = func() time.Time { return time.Date(2026, 8, 5, 10, 11, 12, 0, time.UTC) }
	return l, &b
}

func TestLoggerFormat(t *testing.T) {
	l, b := fixedLogger(LevelDebug)
	l.Named("server").With("node", "s0").Info("command requeued", "cmd", "c1", "retry", 1)
	want := `ts=2026-08-05T10:11:12.000Z level=info component=server msg="command requeued" node=s0 cmd=c1 retry=1` + "\n"
	if got := b.String(); got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, b := fixedLogger(LevelDebug)
	l.Info("ok", "empty", "", "spacey", "a b", "eq", "k=v", "plain", "x")
	line := b.String()
	for _, frag := range []string{`empty=""`, `spacey="a b"`, `eq="k=v"`, `plain=x`} {
		if !strings.Contains(line, frag) {
			t.Errorf("line %q missing %q", line, frag)
		}
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, b := fixedLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2: %q", len(lines), b.String())
	}
	if !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("wrong lines passed the filter: %q", lines)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(b.String(), "now visible") {
		t.Error("SetLevel(debug) should re-enable debug lines")
	}
}

func TestLoggerOddKVs(t *testing.T) {
	l, b := fixedLogger(LevelDebug)
	l.Info("m", "dangling")
	if !strings.Contains(b.String(), "dangling=(MISSING)") {
		t.Errorf("odd trailing key not marked: %q", b.String())
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("dropped")
	l.Named("x").With("k", "v").Error("dropped")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger should report disabled")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var b safeBuilder
	l := NewLogger(&b, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := l.Named("comp").With("g", g)
			for i := 0; i < 200; i++ {
				child.Info("line", "i", i)
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1600 {
		t.Fatalf("emitted %d lines, want 1600", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "component=comp") {
			t.Fatalf("torn or malformed line: %q", line)
		}
	}
}

// safeBuilder is a mutex-guarded strings.Builder; the logger serializes
// writes itself, but the final read in the test races with nothing only if
// the buffer is also safe.
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "": LevelOff,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown names")
	}
}
