package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"copernicus/internal/store/atomicfile"
)

// This file is the store's replication surface: what a primary needs to ship
// its WAL to a standby (ReadSince, NewestSnapshot, LastSeq) and what a
// standby needs to hold a warm, replayable copy (AppendReplicatedBatch,
// InstallSnapshot). Everything a standby writes lands in the same on-disk
// format as a primary's own WAL, so promotion is nothing more than a normal
// Open + recovery over the replica directory — the torn-tail-tolerant path
// is reused verbatim.

// ErrReplicaGap reports that a replicated append does not continue the
// replica's WAL contiguously: the shipper skipped records the replica never
// saw. The applier refuses the batch and asks the primary to resync from its
// last applied sequence (possibly via a snapshot baseline, if the missing
// records were compacted away on the primary).
var ErrReplicaGap = errors.New("store: replicated records leave a sequence gap")

// LastSeq returns the highest sequence number assigned so far (0 when the
// log is empty). On a primary this is the shipping frontier; on a standby it
// is the applied frontier.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// ReadSince reads up to max records with Seq > after from the on-disk WAL,
// in ascending sequence order. gap reports that the records immediately
// following `after` are no longer on disk (compacted below the snapshot
// baseline); the caller must ship a snapshot baseline first. Reading races
// concurrent appends safely: a partially-flushed final frame fails its CRC
// and simply bounds this read — the records reappear on the next call.
func (s *Store) ReadSince(after uint64, max int) (recs []Record, gap bool, err error) {
	if max <= 0 {
		max = 1 << 20
	}
	s.mu.Lock()
	firstBySeg := make(map[uint64]uint64, len(s.segFirst))
	for idx, first := range s.segFirst {
		firstBySeg[idx] = first
	}
	s.mu.Unlock()

	segs, _, err := scanDir(s.opts.Dir)
	if err != nil {
		return nil, false, err
	}
	for _, f := range segs {
		// Skip whole segments that end before the cursor: segment f holds
		// seqs [firstBySeg[f.index], firstBySeg[next]-1] for segments created
		// by this process, so a successor starting at or below after+1 proves
		// f has nothing to contribute.
		if next, ok := firstBySeg[f.index+1]; ok && next <= after+1 {
			continue
		}
		fileRecs, _, err := readSegmentFile(f.path)
		if err != nil {
			if os.IsNotExist(err) {
				// A concurrent compaction removed the segment between scan
				// and read; everything it held is below the new baseline.
				continue
			}
			return nil, false, err
		}
		for _, r := range fileRecs {
			if r.Seq <= after {
				continue
			}
			recs = append(recs, r)
			if len(recs) >= max {
				break
			}
		}
		if len(recs) >= max {
			break
		}
	}
	if len(recs) > 0 && recs[0].Seq != after+1 {
		return nil, true, nil
	}
	if len(recs) == 0 {
		// Nothing newer on disk — either the caller is caught up, or the
		// records above `after` were compacted into a snapshot.
		s.mu.Lock()
		last := s.nextSeq - 1
		s.mu.Unlock()
		if last > after {
			return nil, true, nil
		}
	}
	return recs, false, nil
}

// NewestSnapshot returns the raw bytes of the newest decodable snapshot
// file together with the sequence it is guaranteed to reflect, or nil when
// no usable snapshot exists. The bytes are a verbatim file image (magic,
// CRC and all), suitable for shipping to a standby's InstallSnapshot.
func (s *Store) NewestSnapshot() (lastSeq uint64, blob []byte, err error) {
	_, snaps, err := scanDir(s.opts.Dir)
	if err != nil {
		return 0, nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(snaps[i].path)
		if err != nil {
			continue
		}
		snap, err := decodeSnapshot(data)
		if err != nil {
			continue
		}
		return snap.LastSeq, data, nil
	}
	return 0, nil, nil
}

// AppendReplicatedBatch appends records shipped from a primary, preserving
// their sequence numbers and timestamps. Records at or below the replica's
// applied frontier are skipped (redelivery is idempotent); a record beyond
// frontier+1 aborts with ErrReplicaGap before anything is written. The call
// blocks until a group-commit fsync covers the batch. It returns how many
// records were newly applied.
func (s *Store) AppendReplicatedBatch(recs []Record) (applied int, err error) {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, errors.New("store: closed")
	}
	if s.poisoned {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			s.met.walErrors.Inc()
			return 0, fmt.Errorf("store: rotating away from poisoned segment: %w", err)
		}
	}
	for _, rec := range recs {
		if rec.Seq < s.nextSeq {
			continue // already applied; duplicate shipment
		}
		if rec.Seq > s.nextSeq {
			have := s.nextSeq - 1
			s.mu.Unlock()
			if applied > 0 {
				// Partially applied batches still need their fsync before
				// reporting, so the caller's applied-frontier stays honest.
				if werr := s.waitSync(start); werr != nil {
					return 0, werr
				}
			}
			return applied, fmt.Errorf("%w: have %d, shipped %d", ErrReplicaGap, have, rec.Seq)
		}
		frame, ferr := encodeFrame(&rec)
		if ferr != nil {
			s.mu.Unlock()
			return applied, ferr
		}
		if s.opts.WriteHook != nil {
			full := len(frame)
			frame, ferr = s.opts.WriteHook(frame)
			if ferr != nil {
				s.poisoned = true
				s.mu.Unlock()
				s.met.walErrors.Inc()
				return applied, fmt.Errorf("store: injected write fault: %w", ferr)
			}
			if len(frame) != full {
				n, _ := s.seg.Write(frame)
				s.segBytes += int64(n)
				s.poisoned = true
				s.mu.Unlock()
				s.met.walErrors.Inc()
				return applied, fmt.Errorf("store: injected short write: %d of %d bytes of record %d", len(frame), full, rec.Seq)
			}
		}
		if n, werr := s.seg.Write(frame); werr != nil || n != len(frame) {
			s.segBytes += int64(n)
			s.poisoned = true
			s.mu.Unlock()
			s.met.walErrors.Inc()
			if werr == nil {
				werr = fmt.Errorf("short write")
			}
			return applied, fmt.Errorf("store: appending replicated record %d: %w", rec.Seq, werr)
		}
		s.nextSeq = rec.Seq + 1
		s.segBytes += int64(len(frame))
		s.sinceSnap++
		applied++
		s.met.appends.Inc()
		s.met.recordBytes.Observe(float64(len(frame)))
	}
	s.mu.Unlock()
	if applied == 0 {
		return 0, nil
	}
	return applied, s.waitSync(start)
}

// waitSync enqueues one group-commit waiter and blocks until the fsync
// covering everything written so far completes. Called without s.mu.
func (s *Store) waitSync(start time.Time) error {
	done := make(chan error, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	s.pending = append(s.pending, done)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	err := <-done
	s.met.appendWait.Observe(time.Since(start).Seconds())
	if err != nil {
		s.met.walErrors.Inc()
		return fmt.Errorf("store: fsync covering replicated batch: %w", err)
	}
	return nil
}

// InstallSnapshot installs a snapshot file image shipped from a primary as
// this replica's new recovery baseline, then compacts the replicated WAL
// below it. The baseline index is chosen so that no record above the
// snapshot's LastSeq ever falls below it:
//
//   - If the replica is at or behind the snapshot, the active segment is
//     rotated first and the baseline is the fresh segment — every future
//     record has Seq > LastSeq by construction — and the applied frontier
//     fast-forwards to LastSeq.
//   - If the replica is ahead, the baseline is the segment holding record
//     LastSeq+1. When that segment predates this process (its first
//     sequence is unknown), the install is deferred (installed=false) —
//     a later snapshot will land in a known segment.
//
// installed=false with a nil error means the snapshot was skipped safely.
func (s *Store) InstallSnapshot(blob []byte) (installed bool, err error) {
	snap, err := decodeSnapshot(blob)
	if err != nil {
		return false, fmt.Errorf("store: refusing shipped snapshot: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, errors.New("store: closed")
	}
	var idx uint64
	if s.nextSeq-1 <= snap.LastSeq {
		// At or behind the baseline: everything we have is covered by it.
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return false, err
		}
		s.nextSeq = snap.LastSeq + 1
		idx = s.segIndex
		s.segFirst[idx] = s.nextSeq
	} else {
		// Ahead of the baseline: find the segment holding LastSeq+1.
		found := false
		for segIdx, first := range s.segFirst {
			if first <= snap.LastSeq+1 && (!found || segIdx > idx) {
				idx, found = segIdx, true
			}
		}
		if !found {
			s.mu.Unlock()
			return false, nil
		}
	}
	s.mu.Unlock()
	if err := atomicfile.WriteFile(snapshotPath(s.opts.Dir, idx), blob, 0o644); err != nil {
		return false, err
	}
	s.met.snapshots.Inc()
	s.compact(idx)
	return true, nil
}

// ReadAll loads a state directory's recovery image without opening a Store:
// offline inspection, replica auditing, tests. The directory is not
// modified.
func ReadAll(dir string) (*Recovered, error) {
	rec, _, err := loadDir(dir)
	return rec, err
}

// --- replica metadata ---

// Replication role names persisted in ReplicaMeta.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)

// ReplicaMeta is the small durable record of a node's place in a
// replication pair: its fencing epoch, its current role, and its peer. It
// lives beside the WAL so a restarted process resumes the same role — in
// particular, a restarted ex-primary re-ships to its old standby, discovers
// it was fenced, and demotes instead of split-braining.
type ReplicaMeta struct {
	Epoch    uint64 `json:"epoch"`
	Role     string `json:"role"`
	PeerID   string `json:"peer_id,omitempty"`
	PeerAddr string `json:"peer_addr,omitempty"`
}

const replicaMetaFile = "replica-meta.json"

// LoadReplicaMeta reads the replica metadata from dir; (nil, nil) when the
// directory has none (an unreplicated store).
func LoadReplicaMeta(dir string) (*ReplicaMeta, error) {
	data, err := os.ReadFile(replicaMetaPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m ReplicaMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt %s: %w", replicaMetaFile, err)
	}
	return &m, nil
}

// SaveReplicaMeta durably writes the replica metadata into dir.
func SaveReplicaMeta(dir string, m *ReplicaMeta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(replicaMetaPath(dir), data, 0o644)
}

func replicaMetaPath(dir string) string {
	return filepath.Join(dir, replicaMetaFile)
}
