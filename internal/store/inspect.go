package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// InspectRecord is one WAL record rendered for operators: stable type
// names, RFC3339 timestamps, payload sizes instead of raw blobs.
type InspectRecord struct {
	Seq        uint64 `json:"seq"`
	Time       string `json:"time"`
	Type       string `json:"type"`
	Project    string `json:"project,omitempty"`
	Command    string `json:"command,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Generation int    `json:"generation,omitempty"`
	Count      int    `json:"count,omitempty"`
	Note       string `json:"note,omitempty"`
	DataBytes  int    `json:"data_bytes,omitempty"`
}

// InspectSegment is one WAL segment's verification result.
type InspectSegment struct {
	File    string          `json:"file"`
	Index   uint64          `json:"index"`
	Records []InspectRecord `json:"records"`
	Torn    string          `json:"torn,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// InspectProject summarises one project inside a snapshot.
type InspectProject struct {
	Name       string `json:"name"`
	Controller string `json:"controller"`
	State      string `json:"state"`
	Generation int    `json:"generation"`
	Note       string `json:"note,omitempty"`
	Commands   int    `json:"commands"`
	Finished   int    `json:"finished"`
	Failed     int    `json:"failed"`
}

// InspectSnapshot is one snapshot file's verification result.
type InspectSnapshot struct {
	File     string           `json:"file"`
	Index    uint64           `json:"index"`
	TakenAt  string           `json:"taken_at,omitempty"`
	LastSeq  uint64           `json:"last_seq,omitempty"`
	Projects []InspectProject `json:"projects,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// Inspection is the full human-readable image of a state directory, the
// payload of `cpcctl state inspect`.
type Inspection struct {
	Dir       string            `json:"dir"`
	Snapshots []InspectSnapshot `json:"snapshots"`
	Segments  []InspectSegment  `json:"segments"`
	// Baseline is the snapshot index recovery would start from (0 = none).
	Baseline uint64 `json:"baseline"`
	// LastSeq is the highest sequence number present in the directory —
	// on a standby replica, the last replicated sequence number. An operator
	// compares it against the primary's to judge promotion safety.
	LastSeq uint64 `json:"last_seq"`
	// Gap mirrors Recovered.Gap: a non-empty description means recovery
	// from this directory would restore stale state because segments the
	// baseline needs were compacted or deleted. Promote nothing that shows
	// a gap.
	Gap string `json:"gap,omitempty"`
	// Replica is the replication metadata (epoch, role, peer) when the
	// directory belongs to a replication pair; nil otherwise.
	Replica *ReplicaMeta `json:"replica,omitempty"`
	// Healthy is false when any file failed CRC or decode checks beyond a
	// tolerated torn tail in the newest segment, or the segment chain has a
	// gap.
	Healthy bool `json:"healthy"`
}

func fmtTime(ns int64) string {
	if ns == 0 {
		return ""
	}
	return time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
}

// Inspect reads a state directory without opening it for writing, verifies
// every CRC, and reports its contents. It never modifies the directory.
func Inspect(dir string) (*Inspection, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	insp := &Inspection{Dir: dir, Healthy: true,
		Snapshots: []InspectSnapshot{}, Segments: []InspectSegment{}}

	for _, f := range snaps {
		is := InspectSnapshot{File: filepath.Base(f.path), Index: f.index}
		data, err := os.ReadFile(f.path)
		if err != nil {
			is.Error = err.Error()
		} else if snap, err := decodeSnapshot(data); err != nil {
			is.Error = err.Error()
		} else {
			is.TakenAt = fmtTime(snap.TakenAt)
			is.LastSeq = snap.LastSeq
			for _, p := range snap.Projects {
				is.Projects = append(is.Projects, InspectProject{
					Name: p.Name, Controller: p.Controller, State: p.State,
					Generation: p.Generation, Note: p.Note,
					Commands: len(p.Commands), Finished: p.Finished, Failed: p.Failed,
				})
			}
			if f.index > insp.Baseline {
				insp.Baseline = f.index
			}
		}
		if is.Error != "" {
			insp.Healthy = false
		}
		insp.Snapshots = append(insp.Snapshots, is)
	}

	for _, f := range segs {
		is := InspectSegment{File: filepath.Base(f.path), Index: f.index,
			Records: []InspectRecord{}}
		recs, torn, err := readSegmentFile(f.path)
		if err != nil {
			is.Error = err.Error()
			insp.Healthy = false
		}
		// A torn tail is tolerated anywhere: recovery rotates to a fresh
		// segment before appending, so a tear mid-history just marks an
		// unacknowledged record discarded by an earlier recovery.
		is.Torn = torn
		for _, r := range recs {
			is.Records = append(is.Records, InspectRecord{
				Seq: r.Seq, Time: fmtTime(r.Time), Type: r.Type.String(),
				Project: r.Project, Command: r.Command, Worker: r.Worker,
				Generation: r.Generation, Count: r.Count, Note: r.Note,
				DataBytes: len(r.Data),
			})
		}
		insp.Segments = append(insp.Segments, is)
		for _, r := range recs {
			if r.Seq > insp.LastSeq {
				insp.LastSeq = r.Seq
			}
		}
	}
	for _, sn := range insp.Snapshots {
		if sn.LastSeq > insp.LastSeq {
			insp.LastSeq = sn.LastSeq
		}
	}

	// Run the recovery chain audit so gaps surface here, not only in error
	// logs at restart time (an operator deciding whether a standby is safe
	// to promote needs this up front).
	if rec, _, err := loadDir(dir); err == nil && rec.Gap != "" {
		insp.Gap = rec.Gap
		insp.Healthy = false
	}

	if meta, err := LoadReplicaMeta(dir); err != nil {
		insp.Healthy = false
	} else {
		insp.Replica = meta
	}
	return insp, nil
}
