package store

import (
	"errors"
	"os"
	"testing"

	"copernicus/internal/obs"
)

func TestReadSinceReturnsTail(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()
	appendN(t, s, 10)

	recs, gap, err := s.ReadSince(4, 0)
	if err != nil || gap {
		t.Fatalf("ReadSince: gap=%v err=%v", gap, err)
	}
	if len(recs) != 6 || recs[0].Seq != 5 || recs[5].Seq != 10 {
		t.Fatalf("ReadSince(4) = %d records, first %d", len(recs), recs[0].Seq)
	}

	// Caught up: nothing to ship, no gap.
	recs, gap, err = s.ReadSince(10, 0)
	if err != nil || gap || len(recs) != 0 {
		t.Fatalf("caught-up ReadSince = %d records, gap=%v err=%v", len(recs), gap, err)
	}

	// max bounds the batch.
	recs, _, err = s.ReadSince(0, 3)
	if err != nil || len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("bounded ReadSince = %d records err=%v", len(recs), err)
	}
}

func TestReadSinceSpansRotations(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()
	appendN(t, s, 5)
	if _, _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5)

	recs, gap, err := s.ReadSince(2, 0)
	if err != nil || gap {
		t.Fatalf("gap=%v err=%v", gap, err)
	}
	if len(recs) != 8 || recs[0].Seq != 3 || recs[7].Seq != 10 {
		t.Fatalf("cross-rotation ReadSince = %d records", len(recs))
	}
}

func TestReadSinceReportsCompactedGap(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()
	appendN(t, s, 6)
	idx, last, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(idx, last, &Snapshot{}); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)

	// Records 1..6 are compacted below the snapshot; asking for them must
	// flag a gap so the shipper falls back to a snapshot baseline.
	_, gap, err := s.ReadSince(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !gap {
		t.Fatal("ReadSince into compacted history did not report a gap")
	}
}

func TestAppendReplicatedBatchPreservesSeqAndDedups(t *testing.T) {
	src := mustOpen(t, testOptions(t))
	defer src.Close()
	appendN(t, src, 5)
	recs, _, err := src.ReadSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	dst := mustOpen(t, testOptions(t))
	n, err := dst.AppendReplicatedBatch(recs)
	if err != nil || n != 5 {
		t.Fatalf("first apply: n=%d err=%v", n, err)
	}
	// Redelivery is a no-op.
	n, err = dst.AppendReplicatedBatch(recs[1:4])
	if err != nil || n != 0 {
		t.Fatalf("redelivery: n=%d err=%v", n, err)
	}
	if got := dst.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}

	// A gap is refused before anything is written.
	gapRec := Record{Seq: 42, Type: RecCommandQueued, Project: "p"}
	if _, err := dst.AppendReplicatedBatch([]Record{gapRec}); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap apply err = %v, want ErrReplicaGap", err)
	}

	// The replica recovers with identical records and timestamps.
	dir := dst.Dir()
	dst.Close()
	rec, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replica recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != recs[i].Seq || r.Time != recs[i].Time {
			t.Fatalf("record %d: seq/time not preserved: %+v vs %+v", i, r, recs[i])
		}
	}
}

func TestInstallSnapshotBehindFastForwards(t *testing.T) {
	src := mustOpen(t, testOptions(t))
	defer src.Close()
	appendN(t, src, 8)
	idx, last, err := src.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteSnapshot(idx, last, &Snapshot{Projects: []ProjectSnap{{Name: "p"}}}); err != nil {
		t.Fatal(err)
	}
	appendN(t, src, 3)
	snapLast, blob, err := src.NewestSnapshot()
	if err != nil || blob == nil {
		t.Fatalf("NewestSnapshot: %v", err)
	}
	if snapLast != 8 {
		t.Fatalf("snapshot LastSeq = %d, want 8", snapLast)
	}

	// Fresh replica: install baseline, then apply the live tail.
	dst := mustOpen(t, testOptions(t))
	installed, err := dst.InstallSnapshot(blob)
	if err != nil || !installed {
		t.Fatalf("InstallSnapshot: installed=%v err=%v", installed, err)
	}
	if got := dst.LastSeq(); got != 8 {
		t.Fatalf("after install LastSeq = %d, want 8", got)
	}
	tail, gap, err := src.ReadSince(8, 0)
	if err != nil || gap || len(tail) != 3 {
		t.Fatalf("tail read: %d gap=%v err=%v", len(tail), gap, err)
	}
	if _, err := dst.AppendReplicatedBatch(tail); err != nil {
		t.Fatal(err)
	}

	dir := dst.Dir()
	dst.Close()
	rec, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.LastSeq != 8 {
		t.Fatalf("replica baseline = %+v", rec.Snapshot)
	}
	if rec.Gap != "" {
		t.Fatalf("replica has gap: %s", rec.Gap)
	}
	if len(rec.Records) != 3 || rec.Records[0].Seq != 9 {
		t.Fatalf("replica tail = %d records", len(rec.Records))
	}
}

func TestInstallSnapshotAheadKeepsAppliedRecords(t *testing.T) {
	src := mustOpen(t, testOptions(t))
	defer src.Close()
	appendN(t, src, 10)

	// Replica has applied everything the primary ever wrote.
	recs, _, err := src.ReadSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := mustOpen(t, testOptions(t))
	if _, err := dst.AppendReplicatedBatch(recs); err != nil {
		t.Fatal(err)
	}

	// Primary now snapshots at LastSeq=6: older than the replica's frontier.
	idx, last, err := src.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	_ = last
	snap := &Snapshot{Projects: []ProjectSnap{{Name: "p"}}}
	if err := src.WriteSnapshot(idx, 6, snap); err != nil {
		t.Fatal(err)
	}
	_, blob, err := src.NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	installed, err := dst.InstallSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !installed {
		t.Fatal("install deferred although the active segment is known")
	}
	// Records 7..10 must survive recovery on top of the new baseline.
	dir := dst.Dir()
	dst.Close()
	rec, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.LastSeq != 6 {
		t.Fatalf("baseline = %+v", rec.Snapshot)
	}
	if rec.Gap != "" {
		t.Fatalf("gap after ahead-install: %s", rec.Gap)
	}
	if len(rec.Records) != 4 || rec.Records[0].Seq != 7 || rec.Records[3].Seq != 10 {
		t.Fatalf("tail = %+v", rec.Records)
	}
}

func TestInstallSnapshotUnknownSegmentDefers(t *testing.T) {
	// Replica applied records in a previous process; the current process
	// does not know which segment holds LastSeq+1, so installation of an
	// older snapshot must be deferred rather than risk stranding records.
	dst := mustOpen(t, testOptions(t))
	appendN(t, dst, 10) // stand-in for replicated records
	dir := dst.Dir()
	dst.Close()

	dst2 := mustOpen(t, Options{Dir: dir, NoSync: true, Obs: obs.New()})
	defer dst2.Close()

	src := mustOpen(t, testOptions(t))
	defer src.Close()
	appendN(t, src, 10)
	idx, _, err := src.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteSnapshot(idx, 6, &Snapshot{}); err != nil {
		t.Fatal(err)
	}
	_, blob, err := src.NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	installed, err := dst2.InstallSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if installed {
		t.Fatal("snapshot installed into a segment of unknown span")
	}
}

func TestReplicaMetaRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if m, err := LoadReplicaMeta(dir); err != nil || m != nil {
		t.Fatalf("empty dir: meta=%+v err=%v", m, err)
	}
	want := &ReplicaMeta{Epoch: 7, Role: RoleStandby, PeerID: "srv-a", PeerAddr: "host:9051"}
	if err := SaveReplicaMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReplicaMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("meta roundtrip = %+v, want %+v", got, want)
	}
}

func TestInspectSurfacesGapAndLastSeq(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 5)
	if _, _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5)
	if _, _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)
	s.Close()

	insp, err := Inspect(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if insp.LastSeq != 12 {
		t.Fatalf("LastSeq = %d, want 12", insp.LastSeq)
	}
	if insp.Gap != "" || !insp.Healthy {
		t.Fatalf("intact dir: gap=%q healthy=%v", insp.Gap, insp.Healthy)
	}

	// Delete a middle segment: the inspection must go loud.
	if err := os.Remove(segmentPath(opts.Dir, 2)); err != nil {
		t.Fatal(err)
	}
	insp, err = Inspect(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if insp.Gap == "" || insp.Healthy {
		t.Fatalf("gapped dir: gap=%q healthy=%v", insp.Gap, insp.Healthy)
	}

	// Replica metadata is surfaced when present.
	if err := SaveReplicaMeta(opts.Dir, &ReplicaMeta{Epoch: 3, Role: RolePrimary}); err != nil {
		t.Fatal(err)
	}
	insp, err = Inspect(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if insp.Replica == nil || insp.Replica.Epoch != 3 || insp.Replica.Role != RolePrimary {
		t.Fatalf("replica meta = %+v", insp.Replica)
	}
}
