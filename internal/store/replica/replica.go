// Package replica streams a primary server's write-ahead log to a standby
// over the overlay and drives the heartbeat-lease failover protocol between
// them. It is the first half of the horizontal scale-out path: a project
// survives the loss of its server because a warm, replayable copy of every
// journaled record already lives on another node.
//
// The protocol has three message types (see internal/wire):
//
//   - ReplJoin: the standby registers with its primary, reporting the
//     highest WAL sequence it has applied; the primary resumes shipping
//     exactly there.
//   - ReplBatch → ReplAck: the primary ships contiguous record batches (and
//     snapshot baselines, so the standby's copy stays compact) every
//     Interval. An empty batch is a pure heartbeat. Every non-refused ack
//     renews the lease in both directions.
//   - Promoted: a standby whose lease lapsed announces, after replaying its
//     tail and re-seeding the queue through the normal recovery path, that
//     it now owns the primary's projects.
//
// Fencing is by epoch: every promotion increments a durable epoch counter,
// and a batch or ack carrying a higher epoch than the receiver's proves the
// receiver has been superseded. A fenced ex-primary demotes — its owner
// tears down the serving side, the divergent state directory is archived,
// and the node rejoins the new primary as a fresh standby — instead of
// split-braining. The divergent tail it may have accumulated while fenced
// is the same loss class as a crash before replication shipped: records
// acknowledged by exactly one node.
package replica

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/store"
	"copernicus/internal/wire"
)

// Lease-state gauge values (copernicus_replica_lease_state).
const (
	// LeaseUnknown: no contact with the peer yet.
	LeaseUnknown = 0.0
	// LeaseHeld: the lease is current (acks/batches inside the timeout).
	LeaseHeld = 1.0
	// LeaseLapsed: the timeout passed with no contact — a standby in this
	// state promotes; a primary keeps serving but expects to be fenced.
	LeaseLapsed = -1.0
	// LeaseFenced: this node discovered a higher epoch and is demoting.
	LeaseFenced = -2.0
)

// Hooks connect the protocol to the serving layer without this package
// importing it. Both are called from the Peer's own goroutine, never from
// an overlay handler.
type Hooks struct {
	// Promote is called after a lapsed lease, once the replica store has
	// been re-opened through the normal recovery path (torn-tail handling,
	// snapshot + tail replay image ready). The hook builds the serving side
	// on top — replaying the image re-seeds the queue and requeues orphans —
	// and returns the names of the projects now owned, for the ownership
	// announcement. Ownership of st transfers to the hook's caller side:
	// the Peer keeps using it for shipping but never closes it.
	Promote func(st *store.Store, epoch uint64) (projects []string, err error)
	// Demote is called when this node, acting as primary, discovers a
	// higher epoch. It must tear down the serving side: close the server
	// and close the store it was given. After it returns, the Peer archives
	// the state directory and rejoins the new primary as standby.
	Demote func(epoch uint64, newPrimaryID string) error
}

// Config parameterises a Peer. Dir is required; it is the primary's own
// state directory or the standby's replica directory, depending on Role.
type Config struct {
	// Dir is the state directory this peer replicates from (primary) or
	// into (standby). A durable replica-meta.json inside it overrides Role,
	// PeerID and PeerAddr, so a restarted process resumes its last role.
	Dir string
	// Role is store.RolePrimary or store.RoleStandby.
	Role string
	// PeerID is the overlay node ID of the counterpart (required for a
	// standby; a primary learns it from the ReplJoin).
	PeerID string
	// PeerAddr is the counterpart's transport address, used by a standby to
	// re-dial a flapping replication link.
	PeerAddr string
	// SelfAddr is this node's listen address, carried in ReplJoin so the
	// primary can find us again after a restart.
	SelfAddr string
	// Interval is the ship/heartbeat cadence. Default 1s.
	Interval time.Duration
	// LeaseTimeout is how long either side waits without contact before
	// concluding the other is gone. Default 5×Interval. The primary's value
	// is authoritative: it is piggybacked on every batch and adopted by the
	// standby.
	LeaseTimeout time.Duration
	// BatchMax caps records per shipment. Default 256.
	BatchMax int
	// StoreOptions configure replica-store opens (standby role and
	// promotion). Dir is overridden with Config.Dir.
	StoreOptions store.Options
	Hooks        Hooks
	// Obs receives the copernicus_replica_* metrics; nil selects a silent
	// bundle.
	Obs *obs.Obs
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 5 * c.Interval
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
}

type replicaMetrics struct {
	lag        *obs.Gauge
	shipSec    *obs.Histogram
	leaseState *obs.Gauge
	shippedRec *obs.Counter
	appliedRec *obs.Counter
	batchesTx  *obs.Counter
	batchesRx  *obs.Counter
	resyncs    *obs.Counter
	snapsTx    *obs.Counter
	promotions *obs.Counter
	fencings   *obs.Counter
}

func newReplicaMetrics(o *obs.Obs, node string) replicaMetrics {
	l := obs.L("node", node)
	m := o.Metrics
	return replicaMetrics{
		lag: m.Gauge("copernicus_replica_lag_records",
			"Records the standby has not yet acknowledged (primary view).", l),
		shipSec: m.Histogram("copernicus_replica_ship_seconds",
			"Round-trip latency of replication batches.", nil, l),
		leaseState: m.Gauge("copernicus_replica_lease_state",
			"Lease health: 0 no contact yet, 1 held, -1 lapsed, -2 fenced.", l),
		shippedRec: m.Counter("copernicus_replica_shipped_records_total",
			"WAL records shipped to the standby.", l),
		appliedRec: m.Counter("copernicus_replica_applied_records_total",
			"Replicated WAL records applied locally.", l),
		batchesTx: m.Counter("copernicus_replica_batches_total",
			"Replication batches exchanged.", obs.L("node", node, "dir", "tx")),
		batchesRx: m.Counter("copernicus_replica_batches_total",
			"Replication batches exchanged.", obs.L("node", node, "dir", "rx")),
		resyncs: m.Counter("copernicus_replica_resyncs_total",
			"Times the shipper restarted from the standby's frontier.", l),
		snapsTx: m.Counter("copernicus_replica_snapshots_shipped_total",
			"Snapshot baselines shipped to the standby.", l),
		promotions: m.Counter("copernicus_replica_promotions_total",
			"Standby self-promotions after a lapsed lease.", l),
		fencings: m.Counter("copernicus_replica_fencings_total",
			"Times this node was fenced by a higher epoch and demoted.", l),
	}
}

// Peer is one node's half of a replication pair. It is created in either
// role and switches roles over its lifetime: a standby promotes when its
// lease on the primary lapses; a primary demotes when it is fenced by a
// higher epoch.
type Peer struct {
	node *overlay.Node
	cfg  Config
	log  *obs.Logger
	met  replicaMetrics

	mu       sync.Mutex
	role     string
	epoch    uint64
	peerID   string
	peerAddr string
	st       *store.Store
	ownStore bool // standby role: the Peer opened (and closes) st itself

	acked          uint64 // primary: standby's applied frontier
	synced         bool   // primary: acked is known (join or probe seen)
	shippedSnapSeq uint64 // primary: LastSeq of the newest shipped baseline
	lastContact    time.Time
	leaseTimeout   time.Duration // standby: adopted from batches
	leaseLogged    bool

	// pendingDemote is set by overlay handlers (which must not run role
	// transitions) and consumed by the run loop.
	pendingDemote *demotion

	promoted chan struct{}
	demoted  chan struct{}
	stop     chan struct{}
	closed   bool
	wg       sync.WaitGroup
}

type demotion struct {
	epoch      uint64
	newPrimary string
}

// NewPeer builds a Peer on node. For the primary role, st is the serving
// store (owned by the caller); for the standby role st must be nil — the
// Peer opens its own replica store inside cfg.Dir. The Peer registers the
// replication handlers on node and starts its protocol loop immediately.
func NewPeer(node *overlay.Node, st *store.Store, cfg Config) (*Peer, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, errors.New("replica: Config.Dir is required")
	}
	p := &Peer{
		node:         node,
		cfg:          cfg,
		log:          cfg.Obs.Log.Named("replica").With("node", node.ID()),
		met:          newReplicaMetrics(cfg.Obs, node.ID()),
		role:         cfg.Role,
		epoch:        1,
		peerID:       cfg.PeerID,
		peerAddr:     cfg.PeerAddr,
		leaseTimeout: cfg.LeaseTimeout,
		promoted:     make(chan struct{}),
		demoted:      make(chan struct{}),
		stop:         make(chan struct{}),
	}
	// Durable metadata wins over configuration: a restarted ex-primary must
	// resume with its old epoch and standby so it can discover it was
	// fenced; a demoted node must come back as standby even if its flags
	// still say primary.
	meta, err := store.LoadReplicaMeta(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if meta != nil {
		p.epoch = meta.Epoch
		if meta.Role != "" {
			p.role = meta.Role
		}
		if meta.PeerID != "" {
			p.peerID = meta.PeerID
		}
		if meta.PeerAddr != "" {
			p.peerAddr = meta.PeerAddr
		}
	}
	switch p.role {
	case store.RolePrimary:
		if st == nil {
			return nil, errors.New("replica: primary role requires the serving store")
		}
		p.st = st
	case store.RoleStandby:
		if st != nil {
			return nil, errors.New("replica: standby role opens its own store; pass nil")
		}
		rs, err := p.openReplicaStore()
		if err != nil {
			return nil, err
		}
		p.st = rs
		p.ownStore = true
	default:
		return nil, fmt.Errorf("replica: unknown role %q", p.role)
	}
	p.met.leaseState.Set(LeaseUnknown)

	node.Handle(wire.MsgReplicate, p.handleReplicate)
	node.Handle(wire.MsgReplJoin, p.handleJoin)
	node.Handle(wire.MsgPromoted, p.handlePromoted)

	p.wg.Add(1)
	go p.run()
	return p, nil
}

func (p *Peer) openReplicaStore() (*store.Store, error) {
	opts := p.cfg.StoreOptions
	opts.Dir = p.cfg.Dir
	if opts.Obs == nil {
		opts.Obs = p.cfg.Obs
	}
	return store.Open(opts)
}

// Role returns the current role (store.RolePrimary or store.RoleStandby).
func (p *Peer) Role() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.role
}

// Epoch returns the current fencing epoch.
func (p *Peer) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// AckedSeq returns the peer's last acknowledged applied sequence (primary
// view); on a standby it is the local applied frontier.
func (p *Peer) AckedSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.role == store.RoleStandby && p.st != nil {
		return p.st.LastSeq()
	}
	return p.acked
}

// Promoted is closed when this peer promotes itself to primary.
func (p *Peer) Promoted() <-chan struct{} { return p.promoted }

// Demoted is closed when this peer is fenced and demotes to standby.
func (p *Peer) Demoted() <-chan struct{} { return p.demoted }

// Close stops the protocol loop and closes the replica store if this peer
// owns one. It does not touch a serving store handed in by the owner.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ownStore && p.st != nil {
		return p.st.Close()
	}
	return nil
}

// --- protocol loop ---

func (p *Peer) run() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	// A standby introduces itself immediately rather than waiting a tick.
	if p.Role() == store.RoleStandby {
		p.join()
	}
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		pd := p.pendingDemote
		p.pendingDemote = nil
		role := p.role
		p.mu.Unlock()
		if pd != nil && role == store.RolePrimary {
			p.demote(pd.epoch, pd.newPrimary)
			continue
		}
		switch role {
		case store.RolePrimary:
			p.shipOnce()
		case store.RoleStandby:
			p.standbyTick()
		}
	}
}

// requestTimeout bounds one replication round trip: long enough for a fat
// batch, short enough that a dead link cannot eat the whole lease.
func (p *Peer) requestTimeout() time.Duration {
	t := p.cfg.LeaseTimeout / 2
	if t < p.cfg.Interval {
		t = p.cfg.Interval
	}
	return t
}

// --- primary side ---

// shipOnce ships one batch (possibly a pure heartbeat) to the standby and
// processes the acknowledgement.
func (p *Peer) shipOnce() {
	p.mu.Lock()
	peerID := p.peerID
	acked := p.acked
	synced := p.synced
	epoch := p.epoch
	st := p.st
	shippedSnap := p.shippedSnapSeq
	p.mu.Unlock()
	if peerID == "" || st == nil {
		return // no standby registered yet; nothing to lease against
	}

	batch := wire.ReplBatch{
		PrimaryID:          p.node.ID(),
		Epoch:              epoch,
		LeaseTimeoutMillis: p.cfg.LeaseTimeout.Milliseconds(),
	}
	var snapLast uint64
	if synced {
		recs, gap, err := st.ReadSince(acked, p.cfg.BatchMax)
		if err != nil {
			p.log.Warn("reading WAL tail for shipping", "err", err)
			return
		}
		if gap {
			// The records right after the standby's frontier were compacted
			// into a snapshot; ship the baseline plus the tail above it.
			var blob []byte
			snapLast, blob, err = st.NewestSnapshot()
			if err != nil || blob == nil {
				p.log.Error("WAL gap but no usable snapshot to ship", "err", err)
				return
			}
			batch.Snapshot = blob
			batch.SnapLastSeq = snapLast
			recs, _, err = st.ReadSince(snapLast, p.cfg.BatchMax)
			if err != nil {
				p.log.Warn("reading post-snapshot tail", "err", err)
				return
			}
		} else if last, blob, serr := st.NewestSnapshot(); serr == nil && blob != nil &&
			last > shippedSnap && last <= acked {
			// Compaction aid: the standby already has every record this
			// baseline covers, so installing it lets the replica WAL shrink.
			batch.Snapshot = blob
			batch.SnapLastSeq = last
			snapLast = last
		}
		if len(recs) > 0 {
			encoded, err := wire.Marshal(recs)
			if err != nil {
				p.log.Error("encoding replication batch", "err", err)
				return
			}
			batch.Records = encoded
			batch.Count = len(recs)
			batch.FirstSeq = recs[0].Seq
			batch.LastSeq = recs[len(recs)-1].Seq
		}
	}
	payload, err := wire.Marshal(batch)
	if err != nil {
		p.log.Error("encoding replication envelope", "err", err)
		return
	}

	start := time.Now()
	raw, err := p.node.RequestTimeout(peerID, wire.MsgReplicate, payload, p.requestTimeout())
	if err != nil {
		p.noteNoContact("shipping to standby", err)
		// The link itself may be gone: the standby dialled us originally, and
		// if that connection died in a partition nobody else re-establishes
		// it. Re-dial from this side so a healed partition lets shipping (and
		// with it, fencing of whichever side lost) resume — otherwise a
		// promoted standby and its fenced ex-primary stay split forever.
		if addr := p.currentPeerAddr(); addr != "" {
			_, _ = p.node.ConnectPeer(addr)
		}
		return
	}
	p.met.shipSec.Observe(time.Since(start).Seconds())
	p.met.batchesTx.Inc()
	var ack wire.ReplAck
	if err := wire.Unmarshal(raw, &ack); err != nil {
		p.log.Warn("undecodable replication ack", "err", err)
		return
	}
	p.handleAck(&ack, &batch, snapLast)
}

func (p *Peer) handleAck(ack *wire.ReplAck, batch *wire.ReplBatch, snapLast uint64) {
	p.mu.Lock()
	if ack.Refused && ack.Epoch > p.epoch {
		// A newer primary exists: we were fenced while unreachable.
		epoch := ack.Epoch
		newPrimary := ack.ResponderID
		p.mu.Unlock()
		p.demote(epoch, newPrimary)
		return
	}
	if ack.Refused {
		// Sequence mismatch (standby restarted, batch raced a resync, ...):
		// restart shipping from the standby's reported frontier.
		p.acked = ack.AppliedSeq
		p.synced = true
		p.met.resyncs.Inc()
		p.log.Info("standby refused batch; resyncing",
			"reason", ack.Reason, "frontier", ack.AppliedSeq)
		p.mu.Unlock()
		return
	}
	p.acked = ack.AppliedSeq
	p.synced = true
	p.lastContact = time.Now()
	p.leaseLogged = false
	if batch.Count > 0 {
		p.met.shippedRec.Add(uint64(batch.Count))
	}
	if batch.Snapshot != nil {
		p.met.snapsTx.Inc()
		if snapLast > p.shippedSnapSeq {
			p.shippedSnapSeq = snapLast
		}
	}
	lag := float64(0)
	if last := p.st.LastSeq(); last > p.acked {
		lag = float64(last - p.acked)
	}
	p.mu.Unlock()
	p.met.lag.Set(lag)
	p.met.leaseState.Set(LeaseHeld)
}

// noteNoContact records a failed exchange with the peer and flips the lease
// gauge once the timeout passes. A primary does NOT step down on a lapsed
// lease — it keeps serving (availability over consistency during a
// partition) and accepts being fenced when the standby's promotion becomes
// visible.
func (p *Peer) noteNoContact(what string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	since := time.Since(p.lastContact)
	if !p.lastContact.IsZero() && since > p.leaseTimeoutLocked() {
		p.met.leaseState.Set(LeaseLapsed)
		if !p.leaseLogged {
			p.leaseLogged = true
			p.log.Warn("replication lease lapsed", "what", what,
				"since_contact", since.Round(time.Millisecond), "err", err)
		}
	}
}

func (p *Peer) leaseTimeoutLocked() time.Duration {
	if p.role == store.RoleStandby && p.leaseTimeout > 0 {
		return p.leaseTimeout
	}
	return p.cfg.LeaseTimeout
}

// --- standby side ---

// join introduces this standby to its primary so shipping (re)starts at the
// right frontier. A successful join counts as lease contact.
func (p *Peer) join() {
	p.mu.Lock()
	if p.role != store.RoleStandby || p.peerID == "" {
		p.mu.Unlock()
		return
	}
	peerID := p.peerID
	join := wire.ReplJoin{
		StandbyID:  p.node.ID(),
		Addr:       p.cfg.SelfAddr,
		Epoch:      p.epoch,
		AppliedSeq: p.st.LastSeq(),
	}
	p.mu.Unlock()
	payload, err := wire.Marshal(join)
	if err != nil {
		return
	}
	raw, err := p.node.RequestTimeout(peerID, wire.MsgReplJoin, payload, p.requestTimeout())
	if err != nil {
		p.log.Debug("join attempt failed", "primary", peerID, "err", err)
		return
	}
	var ack wire.ReplAck
	if err := wire.Unmarshal(raw, &ack); err != nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ack.Refused {
		p.log.Warn("primary refused join", "reason", ack.Reason, "epoch", ack.Epoch)
		return
	}
	if ack.Epoch > p.epoch {
		p.epoch = ack.Epoch
		p.persistMetaLocked()
	}
	p.lastContact = time.Now()
	p.met.leaseState.Set(LeaseHeld)
}

// standbyTick monitors the lease and heals the replication link. The lease
// only arms after first contact: a standby that has never reached its
// primary has nothing to promote.
func (p *Peer) standbyTick() {
	p.mu.Lock()
	last := p.lastContact
	timeout := p.leaseTimeoutLocked()
	p.mu.Unlock()

	switch {
	case last.IsZero():
		// Never been in contact: keep introducing ourselves.
		p.join()
	case time.Since(last) > timeout:
		p.met.leaseState.Set(LeaseLapsed)
		p.log.Warn("lease on primary lapsed; promoting",
			"since_contact", time.Since(last).Round(time.Millisecond))
		p.promote()
	case time.Since(last) > 2*p.cfg.Interval:
		// Quiet link: try to re-dial and re-join before the lease runs out.
		if addr := p.currentPeerAddr(); addr != "" {
			if _, err := p.node.ConnectPeer(addr); err == nil {
				p.join()
			}
		}
	}
}

func (p *Peer) currentPeerAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.peerAddr != "" {
		return p.peerAddr
	}
	return p.cfg.PeerAddr
}

// promote turns this standby into the primary: bump and persist the epoch,
// re-open the replica store through the normal recovery path, hand it to
// the serving layer, and announce ownership on the overlay.
func (p *Peer) promote() {
	p.mu.Lock()
	if p.role != store.RoleStandby {
		p.mu.Unlock()
		return
	}
	oldStore := p.st
	exPrimaryID := p.peerID
	exPrimaryAddr := p.peerAddr
	p.epoch++
	epoch := p.epoch
	p.role = store.RolePrimary
	p.persistMetaLocked()
	p.mu.Unlock()

	// Seal the replica store so every applied record is on disk, then
	// re-open the directory exactly like a restarted server would: snapshot
	// + tail replay, torn-tail tolerance, orphan requeue — promotion IS a
	// recovery, just on a different machine.
	if oldStore != nil {
		if err := oldStore.Close(); err != nil {
			p.log.Warn("closing replica store before promotion", "err", err)
		}
	}
	st, err := p.openReplicaStore()
	if err != nil {
		p.log.Error("promotion failed: cannot re-open replica store", "err", err)
		p.fail()
		return
	}
	var projects []string
	if p.cfg.Hooks.Promote != nil {
		projects, err = p.cfg.Hooks.Promote(st, epoch)
		if err != nil {
			p.log.Error("promotion hook failed", "err", err)
			st.Close()
			p.fail()
			return
		}
	}

	p.mu.Lock()
	p.st = st
	p.ownStore = false // the serving layer owns it now
	p.peerID = exPrimaryID
	p.peerAddr = exPrimaryAddr
	p.acked = 0
	p.synced = false
	p.shippedSnapSeq = 0
	p.lastContact = time.Time{}
	p.leaseLogged = false
	select {
	case <-p.promoted:
	default:
		close(p.promoted)
	}
	p.mu.Unlock()

	p.met.promotions.Inc()
	p.met.leaseState.Set(LeaseHeld)
	p.log.Info("promoted to primary", "epoch", epoch, "projects", len(projects),
		"fenced_primary", exPrimaryID)

	// Claim ownership loudly: the fenced ex-primary (if back) demotes,
	// workers re-home, clients retarget.
	ann, err := wire.Marshal(wire.Promoted{NodeID: p.node.ID(), Epoch: epoch, Projects: projects})
	if err == nil {
		p.node.NotifyPeers(wire.MsgPromoted, ann, p.requestTimeout())
	}
}

// fail parks the peer after an unrecoverable promotion error. State on disk
// is intact; an operator restart retries the whole sequence.
func (p *Peer) fail() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.role = store.RoleStandby
	p.epoch--
	p.persistMetaLocked()
	p.lastContact = time.Now() // full lease of grace before the next attempt
}

// demote turns a fenced ex-primary into a standby of the node that fenced
// it: tear down the serving side, archive the divergent state directory,
// start a fresh replica directory, and rejoin.
func (p *Peer) demote(newEpoch uint64, newPrimaryID string) {
	p.mu.Lock()
	if p.role != store.RolePrimary {
		p.mu.Unlock()
		return
	}
	p.role = store.RoleStandby
	p.epoch = newEpoch
	oldPeerAddr := p.peerAddr
	p.mu.Unlock()
	p.met.fencings.Inc()
	p.met.leaseState.Set(LeaseFenced)
	p.log.Warn("fenced by a newer primary; demoting to standby",
		"epoch", newEpoch, "new_primary", newPrimaryID)

	if p.cfg.Hooks.Demote != nil {
		if err := p.cfg.Hooks.Demote(newEpoch, newPrimaryID); err != nil {
			p.log.Error("demotion hook failed", "err", err)
		}
	}

	// Our WAL may hold a divergent tail (records acknowledged here but
	// never replicated before the standby promoted). Replaying it on top of
	// the new primary's history would resurrect conflicting state, so the
	// directory is archived for operators and replication restarts from a
	// clean slate + full resync.
	if err := archiveDir(p.cfg.Dir, newEpoch); err != nil {
		p.log.Error("archiving fenced state directory", "err", err)
	}
	st, err := p.openReplicaStore()
	if err != nil {
		p.log.Error("demotion failed: cannot open fresh replica store", "err", err)
		return
	}

	p.mu.Lock()
	p.st = st
	p.ownStore = true
	p.peerID = newPrimaryID
	p.peerAddr = oldPeerAddr // the fencer is our old standby: same transport address
	p.acked = 0
	p.synced = false
	p.lastContact = time.Time{} // lease re-arms on first contact
	p.persistMetaLocked()
	select {
	case <-p.demoted:
	default:
		close(p.demoted)
	}
	p.mu.Unlock()
	p.join()
}

// archiveDir renames a fenced primary's state directory out of the way so
// the evidence of the divergent tail survives for operators.
func archiveDir(dir string, epoch uint64) error {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil
	}
	base := fmt.Sprintf("%s.fenced-e%d", dir, epoch)
	target := base
	for i := 2; ; i++ {
		if _, err := os.Stat(target); os.IsNotExist(err) {
			break
		}
		target = fmt.Sprintf("%s-%d", base, i)
	}
	return os.Rename(dir, target)
}

func (p *Peer) persistMetaLocked() {
	meta := &store.ReplicaMeta{
		Epoch:    p.epoch,
		Role:     p.role,
		PeerID:   p.peerID,
		PeerAddr: p.peerAddr,
	}
	if err := store.SaveReplicaMeta(p.cfg.Dir, meta); err != nil {
		p.log.Error("persisting replica metadata", "err", err)
	}
}

// --- overlay handlers ---

// handleJoin registers (or re-registers) a standby. Only a primary accepts.
func (p *Peer) handleJoin(from string, payload []byte) ([]byte, error) {
	var join wire.ReplJoin
	if err := wire.Unmarshal(payload, &join); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ack := wire.ReplAck{ResponderID: p.node.ID(), Epoch: p.epoch}
	switch {
	case p.role != store.RolePrimary:
		ack.Refused = true
		ack.Reason = "not a primary"
	case join.Epoch > p.epoch:
		ack.Refused = true
		ack.Reason = "joining standby has a newer epoch"
	default:
		p.peerID = join.StandbyID
		if join.Addr != "" {
			p.peerAddr = join.Addr
		}
		p.acked = join.AppliedSeq
		p.synced = true
		p.lastContact = time.Now()
		p.leaseLogged = false
		p.shippedSnapSeq = 0
		p.persistMetaLocked()
		ack.AppliedSeq = join.AppliedSeq
		p.met.leaseState.Set(LeaseHeld)
		p.log.Info("standby joined", "standby", join.StandbyID, "frontier", join.AppliedSeq)
	}
	return wire.Marshal(ack)
}

// handleReplicate applies a batch (standby) or detects a fencing conflict
// (primary receiving another primary's batches).
func (p *Peer) handleReplicate(from string, payload []byte) ([]byte, error) {
	var batch wire.ReplBatch
	if err := wire.Unmarshal(payload, &batch); err != nil {
		return nil, err
	}
	p.met.batchesRx.Inc()

	p.mu.Lock()
	if p.role == store.RolePrimary {
		ack := wire.ReplAck{ResponderID: p.node.ID(), Epoch: p.epoch, Refused: true}
		if batch.Epoch > p.epoch {
			// The peer promoted while we were away: we are fenced. The run
			// loop performs the demotion; refuse batches until it has.
			ack.Reason = "fenced; demoting"
			if p.pendingDemote == nil || batch.Epoch > p.pendingDemote.epoch {
				p.pendingDemote = &demotion{epoch: batch.Epoch, newPrimary: batch.PrimaryID}
			}
		} else {
			// A stale primary is still shipping: fence it.
			ack.Reason = "fenced: stale epoch"
		}
		p.mu.Unlock()
		return wire.Marshal(ack)
	}

	// Standby path.
	ack := wire.ReplAck{ResponderID: p.node.ID(), Epoch: p.epoch}
	if batch.Epoch < p.epoch {
		ack.Refused = true
		ack.Reason = "fenced: stale epoch"
		ack.AppliedSeq = p.st.LastSeq()
		p.mu.Unlock()
		return wire.Marshal(ack)
	}
	if batch.Epoch > p.epoch {
		p.epoch = batch.Epoch
		ack.Epoch = p.epoch
		p.persistMetaLocked()
	}
	if batch.PrimaryID != "" && batch.PrimaryID != p.peerID {
		// Follow the current epoch's primary (e.g. roles swapped around us).
		p.peerID = batch.PrimaryID
		p.persistMetaLocked()
	}
	if ms := batch.LeaseTimeoutMillis; ms > 0 {
		p.leaseTimeout = time.Duration(ms) * time.Millisecond
	}
	st := p.st

	if batch.Snapshot != nil {
		if _, err := st.InstallSnapshot(batch.Snapshot); err != nil {
			ack.Refused = true
			ack.Reason = fmt.Sprintf("snapshot install: %v", err)
			ack.AppliedSeq = st.LastSeq()
			p.mu.Unlock()
			return wire.Marshal(ack)
		}
	}
	if batch.Count > 0 {
		var recs []store.Record
		if err := wire.Unmarshal(batch.Records, &recs); err != nil {
			ack.Refused = true
			ack.Reason = fmt.Sprintf("undecodable records: %v", err)
			ack.AppliedSeq = st.LastSeq()
			p.mu.Unlock()
			return wire.Marshal(ack)
		}
		n, err := st.AppendReplicatedBatch(recs)
		if n > 0 {
			p.met.appliedRec.Add(uint64(n))
		}
		if err != nil {
			ack.Refused = true
			if errors.Is(err, store.ErrReplicaGap) {
				ack.Reason = "gap"
			} else {
				ack.Reason = err.Error()
			}
			ack.AppliedSeq = st.LastSeq()
			p.mu.Unlock()
			return wire.Marshal(ack)
		}
	}
	p.lastContact = time.Now()
	ack.AppliedSeq = st.LastSeq()
	p.mu.Unlock()
	p.met.leaseState.Set(LeaseHeld)
	return wire.Marshal(ack)
}

// handlePromoted reacts to an ownership announcement: a primary with a
// lower epoch schedules its own demotion; a standby adopts the new primary.
func (p *Peer) handlePromoted(from string, payload []byte) ([]byte, error) {
	var ann wire.Promoted
	if err := wire.Unmarshal(payload, &ann); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ann.Epoch <= p.epoch {
		return []byte{}, nil // stale or our own echo
	}
	switch p.role {
	case store.RolePrimary:
		if p.pendingDemote == nil || ann.Epoch > p.pendingDemote.epoch {
			p.pendingDemote = &demotion{epoch: ann.Epoch, newPrimary: ann.NodeID}
		}
	case store.RoleStandby:
		p.epoch = ann.Epoch
		p.peerID = ann.NodeID
		p.persistMetaLocked()
	}
	return []byte{}, nil
}
