package replica

import (
	"path/filepath"
	"testing"
	"time"

	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/store"
)

// testPair wires a primary and a standby over an in-memory network.
type testPair struct {
	net            *overlay.MemNetwork
	primaryNode    *overlay.Node
	standbyNode    *overlay.Node
	primaryStore   *store.Store
	primary        *Peer
	standby        *Peer
	primaryDir     string
	standbyDir     string
	interval       time.Duration
	leaseTimeout   time.Duration
	promoteCalls   chan uint64
	promotedStores chan *store.Store
}

func newTestPair(t *testing.T, hooks bool) *testPair {
	t.Helper()
	tp := &testPair{
		net:            overlay.NewMemNetwork(),
		primaryDir:     t.TempDir(),
		standbyDir:     t.TempDir(),
		interval:       10 * time.Millisecond,
		leaseTimeout:   120 * time.Millisecond,
		promoteCalls:   make(chan uint64, 1),
		promotedStores: make(chan *store.Store, 1),
	}
	tp.primaryNode = overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), tp.net.Transport())
	tp.standbyNode = overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), tp.net.Transport())
	if err := tp.primaryNode.Listen("primary"); err != nil {
		t.Fatal(err)
	}
	if err := tp.standbyNode.Listen("standby"); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.standbyNode.ConnectPeer("primary"); err != nil {
		t.Fatal(err)
	}

	var err error
	tp.primaryStore, err = store.Open(store.Options{Dir: tp.primaryDir, NoSync: true, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}

	tp.primary, err = NewPeer(tp.primaryNode, tp.primaryStore, Config{
		Dir:          tp.primaryDir,
		Role:         store.RolePrimary,
		Interval:     tp.interval,
		LeaseTimeout: tp.leaseTimeout,
		StoreOptions: store.Options{NoSync: true},
		Obs:          obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}

	scfg := Config{
		Dir:          tp.standbyDir,
		Role:         store.RoleStandby,
		PeerID:       tp.primaryNode.ID(),
		PeerAddr:     "primary",
		SelfAddr:     "standby",
		Interval:     tp.interval,
		LeaseTimeout: tp.leaseTimeout,
		StoreOptions: store.Options{NoSync: true},
		Obs:          obs.New(),
	}
	if hooks {
		scfg.Hooks.Promote = func(st *store.Store, epoch uint64) ([]string, error) {
			tp.promoteCalls <- epoch
			tp.promotedStores <- st
			return []string{"proj"}, nil
		}
	}
	tp.standby, err = NewPeer(tp.standbyNode, nil, scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		tp.primary.Close()
		tp.standby.Close()
		tp.primaryNode.Close()
		tp.standbyNode.Close()
		tp.primaryStore.Close()
	})
	return tp
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func appendRecords(t *testing.T, s *store.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(store.Record{Type: store.RecCommandQueued,
			Project: "proj", Command: "cmd", Data: []byte("payload")}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecordsReachStandby(t *testing.T) {
	tp := newTestPair(t, false)
	appendRecords(t, tp.primaryStore, 20)
	waitFor(t, 5*time.Second, "standby to apply 20 records", func() bool {
		return tp.standby.AckedSeq() == 20
	})
	// The replica directory recovers to the same record tail.
	rec, err := store.ReadAll(tp.standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 20 || rec.Records[19].Seq != 20 {
		t.Fatalf("replica holds %d records", len(rec.Records))
	}
	if rec.Gap != "" {
		t.Fatalf("replica gap: %s", rec.Gap)
	}
}

func TestSnapshotBaselineCompactsStandby(t *testing.T) {
	tp := newTestPair(t, false)
	appendRecords(t, tp.primaryStore, 30)
	waitFor(t, 5*time.Second, "standby caught up", func() bool {
		return tp.standby.AckedSeq() == 30
	})
	// Primary snapshots; the baseline must reach the standby and compact
	// its replicated WAL.
	idx, last, err := tp.primaryStore.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.primaryStore.WriteSnapshot(idx, last, &store.Snapshot{
		Projects: []store.ProjectSnap{{Name: "proj"}}}); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, tp.primaryStore, 5)
	waitFor(t, 5*time.Second, "standby to hold the baseline", func() bool {
		insp, err := store.Inspect(tp.standbyDir)
		return err == nil && insp.Baseline > 0 && insp.LastSeq == 35
	})
}

func TestLateJoinResyncsThroughSnapshot(t *testing.T) {
	// Records compacted before the standby ever joined must arrive via a
	// snapshot baseline, not a gap.
	net := overlay.NewMemNetwork()
	pNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := pNode.Listen("primary"); err != nil {
		t.Fatal(err)
	}
	pDir := t.TempDir()
	ps, err := store.Open(store.Options{Dir: pDir, NoSync: true, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	appendRecords(t, ps, 10)
	idx, last, err := ps.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.WriteSnapshot(idx, last, &store.Snapshot{
		Projects: []store.ProjectSnap{{Name: "proj"}}}); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, ps, 4)

	pp, err := NewPeer(pNode, ps, Config{
		Dir: pDir, Role: store.RolePrimary,
		Interval: 10 * time.Millisecond, LeaseTimeout: 120 * time.Millisecond,
		Obs: obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()

	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("standby"); err != nil {
		t.Fatal(err)
	}
	if _, err := sNode.ConnectPeer("primary"); err != nil {
		t.Fatal(err)
	}
	sDir := t.TempDir()
	sp, err := NewPeer(sNode, nil, Config{
		Dir: sDir, Role: store.RoleStandby,
		PeerID: pNode.ID(), PeerAddr: "primary", SelfAddr: "standby",
		Interval: 10 * time.Millisecond, LeaseTimeout: 120 * time.Millisecond,
		StoreOptions: store.Options{NoSync: true},
		Obs:          obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	defer sNode.Close()
	defer pNode.Close()

	waitFor(t, 5*time.Second, "late joiner to catch up", func() bool {
		return sp.AckedSeq() == 14
	})
	rec, err := store.ReadAll(sDir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.LastSeq != 10 {
		t.Fatalf("standby baseline = %+v", rec.Snapshot)
	}
	if rec.Gap != "" {
		t.Fatalf("standby gap: %s", rec.Gap)
	}
}

func TestLeaseLapsePromotesStandby(t *testing.T) {
	tp := newTestPair(t, true)
	appendRecords(t, tp.primaryStore, 10)
	waitFor(t, 5*time.Second, "standby caught up", func() bool {
		return tp.standby.AckedSeq() == 10
	})

	// Hard-kill the primary: node and store go away without ceremony.
	killed := time.Now()
	tp.primaryNode.Close()
	tp.primary.Close()

	select {
	case <-tp.standby.Promoted():
	case <-time.After(10 * tp.leaseTimeout):
		t.Fatal("standby did not promote after lease lapse")
	}
	if took := time.Since(killed); took > 5*tp.leaseTimeout {
		t.Errorf("promotion took %v, want within a few lease timeouts (%v)", took, tp.leaseTimeout)
	}
	epoch := <-tp.promoteCalls
	if epoch != 2 {
		t.Errorf("promotion epoch = %d, want 2", epoch)
	}
	st := <-tp.promotedStores
	defer st.Close()
	if st.Recovered() == nil || len(st.Recovered().Records) != 10 {
		t.Errorf("promoted store recovered %d records, want 10",
			len(st.Recovered().Records))
	}
	if tp.standby.Role() != store.RolePrimary {
		t.Errorf("standby role = %s after promotion", tp.standby.Role())
	}

	// The promotion is durable: the meta file says primary, epoch 2.
	meta, err := store.LoadReplicaMeta(tp.standbyDir)
	if err != nil || meta == nil {
		t.Fatalf("replica meta: %+v err=%v", meta, err)
	}
	if meta.Role != store.RolePrimary || meta.Epoch != 2 {
		t.Errorf("persisted meta = %+v", meta)
	}
}

func TestStalePrimaryIsFencedAndDemotes(t *testing.T) {
	tp := newTestPair(t, true)
	appendRecords(t, tp.primaryStore, 10)
	waitFor(t, 5*time.Second, "standby caught up", func() bool {
		return tp.standby.AckedSeq() == 10
	})

	// Partition the primary by killing only its node: the Peer (and its
	// store) stay alive, exactly like a server that lost its network.
	tp.primaryNode.Close()
	select {
	case <-tp.standby.Promoted():
	case <-time.After(10 * tp.leaseTimeout):
		t.Fatal("standby did not promote")
	}
	<-tp.promoteCalls
	st := <-tp.promotedStores
	defer st.Close()

	// The ex-primary comes back: new node, same identity, same state dir.
	// Its meta says "primary, epoch 1, standby = <peer>", so it resumes
	// shipping, is refused with epoch 2, and demotes.
	reborn := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), tp.net.Transport())
	if err := reborn.Listen("primary"); err != nil {
		t.Fatal(err)
	}
	if _, err := reborn.ConnectPeer("standby"); err != nil {
		t.Fatal(err)
	}
	demoteCh := make(chan uint64, 1)
	p2, err := NewPeer(reborn, tp.primaryStore, Config{
		Dir:          tp.primaryDir,
		Role:         store.RolePrimary,
		Interval:     tp.interval,
		LeaseTimeout: tp.leaseTimeout,
		StoreOptions: store.Options{NoSync: true},
		Hooks: Hooks{Demote: func(epoch uint64, newPrimary string) error {
			demoteCh <- epoch
			return tp.primaryStore.Close()
		}},
		Obs: obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	defer reborn.Close()

	select {
	case e := <-demoteCh:
		if e != 2 {
			t.Errorf("demotion epoch = %d, want 2", e)
		}
	case <-time.After(10 * tp.leaseTimeout):
		t.Fatal("fenced ex-primary did not demote")
	}
	select {
	case <-p2.Demoted():
	case <-time.After(10 * tp.leaseTimeout):
		t.Fatal("Demoted channel did not close")
	}
	waitFor(t, 5*time.Second, "ex-primary to finish demotion", func() bool {
		return p2.Role() == store.RoleStandby
	})

	// The divergent directory was archived and a fresh replica dir exists.
	matches, err := filepath.Glob(tp.primaryDir + ".fenced-e*")
	if err != nil || len(matches) == 0 {
		t.Errorf("no fenced archive of %s (err=%v)", tp.primaryDir, err)
	}

	// Roles swapped: the promoted node ships to its new standby, which
	// catches up to the full history.
	appendRecords(t, st, 3)
	waitFor(t, 10*time.Second, "demoted node to re-sync as standby", func() bool {
		return p2.AckedSeq() == st.LastSeq()
	})

	// No split-brain: exactly one primary.
	if tp.standby.Role() != store.RolePrimary || p2.Role() != store.RoleStandby {
		t.Errorf("roles: standby=%s exPrimary=%s", tp.standby.Role(), p2.Role())
	}
}
