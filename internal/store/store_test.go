package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"copernicus/internal/obs"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{Dir: t.TempDir(), NoSync: true, Obs: obs.New()}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func appendN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Append(Record{Type: RecCommandQueued, Project: "proj",
			Command: "cmd", Data: []byte("payload")}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestEmptyDirRecoversEmpty(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()
	rec := s.Recovered()
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Torn != "" {
		t.Fatalf("fresh dir should recover empty, got %+v", rec)
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 10)
	if err := s.Append(Record{Type: RecGeneration, Project: "proj",
		Generation: 3, Note: "gen advance"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.Torn != "" {
		t.Fatalf("unexpected torn tail: %s", rec.Torn)
	}
	if len(rec.Records) != 11 {
		t.Fatalf("recovered %d records, want 11", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has Seq %d, want %d", i, r.Seq, i+1)
		}
	}
	last := rec.Records[10]
	if last.Type != RecGeneration || last.Generation != 3 || last.Note != "gen advance" {
		t.Fatalf("last record corrupted: %+v", last)
	}
	// Sequence numbering continues across restarts.
	if err := s2.Append(Record{Type: RecResult}); err != nil {
		t.Fatal(err)
	}
	s2.mu.Lock()
	next := s2.nextSeq
	s2.mu.Unlock()
	if next != 13 {
		t.Fatalf("nextSeq after restart append = %d, want 13", next)
	}
}

// TestTornTailEveryOffset truncates the segment at every possible length
// and checks recovery keeps exactly the fully-written prefix.
func TestTornTailEveryOffset(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 5)
	s.Close()

	segs, _, err := scanDir(opts.Dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("scanDir: %v (%d segs)", err, len(segs))
	}
	seg := segs[0].path
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: magic, then 5 equal frames.
	frameLen := (len(full) - len(segMagic)) / 5

	for cut := len(segMagic); cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, segs[0].index), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, _, err := loadDir(dir)
		if err != nil {
			t.Fatalf("cut=%d: loadDir: %v", cut, err)
		}
		wantComplete := (cut - len(segMagic)) / frameLen
		if len(rec.Records) != wantComplete {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), wantComplete)
		}
		if cut < len(full) && rec.Torn == "" && (cut-len(segMagic))%frameLen != 0 {
			t.Fatalf("cut=%d: mid-frame truncation not reported as torn", cut)
		}
	}
}

func TestCorruptMiddleByteStopsReplay(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 4)
	s.Close()

	segs, _, _ := scanDir(opts.Dir)
	data, _ := os.ReadFile(segs[0].path)
	frameLen := (len(data) - len(segMagic)) / 4
	// Flip a payload byte inside the third frame.
	data[len(segMagic)+2*frameLen+10] ^= 0xFF
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, _, err := loadDir(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replay past a CRC failure: got %d records, want 2", len(rec.Records))
	}
	if rec.Torn == "" {
		t.Fatal("corruption not reported")
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	opts := testOptions(t)
	opts.SnapshotEvery = 4
	s := mustOpen(t, opts)
	appendN(t, s, 4)
	if !s.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot should fire after SnapshotEvery appends")
	}
	idx, last, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if last != 4 {
		t.Fatalf("rotate-time lastSeq = %d, want 4", last)
	}
	snap := &Snapshot{Projects: []ProjectSnap{{Name: "proj", Controller: "msm", Generation: 2}}}
	if err := s.WriteSnapshot(idx, last, snap); err != nil {
		t.Fatal(err)
	}
	if s.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot should reset after rotation")
	}
	// Post-snapshot records form the replay tail.
	appendN(t, s, 3)
	s.Close()

	// Compaction removed the pre-snapshot segment.
	segs, snaps, _ := scanDir(opts.Dir)
	for _, f := range segs {
		if f.index < idx {
			t.Fatalf("segment %d not compacted away", f.index)
		}
	}
	if len(snaps) != 1 || snaps[0].index != idx {
		t.Fatalf("want exactly snapshot %d, got %+v", idx, snaps)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.Snapshot == nil {
		t.Fatal("snapshot not recovered")
	}
	if rec.Snapshot.LastSeq != 4 {
		t.Fatalf("snapshot LastSeq = %d, want 4", rec.Snapshot.LastSeq)
	}
	if got := rec.Snapshot.Projects[0]; got.Name != "proj" || got.Generation != 2 {
		t.Fatalf("snapshot project corrupted: %+v", got)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("replay tail %d records, want 3", len(rec.Records))
	}
	if rec.Records[0].Seq != 5 {
		t.Fatalf("tail starts at Seq %d, want 5", rec.Records[0].Seq)
	}
}

func TestSnapshotWithoutWALSegments(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 2)
	idx, last, _ := s.Rotate()
	if err := s.WriteSnapshot(idx, last, &Snapshot{Projects: []ProjectSnap{{Name: "p"}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate "snapshot present but WAL missing": delete every segment.
	segs, _, _ := scanDir(opts.Dir)
	for _, f := range segs {
		os.Remove(f.path)
	}
	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.Snapshot == nil || rec.Snapshot.Projects[0].Name != "p" {
		t.Fatalf("snapshot alone should recover, got %+v", rec)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("no WAL means no tail, got %d records", len(rec.Records))
	}
	// New appends must still work and not collide with snapshot seqs.
	if err := s2.Append(Record{Type: RecResult}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 2)
	idx1, last1, _ := s.Rotate()
	if err := s.WriteSnapshot(idx1, last1, &Snapshot{Projects: []ProjectSnap{{Name: "old"}}}); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)
	idx2, last2, _ := s.Rotate()
	if err := s.WriteSnapshot(idx2, last2, &Snapshot{Projects: []ProjectSnap{{Name: "new"}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt the newest snapshot; recovery must fall back to the older
	// one... but compaction already deleted it, so re-create the scenario:
	// corrupt the only snapshot and expect replay-from-records instead.
	_, snaps, _ := scanDir(opts.Dir)
	data, _ := os.ReadFile(snaps[len(snaps)-1].path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(snaps[len(snaps)-1].path, data, 0o644)

	s2 := mustOpen(t, opts)
	defer s2.Close()
	if s2.Recovered().Snapshot != nil {
		t.Fatal("corrupt snapshot should be rejected")
	}
	// Compaction already deleted the segments the fallback would need, so
	// the recovered state is stale — recovery must say so.
	if s2.Recovered().Gap == "" {
		t.Fatal("stale fallback past compacted segments not flagged as a gap")
	}
}

// TestRecordsDuringCaptureAreReplayed pins the snapshot protocol: the
// snapshot's LastSeq is the rotate-time sequence, so records journaled
// between Rotate and WriteSnapshot — which the captured state may not
// reflect — are replayed at recovery instead of being skipped.
func TestRecordsDuringCaptureAreReplayed(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 3)
	idx, last, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Journaling racing the state capture: the snapshot below does NOT
	// reflect these two records.
	appendN(t, s, 2)
	if err := s.WriteSnapshot(idx, last, &Snapshot{}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, opts)
	defer s2.Close()
	rec := s2.Recovered()
	if rec.Snapshot == nil || rec.Snapshot.LastSeq != 3 {
		t.Fatalf("snapshot LastSeq should be the rotate-time 3, got %+v", rec.Snapshot)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replay tail = %d records, want the 2 journaled during the capture", len(rec.Records))
	}
	if rec.Records[0].Seq != 4 || rec.Records[1].Seq != 5 {
		t.Fatalf("tail seqs %d,%d; want 4,5", rec.Records[0].Seq, rec.Records[1].Seq)
	}
}

// TestAppendsAfterWriteFaultSurviveRecovery pins the poisoned-segment
// rotation: once a write fault may have torn the active segment, later
// acknowledged appends must land in a fresh segment, out of the shadow of
// the corruption, and survive recovery.
func TestAppendsAfterWriteFaultSurviveRecovery(t *testing.T) {
	opts := testOptions(t)
	var fault string
	opts.WriteHook = func(frame []byte) ([]byte, error) {
		switch fault {
		case "error":
			fault = ""
			return nil, errors.New("disk on fire")
		case "short":
			fault = ""
			return frame[:len(frame)/2], nil
		}
		return frame, nil
	}
	s := mustOpen(t, opts)
	appendN(t, s, 2)
	fault = "error"
	if err := s.Append(Record{Type: RecResult}); err == nil {
		t.Fatal("injected error not surfaced")
	}
	appendN(t, s, 2)
	fault = "short"
	if err := s.Append(Record{Type: RecResult}); err == nil {
		t.Fatal("injected short write not surfaced")
	}
	appendN(t, s, 3)
	s.Close()

	s2 := mustOpen(t, Options{Dir: opts.Dir, NoSync: true})
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec.Records) != 7 {
		t.Fatalf("recovered %d records, want all 7 acknowledged ones", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has Seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if rec.Torn == "" {
		t.Fatal("torn frame left by the short write not reported")
	}
}

// TestMissingMiddleSegmentFlagsGap: a hole mid-chain means acknowledged
// records are gone; recovery must flag it rather than silently skipping.
func TestMissingMiddleSegmentFlagsGap(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 1)
	if _, _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1)
	if _, _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 1)
	s.Close()

	segs, _, _ := scanDir(opts.Dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	os.Remove(segs[1].path)

	s2 := mustOpen(t, opts)
	defer s2.Close()
	if s2.Recovered().Gap == "" {
		t.Fatal("missing middle segment not flagged as a gap")
	}
}

func TestWriteHookFaults(t *testing.T) {
	opts := testOptions(t)
	fail := false
	short := false
	opts.WriteHook = func(frame []byte) ([]byte, error) {
		if fail {
			return nil, errors.New("disk on fire")
		}
		if short {
			return frame[:len(frame)/2], nil
		}
		return frame, nil
	}
	s := mustOpen(t, opts)
	appendN(t, s, 2)

	fail = true
	if err := s.Append(Record{Type: RecResult}); err == nil {
		t.Fatal("injected error not surfaced")
	}
	fail = false

	// A short (torn) write leaves a truncated frame on disk; the append
	// must report failure — the record was never durable — and recovery
	// must drop it, preserving the intact prefix.
	short = true
	if err := s.Append(Record{Type: RecResult, Project: "torn"}); err == nil {
		t.Fatal("short write not surfaced as an append error")
	}
	short = false
	s.Close()

	s2 := mustOpen(t, Options{Dir: opts.Dir, NoSync: true, Obs: obs.New()})
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want the 2 intact ones", len(rec.Records))
	}
	if rec.Torn == "" {
		t.Fatal("short write not detected as torn tail")
	}
}

func TestAppendAfterTornTailUsesFreshSegment(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 3)
	s.Close()
	// Tear the tail by truncating mid-record.
	segs, _, _ := scanDir(opts.Dir)
	last := segs[len(segs)-1].path
	info, _ := os.Stat(last)
	os.Truncate(last, info.Size()-3)

	s2 := mustOpen(t, opts)
	if s2.Recovered().Torn == "" {
		t.Fatal("expected torn tail")
	}
	appendN(t, s2, 2)
	s2.Close()

	// The torn segment must be untouched; new records live in a new segment.
	s3 := mustOpen(t, opts)
	defer s3.Close()
	rec := s3.Recovered()
	if len(rec.Records) != 4 { // 2 intact from before + 2 new
		t.Fatalf("recovered %d records, want 4", len(rec.Records))
	}
}

func TestMetricsRecorded(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 3)
	if got := s.met.appends.Value(); got != 3 {
		t.Fatalf("appends counter = %d, want 3", got)
	}
	if s.met.fsyncs.Value() == 0 {
		t.Fatal("fsync batches counter never incremented")
	}
	idx, last, _ := s.Rotate()
	s.WriteSnapshot(idx, last, &Snapshot{})
	if got := s.met.snapshots.Value(); got != 1 {
		t.Fatalf("snapshots counter = %d, want 1", got)
	}
	s.Close()

	s2 := mustOpen(t, opts)
	defer s2.Close()
	if s2.met.recoveries.Value() != 1 {
		t.Fatal("recovery not counted on non-empty dir")
	}
}

func TestInspect(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	appendN(t, s, 2)
	idx, last, _ := s.Rotate()
	s.WriteSnapshot(idx, last, &Snapshot{Projects: []ProjectSnap{{
		Name: "proj", Controller: "msm", State: "running", Generation: 1}}})
	appendN(t, s, 2)
	s.Close()

	insp, err := Inspect(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if !insp.Healthy {
		t.Fatal("clean dir reported unhealthy")
	}
	if insp.Baseline != idx {
		t.Fatalf("baseline %d, want %d", insp.Baseline, idx)
	}
	if len(insp.Snapshots) != 1 || insp.Snapshots[0].Projects[0].Name != "proj" {
		t.Fatalf("snapshot not inspected: %+v", insp.Snapshots)
	}
	// Compaction deleted the pre-snapshot segment, so only the 2
	// post-snapshot records remain inspectable.
	var total int
	for _, seg := range insp.Segments {
		total += len(seg.Records)
		for _, r := range seg.Records {
			if r.Type != RecCommandQueued.String() {
				t.Fatalf("record rendered with wrong type %q", r.Type)
			}
		}
	}
	if total != 2 {
		t.Fatalf("inspected %d records, want 2", total)
	}

	// Corrupting a snapshot flips Healthy.
	_, snaps, _ := scanDir(opts.Dir)
	data, _ := os.ReadFile(snaps[0].path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(snaps[0].path, data, 0o644)
	insp2, err := Inspect(opts.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if insp2.Healthy {
		t.Fatal("corrupt snapshot not flagged")
	}

	if _, err := Inspect(filepath.Join(opts.Dir, "missing")); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	opts := testOptions(t)
	opts.NoSync = false // real fsyncs so group commit actually batches
	s := mustOpen(t, opts)
	defer s.Close()
	const writers, each = 8, 20
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := s.Append(Record{Type: RecResult, Project: "p",
					Command: "c", Worker: "w"}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.met.appends.Value(); got != writers*each {
		t.Fatalf("appends = %d, want %d", got, writers*each)
	}
	// Group commit must have merged at least some appends into shared
	// fsync batches.
	if f := s.met.fsyncs.Value(); f >= writers*each {
		t.Fatalf("no batching: %d fsyncs for %d appends", f, writers*each)
	}
}
