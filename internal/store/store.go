// Package store is the durable-state subsystem of the reproduction: an
// append-only, CRC32C-framed write-ahead log of project lifecycle events
// with group-commit fsync batching, periodic snapshots with log
// truncation, and a recovery path that tolerates a torn final record.
//
// The paper's central claim is that the server — not the worker — owns the
// ensemble: projects, the command queue and adaptive-controller state all
// live server-side. This package makes that ownership survive a server
// crash: every state transition is journaled before it is acknowledged, a
// snapshot taken at segment rotation bounds replay time, and on restart
// the server replays snapshot + tail to resume MSM generations exactly
// where they left off (internal/server/persist.go drives the replay).
//
// On-disk layout inside the state directory:
//
//	wal-%016d.log    append-only segments of framed records
//	snap-%016d.snap  snapshot covering all segments with a lower index
//
// Each WAL record is framed as [4-byte length][4-byte CRC32C][gob payload];
// each segment opens with an 8-byte magic. A crash mid-append leaves a torn
// final frame, which recovery detects by CRC and discards — the write was
// never acknowledged, so discarding it is correct. Snapshots are written
// through atomicfile, so a torn snapshot cannot exist.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"copernicus/internal/obs"
	"copernicus/internal/store/atomicfile"
)

// segMagic opens every WAL segment; snapMagic opens every snapshot file.
// The trailing digit is the format version.
var (
	segMagic  = []byte("CPCWAL01")
	snapMagic = []byte("CPCSNAP1")
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum used by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes bounds a single WAL frame; larger lengths are treated as
// corruption rather than allocated blindly (mirrors wire.MaxFrameBytes).
const maxRecordBytes = 1 << 30

// Options configures a Store. Dir is required.
type Options struct {
	// Dir is the state directory; created if missing.
	Dir string
	// FsyncInterval is the group-commit window: after the first append of a
	// batch, the syncer waits this long for more appends to pile on before
	// issuing one fsync for all of them. 0 means fsync as soon as the
	// syncer gets the batch (still group commit: appends that arrive while
	// a previous fsync is in flight share the next one).
	FsyncInterval time.Duration
	// SnapshotEvery is the number of appended records between snapshot
	// hints (ShouldSnapshot). 0 disables the hint; snapshots then happen
	// only when the owner asks. Default 512 when negative.
	SnapshotEvery int
	// NoSync skips fsync entirely (unit tests on throwaway dirs).
	NoSync bool
	// WriteHook, when set, intercepts every WAL frame just before it is
	// written — the chaos harness's entry point for injecting short writes
	// and I/O errors. Returning a shortened slice simulates a torn write;
	// returning an error simulates a failing disk.
	WriteHook func(frame []byte) ([]byte, error)
	// Obs receives the copernicus_store_* metrics; nil selects a silent
	// bundle.
	Obs *obs.Obs
}

func (o *Options) fill() {
	if o.SnapshotEvery < 0 {
		o.SnapshotEvery = 512
	}
	if o.Obs == nil {
		o.Obs = obs.New()
	}
}

// Recovered is what Open found on disk: the newest readable snapshot and
// the WAL tail to replay on top of it.
type Recovered struct {
	// Snapshot is the recovery baseline; nil when no usable snapshot exists
	// (replay then starts from an empty server).
	Snapshot *Snapshot
	// Records is the tail to replay, in append order.
	Records []Record
	// Torn describes a discarded torn final record ("" when the log ended
	// cleanly).
	Torn string
	// Gap describes a hole in the segment chain the chosen baseline needs
	// ("" when the chain is intact). Non-empty means compaction (or manual
	// deletion) removed segments that recovery could not do without —
	// typically because the newest snapshot failed to decode and recovery
	// fell back past it — so the recovered state may be stale.
	Gap string
	// Segments is how many WAL segments were read.
	Segments int
}

// Store is a durable write-ahead log plus snapshot manager. All methods
// are safe for concurrent use.
type Store struct {
	opts Options
	log  *obs.Logger
	met  storeMetrics

	mu        sync.Mutex
	seg       *os.File
	segIndex  uint64
	segBytes  int64
	nextSeq   uint64
	sinceSnap int
	pending   []chan error
	closed    bool
	// segFirst maps segment index → the first sequence number appended (or
	// appendable) in that segment, for segments created by this process. It
	// lets replication shipping skip whole segments and lets a replica pick
	// a safe local baseline when installing a shipped snapshot.
	segFirst map[uint64]uint64
	// poisoned marks the active segment as possibly ending in a torn or
	// partial frame (a failed or shortened write). readRecords stops a
	// segment at the first corrupt frame, so appending past the damage
	// would silently lose every later record at recovery; the next append
	// rotates to a fresh segment first.
	poisoned bool

	recovered *Recovered

	// latMu guards latEWMA, the moving average behind AppendLatency. A
	// separate mutex so readers (the scheduler's Match hot path) never
	// contend with an in-flight fsync holding s.mu.
	latMu   sync.Mutex
	latEWMA float64

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// storeMetrics are the copernicus_store_* series.
type storeMetrics struct {
	appends     *obs.Counter
	fsyncs      *obs.Counter
	walErrors   *obs.Counter
	snapshots   *obs.Counter
	recoveries  *obs.Counter
	appendWait  *obs.Histogram
	fsyncTime   *obs.Histogram
	recordBytes *obs.Histogram
	snapTime    *obs.Histogram
	recoverySec *obs.Gauge
	replayed    *obs.Gauge
}

// fsyncBuckets resolve sub-millisecond page-cache syncs up to slow disks.
var fsyncBuckets = []float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, .01, .05, .1, .5, 1}

func newStoreMetrics(o *obs.Obs, dir string) storeMetrics {
	l := obs.L("dir", dir)
	m := o.Metrics
	return storeMetrics{
		appends: m.Counter("copernicus_store_wal_appends_total",
			"Records appended to the write-ahead log.", l),
		fsyncs: m.Counter("copernicus_store_wal_fsyncs_total",
			"Group-commit fsync batches issued.", l),
		walErrors: m.Counter("copernicus_store_wal_errors_total",
			"WAL appends that failed at the I/O layer.", l),
		snapshots: m.Counter("copernicus_store_snapshots_total",
			"Snapshots written (each truncates the log).", l),
		recoveries: m.Counter("copernicus_store_recoveries_total",
			"Times a state directory was recovered at startup.", l),
		appendWait: m.Histogram("copernicus_store_wal_append_seconds",
			"Append latency including the group-commit fsync wait.",
			fsyncBuckets, l),
		fsyncTime: m.Histogram("copernicus_store_wal_fsync_seconds",
			"Latency of each group-commit fsync.", fsyncBuckets, l),
		recordBytes: m.Histogram("copernicus_store_wal_record_bytes",
			"Size of framed WAL records.", obs.SizeBuckets(), l),
		snapTime: m.Histogram("copernicus_store_snapshot_seconds",
			"Wall time of snapshot writes.", nil, l),
		recoverySec: m.Gauge("copernicus_store_recovery_seconds",
			"Wall time of the last startup recovery scan.", l),
		replayed: m.Gauge("copernicus_store_replayed_records",
			"WAL records handed to the last startup replay.", l),
	}
}

// Open loads the state directory (creating it if missing), reads the
// newest valid snapshot and the WAL tail into Recovered, and opens a fresh
// active segment so new appends never extend a possibly-torn file.
func Open(opts Options) (*Store, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", opts.Dir, err)
	}
	s := &Store{
		opts:     opts,
		log:      opts.Obs.Log.Named("store").With("dir", opts.Dir),
		met:      newStoreMetrics(opts.Obs, opts.Dir),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		segFirst: make(map[uint64]uint64),
	}
	start := time.Now()
	rec, maxIndex, err := loadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.recovered = rec
	if rec.Gap != "" {
		s.log.Error("recovered state may be stale: the write-ahead log has a gap",
			"detail", rec.Gap)
	}
	s.met.recoverySec.Set(time.Since(start).Seconds())
	s.met.replayed.Set(float64(len(rec.Records)))
	if rec.Snapshot != nil || len(rec.Records) > 0 {
		s.met.recoveries.Inc()
	}
	s.nextSeq = 1
	if rec.Snapshot != nil && rec.Snapshot.LastSeq >= s.nextSeq {
		s.nextSeq = rec.Snapshot.LastSeq + 1
	}
	if n := len(rec.Records); n > 0 && rec.Records[n-1].Seq >= s.nextSeq {
		s.nextSeq = rec.Records[n-1].Seq + 1
	}
	s.segIndex = maxIndex // rotateLocked moves to maxIndex+1
	if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	s.opts.Obs.Metrics.GaugeFunc("copernicus_store_wal_segment_bytes",
		"Bytes in the active WAL segment.", obs.L("dir", opts.Dir),
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.segBytes)
		})
	s.wg.Add(1)
	go s.syncLoop()
	return s, nil
}

// Recovered returns what Open found on disk. The caller replays it once at
// startup; the slice is not copied.
func (s *Store) Recovered() *Recovered { return s.recovered }

// Dir returns the state directory.
func (s *Store) Dir() string { return s.opts.Dir }

// Append journals one record durably: it frames and writes the record to
// the active segment and blocks until a group-commit fsync covers it. Seq
// and Time are assigned by the store. An error means the record may not be
// durable; the owner decides whether to degrade or abort.
func (s *Store) Append(rec Record) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("store: closed")
	}
	// A previous append left a possibly-torn frame in the active segment;
	// anything written after it would be unreadable at recovery (a segment
	// is only trusted up to its first corrupt frame), so open a fresh
	// segment before this record.
	if s.poisoned {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			s.met.walErrors.Inc()
			return fmt.Errorf("store: rotating away from poisoned segment: %w", err)
		}
	}
	rec.Seq = s.nextSeq
	rec.Time = time.Now().UnixNano()
	frame, err := encodeFrame(&rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if s.opts.WriteHook != nil {
		full := len(frame)
		frame, err = s.opts.WriteHook(frame)
		if err != nil {
			// The fault may have hit after partial bytes reached the file;
			// treat the segment as torn either way.
			s.poisoned = true
			s.mu.Unlock()
			s.met.walErrors.Inc()
			return fmt.Errorf("store: injected write fault: %w", err)
		}
		if len(frame) != full {
			// Injected torn write: put the truncated frame on disk — the
			// image a power cut leaves behind — but report the append as
			// failed, exactly like a real short write from the kernel. The
			// record was never durable; acknowledging it would be a lie.
			n, _ := s.seg.Write(frame)
			s.segBytes += int64(n)
			s.poisoned = true
			s.mu.Unlock()
			s.met.walErrors.Inc()
			return fmt.Errorf("store: injected short write: %d of %d bytes of record %d", len(frame), full, rec.Seq)
		}
	}
	if n, err := s.seg.Write(frame); err != nil || n != len(frame) {
		s.segBytes += int64(n)
		s.poisoned = true
		s.mu.Unlock()
		s.met.walErrors.Inc()
		if err == nil {
			err = io.ErrShortWrite
		}
		return fmt.Errorf("store: appending record %d: %w", rec.Seq, err)
	}
	s.nextSeq++
	s.segBytes += int64(len(frame))
	s.sinceSnap++
	s.met.appends.Inc()
	s.met.recordBytes.Observe(float64(len(frame)))
	done := make(chan error, 1)
	s.pending = append(s.pending, done)
	s.mu.Unlock()

	select {
	case s.kick <- struct{}{}:
	default: // a kick is already queued; the syncer will pick us up
	}
	err = <-done
	elapsed := time.Since(start).Seconds()
	s.met.appendWait.Observe(elapsed)
	s.observeAppendLatency(elapsed)
	if err != nil {
		s.met.walErrors.Inc()
		return fmt.Errorf("store: fsync covering record %d: %w", rec.Seq, err)
	}
	return nil
}

// AppendLatency returns an exponentially-weighted moving average of recent
// Append latencies in seconds, including the group-commit fsync wait. The
// scheduler feeds it into queue.Match as a backpressure signal, so a slow
// WAL disk throttles new assignment instead of growing the in-flight window
// (every assignment costs a journaled record). Zero until the first append.
func (s *Store) AppendLatency() float64 {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	return s.latEWMA
}

// observeAppendLatency folds one append's latency into the EWMA. Alpha 0.2
// reacts to a disk going slow within a handful of appends while smoothing
// over a single unlucky fsync.
func (s *Store) observeAppendLatency(sec float64) {
	s.latMu.Lock()
	if s.latEWMA == 0 {
		s.latEWMA = sec
	} else {
		const alpha = 0.2
		s.latEWMA = alpha*sec + (1-alpha)*s.latEWMA
	}
	s.latMu.Unlock()
}

// syncLoop is the group-commit engine: one fsync per batch of waiters.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		if d := s.opts.FsyncInterval; d > 0 {
			// Let more appends accumulate into this batch.
			select {
			case <-s.stop:
				return
			case <-time.After(d):
			}
		}
		s.mu.Lock()
		s.syncLocked()
		s.mu.Unlock()
	}
}

// syncLocked fsyncs the active segment and releases every pending waiter.
// Called with s.mu held.
func (s *Store) syncLocked() {
	ws := s.pending
	s.pending = nil
	if len(ws) == 0 {
		return
	}
	var err error
	if !s.opts.NoSync {
		t0 := time.Now()
		err = s.seg.Sync()
		s.met.fsyncTime.Observe(time.Since(t0).Seconds())
		if err != nil {
			// Durability of everything in the segment is now unknown;
			// start fresh rather than extending it.
			s.poisoned = true
		}
	}
	s.met.fsyncs.Inc()
	for _, w := range ws {
		w <- err
	}
}

// ShouldSnapshot reports whether enough records have accumulated since the
// last snapshot rotation to warrant a snapshot (Options.SnapshotEvery).
func (s *Store) ShouldSnapshot() bool {
	if s.opts.SnapshotEvery <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap >= s.opts.SnapshotEvery
}

// AppendedSinceRotation reports how many records have been appended since
// the last snapshot rotation. Because a snapshot's LastSeq is fixed at
// rotation, every one of these records lands in the replay tail of the
// next recovery even if a snapshot is being captured right now — which is
// what makes the count useful for reasoning about (and testing) how much
// a crash would replay.
func (s *Store) AppendedSinceRotation() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap
}

// Rotate seals the active segment (fsyncing it and releasing pending
// group-commit waiters) and opens a fresh one, returning the new segment's
// index and the sequence number of the last record appended before the
// rotation. The snapshot protocol is: idx, last := Rotate(); capture
// state; WriteSnapshot(idx, last, snap). Records appended between Rotate
// and the capture land in segment idx with Seq > last and are replayed on
// top of the snapshot at recovery; replay is idempotent, so the overlap
// is harmless. lastSeq must be the rotate-time value, NOT the append
// cursor at capture or write time: a state capture only guarantees to
// reflect records journaled before the rotation, and recovery skips
// replaying anything at or below the snapshot's LastSeq.
func (s *Store) Rotate() (idx, lastSeq uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, errors.New("store: closed")
	}
	if err := s.rotateLocked(); err != nil {
		return 0, 0, err
	}
	// Only a snapshot-protocol rotation resets the hint: rotations that
	// recover from a poisoned segment must not starve ShouldSnapshot.
	s.sinceSnap = 0
	return s.segIndex, s.nextSeq - 1, nil
}

// rotateLocked seals s.seg (if any) and opens segment s.segIndex+1. A
// poisoned segment is sealed best-effort: its tail is torn garbage anyway,
// and refusing to rotate would pin every future append to the damage.
func (s *Store) rotateLocked() error {
	if s.seg != nil {
		s.syncLocked()
		if !s.opts.NoSync {
			if err := s.seg.Sync(); err != nil && !s.poisoned {
				return fmt.Errorf("store: sealing segment %d: %w", s.segIndex, err)
			}
		}
		if err := s.seg.Close(); err != nil && !s.poisoned {
			return fmt.Errorf("store: closing segment %d: %w", s.segIndex, err)
		}
	}
	idx := s.segIndex + 1
	path := segmentPath(s.opts.Dir, idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment %d: %w", idx, err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("store: writing segment header: %w", err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: syncing segment header: %w", err)
		}
		if err := atomicfile.SyncDir(s.opts.Dir); err != nil {
			f.Close()
			return err
		}
	}
	s.seg = f
	s.segIndex = idx
	s.segBytes = int64(len(segMagic))
	s.poisoned = false
	s.segFirst[idx] = s.nextSeq
	return nil
}

// WriteSnapshot durably records snap as the recovery baseline for segment
// index idx, then deletes the WAL segments and snapshots it obsoletes.
// idx and lastSeq are the pair returned by the Rotate call that preceded
// the state capture; stamping a later append cursor instead would make
// recovery skip records the capture never saw.
func (s *Store) WriteSnapshot(idx, lastSeq uint64, snap *Snapshot) error {
	start := time.Now()
	snap.LastSeq = lastSeq
	snap.TakenAt = time.Now().UnixNano()
	blob, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(snapshotPath(s.opts.Dir, idx), blob, 0o644); err != nil {
		return err
	}
	s.met.snapshots.Inc()
	s.met.snapTime.Observe(time.Since(start).Seconds())
	s.compact(idx)
	return nil
}

// compact removes WAL segments and snapshots older than the baseline idx.
func (s *Store) compact(idx uint64) {
	segs, snaps, err := scanDir(s.opts.Dir)
	if err != nil {
		s.log.Warn("compaction scan failed", "err", err)
		return
	}
	removed := 0
	for _, f := range segs {
		if f.index < idx {
			if err := os.Remove(f.path); err == nil {
				removed++
			}
		}
	}
	for _, f := range snaps {
		if f.index < idx {
			os.Remove(f.path)
		}
	}
	if removed > 0 {
		s.log.Info("compacted write-ahead log", "segments_removed", removed, "baseline", idx)
	}
	_ = atomicfile.SyncDir(s.opts.Dir)
	s.mu.Lock()
	for i := range s.segFirst {
		if i < idx {
			delete(s.segFirst, i)
		}
	}
	s.mu.Unlock()
}

// Close flushes and fsyncs the active segment and stops the syncer. It
// does NOT write a snapshot: a process killed before Close recovers
// identically, which is the whole point.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLocked()
	var err error
	if !s.opts.NoSync {
		err = s.seg.Sync()
	}
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- framing ---

// encodeFrame renders one record as [len][crc32c][gob payload].
func encodeFrame(rec *Record) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	payload := body.Bytes()
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	return frame, nil
}

// readRecords decodes every intact frame from r. A short or corrupt final
// frame sets torn and stops; it is not an error (an unacknowledged append
// interrupted by a crash looks exactly like this).
func readRecords(r io.Reader) (recs []Record, torn string) {
	var hdr [8]byte
	offset := int64(len(segMagic))
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return recs, ""
			}
			return recs, fmt.Sprintf("torn frame header at offset %d: %v", offset, err)
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecordBytes {
			return recs, fmt.Sprintf("implausible frame length %d at offset %d", n, offset)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, fmt.Sprintf("torn frame body at offset %d: %v", offset, err)
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return recs, fmt.Sprintf("CRC mismatch at offset %d: got %08x want %08x", offset, got, want)
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return recs, fmt.Sprintf("undecodable record at offset %d: %v", offset, err)
		}
		recs = append(recs, rec)
		offset += int64(8 + n)
	}
}

// encodeSnapshot renders a snapshot file: magic + [len][crc32c][gob].
func encodeSnapshot(snap *Snapshot) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(snap); err != nil {
		return nil, fmt.Errorf("store: encoding snapshot: %w", err)
	}
	payload := body.Bytes()
	out := make([]byte, len(snapMagic)+8+len(payload))
	copy(out, snapMagic)
	binary.BigEndian.PutUint32(out[len(snapMagic):], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[len(snapMagic)+4:], crc32.Checksum(payload, castagnoli))
	copy(out[len(snapMagic)+8:], payload)
	return out, nil
}

// decodeSnapshot parses and CRC-verifies a snapshot file.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+8 || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, errors.New("store: not a snapshot file")
	}
	n := binary.BigEndian.Uint32(data[len(snapMagic):])
	want := binary.BigEndian.Uint32(data[len(snapMagic)+4:])
	payload := data[len(snapMagic)+8:]
	if uint32(len(payload)) != n {
		return nil, fmt.Errorf("store: snapshot length %d, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("store: snapshot CRC mismatch: got %08x want %08x", got, want)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	return &snap, nil
}

// --- directory scanning and recovery ---

type dirFile struct {
	path  string
	index uint64
}

func segmentPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", idx))
}

func snapshotPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", idx))
}

// scanDir lists WAL segments and snapshots sorted by ascending index.
func scanDir(dir string) (segs, snaps []dirFile, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		var idx uint64
		name := e.Name()
		switch {
		case len(name) == len("wal-0000000000000000.log") &&
			name[:4] == "wal-" && filepath.Ext(name) == ".log":
			if _, err := fmt.Sscanf(name, "wal-%016d.log", &idx); err == nil {
				segs = append(segs, dirFile{filepath.Join(dir, name), idx})
			}
		case len(name) == len("snap-0000000000000000.snap") &&
			name[:5] == "snap-" && filepath.Ext(name) == ".snap":
			if _, err := fmt.Sscanf(name, "snap-%016d.snap", &idx); err == nil {
				snaps = append(snaps, dirFile{filepath.Join(dir, name), idx})
			}
		}
	}
	byIndex := func(fs []dirFile) func(i, j int) bool {
		return func(i, j int) bool { return fs[i].index < fs[j].index }
	}
	sort.Slice(segs, byIndex(segs))
	sort.Slice(snaps, byIndex(snaps))
	return segs, snaps, nil
}

// readSegmentFile opens and validates one segment, returning its records
// and a torn-tail description.
func readSegmentFile(path string) ([]Record, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, fmt.Sprintf("segment shorter than its magic: %v", err), nil
	}
	if !bytes.Equal(magic, segMagic) {
		return nil, "", fmt.Errorf("store: %s is not a WAL segment", path)
	}
	recs, torn := readRecords(f)
	return recs, torn, nil
}

// loadDir builds the Recovered image: newest valid snapshot, then every
// record from segments at or after the snapshot's baseline index. A torn
// record ends replay of its own segment — frame boundaries after a tear
// are unrecoverable — but later segments are trusted again: recovery
// always rotates to a fresh segment before appending, so anything in a
// higher-indexed file was acknowledged after the tear was discarded.
func loadDir(dir string) (*Recovered, uint64, error) {
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, 0, err
	}
	rec := &Recovered{}
	var maxIndex uint64
	for _, f := range segs {
		if f.index > maxIndex {
			maxIndex = f.index
		}
	}
	for _, f := range snaps {
		if f.index > maxIndex {
			maxIndex = f.index
		}
	}

	// Newest snapshot that decodes and passes its CRC wins; older ones are
	// fallbacks in case a compaction raced a crash.
	baseline := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(snaps[i].path)
		if err != nil {
			continue
		}
		snap, err := decodeSnapshot(data)
		if err != nil {
			continue
		}
		rec.Snapshot = snap
		baseline = snaps[i].index
		break
	}

	// Audit the chain of segments the chosen baseline needs before reading
	// it. Segment indexes are assigned contiguously, and compact() deletes
	// everything below the *newest* snapshot — so if recovery fell back
	// past that snapshot (it failed to decode), the segments its fallback
	// baseline needs may already be gone. Restoring through a hole would
	// silently produce stale state; Gap makes it loud instead.
	var tail []dirFile
	for _, f := range segs {
		if f.index >= baseline {
			tail = append(tail, f)
		}
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].index != tail[i-1].index+1 {
			rec.Gap = fmt.Sprintf("WAL segments %d..%d are missing",
				tail[i-1].index+1, tail[i].index-1)
		}
	}
	if fellBack := len(snaps) > 0 &&
		(rec.Snapshot == nil || baseline != snaps[len(snaps)-1].index); fellBack {
		// With no usable snapshot, only a chain starting at the very first
		// segment replays full history; with an older one, the chain must
		// start at its own baseline index.
		want := uint64(1)
		if rec.Snapshot != nil {
			want = baseline
		}
		switch {
		case len(tail) == 0:
			rec.Gap = "fell back past the newest snapshot with no WAL segments left to replay"
		case tail[0].index != want:
			rec.Gap = fmt.Sprintf("fell back past the newest snapshot, but WAL segments %d..%d were already compacted away",
				want, tail[0].index-1)
		}
	}

	for _, f := range tail {
		recs, torn, err := readSegmentFile(f.path)
		if err != nil {
			return nil, 0, err
		}
		rec.Segments++
		// Skip records the snapshot already reflects (the Rotate →
		// capture window) — replay is idempotent anyway, but this keeps
		// the replayed-records gauge honest.
		for _, r := range recs {
			if rec.Snapshot != nil && r.Seq <= rec.Snapshot.LastSeq {
				continue
			}
			rec.Records = append(rec.Records, r)
		}
		if torn != "" {
			rec.Torn = fmt.Sprintf("%s: %s", filepath.Base(f.path), torn)
		}
	}
	return rec, maxIndex, nil
}
