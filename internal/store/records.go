package store

import (
	"fmt"

	"copernicus/internal/wire"
)

// RecordType enumerates the project-lifecycle events the WAL journals.
// Values are part of the on-disk format; never renumber, only append.
type RecordType uint8

const (
	// RecProjectSubmitted creates a project; Data holds the controller
	// parameter blob.
	RecProjectSubmitted RecordType = iota + 1
	// RecCommandQueued registers a command with its project; Data holds the
	// wire.CommandSpec.
	RecCommandQueued
	// RecCommandAssigned marks a command dispatched to a worker.
	RecCommandAssigned
	// RecCheckpoint stores a command's latest partial checkpoint (Data).
	RecCheckpoint
	// RecResult applies a final command result; Data holds the
	// wire.CommandResult.
	RecResult
	// RecCommandRequeued returns a lost worker's command to the queue;
	// Count carries the new retry tally.
	RecCommandRequeued
	// RecCommandFailed fails a command terminally; Note carries the reason.
	RecCommandFailed
	// RecGeneration advances the adaptive controller's generation counter.
	RecGeneration
	// RecProjectFinished completes a project; Data holds the result blob.
	RecProjectFinished
	// RecProjectFailed aborts a project; Note carries the error.
	RecProjectFailed
	// RecTenantQuota records a tenant's weight/quota configuration; Data
	// holds the wire.TenantQuotaUpdate. Replayed so quota changes survive
	// restarts and ship to standbys.
	RecTenantQuota
	// RecCommandPreempted returns a running command to the queue because the
	// fair-share scheduler evicted it at a checkpoint boundary for a starved
	// tenant; Count carries the preemption tally. Distinct from
	// RecCommandRequeued so preemptions never consume failure retries.
	RecCommandPreempted
	// RecFrameChunk advances a command's streamed-frame watermark; Data
	// holds the wire.FrameChunk. Journaled so recovery and standby promotion
	// resume the analysis stream without double-counting frames.
	RecFrameChunk
)

// String returns the record type's stable wire name (used by state inspect).
func (t RecordType) String() string {
	switch t {
	case RecProjectSubmitted:
		return "project_submitted"
	case RecCommandQueued:
		return "command_queued"
	case RecCommandAssigned:
		return "command_assigned"
	case RecCheckpoint:
		return "checkpoint"
	case RecResult:
		return "result"
	case RecCommandRequeued:
		return "command_requeued"
	case RecCommandFailed:
		return "command_failed"
	case RecGeneration:
		return "generation"
	case RecProjectFinished:
		return "project_finished"
	case RecProjectFailed:
		return "project_failed"
	case RecTenantQuota:
		return "tenant_quota"
	case RecCommandPreempted:
		return "command_preempted"
	case RecFrameChunk:
		return "frame_chunk"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// Record is one journaled lifecycle event. The flat shape (typed fields
// plus an opaque Data payload) keeps the gob encoding small, lets the
// inspector render every record without knowing controller internals, and
// gives recovery a single switch to replay.
type Record struct {
	// Seq is the store-assigned monotone sequence number (set by Append).
	Seq uint64
	// Time is the append wall-clock time in Unix nanoseconds (set by Append).
	Time int64
	// Type selects which of the remaining fields are meaningful.
	Type RecordType
	// Project names the project the event belongs to.
	Project string
	// Command is the command ID for command-scoped events.
	Command string
	// Worker is the worker ID for assignment events.
	Worker string
	// Tenant is the owning tenant for tenant-scoped events (project
	// submission, quota updates). Decodes as "" from pre-tenant WALs.
	Tenant string
	// Generation is the new generation for RecGeneration records.
	Generation int
	// Count carries the retry tally for RecCommandRequeued, the preemption
	// tally for RecCommandPreempted, and the project base priority for
	// RecProjectSubmitted.
	Count int
	// Note is free text: controller name on submit, status note on
	// generation advance, failure reason on failure records.
	Note string
	// Data is the event payload (params, spec, result, checkpoint bytes).
	Data []byte
}

// CommandSnap is one command's durable state inside a snapshot.
type CommandSnap struct {
	Spec       wire.CommandSpec
	Status     int // mirrors the server's cmdStatus enum
	Worker     string
	Retries    int
	Checkpoint []byte
	// Streamed is the command's streamed-frame watermark: how many of its
	// output frames the controller has already ingested via frame chunks.
	// Decodes as 0 from pre-streaming snapshots.
	Streamed int
}

// ProjectSnap is one project's durable state inside a snapshot, including
// the controller's serialized state (controller.Durable).
type ProjectSnap struct {
	Name       string
	Controller string
	// Tenant and Priority are the multi-tenant fields; both decode as zero
	// values from pre-tenant snapshots.
	Tenant     string
	Priority   int
	State      string
	Generation int
	Note       string
	FailErr    string
	Result     []byte
	Finished   int
	Failed     int
	Seed       uint64
	CtrlState  []byte
	Commands   []CommandSnap
}

// Snapshot is a full durable image of a server's project state, written at
// WAL rotation so older segments can be deleted.
type Snapshot struct {
	// TakenAt is the capture wall-clock time in Unix nanoseconds.
	TakenAt int64
	// LastSeq is the highest record sequence number the image is
	// *guaranteed* to reflect: the last sequence assigned before the WAL
	// rotation that preceded the capture. Records above it may also be
	// reflected (they raced the capture); recovery replays them anyway,
	// which is safe because replay is idempotent. Skipping is only safe
	// at or below this value.
	LastSeq  uint64
	Projects []ProjectSnap
	// Tenants carries the configured tenant accounts (weights and quotas);
	// nil in pre-tenant snapshots.
	Tenants []wire.TenantStatus
}
