package atomicfile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := WriteFile(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second" {
		t.Fatalf("replacement not visible: %q", got)
	}
	info, _ := os.Stat(path)
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v, want 0600", info.Mode().Perm())
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the target", len(entries))
	}
}

func TestWriteFileMissingDirErrors(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"),
		[]byte("x"), 0o644); err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real dir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing dir should error")
	}
}
