// Package atomicfile writes files so that a crash at any instant leaves
// either the complete new content or the previous state — never a torn
// file. It is the single implementation of the tmp → fsync → rename → dir
// fsync dance used by the worker's result spool, the shared-filesystem
// output path, and every durable-store snapshot.
package atomicfile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFile atomically replaces path with data: the bytes are written to a
// temporary file in the same directory, fsynced, renamed over path, and the
// directory entry is fsynced so the rename itself survives a crash. On any
// error the temporary file is removed and path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("atomicfile: syncing %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("atomicfile: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: renaming into %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so recently created, renamed or removed
// entries are durable. Filesystems that do not support directory fsync
// (it fails with EINVAL on some) are treated as best-effort: only real I/O
// errors are reported.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicfile: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse fsync on directories; a crash there loses
		// only rename durability, not atomicity, so don't fail the caller.
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return fmt.Errorf("atomicfile: syncing dir %s: %w", dir, err)
	}
	return nil
}
