package store

import (
	"testing"

	"copernicus/internal/wire"
)

// TestPreStreamCommandSnapDecodes pins the snapshot-format contract for the
// streaming rollout: a CommandSnap written before the Streamed watermark
// existed decodes with Streamed == 0 — the "nothing ingested yet" state —
// so recovery from an old snapshot falls back to batch delivery instead of
// failing or inventing a watermark.
func TestPreStreamCommandSnapDecodes(t *testing.T) {
	type commandSnapPreStream struct {
		Spec       wire.CommandSpec
		Status     int
		Worker     string
		Retries    int
		Checkpoint []byte
	}
	raw, err := wire.Marshal(&commandSnapPreStream{
		Spec:       wire.CommandSpec{ID: "c1", Project: "villin", Type: "mdrun", MinCores: 1, MaxCores: 1},
		Status:     2,
		Worker:     "w1",
		Retries:    1,
		Checkpoint: []byte("ck"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got CommandSnap
	if err := wire.Unmarshal(raw, &got); err != nil {
		t.Fatalf("pre-stream CommandSnap failed to decode: %v", err)
	}
	if got.Spec.ID != "c1" || got.Status != 2 || got.Worker != "w1" ||
		got.Retries != 1 || string(got.Checkpoint) != "ck" {
		t.Errorf("pre-stream fields corrupted: %+v", got)
	}
	if got.Streamed != 0 {
		t.Errorf("Streamed must decode as 0 from pre-stream snapshots, got %d", got.Streamed)
	}
}

// TestStreamCommandSnapDecodesByPreStreamShape covers the reverse: a
// snapshot with watermarks decodes under the pre-stream field set (gob
// drops unknown fields), so a rolled-back server recovers cleanly — it
// simply re-ingests the stream from the final result blobs.
func TestStreamCommandSnapDecodesByPreStreamShape(t *testing.T) {
	type commandSnapPreStream struct {
		Spec       wire.CommandSpec
		Status     int
		Worker     string
		Retries    int
		Checkpoint []byte
	}
	raw, err := wire.Marshal(&CommandSnap{
		Spec:     wire.CommandSpec{ID: "c2", Project: "villin", Type: "mdrun", MinCores: 1, MaxCores: 1},
		Status:   1,
		Streamed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got commandSnapPreStream
	if err := wire.Unmarshal(raw, &got); err != nil {
		t.Fatalf("stream CommandSnap failed to decode under pre-stream shape: %v", err)
	}
	if got.Spec.ID != "c2" || got.Status != 1 {
		t.Errorf("shared fields corrupted: %+v", got)
	}
}
