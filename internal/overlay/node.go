package overlay

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/obs"
	"copernicus/internal/wire"
)

// ErrNotHandled is returned by a Handler to decline a request addressed to
// "any server" (empty To); the node then forwards it deeper into the
// overlay — this implements the paper's routing "to the first server with
// available commands".
var ErrNotHandled = errors.New("overlay: request not handled here")

// ErrNoRoute is returned by Request when the node has no peer link that
// could carry the envelope (and no local handler that could answer it), so
// waiting out the deadline would be pointless. Retry layers treat this as
// transient: a reconnect or re-home may restore a route.
var ErrNoRoute = errors.New("overlay: no route to peer")

// ErrVersionMismatch re-exports the wire sentinel: a handshake against a
// node speaking a different protocol version fails with an error matching
// errors.Is(err, overlay.ErrVersionMismatch).
var ErrVersionMismatch = wire.ErrVersionMismatch

// ErrProtoVersion is the preferred name for ErrVersionMismatch, matching
// the wire sentinel it re-exports.
var ErrProtoVersion = wire.ErrProtoVersion

// RemoteError is an error reply produced by the remote handler. Its
// presence means the request WAS delivered and answered — retrying will not
// change the outcome — which is how retry policies distinguish application
// failures from transport failures. Code, when non-empty, is the wire error
// class (wire.ErrCode* constants); Unwrap maps it back to the matching
// sentinel so errors.Is(err, wire.ErrQuotaExceeded) works through the
// overlay.
type RemoteError struct {
	Msg  string
	Code string
}

func (e *RemoteError) Error() string { return "overlay: remote error: " + e.Msg }

// Unwrap exposes the sentinel behind Code (nil for uncoded errors), letting
// errors.Is match remote admission-control failures across the network.
func (e *RemoteError) Unwrap() error { return wire.SentinelFor(e.Code) }

// Handler processes a request payload from a peer and returns the reply
// payload. Returning ErrNotHandled forwards the request instead (only
// meaningful for anycast requests).
type Handler func(from string, payload []byte) ([]byte, error)

// DefaultTTL bounds forwarding hops; overlays in the paper are a handful of
// servers, so a small TTL suffices.
const DefaultTTL = 8

// DefaultRequestTimeout is the per-request deadline used when none is given.
const DefaultRequestTimeout = 30 * time.Second

// Node is one overlay participant: it listens for peers, dials others, and
// routes envelopes. All servers run identical node code; their role is
// determined by the handlers registered on top (the paper's symmetric
// architecture).
type Node struct {
	id    *Identity
	trust *TrustStore
	tr    Transport

	mu       sync.RWMutex
	peers    map[string]*peerLink // node ID → link
	handlers map[wire.MsgType]Handler
	pending  map[uint64]chan *wire.Envelope
	closed   bool

	listeners []net.Listener
	reqID     atomic.Uint64
	seen      *seenCache
	wg        sync.WaitGroup

	// Obs receives diagnostics, per-peer traffic metrics and request
	// latencies; defaults to a silent obs.New(). Set it (or share a
	// deployment-wide bundle) before Listen/ConnectPeer.
	Obs *obs.Obs
}

// linkQueueDepth bounds each peer link's outbound envelope queue. A full
// queue drops the envelope with an error instead of blocking the sender:
// the retry layer re-issues requests, and a dropped reply surfaces as a
// requester-side timeout — the same observable behaviour as a congested
// real link.
const linkQueueDepth = 512

type peerLink struct {
	id   string
	conn net.Conn

	out  chan *wire.Envelope
	done chan struct{}
	once sync.Once

	// Per-peer traffic series, resolved once at addPeer.
	rxMsgs, txMsgs   *obs.Counter
	rxBytes, txBytes *obs.Counter
}

func newPeerLink(id string, conn net.Conn) *peerLink {
	return &peerLink{
		id:   id,
		conn: conn,
		out:  make(chan *wire.Envelope, linkQueueDepth),
		done: make(chan struct{}),
	}
}

// send queues env for delivery. It never blocks on the network: readers
// forward and reply from their own goroutine, so a synchronous write could
// head-of-line block two nodes writing to each other into a deadlock. A
// closed link or a full queue reports an error immediately instead.
func (p *peerLink) send(env *wire.Envelope) error {
	select {
	case <-p.done:
		return fmt.Errorf("overlay: link to %s closed", p.id)
	default:
	}
	select {
	case p.out <- env:
		return nil
	default:
		return fmt.Errorf("overlay: link to %s congested, envelope dropped", p.id)
	}
}

// writeLoop drains the outbound queue onto the wire; it owns all writes to
// the connection, preserving envelope order. Any write error severs the
// link (length-prefixed framing cannot resync mid-frame).
func (p *peerLink) writeLoop() {
	for {
		select {
		case env := <-p.out:
			if err := wire.WriteEnvelope(p.conn, env); err != nil {
				p.close()
				return
			}
			p.txMsgs.Inc()
			p.txBytes.Add(uint64(len(env.Payload)))
		case <-p.done:
			return
		}
	}
}

// close severs the link: the writer exits, queued envelopes are discarded,
// and further sends fail fast.
func (p *peerLink) close() {
	p.once.Do(func() { close(p.done) })
	p.conn.Close()
}

// NewNode creates a node with the given identity, trust store and transport.
func NewNode(id *Identity, trust *TrustStore, tr Transport) *Node {
	n := &Node{
		id:       id,
		trust:    trust,
		tr:       tr,
		peers:    make(map[string]*peerLink),
		handlers: make(map[wire.MsgType]Handler),
		pending:  make(map[uint64]chan *wire.Envelope),
		seen:     newSeenCache(4096),
		Obs:      obs.New(),
	}
	n.reqID.Store(uint64(time.Now().UnixNano()) << 20)
	return n
}

// log returns the overlay-tagged logger.
func (n *Node) log() *obs.Logger { return n.Obs.Log.Named("overlay") }

// ID returns the node's overlay ID.
func (n *Node) ID() string { return n.id.ID }

// Identity returns the node's identity (for key exchange).
func (n *Node) Identity() *Identity { return n.id }

// Trust returns the node's trust store.
func (n *Node) Trust() *TrustStore { return n.trust }

// Handle registers the handler for a message type. Must be called before
// traffic arrives; handlers run on the connection's reader goroutine, so
// long work should be dispatched internally.
func (n *Node) Handle(t wire.MsgType, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[t] = h
}

// Listen starts accepting peer connections on addr.
func (n *Node) Listen(addr string) error {
	l, err := n.tr.Listen(addr)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				if err := n.handleInbound(conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					n.log().Warn("inbound connection failed", "node", n.id.ID, "err", err)
				}
			}()
		}
	}()
	return nil
}

// handshake exchanges identity proofs over a fresh connection: each side
// sends its public key and a signature over a transcript tag, and checks the
// peer against the trust store.
func (n *Node) handshake(conn net.Conn, initiator bool) (string, error) {
	const tag = "copernicus-overlay-hello-v1"
	hello := &wire.Envelope{
		Version: wire.ProtocolVersion,
		Type:    "hello",
		From:    n.id.ID,
		Payload: append(append([]byte(nil), n.id.Pub...), n.id.Sign([]byte(tag))...),
	}
	send := func() error { return wire.WriteEnvelope(conn, hello) }
	recv := func() (string, error) {
		if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return "", err
		}
		defer conn.SetReadDeadline(time.Time{})
		env, err := wire.ReadEnvelope(conn)
		if err != nil {
			return "", fmt.Errorf("overlay: reading hello: %w", err)
		}
		if env.Type != "hello" || len(env.Payload) < ed25519.PublicKeySize {
			return "", fmt.Errorf("overlay: malformed hello from %s", env.From)
		}
		pub := ed25519.PublicKey(env.Payload[:ed25519.PublicKeySize])
		sig := env.Payload[ed25519.PublicKeySize:]
		if NodeID(pub) != env.From {
			return "", fmt.Errorf("overlay: hello ID %s does not match key", env.From)
		}
		if !Verify(pub, []byte(tag), sig) {
			return "", fmt.Errorf("overlay: bad hello signature from %s", env.From)
		}
		if !n.trust.Trusted(pub) {
			return "", fmt.Errorf("overlay: peer %s not trusted", env.From)
		}
		return env.From, nil
	}
	if initiator {
		if err := send(); err != nil {
			return "", err
		}
		return recv()
	}
	peer, err := recv()
	if err != nil {
		return "", err
	}
	return peer, send()
}

func (n *Node) handleInbound(conn net.Conn) error {
	peerID, err := n.handshake(conn, false)
	if err != nil {
		conn.Close()
		return err
	}
	link, err := n.addPeer(peerID, conn)
	if err != nil {
		return err
	}
	return n.runPeer(link)
}

// ConnectPeer dials addr, performs the handshake, and adds the peer link.
// It returns the peer's node ID. The link is usable as soon as ConnectPeer
// returns.
func (n *Node) ConnectPeer(addr string) (string, error) {
	conn, err := n.tr.Dial(addr)
	if err != nil {
		return "", fmt.Errorf("overlay: dialing %s: %w", addr, err)
	}
	peerID, err := n.handshake(conn, true)
	if err != nil {
		conn.Close()
		return "", err
	}
	link, err := n.addPeer(peerID, conn)
	if err != nil {
		return "", err
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if err := n.runPeer(link); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
			n.log().Warn("peer link failed", "node", n.id.ID, "peer", peerID, "err", err)
		}
	}()
	return peerID, nil
}

// addPeer registers a completed connection in the peer table, replacing any
// stale link with the same ID.
func (n *Node) addPeer(peerID string, conn net.Conn) (*peerLink, error) {
	link := newPeerLink(peerID, conn)
	const (
		msgsName  = "copernicus_overlay_messages_total"
		msgsHelp  = "Envelopes exchanged with a peer, by direction."
		bytesName = "copernicus_overlay_payload_bytes_total"
		bytesHelp = "Envelope payload bytes exchanged with a peer, by direction."
	)
	m := n.Obs.Metrics
	link.rxMsgs = m.Counter(msgsName, msgsHelp, obs.L("node", n.id.ID, "peer", peerID, "dir", "rx"))
	link.txMsgs = m.Counter(msgsName, msgsHelp, obs.L("node", n.id.ID, "peer", peerID, "dir", "tx"))
	link.rxBytes = m.Counter(bytesName, bytesHelp, obs.L("node", n.id.ID, "peer", peerID, "dir", "rx"))
	link.txBytes = m.Counter(bytesName, bytesHelp, obs.L("node", n.id.ID, "peer", peerID, "dir", "tx"))
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return nil, net.ErrClosed
	}
	if old, ok := n.peers[peerID]; ok {
		old.close()
	}
	n.peers[peerID] = link
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		link.writeLoop()
	}()
	return link, nil
}

// runPeer pumps envelopes until the connection dies, then unregisters it.
func (n *Node) runPeer(link *peerLink) error {
	defer func() {
		link.close()
		n.mu.Lock()
		if n.peers[link.id] == link {
			delete(n.peers, link.id)
		}
		n.mu.Unlock()
	}()
	for {
		env, err := wire.ReadEnvelope(link.conn)
		if err != nil {
			return err
		}
		link.rxMsgs.Inc()
		link.rxBytes.Add(uint64(len(env.Payload)))
		n.route(env, link.id)
	}
}

// Peers returns the connected peer IDs.
func (n *Node) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	return out
}

// NotifyPeers sends one request to every currently connected peer in
// parallel, ignoring individual failures, and waits for all attempts to
// settle or time out. It is a best-effort broadcast for control-plane
// announcements (e.g. a promoted standby claiming ownership): peers without
// a handler for the type simply return an error reply, which is discarded.
func (n *Node) NotifyPeers(t wire.MsgType, payload []byte, timeout time.Duration) {
	var wg sync.WaitGroup
	for _, id := range n.Peers() {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			_, _ = n.RequestTimeout(id, t, payload, timeout)
		}(id)
	}
	wg.Wait()
}

// Close shuts the node down: all listeners and peer links are closed.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ls := n.listeners
	links := make([]*peerLink, 0, len(n.peers))
	for _, p := range n.peers {
		links = append(links, p)
	}
	pend := n.pending
	n.pending = make(map[uint64]chan *wire.Envelope)
	n.mu.Unlock()

	for _, l := range ls {
		l.Close()
	}
	for _, p := range links {
		p.close()
	}
	for _, ch := range pend {
		close(ch)
	}
	n.wg.Wait()
}

// Request sends a request and waits for the reply, bounded by ctx. An empty
// `to` addresses the first server in the overlay whose handler accepts the
// message type (anycast); otherwise the envelope is routed to the named
// node. A ctx without a deadline gets DefaultRequestTimeout. Error replies
// from the remote handler surface as *RemoteError; a node with no usable
// route fails fast with ErrNoRoute instead of waiting out the deadline.
func (n *Node) Request(ctx context.Context, to string, t wire.MsgType, payload []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultRequestTimeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		n.Obs.Metrics.Histogram("copernicus_overlay_request_seconds",
			"Round-trip latency of overlay requests, by message type.",
			nil, obs.L("node", n.id.ID, "type", string(t))).Observe(time.Since(start).Seconds())
	}()
	id := n.reqID.Add(1)
	ch := make(chan *wire.Envelope, 1)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, net.ErrClosed
	}
	// Fast-fail when nothing could possibly answer: no peers to carry the
	// envelope, and no local handler that could accept it (locally-routable
	// only for self- or anycast-addressed requests).
	if len(n.peers) == 0 && to != n.id.ID {
		localOK := to == "" && n.handlers[t] != nil
		if !localOK {
			n.mu.Unlock()
			return nil, fmt.Errorf("overlay: request %v to %q: %w", t, to, ErrNoRoute)
		}
	}
	n.pending[id] = ch
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pending, id)
		n.mu.Unlock()
	}()

	env := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      t,
		From:      n.id.ID,
		To:        to,
		RequestID: id,
		TTL:       DefaultTTL,
		Payload:   payload,
	}
	n.route(env, "")

	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, net.ErrClosed
		}
		if reply.Err != "" {
			return nil, &RemoteError{Msg: reply.Err, Code: reply.ErrCode}
		}
		return reply.Payload, nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			n.Obs.Metrics.Counter("copernicus_overlay_request_timeouts_total",
				"Overlay requests that hit their deadline, by message type.",
				obs.L("node", n.id.ID, "type", string(t))).Inc()
			return nil, fmt.Errorf("overlay: request %v to %q timed out after %v: %w", t, to, time.Since(start).Round(time.Millisecond), ctx.Err())
		}
		return nil, fmt.Errorf("overlay: request %v to %q cancelled: %w", t, to, ctx.Err())
	}
}

// RequestTimeout is a convenience wrapper for callers (mostly tests) that
// think in deadlines rather than contexts. A non-positive timeout selects
// DefaultRequestTimeout.
func (n *Node) RequestTimeout(to string, t wire.MsgType, payload []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.Request(ctx, to, t, payload)
}

// route processes an envelope arriving from origin ("" = locally created).
func (n *Node) route(env *wire.Envelope, origin string) {
	if !n.seen.firstTime(env.From, env.RequestID, env.IsReply) {
		return
	}

	if env.IsReply {
		if env.To == n.id.ID {
			// Deliver while holding the read lock: Close swaps the pending
			// map under the write lock before closing the channels, so a
			// send that found ch here can never race the close.
			n.mu.RLock()
			if ch := n.pending[env.RequestID]; ch != nil {
				select {
				case ch <- env:
				default:
				}
			}
			n.mu.RUnlock()
			return
		}
		n.forward(env, origin)
		return
	}

	// Request: try locally when addressed to us or to anyone.
	if env.To == n.id.ID || env.To == "" {
		n.mu.RLock()
		h := n.handlers[env.Type]
		n.mu.RUnlock()
		if h != nil {
			reply, err := h(env.From, env.Payload)
			if !errors.Is(err, ErrNotHandled) {
				n.reply(env, reply, err, origin)
				return
			}
		} else if env.To == n.id.ID {
			n.reply(env, nil, fmt.Errorf("no handler for %q", env.Type), origin)
			return
		}
		// Anycast fall-through: not handled here, forward.
	}
	n.forward(env, origin)
}

// reply sends a response back toward the requester.
func (n *Node) reply(req *wire.Envelope, payload []byte, err error, origin string) {
	rep := &wire.Envelope{
		Version:   wire.ProtocolVersion,
		Type:      req.Type,
		From:      n.id.ID,
		To:        req.From,
		RequestID: req.RequestID,
		IsReply:   true,
		TTL:       DefaultTTL,
		Payload:   payload,
	}
	if err != nil {
		rep.Err = err.Error()
		rep.ErrCode = wire.CodeOf(err)
	}
	if req.From == n.id.ID {
		// Local request answered locally.
		n.route(rep, "")
		return
	}
	// Prefer the link the request came in on; fall back to flooding.
	n.mu.RLock()
	link := n.peers[origin]
	n.mu.RUnlock()
	if link != nil {
		if sendErr := link.send(rep); sendErr == nil {
			return
		}
		n.sendErrors().Inc()
	}
	n.forward(rep, "")
}

// forward floods an envelope to all peers except the origin, decrementing
// the TTL.
func (n *Node) forward(env *wire.Envelope, origin string) {
	if env.TTL <= 0 {
		return
	}
	out := *env
	out.TTL = env.TTL - 1
	n.mu.RLock()
	links := make([]*peerLink, 0, len(n.peers))
	for id, p := range n.peers {
		if id != origin {
			links = append(links, p)
		}
	}
	n.mu.RUnlock()
	for _, p := range links {
		if err := p.send(&out); err != nil {
			n.sendErrors().Inc()
			n.log().Warn("forwarding failed", "node", n.id.ID, "peer", p.id, "err", err)
		}
	}
}

// sendErrors returns the overlay send-error counter.
func (n *Node) sendErrors() *obs.Counter {
	return n.Obs.Metrics.Counter("copernicus_overlay_errors_total",
		"Failed envelope sends to peers.", obs.L("node", n.id.ID))
}

// seenCache deduplicates flooded envelopes with a bounded FIFO set.
type seenCache struct {
	mu    sync.Mutex
	limit int
	order []string
	set   map[string]bool
}

func newSeenCache(limit int) *seenCache {
	return &seenCache{limit: limit, set: make(map[string]bool, limit)}
}

// firstTime records the key and reports whether it was new.
func (s *seenCache) firstTime(from string, reqID uint64, isReply bool) bool {
	key := fmt.Sprintf("%s/%d/%t", from, reqID, isReply)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.set[key] {
		return false
	}
	s.set[key] = true
	s.order = append(s.order, key)
	if len(s.order) > s.limit {
		delete(s.set, s.order[0])
		s.order = s.order[1:]
	}
	return true
}

// ListenAddrs returns the bound addresses of all active listeners (useful
// with ":0" ephemeral ports).
func (n *Node) ListenAddrs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.listeners))
	for _, l := range n.listeners {
		out = append(out, l.Addr().String())
	}
	return out
}
