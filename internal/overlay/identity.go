// Package overlay implements the Copernicus server overlay network (§2.2 of
// the paper): authenticated nodes connected in a small, mostly static
// peer-to-peer topology, carrying request/response traffic with TTL-limited
// forwarding so a request can reach either a specific server or "the first
// server with available commands".
//
// Nodes are identified by the hash of an Ed25519 public key. Trust is
// established by explicit key exchange into a TrustStore, mirroring the
// paper's setup where every link is created deliberately by the operators.
// Two transports are provided: a TLS 1.3 transport for real deployments and
// an in-memory transport with byte metering and latency injection for tests
// and the Fig 6 bandwidth measurements.
package overlay

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"encoding/pem"
	"fmt"
	"math/big"
	"sync"
	"time"

	"copernicus/internal/rng"
)

// Identity is a node's keypair and derived ID.
type Identity struct {
	ID   string
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NodeID derives the printable node ID from a public key: the first 16 hex
// characters of its SHA-256.
func NodeID(pub ed25519.PublicKey) string {
	h := sha256.Sum256(pub)
	return hex.EncodeToString(h[:])[:16]
}

// NewIdentity generates a fresh Ed25519 identity from the system's entropy.
func NewIdentity() (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("overlay: generating identity: %w", err)
	}
	return &Identity{ID: NodeID(pub), Pub: pub, priv: priv}, nil
}

// NewIdentityFromSeed derives a deterministic identity from a 64-bit seed —
// used by tests and simulations that must be reproducible.
func NewIdentityFromSeed(seed uint64) *Identity {
	r := rng.New(seed)
	seedBytes := make([]byte, ed25519.SeedSize)
	for i := 0; i < len(seedBytes); i += 8 {
		v := r.Uint64()
		for k := 0; k < 8 && i+k < len(seedBytes); k++ {
			seedBytes[i+k] = byte(v >> (8 * k))
		}
	}
	priv := ed25519.NewKeyFromSeed(seedBytes)
	pub := priv.Public().(ed25519.PublicKey)
	return &Identity{ID: NodeID(pub), Pub: pub, priv: priv}
}

// Sign signs a message with the node key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// Verify checks a signature against a public key.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// TrustStore is the set of public keys a node accepts connections from. An
// empty store accepts everyone (bootstrap/testing mode); once any key is
// added, only trusted peers may connect — the paper's explicit key-exchange
// model. TrustStore is safe for concurrent use.
type TrustStore struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey // node ID → key
}

// NewTrustStore returns an empty (allow-all) trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{keys: make(map[string]ed25519.PublicKey)}
}

// Add registers a trusted public key and returns its node ID.
func (t *TrustStore) Add(pub ed25519.PublicKey) string {
	id := NodeID(pub)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keys[id] = append(ed25519.PublicKey(nil), pub...)
	return id
}

// Remove deletes a key by node ID.
func (t *TrustStore) Remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.keys, id)
}

// Trusted reports whether the key is acceptable: always true for an empty
// store, otherwise the key must be registered under its own ID.
func (t *TrustStore) Trusted(pub ed25519.PublicKey) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.keys) == 0 {
		return true
	}
	known, ok := t.keys[NodeID(pub)]
	return ok && known.Equal(pub)
}

// Len returns the number of trusted keys.
func (t *TrustStore) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.keys)
}

// Certificate builds a self-signed X.509 certificate for TLS transport use,
// embedding the node's Ed25519 key. Peers validate the embedded key against
// their trust stores rather than a CA chain, exactly as the paper's overlay
// exchanges raw keys.
func (id *Identity) Certificate() (tls.Certificate, error) {
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 120))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("overlay: certificate serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: id.ID},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, id.Pub, id.priv)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("overlay: creating certificate: %w", err)
	}
	keyDER, err := x509.MarshalPKCS8PrivateKey(id.priv)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("overlay: marshalling key: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: keyDER})
	return tls.X509KeyPair(certPEM, keyPEM)
}

// tlsConfig builds the mutual-TLS configuration: both sides present their
// self-signed node certificates and verify the embedded Ed25519 key against
// the trust store.
func tlsConfig(id *Identity, trust *TrustStore) (*tls.Config, error) {
	cert, err := id.Certificate()
	if err != nil {
		return nil, err
	}
	verify := func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
		if len(rawCerts) == 0 {
			return fmt.Errorf("overlay: peer presented no certificate")
		}
		leaf, err := x509.ParseCertificate(rawCerts[0])
		if err != nil {
			return fmt.Errorf("overlay: parsing peer certificate: %w", err)
		}
		pub, ok := leaf.PublicKey.(ed25519.PublicKey)
		if !ok {
			return fmt.Errorf("overlay: peer certificate is not ed25519")
		}
		if !trust.Trusted(pub) {
			return fmt.Errorf("overlay: peer key %s not in trust store", NodeID(pub))
		}
		return nil
	}
	return &tls.Config{
		MinVersion:   tls.VersionTLS13,
		Certificates: []tls.Certificate{cert},
		ClientAuth:   tls.RequireAnyClientCert,
		// Verification is key-based, not CA-based.
		InsecureSkipVerify:    true,
		VerifyPeerCertificate: verify,
	}, nil
}
