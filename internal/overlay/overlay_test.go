package overlay

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"copernicus/internal/wire"
)

func TestIdentityFromSeedDeterministic(t *testing.T) {
	a := NewIdentityFromSeed(7)
	b := NewIdentityFromSeed(7)
	if a.ID != b.ID || !a.Pub.Equal(b.Pub) {
		t.Error("seeded identities differ")
	}
	c := NewIdentityFromSeed(8)
	if c.ID == a.ID {
		t.Error("different seeds produced same identity")
	}
	if len(a.ID) != 16 {
		t.Errorf("node ID length = %d", len(a.ID))
	}
}

func TestNewIdentityUnique(t *testing.T) {
	a, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Error("two fresh identities collide")
	}
}

func TestSignVerify(t *testing.T) {
	id := NewIdentityFromSeed(1)
	msg := []byte("hello")
	sig := id.Sign(msg)
	if !Verify(id.Pub, msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(id.Pub, []byte("tampered"), sig) {
		t.Error("tampered message accepted")
	}
	other := NewIdentityFromSeed(2)
	if Verify(other.Pub, msg, sig) {
		t.Error("wrong key accepted")
	}
	if Verify(nil, msg, sig) {
		t.Error("nil key accepted")
	}
}

func TestTrustStore(t *testing.T) {
	ts := NewTrustStore()
	a := NewIdentityFromSeed(1)
	b := NewIdentityFromSeed(2)
	// Empty store trusts everyone.
	if !ts.Trusted(a.Pub) {
		t.Error("empty store should trust all")
	}
	id := ts.Add(a.Pub)
	if id != a.ID {
		t.Errorf("Add returned %s, want %s", id, a.ID)
	}
	if !ts.Trusted(a.Pub) {
		t.Error("added key not trusted")
	}
	if ts.Trusted(b.Pub) {
		t.Error("unknown key trusted once store is non-empty")
	}
	if ts.Len() != 1 {
		t.Errorf("Len = %d", ts.Len())
	}
	ts.Remove(a.ID)
	// Store empty again → allow-all.
	if !ts.Trusted(b.Pub) {
		t.Error("store should be allow-all after removal")
	}
}

// twoNodes builds a connected pair over a fresh MemNetwork.
func twoNodes(t *testing.T) (*Node, *Node, *MemNetwork) {
	t.Helper()
	net := NewMemNetwork()
	a := NewNode(NewIdentityFromSeed(1), NewTrustStore(), net.Transport())
	b := NewNode(NewIdentityFromSeed(2), NewTrustStore(), net.Transport())
	if err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	peer, err := b.ConnectPeer("a")
	if err != nil {
		t.Fatal(err)
	}
	if peer != a.ID() {
		t.Fatalf("ConnectPeer returned %s, want %s", peer, a.ID())
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b, net
}

func TestRequestResponseDirect(t *testing.T) {
	a, b, _ := twoNodes(t)
	a.Handle(wire.MsgPing, func(from string, payload []byte) ([]byte, error) {
		if from != b.ID() {
			t.Errorf("handler saw from=%s", from)
		}
		return append([]byte("pong:"), payload...), nil
	})
	reply, err := b.RequestTimeout(a.ID(), wire.MsgPing, []byte("x"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong:x" {
		t.Errorf("reply = %q", reply)
	}
}

func TestRequestErrorPropagates(t *testing.T) {
	a, b, _ := twoNodes(t)
	a.Handle(wire.MsgPing, func(string, []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := b.RequestTimeout(a.ID(), wire.MsgPing, nil, time.Second)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestRequestNoHandler(t *testing.T) {
	a, b, _ := twoNodes(t)
	_, err := b.RequestTimeout(a.ID(), wire.MsgPing, nil, time.Second)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Errorf("err = %v", err)
	}
}

func TestRequestTimeout(t *testing.T) {
	_, b, _ := twoNodes(t)
	// Address a node that does not exist.
	_, err := b.RequestTimeout("ffffffffffffffff", wire.MsgPing, nil, 100*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v", err)
	}
}

// chain builds a linear overlay a—b—c, the Fig 1 shape where b is a gateway.
func chain(t *testing.T) (a, b, c *Node) {
	t.Helper()
	net := NewMemNetwork()
	a = NewNode(NewIdentityFromSeed(1), NewTrustStore(), net.Transport())
	b = NewNode(NewIdentityFromSeed(2), NewTrustStore(), net.Transport())
	c = NewNode(NewIdentityFromSeed(3), NewTrustStore(), net.Transport())
	if err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ConnectPeer("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnectPeer("b"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close(); c.Close() })
	return a, b, c
}

func TestMultiHopRouting(t *testing.T) {
	a, _, c := chain(t)
	a.Handle(wire.MsgPing, func(from string, payload []byte) ([]byte, error) {
		return []byte("from-a"), nil
	})
	// c is not directly connected to a; the request must relay through b.
	reply, err := c.RequestTimeout(a.ID(), wire.MsgPing, nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "from-a" {
		t.Errorf("reply = %q", reply)
	}
}

func TestAnycastFindsFirstWillingServer(t *testing.T) {
	a, b, c := chain(t)
	// b declines (no work available), a accepts: the request should walk
	// past b to a — the paper's "first server with available commands".
	b.Handle(wire.MsgAnnounce, func(string, []byte) ([]byte, error) {
		return nil, ErrNotHandled
	})
	a.Handle(wire.MsgAnnounce, func(string, []byte) ([]byte, error) {
		return []byte("work-from-a"), nil
	})
	reply, err := c.RequestTimeout("", wire.MsgAnnounce, []byte("resources"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "work-from-a" {
		t.Errorf("reply = %q", reply)
	}
}

func TestAnycastPrefersNearServer(t *testing.T) {
	_, b, c := chain(t)
	var aCount, bCount atomic.Int32
	b.Handle(wire.MsgAnnounce, func(string, []byte) ([]byte, error) {
		bCount.Add(1)
		return []byte("from-b"), nil
	})
	reply, err := c.RequestTimeout("", wire.MsgAnnounce, nil, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "from-b" || bCount.Load() != 1 || aCount.Load() != 0 {
		t.Errorf("reply=%q aCount=%d bCount=%d", reply, aCount.Load(), bCount.Load())
	}
}

func TestUntrustedPeerRejected(t *testing.T) {
	net := NewMemNetwork()
	aTrust := NewTrustStore()
	a := NewNode(NewIdentityFromSeed(1), aTrust, net.Transport())
	b := NewNode(NewIdentityFromSeed(2), NewTrustStore(), net.Transport())
	c := NewNode(NewIdentityFromSeed(3), NewTrustStore(), net.Transport())
	// a only trusts b.
	aTrust.Add(b.Identity().Pub)
	if err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	defer c.Close()
	if _, err := b.ConnectPeer("a"); err != nil {
		t.Fatalf("trusted peer rejected: %v", err)
	}
	if _, err := c.ConnectPeer("a"); err == nil {
		t.Fatal("untrusted peer accepted")
	}
}

func TestMutualTrustExchange(t *testing.T) {
	// Both sides restrict trust; connection only works after exchanging keys
	// both ways — the paper's key-exchange requirement.
	net := NewMemNetwork()
	aT, bT := NewTrustStore(), NewTrustStore()
	a := NewNode(NewIdentityFromSeed(1), aT, net.Transport())
	b := NewNode(NewIdentityFromSeed(2), bT, net.Transport())
	// Poison stores so they are non-empty but lack the peer.
	aT.Add(NewIdentityFromSeed(99).Pub)
	bT.Add(NewIdentityFromSeed(98).Pub)
	if err := a.Listen("a"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if _, err := b.ConnectPeer("a"); err == nil {
		t.Fatal("connection succeeded without key exchange")
	}
	// Exchange keys.
	aT.Add(b.Identity().Pub)
	bT.Add(a.Identity().Pub)
	if _, err := b.ConnectPeer("a"); err != nil {
		t.Fatalf("connection failed after key exchange: %v", err)
	}
}

func TestPeersAndClose(t *testing.T) {
	a, b, _ := twoNodes(t)
	waitFor(t, func() bool { return len(a.Peers()) == 1 })
	if got := b.Peers(); len(got) != 1 || got[0] != a.ID() {
		t.Errorf("b.Peers() = %v", got)
	}
	b.Close()
	waitFor(t, func() bool { return len(a.Peers()) == 0 })
	// Requests after close fail fast.
	if _, err := b.RequestTimeout(a.ID(), wire.MsgPing, nil, time.Second); err == nil {
		t.Error("request after close should fail")
	}
	// Double close is safe.
	b.Close()
}

func TestMemNetworkMetering(t *testing.T) {
	a, b, net := twoNodes(t)
	before := net.BytesSent()
	a.Handle(wire.MsgPing, func(_ string, p []byte) ([]byte, error) { return p, nil })
	payload := make([]byte, 10000)
	if _, err := b.RequestTimeout(a.ID(), wire.MsgPing, payload, time.Second); err != nil {
		t.Fatal(err)
	}
	moved := net.BytesSent() - before
	// Request + reply both carry the payload.
	if moved < 20000 {
		t.Errorf("metered only %d bytes for a 2x10kB exchange", moved)
	}
	if net.Conns() < 1 {
		t.Error("connection count not tracked")
	}
}

func TestMemNetworkAddressing(t *testing.T) {
	net := NewMemNetwork()
	tr := net.Transport()
	if _, err := tr.Dial("nowhere"); err == nil {
		t.Error("dialing unknown address should fail")
	}
	l, err := tr.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("x"); err == nil {
		t.Error("double listen should fail")
	}
	if l.Addr().String() != "x" || l.Addr().Network() != "mem" {
		t.Errorf("Addr = %v/%v", l.Addr().Network(), l.Addr().String())
	}
	l.Close()
	if _, err := tr.Listen("x"); err != nil {
		t.Errorf("relisten after close failed: %v", err)
	}
}

func TestTLSTransportEndToEnd(t *testing.T) {
	aID := NewIdentityFromSeed(1)
	bID := NewIdentityFromSeed(2)
	aTrust, bTrust := NewTrustStore(), NewTrustStore()
	aTrust.Add(bID.Pub)
	bTrust.Add(aID.Pub)
	aTr, err := NewTLSTransport(aID, aTrust)
	if err != nil {
		t.Fatal(err)
	}
	bTr, err := NewTLSTransport(bID, bTrust)
	if err != nil {
		t.Fatal(err)
	}
	a := NewNode(aID, aTrust, aTr)
	b := NewNode(bID, bTrust, bTr)
	defer a.Close()
	defer b.Close()
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := a.listeners[0].Addr().String()
	a.Handle(wire.MsgPing, func(_ string, p []byte) ([]byte, error) {
		return append([]byte("tls:"), p...), nil
	})
	if _, err := b.ConnectPeer(addr); err != nil {
		t.Fatal(err)
	}
	reply, err := b.RequestTimeout(a.ID(), wire.MsgPing, []byte("secure"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "tls:secure" {
		t.Errorf("reply = %q", reply)
	}
}

func TestTLSRejectsUntrusted(t *testing.T) {
	aID := NewIdentityFromSeed(1)
	cID := NewIdentityFromSeed(3)
	aTrust := NewTrustStore()
	aTrust.Add(NewIdentityFromSeed(2).Pub) // trusts someone else
	cTrust := NewTrustStore()
	aTr, err := NewTLSTransport(aID, aTrust)
	if err != nil {
		t.Fatal(err)
	}
	cTr, err := NewTLSTransport(cID, cTrust)
	if err != nil {
		t.Fatal(err)
	}
	a := NewNode(aID, aTrust, aTr)
	c := NewNode(cID, cTrust, cTr)
	defer a.Close()
	defer c.Close()
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := a.listeners[0].Addr().String()
	if _, err := c.ConnectPeer(addr); err == nil {
		t.Fatal("untrusted TLS peer accepted")
	}
}

func TestSeenCacheEviction(t *testing.T) {
	s := newSeenCache(3)
	for i := 0; i < 5; i++ {
		if !s.firstTime("a", uint64(i), false) {
			t.Fatalf("fresh key %d reported seen", i)
		}
	}
	if s.firstTime("a", 4, false) {
		t.Error("recent key reported fresh")
	}
	// Key 0 was evicted → fresh again.
	if !s.firstTime("a", 0, false) {
		t.Error("evicted key still reported seen")
	}
	// Replies and requests are distinct.
	if !s.firstTime("a", 4, true) {
		t.Error("reply flag should distinguish keys")
	}
}

// TestSeenCacheDuplicateRedelivery pins the dedup behaviour the retry layer
// leans on: a retried or multi-path flooded envelope (same sender, same
// request ID) is suppressed on every redelivery, not just the first, while
// the same request ID from a different sender is its own key.
func TestSeenCacheDuplicateRedelivery(t *testing.T) {
	s := newSeenCache(16)
	if !s.firstTime("w1", 7, false) {
		t.Fatal("first delivery reported seen")
	}
	for i := 0; i < 3; i++ {
		if s.firstTime("w1", 7, false) {
			t.Fatalf("redelivery %d not suppressed", i+1)
		}
	}
	if !s.firstTime("w2", 7, false) {
		t.Error("same request ID from another sender wrongly suppressed")
	}
	// The reply to a deduped request is still fresh exactly once.
	if !s.firstTime("w1", 7, true) {
		t.Fatal("reply suppressed by its own request")
	}
	if s.firstTime("w1", 7, true) {
		t.Error("duplicate reply not suppressed")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func BenchmarkRequestRoundTripMem(b *testing.B) {
	net := NewMemNetwork()
	a := NewNode(NewIdentityFromSeed(1), NewTrustStore(), net.Transport())
	c := NewNode(NewIdentityFromSeed(2), NewTrustStore(), net.Transport())
	defer a.Close()
	defer c.Close()
	if err := a.Listen("a"); err != nil {
		b.Fatal(err)
	}
	a.Handle(wire.MsgPing, func(_ string, p []byte) ([]byte, error) { return p, nil })
	if _, err := c.ConnectPeer("a"); err != nil {
		b.Fatal(err)
	}
	payload := []byte(fmt.Sprintf("%0128d", 1)) // ~heartbeat-sized
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RequestTimeout(a.ID(), wire.MsgPing, payload, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHandshakeVersionMismatch dials a listener that answers the hello with
// a future protocol version and checks the typed sentinel surfaces through
// ConnectPeer, so operators can tell a version skew from a flaky link.
func TestHandshakeVersionMismatch(t *testing.T) {
	net := NewMemNetwork()
	tr := net.Transport()
	ln, err := tr.Listen("future-node")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = wire.ReadEnvelope(conn) // swallow the initiator's hello
		_ = wire.WriteEnvelope(conn, &wire.Envelope{Version: 99, Type: "hello", From: "future"})
	}()

	a := NewNode(NewIdentityFromSeed(1), NewTrustStore(), tr)
	defer a.Close()
	_, err = a.ConnectPeer("future-node")
	if err == nil {
		t.Fatal("handshake against version-99 peer succeeded")
	}
	if !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("errors.Is(err, ErrVersionMismatch) = false for %v", err)
	}
	var ve *wire.VersionError
	if !errors.As(err, &ve) || ve.Got != 99 {
		t.Errorf("error %v does not carry the peer's version", err)
	}
}

// TestHandshakeOldPeerRefusedCleanly is the rolling-upgrade half of the
// version story: a protocol-v1 peer (pre-tenant) must be refused with
// ErrProtoVersion, not a gob mis-decode.
func TestHandshakeOldPeerRefusedCleanly(t *testing.T) {
	net := NewMemNetwork()
	tr := net.Transport()
	ln, err := tr.Listen("old-node")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = wire.ReadEnvelope(conn) // swallow the initiator's hello
		_ = wire.WriteEnvelope(conn, &wire.Envelope{Version: 1, Type: "hello", From: "v1-node"})
	}()

	a := NewNode(NewIdentityFromSeed(3), NewTrustStore(), tr)
	defer a.Close()
	_, err = a.ConnectPeer("old-node")
	if err == nil {
		t.Fatal("handshake against v1 peer succeeded")
	}
	if !errors.Is(err, ErrProtoVersion) {
		t.Errorf("errors.Is(err, ErrProtoVersion) = false for %v", err)
	}
	var ve *wire.VersionError
	if !errors.As(err, &ve) || ve.Got != 1 || ve.Want != wire.ProtocolVersion {
		t.Errorf("error %v does not carry both versions", err)
	}
}

// TestRemoteErrorCodePlumbing sends a request whose handler fails with the
// admission sentinels and checks errors.Is matches across the network: the
// handler's error wraps a sentinel, reply() stamps Envelope.ErrCode, and the
// requester's RemoteError unwraps back to the same sentinel.
func TestRemoteErrorCodePlumbing(t *testing.T) {
	a, b, _ := twoNodes(t)
	a.Handle(wire.MsgSubmit, func(_ string, payload []byte) ([]byte, error) {
		switch string(payload) {
		case "quota":
			return nil, fmt.Errorf("tenant acme over quota: %w", wire.ErrQuotaExceeded)
		case "shed":
			return nil, fmt.Errorf("WAL pressure too high: %w", wire.ErrAdmissionShed)
		}
		return nil, errors.New("plain failure")
	})

	_, err := b.RequestTimeout(a.ID(), wire.MsgSubmit, []byte("quota"), time.Second)
	if !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Errorf("quota error did not survive the wire: %v", err)
	}
	if errors.Is(err, wire.ErrAdmissionShed) {
		t.Error("quota error must not match the shed sentinel")
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.ErrCodeQuota {
		t.Errorf("RemoteError.Code = %q, want %q (err %v)", re.Code, wire.ErrCodeQuota, err)
	}

	_, err = b.RequestTimeout(a.ID(), wire.MsgSubmit, []byte("shed"), time.Second)
	if !errors.Is(err, wire.ErrAdmissionShed) {
		t.Errorf("shed error did not survive the wire: %v", err)
	}

	_, err = b.RequestTimeout(a.ID(), wire.MsgSubmit, []byte("other"), time.Second)
	if err == nil {
		t.Fatal("plain failure did not surface")
	}
	if errors.Is(err, wire.ErrQuotaExceeded) || errors.Is(err, wire.ErrAdmissionShed) {
		t.Errorf("uncoded error matched an admission sentinel: %v", err)
	}
	if !errors.As(err, &re) || re.Code != "" {
		t.Errorf("uncoded RemoteError.Code = %q, want empty", re.Code)
	}
}
