package overlay

import (
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Transport abstracts the byte-stream layer beneath the overlay protocol so
// nodes run identically over real TLS/TCP and over in-process pipes.
type Transport interface {
	// Listen starts accepting connections on addr.
	Listen(addr string) (net.Listener, error)
	// Dial opens a connection to addr.
	Dial(addr string) (net.Conn, error)
	// Name identifies the transport in logs.
	Name() string
}

// --- TLS transport ---

// TLSTransport carries overlay traffic over mutually-authenticated TLS 1.3,
// the production transport corresponding to the paper's SSL links.
type TLSTransport struct {
	cfg *tls.Config
}

// NewTLSTransport builds a transport for the given identity and trust store.
func NewTLSTransport(id *Identity, trust *TrustStore) (*TLSTransport, error) {
	cfg, err := tlsConfig(id, trust)
	if err != nil {
		return nil, err
	}
	return &TLSTransport{cfg: cfg}, nil
}

// Listen implements Transport.
func (t *TLSTransport) Listen(addr string) (net.Listener, error) {
	return tls.Listen("tcp", addr, t.cfg)
}

// Dial implements Transport.
func (t *TLSTransport) Dial(addr string) (net.Conn, error) {
	d := &net.Dialer{Timeout: 10 * time.Second}
	return tls.DialWithDialer(d, "tcp", addr, t.cfg)
}

// Name implements Transport.
func (t *TLSTransport) Name() string { return "tls" }

// --- in-memory transport ---

// MemNetwork is a process-local network: a registry of listeners addressable
// by name, with per-connection latency injection and global byte counters.
// One MemNetwork instance represents one isolated "internet"; tests create
// their own.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener

	// Latency is the one-way delay added to every Write (simulating the
	// high-latency links between clusters in Fig 1); zero disables it.
	Latency time.Duration

	bytesSent atomic.Int64
	conns     atomic.Int64
}

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// BytesSent returns the total payload bytes written through this network —
// the measurement behind the ensemble-level rows of Fig 6/Fig 9.
func (m *MemNetwork) BytesSent() int64 { return m.bytesSent.Load() }

// Conns returns the number of connections opened.
func (m *MemNetwork) Conns() int64 { return m.conns.Load() }

// Transport returns a Transport view of the network. All transports from
// the same MemNetwork share one address space.
func (m *MemNetwork) Transport() Transport { return &memTransport{net: m} }

type memTransport struct{ net *MemNetwork }

func (t *memTransport) Name() string { return "mem" }

func (t *memTransport) Listen(addr string) (net.Listener, error) {
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	if _, exists := t.net.listeners[addr]; exists {
		return nil, fmt.Errorf("overlay: address %q already in use", addr)
	}
	l := &memListener{
		net:    t.net,
		addr:   addr,
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	t.net.listeners[addr] = l
	return l, nil
}

func (t *memTransport) Dial(addr string) (net.Conn, error) {
	t.net.mu.Lock()
	l, ok := t.net.listeners[addr]
	t.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("overlay: no listener at %q", addr)
	}
	client, server := net.Pipe()
	mc := &meteredConn{Conn: client, net: t.net}
	ms := &meteredConn{Conn: server, net: t.net}
	select {
	case l.accept <- ms:
		t.net.conns.Add(1)
		return mc, nil
	case <-l.done:
		return nil, fmt.Errorf("overlay: listener at %q closed", addr)
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("overlay: dial %q timed out (accept queue full)", addr)
	}
}

type memListener struct {
	net    *MemNetwork
	addr   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// meteredConn counts written bytes and injects latency.
type meteredConn struct {
	net.Conn
	net *MemNetwork
}

func (c *meteredConn) Write(p []byte) (int, error) {
	if d := c.net.Latency; d > 0 {
		time.Sleep(d)
	}
	// Count before writing: a pipe reader can observe the payload (and a
	// caller can read the counters) before a post-write increment runs.
	c.net.bytesSent.Add(int64(len(p)))
	n, err := c.Conn.Write(p)
	if n != len(p) {
		c.net.bytesSent.Add(int64(n - len(p)))
	}
	return n, err
}
