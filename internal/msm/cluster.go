// Package msm implements Markov State Model construction and analysis: the
// kinetic clustering, transition-matrix estimation, ergodic trimming,
// stationary analysis, implied-timescale validation and adaptive-sampling
// weighting described in §3.2 of the paper.
//
// The pipeline is: cluster conformations into microstates (k-centers),
// discretise trajectories, count transitions at a lag time, estimate a
// row-stochastic transition matrix, restrict it to the largest strongly
// connected (ergodic) subset, and analyse — stationary distribution for the
// blind native-state prediction, Chapman–Kolmogorov propagation for the
// Fig 4 population evolution, and per-state uncertainty weights for
// adaptive spawning.
package msm

import (
	"fmt"
	"math"

	"copernicus/internal/rng"
)

// Clustering is a set of cluster centers in feature space with a Euclidean
// assignment rule. Centers are immutable once built.
type Clustering struct {
	Centers [][]float64
	// CenterSource[i] identifies where center i came from as an index into
	// the point set passed to KCenters — the control plane uses it to map a
	// cluster back to a restartable conformation.
	CenterSource []int

	// flat is a lazily packed row-major copy of Centers: the assignment hot
	// loop walks one contiguous buffer instead of chasing a slice header per
	// center. Built on first Assign; Centers are immutable once built, so it
	// never goes stale. Not safe to build from concurrent first Assigns —
	// callers that share a Clustering across goroutines call Pack() first.
	flat []float64
	dim  int
}

// Pack eagerly builds the contiguous center buffer the assignment loop
// uses. Assign does this lazily; concurrent users call Pack once up front.
func (c *Clustering) Pack() {
	if c.flat != nil || len(c.Centers) == 0 {
		return
	}
	c.dim = len(c.Centers[0])
	flat := make([]float64, 0, len(c.Centers)*c.dim)
	for _, ctr := range c.Centers {
		flat = append(flat, ctr...)
	}
	c.flat = flat
}

// nearestFlat returns the index of the row of flat (k rows × dim) closest
// to p, with the same first-wins tie-breaking as the slice-walking loop.
func nearestFlat(flat []float64, dim int, p []float64) int {
	best, bestD := 0, math.Inf(1)
	for i, base := 0, 0; base < len(flat); i, base = i+1, base+dim {
		d := 0.0
		row := flat[base : base+dim : base+dim]
		for k, pk := range p {
			dk := pk - row[k]
			d += dk * dk
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// KCenters builds k cluster centers from points with the greedy k-centers
// algorithm: start from a seed point, then repeatedly promote the point
// farthest from all existing centers. This is the standard MSM geometric
// clustering (Bowman et al.); it bounds the cluster radius within a factor
// of two of optimal and is deterministic given the seed.
//
// If k >= len(points), every distinct point becomes its own center.
func KCenters(points [][]float64, k int, seed uint64) (*Clustering, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("msm: cannot cluster zero points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("msm: cluster count must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("msm: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}

	r := rng.New(seed)
	first := r.Intn(n)
	c := &Clustering{
		Centers:      [][]float64{append([]float64(nil), points[first]...)},
		CenterSource: []int{first},
	}
	// dist2[i] is the squared distance from point i to its nearest center.
	dist2 := make([]float64, n)
	for i := range dist2 {
		dist2[i] = sqDist(points[i], points[first])
	}
	for len(c.Centers) < k {
		// Farthest point from all current centers.
		best, bestD := -1, -1.0
		for i, d := range dist2 {
			if d > bestD {
				best, bestD = i, d
			}
		}
		if bestD == 0 {
			break // every remaining point duplicates a center
		}
		c.Centers = append(c.Centers, append([]float64(nil), points[best]...))
		c.CenterSource = append(c.CenterSource, best)
		for i := range dist2 {
			if d := sqDist(points[i], points[best]); d < dist2[i] {
				dist2[i] = d
			}
		}
	}
	return c, nil
}

// K returns the number of clusters.
func (c *Clustering) K() int { return len(c.Centers) }

// Assign returns the index of the nearest center to p.
func (c *Clustering) Assign(p []float64) int {
	c.Pack()
	if c.flat != nil && len(p) == c.dim {
		return nearestFlat(c.flat, c.dim, p)
	}
	best, bestD := 0, math.Inf(1)
	for i, ctr := range c.Centers {
		if d := sqDist(p, ctr); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// AssignAll discretises a trajectory of conformations into state indices.
func (c *Clustering) AssignAll(points [][]float64) []int {
	return c.AssignAllInto(nil, points)
}

// AssignAllInto is AssignAll with a reusable output buffer: dst is grown
// only when its capacity is short, so a caller discretising the same
// trajectories every round allocates nothing in steady state. Returns the
// filled slice (which aliases dst when it fit).
func (c *Clustering) AssignAllInto(dst []int, points [][]float64) []int {
	if cap(dst) < len(points) {
		dst = make([]int, len(points))
	}
	dst = dst[:len(points)]
	c.Pack()
	for i, p := range points {
		if c.flat != nil && len(p) == c.dim {
			dst[i] = nearestFlat(c.flat, c.dim, p)
		} else {
			dst[i] = c.Assign(p)
		}
	}
	return dst
}

// MaxRadius returns the largest distance from any of the given points to its
// assigned center — the k-centers quality metric.
func (c *Clustering) MaxRadius(points [][]float64) float64 {
	worst := 0.0
	for _, p := range points {
		d := math.Inf(1)
		for _, ctr := range c.Centers {
			if d2 := sqDist(p, ctr); d2 < d {
				d = d2
			}
		}
		if d > worst {
			worst = d
		}
	}
	return math.Sqrt(worst)
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
