package msm

import (
	"fmt"
	"math"
)

// SlowestTimescale estimates the slowest implied relaxation timescale
// t₂ = −τ / ln λ₂ from the second-largest eigenvalue magnitude of T,
// computed by power iteration with deflation of the stationary eigenpair.
// Returns +Inf if λ₂ ≥ 1 (disconnected dynamics) and 0 if the matrix mixes
// in a single step.
func (t *TransitionMatrix) SlowestTimescale() float64 {
	lam2 := t.secondEigenvalue(2000, 1e-12)
	if lam2 <= 0 {
		return 0
	}
	if lam2 >= 1 {
		return math.Inf(1)
	}
	return -t.Lag / math.Log(lam2)
}

// secondEigenvalue returns |λ₂| of the row-stochastic matrix by iterating a
// right eigenvector deflated against the constant vector (the right
// eigenvector of λ₁ = 1).
func (t *TransitionMatrix) secondEigenvalue(maxIter int, tol float64) float64 {
	if t.n < 2 {
		return 0
	}
	// Deterministic, non-constant start vector.
	v := make([]float64, t.n)
	for i := range v {
		v[i] = math.Sin(float64(i) + 1)
	}
	deflate := func(x []float64) {
		mean := 0.0
		for _, xi := range x {
			mean += xi
		}
		mean /= float64(len(x))
		for i := range x {
			x[i] -= mean
		}
	}
	normalize := func(x []float64) float64 {
		n := 0.0
		for _, xi := range x {
			n += xi * xi
		}
		n = math.Sqrt(n)
		if n > 0 {
			for i := range x {
				x[i] /= n
			}
		}
		return n
	}
	deflate(v)
	normalize(v)
	lam := 0.0
	for k := 0; k < maxIter; k++ {
		// w = T v (right multiplication).
		w := make([]float64, t.n)
		for i := 0; i < t.n; i++ {
			s := 0.0
			for _, e := range t.rows[i] {
				s += e.prob * v[e.col]
			}
			w[i] = s
		}
		deflate(w)
		growth := normalize(w)
		if growth == 0 {
			return 0
		}
		if math.Abs(growth-lam) < tol*(1+growth) && k > 10 {
			return growth
		}
		lam = growth
		v = w
	}
	return lam
}

// ImpliedTimescales computes the slowest implied timescale for each lag (in
// frames), with frameTime converting frames to physical time. This is the
// Markovianity sensitivity analysis of §3.2 ("the system became Markovian
// for lag times of 20 ns or greater"): the implied timescale becomes flat in
// lag once the model is Markovian.
func ImpliedTimescales(dtrajs [][]int, nStates int, lags []int, frameTime float64) ([]float64, error) {
	if frameTime <= 0 {
		return nil, fmt.Errorf("msm: frame time must be positive")
	}
	out := make([]float64, len(lags))
	for li, lag := range lags {
		c, err := CountTransitions(dtrajs, nStates, lag)
		if err != nil {
			return nil, err
		}
		tm := c.Symmetrized().TransitionMatrix(0)
		lcs := tm.LargestConnectedSet()
		rt, _ := tm.Restrict(lcs)
		rt.Lag = float64(lag) * frameTime
		out[li] = rt.SlowestTimescale()
	}
	return out, nil
}

// PopulationCurve propagates an initial distribution and reports, at each
// multiple of the lag time, the total probability inside the given state
// set — the Fig 4 "fraction folded vs time" observable. It returns parallel
// time (in the Lag's unit) and fraction slices of length steps+1.
func (t *TransitionMatrix) PopulationCurve(p0 []float64, states []int, steps int) (times, frac []float64) {
	inSet := make([]bool, t.n)
	for _, s := range states {
		if s >= 0 && s < t.n {
			inSet[s] = true
		}
	}
	sum := func(p []float64) float64 {
		s := 0.0
		for i, v := range p {
			if inSet[i] {
				s += v
			}
		}
		return s
	}
	times = make([]float64, 0, steps+1)
	frac = make([]float64, 0, steps+1)
	p := append([]float64(nil), p0...)
	times = append(times, 0)
	frac = append(frac, sum(p))
	for k := 1; k <= steps; k++ {
		p = t.Propagate(p)
		times = append(times, float64(k)*t.Lag)
		frac = append(frac, sum(p))
	}
	return times, frac
}

// EquilibriumTopState returns the state with the largest stationary
// probability and that probability — the paper's blind native-state
// prediction: "the lowest free energy conformation can be predicted from
// the largest-population cluster at equilibrium".
func (t *TransitionMatrix) EquilibriumTopState() (state int, pi float64) {
	p := t.StationaryDistribution(1e-12, 10000)
	best, bestP := 0, -1.0
	for i, v := range p {
		if v > bestP {
			best, bestP = i, v
		}
	}
	return best, bestP
}
