package msm

import (
	"fmt"
	"testing"

	"copernicus/internal/rng"
)

// randomWalkTrajs generates deterministic pseudo-Brownian trajectories in
// dim dimensions for the streaming tests.
func randomWalkTrajs(nTraj, nFrames, dim int, seed uint64) [][][]float64 {
	r := rng.New(seed)
	trajs := make([][][]float64, nTraj)
	for t := range trajs {
		x := make([]float64, dim)
		for d := range x {
			x[d] = 4 * r.Norm()
		}
		frames := make([][]float64, nFrames)
		for f := range frames {
			for d := range x {
				x[d] += 0.5 * r.Norm()
			}
			frames[f] = append([]float64(nil), x...)
		}
		trajs[t] = frames
	}
	return trajs
}

// TestStreamFrozenEquivalence is the property test behind the streaming
// pipeline's correctness claim: on a frozen center set, incremental
// assignment and incremental lag-transition counting reproduce the batch
// AssignAll + CountTransitions pipeline exactly — same assignments, same
// counts, and therefore identical adaptive decisions (uncertainty weights
// and spawn fan-out) downstream.
func TestStreamFrozenEquivalence(t *testing.T) {
	const lag = 4
	for _, seed := range []uint64{1, 7, 1234, 99991} {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			trajs := randomWalkTrajs(6, 80, 3, seed)
			var all [][]float64
			for _, tr := range trajs {
				all = append(all, tr...)
			}
			clu, err := KCenters(all, 24, seed)
			if err != nil {
				t.Fatal(err)
			}

			s, err := FrozenStream(clu.Centers, lag)
			if err != nil {
				t.Fatal(err)
			}
			// Interleave trajectories frame by frame — stream arrival order
			// must not matter as long as each trajectory stays in order.
			streamed := make([][]int, len(trajs))
			for f := 0; f < len(trajs[0]); f++ {
				for ti, tr := range trajs {
					a, err := s.Observe(fmt.Sprintf("traj-%d", ti), tr[f])
					if err != nil {
						t.Fatal(err)
					}
					streamed[ti] = append(streamed[ti], a)
				}
			}

			// Batch pipeline on the same frames.
			var dtrajs [][]int
			for _, tr := range trajs {
				dtrajs = append(dtrajs, clu.AssignAll(tr))
			}
			for ti := range trajs {
				for f := range dtrajs[ti] {
					if streamed[ti][f] != dtrajs[ti][f] {
						t.Fatalf("traj %d frame %d: stream assigned %d, batch %d",
							ti, f, streamed[ti][f], dtrajs[ti][f])
					}
				}
			}
			batch, err := CountTransitions(dtrajs, clu.K(), lag)
			if err != nil {
				t.Fatal(err)
			}
			sc := s.Counts()
			if sc.N() != batch.N() {
				t.Fatalf("count dims: stream %d, batch %d", sc.N(), batch.N())
			}
			for i := 0; i < batch.N(); i++ {
				for j := 0; j < batch.N(); j++ {
					if sc.Get(i, j) != batch.Get(i, j) {
						t.Fatalf("count (%d,%d): stream %g, batch %g",
							i, j, sc.Get(i, j), batch.Get(i, j))
					}
				}
			}

			// Identical adaptive decisions: uncertainty weights and spawn
			// fan-out derived from either count matrix must agree.
			lcs := batch.TransitionMatrix(0).LargestConnectedSet()
			us, ub := StateUncertainty(sc), StateUncertainty(batch)
			for i := range ub {
				if us[i] != ub[i] {
					t.Fatalf("uncertainty[%d]: stream %g, batch %g", i, us[i], ub[i])
				}
			}
			ss, err := SpawnCounts(AdaptiveWeighting, lcs, us, 50, seed)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := SpawnCounts(AdaptiveWeighting, lcs, ub, 50, seed)
			if err != nil {
				t.Fatal(err)
			}
			if len(ss) != len(sb) {
				t.Fatalf("spawn maps differ in size: %d vs %d", len(ss), len(sb))
			}
			for st, n := range sb {
				if ss[st] != n {
					t.Fatalf("spawn[%d]: stream %d, batch %d", st, ss[st], n)
				}
			}
		})
	}
}

// TestStreamGrowthBounded proves the center budget holds no matter how many
// frames arrive, and that memory stays bounded after trajectories retire.
func TestStreamGrowthBounded(t *testing.T) {
	s, err := NewStreamClusterer(StreamConfig{K: 8, Lag: 2})
	if err != nil {
		t.Fatal(err)
	}
	trajs := randomWalkTrajs(4, 200, 3, 42)
	for ti, tr := range trajs {
		id := fmt.Sprintf("t%d", ti)
		for _, f := range tr {
			if _, err := s.Observe(id, f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.K() > 8 {
		t.Fatalf("center budget exceeded: %d > 8", s.K())
	}
	if s.Frames() != 4*200 {
		t.Fatalf("frames observed %d, want %d", s.Frames(), 4*200)
	}
	for ti := range trajs {
		s.DropTrajectory(fmt.Sprintf("t%d", ti))
	}
	if n := len(s.trajs); n != 0 {
		t.Fatalf("%d trajectory rings leaked after drop", n)
	}
}

// TestStreamMinDist verifies the novelty threshold: with a large MinDist,
// near-duplicate frames must not found new centers.
func TestStreamMinDist(t *testing.T) {
	s, err := NewStreamClusterer(StreamConfig{K: 16, Lag: 1, MinDist: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Observe("a", []float64{float64(i%3) * 0.01, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if s.K() != 1 {
		t.Fatalf("MinDist 10 should hold one center over jittered input, got %d", s.K())
	}
	if _, err := s.Observe("a", []float64{100, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if s.K() != 2 {
		t.Fatalf("distant frame should found a second center, got %d", s.K())
	}
}

// TestStreamStateRoundTrip proves a save/restore mid-stream continues
// identically to an uninterrupted run — the property the controller's
// durable snapshot relies on.
func TestStreamStateRoundTrip(t *testing.T) {
	mk := func() *StreamClusterer {
		s, err := NewStreamClusterer(StreamConfig{K: 12, Lag: 3, MinDist: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	trajs := randomWalkTrajs(3, 120, 3, 77)
	full := mk()
	split := mk()
	feed := func(s *StreamClusterer, from, to int) []int {
		var out []int
		for f := from; f < to; f++ {
			for ti, tr := range trajs {
				a, err := s.Observe(fmt.Sprintf("t%d", ti), tr[f])
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, a)
			}
		}
		return out
	}
	a1 := feed(full, 0, 120)
	feed(split, 0, 60)
	restored, err := RestoreStream(split.State())
	if err != nil {
		t.Fatal(err)
	}
	tail := feed(restored, 60, 120)
	if len(tail) != 3*60 {
		t.Fatalf("tail length %d", len(tail))
	}
	// The uninterrupted run's tail must match the restored run's tail.
	offset := len(a1) - len(tail)
	for i, a := range tail {
		if a1[offset+i] != a {
			t.Fatalf("assignment %d diverged after restore: %d vs %d", i, a1[offset+i], a)
		}
	}
	// And the final counts must be identical.
	for i := 0; i < full.Counts().N(); i++ {
		for j := 0; j < full.Counts().N(); j++ {
			if full.Counts().Get(i, j) != restored.Counts().Get(i, j) {
				t.Fatalf("count (%d,%d) diverged after restore", i, j)
			}
		}
	}
}

// TestAssignAllIntoMatchesAssignAll pins the buffer-reusing fast path to
// the reference implementation, and proves the steady-state path allocates
// nothing.
func TestAssignAllIntoMatchesAssignAll(t *testing.T) {
	trajs := randomWalkTrajs(1, 400, 3, 5)
	clu, err := KCenters(trajs[0], 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := clu.AssignAll(trajs[0])
	buf := make([]int, 0, len(trajs[0]))
	got := clu.AssignAllInto(buf, trajs[0])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: %d vs %d", i, got[i], want[i])
		}
	}
	clu.Pack()
	allocs := testing.AllocsPerRun(10, func() {
		got = clu.AssignAllInto(got, trajs[0])
	})
	if allocs != 0 {
		t.Fatalf("AssignAllInto with a fitting buffer allocated %.0f times per run", allocs)
	}
}

func BenchmarkAssign(b *testing.B) {
	trajs := randomWalkTrajs(1, 2000, 3, 9)
	clu, err := KCenters(trajs[0], 200, 9)
	if err != nil {
		b.Fatal(err)
	}
	clu.Pack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clu.Assign(trajs[0][i%len(trajs[0])])
	}
}

func BenchmarkAssignAll(b *testing.B) {
	trajs := randomWalkTrajs(1, 2000, 3, 9)
	clu, err := KCenters(trajs[0], 200, 9)
	if err != nil {
		b.Fatal(err)
	}
	clu.Pack()
	buf := make([]int, len(trajs[0]))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = clu.AssignAllInto(buf, trajs[0])
	}
}

func BenchmarkStreamObserve(b *testing.B) {
	s, err := NewStreamClusterer(StreamConfig{K: 200, Lag: 4})
	if err != nil {
		b.Fatal(err)
	}
	trajs := randomWalkTrajs(1, 2000, 3, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Observe("t0", trajs[0][i%len(trajs[0])]); err != nil {
			b.Fatal(err)
		}
	}
}
