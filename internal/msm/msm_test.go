package msm

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/rng"
)

// --- clustering ---

func gaussianBlobs(n int, centers [][]float64, spread float64, seed uint64) [][]float64 {
	r := rng.New(seed)
	pts := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		p := make([]float64, len(c))
		for d := range p {
			p[d] = c[d] + spread*r.Norm()
		}
		pts = append(pts, p)
	}
	return pts
}

func TestKCentersBasics(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	pts := gaussianBlobs(300, centers, 0.3, 1)
	c, err := KCenters(pts, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
	// Each true blob center should be near one cluster center.
	for _, tc := range centers {
		best := math.Inf(1)
		for _, cc := range c.Centers {
			if d := sqDist(tc, cc); d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 1.5 {
			t.Errorf("no cluster center near blob %v (nearest %.2f away)", tc, math.Sqrt(best))
		}
	}
	// Points from the same blob should co-cluster.
	a := c.Assign(pts[0])
	b := c.Assign(pts[3]) // same blob (i%3)
	if a != b {
		t.Error("same-blob points assigned to different clusters")
	}
	// MaxRadius should be small compared with blob separation.
	if r := c.MaxRadius(pts); r > 3 {
		t.Errorf("MaxRadius = %v", r)
	}
}

func TestKCentersErrors(t *testing.T) {
	if _, err := KCenters(nil, 3, 1); err == nil {
		t.Error("empty point set should fail")
	}
	if _, err := KCenters([][]float64{{1}}, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KCenters([][]float64{{1, 2}, {1}}, 2, 1); err == nil {
		t.Error("ragged dimensions should fail")
	}
}

func TestKCentersKLargerThanN(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	c, err := KCenters(pts, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 3 {
		t.Errorf("K = %d, want 3 (one per distinct point)", c.K())
	}
}

func TestKCentersDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	c, err := KCenters(pts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 {
		t.Errorf("K = %d, want 2 for two distinct locations", c.K())
	}
}

func TestKCentersDeterministic(t *testing.T) {
	pts := gaussianBlobs(200, [][]float64{{0, 0}, {5, 5}}, 0.5, 3)
	a, _ := KCenters(pts, 10, 42)
	b, _ := KCenters(pts, 10, 42)
	for i := range a.Centers {
		for d := range a.Centers[i] {
			if a.Centers[i][d] != b.Centers[i][d] {
				t.Fatal("KCenters not deterministic")
			}
		}
	}
	if a.CenterSource[0] != b.CenterSource[0] {
		t.Fatal("CenterSource not deterministic")
	}
}

func TestCenterSourceValid(t *testing.T) {
	pts := gaussianBlobs(100, [][]float64{{0, 0}, {4, 4}}, 0.3, 5)
	c, _ := KCenters(pts, 8, 9)
	for i, src := range c.CenterSource {
		if src < 0 || src >= len(pts) {
			t.Fatalf("CenterSource[%d] = %d out of range", i, src)
		}
		for d := range pts[src] {
			if pts[src][d] != c.Centers[i][d] {
				t.Fatalf("center %d does not match its source point", i)
			}
		}
	}
}

func TestPropertyAssignReturnsNearest(t *testing.T) {
	pts := gaussianBlobs(100, [][]float64{{0, 0}, {8, 0}, {0, 8}}, 1, 11)
	c, _ := KCenters(pts, 5, 13)
	f := func(x, y float64) bool {
		cl := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 20)
		}
		p := []float64{cl(x), cl(y)}
		got := c.Assign(p)
		for i := range c.Centers {
			if sqDist(p, c.Centers[i]) < sqDist(p, c.Centers[got])-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- counts and transition matrices ---

func TestCountTransitions(t *testing.T) {
	dtrajs := [][]int{{0, 1, 0, 1, 2}, {2, 2}}
	c, err := CountTransitions(dtrajs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Get(0, 1) != 2 || c.Get(1, 0) != 1 || c.Get(1, 2) != 1 || c.Get(2, 2) != 1 {
		t.Errorf("unexpected counts: 01=%v 10=%v 12=%v 22=%v",
			c.Get(0, 1), c.Get(1, 0), c.Get(1, 2), c.Get(2, 2))
	}
	if c.Total() != 5 {
		t.Errorf("Total = %v, want 5", c.Total())
	}
}

func TestCountTransitionsLag(t *testing.T) {
	dtrajs := [][]int{{0, 1, 2, 0, 1, 2}}
	c, err := CountTransitions(dtrajs, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With lag 3: (0→0), (1→1), (2→2).
	for i := 0; i < 3; i++ {
		if c.Get(i, i) != 1 {
			t.Errorf("lag-3 count (%d,%d) = %v", i, i, c.Get(i, i))
		}
	}
	// No cross-boundary transitions with multiple trajectories.
	c2, _ := CountTransitions([][]int{{0}, {1}}, 2, 1)
	if c2.Total() != 0 {
		t.Error("transitions must not cross trajectory boundaries")
	}
}

func TestCountTransitionsErrors(t *testing.T) {
	if _, err := CountTransitions([][]int{{0, 1}}, 2, 0); err == nil {
		t.Error("lag 0 should fail")
	}
	if _, err := CountTransitions([][]int{{0, 5}}, 2, 1); err == nil {
		t.Error("out-of-range state should fail")
	}
}

func TestCountsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Add should panic")
		}
	}()
	NewCounts(2).Add(0, 5, 1)
}

func TestSymmetrized(t *testing.T) {
	c := NewCounts(2)
	c.Add(0, 1, 4)
	s := c.Symmetrized()
	if s.Get(0, 1) != 2 || s.Get(1, 0) != 2 {
		t.Errorf("symmetrized: 01=%v 10=%v", s.Get(0, 1), s.Get(1, 0))
	}
	if s.Total() != c.Total() {
		t.Error("symmetrization must preserve total counts")
	}
}

func TestTransitionMatrixRowStochastic(t *testing.T) {
	c := NewCounts(3)
	c.Add(0, 1, 3)
	c.Add(0, 2, 1)
	c.Add(1, 0, 2)
	// State 2 unvisited → absorbing.
	tm := c.TransitionMatrix(0)
	if e := tm.RowStochasticError(); e > 1e-12 {
		t.Errorf("row stochastic error = %v", e)
	}
	if p := tm.Prob(0, 1); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("P(0→1) = %v, want 0.75", p)
	}
	if p := tm.Prob(2, 2); p != 1 {
		t.Errorf("unvisited state should be absorbing, P(2→2) = %v", p)
	}
}

func TestTransitionMatrixPrior(t *testing.T) {
	c := NewCounts(2)
	c.Add(0, 1, 1)
	tm := c.TransitionMatrix(1)
	// Row 0: total = 1 count + 1 prior = 2; diagonal gets the prior.
	if p := tm.Prob(0, 0); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(0→0) with prior = %v, want 0.5", p)
	}
	if e := tm.RowStochasticError(); e > 1e-12 {
		t.Errorf("row stochastic error with prior = %v", e)
	}
}

func TestPropagate(t *testing.T) {
	c := NewCounts(2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	tm := c.TransitionMatrix(0)
	p := tm.Propagate([]float64{1, 0})
	if p[0] != 0 || p[1] != 1 {
		t.Errorf("Propagate = %v, want [0 1]", p)
	}
	p = tm.PropagateN([]float64{1, 0}, 2)
	if p[0] != 1 || p[1] != 0 {
		t.Errorf("PropagateN(2) = %v, want [1 0]", p)
	}
}

func TestPropagatePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch should panic")
		}
	}()
	NewCounts(2).TransitionMatrix(0).Propagate([]float64{1})
}

func TestPropertyPropagatePreservesProbability(t *testing.T) {
	r := rng.New(17)
	// Random ergodic chain over 5 states.
	c := NewCounts(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			c.Add(i, j, r.Float64()+0.01)
		}
	}
	tm := c.TransitionMatrix(0)
	f := func(raw [5]float64) bool {
		p := make([]float64, 5)
		tot := 0.0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			p[i] = math.Abs(math.Mod(v, 10))
			tot += p[i]
		}
		if tot == 0 {
			return true
		}
		for i := range p {
			p[i] /= tot
		}
		q := tm.Propagate(p)
		s := 0.0
		for _, v := range q {
			s += v
		}
		return math.Abs(s-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStationaryDistributionTwoState(t *testing.T) {
	// P(0→1)=0.1, P(1→0)=0.3 → π = (0.75, 0.25).
	c := NewCounts(2)
	c.Add(0, 0, 9)
	c.Add(0, 1, 1)
	c.Add(1, 0, 3)
	c.Add(1, 1, 7)
	tm := c.TransitionMatrix(0)
	pi := tm.StationaryDistribution(1e-14, 100000)
	if math.Abs(pi[0]-0.75) > 1e-6 || math.Abs(pi[1]-0.25) > 1e-6 {
		t.Errorf("π = %v, want [0.75 0.25]", pi)
	}
	// Invariance: πT = π.
	q := tm.Propagate(pi)
	for i := range q {
		if math.Abs(q[i]-pi[i]) > 1e-9 {
			t.Errorf("π not invariant at %d: %v vs %v", i, q[i], pi[i])
		}
	}
}

func TestEquilibriumTopState(t *testing.T) {
	c := NewCounts(2)
	c.Add(0, 0, 9)
	c.Add(0, 1, 1)
	c.Add(1, 0, 3)
	c.Add(1, 1, 7)
	tm := c.TransitionMatrix(0)
	s, p := tm.EquilibriumTopState()
	if s != 0 {
		t.Errorf("top state = %d, want 0", s)
	}
	if math.Abs(p-0.75) > 1e-6 {
		t.Errorf("top π = %v, want 0.75", p)
	}
}

func TestLargestConnectedSet(t *testing.T) {
	// States 0↔1↔2 strongly connected; 3 only reachable (no return); 4 isolated.
	c := NewCounts(5)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(1, 2, 1)
	c.Add(2, 0, 1)
	c.Add(0, 3, 1)
	tm := c.TransitionMatrix(0)
	lcs := tm.LargestConnectedSet()
	want := []int{0, 1, 2}
	if len(lcs) != len(want) {
		t.Fatalf("LCS = %v, want %v", lcs, want)
	}
	for i := range want {
		if lcs[i] != want[i] {
			t.Fatalf("LCS = %v, want %v", lcs, want)
		}
	}
}

func TestLargestConnectedSetChain(t *testing.T) {
	// A long bidirectional chain is one big SCC; exercises the iterative
	// Tarjan on deep graphs.
	n := 20000
	c := NewCounts(n)
	for i := 0; i+1 < n; i++ {
		c.Add(i, i+1, 1)
		c.Add(i+1, i, 1)
	}
	tm := c.TransitionMatrix(0)
	if lcs := tm.LargestConnectedSet(); len(lcs) != n {
		t.Errorf("chain LCS size = %d, want %d", len(lcs), n)
	}
}

func TestRestrict(t *testing.T) {
	c := NewCounts(4)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	c.Add(0, 3, 2) // leak to a state we will drop
	tm := c.TransitionMatrix(0)
	rt, mapping := tm.Restrict([]int{0, 1})
	if rt.N() != 2 {
		t.Fatalf("restricted N = %d", rt.N())
	}
	if mapping[0] != 0 || mapping[1] != 1 {
		t.Errorf("mapping = %v", mapping)
	}
	if e := rt.RowStochasticError(); e > 1e-12 {
		t.Errorf("restricted matrix not stochastic: %v", e)
	}
	// Row 0 originally: P(0→1)=1/3, P(0→3)=2/3. After dropping 3 and
	// renormalising, P(0→1)=1.
	if p := rt.Prob(0, 1); math.Abs(p-1) > 1e-12 {
		t.Errorf("restricted P(0→1) = %v, want 1", p)
	}
}

func TestRestrictIsolatedRow(t *testing.T) {
	c := NewCounts(3)
	c.Add(0, 2, 1) // state 0 only leads out of the subset
	c.Add(1, 1, 1)
	tm := c.TransitionMatrix(0)
	rt, _ := tm.Restrict([]int{0, 1})
	// State 0 loses all mass → must become absorbing, not a zero row.
	if p := rt.Prob(0, 0); p != 1 {
		t.Errorf("dangling restricted row should be absorbing, P=%v", p)
	}
}

// --- timescales ---

func TestSlowestTimescaleTwoState(t *testing.T) {
	// Two-state chain with P01=a, P10=b has λ2 = 1−a−b.
	a, b := 0.1, 0.3
	c := NewCounts(2)
	c.Add(0, 0, (1-a)*1000)
	c.Add(0, 1, a*1000)
	c.Add(1, 0, b*1000)
	c.Add(1, 1, (1-b)*1000)
	tm := c.TransitionMatrix(0)
	tm.Lag = 2.5 // ns
	want := -2.5 / math.Log(1-a-b)
	got := tm.SlowestTimescale()
	if math.Abs(got-want) > 1e-3*want {
		t.Errorf("t2 = %v, want %v", got, want)
	}
}

func TestImpliedTimescalesFlattenForMarkovChain(t *testing.T) {
	// Data generated BY a Markov chain must give lag-independent implied
	// timescales (within sampling noise) — the Markovianity test.
	r := rng.New(23)
	// Metastable 3-state chain.
	p := [][]float64{
		{0.98, 0.02, 0.0},
		{0.02, 0.96, 0.02},
		{0.0, 0.02, 0.98},
	}
	var dtrajs [][]int
	for tr := 0; tr < 10; tr++ {
		state := tr % 3
		dt := make([]int, 20000)
		for k := range dt {
			dt[k] = state
			state = r.Choice(p[state])
		}
		dtrajs = append(dtrajs, dt)
	}
	lags := []int{1, 2, 5, 10}
	ts, err := ImpliedTimescales(dtrajs, 3, lags, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ts {
		if math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("timescale at lag %d = %v", lags[i], v)
		}
	}
	// Flatness: all within 25% of the lag-1 value.
	for i := 1; i < len(ts); i++ {
		if math.Abs(ts[i]-ts[0]) > 0.25*ts[0] {
			t.Errorf("implied timescale at lag %d = %v, lag 1 = %v; not flat", lags[i], ts[i], ts[0])
		}
	}
}

func TestImpliedTimescalesErrors(t *testing.T) {
	if _, err := ImpliedTimescales([][]int{{0, 1}}, 2, []int{1}, 0); err == nil {
		t.Error("zero frame time should fail")
	}
	if _, err := ImpliedTimescales([][]int{{0, 9}}, 2, []int{1}, 1); err == nil {
		t.Error("bad state should fail")
	}
}

func TestPopulationCurve(t *testing.T) {
	// Absorbing fold: P(U→F)=0.2, F absorbing.
	c := NewCounts(2)
	c.Add(0, 0, 8)
	c.Add(0, 1, 2)
	c.Add(1, 1, 1)
	tm := c.TransitionMatrix(0)
	tm.Lag = 50
	times, frac := tm.PopulationCurve([]float64{1, 0}, []int{1}, 3)
	wantTimes := []float64{0, 50, 100, 150}
	wantFrac := []float64{0, 0.2, 0.36, 0.488}
	for i := range wantTimes {
		if times[i] != wantTimes[i] {
			t.Errorf("times[%d] = %v", i, times[i])
		}
		if math.Abs(frac[i]-wantFrac[i]) > 1e-12 {
			t.Errorf("frac[%d] = %v, want %v", i, frac[i], wantFrac[i])
		}
	}
}

// --- adaptive sampling ---

func TestStateUncertainty(t *testing.T) {
	c := NewCounts(3)
	// State 0: many counts, deterministic → low uncertainty.
	c.Add(0, 1, 1000)
	// State 1: few counts, split → high uncertainty.
	c.Add(1, 0, 1)
	c.Add(1, 2, 1)
	// State 2: unvisited → maximal.
	u := StateUncertainty(c)
	if u[2] != 1 {
		t.Errorf("unvisited uncertainty = %v, want 1", u[2])
	}
	if !(u[1] > u[0]) {
		t.Errorf("u = %v; poorly sampled state must rank above well-sampled", u)
	}
	if u[0] != 0 {
		t.Errorf("deterministic transition uncertainty = %v, want 0", u[0])
	}
}

func TestSpawnCountsEven(t *testing.T) {
	eligible := []int{2, 5, 7}
	out, err := SpawnCounts(EvenWeighting, eligible, nil, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s, n := range out {
		total += n
		found := false
		for _, e := range eligible {
			if s == e {
				found = true
			}
		}
		if !found {
			t.Errorf("spawned from ineligible state %d", s)
		}
		if n < 3 || n > 4 {
			t.Errorf("even split gave state %d count %d", s, n)
		}
	}
	if total != 10 {
		t.Errorf("total spawns = %d, want 10", total)
	}
}

func TestSpawnCountsAdaptive(t *testing.T) {
	eligible := []int{0, 1, 2}
	u := []float64{0.01, 0.01, 1.0}
	out, err := SpawnCounts(AdaptiveWeighting, eligible, u, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range out {
		total += n
	}
	if total != 300 {
		t.Errorf("total = %d", total)
	}
	if out[2] < 250 {
		t.Errorf("high-uncertainty state got only %d of 300 spawns", out[2])
	}
}

func TestSpawnCountsAdaptiveAllZeroFallsBack(t *testing.T) {
	out, err := SpawnCounts(AdaptiveWeighting, []int{0, 1}, []float64{0, 0}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 2 {
		t.Errorf("zero-uncertainty fallback should be even, got %v", out)
	}
}

func TestSpawnCountsErrors(t *testing.T) {
	if _, err := SpawnCounts(EvenWeighting, []int{0}, nil, 0, 1); err == nil {
		t.Error("total=0 should fail")
	}
	if _, err := SpawnCounts(EvenWeighting, nil, nil, 5, 1); err == nil {
		t.Error("no eligible states should fail")
	}
	if _, err := SpawnCounts(AdaptiveWeighting, []int{5}, []float64{1}, 5, 1); err == nil {
		t.Error("eligible state outside uncertainty vector should fail")
	}
	if _, err := SpawnCounts(Weighting(42), []int{0}, []float64{1}, 5, 1); err == nil {
		t.Error("unknown weighting should fail")
	}
}

func TestSpawnCountsDeterministic(t *testing.T) {
	u := []float64{0.5, 0.5, 0.7}
	a, _ := SpawnCounts(AdaptiveWeighting, []int{0, 1, 2}, u, 50, 9)
	b, _ := SpawnCounts(AdaptiveWeighting, []int{0, 1, 2}, u, 50, 9)
	for s, n := range a {
		if b[s] != n {
			t.Fatal("SpawnCounts not deterministic")
		}
	}
}

func TestWeightingString(t *testing.T) {
	if EvenWeighting.String() != "even" || AdaptiveWeighting.String() != "adaptive" {
		t.Error("weighting names wrong")
	}
	if Weighting(9).String() != "weighting(9)" {
		t.Error("unknown weighting name wrong")
	}
}

func BenchmarkKCenters1000x200(b *testing.B) {
	pts := gaussianBlobs(20000, [][]float64{{0, 0, 0}, {5, 0, 0}, {0, 5, 0}, {0, 0, 5}}, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KCenters(pts, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPropagate(b *testing.B) {
	r := rng.New(1)
	n := 1000
	c := NewCounts(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 10; k++ {
			c.Add(i, r.Intn(n), 1)
		}
	}
	tm := c.TransitionMatrix(0)
	p := make([]float64, n)
	p[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = tm.Propagate(p)
	}
}
