package msm

import (
	"fmt"
	"math"
	"sort"

	"copernicus/internal/rng"
)

// Weighting selects how new trajectories are distributed over microstates
// at each adaptive-sampling round — the user-settable MSM controller
// parameter of §3.2.
type Weighting int

const (
	// EvenWeighting starts a uniform number of trajectories from every
	// discovered state: best early on, when the state partitioning itself
	// is the dominant uncertainty.
	EvenWeighting Weighting = iota
	// AdaptiveWeighting weights states by the statistical uncertainty of
	// their outgoing transition probabilities, optimising convergence of
	// the kinetic model once the partitioning has stabilised (the paper
	// reports up to a twofold sampling-efficiency gain).
	AdaptiveWeighting
)

// String implements fmt.Stringer.
func (w Weighting) String() string {
	switch w {
	case EvenWeighting:
		return "even"
	case AdaptiveWeighting:
		return "adaptive"
	default:
		return fmt.Sprintf("weighting(%d)", int(w))
	}
}

// StateUncertainty returns a per-state uncertainty score from transition
// counts: the total standard error of the state's outgoing transition
// probability estimates,
//
//	u_i = sqrt( Σ_j p̂_ij (1 − p̂_ij) / (n_i + 1) ),
//
// the quantity adaptive sampling seeks to reduce (Bowman et al. 2009).
// Unvisited states get the maximal score 1 so exploration never starves.
func StateUncertainty(c *Counts) []float64 {
	u := make([]float64, c.N())
	for i := 0; i < c.N(); i++ {
		n := c.RowSum(i)
		if n == 0 {
			u[i] = 1
			continue
		}
		// Sum in sorted column order: map iteration order is randomized, and
		// a float sum must be order-independent to the last ULP for WAL
		// replay to reproduce the original spawn decisions exactly.
		cols := make([]int, 0, len(c.rows[i]))
		for j := range c.rows[i] {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		var s float64
		for _, j := range cols {
			p := c.rows[i][j] / n
			s += p * (1 - p) / (n + 1)
		}
		u[i] = math.Sqrt(s)
	}
	return u
}

// SpawnCounts distributes total new trajectories over the states listed in
// eligible according to the weighting mode. For EvenWeighting the
// distribution is as uniform as integer division allows (remainder spread
// deterministically from the seed); for AdaptiveWeighting states are drawn
// proportionally to their uncertainty scores.
//
// The returned map contains only states with at least one spawn.
func SpawnCounts(mode Weighting, eligible []int, uncertainty []float64, total int, seed uint64) (map[int]int, error) {
	if total <= 0 {
		return nil, fmt.Errorf("msm: total spawn count must be positive, got %d", total)
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("msm: no eligible states to spawn from")
	}
	out := make(map[int]int)
	r := rng.New(seed)
	switch mode {
	case EvenWeighting:
		base := total / len(eligible)
		rem := total % len(eligible)
		for _, s := range eligible {
			if base > 0 {
				out[s] = base
			}
		}
		// Spread the remainder over a random subset, deterministically.
		perm := r.Perm(len(eligible))
		for k := 0; k < rem; k++ {
			out[eligible[perm[k]]]++
		}
	case AdaptiveWeighting:
		w := make([]float64, len(eligible))
		anyPositive := false
		for k, s := range eligible {
			if s < 0 || s >= len(uncertainty) {
				return nil, fmt.Errorf("msm: eligible state %d outside uncertainty vector of length %d", s, len(uncertainty))
			}
			w[k] = uncertainty[s]
			if w[k] > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			// Perfectly converged model: fall back to even spawning.
			return SpawnCounts(EvenWeighting, eligible, uncertainty, total, seed)
		}
		for k := 0; k < total; k++ {
			out[eligible[r.Choice(w)]]++
		}
	default:
		return nil, fmt.Errorf("msm: unknown weighting mode %v", mode)
	}
	return out, nil
}
