// Streaming, incremental MSM construction: an online counterpart to
// KCenters + AssignAll + CountTransitions that digests frames as they
// arrive, so an adaptive controller's per-round analysis cost is O(new
// frames) instead of O(all frames sampled so far).
//
// The clusterer follows the mini-batch k-means family used by streaming
// MSM pipelines (HTMD's MiniBatchKMeans, the DeepDriveMD analysis loop):
// while fewer than K centers exist, a sufficiently novel frame founds a new
// center; afterwards each frame nudges its nearest center toward itself
// with a 1/n learning rate. Transition counting keeps only a lag-length
// ring of assignments per trajectory, so memory is bounded by
// K·dim + trajectories·lag regardless of campaign length.
package msm

import (
	"fmt"
	"sort"
)

// StreamConfig configures a StreamClusterer.
type StreamConfig struct {
	// K is the maximum number of centers (the microstate budget).
	K int
	// Lag is the transition-counting lag in frames.
	Lag int
	// MinDist is the minimum Euclidean distance from every existing center
	// at which a frame founds a new center while the budget lasts. 0 admits
	// any distinct frame, which front-loads the budget onto the first
	// basin explored; set it near the expected cluster radius.
	MinDist float64
}

func (c *StreamConfig) validate() error {
	if c.K < 2 {
		return fmt.Errorf("msm: stream clusterer needs at least two centers, got %d", c.K)
	}
	if c.Lag < 1 {
		return fmt.Errorf("msm: stream lag must be >= 1 frame, got %d", c.Lag)
	}
	if c.MinDist < 0 {
		return fmt.Errorf("msm: negative stream MinDist %g", c.MinDist)
	}
	return nil
}

// trajStream is one trajectory's bounded assignment memory: the ring holds
// the last Lag assignments so transitions at the lag can be counted without
// retaining the trajectory itself. n is the trajectory's frame watermark —
// how many frames it has contributed.
type trajStream struct {
	ring []int
	n    int
}

// StreamClusterer ingests frames one at a time, maintaining cluster
// centers, per-trajectory assignment watermarks and a lag-time transition
// count matrix incrementally. It is not safe for concurrent use; the MSM
// controller drives it under the project lock.
type StreamClusterer struct {
	cfg    StreamConfig
	dim    int       // feature dimension, fixed by the first frame
	flat   []float64 // packed centers, row-major (len = k*dim)
	weight []float64 // frames absorbed per center (mini-batch learning rate)
	frozen bool
	counts *Counts
	trajs  map[string]*trajStream
	frames int // total frames observed
}

// NewStreamClusterer returns an empty incremental clusterer.
func NewStreamClusterer(cfg StreamConfig) (*StreamClusterer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &StreamClusterer{
		cfg:    cfg,
		counts: NewCounts(cfg.K),
		trajs:  make(map[string]*trajStream),
	}, nil
}

// FrozenStream returns a clusterer pre-seeded with the given centers and
// frozen: it never founds or moves a center, so its assignments match
// Clustering{Centers: centers}.Assign frame for frame. The equivalence
// property tests and A/B harnesses are built on it.
func FrozenStream(centers [][]float64, lag int) (*StreamClusterer, error) {
	if len(centers) == 0 {
		return nil, fmt.Errorf("msm: frozen stream needs at least one center")
	}
	k := len(centers)
	if k < 2 {
		k = 2 // satisfy the config floor; the extra state stays unvisited
	}
	s, err := NewStreamClusterer(StreamConfig{K: k, Lag: lag})
	if err != nil {
		return nil, err
	}
	s.dim = len(centers[0])
	for _, ctr := range centers {
		if len(ctr) != s.dim {
			return nil, fmt.Errorf("msm: frozen stream centers have mixed dimensions")
		}
		s.flat = append(s.flat, ctr...)
		s.weight = append(s.weight, 1)
	}
	s.frozen = true
	return s, nil
}

// K returns the number of centers allocated so far (grows toward cfg.K).
func (s *StreamClusterer) K() int {
	if s.dim == 0 {
		return 0
	}
	return len(s.flat) / s.dim
}

// Frames returns the total number of frames observed.
func (s *StreamClusterer) Frames() int { return s.frames }

// Counts returns the live transition-count matrix over the full K-state
// budget (unallocated states have empty rows). The caller must treat it as
// read-only; TransitionMatrix and StateUncertainty never mutate it.
func (s *StreamClusterer) Counts() *Counts { return s.counts }

// Centers returns a copy of the current centers. With mini-batch updates
// enabled these are running means, not sampled conformations — but each
// starts at a real frame and moves toward its cluster's centroid, so they
// remain valid restart coordinates for adaptive respawning.
func (s *StreamClusterer) Centers() [][]float64 {
	k := s.K()
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = append([]float64(nil), s.flat[i*s.dim:(i+1)*s.dim]...)
	}
	return out
}

// Freeze stops center creation and mini-batch drift: subsequent Observe
// calls assign against the fixed center set exactly as Clustering.Assign
// would, which is what makes the incremental counts provably equal to the
// batch discretise + CountTransitions pipeline on the same frames.
func (s *StreamClusterer) Freeze() { s.frozen = true }

// Frozen reports whether the center set is frozen.
func (s *StreamClusterer) Frozen() bool { return s.frozen }

// Observe ingests one frame of the named trajectory, in trajectory frame
// order, and returns its state assignment. Frames of different trajectories
// may interleave arbitrarily — transition counting is per trajectory.
func (s *StreamClusterer) Observe(traj string, p []float64) (int, error) {
	if s.dim == 0 {
		if len(p) == 0 {
			return 0, fmt.Errorf("msm: stream frame with zero dimensions")
		}
		s.dim = len(p)
	}
	if len(p) != s.dim {
		return 0, fmt.Errorf("msm: stream frame has dimension %d, want %d", len(p), s.dim)
	}
	a := s.assignAndUpdate(p)
	s.frames++

	ts := s.trajs[traj]
	if ts == nil {
		ts = &trajStream{ring: make([]int, s.cfg.Lag)}
		s.trajs[traj] = ts
	}
	slot := ts.n % s.cfg.Lag
	if ts.n >= s.cfg.Lag {
		s.counts.Add(ts.ring[slot], a, 1)
	}
	ts.ring[slot] = a
	ts.n++
	return a, nil
}

// assignAndUpdate finds the nearest center (first-wins tie-breaking, same
// as Clustering.Assign), founding a new one or applying the mini-batch
// update as the mode dictates.
func (s *StreamClusterer) assignAndUpdate(p []float64) int {
	k := s.K()
	if k == 0 {
		return s.addCenter(p)
	}
	best, bestD := 0, -1.0
	for i, base := 0, 0; base < len(s.flat); i, base = i+1, base+s.dim {
		d := 0.0
		row := s.flat[base : base+s.dim : base+s.dim]
		for j, pj := range p {
			dj := pj - row[j]
			d += dj * dj
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	if s.frozen {
		return best
	}
	if k < s.cfg.K && bestD > s.cfg.MinDist*s.cfg.MinDist {
		return s.addCenter(p)
	}
	// Mini-batch k-means step: the center absorbs the frame with learning
	// rate 1/n(center), converging on its cluster's running mean.
	s.weight[best]++
	eta := 1 / s.weight[best]
	row := s.flat[best*s.dim : (best+1)*s.dim]
	for j, pj := range p {
		row[j] += eta * (pj - row[j])
	}
	return best
}

func (s *StreamClusterer) addCenter(p []float64) int {
	s.flat = append(s.flat, p...)
	s.weight = append(s.weight, 1)
	return len(s.weight) - 1
}

// DropTrajectory releases a terminated trajectory's assignment ring. Its
// counted transitions remain; only the bounded per-trajectory memory is
// reclaimed, keeping the live footprint proportional to active
// trajectories.
func (s *StreamClusterer) DropTrajectory(traj string) { delete(s.trajs, traj) }

// --- serialization (for controller.Durable snapshots) ---

// streamTrajState mirrors trajStream for gob.
type streamTrajState struct {
	ID   string
	Ring []int
	N    int
}

// StreamState is the gob-portable image of a StreamClusterer, embedded in
// the MSM controller's durable snapshot so a restarted or promoted server
// resumes the stream exactly where the WAL left it.
type StreamState struct {
	Cfg    StreamConfig
	Dim    int
	Flat   []float64
	Weight []float64
	Frozen bool
	Frames int
	// Counts as (i, j, weight) triplets, sorted for stable encodings.
	CountI []int
	CountJ []int
	CountW []float64
	Trajs  []streamTrajState
}

// State captures the clusterer for serialization.
func (s *StreamClusterer) State() StreamState {
	st := StreamState{
		Cfg:    s.cfg,
		Dim:    s.dim,
		Flat:   append([]float64(nil), s.flat...),
		Weight: append([]float64(nil), s.weight...),
		Frozen: s.frozen,
		Frames: s.frames,
	}
	for i := 0; i < s.counts.N(); i++ {
		row := s.counts.rows[i]
		cols := make([]int, 0, len(row))
		for j := range row {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		for _, j := range cols {
			st.CountI = append(st.CountI, i)
			st.CountJ = append(st.CountJ, j)
			st.CountW = append(st.CountW, row[j])
		}
	}
	ids := make([]string, 0, len(s.trajs))
	for id := range s.trajs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ts := s.trajs[id]
		st.Trajs = append(st.Trajs, streamTrajState{
			ID: id, Ring: append([]int(nil), ts.ring...), N: ts.n,
		})
	}
	return st
}

// RestoreStream rebuilds a clusterer from a captured state.
func RestoreStream(st StreamState) (*StreamClusterer, error) {
	s, err := NewStreamClusterer(st.Cfg)
	if err != nil {
		return nil, err
	}
	s.dim = st.Dim
	s.flat = append([]float64(nil), st.Flat...)
	s.weight = append([]float64(nil), st.Weight...)
	s.frozen = st.Frozen
	s.frames = st.Frames
	if len(st.CountI) != len(st.CountJ) || len(st.CountI) != len(st.CountW) {
		return nil, fmt.Errorf("msm: stream state has ragged count triplets")
	}
	for n, i := range st.CountI {
		s.counts.Add(i, st.CountJ[n], st.CountW[n])
	}
	for _, ts := range st.Trajs {
		ring := append([]int(nil), ts.Ring...)
		if len(ring) != st.Cfg.Lag {
			return nil, fmt.Errorf("msm: stream state trajectory %q has ring length %d, want lag %d",
				ts.ID, len(ring), st.Cfg.Lag)
		}
		s.trajs[ts.ID] = &trajStream{ring: ring, n: ts.N}
	}
	return s, nil
}
