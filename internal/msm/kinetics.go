package msm

import (
	"fmt"
	"math"
)

// MFPT computes the mean first passage time from every state into the
// target set by solving the linear system
//
//	m_i = τ + Σ_j T_ij m_j   for i ∉ target,  m_i = 0 for i ∈ target
//
// with Gauss–Seidel iteration (the matrix is diagonally dominant after the
// absorbing modification, so the sweep converges). Times are returned in
// the unit of t.Lag. States that cannot reach the target get +Inf — this is
// the "folding rate" analysis the paper derives from the converged model.
func (t *TransitionMatrix) MFPT(target []int) ([]float64, error) {
	if len(target) == 0 {
		return nil, fmt.Errorf("msm: MFPT needs a non-empty target set")
	}
	inTarget := make([]bool, t.n)
	for _, s := range target {
		if s < 0 || s >= t.n {
			return nil, fmt.Errorf("msm: MFPT target state %d outside [0,%d)", s, t.n)
		}
		inTarget[s] = true
	}
	reach := t.canReach(inTarget)

	m := make([]float64, t.n)
	for i := range m {
		if !inTarget[i] && !reach[i] {
			m[i] = math.Inf(1)
		}
	}
	tau := t.Lag
	if tau <= 0 {
		tau = 1
	}
	for iter := 0; iter < 100000; iter++ {
		maxDelta := 0.0
		for i := 0; i < t.n; i++ {
			if inTarget[i] || !reach[i] {
				continue
			}
			sum := tau
			var selfP float64
			for _, e := range t.rows[i] {
				switch {
				case e.col == i:
					selfP = e.prob
				case inTarget[e.col]:
					// contributes 0
				case !reach[e.col]:
					// unreachable neighbour: conditional on reaching the
					// target this path has probability zero mass; treat its
					// contribution through renormalisation below.
				default:
					sum += e.prob * m[e.col]
				}
			}
			if selfP >= 1 {
				continue // absorbing non-target state, stays +Inf via reach
			}
			next := sum / (1 - selfP)
			if d := math.Abs(next - m[i]); d > maxDelta && !math.IsInf(next, 0) {
				maxDelta = d
			}
			m[i] = next
		}
		if maxDelta < 1e-10*tau {
			break
		}
	}
	return m, nil
}

// canReach flags the states with a path into the marked set (reverse BFS
// over the transition graph).
func (t *TransitionMatrix) canReach(mark []bool) []bool {
	// Build reverse adjacency once.
	radj := make([][]int, t.n)
	for i := 0; i < t.n; i++ {
		for _, e := range t.rows[i] {
			if e.prob > 0 && e.col != i {
				radj[e.col] = append(radj[e.col], i)
			}
		}
	}
	reach := make([]bool, t.n)
	var queue []int
	for i, m := range mark {
		if m {
			reach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range radj[v] {
			if !reach[u] {
				reach[u] = true
				queue = append(queue, u)
			}
		}
	}
	return reach
}

// Committor computes the forward committor q⁺: the probability of reaching
// the product set B before the reactant set A, solving
//
//	q_i = Σ_j T_ij q_j  for i ∉ A∪B,  q_A = 0, q_B = 1
//
// by Gauss–Seidel. This is the "mechanism" observable of MSM analysis: the
// transition state ensemble sits at q ≈ ½.
func (t *TransitionMatrix) Committor(reactant, product []int) ([]float64, error) {
	if len(reactant) == 0 || len(product) == 0 {
		return nil, fmt.Errorf("msm: committor needs non-empty reactant and product sets")
	}
	inA := make([]bool, t.n)
	inB := make([]bool, t.n)
	for _, s := range reactant {
		if s < 0 || s >= t.n {
			return nil, fmt.Errorf("msm: committor reactant state %d outside [0,%d)", s, t.n)
		}
		inA[s] = true
	}
	for _, s := range product {
		if s < 0 || s >= t.n {
			return nil, fmt.Errorf("msm: committor product state %d outside [0,%d)", s, t.n)
		}
		if inA[s] {
			return nil, fmt.Errorf("msm: state %d is in both reactant and product sets", s)
		}
		inB[s] = true
	}
	q := make([]float64, t.n)
	for i := range q {
		if inB[i] {
			q[i] = 1
		}
	}
	for iter := 0; iter < 100000; iter++ {
		maxDelta := 0.0
		for i := 0; i < t.n; i++ {
			if inA[i] || inB[i] {
				continue
			}
			sum := 0.0
			var selfP float64
			for _, e := range t.rows[i] {
				if e.col == i {
					selfP = e.prob
					continue
				}
				sum += e.prob * q[e.col]
			}
			if selfP >= 1 {
				continue
			}
			next := sum / (1 - selfP)
			if d := math.Abs(next - q[i]); d > maxDelta {
				maxDelta = d
			}
			q[i] = next
		}
		if maxDelta < 1e-12 {
			break
		}
	}
	return q, nil
}

// ChapmanKolmogorovError quantifies Markovianity directly: it compares
// propagation of the lag-τ model k steps forward, T(τ)^k, against the model
// estimated at lag k·τ from the same trajectories, returning the mean
// absolute difference of the folded-set population over the given start
// distribution. Small values indicate the lag is long enough — the test
// behind the paper's "Markovian for lag times of 20 ns or greater".
func ChapmanKolmogorovError(dtrajs [][]int, nStates, lagFrames, k int, p0 []float64, set []int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("msm: CK test needs k >= 1")
	}
	short, err := CountTransitions(dtrajs, nStates, lagFrames)
	if err != nil {
		return 0, err
	}
	long, err := CountTransitions(dtrajs, nStates, lagFrames*k)
	if err != nil {
		return 0, err
	}
	tShort := short.TransitionMatrix(0)
	tLong := long.TransitionMatrix(0)

	inSet := make([]bool, nStates)
	for _, s := range set {
		if s >= 0 && s < nStates {
			inSet[s] = true
		}
	}
	mass := func(p []float64) float64 {
		s := 0.0
		for i, v := range p {
			if inSet[i] {
				s += v
			}
		}
		return s
	}
	predicted := mass(tShort.PropagateN(p0, k))
	measured := mass(tLong.Propagate(p0))
	return math.Abs(predicted - measured), nil
}

// LumpByCommittor coarse-grains the microstates into macrostates along the
// reaction coordinate: reactant set → macrostate 0, product set → nBins+1,
// and intermediate states binned by their forward committor value. This is
// the simple mechanism-level lumping used to talk about "the folded state",
// "the transition region" and "the unfolded state" of a model (a lightweight
// stand-in for full PCCA lumping).
func (t *TransitionMatrix) LumpByCommittor(reactant, product []int, nBins int) ([]int, error) {
	if nBins < 1 {
		return nil, fmt.Errorf("msm: committor lumping needs at least one intermediate bin")
	}
	q, err := t.Committor(reactant, product)
	if err != nil {
		return nil, err
	}
	inA := make([]bool, t.n)
	inB := make([]bool, t.n)
	for _, s := range reactant {
		inA[s] = true
	}
	for _, s := range product {
		inB[s] = true
	}
	macro := make([]int, t.n)
	for i := 0; i < t.n; i++ {
		switch {
		case inA[i]:
			macro[i] = 0
		case inB[i]:
			macro[i] = nBins + 1
		default:
			b := int(q[i]*float64(nBins)) + 1
			if b > nBins {
				b = nBins
			}
			macro[i] = b
		}
	}
	return macro, nil
}

// MacroPopulations sums a microstate distribution into macrostate masses
// given a lumping vector (values in [0, nMacro)).
func MacroPopulations(p []float64, macro []int, nMacro int) ([]float64, error) {
	if len(p) != len(macro) {
		return nil, fmt.Errorf("msm: %d probabilities for %d lumped states", len(p), len(macro))
	}
	out := make([]float64, nMacro)
	for i, m := range macro {
		if m < 0 || m >= nMacro {
			return nil, fmt.Errorf("msm: macrostate %d outside [0,%d)", m, nMacro)
		}
		out[m] += p[i]
	}
	return out, nil
}
