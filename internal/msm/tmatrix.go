package msm

import (
	"fmt"
	"math"
	"sort"
)

// Counts is a sparse transition-count matrix over n microstates.
type Counts struct {
	n    int
	rows []map[int]float64
}

// NewCounts returns an empty count matrix over n states.
func NewCounts(n int) *Counts {
	if n <= 0 {
		panic("msm: count matrix needs at least one state")
	}
	return &Counts{n: n, rows: make([]map[int]float64, n)}
}

// N returns the number of states.
func (c *Counts) N() int { return c.n }

// Add records weight w of transitions from state i to state j.
func (c *Counts) Add(i, j int, w float64) {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("msm: transition (%d,%d) outside %d states", i, j, c.n))
	}
	if c.rows[i] == nil {
		c.rows[i] = make(map[int]float64)
	}
	c.rows[i][j] += w
}

// Get returns the count from i to j.
func (c *Counts) Get(i, j int) float64 {
	if c.rows[i] == nil {
		return 0
	}
	return c.rows[i][j]
}

// RowSum returns the total outgoing count of state i.
func (c *Counts) RowSum(i int) float64 {
	s := 0.0
	for _, w := range c.rows[i] {
		s += w
	}
	return s
}

// Total returns the total number of counted transitions.
func (c *Counts) Total() float64 {
	s := 0.0
	for i := range c.rows {
		s += c.RowSum(i)
	}
	return s
}

// CountTransitions accumulates sliding-window transition counts at the given
// lag (in frames) from discretised trajectories into a count matrix over
// nStates. Transitions never cross trajectory boundaries.
func CountTransitions(dtrajs [][]int, nStates, lag int) (*Counts, error) {
	if lag < 1 {
		return nil, fmt.Errorf("msm: lag must be >= 1 frame, got %d", lag)
	}
	c := NewCounts(nStates)
	for ti, dt := range dtrajs {
		for k := 0; k+lag < len(dt); k++ {
			i, j := dt[k], dt[k+lag]
			if i < 0 || i >= nStates || j < 0 || j >= nStates {
				return nil, fmt.Errorf("msm: trajectory %d has state outside [0,%d)", ti, nStates)
			}
			c.Add(i, j, 1)
		}
	}
	return c, nil
}

// Symmetrized returns (C + Cᵀ)/2, the simplest reversible count estimator
// used for equilibrium analysis when trajectories are short.
func (c *Counts) Symmetrized() *Counts {
	s := NewCounts(c.n)
	for i, row := range c.rows {
		for j, w := range row {
			s.Add(i, j, w/2)
			s.Add(j, i, w/2)
		}
	}
	return s
}

// entry is one non-zero element of a transition-matrix row.
type entry struct {
	col  int
	prob float64
}

// TransitionMatrix is a sparse row-stochastic Markov transition matrix
// T(τ). Lag carries the lag time in caller units (e.g. ns) purely for
// bookkeeping in timescale conversions.
type TransitionMatrix struct {
	n    int
	rows [][]entry
	Lag  float64
}

// TransitionMatrix estimates T from the counts by row normalisation with a
// uniform pseudocount prior added to the diagonal (keeping empty states
// well-defined as absorbing rather than undefined).
func (c *Counts) TransitionMatrix(prior float64) *TransitionMatrix {
	if prior < 0 {
		prior = 0
	}
	t := &TransitionMatrix{n: c.n, rows: make([][]entry, c.n)}
	for i := 0; i < c.n; i++ {
		total := c.RowSum(i) + prior
		if total == 0 || c.rows[i] == nil && prior == 0 {
			// Unvisited state: make it absorbing so propagation stays stochastic.
			t.rows[i] = []entry{{col: i, prob: 1}}
			continue
		}
		row := make([]entry, 0, len(c.rows[i])+1)
		diag := prior
		if w, ok := c.rows[i][i]; ok {
			diag += w
		}
		if diag > 0 {
			row = append(row, entry{col: i, prob: diag / total})
		}
		cols := make([]int, 0, len(c.rows[i]))
		for j := range c.rows[i] {
			if j != i {
				cols = append(cols, j)
			}
		}
		sort.Ints(cols)
		for _, j := range cols {
			row = append(row, entry{col: j, prob: c.rows[i][j] / total})
		}
		t.rows[i] = row
	}
	return t
}

// N returns the number of states.
func (t *TransitionMatrix) N() int { return t.n }

// Prob returns T[i][j].
func (t *TransitionMatrix) Prob(i, j int) float64 {
	for _, e := range t.rows[i] {
		if e.col == j {
			return e.prob
		}
	}
	return 0
}

// Propagate returns p·T, one Chapman–Kolmogorov step (eq. 1 of the paper:
// p(t+τ) = p(t) T(τ)). It panics if len(p) != N.
func (t *TransitionMatrix) Propagate(p []float64) []float64 {
	if len(p) != t.n {
		panic(fmt.Sprintf("msm: propagating %d-vector through %d-state matrix", len(p), t.n))
	}
	out := make([]float64, t.n)
	for i, pi := range p {
		if pi == 0 {
			continue
		}
		for _, e := range t.rows[i] {
			out[e.col] += pi * e.prob
		}
	}
	return out
}

// PropagateN applies n Chapman–Kolmogorov steps.
func (t *TransitionMatrix) PropagateN(p []float64, n int) []float64 {
	out := append([]float64(nil), p...)
	for k := 0; k < n; k++ {
		out = t.Propagate(out)
	}
	return out
}

// StationaryDistribution computes the left eigenvector π = πT by power
// iteration, normalised to sum 1. It converges for the ergodic matrices
// produced by LargestConnectedSet + Restrict; on reducible matrices it
// returns the distribution reached from uniform after maxIter steps.
func (t *TransitionMatrix) StationaryDistribution(tol float64, maxIter int) []float64 {
	p := make([]float64, t.n)
	for i := range p {
		p[i] = 1 / float64(t.n)
	}
	for k := 0; k < maxIter; k++ {
		q := t.Propagate(p)
		// Normalise against drift.
		s := 0.0
		for _, v := range q {
			s += v
		}
		if s > 0 {
			for i := range q {
				q[i] /= s
			}
		}
		d := 0.0
		for i := range q {
			d += math.Abs(q[i] - p[i])
		}
		p = q
		if d < tol {
			break
		}
	}
	return p
}

// LargestConnectedSet returns the states of the largest strongly connected
// component of the transition graph (edges = non-zero off-diagonal
// probabilities), sorted ascending. MSM analysis is performed on this
// ergodic subset, as in the paper ("the largest connected subset of the
// Markovian transition matrix").
func (t *TransitionMatrix) LargestConnectedSet() []int {
	// Tarjan's algorithm, iterative to survive deep recursion on long chains.
	const unvisited = -1
	index := make([]int, t.n)
	low := make([]int, t.n)
	onStack := make([]bool, t.n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var best []int
	counter := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < t.n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			advanced := false
			for f.ei < len(t.rows[v]) {
				e := t.rows[v][f.ei]
				f.ei++
				w := e.col
				if w == v || e.prob == 0 {
					continue
				}
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				// Pop an SCC.
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > len(best) {
					best = comp
				}
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	sort.Ints(best)
	return best
}

// Restrict returns the transition matrix renormalised over the given state
// subset, along with a mapping from new indices to original state ids.
// States outside the subset are dropped and rows renormalised.
func (t *TransitionMatrix) Restrict(states []int) (*TransitionMatrix, []int) {
	idx := make(map[int]int, len(states))
	keep := append([]int(nil), states...)
	sort.Ints(keep)
	for newI, oldI := range keep {
		idx[oldI] = newI
	}
	rt := &TransitionMatrix{n: len(keep), rows: make([][]entry, len(keep)), Lag: t.Lag}
	for newI, oldI := range keep {
		var row []entry
		total := 0.0
		for _, e := range t.rows[oldI] {
			if newJ, ok := idx[e.col]; ok {
				row = append(row, entry{col: newJ, prob: e.prob})
				total += e.prob
			}
		}
		if total == 0 {
			row = []entry{{col: newI, prob: 1}}
			total = 1
		}
		for k := range row {
			row[k].prob /= total
		}
		rt.rows[newI] = row
	}
	return rt, keep
}

// RowStochasticError returns the largest deviation of any row sum from 1,
// a structural invariant checked in tests.
func (t *TransitionMatrix) RowStochasticError() float64 {
	worst := 0.0
	for _, row := range t.rows {
		s := 0.0
		for _, e := range row {
			s += e.prob
		}
		if d := math.Abs(s - 1); d > worst {
			worst = d
		}
	}
	return worst
}
