package bar

import (
	"math"
	"testing"

	"copernicus/internal/rng"
)

// harmonicWork generates forward and reverse work values for two 1-D
// harmonic states u₀ = x²/2 and u₁ = (x−d)²/2 + c, whose exact free-energy
// difference is c (equal stiffness ⇒ equal partition functions up to the
// offset).
func harmonicWork(n int, d, c float64, seed uint64) (wF, wR []float64) {
	r := rng.New(seed)
	u0 := func(x float64) float64 { return x * x / 2 }
	u1 := func(x float64) float64 { return (x-d)*(x-d)/2 + c }
	for i := 0; i < n; i++ {
		x0 := r.Norm() // sample from state 0
		wF = append(wF, u1(x0)-u0(x0))
		x1 := d + r.Norm() // sample from state 1
		wR = append(wR, u0(x1)-u1(x1))
	}
	return wF, wR
}

func TestEstimateRecoversKnownDeltaF(t *testing.T) {
	for _, tc := range []struct{ d, c float64 }{
		{0.5, 2.0},
		{1.0, -1.5},
		{0.0, 0.0},
		{1.5, 5.0},
	} {
		wF, wR := harmonicWork(20000, tc.d, tc.c, 7)
		res, err := Estimate(wF, wR, 0, 0)
		if err != nil {
			t.Fatalf("d=%v c=%v: %v", tc.d, tc.c, err)
		}
		if math.Abs(res.DeltaF-tc.c) > 0.05 {
			t.Errorf("d=%v: ΔF = %v, want %v", tc.d, res.DeltaF, tc.c)
		}
		if res.Overlap <= 0 || res.Overlap > 1 {
			t.Errorf("overlap = %v outside (0,1]", res.Overlap)
		}
	}
}

func TestEstimateAsymmetricSampleSizes(t *testing.T) {
	wF, wR := harmonicWork(8000, 0.8, 1.0, 3)
	res, err := Estimate(wF[:8000], wR[:2000], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DeltaF-1.0) > 0.1 {
		t.Errorf("asymmetric ΔF = %v, want 1.0", res.DeltaF)
	}
}

func TestEstimateBootstrapError(t *testing.T) {
	wFbig, wRbig := harmonicWork(5000, 0.5, 1.0, 11)
	wFsmall, wRsmall := wFbig[:100], wRbig[:100]
	big, err := Estimate(wFbig, wRbig, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Estimate(wFsmall, wRsmall, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if big.StdErr <= 0 || small.StdErr <= 0 {
		t.Fatal("bootstrap errors should be positive")
	}
	if big.StdErr >= small.StdErr {
		t.Errorf("more samples should shrink the error: %v (n=5000) vs %v (n=100)",
			big.StdErr, small.StdErr)
	}
	// The true value should lie within a few standard errors.
	if math.Abs(big.DeltaF-1.0) > 5*big.StdErr+0.02 {
		t.Errorf("ΔF = %v ± %v does not cover 1.0", big.DeltaF, big.StdErr)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(nil, []float64{1}, 0, 0); err == nil {
		t.Error("empty forward set should fail")
	}
	if _, err := Estimate([]float64{1}, nil, 0, 0); err == nil {
		t.Error("empty reverse set should fail")
	}
	if _, err := Estimate([]float64{math.NaN()}, []float64{1}, 0, 0); err == nil {
		t.Error("NaN work should fail")
	}
	if _, err := Estimate([]float64{1}, []float64{math.Inf(1)}, 0, 0); err == nil {
		t.Error("Inf work should fail")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	wF, wR := harmonicWork(1000, 0.5, 1, 9)
	a, _ := Estimate(wF, wR, 20, 13)
	b, _ := Estimate(wF, wR, 20, 13)
	if a != b {
		t.Error("Estimate not deterministic for fixed seed")
	}
}

func TestOverlapShrinksWithSeparation(t *testing.T) {
	wFnear, wRnear := harmonicWork(5000, 0.2, 0, 1)
	wFfar, wRfar := harmonicWork(5000, 6.0, 0, 1)
	near, err := Estimate(wFnear, wRnear, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Estimate(wFfar, wRfar, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if far.Overlap >= near.Overlap {
		t.Errorf("overlap should shrink with separation: near %v, far %v",
			near.Overlap, far.Overlap)
	}
}

func TestFEPForward(t *testing.T) {
	wF, _ := harmonicWork(50000, 0.3, 2.0, 21)
	df, err := FEPForward(wF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(df-2.0) > 0.05 {
		t.Errorf("FEP ΔF = %v, want 2.0", df)
	}
	if _, err := FEPForward(nil); err == nil {
		t.Error("empty work set should fail")
	}
}

func TestBARBeatsFEPAtPoorOverlap(t *testing.T) {
	// With significant displacement, one-sided FEP is biased; BAR is not.
	const trueDF = 1.0
	var barErr, fepErr float64
	for seed := uint64(0); seed < 5; seed++ {
		wF, wR := harmonicWork(2000, 2.5, trueDF, 31+seed)
		res, err := Estimate(wF, wR, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		fep, err := FEPForward(wF)
		if err != nil {
			t.Fatal(err)
		}
		barErr += math.Abs(res.DeltaF - trueDF)
		fepErr += math.Abs(fep - trueDF)
	}
	if barErr >= fepErr {
		t.Errorf("BAR total error %v should beat one-sided FEP %v", barErr, fepErr)
	}
}

func TestChain(t *testing.T) {
	windows := []WindowResult{
		{LambdaFrom: 0, LambdaTo: 0.5, Result: Result{DeltaF: 1, StdErr: 0.3, Overlap: 0.8}},
		{LambdaFrom: 0.5, LambdaTo: 1, Result: Result{DeltaF: 2, StdErr: 0.4, Overlap: 0.6}},
	}
	total := Chain(windows)
	if total.DeltaF != 3 {
		t.Errorf("chain ΔF = %v", total.DeltaF)
	}
	if math.Abs(total.StdErr-0.5) > 1e-12 {
		t.Errorf("chain error = %v, want 0.5", total.StdErr)
	}
	if total.Overlap != 0.6 {
		t.Errorf("chain overlap = %v, want the minimum 0.6", total.Overlap)
	}
	if empty := Chain(nil); empty.DeltaF != 0 || empty.Overlap != 0 {
		t.Errorf("empty chain = %+v", empty)
	}
}

func TestFermiBounds(t *testing.T) {
	if fermi(1000) != 0 {
		t.Error("fermi overflow guard failed high")
	}
	if fermi(-1000) != 1 {
		t.Error("fermi overflow guard failed low")
	}
	if math.Abs(fermi(0)-0.5) > 1e-15 {
		t.Error("fermi(0) != 1/2")
	}
}

func BenchmarkEstimate(b *testing.B) {
	wF, wR := harmonicWork(2000, 0.5, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(wF, wR, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
