// Package bar implements the Bennett Acceptance Ratio free-energy estimator
// and its exponential-averaging (FEP) baseline. BAR-based free energy
// perturbation is the second plugin the paper ships with Copernicus
// ("Currently, Copernicus comes with plugins to run Markov-State-Model-
// driven sampling and Bennett Acceptance Ratio free energy perturbation
// calculations").
//
// All energies are in units of kT. The forward work values are
// W_F = u₁(x) − u₀(x) evaluated on samples drawn from state 0, and the
// reverse work values W_R = u₀(x) − u₁(x) on samples from state 1.
package bar

import (
	"fmt"
	"math"

	"copernicus/internal/stats"
)

// Result is a free-energy estimate with its bootstrap standard error.
type Result struct {
	DeltaF float64 // free-energy difference F₁ − F₀ in kT
	StdErr float64 // bootstrap standard error in kT
	// Overlap in (0,1] measures phase-space overlap between the two work
	// distributions; values near 0 flag an unreliable estimate.
	Overlap float64
}

// fermi is the Fermi function 1/(1+eˣ).
func fermi(x float64) float64 {
	// Guard against overflow for large |x|.
	if x > 500 {
		return 0
	}
	if x < -500 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}

// Estimate solves the Bennett self-consistency equation
//
//	Σ_F f(M + W_F − ΔF) = Σ_R f(−M + W_R + ΔF),  M = ln(n_F/n_R)
//
// for ΔF by bisection (the left side decreases and the right side increases
// monotonically in ΔF, so the root is unique). nBootstrap resamples give the
// standard error; pass 0 to skip it.
func Estimate(wF, wR []float64, nBootstrap int, seed uint64) (Result, error) {
	if len(wF) == 0 || len(wR) == 0 {
		return Result{}, fmt.Errorf("bar: need work values in both directions (got %d forward, %d reverse)", len(wF), len(wR))
	}
	for _, w := range append(append([]float64(nil), wF...), wR...) {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return Result{}, fmt.Errorf("bar: non-finite work value")
		}
	}
	df, err := solve(wF, wR)
	if err != nil {
		return Result{}, err
	}
	res := Result{DeltaF: df, Overlap: overlap(wF, wR, df)}
	if nBootstrap > 1 {
		// Joint bootstrap over both work sets: resample each, re-solve.
		// stats.Bootstrap resamples one vector, so pack both with a tag.
		res.StdErr = bootstrapSE(wF, wR, nBootstrap, seed)
	}
	return res, nil
}

func solve(wF, wR []float64) (float64, error) {
	m := math.Log(float64(len(wF)) / float64(len(wR)))
	g := func(df float64) float64 {
		var l, r float64
		for _, w := range wF {
			l += fermi(m + w - df)
		}
		for _, w := range wR {
			r += fermi(-m + w + df)
		}
		return l - r
	}
	// Bracket the root around the coarse FEP estimates.
	lo, hi := -1.0, 1.0
	if f := stats.Mean(wF); !math.IsNaN(f) {
		lo = math.Min(lo, f-50)
		hi = math.Max(hi, f+50)
	}
	if r := stats.Mean(wR); !math.IsNaN(r) {
		lo = math.Min(lo, -r-50)
		hi = math.Max(hi, -r+50)
	}
	glo, ghi := g(lo), g(hi)
	for iter := 0; glo > 0 || ghi < 0; iter++ {
		if iter > 60 {
			return 0, fmt.Errorf("bar: failed to bracket the BAR root in [%g, %g]", lo, hi)
		}
		lo, hi = lo*2-1, hi*2+1
		glo, ghi = g(lo), g(hi)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(lo)); iter++ {
		mid := 0.5 * (lo + hi)
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// overlap estimates the phase-space overlap as the mean Fermi acceptance in
// both directions at the solved ΔF; 1 means perfectly overlapping
// distributions, →0 means none.
func overlap(wF, wR []float64, df float64) float64 {
	m := math.Log(float64(len(wF)) / float64(len(wR)))
	var s float64
	for _, w := range wF {
		s += fermi(m + w - df)
	}
	for _, w := range wR {
		s += fermi(-m + w + df)
	}
	return 2 * s / float64(len(wF)+len(wR))
}

// bootstrapSE combines, in quadrature, the bootstrap variability of the
// estimate under resampling of the forward and of the reverse work sets.
func bootstrapSE(wF, wR []float64, n int, seed uint64) float64 {
	seF := stats.Bootstrap(wF, n, seed, func(f []float64) float64 {
		df, err := solve(f, wR)
		if err != nil {
			return 0
		}
		return df
	})
	seR := stats.Bootstrap(wR, n, seed^0xABCDEF, func(r []float64) float64 {
		df, err := solve(wF, r)
		if err != nil {
			return 0
		}
		return df
	})
	return math.Sqrt(seF*seF + seR*seR)
}

// FEPForward returns the exponential-averaging (Zwanzig) estimate
// ΔF = −ln⟨exp(−W_F)⟩ — the paper-era baseline BAR improves upon. The
// log-sum-exp form keeps it overflow-safe.
func FEPForward(wF []float64) (float64, error) {
	if len(wF) == 0 {
		return 0, fmt.Errorf("bar: no forward work values")
	}
	// −ln( (1/n) Σ exp(−w) ) = −( logsumexp(−w) − ln n )
	maxNegW := math.Inf(-1)
	for _, w := range wF {
		if -w > maxNegW {
			maxNegW = -w
		}
	}
	s := 0.0
	for _, w := range wF {
		s += math.Exp(-w - maxNegW)
	}
	return -(maxNegW + math.Log(s/float64(len(wF)))), nil
}

// WindowResult is the estimate for one λ-window of a multi-window
// perturbation chain.
type WindowResult struct {
	LambdaFrom, LambdaTo float64
	Result
}

// Chain sums per-window BAR estimates along a λ path, propagating errors in
// quadrature — the shape of the free-energy projects the Copernicus BAR
// controller manages (one command per λ window).
func Chain(windows []WindowResult) Result {
	var total Result
	var varSum float64
	minOverlap := 1.0
	for _, w := range windows {
		total.DeltaF += w.DeltaF
		varSum += w.StdErr * w.StdErr
		if w.Overlap < minOverlap {
			minOverlap = w.Overlap
		}
	}
	if len(windows) == 0 {
		minOverlap = 0
	}
	total.StdErr = math.Sqrt(varSum)
	total.Overlap = minOverlap
	return total
}
