package stats

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 2.5 {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(2.5)) > 1e-14 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if math.Abs(StdErr(xs)-math.Sqrt(2.5/5)) > 1e-14 {
		t.Errorf("StdErr = %v", StdErr(xs))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Error("empty slice statistics should be 0")
	}
	if Variance([]float64{7}) != 0 {
		t.Error("singleton variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestMinMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) should panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	if Quantile(xs, 0) != 1 {
		t.Errorf("q0 = %v", Quantile(xs, 0))
	}
	if Quantile(xs, 1) != 4 {
		t.Errorf("q1 = %v", Quantile(xs, 1))
	}
	if Median(xs) != 2.5 {
		t.Errorf("median = %v", Median(xs))
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { Quantile(nil, 0.5) },
		"q<0":   func() { Quantile([]float64{1}, -0.1) },
		"q>1":   func() { Quantile([]float64{1}, 1.1) },
		"q NaN": func() { Quantile([]float64{1}, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile %s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	var run Running
	for i := range xs {
		xs[i] = r.Norm()*3 + 7
		run.Add(xs[i])
	}
	if math.Abs(run.Mean()-Mean(xs)) > 1e-10 {
		t.Errorf("running mean %v != batch %v", run.Mean(), Mean(xs))
	}
	if math.Abs(run.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("running variance %v != batch %v", run.Variance(), Variance(xs))
	}
	if run.N() != 1000 {
		t.Errorf("N = %d", run.N())
	}
}

func TestRunningMerge(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64() * 10
	}
	var whole, a, b Running
	for i, x := range xs {
		whole.Add(x)
		if i < 123 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if math.Abs(a.Mean()-whole.Mean()) > 1e-10 {
		t.Errorf("merged mean %v != whole %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance %v != whole %v", a.Variance(), whole.Variance())
	}
	// Merging into empty yields the other accumulator.
	var empty Running
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty accumulator failed")
	}
	// Merging empty is a no-op.
	before := whole
	whole.Merge(Running{})
	if whole != before {
		t.Error("merging empty changed accumulator")
	}
}

func TestPropertyRunningMergeAssociative(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) < 3 {
			return true
		}
		var whole Running
		for _, x := range xs {
			whole.Add(x)
		}
		var a, b Running
		cut := len(xs) / 2
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		scale := 1 + math.Abs(whole.Mean())
		return math.Abs(a.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6*(1+whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBootstrap(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Norm()
	}
	se := Bootstrap(xs, 500, 99, Mean)
	analytic := StdErr(xs)
	if se < analytic*0.7 || se > analytic*1.3 {
		t.Errorf("bootstrap SE of mean = %v, analytic = %v", se, analytic)
	}
	if Bootstrap(nil, 100, 1, Mean) != 0 {
		t.Error("bootstrap of empty slice should be 0")
	}
	// Deterministic under same seed.
	if Bootstrap(xs, 100, 5, Mean) != Bootstrap(xs, 100, 5, Mean) {
		t.Error("bootstrap not deterministic for fixed seed")
	}
}

func TestBlockStdErr(t *testing.T) {
	// Strongly correlated series: naive SE underestimates; block SE larger.
	r := rng.New(4)
	n := 4000
	xs := make([]float64, n)
	x := 0.0
	for i := range xs {
		x = 0.99*x + r.Norm()
		xs[i] = x
	}
	naive := StdErr(xs)
	block := BlockStdErr(xs, 20)
	if block <= naive {
		t.Errorf("block SE %v should exceed naive SE %v for correlated data", block, naive)
	}
	// Degenerate block counts fall back to naive.
	if BlockStdErr(xs, 1) != naive {
		t.Error("nBlocks=1 should fall back to naive SE")
	}
	if BlockStdErr(xs[:5], 10) != StdErr(xs[:5]) {
		t.Error("too-short series should fall back to naive SE")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.BinCenter(0) != 1 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.7)
	dens := h.Normalized()
	// Integral = sum(density)*binwidth must be 1.
	integral := (dens[0] + dens[1]) * 0.5
	if math.Abs(integral-1) > 1e-12 {
		t.Errorf("normalized integral = %v", integral)
	}
	empty := NewHistogram(0, 1, 4).Normalized()
	for _, d := range empty {
		if d != 0 {
			t.Error("empty histogram density should be zero")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no bins":     func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram %s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHalfLifeTime(t *testing.T) {
	// Saturating exponential 1-exp(-t): final ~1, half level 0.5 at ln 2.
	var ts, ys []float64
	for i := 0; i <= 100; i++ {
		tt := float64(i) * 0.1
		ts = append(ts, tt)
		ys = append(ys, 1-math.Exp(-tt))
	}
	half, ok := HalfLifeTime(ts, ys)
	if !ok {
		t.Fatal("half life not found")
	}
	target := (ys[len(ys)-1]) / 2
	wantT := -math.Log(1 - target)
	if math.Abs(half-wantT) > 0.02 {
		t.Errorf("t1/2 = %v, want ~%v", half, wantT)
	}
}

func TestHalfLifeTimeEdge(t *testing.T) {
	if _, ok := HalfLifeTime(nil, nil); ok {
		t.Error("empty series should not yield a half life")
	}
	if _, ok := HalfLifeTime([]float64{1}, []float64{1, 2}); ok {
		t.Error("mismatched lengths should not yield a half life")
	}
	// A flat zero series never folds.
	if _, ok := HalfLifeTime([]float64{0, 1, 2}, []float64{0, 0, 0}); ok {
		t.Error("flat zero series should not yield a half life")
	}
	// A series that starts above half of its final value crosses at t0.
	half, ok := HalfLifeTime([]float64{5, 6}, []float64{0.9, 1.0})
	if !ok || half != 5 {
		t.Errorf("pre-crossed series: got %v, %v", half, ok)
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := rng.New(8)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Norm()
	}
	acf := Autocorrelation(xs, 10)
	if acf[0] != 1 {
		t.Errorf("acf[0] = %v", acf[0])
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(acf[k]) > 0.03 {
			t.Errorf("white-noise acf[%d] = %v, want ~0", k, acf[k])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient φ has acf(k) = φ^k and
	// τ_int = 1 + 2 Σ φ^k = (1+φ)/(1−φ).
	const phi = 0.8
	r := rng.New(9)
	xs := make([]float64, 200000)
	x := 0.0
	for i := range xs {
		x = phi*x + r.Norm()
		xs[i] = x
	}
	acf := Autocorrelation(xs, 5)
	for k := 1; k <= 5; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.05 {
			t.Errorf("AR(1) acf[%d] = %v, want %v", k, acf[k], want)
		}
	}
	tau := IntegratedAutocorrelationTime(xs)
	want := (1 + phi) / (1 - phi) // = 9
	if tau < want*0.7 || tau > want*1.3 {
		t.Errorf("τ_int = %v, want ~%v", tau, want)
	}
	ess := EffectiveSampleSize(xs)
	if ess < float64(len(xs))/want*0.7 || ess > float64(len(xs))/want*1.3 {
		t.Errorf("ESS = %v", ess)
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if acf := Autocorrelation(nil, 5); acf != nil {
		t.Errorf("acf of empty series = %v", acf)
	}
	// Constant series: no variance.
	acf := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	if acf[0] != 1 || acf[1] != 0 {
		t.Errorf("constant series acf = %v", acf)
	}
	// maxLag clamped to n-1.
	if got := Autocorrelation([]float64{1, 2}, 99); len(got) != 2 {
		t.Errorf("clamped acf length = %d", len(got))
	}
	if EffectiveSampleSize(nil) != 0 {
		t.Error("ESS of empty series should be 0")
	}
	if IntegratedAutocorrelationTime([]float64{1, 2, 3}) < 1 {
		t.Error("τ_int must be at least 1")
	}
}
