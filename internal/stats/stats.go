// Package stats provides the statistical estimators used by the analysis
// pipeline: moments, standard errors, bootstrap resampling, histograms and
// block averaging for correlated time series. Everything operates on plain
// []float64 and is allocation-conscious; nothing here is concurrent.
package stats

import (
	"math"
	"sort"

	"copernicus/internal/rng"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. Slices with
// fewer than two elements have zero variance by convention.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean assuming independent
// samples: s/sqrt(n).
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the extrema of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics if xs is empty or q is
// outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: Quantile fraction outside [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Running accumulates mean and variance incrementally (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased running variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the running standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Merge folds another accumulator into r (parallel Welford merge), so shards
// can accumulate independently and combine.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	r.n = n
}

// Bootstrap resamples xs nResamples times with replacement, applies f to
// each resample, and returns the standard deviation of the f values — the
// bootstrap standard error of the statistic. A deterministic seed makes the
// estimate reproducible.
func Bootstrap(xs []float64, nResamples int, seed uint64, f func([]float64) float64) float64 {
	if len(xs) == 0 || nResamples <= 1 {
		return 0
	}
	r := rng.New(seed)
	buf := make([]float64, len(xs))
	var acc Running
	for k := 0; k < nResamples; k++ {
		for i := range buf {
			buf[i] = xs[r.Intn(len(xs))]
		}
		acc.Add(f(buf))
	}
	return acc.StdDev()
}

// BlockStdErr estimates the standard error of the mean of a *correlated*
// time series by block averaging: the series is cut into nBlocks contiguous
// blocks, and the block means are treated as independent samples. This is
// the estimator behind the error bars of Fig 5.
func BlockStdErr(xs []float64, nBlocks int) float64 {
	if nBlocks < 2 || len(xs) < nBlocks {
		return StdErr(xs)
	}
	blockLen := len(xs) / nBlocks
	means := make([]float64, nBlocks)
	for b := 0; b < nBlocks; b++ {
		means[b] = Mean(xs[b*blockLen : (b+1)*blockLen])
	}
	return StdErr(means)
}

// Histogram is a fixed-width binned histogram over [Lo, Hi). Values outside
// the range are counted in the Under/Over fields rather than dropped, so
// totals always reconcile.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int
	Under, Over int
}

// NewHistogram returns a histogram with n bins spanning [lo, hi). It panics
// if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram with no bins")
	}
	if hi <= lo {
		panic("stats: histogram with empty range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add bins the value x.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // rounding at the upper edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of values added, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Normalized returns the probability density per bin (counts divided by
// total in-range count and bin width). An empty histogram returns all zeros.
func (h *Histogram) Normalized() []float64 {
	inRange := 0
	for _, c := range h.Counts {
		inRange += c
	}
	out := make([]float64, len(h.Counts))
	if inRange == 0 {
		return out
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(inRange) * w)
	}
	return out
}

// HalfLifeTime returns the interpolated time at which the series ys (sampled
// at the times ts, monotonically increasing from a starting value toward a
// plateau) first crosses half of its final value. It returns the crossing
// time and true, or 0 and false if the series never reaches the half level.
// This is the t½ estimator used for the folding kinetics of Fig 4.
func HalfLifeTime(ts, ys []float64) (float64, bool) {
	if len(ts) != len(ys) || len(ts) == 0 {
		return 0, false
	}
	target := ys[len(ys)-1] / 2
	if target <= ys[0] {
		return ts[0], ys[len(ys)-1] > 0
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] >= target {
			// Linear interpolation within [i-1, i].
			y0, y1 := ys[i-1], ys[i]
			t0, t1 := ts[i-1], ts[i]
			if y1 == y0 {
				return t1, true
			}
			return t0 + (t1-t0)*(target-y0)/(y1-y0), true
		}
	}
	return 0, false
}

// Autocorrelation returns the normalised autocorrelation function of xs up
// to maxLag (inclusive): acf[k] = C(k)/C(0) with C(k) the lag-k
// autocovariance. acf[0] is 1 for any non-constant series; a constant
// series returns all zeros beyond lag 0 by convention.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	m := Mean(xs)
	c0 := 0.0
	for _, x := range xs {
		d := x - m
		c0 += d * d
	}
	acf := make([]float64, maxLag+1)
	if c0 == 0 {
		if len(acf) > 0 {
			acf[0] = 1
		}
		return acf
	}
	for k := 0; k <= maxLag; k++ {
		s := 0.0
		for i := 0; i+k < n; i++ {
			s += (xs[i] - m) * (xs[i+k] - m)
		}
		acf[k] = s / c0
	}
	return acf
}

// IntegratedAutocorrelationTime estimates τ_int = 1 + 2 Σ acf(k) with the
// standard self-consistent window (sum until k > 5 τ_int), in units of the
// sampling interval. It is the factor by which correlated samples inflate
// the variance of a mean — the quantity behind the paper's standard-error
// stop criterion on correlated simulation output.
func IntegratedAutocorrelationTime(xs []float64) float64 {
	maxLag := len(xs) / 4
	if maxLag < 1 {
		return 1
	}
	acf := Autocorrelation(xs, maxLag)
	tau := 1.0
	for k := 1; k < len(acf); k++ {
		tau += 2 * acf[k]
		if float64(k) > 5*tau {
			break
		}
	}
	if tau < 1 {
		return 1
	}
	return tau
}

// EffectiveSampleSize returns n/τ_int, the number of effectively
// independent samples in a correlated series.
func EffectiveSampleSize(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(len(xs)) / IntegratedAutocorrelationTime(xs)
}
