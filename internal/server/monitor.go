package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"copernicus/internal/obs"
	"copernicus/internal/wire"
)

// Projects returns status snapshots for every project on this server,
// sorted by name — the data behind both cpcctl and the web monitor.
func (s *Server) Projects() []wire.ProjectStatus {
	s.mu.Lock()
	ps := make([]*project, 0, len(s.projects))
	for _, p := range s.projects {
		ps = append(ps, p)
	}
	s.mu.Unlock()
	out := make([]wire.ProjectStatus, 0, len(ps))
	for _, p := range ps {
		p.mu.Lock()
		out = append(out, s.statusLocked(p))
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Workers returns the home server's current worker liveness records.
func (s *Server) Workers() []wire.WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.WorkerInfo, 0, len(s.workers))
	for _, ws := range s.workers {
		out = append(out, ws.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// monitorStatus is the JSON shape served per project (results are omitted:
// they can be megabytes; clients fetch them over the wire protocol).
type monitorStatus struct {
	Name       string `json:"name"`
	Controller string `json:"controller"`
	State      string `json:"state"`
	Generation int    `json:"generation"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Finished   int    `json:"finished"`
	Failed     int    `json:"failed"`
	Note       string `json:"note"`
	HasResult  bool   `json:"hasResult"`
}

func toMonitor(st wire.ProjectStatus) monitorStatus {
	return monitorStatus{
		Name:       st.Name,
		Controller: st.Controller,
		State:      st.State,
		Generation: st.Generation,
		Queued:     st.Queued,
		Running:    st.Running,
		Finished:   st.Finished,
		Failed:     st.Failed,
		Note:       st.Note,
		HasResult:  st.Result != nil,
	}
}

// MonitorHandler returns the HTTP handler of the paper's real-time
// monitoring interface:
//
//	GET /                 human-readable overview
//	GET /projects         JSON list of project statuses
//	GET /projects/N       JSON status of project N
//	GET /workers          JSON list of announced workers
//	GET /healthz          liveness probe
//	GET /metrics          Prometheus text exposition (queue depth, dispatch
//	                      latency, per-worker command counters, ...)
//	GET /debug/trace      command-lifecycle spans + per-stage quantiles
//	GET /debug/pprof/...  runtime profiling
//
// All endpoints are read-only: non-GET methods are rejected with 405, and
// dynamic responses carry Cache-Control: no-store. Serve it with
// http.ListenAndServe(addr, s.MonitorHandler()) or mount it under an
// existing mux; it performs no writes and needs no authentication beyond
// what the deployment puts in front of it.
func (s *Server) MonitorHandler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			s.log.Warn("monitor encode failed", "err", err)
		}
	}
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.ReadOnly(h))
	}
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handle("/projects", func(w http.ResponseWriter, r *http.Request) {
		sts := s.Projects()
		out := make([]monitorStatus, 0, len(sts))
		for _, st := range sts {
			out = append(out, toMonitor(st))
		}
		writeJSON(w, out)
	})
	handle("/projects/", func(w http.ResponseWriter, r *http.Request) {
		// Normalize: a single trailing slash is tolerated
		// ("/projects/alpha/" serves alpha), deeper subpaths are 404s.
		name := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/projects/"), "/")
		if name == "" || strings.Contains(name, "/") {
			http.NotFound(w, r)
			return
		}
		st, ok := s.Project(name)
		if !ok {
			http.Error(w, "unknown project", http.StatusNotFound)
			return
		}
		writeJSON(w, toMonitor(st))
	})
	handle("/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Workers())
	})
	s.cfg.Obs.Register(mux)
	handle("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "copernicus server %s\n\n", s.node.ID())
		fmt.Fprintf(w, "%-20s %-12s %-10s %4s %7s %8s %9s %7s  %s\n",
			"PROJECT", "CONTROLLER", "STATE", "GEN", "QUEUED", "RUNNING", "FINISHED", "FAILED", "NOTE")
		for _, st := range s.Projects() {
			fmt.Fprintf(w, "%-20s %-12s %-10s %4d %7d %8d %9d %7d  %s\n",
				st.Name, st.Controller, st.State, st.Generation,
				st.Queued, st.Running, st.Finished, st.Failed, st.Note)
		}
		fmt.Fprintf(w, "\n%d workers announced; queue depth %d\n", len(s.Workers()), s.QueueLen())
	})
	return mux
}
