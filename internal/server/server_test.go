package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/wire"
)

// ctxTimeout returns a context cancelled after d, cleaned up with the test.
func ctxTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// testController is a scriptable plugin that records events.
type testController struct {
	mu             sync.Mutex
	submit         []wire.CommandSpec // submitted at Start
	finished       []*wire.CommandResult
	failed         []string
	finishOn       int // Finish the project after this many completions (0 = never)
	resubmitFailed bool
	chunks         int // frame chunks the server fed to the FrameSink
	chunkFrames    int // frames carried by those chunks
}

func (c *testController) Name() string { return "test" }

func (c *testController) Start(ctx controller.Context, params []byte) error {
	for _, cmd := range c.submit {
		if err := ctx.Submit(cmd); err != nil {
			return err
		}
	}
	ctx.SetStatus(0, "started")
	return nil
}

func (c *testController) CommandFinished(ctx controller.Context, res *wire.CommandResult) error {
	c.mu.Lock()
	c.finished = append(c.finished, res)
	n := len(c.finished)
	c.mu.Unlock()
	if c.finishOn > 0 && n >= c.finishOn {
		ctx.Finish([]byte("done"))
	}
	return nil
}

func (c *testController) CommandFailed(ctx controller.Context, cmd wire.CommandSpec, reason string) error {
	c.mu.Lock()
	c.failed = append(c.failed, cmd.ID)
	c.mu.Unlock()
	if c.resubmitFailed {
		cmd2 := cmd
		cmd2.ID = cmd.ID + "-retry"
		return ctx.Submit(cmd2)
	}
	return nil
}

func (c *testController) counts() (fin, fail int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.finished), len(c.failed)
}

// rig is a one-server test deployment with a raw client node for speaking
// the protocol by hand.
type rig struct {
	net    *overlay.MemNetwork
	srv    *Server
	client *overlay.Node
	ctrl   *testController
}

func newRig(t *testing.T, cfg Config, ctrl *testController) *rig {
	t.Helper()
	net := overlay.NewMemNetwork()
	sNode := overlay.NewNode(overlay.NewIdentityFromSeed(1), overlay.NewTrustStore(), net.Transport())
	if err := sNode.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	reg := controller.NewRegistry()
	reg.Register("test", func() controller.Controller { return ctrl })
	srv := New(sNode, reg, cfg)

	client := overlay.NewNode(overlay.NewIdentityFromSeed(2), overlay.NewTrustStore(), net.Transport())
	if _, err := client.ConnectPeer("srv"); err != nil {
		t.Fatal(err)
	}
	r := &rig{net: net, srv: srv, client: client, ctrl: ctrl}
	t.Cleanup(func() {
		srv.Close()
		client.Close()
		sNode.Close()
	})
	return r
}

func (r *rig) request(t *testing.T, typ wire.MsgType, req any, resp any) error {
	t.Helper()
	payload, err := wire.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := r.client.RequestTimeout(r.srv.Node().ID(), typ, payload, 5*time.Second)
	if err != nil {
		return err
	}
	if resp != nil {
		if err := wire.Unmarshal(reply, resp); err != nil {
			t.Fatal(err)
		}
	}
	return nil
}

func (r *rig) submit(t *testing.T, name string) {
	t.Helper()
	var st wire.ProjectStatus
	if err := r.request(t, wire.MsgSubmit, &wire.ProjectSubmit{Name: name, Controller: "test"}, &st); err != nil {
		t.Fatal(err)
	}
}

func cmdSpec(id string) wire.CommandSpec {
	return wire.CommandSpec{ID: id, Type: "sim", MinCores: 1, MaxCores: 1}
}

func announce(workerID string, cores int) *wire.AnnounceRequest {
	return &wire.AnnounceRequest{Info: wire.WorkerInfo{
		ID: workerID, Platform: "smp", Cores: cores, Executables: []string{"sim"},
	}}
}

func TestSubmitAndStatus(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2")}}
	r := newRig(t, Config{}, ctrl)
	r.submit(t, "proj")
	st, ok := r.srv.Project("proj")
	if !ok {
		t.Fatal("project missing")
	}
	if st.State != "running" || st.Queued != 2 {
		t.Errorf("status = %+v", st)
	}
	if r.srv.QueueLen() != 2 {
		t.Errorf("queue = %d", r.srv.QueueLen())
	}
}

func TestSubmitErrors(t *testing.T) {
	ctrl := &testController{}
	r := newRig(t, Config{}, ctrl)
	if err := r.request(t, wire.MsgSubmit, &wire.ProjectSubmit{Name: "", Controller: "test"}, nil); err == nil {
		t.Error("nameless project accepted")
	}
	if err := r.request(t, wire.MsgSubmit, &wire.ProjectSubmit{Name: "x", Controller: "nope"}, nil); err == nil {
		t.Error("unknown controller accepted")
	}
	r.submit(t, "dup")
	if err := r.request(t, wire.MsgSubmit, &wire.ProjectSubmit{Name: "dup", Controller: "test"}, nil); err == nil {
		t.Error("duplicate project accepted")
	}
}

func TestAnnounceAssignsWork(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2"), cmdSpec("c3")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 2 {
		t.Fatalf("got %d commands for a 2-core worker", len(wl.Commands))
	}
	if wl.HeartbeatSeconds != 3600 {
		t.Errorf("heartbeat = %v s", wl.HeartbeatSeconds)
	}
	for _, c := range wl.Commands {
		if c.Origin != r.srv.Node().ID() {
			t.Errorf("command %s has origin %q", c.ID, c.Origin)
		}
		if c.Project != "proj" {
			t.Errorf("command %s has project %q", c.ID, c.Project)
		}
	}
	st, _ := r.srv.Project("proj")
	if st.Running != 2 || st.Queued != 1 {
		t.Errorf("status = %+v", st)
	}
}

// TestRelayedAssignmentLostReplyRecovered: a relay-matched workload whose
// reply never reaches the worker (most plainly when the anycast races its
// deadline and the late answer is discarded) must not strand its commands.
// The assignment is recorded in the worker's liveness record at match time,
// so the worker's next idle announce surfaces them through the orphan path
// and a later announce re-dispatches them.
func TestRelayedAssignmentLostReplyRecovered(t *testing.T) {
	o := obs.New()
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{Obs: o, HeartbeatInterval: time.Hour}, ctrl)

	// Make w1 a worker this server tracks, before any work exists.
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 4), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 0 {
		t.Fatalf("idle announce got commands: %+v", wl.Commands)
	}

	r.submit(t, "proj")

	// A relayed announce on w1's behalf matches c1 — and the reply is
	// dropped here, as if the relaying request had already timed out.
	rel := announce("w1", 4)
	rel.Relayed = true
	if err := r.request(t, wire.MsgAnnounce, rel, &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 1 || wl.Commands[0].ID != "c1" {
		t.Fatalf("relayed announce workload = %+v, want c1", wl.Commands)
	}
	if st, _ := r.srv.Project("proj"); st.Running != 1 {
		t.Fatalf("status after relayed match = %+v, want running=1", st)
	}

	// The worker never learned about c1: its idle announces must get the
	// command requeued (asynchronously) and eventually re-dispatched.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.request(t, wire.MsgAnnounce, announce("w1", 4), &wl); err != nil {
			t.Fatal(err)
		}
		if len(wl.Commands) == 1 && wl.Commands[0].ID == "c1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stranded command was never re-dispatched")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := metricValue(t, o, "copernicus_commands_orphaned_total"); got != 1 {
		t.Errorf("copernicus_commands_orphaned_total = %g, want 1", got)
	}
}

func TestAnnounceEmptyQueue(t *testing.T) {
	r := newRig(t, Config{}, &testController{})
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 4), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 0 {
		t.Error("empty server handed out work")
	}
}

func TestResultDrivesController(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	res := wire.CommandResult{
		CommandID: "c1", Project: "proj", WorkerID: "w1", OK: true,
		Output: []byte("data"),
	}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	fin, _ := ctrl.counts()
	if fin != 1 {
		t.Fatalf("controller saw %d completions", fin)
	}
	st, err := r.srv.WaitProject(ctxTimeout(t, time.Second), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" || string(st.Result) != "done" {
		t.Errorf("status = %+v", st)
	}
}

func TestResultForUnknownProjectNotHandled(t *testing.T) {
	r := newRig(t, Config{}, &testController{})
	res := wire.CommandResult{CommandID: "c", Project: "ghost", OK: true}
	err := r.request(t, wire.MsgResult, &res, nil)
	// The single-server overlay has nowhere to forward, so this times out
	// or errors — it must NOT be silently accepted.
	if err == nil {
		t.Error("result for unknown project accepted")
	}
}

func TestDuplicateAndTerminatedResultsIgnored(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	res := wire.CommandResult{CommandID: "c1", Project: "proj", WorkerID: "w1", OK: true}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery (e.g. retry after a relay hiccup).
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	fin, _ := ctrl.counts()
	if fin != 1 {
		t.Errorf("controller saw %d completions for one command", fin)
	}
}

func TestWorkerFailureRequeuesWithCheckpoint(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r := newRig(t, Config{HeartbeatInterval: 50 * time.Millisecond}, ctrl)
	r.submit(t, "proj")

	// Worker w1 takes the command, reports a partial checkpoint, then dies.
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 1 {
		t.Fatalf("workload = %v", wl.Commands)
	}
	partial := wire.CommandResult{
		CommandID: "c1", Project: "proj", WorkerID: "w1",
		OK: true, Partial: true, Checkpoint: []byte("halfway"),
	}
	if err := r.request(t, wire.MsgResult, &partial, nil); err != nil {
		t.Fatal(err)
	}
	// w1 sends no heartbeats; within ~2 intervals it must be declared dead
	// and c1 requeued with the checkpoint.
	deadline := time.Now().Add(3 * time.Second)
	var wl2 wire.Workload
	for time.Now().Before(deadline) {
		if err := r.request(t, wire.MsgAnnounce, announce("w2", 1), &wl2); err != nil {
			t.Fatal(err)
		}
		if len(wl2.Commands) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(wl2.Commands) != 1 {
		t.Fatal("command never requeued after worker death")
	}
	if string(wl2.Commands[0].Checkpoint) != "halfway" {
		t.Errorf("requeued without checkpoint: %q", wl2.Commands[0].Checkpoint)
	}
	// w2 completes it; the project finishes.
	res := wire.CommandResult{CommandID: "c1", Project: "proj", WorkerID: "w2", OK: true}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	st, err := r.srv.WaitProject(ctxTimeout(t, time.Second), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Errorf("state = %q", st.State)
	}
}

func TestWorkerFailureExhaustsRetries(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: 40 * time.Millisecond, MaxRetries: 1}, ctrl)
	r.submit(t, "proj")

	// Two successive workers take the command and die.
	for i := 0; i < 2; i++ {
		var wl wire.Workload
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if err := r.request(t, wire.MsgAnnounce, announce(fmt.Sprintf("w%d", i), 1), &wl); err != nil {
				t.Fatal(err)
			}
			if len(wl.Commands) > 0 {
				break
			}
			time.Sleep(15 * time.Millisecond)
		}
		if len(wl.Commands) == 0 {
			t.Fatalf("round %d: no work", i)
		}
		// Die silently.
	}
	// After the second death the retry budget (1) is exhausted → the
	// controller must see CommandFailed.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, fail := ctrl.counts(); fail > 0 {
			break
		}
		time.Sleep(15 * time.Millisecond)
	}
	if _, fail := ctrl.counts(); fail != 1 {
		t.Fatalf("controller saw %d terminal failures, want 1", fail)
	}
	st, _ := r.srv.Project("proj")
	if st.Failed != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestHeartbeatKeepsWorkerAlive(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: 60 * time.Millisecond}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	// Heartbeat for 5 intervals; the command must stay assigned.
	for i := 0; i < 10; i++ {
		hb := wire.Heartbeat{WorkerID: "w1", CommandIDs: []string{"c1"}}
		var ack wire.HeartbeatAck
		if err := r.request(t, wire.MsgHeartbeat, &hb, &ack); err != nil {
			t.Fatal(err)
		}
		if len(ack.AbortCommandIDs) != 0 {
			t.Fatalf("unexpected abort: %v", ack.AbortCommandIDs)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if r.srv.QueueLen() != 0 {
		t.Error("command was requeued despite live heartbeats")
	}
	st, _ := r.srv.Project("proj")
	if st.Running != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestStatusOverWireUnknownProjectForwarded(t *testing.T) {
	r := newRig(t, Config{}, &testController{})
	err := r.request(t, wire.MsgStatus, &wire.ProjectStatusRequest{Name: "ghost"}, nil)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("err = %v (unknown project should be left for other servers)", err)
	}
}

func TestProjectSeedStable(t *testing.T) {
	if seedFromName("villin") != seedFromName("villin") {
		t.Error("seed not stable")
	}
	if seedFromName("a") == seedFromName("b") {
		t.Error("seeds collide trivially")
	}
}

// metricValue sums every sample of the named metric in o's text exposition.
func metricValue(t *testing.T, o *obs.Obs, name string) float64 {
	t.Helper()
	var buf strings.Builder
	o.Metrics.WriteText(&buf)
	total := 0.0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			total += v
		}
	}
	return total
}

func TestDuplicateResultCountedInMetrics(t *testing.T) {
	o := obs.New()
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour, Obs: o}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	res := wire.CommandResult{CommandID: "c1", Project: "proj", WorkerID: "w1", OK: true}
	for i := 0; i < 3; i++ { // first delivery plus two redeliveries
		if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
			t.Fatal(err)
		}
	}
	if fin, _ := ctrl.counts(); fin != 1 {
		t.Errorf("controller saw %d completions for one command", fin)
	}
	if got := metricValue(t, o, "copernicus_results_duplicate_total"); got != 2 {
		t.Errorf("copernicus_results_duplicate_total = %g, want 2", got)
	}
}

// TestLateResultAfterRequeueAccepted covers the spool-and-redeliver race: a
// worker is declared dead and its command requeued, then its result arrives
// anyway. The server must accept it (work is work) and drop the queued copy
// so no second worker runs the command again.
func TestLateResultAfterRequeueAccepted(t *testing.T) {
	o := obs.New()
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r := newRig(t, Config{HeartbeatInterval: 40 * time.Millisecond, Obs: o}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 1 {
		t.Fatalf("workload = %v", wl.Commands)
	}
	// w1 sends no heartbeats; wait for the reaper to requeue c1 without
	// consuming the queue ourselves.
	deadline := time.Now().Add(3 * time.Second)
	for metricValue(t, o, "copernicus_commands_requeued_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("command never requeued after worker death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The "dead" worker's result shows up late (e.g. redelivered from its
	// spool after a partition healed).
	res := wire.CommandResult{CommandID: "c1", Project: "proj", WorkerID: "w1", OK: true}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	st, err := r.srv.WaitProject(ctxTimeout(t, 2*time.Second), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "finished" {
		t.Errorf("state = %q after late result", st.State)
	}
	// The queued duplicate must be gone: a fresh worker gets no work.
	var wl2 wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w2", 1), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 0 {
		t.Errorf("requeued copy still dispatched after late result: %v", wl2.Commands)
	}
	if fin, _ := ctrl.counts(); fin != 1 {
		t.Errorf("controller saw %d completions", fin)
	}
}
