package server

import (
	"errors"
	"testing"
	"time"

	"copernicus/internal/wire"
)

// tenantSpec is cmdSpec with a priority knob (tenant is inherited from the
// project, never set by controllers).
func prioSpec(id string, prio int) wire.CommandSpec {
	c := cmdSpec(id)
	c.Priority = prio
	return c
}

func TestSubmitReceiptThreadsTenant(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), prioSpec("c2", 7)}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)

	var receipt wire.SubmitReceipt
	sub := wire.ProjectSubmit{Name: "proj", Controller: "test", Tenant: "acme", Priority: 3}
	if err := r.request(t, wire.MsgSubmit, &sub, &receipt); err != nil {
		t.Fatal(err)
	}
	if receipt.Project != "proj" || receipt.Tenant != "acme" {
		t.Errorf("receipt = %+v", receipt)
	}
	if receipt.Server != r.srv.Node().ID() {
		t.Errorf("receipt.Server = %q, want %q", receipt.Server, r.srv.Node().ID())
	}
	if receipt.AcceptedUnixNano == 0 {
		t.Error("receipt has no admission timestamp")
	}

	st, ok := r.srv.Project("proj")
	if !ok || st.Tenant != "acme" {
		t.Errorf("project status tenant = %q, want acme", st.Tenant)
	}

	// Dispatched specs carry the tenant; c1 inherits the project base
	// priority, c2 keeps its own.
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 2 {
		t.Fatalf("workload = %v", wl.Commands)
	}
	for _, c := range wl.Commands {
		if c.Tenant != "acme" {
			t.Errorf("command %s has tenant %q, want acme", c.ID, c.Tenant)
		}
		switch c.ID {
		case "c1":
			if c.Priority != 3 {
				t.Errorf("c1 priority = %d, want inherited 3", c.Priority)
			}
		case "c2":
			if c.Priority != 7 {
				t.Errorf("c2 priority = %d, want its own 7", c.Priority)
			}
		}
	}
	// Tenant accounting followed the dispatch.
	ts, ok := r.srv.q.Tenant("acme")
	if !ok || ts.InflightCores != 2 {
		t.Errorf("tenant status = %+v", ts)
	}
}

func TestSubmitPastDeadlineShed(t *testing.T) {
	r := newRig(t, Config{}, &testController{})
	sub := wire.ProjectSubmit{Name: "late", Controller: "test",
		DeadlineUnixNano: time.Now().Add(-time.Second).UnixNano()}
	err := r.request(t, wire.MsgSubmit, &sub, nil)
	if !errors.Is(err, wire.ErrAdmissionShed) {
		t.Fatalf("err = %v, want ErrAdmissionShed", err)
	}
	if _, ok := r.srv.Project("late"); ok {
		t.Error("shed project exists")
	}
}

// TestQuotaRejectionWithdrawsProject: when a controller's initial submits
// are bounced by the tenant's queued-command quota, the whole project is
// withdrawn — typed terminal error, nothing queued, name reusable.
func TestQuotaRejectionWithdrawsProject(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)

	var st wire.TenantStatus
	upd := wire.TenantQuotaUpdate{Tenant: "capped", MaxQueued: 1, MaxCores: -1, MaxStorageBytes: -1}
	if err := r.request(t, wire.MsgTenantQuotaSet, &upd, &st); err != nil {
		t.Fatal(err)
	}
	if st.MaxQueued != 1 {
		t.Fatalf("quota status = %+v", st)
	}

	sub := wire.ProjectSubmit{Name: "proj", Controller: "test", Tenant: "capped"}
	err := r.request(t, wire.MsgSubmit, &sub, nil)
	if !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, wire.ErrAdmissionShed) {
		t.Error("quota rejection matched the retryable class too")
	}
	if _, ok := r.srv.Project("proj"); ok {
		t.Error("rejected project still exists")
	}
	if n := r.srv.QueueLen(); n != 0 {
		t.Errorf("queue holds %d commands after withdrawal", n)
	}

	// Raising the quota frees the name for a clean retry.
	upd.MaxQueued = 0
	if err := r.request(t, wire.MsgTenantQuotaSet, &upd, &st); err != nil {
		t.Fatal(err)
	}
	var receipt wire.SubmitReceipt
	if err := r.request(t, wire.MsgSubmit, &sub, &receipt); err != nil {
		t.Fatalf("resubmit after quota raise: %v", err)
	}
	if receipt.Project != "proj" {
		t.Errorf("receipt = %+v", receipt)
	}
}

func TestGlobalBoundShedsSubmit(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour, MaxQueuedTotal: 1}, ctrl)
	err := r.request(t, wire.MsgSubmit, &wire.ProjectSubmit{Name: "proj", Controller: "test"}, nil)
	if !errors.Is(err, wire.ErrAdmissionShed) {
		t.Fatalf("err = %v, want ErrAdmissionShed", err)
	}
	if n := r.srv.QueueLen(); n != 0 {
		t.Errorf("queue holds %d commands after shed", n)
	}
}

func TestTenantAdminRoundTrip(t *testing.T) {
	r := newRig(t, Config{}, &testController{})
	var st wire.TenantStatus
	upd := wire.TenantQuotaUpdate{Tenant: "acme", Weight: 4,
		MaxQueued: 10, MaxCores: 8, MaxStorageBytes: 1 << 20}
	if err := r.request(t, wire.MsgTenantQuotaSet, &upd, &st); err != nil {
		t.Fatal(err)
	}
	if st.Weight != 4 || st.MaxQueued != 10 || st.MaxCores != 8 || st.MaxStorageBytes != 1<<20 {
		t.Errorf("set status = %+v", st)
	}
	var got wire.TenantStatus
	if err := r.request(t, wire.MsgTenantQuotaGet, &wire.TenantQuotaRequest{Tenant: "acme"}, &got); err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Errorf("get = %+v, want %+v", got, st)
	}
	// Unknown tenants report the defaults they would get.
	if err := r.request(t, wire.MsgTenantQuotaGet, &wire.TenantQuotaRequest{Tenant: "ghost"}, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "ghost" || got.Weight != 1 {
		t.Errorf("unknown tenant = %+v", got)
	}
	var list wire.TenantList
	if err := r.request(t, wire.MsgTenantList, &wire.TenantListRequest{}, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 1 || list.Tenants[0].ID != "acme" {
		t.Errorf("list = %+v", list.Tenants)
	}
	// Empty tenant IDs are refused (too easy to fat-finger a global change).
	if err := r.request(t, wire.MsgTenantQuotaSet, &wire.TenantQuotaUpdate{}, nil); err == nil {
		t.Error("empty tenant quota update accepted")
	}
}

// TestCheckpointPreemptionForStarvedTenant drives the full preemption path:
// tenant "whale" occupies the only worker with a checkpointed command,
// tenant "minnow" starves past PreemptAge, the monitor evicts the whale's
// command at its checkpoint, the old worker is told to abort via heartbeat
// ack, and the freed core goes to the minnow.
func TestCheckpointPreemptionForStarvedTenant(t *testing.T) {
	whaleCtrl := &testController{submit: []wire.CommandSpec{cmdSpec("a1")}}
	r := newRig(t, Config{
		HeartbeatInterval: 40 * time.Millisecond,
		PreemptAge:        50 * time.Millisecond,
	}, whaleCtrl)

	var receipt wire.SubmitReceipt
	subA := wire.ProjectSubmit{Name: "pa", Controller: "test", Tenant: "whale"}
	if err := r.request(t, wire.MsgSubmit, &subA, &receipt); err != nil {
		t.Fatal(err)
	}
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 1 || wl.Commands[0].ID != "a1" {
		t.Fatalf("workload = %v", wl.Commands)
	}
	// a1 reports a checkpoint — this is what makes it evictable.
	partial := wire.CommandResult{CommandID: "a1", Project: "pa", WorkerID: "w1",
		OK: true, Partial: true, Checkpoint: []byte("halfway")}
	if err := r.request(t, wire.MsgResult, &partial, nil); err != nil {
		t.Fatal(err)
	}

	// The minnow's project arrives; no cores are free, so it starves. The
	// submit rides through the same registry instance (testController is
	// shared), so queue a distinct command ID.
	whaleCtrl.mu.Lock()
	whaleCtrl.submit = []wire.CommandSpec{cmdSpec("b1")}
	whaleCtrl.mu.Unlock()
	subB := wire.ProjectSubmit{Name: "pb", Controller: "test", Tenant: "minnow"}
	if err := r.request(t, wire.MsgSubmit, &subB, nil); err != nil {
		t.Fatal(err)
	}

	// Keep w1 alive with heartbeats until the monitor preempts a1: the
	// heartbeat ack must carry the abort. Liveness matters — if w1 were
	// reaped, the ordinary worker-loss path would requeue a1 and mask the
	// preemption under test.
	deadline := time.Now().Add(3 * time.Second)
	aborted := false
	for time.Now().Before(deadline) && !aborted {
		hb := wire.Heartbeat{WorkerID: "w1", CommandIDs: []string{"a1"}}
		var ack wire.HeartbeatAck
		if err := r.request(t, wire.MsgHeartbeat, &hb, &ack); err != nil {
			t.Fatal(err)
		}
		for _, id := range ack.AbortCommandIDs {
			if id == "a1" {
				aborted = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !aborted {
		t.Fatal("worker never told to abort the preempted command")
	}

	// The freed core serves the starved tenant, and the whale's command is
	// back in the queue with its checkpoint intact.
	seen := map[string][]byte{}
	deadline = time.Now().Add(3 * time.Second)
	for len(seen) < 2 && time.Now().Before(deadline) {
		var wl2 wire.Workload
		if err := r.request(t, wire.MsgAnnounce, announce("w2", 1), &wl2); err != nil {
			t.Fatal(err)
		}
		for _, c := range wl2.Commands {
			seen[c.ID] = c.Checkpoint
		}
		// Heartbeat w1 so it is not reaped mid-assertion.
		hb := wire.Heartbeat{WorkerID: "w1"}
		if err := r.request(t, wire.MsgHeartbeat, &hb, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := seen["b1"]; !ok {
		t.Error("starved tenant's command never dispatched after preemption")
	}
	cp, ok := seen["a1"]
	if !ok {
		t.Error("preempted command never redispatched")
	} else if string(cp) != "halfway" {
		t.Errorf("preempted command redispatched with checkpoint %q, want \"halfway\"", cp)
	}
}

// TestGangPreemptionEvictsWholeGang: when the starvation monitor picks a
// victim that belongs to a gang, every running member is evicted at its own
// checkpoint boundary in the same tick — the old worker is told to abort
// all of them, and the gang later redispatches as a unit with each member's
// checkpoint intact. A half-evicted gang would strand the survivors (the
// requeued members could never refill the all-or-nothing barrier).
func TestGangPreemptionEvictsWholeGang(t *testing.T) {
	gang := func(id string) wire.CommandSpec {
		c := cmdSpec(id)
		c.GangID = "pa/g1"
		c.GangSize = 2
		return c
	}
	ctrl := &testController{submit: []wire.CommandSpec{gang("a1"), gang("a2")}}
	r := newRig(t, Config{
		HeartbeatInterval: 40 * time.Millisecond,
		PreemptAge:        50 * time.Millisecond,
	}, ctrl)

	if err := r.request(t, wire.MsgSubmit,
		&wire.ProjectSubmit{Name: "pa", Controller: "test", Tenant: "whale"}, nil); err != nil {
		t.Fatal(err)
	}
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 2 {
		t.Fatalf("gang dispatch = %v, want both members", wl.Commands)
	}
	// Both members checkpoint — the gang is only evictable once every
	// member can resume.
	for _, id := range []string{"a1", "a2"} {
		partial := wire.CommandResult{CommandID: id, Project: "pa", WorkerID: "w1",
			OK: true, Partial: true, Checkpoint: []byte("ck-" + id)}
		if err := r.request(t, wire.MsgResult, &partial, nil); err != nil {
			t.Fatal(err)
		}
	}

	ctrl.mu.Lock()
	ctrl.submit = []wire.CommandSpec{cmdSpec("b1")}
	ctrl.mu.Unlock()
	if err := r.request(t, wire.MsgSubmit,
		&wire.ProjectSubmit{Name: "pb", Controller: "test", Tenant: "minnow"}, nil); err != nil {
		t.Fatal(err)
	}

	// Heartbeat w1 until the ack aborts BOTH gang members — the monitor must
	// never evict one and leave its sibling running.
	aborted := map[string]bool{}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && len(aborted) < 2 {
		hb := wire.Heartbeat{WorkerID: "w1", CommandIDs: []string{"a1", "a2"}}
		var ack wire.HeartbeatAck
		if err := r.request(t, wire.MsgHeartbeat, &hb, &ack); err != nil {
			t.Fatal(err)
		}
		if len(ack.AbortCommandIDs) == 1 {
			t.Fatalf("partial gang abort: %v", ack.AbortCommandIDs)
		}
		for _, id := range ack.AbortCommandIDs {
			aborted[id] = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !aborted["a1"] || !aborted["a2"] {
		t.Fatalf("gang not fully aborted: %v", aborted)
	}

	// The requeued gang needs 2 cores on one worker; a 1-core announce must
	// get only the minnow's command, never half the gang.
	var small wire.Workload
	gotB1 := false
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !gotB1 {
		if err := r.request(t, wire.MsgAnnounce, announce("w2", 1), &small); err != nil {
			t.Fatal(err)
		}
		for _, c := range small.Commands {
			if c.ID != "b1" {
				t.Fatalf("1-core worker received gang member %s", c.ID)
			}
			gotB1 = true
		}
		hb := wire.Heartbeat{WorkerID: "w1"}
		if err := r.request(t, wire.MsgHeartbeat, &hb, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !gotB1 {
		t.Fatal("starved tenant's command never dispatched after gang preemption")
	}

	// A 2-core worker receives the whole gang in one workload, checkpoints
	// intact.
	var big wire.Workload
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && len(big.Commands) == 0 {
		if err := r.request(t, wire.MsgAnnounce, announce("w3", 2), &big); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(big.Commands) != 2 {
		t.Fatalf("gang redispatch = %v, want both members together", big.Commands)
	}
	for _, c := range big.Commands {
		if want := "ck-" + c.ID; string(c.Checkpoint) != want {
			t.Errorf("member %s redispatched with checkpoint %q, want %q", c.ID, c.Checkpoint, want)
		}
	}
}

// TestGangStragglerDemotedWhenSiblingFinishes: a gang member requeued after
// worker loss cannot wait for a sibling that already finished — the server
// demotes it to a solo command so it re-runs instead of deadlocking behind
// an unfillable all-or-nothing barrier.
func TestGangStragglerDemotedWhenSiblingFinishes(t *testing.T) {
	gang := func(id string) wire.CommandSpec {
		c := cmdSpec(id)
		c.GangID = "pg/g1"
		c.GangSize = 2
		return c
	}
	ctrl := &testController{submit: []wire.CommandSpec{gang("a1"), gang("a2")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)

	if err := r.request(t, wire.MsgSubmit,
		&wire.ProjectSubmit{Name: "pg", Controller: "test", Tenant: "acme"}, nil); err != nil {
		t.Fatal(err)
	}
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 2 {
		t.Fatalf("gang dispatch = %v", wl.Commands)
	}
	// a1 finishes; a2 checkpoints and then its worker is reported lost.
	done := wire.CommandResult{CommandID: "a1", Project: "pg", WorkerID: "w1", OK: true}
	if err := r.request(t, wire.MsgResult, &done, nil); err != nil {
		t.Fatal(err)
	}
	partial := wire.CommandResult{CommandID: "a2", Project: "pg", WorkerID: "w1",
		OK: true, Partial: true, Checkpoint: []byte("ck-a2")}
	if err := r.request(t, wire.MsgResult, &partial, nil); err != nil {
		t.Fatal(err)
	}
	wf := wire.WorkerFailed{WorkerID: "w1", CommandIDs: []string{"a2"}}
	if err := r.request(t, wire.MsgWorkerFailed, &wf, nil); err != nil {
		t.Fatal(err)
	}
	// The straggler must dispatch solo — a 1-core worker can take it.
	var wl2 wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w2", 1), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 1 || wl2.Commands[0].ID != "a2" {
		t.Fatalf("straggler dispatch = %v, want solo a2", wl2.Commands)
	}
	if string(wl2.Commands[0].Checkpoint) != "ck-a2" {
		t.Errorf("straggler checkpoint = %q, want ck-a2", wl2.Commands[0].Checkpoint)
	}
	if wl2.Commands[0].GangID != "" || wl2.Commands[0].GangSize != 0 {
		t.Errorf("straggler still carries gang fields: %+v", wl2.Commands[0])
	}
}
