package server

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"copernicus/internal/store"
	"copernicus/internal/wire"
)

// testCtlState makes testController serializable so the snapshot path
// (which requires controller.Durable) can be exercised with the scriptable
// controller instead of a full MSM run.
type testCtlState struct {
	Finished []wire.CommandResult
	Failed   []string
}

func (c *testController) SaveState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := testCtlState{Failed: append([]string(nil), c.failed...)}
	for _, r := range c.finished {
		st.Finished = append(st.Finished, *r)
	}
	return wire.Marshal(&st)
}

func (c *testController) RestoreState(data []byte) error {
	var st testCtlState
	if err := wire.Unmarshal(data, &st); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finished = nil
	for i := range st.Finished {
		c.finished = append(c.finished, &st.Finished[i])
	}
	c.failed = st.Failed
	return nil
}

// openTestStore opens a store on dir with fsync disabled (throwaway dirs).
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// threeCmdCtl returns the deterministic controller script shared by the
// recovery tests: recovery replays Start on a fresh instance, so the
// restarted rig must be given the same script.
func threeCmdCtl() *testController {
	return &testController{
		submit:   []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2"), cmdSpec("c3")},
		finishOn: 3,
	}
}

func sendResult(t *testing.T, r *rig, cmd, worker string) {
	t.Helper()
	res := wire.CommandResult{CommandID: cmd, Project: "proj", WorkerID: worker,
		OK: true, Output: []byte("out-" + cmd)}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryEmptyStateDir: a store on a brand-new directory must behave
// exactly like no store at all — nothing to replay, submissions work.
func TestRecoveryEmptyStateDir(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	rec := st.Recovered()
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("empty dir recovered %+v", rec)
	}
	r := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, threeCmdCtl())
	r.submit(t, "proj")
	if pst, ok := r.srv.Project("proj"); !ok || pst.State != "running" {
		t.Fatalf("project after submit: %+v ok=%v", pst, ok)
	}
}

// TestRecoveryReplayAndOrphanRequeue is the core crash-restart contract at
// the server level: a project with one settled, one assigned-but-unresolved
// and one queued command is rebuilt from the WAL alone; the settled result
// is not re-run, the orphan is requeued, and a late duplicate of the settled
// result is absorbed without driving the controller twice.
func TestRecoveryReplayAndOrphanRequeue(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	r1 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, threeCmdCtl())
	r1.submit(t, "proj")
	var wl wire.Workload
	if err := r1.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Commands) != 2 {
		t.Fatalf("w1 got %d commands, want 2", len(wl.Commands))
	}
	done := wl.Commands[0].ID // settle one of the two assigned commands
	sendResult(t, r1, done, "w1")

	// Hard stop: no snapshot, no graceful drain.
	r1.srv.Close()
	st.Close()

	st2 := openTestStore(t, dir)
	ctrl2 := threeCmdCtl()
	r2 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st2}, ctrl2)
	pst, ok := r2.srv.Project("proj")
	if !ok || pst.State != "running" {
		t.Fatalf("recovered project: %+v ok=%v", pst, ok)
	}
	if fin, _ := ctrl2.counts(); fin != 1 {
		t.Fatalf("replayed %d completions, want 1", fin)
	}
	// The orphaned assignment and the never-assigned command must both be
	// available again.
	var wl2 wire.Workload
	if err := r2.request(t, wire.MsgAnnounce, announce("w2", 3), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 2 {
		t.Fatalf("recovered queue handed out %d commands, want 2", len(wl2.Commands))
	}
	for _, c := range wl2.Commands {
		if c.ID == done {
			t.Fatalf("settled command %s was re-queued", done)
		}
	}
	// Duplicate redelivery of the pre-crash result (a worker that spooled it
	// during the outage) must be acknowledged and ignored.
	sendResult(t, r2, done, "w1")
	if fin, _ := ctrl2.counts(); fin != 1 {
		t.Fatalf("duplicate result drove the controller: %d completions", fin)
	}
	// Finish the project through the recovered server.
	for _, c := range wl2.Commands {
		sendResult(t, r2, c.ID, "w2")
	}
	fst, err := r2.srv.WaitProject(ctxTimeout(t, 2*time.Second), "proj")
	if err != nil {
		t.Fatal(err)
	}
	if fst.State != "finished" {
		t.Fatalf("state = %q (%s)", fst.State, fst.Note)
	}
}

// TestRecoveryTornFinalRecord: a crash mid-append leaves a torn final
// frame. The write was never acknowledged, so recovery must discard it and
// rebuild everything before it — here the torn record is the only result,
// so the command runs again (bounded re-execution, nothing lost).
func TestRecoveryTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	r1 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, threeCmdCtl())
	r1.submit(t, "proj")
	var wl wire.Workload
	if err := r1.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}
	sendResult(t, r1, wl.Commands[0].ID, "w1")
	r1.srv.Close()
	st.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	if st2.Recovered().Torn == "" {
		t.Fatal("torn tail not detected")
	}
	ctrl2 := threeCmdCtl()
	r2 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st2}, ctrl2)
	if pst, ok := r2.srv.Project("proj"); !ok || pst.State != "running" {
		t.Fatalf("recovered project: %+v ok=%v", pst, ok)
	}
	// The result record was torn away, so no completion replays and all
	// three commands are runnable again.
	if fin, _ := ctrl2.counts(); fin != 0 {
		t.Fatalf("torn result still replayed: %d completions", fin)
	}
	var wl2 wire.Workload
	if err := r2.request(t, wire.MsgAnnounce, announce("w2", 3), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 3 {
		t.Fatalf("recovered queue handed out %d commands, want 3", len(wl2.Commands))
	}
	for _, c := range wl2.Commands {
		sendResult(t, r2, c.ID, "w2")
	}
	if fst, err := r2.srv.WaitProject(ctxTimeout(t, 2*time.Second), "proj"); err != nil || fst.State != "finished" {
		t.Fatalf("state=%v err=%v", fst.State, err)
	}
}

// TestRecoverySnapshotWithoutWAL: compaction can race a crash such that a
// snapshot exists but every WAL segment is gone. The snapshot alone must be
// a complete recovery baseline, including serialized controller state.
func TestRecoverySnapshotWithoutWAL(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	r1 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, threeCmdCtl())
	r1.submit(t, "proj")
	var wl wire.Workload
	if err := r1.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	sendResult(t, r1, wl.Commands[0].ID, "w1")
	if err := r1.srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	r1.srv.Close()
	st.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}

	st2 := openTestStore(t, dir)
	rec := st2.Recovered()
	if rec.Snapshot == nil || len(rec.Records) != 0 {
		t.Fatalf("recovered %+v, want snapshot only", rec)
	}
	ctrl2 := threeCmdCtl()
	r2 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st2}, ctrl2)
	if fin, _ := ctrl2.counts(); fin != 1 {
		t.Fatalf("controller state restored %d completions, want 1", fin)
	}
	var wl2 wire.Workload
	if err := r2.request(t, wire.MsgAnnounce, announce("w2", 3), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 2 {
		t.Fatalf("snapshot-recovered queue handed out %d commands, want 2", len(wl2.Commands))
	}
	for _, c := range wl2.Commands {
		sendResult(t, r2, c.ID, "w2")
	}
	if fst, err := r2.srv.WaitProject(ctxTimeout(t, 2*time.Second), "proj"); err != nil || fst.State != "finished" {
		t.Fatalf("state=%v err=%v", fst.State, err)
	}
}

// TestRecoveryFinishedProjectStaysQueryable: terminal projects survive a
// restart with their result intact and never re-enter the queue.
func TestRecoveryFinishedProjectStaysQueryable(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r1 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, ctrl)
	r1.submit(t, "proj")
	var wl wire.Workload
	if err := r1.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	sendResult(t, r1, "c1", "w1")
	if fst, err := r1.srv.WaitProject(ctxTimeout(t, 2*time.Second), "proj"); err != nil || fst.State != "finished" {
		t.Fatalf("state=%v err=%v", fst.State, err)
	}
	r1.srv.Close()
	st.Close()

	st2 := openTestStore(t, dir)
	ctrl2 := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r2 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st2}, ctrl2)
	pst, ok := r2.srv.Project("proj")
	if !ok || pst.State != "finished" || string(pst.Result) != "done" {
		t.Fatalf("recovered terminal project: %+v ok=%v", pst, ok)
	}
	var wl2 wire.Workload
	if err := r2.request(t, wire.MsgAnnounce, announce("w2", 4), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 0 {
		t.Fatalf("finished project's commands re-queued: %v", wl2.Commands)
	}
}
