// Durable project state: journaling of lifecycle transitions into the
// configured store, snapshot capture at WAL rotation, and the startup
// recovery path that replays snapshot + tail into a fresh server.
//
// Recovery is event-sourced: the WAL journals the server's *inputs*
// (project parameters, results in arrival order) and replay re-runs the
// deterministic controllers through the normal handlers, re-deriving
// everything they had computed. Snapshots bound replay time by capturing
// full project state — including serialized controller state
// (controller.Durable) — so compaction can delete old segments.
package server

import (
	"fmt"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/store"
	"copernicus/internal/wire"
)

// journal appends one lifecycle record to the configured store, blocking
// until it is fsynced. Journaling failures are availability-over-durability:
// the server keeps serving (the store's wal_errors counter and the log
// record the gap) rather than refusing work because a disk is unhappy.
func (s *Server) journal(rec store.Record) {
	if s.cfg.Store == nil || s.replaying.Load() {
		return
	}
	if err := s.cfg.Store.Append(rec); err != nil {
		s.log.Error("journaling state transition failed; continuing without durability",
			"type", rec.Type.String(), "project", rec.Project, "cmd", rec.Command, "err", err)
	}
}

// withProject runs f under the project lock if the project exists.
func (s *Server) withProject(name string, f func(*project)) {
	s.mu.Lock()
	p := s.projects[name]
	s.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f(p)
}

// --- recovery ---

// recoverFromStore replays the store's recovered image (newest snapshot +
// WAL tail) into the server, then re-seeds the command queue and requeues
// commands that were assigned but never resolved. Called from New before
// any protocol handler is registered, so nothing races the replay.
// Per-project and per-record failures are logged and skipped — recovery
// salvages everything salvageable instead of refusing to start.
func (s *Server) recoverFromStore() {
	rec := s.cfg.Store.Recovered()
	if rec.Snapshot == nil && len(rec.Records) == 0 {
		return
	}
	start := time.Now()
	s.replaying.Store(true)
	restored := 0
	if rec.Snapshot != nil {
		// Tenant accounts first: weights, quotas and the storage already
		// billed, so replayed/reseeded commands land in configured accounts.
		// Fair-share virtual time and core-second usage restart from zero —
		// a restart is a deliberate amnesty, not a billing event.
		for _, ts := range rec.Snapshot.Tenants {
			s.q.SetQuota(wire.TenantQuotaUpdate{
				Tenant:          ts.ID,
				Weight:          ts.Weight,
				MaxQueued:       ts.MaxQueued,
				MaxCores:        ts.MaxCores,
				MaxStorageBytes: ts.MaxStorageBytes,
			})
			if ts.StorageBytes > 0 {
				s.q.ChargeStorage(ts.ID, ts.StorageBytes)
			}
		}
		for _, ps := range rec.Snapshot.Projects {
			if err := s.restoreProject(ps); err != nil {
				s.log.Error("restoring project from snapshot failed",
					"project", ps.Name, "err", err)
				continue
			}
			restored++
		}
	}
	for _, r := range rec.Records {
		s.replayRecord(r)
	}
	s.replaying.Store(false)
	orphans, queued := s.reseedQueue()
	if rec.Torn != "" {
		s.log.Warn("write-ahead log ended in a torn record; discarded "+
			"(it was never acknowledged)", "detail", rec.Torn)
	}
	s.mu.Lock()
	nProjects := len(s.projects)
	s.mu.Unlock()
	s.log.Info("recovered durable state",
		"projects", nProjects, "from_snapshot", restored,
		"replayed_records", len(rec.Records), "queued", queued,
		"orphans_requeued", orphans, "elapsed", time.Since(start))
}

// restoreProject rebuilds one project from its snapshot image, restoring
// the controller's serialized state instead of re-running Start.
func (s *Server) restoreProject(ps store.ProjectSnap) error {
	ctrl, err := s.reg.New(ps.Controller)
	if err != nil {
		return err
	}
	if ps.State == "running" {
		d, ok := ctrl.(controller.Durable)
		if !ok {
			return fmt.Errorf("server: controller %q does not implement controller.Durable", ps.Controller)
		}
		if err := d.RestoreState(ps.CtrlState); err != nil {
			return err
		}
	}
	p := &project{
		name:       ps.Name,
		ctrl:       ctrl,
		tenant:     ps.Tenant,
		priority:   ps.Priority,
		state:      ps.State,
		generation: ps.Generation,
		note:       ps.Note,
		result:     ps.Result,
		failErr:    ps.FailErr,
		finished:   ps.Finished,
		failed:     ps.Failed,
		seed:       ps.Seed,
		commands:   make(map[string]*cmdState, len(ps.Commands)),
		done:       make(chan struct{}),
	}
	if p.state != "running" {
		close(p.done)
	}
	now := time.Now()
	for _, cs := range ps.Commands {
		p.commands[cs.Spec.ID] = &cmdState{
			spec:        cs.Spec,
			status:      cmdStatus(cs.Status),
			worker:      cs.Worker,
			retries:     cs.Retries,
			checkpoint:  cs.Checkpoint,
			streamed:    cs.Streamed,
			submittedAt: now,
		}
	}
	s.mu.Lock()
	s.projects[ps.Name] = p
	s.mu.Unlock()
	return nil
}

// replayRecord applies one journaled event. Every branch is idempotent
// against state the snapshot already reflects (the Rotate→capture overlap
// window), which is what makes the snapshot protocol safe.
func (s *Server) replayRecord(r store.Record) {
	switch r.Type {
	case store.RecProjectSubmitted:
		s.mu.Lock()
		if _, dup := s.projects[r.Project]; dup {
			s.mu.Unlock()
			return
		}
		ctrl, err := s.reg.New(r.Note)
		if err != nil {
			s.mu.Unlock()
			s.log.Error("replaying project submit failed", "project", r.Project, "err", err)
			return
		}
		p := &project{
			name:     r.Project,
			ctrl:     ctrl,
			tenant:   r.Tenant,
			priority: r.Count,
			state:    "running",
			commands: make(map[string]*cmdState),
			done:     make(chan struct{}),
			seed:     seedFromName(r.Project),
		}
		s.projects[r.Project] = p
		s.mu.Unlock()
		p.mu.Lock()
		if err := ctrl.Start(s.contextFor(p), r.Data); err != nil {
			// Deterministic: the live Start failed the same way.
			p.state = "failed"
			p.failErr = err.Error()
			close(p.done)
		}
		p.mu.Unlock()

	case store.RecCommandQueued:
		var spec wire.CommandSpec
		if err := wire.Unmarshal(r.Data, &spec); err != nil {
			return
		}
		// Usually a duplicate of what the replayed handler already
		// submitted; only a crash between journal and apply leaves a gap.
		s.withProject(r.Project, func(p *project) {
			if p.commands[spec.ID] == nil {
				p.commands[spec.ID] = &cmdState{spec: spec, status: cmdQueued, submittedAt: time.Now()}
			}
		})

	case store.RecCommandAssigned:
		s.withProjectCommand(r.Project, r.Command, func(p *project, cs *cmdState) {
			if cs.status == cmdQueued {
				cs.status = cmdRunning
				cs.worker = r.Worker
				cs.dispatchedAt = time.Now()
			}
		})

	case store.RecCheckpoint:
		s.withProjectCommand(r.Project, r.Command, func(p *project, cs *cmdState) {
			cs.checkpoint = r.Data
		})

	case store.RecFrameChunk:
		var chunk wire.FrameChunk
		if err := wire.Unmarshal(r.Data, &chunk); err != nil {
			return
		}
		s.mu.Lock()
		p := s.projects[r.Project]
		s.mu.Unlock()
		if p != nil {
			// Same ingest path as live delivery: the watermark advances and
			// the controller's frame sink sees the identical stream, so a
			// recovered or promoted server resumes the analysis exactly
			// where the WAL left it.
			_, _ = s.ingestChunk(p, &chunk, r.Data)
		}

	case store.RecResult:
		var res wire.CommandResult
		if err := wire.Unmarshal(r.Data, &res); err != nil {
			return
		}
		s.mu.Lock()
		p := s.projects[res.Project]
		s.mu.Unlock()
		if p == nil {
			return
		}
		// The normal ingest path, with journaling/metrics suppressed by the
		// replay flag: settled commands are skipped, fresh ones drive the
		// controller exactly as they did live.
		if _, _, err := s.ingestResult(p, &res); err != nil {
			s.log.Warn("replaying result failed", "cmd", res.CommandID, "err", err)
		}

	case store.RecCommandRequeued:
		s.withProjectCommand(r.Project, r.Command, func(p *project, cs *cmdState) {
			if cs.status == cmdRunning {
				cs.status = cmdQueued
				cs.worker = ""
				cs.retries = r.Count
				cs.submittedAt = time.Now()
			}
		})

	case store.RecCommandPreempted:
		s.withProjectCommand(r.Project, r.Command, func(p *project, cs *cmdState) {
			if cs.status == cmdRunning {
				cs.status = cmdQueued
				cs.worker = ""
				cs.preempts = r.Count
				cs.submittedAt = time.Now()
			}
		})

	case store.RecTenantQuota:
		var upd wire.TenantQuotaUpdate
		if err := wire.Unmarshal(r.Data, &upd); err != nil {
			return
		}
		s.q.SetQuota(upd)

	case store.RecCommandFailed:
		s.withProjectCommand(r.Project, r.Command, func(p *project, cs *cmdState) {
			if cs.status != cmdRunning && cs.status != cmdQueued {
				return
			}
			cs.status = cmdFailed
			p.failed++
			if p.state != "running" {
				return
			}
			if err := p.ctrl.CommandFailed(s.contextFor(p), cs.spec, r.Note); err != nil && p.state == "running" {
				p.state = "failed"
				p.failErr = err.Error()
				close(p.done)
			}
		})

	case store.RecGeneration:
		s.withProject(r.Project, func(p *project) {
			p.generation = r.Generation
			p.note = r.Note
		})

	case store.RecProjectFinished:
		s.withProject(r.Project, func(p *project) {
			if p.state == "running" {
				p.state = "finished"
				p.result = r.Data
				close(p.done)
			}
		})

	case store.RecProjectFailed:
		s.withProject(r.Project, func(p *project) {
			if p.state == "running" {
				p.state = "failed"
				p.failErr = r.Note
				close(p.done)
			}
		})
	}
}

// reseedQueue pushes every replayed still-queued command back into the
// matching queue and requeues commands whose assignment was journaled but
// whose result never arrived (orphans: the worker died with the server, or
// its result is still in flight — if it lands later, the duplicate-result
// path settles it and pulls the requeue). Orphan requeues count against
// cfg.MaxRetries exactly like live worker-loss requeues. Runs after the
// replay flag is cleared so the requeues are journaled like live ones.
func (s *Server) reseedQueue() (orphans, queued int) {
	s.mu.Lock()
	ps := make([]*project, 0, len(s.projects))
	for _, p := range s.projects {
		ps = append(ps, p)
	}
	s.mu.Unlock()
	for _, p := range ps {
		p.mu.Lock()
		if p.state != "running" {
			p.mu.Unlock()
			continue
		}
		gangs := make(map[string]int) // gang ID → size, checked after re-seeding
		for id, cs := range p.commands {
			if p.state != "running" {
				break // a terminal orphan failure below failed the project
			}
			if cs.spec.GangID != "" {
				gangs[cs.spec.GangID] = cs.spec.GangSize
			}
			switch cs.status {
			case cmdQueued:
				spec := cs.spec
				if len(cs.checkpoint) > 0 {
					spec.Checkpoint = cs.checkpoint
				}
				// Requeue, not Push: these commands were admitted before the
				// restart; re-running admission could bounce accepted work.
				if err := s.q.Requeue(spec); err != nil {
					s.log.Error("re-seeding queued command failed", "cmd", id, "err", err)
				} else {
					queued++
				}
			case cmdRunning:
				// Same retry cap as the live recovery path: a command that
				// straddles restart after restart must not be retried
				// without bound.
				if cs.retries >= s.cfg.MaxRetries {
					s.journal(store.Record{Type: store.RecCommandFailed,
						Project: p.name, Command: id, Worker: cs.worker,
						Note: "orphaned by restart; retries exhausted"})
					cs.status = cmdFailed
					p.failed++
					s.met.failed.Inc()
					s.log.Warn("restart orphan failed terminally",
						"cmd", id, "project", p.name, "retries", cs.retries)
					if err := p.ctrl.CommandFailed(s.contextFor(p), cs.spec,
						"orphaned by restart; retries exhausted"); err != nil && p.state == "running" {
						p.state = "failed"
						p.failErr = err.Error()
						close(p.done)
					}
					continue
				}
				cs.retries++
				s.journal(store.Record{Type: store.RecCommandRequeued,
					Project: p.name, Command: id, Worker: cs.worker,
					Count: cs.retries, Note: "orphaned by restart"})
				cs.status = cmdQueued
				cs.worker = ""
				cs.submittedAt = time.Now()
				cs.dispatchedAt = time.Time{}
				spec := cs.spec
				if len(cs.checkpoint) > 0 {
					spec.Checkpoint = cs.checkpoint
				}
				if err := s.q.Requeue(spec); err != nil {
					s.log.Error("requeueing orphaned command failed", "cmd", id, "err", err)
				} else {
					orphans++
					s.met.requeued.Inc()
				}
			}
		}
		// Gangs whose members partly finished or failed before the restart
		// can never refill; demote the re-seeded stragglers to solo. Checked
		// after the loop so every surviving member is back in the queue.
		for gid, size := range gangs {
			s.maybeDemoteGangLocked(p, gid, size)
		}
		p.mu.Unlock()
	}
	return orphans, queued
}

// --- snapshots ---

// maybeSnapshot starts a background snapshot when the store has
// accumulated enough records since the last rotation. At most one capture
// runs at a time.
func (s *Server) maybeSnapshot() {
	st := s.cfg.Store
	if st == nil || !st.ShouldSnapshot() {
		return
	}
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	started := s.goAsync(func() {
		defer s.snapshotting.Store(false)
		if err := s.SnapshotNow(); err != nil {
			s.log.Warn("background snapshot failed", "err", err)
		}
	})
	if !started {
		s.snapshotting.Store(false)
	}
}

// SnapshotNow rotates the WAL and writes a snapshot of all project state,
// letting the store compact everything older. The ordering is what makes
// it crash-safe: rotate FIRST, capture second — any record journaled
// during the capture lands in the new segment and is replayed (idempotently)
// on top of the snapshot, so no transition can fall between the two. The
// snapshot is stamped with the rotate-time last sequence, not a later
// cursor: the capture only guarantees to reflect records journaled before
// the rotation, and recovery skips everything at or below the stamp.
func (s *Server) SnapshotNow() error {
	st := s.cfg.Store
	if st == nil {
		return nil
	}
	idx, lastSeq, err := st.Rotate()
	if err != nil {
		return err
	}
	snap, err := s.captureSnapshot()
	if err != nil {
		// No snapshot written: recovery still works from the previous
		// baseline plus an extra (unrotated-away) segment.
		return err
	}
	if err := st.WriteSnapshot(idx, lastSeq, snap); err != nil {
		return err
	}
	s.log.Info("snapshot written", "baseline_segment", idx, "projects", len(snap.Projects))
	return nil
}

// captureSnapshot serializes every project under its own lock. Journal
// calls hold the same lock, so each project's image is consistent with the
// WAL ordering.
func (s *Server) captureSnapshot() (*store.Snapshot, error) {
	s.mu.Lock()
	ps := make([]*project, 0, len(s.projects))
	for _, p := range s.projects {
		ps = append(ps, p)
	}
	s.mu.Unlock()
	snap := &store.Snapshot{Tenants: s.q.Tenants()}
	for _, p := range ps {
		p.mu.Lock()
		sp := store.ProjectSnap{
			Name:       p.name,
			Controller: p.ctrl.Name(),
			Tenant:     p.tenant,
			Priority:   p.priority,
			State:      p.state,
			Generation: p.generation,
			Note:       p.note,
			FailErr:    p.failErr,
			Result:     p.result,
			Finished:   p.finished,
			Failed:     p.failed,
			Seed:       p.seed,
		}
		if p.state == "running" {
			d, ok := p.ctrl.(controller.Durable)
			if !ok {
				p.mu.Unlock()
				return nil, fmt.Errorf("server: controller %q does not implement controller.Durable; cannot snapshot", p.ctrl.Name())
			}
			blob, err := d.SaveState()
			if err != nil {
				p.mu.Unlock()
				return nil, fmt.Errorf("server: serializing controller state for %q: %w", p.name, err)
			}
			sp.CtrlState = blob
		}
		for _, cs := range p.commands {
			sp.Commands = append(sp.Commands, store.CommandSnap{
				Spec:       cs.spec,
				Status:     int(cs.status),
				Worker:     cs.worker,
				Retries:    cs.retries,
				Checkpoint: cs.checkpoint,
				Streamed:   cs.streamed,
			})
		}
		p.mu.Unlock()
		snap.Projects = append(snap.Projects, sp)
	}
	return snap, nil
}
