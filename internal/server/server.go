// Package server implements the Copernicus server: the symmetric overlay
// participant of §2 that holds projects, queues commands, matches workloads
// to announcing workers, relays requests for workers it cannot serve
// locally, monitors heartbeats, and drives controller plugins as commands
// complete.
//
// Every server runs identical code; whether it acts as a project server or
// as a relay on a cluster head node is determined purely by which projects
// it holds and how it is connected — the paper's "fully symmetric"
// architecture.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/overlay"
	"copernicus/internal/queue"
	"copernicus/internal/retry"
	"copernicus/internal/store"
	"copernicus/internal/wire"
)

// Config tunes a server. Zero values select the defaults noted per field.
type Config struct {
	// HeartbeatInterval is what workers are told to use; a worker is
	// declared dead after missing two intervals (§2.3). Default 120 s.
	HeartbeatInterval time.Duration
	// RelayTimeout bounds the anycast search for work on behalf of a
	// locally-announced worker. Default 2 s.
	RelayTimeout time.Duration
	// RelayCooldown is how long the server skips further relay searches
	// after one came back empty. Without it an idle fleet death-spirals:
	// every announce against an empty overlay blocks its worker link for
	// the full RelayTimeout, which can exceed the worker's own per-attempt
	// deadline so no announce ever succeeds. Default RelayTimeout.
	RelayCooldown time.Duration
	// MaxRetries is how many times a command is requeued after worker
	// failures before the controller sees a terminal failure. Default 2.
	MaxRetries int
	// Retry is the backoff policy for overlay requests the server makes on
	// its own behalf (announce relays, upstream worker-failure reports).
	// Zero fields take the retry package defaults; PerAttempt defaults to
	// RelayTimeout.
	Retry retry.Policy
	// FSToken identifies the server's filesystem for the shared-FS
	// optimisation; empty disables it.
	FSToken string
	// MaxQueuedTotal bounds the command queue across all tenants; submits
	// beyond it are shed with wire.ErrAdmissionShed. 0 = unlimited.
	MaxQueuedTotal int
	// StarvationAge is how long a queued command may wait before it jumps
	// fair-share order (0 = the queue's 30 s default; negative disables).
	StarvationAge time.Duration
	// PreemptAge is how long a tenant may starve (queued work, nothing
	// running) before the server preempts a checkpointed command of the
	// dominant tenant at its last checkpoint boundary. 0 disables
	// preemption.
	PreemptAge time.Duration
	// WALSlowAppend is the store append-latency EWMA at which WAL
	// backpressure saturates: pressure = AppendLatency/WALSlowAppend,
	// clamped to [0,1] by the queue. Matching sheds entirely once pressure
	// reaches the queue's shed threshold. Only meaningful with Store set.
	// Default 100 ms.
	WALSlowAppend time.Duration
	// Store, when set, makes project state durable: every lifecycle
	// transition is journaled to its write-ahead log before being
	// acknowledged, and New replays whatever the store recovered (snapshot +
	// WAL tail) before serving traffic, so projects resume across restarts.
	// The server does not own the store; the caller closes it after Close.
	Store *store.Store
	// Obs receives metrics, command-lifecycle spans and structured logs;
	// nil selects a silent obs.New(). Share one bundle across components
	// (as Fabric does) to see full lifecycles in one trace.
	Obs *obs.Obs
}

func (c *Config) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 120 * time.Second
	}
	if c.RelayTimeout <= 0 {
		c.RelayTimeout = 2 * time.Second
	}
	if c.RelayCooldown <= 0 {
		c.RelayCooldown = c.RelayTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.WALSlowAppend <= 0 {
		c.WALSlowAppend = 100 * time.Millisecond
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	if c.Retry.PerAttempt <= 0 {
		c.Retry.PerAttempt = c.RelayTimeout
	}
	c.Retry.Obs = c.Obs
}

// cmdStatus tracks a command through its lifecycle.
type cmdStatus int

const (
	cmdQueued cmdStatus = iota
	cmdRunning
	cmdDone
	cmdFailed
	cmdTerminated
)

// cmdState is the project server's record of one command.
type cmdState struct {
	spec         wire.CommandSpec
	status       cmdStatus
	worker       string
	retries      int
	preempts     int    // fair-share preemptions; tracked apart from retries
	checkpoint   []byte // latest partial checkpoint for failover
	streamed     int    // frames already ingested via streamed chunks
	submittedAt  time.Time
	dispatchedAt time.Time
}

// project is one controller-driven job.
type project struct {
	mu         sync.Mutex
	name       string
	ctrl       controller.Controller
	tenant     string // fair-share account its commands bill to
	priority   int    // base priority commands inherit when they set none
	state      string // "running", "finished", "failed"
	generation int
	note       string
	result     []byte
	failErr    string
	commands   map[string]*cmdState
	finished   int
	failed     int
	done       chan struct{}
	seed       uint64
}

// workerState is the home server's liveness record for a worker.
type workerState struct {
	info     wire.WorkerInfo
	lastSeen time.Time
	// commands the worker is running, mapped to the Origin server each
	// belongs to, learned from relayed workloads.
	commands map[string]string
}

// Server is a Copernicus server node.
type Server struct {
	node *overlay.Node
	reg  *controller.Registry
	cfg  Config
	q    *queue.Queue
	rpol retry.Policy
	log  *obs.Logger
	met  serverMetrics

	mu              sync.Mutex
	projects        map[string]*project
	workers         map[string]*workerState
	relayEmptyUntil time.Time
	// preempted holds command IDs evicted by fair-share preemption whose
	// old worker has not yet been told to abort (via heartbeat ack).
	preempted map[string]struct{}

	// closeMu/closing gate goAsync against Close: handlers can still fire
	// while Close drains, and a WaitGroup must never be Add-ed
	// concurrently with Wait.
	closeMu sync.Mutex
	closing bool

	// replaying is true while New replays recovered state: journaling,
	// queue pushes and lifecycle metrics are suppressed so a replayed event
	// is applied exactly once and never re-journaled.
	replaying atomic.Bool
	// snapshotting serialises background snapshot captures.
	snapshotting atomic.Bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// serverMetrics are the control-plane series the server maintains.
type serverMetrics struct {
	submitted       *obs.Counter
	finished        *obs.Counter
	failed          *obs.Counter
	requeued        *obs.Counter
	duplicates      *obs.Counter
	orphaned        *obs.Counter
	heartbeats      *obs.Counter
	heartbeatMisses *obs.Counter
	preempted       *obs.Counter
	admissionReject *obs.Counter
	dispatchLatency *obs.Histogram
	controllerTime  *obs.Histogram
	resultBytes     *obs.Histogram
	streamChunks    *obs.Counter
	streamFrames    *obs.Counter
	streamDupes     *obs.Counter
}

// dispatchBuckets cover queue waits from sub-millisecond (in-process
// fabrics) to minutes (batch deployments).
var dispatchBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120, 300}

// newServerMetrics registers the server's series, labelled by node ID so
// several servers can share one registry (as Fabric deployments do)
// without their series colliding.
func newServerMetrics(o *obs.Obs, nodeID string) serverMetrics {
	m := o.Metrics
	node := obs.L("node", nodeID)
	return serverMetrics{
		submitted: m.Counter("copernicus_commands_submitted_total",
			"Commands submitted by controllers.", node),
		finished: m.Counter("copernicus_commands_finished_total",
			"Commands completed successfully.", node),
		failed: m.Counter("copernicus_commands_failed_total",
			"Commands that failed terminally after exhausting retries.", node),
		requeued: m.Counter("copernicus_commands_requeued_total",
			"Commands requeued after a worker loss (checkpoint hand-off).", node),
		duplicates: m.Counter("copernicus_results_duplicate_total",
			"Redelivered results ignored because the command was already settled.", node),
		orphaned: m.Counter("copernicus_commands_orphaned_total",
			"Assigned commands recovered because their workload reply never reached the worker.", node),
		heartbeats: m.Counter("copernicus_heartbeats_total",
			"Worker heartbeats received.", node),
		heartbeatMisses: m.Counter("copernicus_heartbeat_misses_total",
			"Workers declared dead after missing two heartbeat intervals.", node),
		preempted: m.Counter("copernicus_preemptions_total",
			"Running commands preempted at a checkpoint boundary for a starved tenant.", node),
		admissionReject: m.Counter("copernicus_submit_rejects_total",
			"Project submissions refused by admission control (quota, shed, deadline).", node),
		dispatchLatency: m.Histogram("copernicus_dispatch_latency_seconds",
			"Queue wait between command submission and worker assignment.",
			dispatchBuckets, node),
		controllerTime: m.Histogram("copernicus_controller_reaction_seconds",
			"Time controllers spend reacting to a finished command.", nil, node),
		resultBytes: m.Histogram("copernicus_result_bytes",
			"Uploaded result payload sizes.", obs.SizeBuckets(), node),
		streamChunks: m.Counter("copernicus_stream_chunks_total",
			"Streamed frame chunks accepted and journaled.", node),
		streamFrames: m.Counter("copernicus_stream_frames_total",
			"New frames ingested from streamed chunks (after watermark dedupe).", node),
		streamDupes: m.Counter("copernicus_stream_duplicate_chunks_total",
			"Streamed chunks ignored because every frame was below the watermark.", node),
	}
}

// New wires a server onto an overlay node. The node should already be
// listening; New registers the protocol handlers and starts the heartbeat
// monitor.
func New(node *overlay.Node, reg *controller.Registry, cfg Config) *Server {
	cfg.fill()
	qcfg := queue.Config{
		StarvationAge:  cfg.StarvationAge,
		MaxQueuedTotal: cfg.MaxQueuedTotal,
	}
	if cfg.Store != nil {
		// WAL-aware backpressure: the store's append-latency EWMA, normalised
		// by the slow-append threshold, throttles matching and admission.
		st, slow := cfg.Store, cfg.WALSlowAppend.Seconds()
		qcfg.Pressure = func() float64 { return st.AppendLatency() / slow }
	}
	s := &Server{
		node:      node,
		reg:       reg,
		cfg:       cfg,
		q:         queue.NewWithConfig(qcfg),
		log:       cfg.Obs.Log.Named("server").With("node", node.ID()),
		met:       newServerMetrics(cfg.Obs, node.ID()),
		projects:  make(map[string]*project),
		workers:   make(map[string]*workerState),
		preempted: make(map[string]struct{}),
		stop:      make(chan struct{}),
	}
	s.rpol = cfg.Retry
	s.rpol.Scope = node.ID()
	nodeLabel := obs.L("node", node.ID())
	s.q.SetObs(cfg.Obs, nodeLabel)
	cfg.Obs.Metrics.GaugeFunc("copernicus_workers",
		"Workers currently tracked by the heartbeat monitor.", nodeLabel,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.workers))
		})
	cfg.Obs.Metrics.GaugeFunc("copernicus_projects",
		"Projects held by this server.", nodeLabel,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.projects))
		})
	// Replay recovered durable state before any handler can observe or
	// mutate it: projects resume, the queue is re-seeded, and commands that
	// were assigned but never resolved are requeued as orphans.
	if cfg.Store != nil {
		s.recoverFromStore()
	}
	node.Handle(wire.MsgSubmit, s.handleSubmit)
	node.Handle(wire.MsgAnnounce, s.handleAnnounce)
	node.Handle(wire.MsgResult, s.handleResult)
	node.Handle(wire.MsgFrameChunk, s.handleFrameChunk)
	node.Handle(wire.MsgHeartbeat, s.handleHeartbeat)
	node.Handle(wire.MsgStatus, s.handleStatus)
	node.Handle(wire.MsgWorkerFailed, s.handleWorkerFailed)
	node.Handle(wire.MsgTenantList, s.handleTenantList)
	node.Handle(wire.MsgTenantQuotaGet, s.handleTenantQuotaGet)
	node.Handle(wire.MsgTenantQuotaSet, s.handleTenantQuotaSet)
	node.Handle(wire.MsgPing, func(_ string, p []byte) ([]byte, error) { return p, nil })
	s.wg.Add(1)
	go s.monitorHeartbeats()
	return s
}

// Node returns the underlying overlay node.
func (s *Server) Node() *overlay.Node { return s.node }

// QueueLen reports the number of commands waiting for workers.
func (s *Server) QueueLen() int { return s.q.Len() }

// Close stops the heartbeat monitor and waits for background work
// (snapshot captures, failure reports). The overlay node is left to its
// owner.
func (s *Server) Close() {
	s.closeMu.Lock()
	s.closing = true
	s.closeMu.Unlock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// goAsync runs f on a tracked goroutine, or reports false when the server
// is closing (handlers can observe a closing server; their background
// work is simply dropped).
func (s *Server) goAsync(f func()) bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closing {
		return false
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		f()
	}()
	return true
}

// --- project lifecycle ---

// handleSubmit admits a project through the tenant's quotas and the WAL
// backpressure shed, creates it, and runs its controller's Start handler.
// Rejections carry typed retry classes: wire.ErrAdmissionShed (retryable —
// back off and resubmit) or wire.ErrQuotaExceeded (terminal until the
// tenant's quota or usage changes).
func (s *Server) handleSubmit(from string, payload []byte) ([]byte, error) {
	var sub wire.ProjectSubmit
	if err := wire.Unmarshal(payload, &sub); err != nil {
		return nil, err
	}
	if sub.Name == "" {
		return nil, fmt.Errorf("server: project needs a name")
	}
	now := time.Now()
	if sub.DeadlineUnixNano != 0 && now.UnixNano() > sub.DeadlineUnixNano {
		// The client has already given up on this attempt; refuse instead of
		// starting work nobody is waiting for. Retryable: a fresh attempt
		// carries a fresh deadline.
		s.met.admissionReject.Inc()
		return nil, fmt.Errorf("server: project %q arrived %.1fs after its submit deadline: %w",
			sub.Name, time.Duration(now.UnixNano()-sub.DeadlineUnixNano).Seconds(), wire.ErrAdmissionShed)
	}
	if err := s.q.CheckStorage(sub.Tenant, int64(len(sub.Params))); err != nil {
		s.met.admissionReject.Inc()
		return nil, fmt.Errorf("server: admitting project %q: %w", sub.Name, err)
	}
	ctrl, err := s.reg.New(sub.Controller)
	if err != nil {
		return nil, err
	}
	p := &project{
		name:     sub.Name,
		ctrl:     ctrl,
		tenant:   sub.Tenant,
		priority: sub.Priority,
		state:    "running",
		commands: make(map[string]*cmdState),
		done:     make(chan struct{}),
		seed:     seedFromName(sub.Name),
	}
	// Publish the project under its own (already held) lock, then journal
	// OUTSIDE s.mu: the journal append blocks for a group-commit fsync,
	// which must not stall every announce/result/status lookup on the
	// global lock. Holding p.mu instead keeps the snapshot protocol safe:
	// a capture that sees the project blocks on p.mu until the record is
	// durable, and a capture that scanned before the publish also rotated
	// before it, so the record's sequence is above the snapshot's
	// rotate-time LastSeq and is replayed.
	p.mu.Lock()
	defer p.mu.Unlock()
	s.mu.Lock()
	if _, dup := s.projects[sub.Name]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: project %q already exists", sub.Name)
	}
	s.projects[sub.Name] = p
	s.mu.Unlock()

	// Start before journaling the submission: if the controller's first
	// submits are bounced by admission control, the project is withdrawn
	// entirely — nothing durable, the name reusable by the client's retry.
	// Records the controller journals during Start (command queued,
	// generation) land before RecProjectSubmitted in the WAL; replay drops
	// them (no project yet) and re-derives them by re-running the
	// deterministic Start.
	if err := ctrl.Start(s.contextFor(p), sub.Params); err != nil {
		if errors.Is(err, wire.ErrQuotaExceeded) || errors.Is(err, wire.ErrAdmissionShed) {
			for id := range p.commands {
				if !s.q.Remove(id) {
					// A concurrent announce already dispatched it; settle the
					// in-flight charge — the result will find no project.
					s.q.Release(id, 0)
				}
			}
			s.mu.Lock()
			delete(s.projects, sub.Name)
			s.mu.Unlock()
			s.met.admissionReject.Inc()
			return nil, fmt.Errorf("server: admitting project %q: %w", sub.Name, err)
		}
		s.journal(store.Record{Type: store.RecProjectSubmitted, Project: sub.Name,
			Tenant: sub.Tenant, Count: sub.Priority, Note: sub.Controller, Data: sub.Params})
		p.state = "failed"
		p.failErr = err.Error()
		close(p.done)
		return nil, fmt.Errorf("server: starting project %q: %w", sub.Name, err)
	}
	s.journal(store.Record{Type: store.RecProjectSubmitted, Project: sub.Name,
		Tenant: sub.Tenant, Count: sub.Priority, Note: sub.Controller, Data: sub.Params})
	s.log.Info("project started", "project", sub.Name,
		"controller", sub.Controller, "tenant", sub.Tenant)
	return wire.Marshal(&wire.SubmitReceipt{
		Project:          sub.Name,
		Tenant:           sub.Tenant,
		Server:           s.node.ID(),
		AcceptedUnixNano: now.UnixNano(),
	})
}

// seedFromName derives a stable project seed.
func seedFromName(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Project returns a snapshot of a project's status.
func (s *Server) Project(name string) (wire.ProjectStatus, bool) {
	s.mu.Lock()
	p := s.projects[name]
	s.mu.Unlock()
	if p == nil {
		return wire.ProjectStatus{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return s.statusLocked(p), true
}

// ProjectNames returns the names of every project this server holds. A
// promoted standby announces these on the overlay so workers and clients
// redirect to the new owner.
func (s *Server) ProjectNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.projects))
	for name := range s.projects {
		out = append(out, name)
	}
	return out
}

// WaitProject blocks until the named project finishes or fails, or ctx is
// done. Bound the wait with context.WithTimeout (or use the fabric/client
// helpers, which do).
func (s *Server) WaitProject(ctx context.Context, name string) (wire.ProjectStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	p := s.projects[name]
	s.mu.Unlock()
	if p == nil {
		return wire.ProjectStatus{}, fmt.Errorf("server: unknown project %q", name)
	}
	select {
	case <-p.done:
	case <-ctx.Done():
		return wire.ProjectStatus{}, fmt.Errorf("server: project %q still running: %w", name, ctx.Err())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return s.statusLocked(p), nil
}

func (s *Server) statusLocked(p *project) wire.ProjectStatus {
	st := wire.ProjectStatus{
		Name:       p.name,
		Controller: p.ctrl.Name(),
		Tenant:     p.tenant,
		State:      p.state,
		Generation: p.generation,
		Note:       p.note,
		Finished:   p.finished,
		Failed:     p.failed,
		Result:     p.result,
	}
	if p.failErr != "" {
		st.Note = p.failErr
	}
	for _, c := range p.commands {
		switch c.status {
		case cmdQueued:
			st.Queued++
		case cmdRunning:
			st.Running++
		}
	}
	// Plugin-specific live status (e.g. repex exchange acceptance rates).
	// p.mu is held, which is the same exclusion the event handlers run under.
	if insp, ok := p.ctrl.(controller.Inspectable); ok {
		if blob, err := insp.Inspect(); err == nil {
			st.Detail = blob
		}
	}
	return st
}

// handleStatus serves monitoring queries.
func (s *Server) handleStatus(from string, payload []byte) ([]byte, error) {
	var req wire.ProjectStatusRequest
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	st, ok := s.Project(req.Name)
	if !ok {
		// Another server may hold it; let the overlay keep looking.
		return nil, overlay.ErrNotHandled
	}
	return wire.Marshal(&st)
}

// --- controller context ---

type ctxImpl struct {
	s *Server
	p *project
}

func (s *Server) contextFor(p *project) controller.Context { return &ctxImpl{s: s, p: p} }

func (c *ctxImpl) ProjectName() string { return c.p.name }
func (c *ctxImpl) Seed() uint64        { return c.p.seed }
func (c *ctxImpl) Obs() *obs.Obs       { return c.s.cfg.Obs }
func (c *ctxImpl) Logf(format string, args ...any) {
	c.s.log.Info(fmt.Sprintf(format, args...), "project", c.p.name)
}

func (c *ctxImpl) Submit(cmd wire.CommandSpec) error {
	cmd.Project = c.p.name
	cmd.Origin = c.s.node.ID()
	cmd.Tenant = c.p.tenant
	if cmd.Priority == 0 {
		cmd.Priority = c.p.priority
	}
	if err := cmd.Validate(); err != nil {
		return err
	}
	if _, dup := c.p.commands[cmd.ID]; dup {
		return fmt.Errorf("server: duplicate command %q in project %q", cmd.ID, c.p.name)
	}
	if c.s.replaying.Load() {
		// Replayed handlers re-create command state, but the queue is
		// re-seeded (and orphans requeued) once at the end of recovery.
		c.p.commands[cmd.ID] = &cmdState{spec: cmd, status: cmdQueued, submittedAt: time.Now()}
		return nil
	}
	if err := c.s.q.CheckStorage(cmd.Tenant, int64(len(cmd.Payload))); err != nil {
		return fmt.Errorf("server: submitting command %q: %w", cmd.ID, err)
	}
	if data, err := wire.Marshal(&cmd); err == nil {
		c.s.journal(store.Record{Type: store.RecCommandQueued,
			Project: c.p.name, Command: cmd.ID, Tenant: cmd.Tenant, Data: data})
	}
	if err := c.s.q.Push(cmd); err != nil {
		return err
	}
	now := time.Now()
	c.p.commands[cmd.ID] = &cmdState{spec: cmd, status: cmdQueued, submittedAt: now}
	c.s.met.submitted.Inc()
	c.s.cfg.Obs.Trace.Record(obs.Span{
		Stage:   obs.StageSubmit,
		Command: cmd.ID,
		Project: c.p.name,
		Start:   now,
	})
	return nil
}

func (c *ctxImpl) Terminate(id string) bool {
	cs, ok := c.p.commands[id]
	if !ok {
		return false
	}
	switch cs.status {
	case cmdQueued:
		c.s.q.Remove(id)
	case cmdRunning:
		// Settle the fair-share in-flight charge now; the worker is told to
		// abort at its next heartbeat and sends no result.
		c.s.q.Release(id, 0)
	}
	cs.status = cmdTerminated
	c.s.maybeDemoteGangLocked(c.p, cs.spec.GangID, cs.spec.GangSize)
	return true
}

func (c *ctxImpl) SetStatus(generation int, note string) {
	c.p.generation = generation
	c.p.note = note
	c.s.journal(store.Record{Type: store.RecGeneration,
		Project: c.p.name, Generation: generation, Note: note})
}

func (c *ctxImpl) Finish(result []byte) {
	if c.p.state != "running" {
		return
	}
	c.s.journal(store.Record{Type: store.RecProjectFinished,
		Project: c.p.name, Data: result})
	c.p.state = "finished"
	c.p.result = result
	close(c.p.done)
}

func (c *ctxImpl) Fail(err error) {
	if c.p.state != "running" {
		return
	}
	c.s.journal(store.Record{Type: store.RecProjectFailed,
		Project: c.p.name, Note: err.Error()})
	c.p.state = "failed"
	c.p.failErr = err.Error()
	close(c.p.done)
}

// --- worker traffic ---

// handleAnnounce matches a worker to queued commands; when the local queue
// has nothing suitable it relays the announcement into the overlay (for a
// direct announcement) or declines it (for an already-relayed one), so the
// request reaches "the first server with available commands".
func (s *Server) handleAnnounce(from string, payload []byte) ([]byte, error) {
	var req wire.AnnounceRequest
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	wl := s.q.Match(req.Info)
	if len(wl.Commands) > 0 {
		wl.HeartbeatSeconds = s.cfg.HeartbeatInterval.Seconds()
		wl.SharedFS = s.cfg.FSToken != "" && s.cfg.FSToken == req.Info.FSToken
		s.markAssigned(req.Info, wl, from, !req.Relayed)
		return wire.Marshal(&wl)
	}
	if req.Relayed {
		return nil, overlay.ErrNotHandled
	}
	// Direct announcement from one of our workers: search the overlay on
	// its behalf — unless a recent search already found the overlay empty,
	// in which case answer immediately and let the worker poll again.
	s.recoverOrphans(req.Info.ID, s.touchWorker(req.Info))
	s.mu.Lock()
	skipRelay := time.Now().Before(s.relayEmptyUntil)
	s.mu.Unlock()
	if !skipRelay {
		relay := req
		relay.Relayed = true
		rp, err := wire.Marshal(&relay)
		if err != nil {
			return nil, err
		}
		reply, err := s.relayRequest("announce_relay", "", wire.MsgAnnounce, rp)
		if err == nil {
			var remote wire.Workload
			if derr := wire.Unmarshal(reply, &remote); derr == nil && len(remote.Commands) > 0 {
				s.recordRelayedWorkload(req.Info.ID, &remote)
				return reply, nil
			}
		}
		s.mu.Lock()
		s.relayEmptyUntil = time.Now().Add(s.cfg.RelayCooldown)
		s.mu.Unlock()
	}
	// Nothing anywhere: empty workload, worker will poll again.
	empty := wire.Workload{HeartbeatSeconds: s.cfg.HeartbeatInterval.Seconds()}
	return wire.Marshal(&empty)
}

// relayRequest runs one overlay request on the server's own behalf under
// the retry policy. Only transport failures (dropped links, truncated
// frames) are retried: an anycast deadline means "no server has work", a
// missing route means the same, and a remote handler error will not change
// on retry — all three stop immediately.
func (s *Server) relayRequest(op, to string, t wire.MsgType, payload []byte) ([]byte, error) {
	var reply []byte
	err := s.rpol.Do(context.Background(), op, func(ctx context.Context) error {
		r, err := s.node.Request(ctx, to, t, payload)
		if err != nil {
			var remote *overlay.RemoteError
			if errors.As(err, &remote) ||
				errors.Is(err, context.DeadlineExceeded) ||
				errors.Is(err, overlay.ErrNoRoute) {
				return retry.Permanent(err)
			}
			return err
		}
		reply = r
		return nil
	})
	return reply, err
}

// markAssigned updates project command states for a local match and, when
// the worker announced directly to us, records it for heartbeat tracking.
func (s *Server) markAssigned(info wire.WorkerInfo, wl wire.Workload, from string, direct bool) {
	now := time.Now()
	for _, cmd := range wl.Commands {
		s.withProjectCommand(cmd.Project, cmd.ID, func(p *project, cs *cmdState) {
			// Journal before the workload reply is sent: recovery must know
			// the command may be running somewhere so it can requeue it as
			// an orphan if the result never arrives. This holds only this
			// project's lock across the group-commit wait — a deliberate
			// tradeoff: the assignment must be durable before the reply
			// releases the worker, and the global lock stays free.
			s.journal(store.Record{Type: store.RecCommandAssigned,
				Project: cmd.Project, Command: cmd.ID, Worker: info.ID})
			cs.status = cmdRunning
			cs.worker = info.ID
			cs.dispatchedAt = now
			if !cs.submittedAt.IsZero() {
				wait := now.Sub(cs.submittedAt)
				s.met.dispatchLatency.Observe(wait.Seconds())
				s.cfg.Obs.Trace.Record(obs.Span{
					Stage:    obs.StageQueueWait,
					Command:  cmd.ID,
					Project:  cmd.Project,
					Start:    cs.submittedAt,
					Duration: wait,
				})
			}
			s.cfg.Obs.Trace.Record(obs.Span{
				Stage:   obs.StageDispatch,
				Command: cmd.ID,
				Project: cmd.Project,
				Worker:  info.ID,
				Start:   now,
				Attrs:   map[string]string{"cores": strconv.Itoa(wl.Cores[cmd.ID])},
			})
		})
	}
	if direct {
		orphans := s.touchWorker(info)
		s.mu.Lock()
		if ws := s.workers[info.ID]; ws != nil {
			for _, cmd := range wl.Commands {
				ws.commands[cmd.ID] = cmd.Origin
			}
		}
		s.mu.Unlock()
		s.recoverOrphans(info.ID, orphans)
		return
	}
	// Relayed match. When the worker is one of our own (it has announced
	// directly before, so a liveness record exists), record the assignment
	// NOW rather than waiting for the relay reply to make it home: the
	// reply can still be lost — most plainly when the anycast raced its
	// deadline and the caller discards the late answer — and these
	// commands would otherwise be tracked by nobody. The worker's next
	// idle announce then recovers them through the normal orphan path.
	// For another server's worker the record does not exist here and the
	// origin server notes the assignment on the reply instead.
	s.mu.Lock()
	if ws := s.workers[info.ID]; ws != nil {
		for _, cmd := range wl.Commands {
			ws.commands[cmd.ID] = cmd.Origin
		}
	}
	s.mu.Unlock()
}

// recordRelayedWorkload notes which origin server each relayed command
// belongs to, so heartbeat failures can be reported upstream.
func (s *Server) recordRelayedWorkload(workerID string, wl *wire.Workload) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.workers[workerID]
	if ws == nil {
		return
	}
	for _, cmd := range wl.Commands {
		ws.commands[cmd.ID] = cmd.Origin
	}
}

// touchWorker refreshes (or creates) the liveness record of a directly
// announcing worker. A worker only announces once its previous workload has
// fully completed, so the command record is reset here rather than tracked
// per result. Commands still on record at that point are orphans — the
// workload reply that assigned them was lost on a severed link and the
// worker never knew about them — and are returned for recovery; nobody
// will ever run or heartbeat them otherwise, and the worker's own
// announces keep its liveness fresh so the reaper never would.
func (s *Server) touchWorker(info wire.WorkerInfo) map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.workers[info.ID]
	if ws == nil {
		ws = &workerState{}
		s.workers[info.ID] = ws
	}
	orphans := ws.commands
	ws.commands = make(map[string]string)
	ws.info = info
	ws.lastSeen = time.Now()
	return orphans
}

// recoverOrphans requeues commands stranded by a lost workload reply. It
// reports asynchronously so the announce reply is not delayed by upstream
// retry budgets.
func (s *Server) recoverOrphans(workerID string, commands map[string]string) {
	if len(commands) == 0 {
		return
	}
	s.met.orphaned.Inc()
	s.log.Warn("recovering commands orphaned by idle re-announce",
		"worker", workerID, "commands", len(commands))
	s.goAsync(func() { s.reportFailed(workerID, commands) })
}

// withProjectCommand runs f under the project lock if both exist.
func (s *Server) withProjectCommand(projectName, cmdID string, f func(*project, *cmdState)) {
	s.mu.Lock()
	p := s.projects[projectName]
	s.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cs := p.commands[cmdID]; cs != nil {
		f(p, cs)
	}
}

// handleResult ingests finished or partial command results at the project
// server.
func (s *Server) handleResult(from string, payload []byte) ([]byte, error) {
	var res wire.CommandResult
	if err := wire.Unmarshal(payload, &res); err != nil {
		return nil, err
	}
	s.mu.Lock()
	p := s.projects[res.Project]
	s.mu.Unlock()
	if p == nil {
		return nil, overlay.ErrNotHandled // maybe another server's project
	}

	// Shared-filesystem path: load the output by reference.
	if res.OutputPath != "" && len(res.Output) == 0 {
		data, err := os.ReadFile(res.OutputPath)
		if err != nil {
			return nil, fmt.Errorf("server: reading shared-FS output %s: %w", res.OutputPath, err)
		}
		res.Output = data
	}

	reply, settledWorker, err := s.ingestResult(p, &res)
	s.maybeSnapshot()
	if settledWorker != "" {
		// The command is settled: drop it from the worker's assignment record
		// so its next idle announce is not mistaken for an orphaned workload,
		// and from the preemption abort set (a preempted command whose old
		// worker finished before the abort reached it lands here).
		// Done outside the project lock (reapDeadWorkers and recoverCommands
		// nest p.mu inside s.mu, so the reverse order here would deadlock).
		s.mu.Lock()
		if ws := s.workers[settledWorker]; ws != nil {
			delete(ws.commands, res.CommandID)
		}
		delete(s.preempted, res.CommandID)
		s.mu.Unlock()
	}
	return reply, err
}

// ingestResult applies one result under the project lock and returns the ID
// of the worker whose assignment it settled ("" if none).
func (s *Server) ingestResult(p *project, res *wire.CommandResult) (reply []byte, settledWorker string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.commands[res.CommandID]
	if cs == nil {
		return []byte("ignored"), "", nil
	}
	if res.Partial {
		// Intermediate checkpoint for failover; §2.3's transparent hand-off.
		s.journal(store.Record{Type: store.RecCheckpoint,
			Project: res.Project, Command: res.CommandID, Data: res.Checkpoint})
		cs.checkpoint = res.Checkpoint
		return []byte("checkpointed"), "", nil
	}
	if cs.status == cmdTerminated || cs.status == cmdDone {
		// Idempotent redelivery: a retried or spool-redelivered upload of a
		// result we already counted. Acknowledge success so the sender stops.
		if !s.replaying.Load() {
			s.met.duplicates.Inc()
		}
		return []byte("ignored"), cs.worker, nil
	}
	if !res.OK {
		return nil, cs.worker, fmt.Errorf("server: worker-reported failure for %s: %s", res.CommandID, res.Error)
	}
	if cs.status == cmdQueued {
		// A "dead" worker's result arrived after its command was requeued
		// from checkpoint: accept the work and pull the duplicate dispatch
		// before another worker wastes cycles on it.
		s.q.Remove(res.CommandID)
	}
	// Journal the full result (output included, so replay is independent of
	// shared-FS spool files) before the controller reacts or the worker is
	// acked.
	if data, err := wire.Marshal(res); err == nil {
		s.journal(store.Record{Type: store.RecResult,
			Project: res.Project, Command: res.CommandID, Worker: res.WorkerID, Data: data})
	}
	cs.status = cmdDone
	p.finished++
	// Settle the fair-share charge with the measured wall time and bill the
	// retained output against the tenant's storage account. Both are no-ops
	// during replay's queued-state reconstruction (nothing is in flight) —
	// except ChargeStorage, which deliberately runs so tail results
	// re-accrue usage on top of the snapshot's tenant image.
	s.q.Release(res.CommandID, res.WallSeconds)
	if len(res.Output) > 0 {
		s.q.ChargeStorage(cs.spec.Tenant, int64(len(res.Output)))
	}
	// A finished member never rejoins its gang; free any queued stragglers.
	s.maybeDemoteGangLocked(p, cs.spec.GangID, cs.spec.GangSize)
	if !s.replaying.Load() {
		s.met.finished.Inc()
		s.met.resultBytes.Observe(float64(len(res.Output)))
		s.cfg.Obs.Metrics.Counter("copernicus_worker_commands_total",
			"Commands finished, by reporting worker.", obs.L("worker", res.WorkerID)).Inc()
		s.cfg.Obs.Trace.Record(obs.Span{
			Stage:   obs.StageResult,
			Command: res.CommandID,
			Project: res.Project,
			Worker:  res.WorkerID,
			Attrs: map[string]string{
				"bytes":        strconv.Itoa(len(res.Output)),
				"wall_seconds": strconv.FormatFloat(res.WallSeconds, 'g', 4, 64),
			},
		})
	}
	if p.state != "running" {
		return []byte("ok"), cs.worker, nil
	}
	reactStart := time.Now()
	rerr := p.ctrl.CommandFinished(s.contextFor(p), res)
	reaction := time.Since(reactStart)
	if !s.replaying.Load() {
		s.met.controllerTime.Observe(reaction.Seconds())
	}
	span := obs.Span{
		Stage:    obs.StageController,
		Command:  res.CommandID,
		Project:  res.Project,
		Start:    reactStart,
		Duration: reaction,
	}
	if rerr != nil {
		span.Err = rerr.Error()
		s.cfg.Obs.Trace.Record(span)
		p.state = "failed"
		p.failErr = rerr.Error()
		close(p.done)
		s.log.Error("controller reaction failed", "project", p.name, "cmd", res.CommandID, "err", rerr)
		return nil, cs.worker, rerr
	}
	s.cfg.Obs.Trace.Record(span)
	return []byte("ok"), cs.worker, nil
}

// handleFrameChunk ingests a streamed frame chunk at the project server.
// Chunks are an optimization overlay on the result path: anything
// surprising — unknown command, settled command, duplicate or gapped frame
// range — is acknowledged and dropped, because the command's final result
// blob carries every frame and heals whatever the stream missed.
func (s *Server) handleFrameChunk(from string, payload []byte) ([]byte, error) {
	var chunk wire.FrameChunk
	if err := wire.Unmarshal(payload, &chunk); err != nil {
		return nil, err
	}
	s.mu.Lock()
	p := s.projects[chunk.Project]
	s.mu.Unlock()
	if p == nil {
		return nil, overlay.ErrNotHandled // maybe another server's project
	}
	return s.ingestChunk(p, &chunk, payload)
}

// ingestChunk applies one streamed chunk under the project lock, advancing
// the command's frame watermark and feeding the controller's FrameSink.
// Called live from handleFrameChunk and during WAL replay.
func (s *Server) ingestChunk(p *project, chunk *wire.FrameChunk, payload []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.commands[chunk.CommandID]
	if cs == nil || cs.status == cmdDone || cs.status == cmdTerminated ||
		cs.status == cmdFailed || p.state != "running" {
		return []byte("ignored"), nil
	}
	// Frame 0 is the segment's start conformation, which the controller
	// already holds; the stream begins at frame 1.
	start := cs.streamed
	if start < 1 {
		start = 1
	}
	end := chunk.FirstFrame + len(chunk.Frames)
	if end <= start {
		// Re-delivery of frames already ingested (e.g. a checkpoint-resumed
		// run deterministically re-producing its prefix on a new worker).
		if !s.replaying.Load() {
			s.met.streamDupes.Inc()
		}
		return []byte("ignored"), nil
	}
	if chunk.FirstFrame > start {
		// A gap: an earlier chunk never arrived. Ingesting out-of-order
		// frames would corrupt transition counting, so drop the chunk and
		// let the final result blob deliver the range intact.
		if !s.replaying.Load() {
			s.met.streamDupes.Inc()
		}
		return []byte("gap"), nil
	}
	// Journal before the controller reacts so recovery and standby replay
	// reconstruct the exact same stream position.
	s.journal(store.Record{Type: store.RecFrameChunk,
		Project: chunk.Project, Command: chunk.CommandID, Worker: chunk.WorkerID,
		Data: payload})
	cs.streamed = end
	if !s.replaying.Load() {
		s.met.streamChunks.Inc()
		s.met.streamFrames.Add(uint64(end - start))
	}
	if sink, ok := p.ctrl.(controller.FrameSink); ok {
		if err := sink.FrameChunk(s.contextFor(p), chunk); err != nil {
			// Non-fatal by contract: the batch path still covers the command.
			s.log.Warn("frame sink rejected chunk",
				"project", p.name, "cmd", chunk.CommandID, "err", err)
		}
	}
	return []byte("ok"), nil
}

// --- heartbeats and failure recovery ---

// handleHeartbeat refreshes liveness and reports terminated commands the
// worker should abort.
func (s *Server) handleHeartbeat(from string, payload []byte) ([]byte, error) {
	var hb wire.Heartbeat
	if err := wire.Unmarshal(payload, &hb); err != nil {
		return nil, err
	}
	s.met.heartbeats.Inc()
	s.mu.Lock()
	ws := s.workers[hb.WorkerID]
	if ws != nil {
		ws.lastSeen = time.Now()
	}
	s.mu.Unlock()

	var ack wire.HeartbeatAck
	for _, id := range hb.CommandIDs {
		s.mu.Lock()
		if _, evicted := s.preempted[id]; evicted {
			// Preempted for a starved tenant: the command was requeued from
			// its checkpoint, so the old worker must stop burning cores on it.
			delete(s.preempted, id)
			if ws := s.workers[hb.WorkerID]; ws != nil {
				delete(ws.commands, id)
			}
			s.mu.Unlock()
			ack.AbortCommandIDs = append(ack.AbortCommandIDs, id)
			continue
		}
		var owner *project
		for _, p := range s.projects {
			p.mu.Lock()
			cs := p.commands[id]
			terminated := cs != nil && cs.status == cmdTerminated
			p.mu.Unlock()
			if terminated {
				owner = p
				break
			}
		}
		s.mu.Unlock()
		if owner != nil {
			ack.AbortCommandIDs = append(ack.AbortCommandIDs, id)
		}
	}
	return wire.Marshal(&ack)
}

// monitorHeartbeats declares workers dead after 2× the heartbeat interval
// and triggers command recovery.
func (s *Server) monitorHeartbeats() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.reapDeadWorkers()
			s.preemptForStarved()
		}
	}
}

func (s *Server) reapDeadWorkers() {
	cutoff := time.Now().Add(-2 * s.cfg.HeartbeatInterval)
	type victim struct {
		id       string
		commands map[string]string
	}
	var victims []victim
	s.mu.Lock()
	for id, ws := range s.workers {
		if !ws.lastSeen.Before(cutoff) {
			continue
		}
		delete(s.workers, id)
		// An idle worker (nothing assigned) going quiet needs no recovery:
		// it either left or will re-announce. Only report workers that held
		// commands.
		if len(ws.commands) > 0 {
			victims = append(victims, victim{id: id, commands: ws.commands})
		}
	}
	s.mu.Unlock()

	for _, v := range victims {
		s.met.heartbeatMisses.Inc()
		s.log.Warn("worker missed heartbeats, recovering commands",
			"worker", v.id, "commands", len(v.commands))
		s.reportFailed(v.id, v.commands)
	}
}

// preemptForStarved evicts one running command at its last checkpoint
// boundary when a tenant has starved past cfg.PreemptAge (queued work,
// nothing running) while another tenant dominates the fleet's cores. The
// victim is the dominant tenant's checkpointed command: it is requeued from
// its checkpoint (losing only the work since), its old worker is told to
// abort at the next heartbeat, and the freed cores let the starved tenant's
// fair-share turn come up. At most one command is preempted per monitor
// tick, so a single starved tenant cannot mass-evict the fleet.
func (s *Server) preemptForStarved() {
	if s.cfg.PreemptAge <= 0 {
		return
	}
	starved, ok := s.q.Starved(s.cfg.PreemptAge)
	if !ok {
		return
	}
	victim, cores, ok := s.q.DominantTenant(starved)
	if !ok {
		return
	}
	s.mu.Lock()
	candidates := make([]*project, 0, len(s.projects))
	for _, p := range s.projects {
		candidates = append(candidates, p)
	}
	s.mu.Unlock()
	for _, p := range candidates {
		p.mu.Lock()
		if p.tenant != victim || p.state != "running" {
			p.mu.Unlock()
			continue
		}
		for id, cs := range p.commands {
			// Only checkpointed commands are evictable: preempting without a
			// checkpoint would throw away the whole run, which is worse for
			// the fleet than letting the starved tenant wait one more tick.
			if cs.status != cmdRunning || len(cs.checkpoint) == 0 {
				continue
			}
			// Gang members are evicted together or not at all: leaving
			// siblings running while one member requeues would both strand a
			// half-running gang and free too few cores to matter. The whole
			// gang counts as this tick's single eviction.
			evict := []string{id}
			if gid := cs.spec.GangID; gid != "" {
				whole := true
				for sid, sc := range p.commands {
					if sid == id || sc.spec.GangID != gid || sc.status != cmdRunning {
						continue
					}
					if len(sc.checkpoint) == 0 {
						whole = false // a sibling would lose its whole run
						break
					}
					evict = append(evict, sid)
				}
				if !whole {
					continue
				}
				sort.Strings(evict)
			}
			for _, vid := range evict {
				vc := p.commands[vid]
				worker := vc.worker
				vc.preempts++
				// Release before Requeue, member by member: the queue's gang
				// bookkeeping reassembles the gang only while the remaining
				// members are still accounted as in flight.
				s.q.Release(vid, 0)
				spec := vc.spec
				spec.Checkpoint = vc.checkpoint
				vc.status = cmdQueued
				vc.worker = ""
				s.journal(store.Record{Type: store.RecCommandPreempted,
					Project: p.name, Command: vid, Worker: worker,
					Tenant: p.tenant, Count: vc.preempts})
				if err := s.q.Requeue(spec); err != nil {
					s.log.Error("requeueing preempted command failed", "cmd", vid, "err", err)
					p.mu.Unlock()
					return
				}
				vc.submittedAt = time.Now()
				vc.dispatchedAt = time.Time{}
				s.met.preempted.Inc()
				s.log.Info("preempted command at checkpoint boundary for starved tenant",
					"cmd", vid, "gang", vc.spec.GangID,
					"victim_tenant", victim, "victim_cores", cores,
					"starved_tenant", starved, "worker", worker,
					"checkpoint_bytes", len(vc.checkpoint))
			}
			// If some gang members had already finished, the requeued rest
			// can never refill the gang; let them re-run solo.
			s.maybeDemoteGangLocked(p, cs.spec.GangID, cs.spec.GangSize)
			p.mu.Unlock()
			s.mu.Lock()
			for _, vid := range evict {
				s.preempted[vid] = struct{}{}
			}
			s.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// maybeDemoteGangLocked releases a gang's queued members from the
// all-or-nothing dispatch barrier once the gang can no longer reassemble.
// A gang member that finished, failed terminally, or was terminated will
// never be requeued, so if no member is still running (a running member may
// yet checkpoint-requeue and complete the set) and fewer than GangSize
// members sit queued, the stragglers would wait forever behind an
// impossible barrier; they are demoted to solo commands instead and re-run
// individually. Called with p.mu held after any member leaves the
// running/queued cycle.
func (s *Server) maybeDemoteGangLocked(p *project, gangID string, size int) {
	if gangID == "" || size <= 0 {
		return
	}
	queued := 0
	for _, cs := range p.commands {
		if cs.spec.GangID != gangID {
			continue
		}
		switch cs.status {
		case cmdRunning:
			return
		case cmdQueued:
			queued++
		}
	}
	if queued == 0 || queued >= size {
		return
	}
	if n := s.q.DemoteGang(gangID); n > 0 {
		s.log.Info("demoted broken gang's queued members to solo",
			"gang", gangID, "demoted", n, "size", size)
	}
}

// reportFailed recovers the given worker's commands (cmdID → origin server):
// local origins are requeued directly, remote origins receive a retried
// WorkerFailed report.
func (s *Server) reportFailed(workerID string, commands map[string]string) {
	byOrigin := make(map[string][]string)
	for cmdID, origin := range commands {
		byOrigin[origin] = append(byOrigin[origin], cmdID)
	}
	for origin, ids := range byOrigin {
		wf := wire.WorkerFailed{WorkerID: workerID, CommandIDs: ids}
		if origin == s.node.ID() {
			s.recoverCommands(wf)
			continue
		}
		payload, err := wire.Marshal(&wf)
		if err != nil {
			continue
		}
		// Unlike announce relays, this report must land: losing it strands
		// the origin's commands until its own (much slower) recovery. Retry
		// every transport failure including timeouts and missing routes.
		err = s.rpol.Do(context.Background(), "worker_failed_report", func(ctx context.Context) error {
			_, rerr := s.node.Request(ctx, origin, wire.MsgWorkerFailed, payload)
			var remote *overlay.RemoteError
			if errors.As(rerr, &remote) {
				return retry.Permanent(rerr)
			}
			return rerr
		})
		if err != nil {
			s.log.Error("reporting worker failure upstream failed", "origin", origin, "err", err)
		}
	}
}

// --- tenant administration ---

// handleTenantList serves the tenant accounts the scheduler knows about.
func (s *Server) handleTenantList(from string, payload []byte) ([]byte, error) {
	var req wire.TenantListRequest
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	return wire.Marshal(&wire.TenantList{Tenants: s.q.Tenants()})
}

// handleTenantQuotaGet serves one tenant's weight, quotas and usage. A
// tenant the scheduler has never seen reports the defaults it would get.
func (s *Server) handleTenantQuotaGet(from string, payload []byte) ([]byte, error) {
	var req wire.TenantQuotaRequest
	if err := wire.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	st, ok := s.q.Tenant(req.Tenant)
	if !ok {
		st = wire.TenantStatus{ID: req.Tenant, Weight: 1}
	}
	return wire.Marshal(&st)
}

// handleTenantQuotaSet applies a weight/quota update, journals it so it
// survives restarts and ships to standbys, and returns the new status.
func (s *Server) handleTenantQuotaSet(from string, payload []byte) ([]byte, error) {
	var upd wire.TenantQuotaUpdate
	if err := wire.Unmarshal(payload, &upd); err != nil {
		return nil, err
	}
	if upd.Tenant == "" {
		return nil, fmt.Errorf("server: tenant quota update needs a tenant ID")
	}
	st := s.q.SetQuota(upd)
	if data, err := wire.Marshal(&upd); err == nil {
		s.journal(store.Record{Type: store.RecTenantQuota, Tenant: upd.Tenant, Data: data})
	}
	s.log.Info("tenant quota updated", "tenant", upd.Tenant, "weight", st.Weight,
		"max_queued", st.MaxQueued, "max_cores", st.MaxCores, "max_storage_bytes", st.MaxStorageBytes)
	return wire.Marshal(&st)
}

// handleWorkerFailed receives failure reports from relay servers.
func (s *Server) handleWorkerFailed(from string, payload []byte) ([]byte, error) {
	var wf wire.WorkerFailed
	if err := wire.Unmarshal(payload, &wf); err != nil {
		return nil, err
	}
	s.recoverCommands(wf)
	return []byte("ok"), nil
}

// recoverCommands requeues (from the last checkpoint) or terminally fails
// the commands a dead worker was running.
func (s *Server) recoverCommands(wf wire.WorkerFailed) {
	for _, cmdID := range wf.CommandIDs {
		s.mu.Lock()
		var owner *project
		for _, p := range s.projects {
			p.mu.Lock()
			cs, ok := p.commands[cmdID]
			p.mu.Unlock()
			if ok && cs != nil {
				owner = p
				break
			}
		}
		s.mu.Unlock()
		if owner == nil {
			continue
		}
		owner.mu.Lock()
		cs := owner.commands[cmdID]
		if cs == nil || cs.status != cmdRunning ||
			(wf.WorkerID != "" && cs.worker != "" && cs.worker != wf.WorkerID) {
			// Finished, terminated, or already reassigned elsewhere.
			owner.mu.Unlock()
			continue
		}
		// The dead worker's partial run still billed the tenant's fair share.
		s.q.Release(cmdID, 0)
		if cs.retries < s.cfg.MaxRetries {
			cs.retries++
			spec := cs.spec
			spec.Checkpoint = cs.checkpoint // resume where the dead worker left off
			cs.status = cmdQueued
			cs.worker = ""
			s.journal(store.Record{Type: store.RecCommandRequeued,
				Project: owner.name, Command: cmdID, Worker: wf.WorkerID, Count: cs.retries})
			if err := s.q.Requeue(spec); err != nil {
				s.log.Error("requeueing recovered command failed", "cmd", cmdID, "err", err)
			} else {
				cs.submittedAt = time.Now()
				cs.dispatchedAt = time.Time{}
				s.met.requeued.Inc()
				s.cfg.Obs.Trace.Record(obs.Span{
					Stage:   obs.StageSubmit,
					Command: cmdID,
					Project: owner.name,
					Attrs: map[string]string{
						"requeue":          strconv.Itoa(cs.retries),
						"checkpoint_bytes": strconv.Itoa(len(cs.checkpoint)),
					},
				})
				s.log.Info("requeued command from checkpoint",
					"cmd", cmdID, "retry", cs.retries, "checkpoint_bytes", len(cs.checkpoint))
				// If a gang sibling already failed terminally earlier in this
				// batch, the gang can never refill; check once the last
				// running member has left the running state.
				s.maybeDemoteGangLocked(owner, cs.spec.GangID, cs.spec.GangSize)
				owner.mu.Unlock()
				continue
			}
		}
		// Terminal failure.
		s.journal(store.Record{Type: store.RecCommandFailed,
			Project: owner.name, Command: cmdID, Worker: wf.WorkerID, Note: "worker lost"})
		cs.status = cmdFailed
		owner.failed++
		s.met.failed.Inc()
		s.maybeDemoteGangLocked(owner, cs.spec.GangID, cs.spec.GangSize)
		s.log.Warn("command failed terminally", "cmd", cmdID, "project", owner.name, "worker", wf.WorkerID)
		err := owner.ctrl.CommandFailed(s.contextFor(owner), cs.spec, "worker lost")
		if err != nil && owner.state == "running" {
			owner.state = "failed"
			owner.failErr = err.Error()
			close(owner.done)
		}
		owner.mu.Unlock()
	}
}
