package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/obs"
	"copernicus/internal/wire"
)

// FrameChunk makes testController a controller.FrameSink so server-level
// stream tests can observe exactly what a real controller would ingest.
func (c *testController) FrameChunk(ctx controller.Context, chunk *wire.FrameChunk) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.chunks++
	c.chunkFrames += len(chunk.Frames)
	return nil
}

func (c *testController) chunkCounts() (chunks, frames int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chunks, c.chunkFrames
}

// sendChunk delivers one frame chunk over the wire and returns the raw ack
// ("ok", "ignored", or "gap") — chunk acks are plain bytes, not gob.
func sendChunk(t *testing.T, r *rig, chunk *wire.FrameChunk) string {
	t.Helper()
	payload, err := wire.Marshal(chunk)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := r.client.RequestTimeout(r.srv.Node().ID(), wire.MsgFrameChunk, payload, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return string(reply)
}

// mkChunk builds a chunk of n synthetic frames starting at index first.
func mkChunk(cmd string, seq, first, n int) *wire.FrameChunk {
	ch := &wire.FrameChunk{
		Project: "proj", CommandID: cmd, WorkerID: "w1", Seq: seq, FirstFrame: first,
	}
	for i := 0; i < n; i++ {
		ch.Times = append(ch.Times, float64(first+i))
		ch.Frames = append(ch.Frames, []float64{float64(first + i), 0})
		ch.RMSD = append(ch.RMSD, 1)
	}
	return ch
}

// TestStreamChunkWatermark pins the live ingest contract: in-order chunks
// advance the watermark and reach the sink, duplicates and gaps are
// acknowledged but dropped, overlaps advance by only the new frames, and a
// settled command accepts nothing.
func TestStreamChunkWatermark(t *testing.T) {
	o := obs.New()
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour, Obs: o}, ctrl)
	r.submit(t, "proj")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}

	if ack := sendChunk(t, r, mkChunk("c1", 0, 1, 2)); ack != "ok" {
		t.Fatalf("first chunk ack = %q", ack)
	}
	if ack := sendChunk(t, r, mkChunk("c1", 0, 1, 2)); ack != "ignored" {
		t.Fatalf("duplicate chunk ack = %q", ack)
	}
	if ack := sendChunk(t, r, mkChunk("c1", 2, 5, 2)); ack != "gap" {
		t.Fatalf("gapped chunk ack = %q", ack)
	}
	if ack := sendChunk(t, r, mkChunk("c1", 1, 3, 2)); ack != "ok" {
		t.Fatalf("second chunk ack = %q", ack)
	}
	// Overlap: frames 4..6 against watermark 5 → accepted, two new frames.
	if ack := sendChunk(t, r, mkChunk("c1", 2, 4, 3)); ack != "ok" {
		t.Fatalf("overlapping chunk ack = %q", ack)
	}
	if ack := sendChunk(t, r, mkChunk("ghost", 0, 1, 2)); ack != "ignored" {
		t.Fatalf("unknown-command chunk ack = %q", ack)
	}
	if chunks, frames := ctrl.chunkCounts(); chunks != 3 || frames != 7 {
		t.Fatalf("sink saw %d chunks / %d frames, want 3 / 7", chunks, frames)
	}
	if got := metricValue(t, o, "copernicus_stream_chunks_total"); got != 3 {
		t.Errorf("copernicus_stream_chunks_total = %g, want 3", got)
	}
	if got := metricValue(t, o, "copernicus_stream_frames_total"); got != 6 {
		t.Errorf("copernicus_stream_frames_total = %g, want 6 (watermark-deduped)", got)
	}
	if got := metricValue(t, o, "copernicus_stream_duplicate_chunks_total"); got != 2 {
		t.Errorf("copernicus_stream_duplicate_chunks_total = %g, want 2", got)
	}

	// Settle the command; late chunks must be dropped.
	sendResult(t, r, "c1", "w1")
	if ack := sendChunk(t, r, mkChunk("c1", 3, 7, 2)); ack != "ignored" {
		t.Fatalf("post-settle chunk ack = %q", ack)
	}
	if chunks, _ := ctrl.chunkCounts(); chunks != 3 {
		t.Fatalf("settled command still fed the sink: %d chunks", chunks)
	}
}

// TestStreamResumeAcrossCrash is the tentpole durability property at the
// server level: frame-chunk watermarks are journaled through the WAL, so a
// crash-restarted server replays the identical stream into a fresh
// controller, absorbs worker re-deliveries without double-counting, and
// accepts the continuation exactly where the stream left off.
func TestStreamResumeAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ctrl1 := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r1 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, ctrl1)
	r1.submit(t, "proj")
	var wl wire.Workload
	if err := r1.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []*wire.FrameChunk{mkChunk("c1", 0, 1, 2), mkChunk("c1", 1, 3, 2)} {
		if ack := sendChunk(t, r1, ch); ack != "ok" {
			t.Fatalf("chunk %d ack = %q", i, ack)
		}
	}
	if chunks, frames := ctrl1.chunkCounts(); chunks != 2 || frames != 4 {
		t.Fatalf("pre-crash sink: %d chunks / %d frames", chunks, frames)
	}

	// Hard stop: no snapshot, no drain.
	r1.srv.Close()
	st.Close()

	st2 := openTestStore(t, dir)
	ctrl2 := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r2 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st2}, ctrl2)

	// WAL replay must reconstruct the identical stream into the fresh
	// controller: same chunks, same frames, no loss.
	if chunks, frames := ctrl2.chunkCounts(); chunks != 2 || frames != 4 {
		t.Fatalf("replayed sink: %d chunks / %d frames, want 2 / 4", chunks, frames)
	}
	// A worker that spooled its chunks through the outage re-delivers them;
	// the restored watermark must absorb every one.
	for _, ch := range []*wire.FrameChunk{mkChunk("c1", 0, 1, 2), mkChunk("c1", 1, 3, 2)} {
		if ack := sendChunk(t, r2, ch); ack != "ignored" {
			t.Fatalf("re-delivered chunk ack = %q", ack)
		}
	}
	if chunks, frames := ctrl2.chunkCounts(); chunks != 2 || frames != 4 {
		t.Fatalf("re-delivery double-counted: %d chunks / %d frames", chunks, frames)
	}
	// The orphaned command is requeued (bounded re-execution), but its
	// watermark survives: the continuation streams straight through.
	var wl2 wire.Workload
	if err := r2.request(t, wire.MsgAnnounce, announce("w2", 1), &wl2); err != nil {
		t.Fatal(err)
	}
	if len(wl2.Commands) != 1 {
		t.Fatalf("orphan not requeued: %v", wl2.Commands)
	}
	if ack := sendChunk(t, r2, mkChunk("c1", 2, 5, 2)); ack != "ok" {
		t.Fatalf("continuation chunk ack = %q", ack)
	}
	if chunks, frames := ctrl2.chunkCounts(); chunks != 3 || frames != 6 {
		t.Fatalf("post-restart sink: %d chunks / %d frames, want 3 / 6", chunks, frames)
	}
}

// TestStreamWatermarkInSnapshot: compaction can leave a snapshot with no WAL
// segments behind it; the snapshot's per-command Streamed field alone must
// preserve the dedupe watermark.
func TestStreamWatermarkInSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ctrl1 := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r1 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st}, ctrl1)
	r1.submit(t, "proj")
	var wl wire.Workload
	if err := r1.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	if ack := sendChunk(t, r1, mkChunk("c1", 0, 1, 4)); ack != "ok" {
		t.Fatal(ack)
	}
	if err := r1.srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	r1.srv.Close()
	st.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}

	st2 := openTestStore(t, dir)
	ctrl2 := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r2 := newRig(t, Config{HeartbeatInterval: time.Hour, Store: st2}, ctrl2)
	// No WAL to replay, so the sink starts cold — but the watermark must
	// still reject everything already ingested before the snapshot.
	if ack := sendChunk(t, r2, mkChunk("c1", 0, 1, 4)); ack != "ignored" {
		t.Fatalf("pre-snapshot chunk ack = %q", ack)
	}
	if chunks, _ := ctrl2.chunkCounts(); chunks != 0 {
		t.Fatalf("duplicate reached the sink after snapshot restore: %d chunks", chunks)
	}
	if ack := sendChunk(t, r2, mkChunk("c1", 1, 5, 2)); ack != "ok" {
		t.Fatalf("continuation chunk ack = %q", ack)
	}
	if chunks, frames := ctrl2.chunkCounts(); chunks != 1 || frames != 2 {
		t.Fatalf("post-snapshot sink: %d chunks / %d frames, want 1 / 2", chunks, frames)
	}
}
