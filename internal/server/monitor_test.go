package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"copernicus/internal/wire"
)

func monitorGet(t *testing.T, r *rig, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	r.srv.MonitorHandler().ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

func TestMonitorProjectsJSON(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "alpha")

	rec, body := monitorGet(t, r, "/projects")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(list) != 1 || list[0]["name"] != "alpha" || list[0]["state"] != "running" {
		t.Errorf("projects = %v", list)
	}
	if list[0]["queued"].(float64) != 2 {
		t.Errorf("queued = %v", list[0]["queued"])
	}
}

func TestMonitorSingleProject(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "beta")

	rec, body := monitorGet(t, r, "/projects/beta")
	if rec.Code != 200 || !strings.Contains(body, `"beta"`) {
		t.Fatalf("status=%d body=%s", rec.Code, body)
	}
	// Complete the project; the monitor must reflect it without exposing
	// the (potentially huge) result blob.
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	res := wire.CommandResult{CommandID: "c1", Project: "beta", WorkerID: "w1", OK: true}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	_, body = monitorGet(t, r, "/projects/beta")
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st["state"] != "finished" || st["hasResult"] != true {
		t.Errorf("status = %v", st)
	}
	if _, leaked := st["result"]; leaked {
		t.Error("monitor leaked the result payload")
	}

	rec, _ = monitorGet(t, r, "/projects/ghost")
	if rec.Code != 404 {
		t.Errorf("unknown project status = %d", rec.Code)
	}
}

func TestMonitorOverviewAndWorkers(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "gamma")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}

	rec, body := monitorGet(t, r, "/")
	if rec.Code != 200 || !strings.Contains(body, "gamma") || !strings.Contains(body, "PROJECT") {
		t.Errorf("overview: %d\n%s", rec.Code, body)
	}
	_, body = monitorGet(t, r, "/workers")
	var workers []wire.WorkerInfo
	if err := json.Unmarshal([]byte(body), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 1 || workers[0].ID != "w1" || workers[0].Cores != 2 {
		t.Errorf("workers = %v", workers)
	}
	rec, body = monitorGet(t, r, "/healthz")
	if rec.Code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %s", rec.Code, body)
	}
	rec, _ = monitorGet(t, r, "/no-such-page")
	if rec.Code != 404 {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}
