package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"copernicus/internal/wire"
)

func monitorGet(t *testing.T, r *rig, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	r.srv.MonitorHandler().ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

func TestMonitorProjectsJSON(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1"), cmdSpec("c2")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "alpha")

	rec, body := monitorGet(t, r, "/projects")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(list) != 1 || list[0]["name"] != "alpha" || list[0]["state"] != "running" {
		t.Errorf("projects = %v", list)
	}
	if list[0]["queued"].(float64) != 2 {
		t.Errorf("queued = %v", list[0]["queued"])
	}
}

func TestMonitorSingleProject(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}, finishOn: 1}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "beta")

	rec, body := monitorGet(t, r, "/projects/beta")
	if rec.Code != 200 || !strings.Contains(body, `"beta"`) {
		t.Fatalf("status=%d body=%s", rec.Code, body)
	}
	// Complete the project; the monitor must reflect it without exposing
	// the (potentially huge) result blob.
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 1), &wl); err != nil {
		t.Fatal(err)
	}
	res := wire.CommandResult{CommandID: "c1", Project: "beta", WorkerID: "w1", OK: true}
	if err := r.request(t, wire.MsgResult, &res, nil); err != nil {
		t.Fatal(err)
	}
	_, body = monitorGet(t, r, "/projects/beta")
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st["state"] != "finished" || st["hasResult"] != true {
		t.Errorf("status = %v", st)
	}
	if _, leaked := st["result"]; leaked {
		t.Error("monitor leaked the result payload")
	}

	rec, _ = monitorGet(t, r, "/projects/ghost")
	if rec.Code != 404 {
		t.Errorf("unknown project status = %d", rec.Code)
	}
}

func TestMonitorOverviewAndWorkers(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "gamma")
	var wl wire.Workload
	if err := r.request(t, wire.MsgAnnounce, announce("w1", 2), &wl); err != nil {
		t.Fatal(err)
	}

	rec, body := monitorGet(t, r, "/")
	if rec.Code != 200 || !strings.Contains(body, "gamma") || !strings.Contains(body, "PROJECT") {
		t.Errorf("overview: %d\n%s", rec.Code, body)
	}
	_, body = monitorGet(t, r, "/workers")
	var workers []wire.WorkerInfo
	if err := json.Unmarshal([]byte(body), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers) != 1 || workers[0].ID != "w1" || workers[0].Cores != 2 {
		t.Errorf("workers = %v", workers)
	}
	rec, body = monitorGet(t, r, "/healthz")
	if rec.Code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %s", rec.Code, body)
	}
	rec, _ = monitorGet(t, r, "/no-such-page")
	if rec.Code != 404 {
		t.Errorf("unknown path status = %d", rec.Code)
	}
}

func TestMonitorRejectsWrites(t *testing.T) {
	ctrl := &testController{}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	h := r.srv.MonitorHandler()
	for _, path := range []string{"/", "/projects", "/projects/x", "/workers", "/healthz", "/metrics", "/debug/trace"} {
		for _, method := range []string{"POST", "PUT", "DELETE", "PATCH"} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader("x")))
			if rec.Code != 405 {
				t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q", method, path, allow)
			}
		}
	}
}

func TestMonitorNoStoreOnJSON(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "delta")
	for _, path := range []string{"/projects", "/projects/delta", "/workers", "/debug/trace", "/metrics"} {
		rec, _ := monitorGet(t, r, path)
		if rec.Code != 200 {
			t.Errorf("GET %s = %d", path, rec.Code)
			continue
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", path, cc)
		}
	}
}

func TestMonitorProjectTrailingSlash(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "epsilon")

	rec, body := monitorGet(t, r, "/projects/epsilon/")
	if rec.Code != 200 || !strings.Contains(body, `"epsilon"`) {
		t.Errorf("trailing slash: %d %s", rec.Code, body)
	}
	for _, path := range []string{"/projects/", "/projects/epsilon/sub", "/projects/epsilon/sub/"} {
		rec, _ := monitorGet(t, r, path)
		if rec.Code != 404 {
			t.Errorf("GET %s = %d, want 404", path, rec.Code)
		}
	}
	// Doubled slashes are canonicalized by the mux with a redirect, not
	// served; either way nothing but the exact name (± one slash) resolves.
	rec, _ = monitorGet(t, r, "/projects//")
	if rec.Code != 404 && rec.Code != 301 {
		t.Errorf("GET /projects// = %d, want 404 or 301", rec.Code)
	}
}

func TestMonitorServesObsEndpoints(t *testing.T) {
	ctrl := &testController{submit: []wire.CommandSpec{cmdSpec("c1")}}
	r := newRig(t, Config{HeartbeatInterval: time.Hour}, ctrl)
	r.submit(t, "zeta")

	rec, body := monitorGet(t, r, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	for _, name := range []string{
		"copernicus_commands_submitted_total",
		"copernicus_queue_depth",
		"copernicus_workers",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	rec, body = monitorGet(t, r, "/debug/trace")
	if rec.Code != 200 {
		t.Fatalf("/debug/trace = %d", rec.Code)
	}
	var dump map[string]any
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if dump["recorded"].(float64) == 0 {
		t.Error("submitting a command should record a trace span")
	}
	rec, _ = monitorGet(t, r, "/debug/pprof/")
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/ = %d", rec.Code)
	}
}
