package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero seed produced only %d distinct values of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	s := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < n/7-n/70 || c > n/7+n/70 {
			t.Errorf("Intn bucket %d count %d deviates >10%% from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	var s, s2 float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.Norm()
		s += x
		s2 += x * x
	}
	mean := s / n
	variance := s2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Gaussian variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(9)
	var acc float64
	const n = 100000
	for i := 0; i < n; i++ {
		acc += r.NormScaled(10, 2)
	}
	if math.Abs(acc/n-10) > 0.05 {
		t.Errorf("NormScaled mean = %v, want ~10", acc/n)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	var acc float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.Exp(2)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		acc += x
	}
	if math.Abs(acc/n-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", acc/n)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children produced %d identical draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(33).Split()
	b := New(33).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(25)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.15 {
		t.Errorf("Choice ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	cases := map[string][]float64{
		"all zero": {0, 0},
		"negative": {1, -1},
		"empty":    {},
	}
	for name, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%s) should panic", name)
				}
			}()
			New(1).Choice(w)
		}()
	}
}

func TestMaxwellBoltzmannSpeed(t *testing.T) {
	// Water oxygen-ish mass at 300K: sigma = sqrt(kB*T/m).
	got := MaxwellBoltzmannSpeed(18.015, 300)
	want := math.Sqrt(0.0083144621 * 300 / 18.015)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxwellBoltzmannSpeed = %v, want %v", got, want)
	}
	// Hotter is faster, heavier is slower.
	if MaxwellBoltzmannSpeed(18, 600) <= MaxwellBoltzmannSpeed(18, 300) {
		t.Error("speed must increase with temperature")
	}
	if MaxwellBoltzmannSpeed(100, 300) >= MaxwellBoltzmannSpeed(1, 300) {
		t.Error("speed must decrease with mass")
	}
}

func TestMaxwellBoltzmannPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive mass should panic")
		}
	}()
	MaxwellBoltzmannSpeed(0, 300)
}

func TestShuffleUniformish(t *testing.T) {
	r := New(55)
	// Position of element 0 after shuffling [0..3] should be ~uniform.
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		arr := []int{0, 1, 2, 3}
		r.Shuffle(4, func(a, b int) { arr[a], arr[b] = arr[b], arr[a] })
		for pos, v := range arr {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < n/4-n/40 || c > n/4+n/40 {
			t.Errorf("element 0 at position %d count %d deviates from uniform", pos, c)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

func TestMarshalBinaryRoundTrip(t *testing.T) {
	r := New(77)
	// Advance to a state with a cached Gaussian spare.
	r.Norm()
	state, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r2 Source
	if err := r2.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := r.Norm(), r2.Norm(); a != b {
			t.Fatalf("restored stream diverged at draw %d: %v vs %v", i, a, b)
		}
		if a, b := r.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("restored uint stream diverged at draw %d", i)
		}
	}
}

func TestUnmarshalBinaryRejectsGarbage(t *testing.T) {
	var r Source
	if err := r.UnmarshalBinary([]byte("short")); err == nil {
		t.Error("short state accepted")
	}
	if err := r.UnmarshalBinary(make([]byte, 100)); err == nil {
		t.Error("oversized state accepted")
	}
}
