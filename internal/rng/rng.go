// Package rng implements the deterministic random number generation used by
// every stochastic component of the reproduction: simulation seeds, initial
// velocity draws, Langevin noise, clustering seeds and the discrete-event
// simulator.
//
// The generator is xoshiro256**, seeded through SplitMix64 so that any
// 64-bit seed (including 0) produces a well-mixed state. Each consumer owns
// its own *Source; sources are NOT safe for concurrent use, matching the
// design rule that goroutines never share a generator. Split derives
// statistically independent child streams, which is how a parent experiment
// hands seeds to parallel trajectories reproducibly.
package rng

import (
	"errors"
	"math"
)

// Source is a deterministic xoshiro256** pseudo-random source.
// The zero value is invalid; use New.
type Source struct {
	s [4]uint64
	// cached spare Gaussian deviate for the Box–Muller pair
	spare    float64
	hasSpare bool
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var s Source
	sm := seed
	for i := range s.s {
		sm, s.s[i] = splitMix64(sm)
	}
	// xoshiro must not start at the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9E3779B97F4A7C15
	}
	return &s
}

// splitMix64 advances the SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return state, z
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the parent's. The child is derived by drawing a fresh seed from the
// parent, so splitting is itself deterministic.
func (r *Source) Split() *Source { return New(r.Uint64()) }

// Float64 returns a uniform deviate in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Norm returns a standard Gaussian deviate (mean 0, variance 1) using the
// Marsaglia polar form of Box–Muller, caching the spare deviate.
func (r *Source) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormScaled returns a Gaussian deviate with the given mean and standard
// deviation.
func (r *Source) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns an index drawn from the (not necessarily normalised)
// non-negative weight vector w. It panics if the total weight is not
// positive or any weight is negative.
func (r *Source) Choice(w []float64) int {
	total := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("rng: Choice with negative or NaN weight")
		}
		_ = i
		total += x
	}
	if total <= 0 {
		panic("rng: Choice with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	// Floating point rounding: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return len(w) - 1
}

// MaxwellBoltzmannSpeed returns the standard deviation of each velocity
// component for a particle of mass m (in u) at temperature T (in K), in
// nm/ps — the unit system of the MD substrate (kB in kJ/(mol·K)).
func MaxwellBoltzmannSpeed(m, temperature float64) float64 {
	const kB = 0.0083144621 // kJ/(mol K)
	if m <= 0 {
		panic("rng: MaxwellBoltzmannSpeed with non-positive mass")
	}
	return math.Sqrt(kB * temperature / m)
}

// MarshalBinary encodes the generator state (including the cached Gaussian
// spare) so simulations can checkpoint mid-stream and resume bit-for-bit.
func (r *Source) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4*8+8+1)
	for i, s := range r.s {
		putUint64(buf[i*8:], s)
	}
	putUint64(buf[32:], math.Float64bits(r.spare))
	if r.hasSpare {
		buf[40] = 1
	}
	return buf, nil
}

// UnmarshalBinary restores state written by MarshalBinary.
func (r *Source) UnmarshalBinary(data []byte) error {
	if len(data) != 41 {
		return errBadState
	}
	for i := range r.s {
		r.s[i] = getUint64(data[i*8:])
	}
	r.spare = math.Float64frombits(getUint64(data[32:]))
	r.hasSpare = data[40] == 1
	return nil
}

var errBadState = errors.New("rng: invalid serialized state")

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
