package md

import (
	"sync"
	"sync/atomic"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// pair is one unexcluded non-bonded pair within the listing radius, used by
// tests and the set-comparison helpers; the kernel itself consumes pairList.
type pair struct{ i, j int32 }

// pairList is the packed struct-of-arrays pair list the non-bonded kernel
// iterates. All interaction parameters are baked in at rebuild time — the
// combined LJ coefficients and the premultiplied charge product — so the
// per-pair inner loop touches no topology tables and no Atom structs, only
// these flat arrays and the position slice. Entries are grouped by ascending
// ai, which keeps the force writes for one i atom in consecutive iterations.
type pairList struct {
	ai, aj []int32
	c6     []float64
	c12    []float64
	qqf    []float64 // CoulombConst · q_i · q_j; 0 means no Coulomb term
}

// Len returns the number of packed pairs.
func (pl *pairList) Len() int { return len(pl.ai) }

func (pl *pairList) reset() {
	pl.ai = pl.ai[:0]
	pl.aj = pl.aj[:0]
	pl.c6 = pl.c6[:0]
	pl.c12 = pl.c12[:0]
	pl.qqf = pl.qqf[:0]
}

func (pl *pairList) append(i, j int32, c6, c12, qqf float64) {
	pl.ai = append(pl.ai, i)
	pl.aj = append(pl.aj, j)
	pl.c6 = append(pl.c6, c6)
	pl.c12 = append(pl.c12, c12)
	pl.qqf = append(pl.qqf, qqf)
}

// resize grows the arrays to exactly n entries, reusing capacity.
func (pl *pairList) resize(n int) {
	grow := func(s []float64) []float64 {
		if cap(s) < n {
			return make([]float64, n)
		}
		return s[:n]
	}
	if cap(pl.ai) < n {
		pl.ai = make([]int32, n)
		pl.aj = make([]int32, n)
	} else {
		pl.ai = pl.ai[:n]
		pl.aj = pl.aj[:n]
	}
	pl.c6 = grow(pl.c6)
	pl.c12 = grow(pl.c12)
	pl.qqf = grow(pl.qqf)
}

// halfShellStencil is the 13 forward neighbour cell offsets of the half-shell
// traversal, fixed for every rebuild (hoisted so rebuilds allocate nothing).
var halfShellStencil = func() [][3]int {
	var st [][3]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx > 0 || (dx == 0 && dy > 0) || (dx == 0 && dy == 0 && dz > 0) {
					st = append(st, [3]int{dx, dy, dz})
				}
			}
		}
	}
	return st
}()

// neighborList produces the packed pair list consumed by the non-bonded
// kernel. For periodic boxes it uses a linked-cell decomposition with cells
// at least rlist wide, with pair generation parallelised over x-slabs of the
// grid; for aperiodic systems (single molecules in vacuo) it falls back to an
// O(n²) sweep, which is fine at the system sizes involved.
//
// The generated list is deterministic and independent of the worker count:
// each x-slab fills its own buffer in the same traversal order a serial sweep
// would use, and the buffers are merged in slab order before the final
// group-by-i counting sort.
type neighborList struct {
	box   vec.Box
	rlist float64  // cutoff + skin
	plist pairList // packed output consumed by the kernel

	// per-atom parameter caches, filled once from the topology
	typ []int32
	chg []float64
	qed bool // true if any atom carries charge

	// cell grid scratch, reused across rebuilds
	nc      [3]int
	heads   []int32
	next    []int32
	cellDim vec.V3
	slabs   []pairList // per-x-slab pair buffers
	counts  []int32    // counting-sort scratch, len natoms
}

func newNeighborList(box vec.Box, rlist float64) *neighborList {
	return &neighborList{box: box, rlist: rlist}
}

// periodic reports whether all three axes are periodic, the only case the
// cell grid handles.
func (nl *neighborList) periodic() bool {
	return nl.box.L.X > 0 && nl.box.L.Y > 0 && nl.box.L.Z > 0
}

// cacheAtomParams snapshots per-atom LJ type and charge into flat arrays so
// pair packing reads int32/float64 slices instead of Atom structs.
func (nl *neighborList) cacheAtomParams(top *topology.Topology) {
	if len(nl.typ) == len(top.Atoms) {
		return
	}
	nl.typ = make([]int32, len(top.Atoms))
	nl.chg = make([]float64, len(top.Atoms))
	for i, a := range top.Atoms {
		nl.typ[i] = int32(a.Type)
		nl.chg[i] = a.Charge
		if a.Charge != 0 {
			nl.qed = true
		}
	}
}

// rebuild regenerates the pair list serially from current positions.
func (nl *neighborList) rebuild(pos []vec.V3, top *topology.Topology) {
	nl.rebuildWith(pos, top, 1)
}

// rebuildWith regenerates the pair list, parallelising cell-grid pair
// generation across up to `workers` goroutines. The result is identical for
// every worker count.
func (nl *neighborList) rebuildWith(pos []vec.V3, top *topology.Topology, workers int) {
	nl.cacheAtomParams(top)
	if nl.periodic() && nl.gridFits() {
		nl.rebuildCells(pos, top, workers)
	} else {
		nl.rebuildAllPairs(pos, top)
	}
}

// gridFits reports whether the box supports at least 3 cells per axis, the
// minimum for the half-shell cell traversal to visit each image once.
func (nl *neighborList) gridFits() bool {
	for _, l := range [3]float64{nl.box.L.X, nl.box.L.Y, nl.box.L.Z} {
		if int(l/nl.rlist) < 3 {
			return false
		}
	}
	return true
}

// packInto appends pair (i, j) with baked interaction parameters, normalising
// to i < j. Exclusions have already been filtered by the caller.
func (nl *neighborList) packInto(buf *pairList, top *topology.Topology, i, j int) {
	if i > j {
		i, j = j, i
	}
	c6, c12 := top.LJPair(int(nl.typ[i]), int(nl.typ[j]))
	var qqf float64
	if nl.qed {
		qqf = topology.CoulombConst * nl.chg[i] * nl.chg[j]
	}
	buf.append(int32(i), int32(j), c6, c12, qqf)
}

// rebuildAllPairs is the O(n²) aperiodic fallback; its output is naturally
// grouped by i.
func (nl *neighborList) rebuildAllPairs(pos []vec.V3, top *topology.Topology) {
	nl.plist.reset()
	r2 := nl.rlist * nl.rlist
	n := len(pos)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if top.Excluded(i, j) {
				continue
			}
			if nl.box.MinImage(pos[i], pos[j]).Norm2() <= r2 {
				nl.packInto(&nl.plist, top, i, j)
			}
		}
	}
}

func (nl *neighborList) rebuildCells(pos []vec.V3, top *topology.Topology, workers int) {
	l := nl.box.L
	nl.nc[0] = int(l.X / nl.rlist)
	nl.nc[1] = int(l.Y / nl.rlist)
	nl.nc[2] = int(l.Z / nl.rlist)
	nl.cellDim = vec.New(l.X/float64(nl.nc[0]), l.Y/float64(nl.nc[1]), l.Z/float64(nl.nc[2]))

	ncells := nl.nc[0] * nl.nc[1] * nl.nc[2]
	if cap(nl.heads) < ncells {
		nl.heads = make([]int32, ncells)
	}
	nl.heads = nl.heads[:ncells]
	for i := range nl.heads {
		nl.heads[i] = -1
	}
	if cap(nl.next) < len(pos) {
		nl.next = make([]int32, len(pos))
	}
	nl.next = nl.next[:len(pos)]

	for i, p := range pos {
		c := nl.cellOf(p)
		nl.next[i] = nl.heads[c]
		nl.heads[c] = int32(i)
	}

	// Per-x-slab pair generation. Each slab owns the cells with its cx and
	// appends into its private buffer; merging in cx order reproduces the
	// serial traversal order exactly, whatever the worker count.
	nslabs := nl.nc[0]
	if len(nl.slabs) < nslabs {
		nl.slabs = append(nl.slabs, make([]pairList, nslabs-len(nl.slabs))...)
	}
	if workers > nslabs {
		workers = nslabs
	}
	if workers <= 1 {
		for cx := 0; cx < nslabs; cx++ {
			nl.fillSlab(cx, pos, top)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					cx := int(cursor.Add(1)) - 1
					if cx >= nslabs {
						return
					}
					nl.fillSlab(cx, pos, top)
				}
			}()
		}
		wg.Wait()
	}
	nl.mergeSlabs(nslabs, len(pos))
}

// cellOf maps a position to its grid cell, clamping against rounding at both
// edges so no finite coordinate can index out of range.
func (nl *neighborList) cellOf(p vec.V3) int {
	w := nl.box.Wrap(p)
	cx := int(w.X / nl.cellDim.X)
	cy := int(w.Y / nl.cellDim.Y)
	cz := int(w.Z / nl.cellDim.Z)
	if cx < 0 {
		cx = 0
	} else if cx >= nl.nc[0] {
		cx = nl.nc[0] - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= nl.nc[1] {
		cy = nl.nc[1] - 1
	}
	if cz < 0 {
		cz = 0
	} else if cz >= nl.nc[2] {
		cz = nl.nc[2] - 1
	}
	return (cx*nl.nc[1]+cy)*nl.nc[2] + cz
}

// fillSlab generates the pairs whose home cell has x-index cx.
func (nl *neighborList) fillSlab(cx int, pos []vec.V3, top *topology.Topology) {
	buf := &nl.slabs[cx]
	buf.reset()
	r2 := nl.rlist * nl.rlist
	for cy := 0; cy < nl.nc[1]; cy++ {
		for cz := 0; cz < nl.nc[2]; cz++ {
			c := (cx*nl.nc[1]+cy)*nl.nc[2] + cz
			// Pairs within the cell.
			for i := nl.heads[c]; i >= 0; i = nl.next[i] {
				for j := nl.next[i]; j >= 0; j = nl.next[j] {
					nl.tryPair(buf, pos, top, int(i), int(j), r2)
				}
			}
			// Pairs with the half shell.
			for _, d := range halfShellStencil {
				ox := (cx + d[0] + nl.nc[0]) % nl.nc[0]
				oy := (cy + d[1] + nl.nc[1]) % nl.nc[1]
				oz := (cz + d[2] + nl.nc[2]) % nl.nc[2]
				o := (ox*nl.nc[1]+oy)*nl.nc[2] + oz
				for i := nl.heads[c]; i >= 0; i = nl.next[i] {
					for j := nl.heads[o]; j >= 0; j = nl.next[j] {
						nl.tryPair(buf, pos, top, int(i), int(j), r2)
					}
				}
			}
		}
	}
}

func (nl *neighborList) tryPair(buf *pairList, pos []vec.V3, top *topology.Topology, i, j int, r2 float64) {
	if top.Excluded(i, j) {
		return
	}
	if nl.box.MinImage(pos[i], pos[j]).Norm2() <= r2 {
		nl.packInto(buf, top, i, j)
	}
}

// mergeSlabs concatenates the slab buffers and counting-sorts the result by
// ai, so the kernel walks each i atom's pairs consecutively. The sort is
// stable over the slab-order concatenation, keeping the final list fully
// deterministic.
func (nl *neighborList) mergeSlabs(nslabs, natoms int) {
	total := 0
	for s := 0; s < nslabs; s++ {
		total += nl.slabs[s].Len()
	}
	if cap(nl.counts) < natoms {
		nl.counts = make([]int32, natoms)
	}
	counts := nl.counts[:natoms]
	for i := range counts {
		counts[i] = 0
	}
	for s := 0; s < nslabs; s++ {
		for _, i := range nl.slabs[s].ai {
			counts[i]++
		}
	}
	// Prefix sum: counts[i] becomes the write offset of atom i's first pair.
	var off int32
	for i := range counts {
		c := counts[i]
		counts[i] = off
		off += c
	}
	nl.plist.resize(total)
	dst := &nl.plist
	for s := 0; s < nslabs; s++ {
		src := &nl.slabs[s]
		for k := range src.ai {
			i := src.ai[k]
			p := counts[i]
			counts[i]++
			dst.ai[p] = i
			dst.aj[p] = src.aj[k]
			dst.c6[p] = src.c6[k]
			dst.c12[p] = src.c12[k]
			dst.qqf[p] = src.qqf[k]
		}
	}
}

// pairIJ returns the plain (i, j) pair view of the packed list, for tests and
// set comparisons.
func (nl *neighborList) pairIJ() []pair {
	out := make([]pair, nl.plist.Len())
	for k := range out {
		out[k] = pair{nl.plist.ai[k], nl.plist.aj[k]}
	}
	return out
}
