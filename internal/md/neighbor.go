package md

import (
	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// pair is one unexcluded non-bonded pair within the listing radius.
type pair struct{ i, j int32 }

// neighborList produces the pair list consumed by the non-bonded kernel.
// For periodic boxes it uses a linked-cell decomposition with cells at least
// rlist wide; for aperiodic systems (single molecules in vacuo) it falls
// back to an O(n²) sweep, which is fine at the system sizes involved.
type neighborList struct {
	box   vec.Box
	rlist float64 // cutoff + skin
	pairs []pair

	// cell grid scratch, reused across rebuilds
	nc      [3]int
	heads   []int32
	next    []int32
	cellDim vec.V3
}

func newNeighborList(box vec.Box, rlist float64) *neighborList {
	return &neighborList{box: box, rlist: rlist}
}

// periodic reports whether all three axes are periodic, the only case the
// cell grid handles.
func (nl *neighborList) periodic() bool {
	return nl.box.L.X > 0 && nl.box.L.Y > 0 && nl.box.L.Z > 0
}

// rebuild regenerates the pair list from current positions.
func (nl *neighborList) rebuild(pos []vec.V3, top *topology.Topology) {
	nl.pairs = nl.pairs[:0]
	if nl.periodic() && nl.gridFits() {
		nl.rebuildCells(pos, top)
	} else {
		nl.rebuildAllPairs(pos, top)
	}
}

// gridFits reports whether the box supports at least 3 cells per axis, the
// minimum for the half-shell cell traversal to visit each image once.
func (nl *neighborList) gridFits() bool {
	for _, l := range [3]float64{nl.box.L.X, nl.box.L.Y, nl.box.L.Z} {
		if int(l/nl.rlist) < 3 {
			return false
		}
	}
	return true
}

func (nl *neighborList) rebuildAllPairs(pos []vec.V3, top *topology.Topology) {
	r2 := nl.rlist * nl.rlist
	n := len(pos)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if top.Excluded(i, j) {
				continue
			}
			if nl.box.MinImage(pos[i], pos[j]).Norm2() <= r2 {
				nl.pairs = append(nl.pairs, pair{int32(i), int32(j)})
			}
		}
	}
}

func (nl *neighborList) rebuildCells(pos []vec.V3, top *topology.Topology) {
	l := nl.box.L
	nl.nc[0] = int(l.X / nl.rlist)
	nl.nc[1] = int(l.Y / nl.rlist)
	nl.nc[2] = int(l.Z / nl.rlist)
	nl.cellDim = vec.New(l.X/float64(nl.nc[0]), l.Y/float64(nl.nc[1]), l.Z/float64(nl.nc[2]))

	ncells := nl.nc[0] * nl.nc[1] * nl.nc[2]
	if cap(nl.heads) < ncells {
		nl.heads = make([]int32, ncells)
	}
	nl.heads = nl.heads[:ncells]
	for i := range nl.heads {
		nl.heads[i] = -1
	}
	if cap(nl.next) < len(pos) {
		nl.next = make([]int32, len(pos))
	}
	nl.next = nl.next[:len(pos)]

	cellOf := func(p vec.V3) int {
		w := nl.box.Wrap(p)
		cx := int(w.X / nl.cellDim.X)
		cy := int(w.Y / nl.cellDim.Y)
		cz := int(w.Z / nl.cellDim.Z)
		// Guard the upper edge against rounding.
		if cx >= nl.nc[0] {
			cx = nl.nc[0] - 1
		}
		if cy >= nl.nc[1] {
			cy = nl.nc[1] - 1
		}
		if cz >= nl.nc[2] {
			cz = nl.nc[2] - 1
		}
		return (cx*nl.nc[1]+cy)*nl.nc[2] + cz
	}
	for i, p := range pos {
		c := cellOf(p)
		nl.next[i] = nl.heads[c]
		nl.heads[c] = int32(i)
	}

	r2 := nl.rlist * nl.rlist
	// Half-shell stencil: the 13 forward neighbour cells plus self.
	var stencil [][3]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx > 0 || (dx == 0 && dy > 0) || (dx == 0 && dy == 0 && dz > 0) {
					stencil = append(stencil, [3]int{dx, dy, dz})
				}
			}
		}
	}

	for cx := 0; cx < nl.nc[0]; cx++ {
		for cy := 0; cy < nl.nc[1]; cy++ {
			for cz := 0; cz < nl.nc[2]; cz++ {
				c := (cx*nl.nc[1]+cy)*nl.nc[2] + cz
				// Pairs within the cell.
				for i := nl.heads[c]; i >= 0; i = nl.next[i] {
					for j := nl.next[i]; j >= 0; j = nl.next[j] {
						nl.tryPair(pos, top, int(i), int(j), r2)
					}
				}
				// Pairs with the half shell.
				for _, d := range stencil {
					ox := (cx + d[0] + nl.nc[0]) % nl.nc[0]
					oy := (cy + d[1] + nl.nc[1]) % nl.nc[1]
					oz := (cz + d[2] + nl.nc[2]) % nl.nc[2]
					o := (ox*nl.nc[1]+oy)*nl.nc[2] + oz
					for i := nl.heads[c]; i >= 0; i = nl.next[i] {
						for j := nl.heads[o]; j >= 0; j = nl.next[j] {
							nl.tryPair(pos, top, int(i), int(j), r2)
						}
					}
				}
			}
		}
	}
}

func (nl *neighborList) tryPair(pos []vec.V3, top *topology.Topology, i, j int, r2 float64) {
	if top.Excluded(i, j) {
		return
	}
	if nl.box.MinImage(pos[i], pos[j]).Norm2() <= r2 {
		if i < j {
			nl.pairs = append(nl.pairs, pair{int32(i), int32(j)})
		} else {
			nl.pairs = append(nl.pairs, pair{int32(j), int32(i)})
		}
	}
}
