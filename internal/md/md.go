// Package md implements the molecular dynamics engine that plays the role
// Gromacs plays in the paper: the compute kernel that worker clients execute.
//
// The engine integrates Newton's equations with velocity Verlet over
// Lennard-Jones, reaction-field Coulomb, harmonic bond/angle and periodic
// dihedral interactions, with a cell-list/Verlet neighbour list, a choice of
// thermostats (Berendsen, Langevin, Nosé–Hoover), deterministic seeding, and
// binary checkpointing so an interrupted command can be resumed by a
// different worker — the failure-recovery path of the paper's §2.3.
//
// Parallelism mirrors the paper's hierarchy at two of its three levels:
// within a process the force loop is sharded across goroutines ("threads"),
// and decomp.go provides an explicit message-passing rank decomposition
// ("MPI") whose traffic is instrumented for the Fig 6 bandwidth analysis.
// The SIMD level is out of scope for pure Go (see DESIGN.md).
//
// Units: nm, ps, u, e, kJ/mol (the Gromacs unit system).
package md

import (
	"fmt"
	"math"
	"time"

	"copernicus/internal/rng"
	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// ThermostatKind selects the temperature-coupling algorithm.
type ThermostatKind int

const (
	// NoThermostat integrates pure NVE dynamics.
	NoThermostat ThermostatKind = iota
	// Berendsen rescales velocities toward the target temperature with a
	// relaxation time TauT. Cheap and stable, wrong ensemble.
	Berendsen
	// Langevin applies friction and matched Gaussian noise after each step,
	// sampling the canonical ensemble.
	Langevin
	// NoseHoover couples a single deterministic heat-bath variable, the
	// thermostat used for the paper's villin runs (§3.1).
	NoseHoover
)

// String implements fmt.Stringer.
func (k ThermostatKind) String() string {
	switch k {
	case NoThermostat:
		return "none"
	case Berendsen:
		return "berendsen"
	case Langevin:
		return "langevin"
	case NoseHoover:
		return "nose-hoover"
	default:
		return fmt.Sprintf("thermostat(%d)", int(k))
	}
}

// Config holds simulation parameters. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	Dt            float64        // integration timestep, ps
	Cutoff        float64        // non-bonded cutoff, nm
	Skin          float64        // Verlet-list skin added to the cutoff, nm
	NeighborEvery int            // neighbour-list rebuild ceiling, steps
	Thermostat    ThermostatKind // temperature coupling algorithm
	Temperature   float64        // target temperature, K
	TauT          float64        // Berendsen/Nosé–Hoover coupling time, ps
	Gamma         float64        // Langevin friction, 1/ps
	EpsilonRF     float64        // reaction-field dielectric; 0 disables RF correction
	Shards        int            // goroutine shards for the force loop; <=1 serial
	Seed          uint64         // RNG seed for velocities and Langevin noise
	COMEvery      int            // centre-of-mass motion removal interval; 0 disables

	// FixedCadenceRebuild disables the displacement-triggered neighbour
	// rebuild criterion and rebuilds on the blind NeighborEvery cadence
	// instead (the pre-overhaul behaviour, kept for A/B drift tests). The
	// default policy rebuilds only when some atom has moved more than
	// Skin/2 since the last rebuild — the condition under which the Verlet
	// list could start missing in-cutoff pairs — with NeighborEvery as a
	// hard ceiling.
	FixedCadenceRebuild bool
}

// DefaultConfig returns the parameters used by the paper's protocol where
// applicable: 2 fs timestep, reaction field with ε=78, Nosé–Hoover at 300 K
// with τ=0.5 ps.
func DefaultConfig() Config {
	return Config{
		Dt:            0.002,
		Cutoff:        0.9,
		Skin:          0.1,
		NeighborEvery: 10,
		Thermostat:    NoseHoover,
		Temperature:   300,
		TauT:          0.5,
		Gamma:         1.0,
		EpsilonRF:     78,
		Shards:        1,
		Seed:          1,
		COMEvery:      100,
	}
}

func (c *Config) validate() error {
	if c.Dt <= 0 {
		return fmt.Errorf("md: timestep must be positive, got %g", c.Dt)
	}
	if c.Cutoff <= 0 {
		return fmt.Errorf("md: cutoff must be positive, got %g", c.Cutoff)
	}
	if c.Skin < 0 {
		return fmt.Errorf("md: skin must be non-negative, got %g", c.Skin)
	}
	if c.NeighborEvery <= 0 {
		c.NeighborEvery = 10
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Thermostat != NoThermostat && c.Temperature <= 0 {
		return fmt.Errorf("md: thermostat requires a positive temperature")
	}
	if (c.Thermostat == Berendsen || c.Thermostat == NoseHoover) && c.TauT <= 0 {
		return fmt.Errorf("md: %v thermostat requires TauT > 0", c.Thermostat)
	}
	if c.Thermostat == Langevin && c.Gamma <= 0 {
		return fmt.Errorf("md: langevin thermostat requires Gamma > 0")
	}
	return nil
}

// Energies is a breakdown of the system energy at one instant, kJ/mol.
type Energies struct {
	Kinetic  float64
	LJ       float64
	Coulomb  float64
	Bond     float64
	Angle    float64
	Dihedral float64
}

// Potential returns the total potential energy.
func (e Energies) Potential() float64 {
	return e.LJ + e.Coulomb + e.Bond + e.Angle + e.Dihedral
}

// Total returns kinetic plus potential energy.
func (e Energies) Total() float64 { return e.Kinetic + e.Potential() }

// Sim is a running molecular dynamics simulation. It is not safe for
// concurrent use; a worker owns exactly one Sim per command.
type Sim struct {
	top *topology.Topology
	cfg Config
	box vec.Box

	pos []vec.V3
	vel []vec.V3
	frc []vec.V3

	step int64
	time float64 // ps

	nbl  *neighborList
	rand *rng.Source

	// Displacement-triggered rebuild state: positions at the last rebuild,
	// the number of steps taken since, and a lifetime rebuild count.
	nbrRef       []vec.V3
	sinceRebuild int
	rebuilds     int64

	// Throughput-metric sampling window (only advanced when EnableMetrics
	// has been called).
	winSteps    int
	winPairs    int64
	winForceSec float64
	winWall     time.Time
	winSimTime  float64

	// Nosé–Hoover heat-bath variable and its "mass".
	xiNH float64
	qNH  float64

	pot Energies // potential terms from the latest force evaluation

	shards *shardPool
}

// New creates a simulation from a validated system. Initial velocities are
// drawn from the Maxwell–Boltzmann distribution at cfg.Temperature (or left
// zero when the thermostat is disabled and Temperature is 0).
func New(sys *topology.System, cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := sys.Top.NAtoms()
	if len(sys.Pos) != n {
		return nil, fmt.Errorf("md: %d positions for %d atoms", len(sys.Pos), n)
	}
	if sys.Box.L.X > 0 && sys.Box.L.X < 2*(cfg.Cutoff+cfg.Skin) {
		return nil, fmt.Errorf("md: box edge %.3g smaller than twice cutoff+skin %.3g",
			sys.Box.L.X, 2*(cfg.Cutoff+cfg.Skin))
	}
	s := &Sim{
		top:  sys.Top,
		cfg:  cfg,
		box:  sys.Box,
		pos:  append([]vec.V3(nil), sys.Pos...),
		vel:  make([]vec.V3, n),
		frc:  make([]vec.V3, n),
		rand: rng.New(cfg.Seed),
	}
	dof := float64(s.top.DegreesOfFreedom())
	s.qNH = dof * topology.KB * cfg.Temperature * cfg.TauT * cfg.TauT
	if cfg.Temperature > 0 {
		s.drawVelocities()
	}
	s.nbl = newNeighborList(s.box, cfg.Cutoff+cfg.Skin)
	s.shards = newShardPool(cfg.Shards, n)
	s.nbrRef = make([]vec.V3, n)
	s.rebuildNow(rebuildInitial)
	s.computeForces()
	return s, nil
}

// Close releases the persistent force-loop workers. It is safe to call on a
// serial simulation (which never starts any) and to call more than once;
// after Close the Sim must not be stepped again.
func (s *Sim) Close() { s.shards.close() }

// drawVelocities samples Maxwell–Boltzmann velocities and removes the net
// centre-of-mass momentum.
func (s *Sim) drawVelocities() {
	for i := range s.vel {
		sd := rng.MaxwellBoltzmannSpeed(s.top.Atoms[i].Mass, s.cfg.Temperature)
		s.vel[i] = vec.New(s.rand.Norm()*sd, s.rand.Norm()*sd, s.rand.Norm()*sd)
	}
	s.removeCOM()
	// Rescale to exactly the target temperature so short runs start on
	// the right isotherm.
	t := s.temperature()
	if t > 0 {
		f := math.Sqrt(s.cfg.Temperature / t)
		for i := range s.vel {
			s.vel[i] = s.vel[i].Scale(f)
		}
	}
}

// removeCOM subtracts the mass-weighted mean velocity.
func (s *Sim) removeCOM() {
	var p vec.V3
	m := 0.0
	for i, v := range s.vel {
		mi := s.top.Atoms[i].Mass
		p = p.Add(v.Scale(mi))
		m += mi
	}
	u := p.Scale(1 / m)
	for i := range s.vel {
		s.vel[i] = s.vel[i].Sub(u)
	}
}

// kinetic returns the kinetic energy in kJ/mol.
func (s *Sim) kinetic() float64 {
	k := 0.0
	for i, v := range s.vel {
		k += 0.5 * s.top.Atoms[i].Mass * v.Norm2()
	}
	return k
}

// temperature returns the instantaneous kinetic temperature in K.
func (s *Sim) temperature() float64 {
	dof := float64(s.top.DegreesOfFreedom())
	return 2 * s.kinetic() / (dof * topology.KB)
}

// Temperature returns the instantaneous kinetic temperature in K.
func (s *Sim) Temperature() float64 { return s.temperature() }

// Energies returns the current energy breakdown.
func (s *Sim) Energies() Energies {
	e := s.pot
	e.Kinetic = s.kinetic()
	return e
}

// Step advances the simulation by n timesteps.
func (s *Sim) Step(n int) error {
	for i := 0; i < n; i++ {
		if err := s.step1(); err != nil {
			return err
		}
	}
	return nil
}

// step1 performs one velocity-Verlet step with the configured thermostat.
func (s *Sim) step1() error {
	dt := s.cfg.Dt

	if s.cfg.Thermostat == NoseHoover {
		s.noseHooverHalfKick(dt)
	}

	// Half kick + drift.
	for i := range s.pos {
		invm := 1 / s.top.Atoms[i].Mass
		s.vel[i] = s.vel[i].MulAdd(0.5*dt*invm, s.frc[i])
		s.pos[i] = s.box.Wrap(s.pos[i].MulAdd(dt, s.vel[i]))
	}

	// Refresh neighbours (displacement-triggered, ceiling-bounded) and
	// forces.
	if err := s.maybeRebuild(); err != nil {
		return err
	}
	s.computeForces()

	// Second half kick.
	for i := range s.vel {
		invm := 1 / s.top.Atoms[i].Mass
		s.vel[i] = s.vel[i].MulAdd(0.5*dt*invm, s.frc[i])
	}

	switch s.cfg.Thermostat {
	case Berendsen:
		s.berendsenScale(dt)
	case Langevin:
		s.langevinKick(dt)
	case NoseHoover:
		s.noseHooverHalfKick(dt)
	}

	if s.cfg.COMEvery > 0 && s.step%int64(s.cfg.COMEvery) == 0 {
		s.removeCOM()
	}

	s.step++
	s.time += dt

	if m := loadMDMetrics(); m != nil {
		m.steps.Inc()
		s.tickMetricsWindow(m)
	}
	return nil
}

// Rebuild trigger reasons, also the metric label values.
const (
	rebuildInitial      = "initial"
	rebuildCeiling      = "ceiling"
	rebuildDisplacement = "displacement"
)

// maybeRebuild advances the rebuild cycle counter and regenerates the
// neighbour list when either trigger fires: the hard NeighborEvery ceiling,
// or (unless FixedCadenceRebuild) some atom having moved more than Skin/2
// since the last rebuild, the point at which the Verlet list can no longer
// be trusted. Both the rebuild decision and the divergence check run on the
// same cycle counter, so a non-finite position is always caught here and can
// never be handed to the cell grid (where a NaN coordinate would index out
// of range).
func (s *Sim) maybeRebuild() error {
	s.sinceRebuild++
	reason := ""
	switch {
	case s.sinceRebuild >= s.cfg.NeighborEvery:
		reason = rebuildCeiling
	case !s.cfg.FixedCadenceRebuild:
		half := 0.5 * s.cfg.Skin
		if s.maxDisplacement2() > half*half {
			reason = rebuildDisplacement
		}
	}
	if reason == "" {
		return nil
	}
	for i := range s.pos {
		if !s.pos[i].IsFinite() || !s.vel[i].IsFinite() {
			return fmt.Errorf("md: simulation diverged at step %d (atom %d)", s.step, i)
		}
	}
	s.rebuildNow(reason)
	return nil
}

// maxDisplacement2 returns the squared maximum minimum-image displacement of
// any atom since the last neighbour rebuild.
func (s *Sim) maxDisplacement2() float64 {
	maxd := 0.0
	for i, p := range s.pos {
		if d := s.box.MinImage(p, s.nbrRef[i]).Norm2(); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// rebuildNow unconditionally regenerates the neighbour list from current
// positions and resets the displacement reference.
func (s *Sim) rebuildNow(reason string) {
	if m := loadMDMetrics(); m != nil {
		switch reason {
		case rebuildCeiling:
			m.rebuildCeiling.Inc()
		case rebuildDisplacement:
			m.rebuildDisplacement.Inc()
		default:
			m.rebuildInitial.Inc()
		}
		if reason != rebuildInitial {
			m.rebuildInterval.Observe(float64(s.sinceRebuild))
		}
	}
	s.nbl.rebuildWith(s.pos, s.top, s.cfg.Shards)
	copy(s.nbrRef, s.pos)
	s.sinceRebuild = 0
	s.rebuilds++
}

// Rebuilds returns the number of neighbour-list rebuilds performed so far,
// including the initial build.
func (s *Sim) Rebuilds() int64 { return s.rebuilds }

// tickMetricsWindow recomputes the throughput gauges every metricsWindow
// steps: effective ns/day from wall time, and pair throughput from the
// force-loop seconds accumulated by computeForces.
func (s *Sim) tickMetricsWindow(m *mdMetrics) {
	s.winSteps++
	if s.winSteps < metricsWindow {
		return
	}
	now := time.Now()
	if !s.winWall.IsZero() {
		if wall := now.Sub(s.winWall).Seconds(); wall > 0 {
			simNs := (s.time - s.winSimTime) / 1000 // ps → ns
			m.nsPerDay.Set(simNs / (wall / 86400))
		}
		if s.winForceSec > 0 {
			m.pairRate.Set(float64(s.winPairs) / s.winForceSec)
		}
	}
	s.winWall = now
	s.winSimTime = s.time
	s.winSteps = 0
	s.winPairs = 0
	s.winForceSec = 0
}

// berendsenScale applies weak-coupling velocity rescaling.
func (s *Sim) berendsenScale(dt float64) {
	t := s.temperature()
	if t <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dt/s.cfg.TauT*(s.cfg.Temperature/t-1))
	for i := range s.vel {
		s.vel[i] = s.vel[i].Scale(lambda)
	}
}

// langevinKick applies the Ornstein–Uhlenbeck velocity update of the BAOAB
// splitting: v <- c1 v + c2 σ ξ with c1 = exp(-γ dt).
func (s *Sim) langevinKick(dt float64) {
	c1 := math.Exp(-s.cfg.Gamma * dt)
	c2 := math.Sqrt(1 - c1*c1)
	for i := range s.vel {
		sd := rng.MaxwellBoltzmannSpeed(s.top.Atoms[i].Mass, s.cfg.Temperature)
		noise := vec.New(s.rand.Norm(), s.rand.Norm(), s.rand.Norm()).Scale(c2 * sd)
		s.vel[i] = s.vel[i].Scale(c1).Add(noise)
	}
}

// noseHooverHalfKick integrates the heat-bath variable ξ for half a step and
// scales velocities accordingly.
func (s *Sim) noseHooverHalfKick(dt float64) {
	dof := float64(s.top.DegreesOfFreedom())
	kT := topology.KB * s.cfg.Temperature
	// d(xi)/dt = (2K - dof kT) / Q
	s.xiNH += 0.5 * dt * (2*s.kinetic() - dof*kT) / s.qNH
	f := math.Exp(-0.5 * dt * s.xiNH)
	for i := range s.vel {
		s.vel[i] = s.vel[i].Scale(f)
	}
}

// StepCount returns the number of completed steps.
func (s *Sim) StepCount() int64 { return s.step }

// Time returns the simulated time in ps.
func (s *Sim) Time() float64 { return s.time }

// Positions returns a copy of the current coordinates.
func (s *Sim) Positions() []vec.V3 { return append([]vec.V3(nil), s.pos...) }

// Velocities returns a copy of the current velocities.
func (s *Sim) Velocities() []vec.V3 { return append([]vec.V3(nil), s.vel...) }

// Box returns the simulation box.
func (s *Sim) Box() vec.Box { return s.box }

// NAtoms returns the number of atoms.
func (s *Sim) NAtoms() int { return len(s.pos) }
