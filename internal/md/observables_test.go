package md

import (
	"math"
	"testing"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

func TestRadiusOfGyrationKnown(t *testing.T) {
	// Two equal masses at ±d/2: Rg = d/2.
	top := &topology.Topology{
		LJTypes: []topology.LJType{{Sigma: 0.3, Epsilon: 0}},
		Atoms:   []topology.Atom{{Type: 0, Mass: 5}, {Type: 0, Mass: 5}},
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := &topology.System{
		Top: top,
		Pos: []vec.V3{vec.New(0, 0, 0), vec.New(1, 0, 0)},
		Box: vec.Box{},
	}
	cfg := nveConfig()
	cfg.Temperature = 0
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rg := s.RadiusOfGyration(); math.Abs(rg-0.5) > 1e-12 {
		t.Errorf("Rg = %v, want 0.5", rg)
	}
}

func TestPolymerCollapseShrinksRg(t *testing.T) {
	// A fully flexible chain (no angle stiffness) of strongly attractive
	// beads at low temperature collapses: Rg must decrease substantially.
	// The stock PolymerChain is semi-rigid; build a floppy variant here.
	const n = 24
	top := &topology.Topology{
		LJTypes: []topology.LJType{{Sigma: 0.47, Epsilon: 4}},
	}
	for i := 0; i < n; i++ {
		top.Atoms = append(top.Atoms, topology.Atom{Type: 0, Mass: 40})
	}
	for i := 0; i+1 < n; i++ {
		top.Bonds = append(top.Bonds, topology.Bond{I: i, J: i + 1, R0: 0.5, K: 8000})
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	pos := make([]vec.V3, n)
	for i := range pos {
		pos[i] = vec.New(0.5*float64(i), 0.02*float64(i%2), 0) // extended zig-zag
	}
	sys := &topology.System{Top: top, Pos: pos, Box: vec.Box{}}
	cfg := DefaultConfig()
	cfg.Thermostat = Langevin
	cfg.Temperature = 100 // kT well below the bead attraction ε
	cfg.Gamma = 0.5
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rg0 := s.RadiusOfGyration()
	if err := s.Step(50000); err != nil {
		t.Fatal(err)
	}
	rg1 := s.RadiusOfGyration()
	if rg1 >= rg0*0.7 {
		t.Errorf("chain did not collapse: Rg %v -> %v", rg0, rg1)
	}
}

func TestMSDTrackerFreeParticles(t *testing.T) {
	// An ideal gas (no interactions) at fixed velocity has ballistic MSD;
	// here we just verify the tracker's unwrapping: a particle crossing the
	// periodic boundary must keep accumulating displacement.
	top := &topology.Topology{
		LJTypes: []topology.LJType{{Sigma: 0.1, Epsilon: 0}},
		Atoms:   []topology.Atom{{Type: 0, Mass: 1}},
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := &topology.System{
		Top: top,
		Pos: []vec.V3{vec.New(2.5, 2.5, 2.5)},
		Box: vec.NewCubicBox(5),
	}
	cfg := DefaultConfig()
	cfg.Thermostat = NoThermostat
	cfg.Temperature = 0
	cfg.Cutoff = 1
	cfg.Skin = 0.1
	cfg.COMEvery = 0
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hand the particle a constant velocity of 1 nm/ps along x.
	s.vel[0] = vec.New(1, 0, 0)
	tr := NewMSDTracker(s)
	for k := 0; k < 40; k++ {
		if err := s.Step(250); err != nil { // 0.5 ps per sample
			t.Fatal(err)
		}
		tr.Sample(s)
	}
	times, msd := tr.Series()
	// After 20 ps at 1 nm/ps the displacement is 20 nm (4 box crossings):
	// MSD must be ~400 nm², impossible without unwrapping (box is 5 nm).
	last := msd[len(msd)-1]
	want := times[len(times)-1] * times[len(times)-1]
	if math.Abs(last-want) > 1e-6*want {
		t.Errorf("unwrapped MSD = %v, want %v", last, want)
	}
}

func TestDiffusionCoefficientLangevinGas(t *testing.T) {
	// For a non-interacting Langevin particle, D = kT/(m γ).
	top := &topology.Topology{
		LJTypes: []topology.LJType{{Sigma: 0.1, Epsilon: 0}},
	}
	const n = 200
	for i := 0; i < n; i++ {
		top.Atoms = append(top.Atoms, topology.Atom{Type: 0, Mass: 10})
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	pos := make([]vec.V3, n)
	for i := range pos {
		pos[i] = vec.New(float64(i%10), float64((i/10)%10), float64(i/100))
	}
	sys := &topology.System{Top: top, Pos: pos, Box: vec.NewCubicBox(12)}
	cfg := DefaultConfig()
	cfg.Thermostat = Langevin
	cfg.Temperature = 300
	cfg.Gamma = 2
	cfg.Cutoff = 1
	cfg.Skin = 0.1
	cfg.COMEvery = 0
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(2000); err != nil { // equilibrate the OU process
		t.Fatal(err)
	}
	tr := NewMSDTracker(s)
	for k := 0; k < 60; k++ {
		if err := s.Step(500); err != nil {
			t.Fatal(err)
		}
		tr.Sample(s)
	}
	d, err := tr.DiffusionCoefficient()
	if err != nil {
		t.Fatal(err)
	}
	want := topology.KB * 300 / (10 * 2) // kT/(mγ) nm²/ps
	if d < want*0.7 || d > want*1.3 {
		t.Errorf("D = %v nm²/ps, Einstein prediction %v", d, want)
	}
}

func TestDiffusionCoefficientErrors(t *testing.T) {
	sys := smallFluid(t, 64)
	s, err := New(sys, nveConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMSDTracker(s)
	if _, err := tr.DiffusionCoefficient(); err == nil {
		t.Error("diffusion fit with no samples should fail")
	}
}
