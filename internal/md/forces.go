package md

import (
	"math"
	"sync"
	"time"

	"copernicus/internal/vec"
)

// parallelMinWork is the total term count (pairs + bonded terms) below which
// the sharded path is not worth its synchronisation overhead.
const parallelMinWork = 256

// shardPool holds the per-shard force buffers and the persistent worker
// goroutines of the force loop — the "thread" level of the paper's
// hierarchy. Workers are spawned lazily on the first parallel force call and
// live for the Sim's lifetime, fed one closure per shard per phase through an
// unbuffered channel; this replaces the per-step goroutine fan-out, whose
// spawn cost dominated small-system steps.
type shardPool struct {
	n      int // shard count
	forces [][]vec.V3
	eLJ    []float64
	eCoul  []float64
	eBond  []float64
	eAngle []float64
	eDih   []float64

	work    chan func()
	started bool
	closed  bool
}

func newShardPool(shards, natoms int) *shardPool {
	p := &shardPool{n: shards}
	if shards <= 1 {
		return p
	}
	p.forces = make([][]vec.V3, shards)
	for i := range p.forces {
		p.forces[i] = make([]vec.V3, natoms)
	}
	p.eLJ = make([]float64, shards)
	p.eCoul = make([]float64, shards)
	p.eBond = make([]float64, shards)
	p.eAngle = make([]float64, shards)
	p.eDih = make([]float64, shards)
	return p
}

// run executes fn(w) for every shard w on the persistent workers and blocks
// until all have finished.
func (p *shardPool) run(fn func(w int)) {
	if !p.started {
		p.started = true
		p.work = make(chan func())
		for w := 0; w < p.n; w++ {
			go func() {
				for f := range p.work {
					f()
				}
			}()
		}
	}
	var wg sync.WaitGroup
	wg.Add(p.n)
	for w := 0; w < p.n; w++ {
		w := w
		p.work <- func() {
			defer wg.Done()
			fn(w)
		}
	}
	wg.Wait()
}

// close terminates the persistent workers. Safe to call multiple times and
// on a pool that never started.
func (p *shardPool) close() {
	if p.started && !p.closed {
		p.closed = true
		close(p.work)
	}
}

// chunkRange splits n items into parts even chunks and returns chunk w.
func chunkRange(n, parts, w int) (lo, hi int) {
	chunk := (n + parts - 1) / parts
	lo = w * chunk
	if lo > n {
		lo = n
	}
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// computeForces evaluates all force-field terms into s.frc and stores the
// potential-energy breakdown in s.pot.
//
// With Shards <= 1 (or a trivially small system) everything runs inline and
// serially. Otherwise every term class — the packed non-bonded pairs and the
// bonded bond/angle/dihedral lists — is partitioned across the shard pool
// into private force buffers, followed by a parallel reduction in which each
// shard sums a disjoint atom range across all buffers, replacing the old
// serial O(shards × natoms) fold.
func (s *Sim) computeForces() {
	m := loadMDMetrics()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}

	pl := &s.nbl.plist
	np := pl.Len()
	nb, na, nd := len(s.top.Bonds), len(s.top.Angles), len(s.top.Dihedrals)
	ns := s.shards.n
	s.pot = Energies{}

	if ns <= 1 || np+nb+na+nd < parallelMinWork {
		for i := range s.frc {
			s.frc[i] = vec.Zero
		}
		s.pot.LJ, s.pot.Coulomb = s.nonbondedRange(pl, 0, np, s.frc)
		s.pot.Bond = s.bondRange(0, nb, s.frc)
		s.pot.Angle = s.angleRange(0, na, s.frc)
		s.pot.Dihedral = s.dihedralRange(0, nd, s.frc)
	} else {
		p := s.shards
		p.run(func(w int) {
			buf := p.forces[w]
			for i := range buf {
				buf[i] = vec.Zero
			}
			lo, hi := chunkRange(np, ns, w)
			p.eLJ[w], p.eCoul[w] = s.nonbondedRange(pl, lo, hi, buf)
			lo, hi = chunkRange(nb, ns, w)
			p.eBond[w] = s.bondRange(lo, hi, buf)
			lo, hi = chunkRange(na, ns, w)
			p.eAngle[w] = s.angleRange(lo, hi, buf)
			lo, hi = chunkRange(nd, ns, w)
			p.eDih[w] = s.dihedralRange(lo, hi, buf)
		})
		n := len(s.frc)
		p.run(func(w int) {
			lo, hi := chunkRange(n, ns, w)
			for i := lo; i < hi; i++ {
				f := p.forces[0][i]
				for b := 1; b < ns; b++ {
					f = f.Add(p.forces[b][i])
				}
				s.frc[i] = f
			}
		})
		for w := 0; w < ns; w++ {
			s.pot.LJ += p.eLJ[w]
			s.pot.Coulomb += p.eCoul[w]
			s.pot.Bond += p.eBond[w]
			s.pot.Angle += p.eAngle[w]
			s.pot.Dihedral += p.eDih[w]
		}
	}

	if m != nil {
		dur := time.Since(t0).Seconds()
		m.forceSeconds.Observe(dur)
		m.pairsTotal.Add(uint64(np))
		s.winPairs += int64(np)
		s.winForceSec += dur
	}
}

// nonbondedRange computes LJ and reaction-field Coulomb interactions for the
// packed pair range [lo, hi), accumulating forces into out. It returns the
// LJ and Coulomb energy contributions. All per-pair parameters come baked
// into the pair list; the loop reads no topology tables.
//
// Reaction field: V(r) = f q_i q_j (1/r + k_rf r² − c_rf) for r < r_c, with
// k_rf = (ε−1)/((2ε+1) r_c³) and c_rf = 1/r_c + k_rf r_c², so the potential
// and field vanish smoothly at the cutoff — the paper's villin protocol.
func (s *Sim) nonbondedRange(pl *pairList, lo, hi int, out []vec.V3) (eLJ, eCoul float64) {
	rc := s.cfg.Cutoff
	rc2 := rc * rc
	var krf, crf float64
	if s.cfg.EpsilonRF > 0 {
		eps := s.cfg.EpsilonRF
		krf = (eps - 1) / ((2*eps + 1) * rc * rc * rc)
		crf = 1/rc + krf*rc2
	} else {
		crf = 1 / rc // plain shifted Coulomb
	}

	// Cut-and-shifted LJ: subtracting V(rc) per pair keeps the potential
	// continuous at the cutoff, which is what makes NVE energy conservation
	// possible with a plain cutoff.
	invRc2 := 1 / rc2
	invRc6 := invRc2 * invRc2 * invRc2

	pos := s.pos
	ai, aj := pl.ai, pl.aj
	c6s, c12s, qqfs := pl.c6, pl.c12, pl.qqf
	for k := lo; k < hi; k++ {
		i, j := ai[k], aj[k]
		d := s.box.MinImage(pos[i], pos[j])
		r2 := d.Norm2()
		if r2 > rc2 || r2 == 0 {
			continue
		}
		inv2 := 1 / r2
		inv6 := inv2 * inv2 * inv2

		c6, c12 := c6s[k], c12s[k]
		// F(r)·r̂/r = (12 c12 r⁻¹² − 6 c6 r⁻⁶) / r²
		fr := (12*c12*inv6*inv6 - 6*c6*inv6) * inv2
		eLJ += c12*inv6*inv6 - c6*inv6 - (c12*invRc6*invRc6 - c6*invRc6)

		if qqf := qqfs[k]; qqf != 0 {
			r := math.Sqrt(r2)
			eCoul += qqf * (1/r + krf*r2 - crf)
			fr += qqf * (1/(r2*r) - 2*krf)
		}

		f := d.Scale(fr)
		out[i] = out[i].Add(f)
		out[j] = out[j].Sub(f)
	}
	return eLJ, eCoul
}

// bondRange evaluates harmonic bonds V = ½K(r−r₀)² for the term range
// [lo, hi), accumulating forces into out and returning the energy.
func (s *Sim) bondRange(lo, hi int, out []vec.V3) float64 {
	e := 0.0
	for _, b := range s.top.Bonds[lo:hi] {
		d := s.box.MinImage(s.pos[b.I], s.pos[b.J])
		r := d.Norm()
		if r == 0 {
			continue
		}
		dr := r - b.R0
		e += 0.5 * b.K * dr * dr
		// F_I = −K (r−r₀) r̂
		f := d.Scale(-b.K * dr / r)
		out[b.I] = out[b.I].Add(f)
		out[b.J] = out[b.J].Sub(f)
	}
	return e
}

// angleRange evaluates harmonic angles V = ½K(θ−θ₀)² for the term range
// [lo, hi), accumulating forces into out and returning the energy.
func (s *Sim) angleRange(lo, hi int, out []vec.V3) float64 {
	e := 0.0
	for _, a := range s.top.Angles[lo:hi] {
		rij := s.box.MinImage(s.pos[a.I], s.pos[a.J])
		rkj := s.box.MinImage(s.pos[a.K], s.pos[a.J])
		nij, nkj := rij.Norm(), rkj.Norm()
		if nij == 0 || nkj == 0 {
			continue
		}
		cosT := rij.Dot(rkj) / (nij * nkj)
		cosT = math.Max(-1, math.Min(1, cosT))
		theta := math.Acos(cosT)
		dT := theta - a.Theta0
		e += 0.5 * a.KForce * dT * dT

		sinT := math.Sqrt(1 - cosT*cosT)
		if sinT < 1e-8 {
			continue // collinear: force direction undefined, energy still counted
		}
		// dV/dθ = K (θ−θ₀); chain rule through cos θ.
		c := -a.KForce * dT / sinT
		fi := rkj.Scale(1 / (nij * nkj)).Sub(rij.Scale(cosT / (nij * nij))).Scale(c)
		fk := rij.Scale(1 / (nij * nkj)).Sub(rkj.Scale(cosT / (nkj * nkj))).Scale(c)
		out[a.I] = out[a.I].Add(fi)
		out[a.K] = out[a.K].Add(fk)
		out[a.J] = out[a.J].Sub(fi.Add(fk))
	}
	return e
}

// dihedralRange evaluates periodic dihedrals V = K(1 + cos(nφ − φ₀)) for the
// term range [lo, hi) with the Gromacs dih_angle/do_dih_fup vector
// decomposition: with r_ij = r_i − r_j, r_kj = r_k − r_j, r_kl = r_k − r_l,
// m = r_ij × r_kj, n = r_kj × r_kl, the signed angle is
// φ = atan2((r_ij·n)|r_kj|, m·n), and
// F_i = −(dV/dφ)(|r_kj|/|m|²) m, F_l = (dV/dφ)(|r_kj|/|n|²) n,
// with F_j, F_k fixed by momentum and torque conservation.
func (s *Sim) dihedralRange(lo, hi int, out []vec.V3) float64 {
	e := 0.0
	for _, d := range s.top.Dihedrals[lo:hi] {
		rij := s.box.MinImage(s.pos[d.I], s.pos[d.J])
		rkj := s.box.MinImage(s.pos[d.K], s.pos[d.J])
		rkl := s.box.MinImage(s.pos[d.K], s.pos[d.L])

		m := rij.Cross(rkj)
		nvec := rkj.Cross(rkl)
		m2 := m.Norm2()
		n2 := nvec.Norm2()
		rkjn := rkj.Norm()
		if m2 < 1e-18 || n2 < 1e-18 || rkjn < 1e-10 {
			continue // collinear configuration: dihedral undefined
		}
		phi := math.Atan2(rij.Dot(nvec)*rkjn, m.Dot(nvec))

		nf := float64(d.Mult)
		e += d.KForce * (1 + math.Cos(nf*phi-d.Phi0))
		// dV/dφ = −K n sin(nφ − φ₀)
		dVdPhi := -d.KForce * nf * math.Sin(nf*phi-d.Phi0)

		fI := m.Scale(-dVdPhi * rkjn / m2)
		fL := nvec.Scale(dVdPhi * rkjn / n2)
		p := rij.Dot(rkj) / (rkjn * rkjn)
		q := rkl.Dot(rkj) / (rkjn * rkjn)
		sv := fI.Scale(p).Sub(fL.Scale(q))
		fJ := sv.Sub(fI)
		fK := fL.Neg().Sub(sv)

		out[d.I] = out[d.I].Add(fI)
		out[d.J] = out[d.J].Add(fJ)
		out[d.K] = out[d.K].Add(fK)
		out[d.L] = out[d.L].Add(fL)
	}
	return e
}

// Forces returns a copy of the current force array (for testing and the
// rank-decomposition driver).
func (s *Sim) Forces() []vec.V3 { return append([]vec.V3(nil), s.frc...) }
