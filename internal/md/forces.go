package md

import (
	"math"
	"sync"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// shardPool holds per-shard force buffers and the worker goroutine fan-out
// used by the non-bonded loop — the "thread" level of the paper's hierarchy.
type shardPool struct {
	n      int // shard count
	forces [][]vec.V3
	eLJ    []float64
	eCoul  []float64
}

func newShardPool(shards, natoms int) *shardPool {
	p := &shardPool{
		n:      shards,
		forces: make([][]vec.V3, shards),
		eLJ:    make([]float64, shards),
		eCoul:  make([]float64, shards),
	}
	for i := range p.forces {
		p.forces[i] = make([]vec.V3, natoms)
	}
	return p
}

// computeForces evaluates all force-field terms into s.frc and stores the
// potential-energy breakdown in s.pot.
func (s *Sim) computeForces() {
	for i := range s.frc {
		s.frc[i] = vec.Zero
	}
	s.pot = Energies{}
	s.nonbondedForces()
	s.bondForces()
	s.angleForces()
	s.dihedralForces()
}

// nonbondedForces evaluates LJ + reaction-field Coulomb over the pair list,
// sharded across goroutines with private force accumulators that are reduced
// at the end. With Shards == 1 it runs inline with no synchronisation.
func (s *Sim) nonbondedForces() {
	pairs := s.nbl.pairs
	if s.shards.n <= 1 || len(pairs) < 256 {
		lj, coul := s.nonbondedRange(pairs, s.frc)
		s.pot.LJ += lj
		s.pot.Coulomb += coul
		return
	}

	ns := s.shards.n
	chunk := (len(pairs) + ns - 1) / ns
	var wg sync.WaitGroup
	for w := 0; w < ns; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := s.shards.forces[w]
			for i := range buf {
				buf[i] = vec.Zero
			}
			s.shards.eLJ[w], s.shards.eCoul[w] = s.nonbondedRange(pairs[lo:hi], buf)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < ns; w++ {
		if w*chunk >= len(pairs) {
			break
		}
		buf := s.shards.forces[w]
		for i := range s.frc {
			s.frc[i] = s.frc[i].Add(buf[i])
		}
		s.pot.LJ += s.shards.eLJ[w]
		s.pot.Coulomb += s.shards.eCoul[w]
	}
}

// nonbondedRange computes LJ and reaction-field Coulomb interactions for a
// slice of the pair list, accumulating forces into out. It returns the LJ
// and Coulomb energy contributions.
//
// Reaction field: V(r) = f q_i q_j (1/r + k_rf r² − c_rf) for r < r_c, with
// k_rf = (ε−1)/((2ε+1) r_c³) and c_rf = 1/r_c + k_rf r_c², so the potential
// and field vanish smoothly at the cutoff — the paper's villin protocol.
func (s *Sim) nonbondedRange(pairs []pair, out []vec.V3) (eLJ, eCoul float64) {
	rc := s.cfg.Cutoff
	rc2 := rc * rc
	var krf, crf float64
	if s.cfg.EpsilonRF > 0 {
		eps := s.cfg.EpsilonRF
		krf = (eps - 1) / ((2*eps + 1) * rc * rc * rc)
		crf = 1/rc + krf*rc2
	} else {
		crf = 1 / rc // plain shifted Coulomb
	}

	// Cut-and-shifted LJ: subtracting V(rc) per pair keeps the potential
	// continuous at the cutoff, which is what makes NVE energy conservation
	// possible with a plain cutoff.
	invRc2 := 1 / rc2
	invRc6 := invRc2 * invRc2 * invRc2

	atoms := s.top.Atoms
	for _, p := range pairs {
		i, j := int(p.i), int(p.j)
		d := s.box.MinImage(s.pos[i], s.pos[j])
		r2 := d.Norm2()
		if r2 > rc2 || r2 == 0 {
			continue
		}
		inv2 := 1 / r2
		inv6 := inv2 * inv2 * inv2

		c6, c12 := s.top.LJPair(atoms[i].Type, atoms[j].Type)
		// F(r)·r̂/r = (12 c12 r⁻¹² − 6 c6 r⁻⁶) / r²
		fr := (12*c12*inv6*inv6 - 6*c6*inv6) * inv2
		eLJ += c12*inv6*inv6 - c6*inv6 - (c12*invRc6*invRc6 - c6*invRc6)

		qq := atoms[i].Charge * atoms[j].Charge
		if qq != 0 {
			r := math.Sqrt(r2)
			qqf := topology.CoulombConst * qq
			eCoul += qqf * (1/r + krf*r2 - crf)
			fr += qqf * (1/(r2*r) - 2*krf)
		}

		f := d.Scale(fr)
		out[i] = out[i].Add(f)
		out[j] = out[j].Sub(f)
	}
	return eLJ, eCoul
}

// bondForces evaluates harmonic bonds V = ½K(r−r₀)².
func (s *Sim) bondForces() {
	for _, b := range s.top.Bonds {
		d := s.box.MinImage(s.pos[b.I], s.pos[b.J])
		r := d.Norm()
		if r == 0 {
			continue
		}
		dr := r - b.R0
		s.pot.Bond += 0.5 * b.K * dr * dr
		// F_I = −K (r−r₀) r̂
		f := d.Scale(-b.K * dr / r)
		s.frc[b.I] = s.frc[b.I].Add(f)
		s.frc[b.J] = s.frc[b.J].Sub(f)
	}
}

// angleForces evaluates harmonic angles V = ½K(θ−θ₀)².
func (s *Sim) angleForces() {
	for _, a := range s.top.Angles {
		rij := s.box.MinImage(s.pos[a.I], s.pos[a.J])
		rkj := s.box.MinImage(s.pos[a.K], s.pos[a.J])
		nij, nkj := rij.Norm(), rkj.Norm()
		if nij == 0 || nkj == 0 {
			continue
		}
		cosT := rij.Dot(rkj) / (nij * nkj)
		cosT = math.Max(-1, math.Min(1, cosT))
		theta := math.Acos(cosT)
		dT := theta - a.Theta0
		s.pot.Angle += 0.5 * a.KForce * dT * dT

		sinT := math.Sqrt(1 - cosT*cosT)
		if sinT < 1e-8 {
			continue // collinear: force direction undefined, energy still counted
		}
		// dV/dθ = K (θ−θ₀); chain rule through cos θ.
		c := -a.KForce * dT / sinT
		fi := rkj.Scale(1 / (nij * nkj)).Sub(rij.Scale(cosT / (nij * nij))).Scale(c)
		fk := rij.Scale(1 / (nij * nkj)).Sub(rkj.Scale(cosT / (nkj * nkj))).Scale(c)
		s.frc[a.I] = s.frc[a.I].Add(fi)
		s.frc[a.K] = s.frc[a.K].Add(fk)
		s.frc[a.J] = s.frc[a.J].Sub(fi.Add(fk))
	}
}

// dihedralForces evaluates periodic dihedrals V = K(1 + cos(nφ − φ₀)) with
// the Gromacs dih_angle/do_dih_fup vector decomposition: with
// r_ij = r_i − r_j, r_kj = r_k − r_j, r_kl = r_k − r_l,
// m = r_ij × r_kj, n = r_kj × r_kl, the signed angle is
// φ = atan2((r_ij·n)|r_kj|, m·n), and
// F_i = −(dV/dφ)(|r_kj|/|m|²) m, F_l = (dV/dφ)(|r_kj|/|n|²) n,
// with F_j, F_k fixed by momentum and torque conservation.
func (s *Sim) dihedralForces() {
	for _, d := range s.top.Dihedrals {
		rij := s.box.MinImage(s.pos[d.I], s.pos[d.J])
		rkj := s.box.MinImage(s.pos[d.K], s.pos[d.J])
		rkl := s.box.MinImage(s.pos[d.K], s.pos[d.L])

		m := rij.Cross(rkj)
		nvec := rkj.Cross(rkl)
		m2 := m.Norm2()
		n2 := nvec.Norm2()
		rkjn := rkj.Norm()
		if m2 < 1e-18 || n2 < 1e-18 || rkjn < 1e-10 {
			continue // collinear configuration: dihedral undefined
		}
		phi := math.Atan2(rij.Dot(nvec)*rkjn, m.Dot(nvec))

		nf := float64(d.Mult)
		s.pot.Dihedral += d.KForce * (1 + math.Cos(nf*phi-d.Phi0))
		// dV/dφ = −K n sin(nφ − φ₀)
		dVdPhi := -d.KForce * nf * math.Sin(nf*phi-d.Phi0)

		fI := m.Scale(-dVdPhi * rkjn / m2)
		fL := nvec.Scale(dVdPhi * rkjn / n2)
		p := rij.Dot(rkj) / (rkjn * rkjn)
		q := rkl.Dot(rkj) / (rkjn * rkjn)
		sv := fI.Scale(p).Sub(fL.Scale(q))
		fJ := sv.Sub(fI)
		fK := fL.Neg().Sub(sv)

		s.frc[d.I] = s.frc[d.I].Add(fI)
		s.frc[d.J] = s.frc[d.J].Add(fJ)
		s.frc[d.K] = s.frc[d.K].Add(fK)
		s.frc[d.L] = s.frc[d.L].Add(fL)
	}
}

// Forces returns a copy of the current force array (for testing and the
// rank-decomposition driver).
func (s *Sim) Forces() []vec.V3 { return append([]vec.V3(nil), s.frc...) }
