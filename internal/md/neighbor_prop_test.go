package md

import (
	"math"
	"testing"

	"copernicus/internal/rng"
	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// pairKey is a canonical (i<j) pair identity for set comparison.
type pairKey struct{ i, j int32 }

func pairSetOf(ps []pair) map[pairKey]bool {
	set := make(map[pairKey]bool, len(ps))
	for _, p := range ps {
		i, j := p.i, p.j
		if i > j {
			i, j = j, i
		}
		set[pairKey{i, j}] = true
	}
	return set
}

// TestPairListPropertyRandomBoxes checks, across randomly drawn periodic
// systems and listing radii, that the parallel cell-grid rebuild produces
// exactly the O(n²) reference pair set for every worker count, that the packed
// list is grouped by ascending i, and that the baked parameters match the
// topology tables.
func TestPairListPropertyRandomBoxes(t *testing.T) {
	r := rng.New(42)
	for iter := 0; iter < 12; iter++ {
		var sys *topology.System
		var err error
		if iter%4 == 3 {
			// Water boxes cover exclusions and charges.
			sys, err = topology.WaterBox(27+r.Intn(64), r.Uint64())
		} else {
			sys, err = topology.LJFluid(64+r.Intn(200), 5+5*r.Float64(), r.Uint64())
		}
		if err != nil {
			t.Fatalf("iter %d: building system: %v", iter, err)
		}
		// Shake atoms off the builder's regular arrangement.
		for i := range sys.Pos {
			d := vec.New(r.Norm(), r.Norm(), r.Norm()).Scale(0.05)
			sys.Pos[i] = sys.Box.Wrap(sys.Pos[i].Add(d))
		}
		// Draw a listing radius, clamped so the cell grid fits (≥3 cells per
		// axis) — otherwise both paths would take the same O(n²) fallback and
		// the comparison would be vacuous.
		rlist := 0.55 + 0.5*r.Float64()
		if max := sys.Box.L.X / 3; rlist > max {
			rlist = max
		}

		ref := newNeighborList(sys.Box, rlist)
		ref.cacheAtomParams(sys.Top)
		ref.rebuildAllPairs(sys.Pos, sys.Top)
		want := pairSetOf(ref.pairIJ())

		for _, workers := range []int{1, 2, 5} {
			nl := newNeighborList(sys.Box, rlist)
			nl.rebuildWith(sys.Pos, sys.Top, workers)
			got := pairSetOf(nl.pairIJ())
			if len(got) != nl.plist.Len() {
				t.Fatalf("iter %d workers %d: duplicate pairs in packed list", iter, workers)
			}
			if len(got) != len(want) {
				t.Fatalf("iter %d workers %d: %d pairs from cell grid, %d from O(n²)",
					iter, workers, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("iter %d workers %d: cell grid missing pair (%d,%d)", iter, workers, p.i, p.j)
				}
			}
			pl := &nl.plist
			for k := 0; k < pl.Len(); k++ {
				if k > 0 && pl.ai[k] < pl.ai[k-1] {
					t.Fatalf("iter %d workers %d: packed list not grouped by i at entry %d", iter, workers, k)
				}
				i, j := int(pl.ai[k]), int(pl.aj[k])
				c6, c12 := sys.Top.LJPair(sys.Top.Atoms[i].Type, sys.Top.Atoms[j].Type)
				qqf := topology.CoulombConst * sys.Top.Atoms[i].Charge * sys.Top.Atoms[j].Charge
				if pl.c6[k] != c6 || pl.c12[k] != c12 || pl.qqf[k] != qqf {
					t.Fatalf("iter %d workers %d: baked params for pair (%d,%d) = (%g,%g,%g), want (%g,%g,%g)",
						iter, workers, i, j, pl.c6[k], pl.c12[k], pl.qqf[k], c6, c12, qqf)
				}
			}
		}
	}
}

// TestNVEDriftRebuildPolicies is the energy-conservation regression for the
// displacement-triggered rebuild policy: over 10k NVE steps the drift with
// displacement-triggered rebuilds (a high ceiling, so the skin criterion is
// the active trigger) must stay within 2× of the fixed-cadence baseline —
// while performing far fewer rebuilds.
func TestNVEDriftRebuildPolicies(t *testing.T) {
	run := func(mut func(*Config)) (drift float64, rebuilds int64) {
		t.Helper()
		sys := smallFluid(t, 64)
		cfg := nveConfig()
		cfg.Dt = 0.001
		mut(&cfg)
		s, err := New(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Step(200); err != nil {
			t.Fatal(err)
		}
		e0 := s.Energies().Total()
		if err := s.Step(10000); err != nil {
			t.Fatal(err)
		}
		e1 := s.Energies().Total()
		return math.Abs(e1-e0) / math.Abs(e0), s.Rebuilds()
	}

	driftFixed, rebuildsFixed := run(func(c *Config) {
		c.FixedCadenceRebuild = true
		c.NeighborEvery = 10
	})
	driftDisp, rebuildsDisp := run(func(c *Config) {
		c.NeighborEvery = 200 // ceiling only; displacement is the live trigger
	})

	t.Logf("fixed cadence: drift %.3g%% over %d rebuilds; displacement: drift %.3g%% over %d rebuilds",
		driftFixed*100, rebuildsFixed, driftDisp*100, rebuildsDisp)
	if driftDisp > 2*driftFixed+1e-3 {
		t.Errorf("displacement-policy drift %.3g exceeds 2× fixed-cadence drift %.3g", driftDisp, driftFixed)
	}
	if rebuildsDisp >= rebuildsFixed/2 {
		t.Errorf("displacement policy rebuilt %d times vs %d fixed-cadence — trigger not saving rebuilds",
			rebuildsDisp, rebuildsFixed)
	}
}

// TestShardedForcesMatchSerialWaterBox extends the serial/sharded equivalence
// check to a system with every interaction type live — LJ, Coulomb, bonds and
// angles — so the bonded shard partition and the parallel reduction are both
// exercised above the parallelMinWork threshold.
func TestShardedForcesMatchSerialWaterBox(t *testing.T) {
	build := func(shards int) *Sim {
		t.Helper()
		sys, err := topology.WaterBox(300, 9)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Shards = shards
		s, err := New(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	serial := build(1)
	sharded := build(4)
	fs, fp := serial.Forces(), sharded.Forces()
	for i := range fs {
		if fs[i].Sub(fp[i]).Norm() > 1e-9 {
			t.Fatalf("atom %d force mismatch: serial %v sharded %v", i, fs[i], fp[i])
		}
	}
	es, ep := serial.Energies(), sharded.Energies()
	for _, pair := range [][2]float64{
		{es.LJ, ep.LJ}, {es.Coulomb, ep.Coulomb},
		{es.Bond, ep.Bond}, {es.Angle, ep.Angle}, {es.Dihedral, ep.Dihedral},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9*(1+math.Abs(pair[0])) {
			t.Fatalf("energy term mismatch: serial %v sharded %v", es, ep)
		}
	}
}
