package md

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// checkpointVersion guards against decoding checkpoints from incompatible
// engine revisions; bump on any change to checkpointData.
// v2: added the neighbour-rebuild reference state (NbrRef, SinceRebuild) so
// displacement-triggered rebuilds resume on the exact schedule of the
// original run.
const checkpointVersion = 2

// checkpointData is the serialised simulation state. Positions and
// velocities plus the RNG and thermostat state are sufficient to continue
// bit-for-bit; forces are recomputed on resume. NbrRef carries the positions
// at the last neighbour rebuild: resuming rebuilds the pair list from those
// (not the current) coordinates, so the resumed worker's list — and with it
// every subsequent displacement trigger — is bitwise identical to the
// original's.
type checkpointData struct {
	Version      int
	Step         int64
	Time         float64
	Pos          []vec.V3
	Vel          []vec.V3
	Rng          []byte
	XiNH         float64
	NbrRef       []vec.V3
	SinceRebuild int
}

// Checkpoint serialises the full dynamic state of the simulation. The
// topology and Config are deliberately not included: they travel with the
// command definition, so a different worker can resume the run from just
// (command spec, checkpoint) — the hand-off described in the paper's §2.3.
func (s *Sim) Checkpoint() ([]byte, error) {
	rstate, err := s.rand.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("md: serialising rng: %w", err)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	err = enc.Encode(checkpointData{
		Version:      checkpointVersion,
		Step:         s.step,
		Time:         s.time,
		Pos:          s.pos,
		Vel:          s.vel,
		Rng:          rstate,
		XiNH:         s.xiNH,
		NbrRef:       s.nbrRef,
		SinceRebuild: s.sinceRebuild,
	})
	if err != nil {
		return nil, fmt.Errorf("md: encoding checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// Resume reconstructs a simulation from a system definition, a config, and a
// checkpoint previously produced by Checkpoint. The system's initial
// positions are ignored in favour of the checkpointed state.
func Resume(sys *topology.System, cfg Config, checkpoint []byte) (*Sim, error) {
	var data checkpointData
	if err := gob.NewDecoder(bytes.NewReader(checkpoint)).Decode(&data); err != nil {
		return nil, fmt.Errorf("md: decoding checkpoint: %w", err)
	}
	if data.Version != checkpointVersion {
		return nil, fmt.Errorf("md: checkpoint version %d, engine expects %d", data.Version, checkpointVersion)
	}
	s, err := New(sys, cfg)
	if err != nil {
		return nil, err
	}
	if len(data.Pos) != len(s.pos) || len(data.Vel) != len(s.vel) || len(data.NbrRef) != len(s.pos) {
		return nil, fmt.Errorf("md: checkpoint has %d atoms, system has %d", len(data.Pos), len(s.pos))
	}
	copy(s.pos, data.Pos)
	copy(s.vel, data.Vel)
	s.step = data.Step
	s.time = data.Time
	s.xiNH = data.XiNH
	if err := s.rand.UnmarshalBinary(data.Rng); err != nil {
		return nil, fmt.Errorf("md: restoring rng: %w", err)
	}
	// Rebuild the pair list from the checkpointed rebuild-reference
	// positions, then evaluate forces at the current ones — exactly the
	// Verlet-list state the original run was in when it checkpointed.
	s.nbl.rebuildWith(data.NbrRef, s.top, s.cfg.Shards)
	copy(s.nbrRef, data.NbrRef)
	s.sinceRebuild = data.SinceRebuild
	s.computeForces()
	return s, nil
}
