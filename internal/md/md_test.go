package md

import (
	"math"
	"testing"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// smallFluid returns a small periodic LJ system for engine tests.
func smallFluid(t testing.TB, n int) *topology.System {
	t.Helper()
	sys, err := topology.LJFluid(n, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func nveConfig() Config {
	cfg := DefaultConfig()
	cfg.Thermostat = NoThermostat
	cfg.Temperature = 120 // initial velocities only
	cfg.Dt = 0.002
	cfg.Cutoff = 0.7
	cfg.Skin = 0.1
	cfg.COMEvery = 0
	return cfg
}

func TestConfigValidation(t *testing.T) {
	sys := smallFluid(t, 32)
	bad := []func(*Config){
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Cutoff = -1 },
		func(c *Config) { c.Skin = -0.1 },
		func(c *Config) { c.Thermostat = Berendsen; c.Temperature = 0 },
		func(c *Config) { c.Thermostat = Berendsen; c.TauT = 0 },
		func(c *Config) { c.Thermostat = NoseHoover; c.TauT = 0 },
		func(c *Config) { c.Thermostat = Langevin; c.Gamma = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(sys, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBoxTooSmallRejected(t *testing.T) {
	sys, err := topology.LJFluid(8, 1000, 1) // tiny, dense box
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	if _, err := New(sys, cfg); err == nil {
		t.Error("box smaller than 2(rc+skin) should be rejected")
	}
}

func TestPositionCountMismatch(t *testing.T) {
	sys := smallFluid(t, 64)
	sys.Pos = sys.Pos[:10]
	if _, err := New(sys, DefaultConfig()); err == nil {
		t.Error("mismatched position count should be rejected")
	}
}

func TestInitialTemperature(t *testing.T) {
	sys := smallFluid(t, 125)
	cfg := nveConfig()
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Temperature()-120) > 1 {
		t.Errorf("initial temperature = %v, want 120", s.Temperature())
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := nveConfig()
	cfg.Dt = 0.001
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Short equilibration to move off the lattice.
	if err := s.Step(100); err != nil {
		t.Fatal(err)
	}
	e0 := s.Energies().Total()
	if err := s.Step(1000); err != nil {
		t.Fatal(err)
	}
	e1 := s.Energies().Total()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Errorf("NVE energy drift %.3g%% over 1000 steps (E %v -> %v)", drift*100, e0, e1)
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	sys := smallFluid(t, 64)
	s, err := New(sys, nveConfig())
	if err != nil {
		t.Fatal(err)
	}
	var net vec.V3
	for _, f := range s.Forces() {
		net = net.Add(f)
	}
	if net.Norm() > 1e-8 {
		t.Errorf("net force = %v, want ~0", net)
	}
}

func TestNetForceZeroWithAllTerms(t *testing.T) {
	sys, err := topology.WaterBox(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cutoff = 0.45
	cfg.Skin = 0.05
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var net vec.V3
	for _, f := range s.Forces() {
		net = net.Add(f)
	}
	if net.Norm() > 1e-6 {
		t.Errorf("net force with bonded terms = %v", net)
	}
}

// numericalForceCheck compares analytic forces against central differences
// of the potential energy for a handful of atoms.
func numericalForceCheck(t *testing.T, s *Sim, tol float64) {
	t.Helper()
	const h = 1e-6
	for _, idx := range []int{0, 1, s.NAtoms() / 2, s.NAtoms() - 1} {
		analytic := s.frc[idx]
		var numeric vec.V3
		for dim := 0; dim < 3; dim++ {
			orig := s.pos[idx]
			bump := func(sign float64) float64 {
				p := orig
				switch dim {
				case 0:
					p.X += sign * h
				case 1:
					p.Y += sign * h
				case 2:
					p.Z += sign * h
				}
				s.pos[idx] = p
				s.nbl.rebuild(s.pos, s.top)
				s.computeForces()
				return s.pot.LJ + s.pot.Coulomb + s.pot.Bond + s.pot.Angle + s.pot.Dihedral
			}
			ePlus := bump(1)
			eMinus := bump(-1)
			g := -(ePlus - eMinus) / (2 * h)
			switch dim {
			case 0:
				numeric.X = g
			case 1:
				numeric.Y = g
			case 2:
				numeric.Z = g
			}
			s.pos[idx] = orig
		}
		s.nbl.rebuild(s.pos, s.top)
		s.computeForces()
		scale := 1 + analytic.Norm()
		if analytic.Sub(numeric).Norm() > tol*scale {
			t.Errorf("atom %d force mismatch: analytic %v numeric %v", idx, analytic, numeric)
		}
	}
}

func TestForcesMatchNumericalGradientLJ(t *testing.T) {
	sys := smallFluid(t, 64)
	s, err := New(sys, nveConfig())
	if err != nil {
		t.Fatal(err)
	}
	numericalForceCheck(t, s, 1e-4)
}

func TestForcesMatchNumericalGradientWater(t *testing.T) {
	sys, err := topology.WaterBox(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cutoff = 0.45
	cfg.Skin = 0.05
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	numericalForceCheck(t, s, 1e-3)
}

func TestForcesMatchNumericalGradientDihedral(t *testing.T) {
	// A four-atom chain with a single dihedral, no periodicity.
	top := &topology.Topology{
		LJTypes: []topology.LJType{{Sigma: 0.3, Epsilon: 0}},
		Atoms: []topology.Atom{
			{Type: 0, Mass: 10}, {Type: 0, Mass: 10}, {Type: 0, Mass: 10}, {Type: 0, Mass: 10},
		},
		Bonds: []topology.Bond{
			{I: 0, J: 1, R0: 0.15, K: 1000}, {I: 1, J: 2, R0: 0.15, K: 1000}, {I: 2, J: 3, R0: 0.15, K: 1000},
		},
		Dihedrals: []topology.Dihedral{{I: 0, J: 1, K: 2, L: 3, Phi0: 0.5, KForce: 20, Mult: 3}},
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := &topology.System{
		Top: top,
		Pos: []vec.V3{
			vec.New(0, 0.1, 0),
			vec.New(0.15, 0, 0),
			vec.New(0.3, 0.02, 0.01),
			vec.New(0.42, 0.1, 0.09),
		},
		Box: vec.Box{},
	}
	cfg := nveConfig()
	cfg.Temperature = 0
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	numericalForceCheck(t, s, 1e-4)
}

func TestBerendsenReachesTarget(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := DefaultConfig()
	cfg.Thermostat = Berendsen
	cfg.Temperature = 120
	cfg.TauT = 0.1
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb far off target, then let the thermostat pull it back.
	for i := range s.vel {
		s.vel[i] = s.vel[i].Scale(2)
	}
	if err := s.Step(2000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Temperature()-120) > 25 {
		t.Errorf("Berendsen temperature = %v, want ~120", s.Temperature())
	}
}

func TestLangevinSamplesTargetTemperature(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := DefaultConfig()
	cfg.Thermostat = Langevin
	cfg.Temperature = 120
	cfg.Gamma = 5
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(500); err != nil {
		t.Fatal(err)
	}
	// Average over a window.
	avg := 0.0
	const samples = 50
	for k := 0; k < samples; k++ {
		if err := s.Step(20); err != nil {
			t.Fatal(err)
		}
		avg += s.Temperature()
	}
	avg /= samples
	if math.Abs(avg-120) > 15 {
		t.Errorf("Langevin mean temperature = %v, want ~120", avg)
	}
}

func TestNoseHooverOscillatesAroundTarget(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := DefaultConfig()
	cfg.Thermostat = NoseHoover
	cfg.Temperature = 120
	cfg.TauT = 0.5
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(1000); err != nil {
		t.Fatal(err)
	}
	avg := 0.0
	const samples = 100
	for k := 0; k < samples; k++ {
		if err := s.Step(10); err != nil {
			t.Fatal(err)
		}
		avg += s.Temperature()
	}
	avg /= samples
	if math.Abs(avg-120) > 20 {
		t.Errorf("Nose-Hoover mean temperature = %v, want ~120", avg)
	}
}

func TestDeterminism(t *testing.T) {
	sys := smallFluid(t, 64)
	run := func() []vec.V3 {
		s, err := New(sys, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Step(200); err != nil {
			t.Fatal(err)
		}
		return s.Positions()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverged at atom %d", i)
		}
	}
}

func TestShardedForcesMatchSerial(t *testing.T) {
	sys := smallFluid(t, 125)
	cfgSerial := nveConfig()
	cfgSharded := nveConfig()
	cfgSharded.Shards = 4
	s1, err := New(sys, cfgSerial)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(sys, cfgSharded)
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := s1.Forces(), s2.Forces()
	for i := range f1 {
		if f1[i].Sub(f2[i]).Norm() > 1e-9*(1+f1[i].Norm()) {
			t.Fatalf("sharded force differs at atom %d: %v vs %v", i, f1[i], f2[i])
		}
	}
	e1, e2 := s1.Energies(), s2.Energies()
	if math.Abs(e1.LJ-e2.LJ) > 1e-9*(1+math.Abs(e1.LJ)) {
		t.Errorf("sharded LJ energy %v != serial %v", e2.LJ, e1.LJ)
	}
}

func TestNeighborCellVsAllPairs(t *testing.T) {
	// Same system, forced down each neighbour path, must agree.
	sys := smallFluid(t, 216)
	s, err := New(sys, nveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !s.nbl.periodic() || !s.nbl.gridFits() {
		t.Skip("system too small for the cell grid; nothing to compare")
	}
	cellPairs := pairSet(s.nbl.pairIJ())
	nl2 := newNeighborList(s.box, s.cfg.Cutoff+s.cfg.Skin)
	nl2.cacheAtomParams(s.top)
	nl2.rebuildAllPairs(s.Positions(), s.top)
	allPairs := pairSet(nl2.pairIJ())
	if len(cellPairs) != len(allPairs) {
		t.Fatalf("cell list found %d pairs, all-pairs %d", len(cellPairs), len(allPairs))
	}
	for p := range allPairs {
		if !cellPairs[p] {
			t.Fatalf("cell list missing pair %v", p)
		}
	}
}

func pairSet(ps []pair) map[pair]bool {
	m := make(map[pair]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func TestCheckpointRoundTrip(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := DefaultConfig()
	cfg.Temperature = 120
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(100); err != nil {
		t.Fatal(err)
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Continue the original.
	if err := s.Step(100); err != nil {
		t.Fatal(err)
	}
	// Resume the checkpoint on a "different worker" and run the same steps.
	s2, err := Resume(sys, cfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if s2.StepCount() != 100 {
		t.Fatalf("resumed at step %d, want 100", s2.StepCount())
	}
	if err := s2.Step(100); err != nil {
		t.Fatal(err)
	}
	a, b := s.Positions(), s2.Positions()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resumed trajectory diverged at atom %d: %v vs %v", i, a[i], b[i])
		}
	}
	if s.Time() != s2.Time() {
		t.Errorf("times differ: %v vs %v", s.Time(), s2.Time())
	}
}

func TestCheckpointErrors(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := nveConfig()
	if _, err := Resume(sys, cfg, []byte("garbage")); err == nil {
		t.Error("garbage checkpoint should fail")
	}
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	other := smallFluid(t, 125)
	if _, err := Resume(other, cfg, ckpt); err == nil {
		t.Error("checkpoint with mismatched atom count should fail")
	}
}

func TestRunRanksMatchesSerial(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := nveConfig()
	cfg.Temperature = 120

	serial, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Step(50); err != nil {
		t.Fatal(err)
	}

	parallel, stats, err := RunRanks(sys, cfg, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Positions(), parallel.Positions()
	for i := range a {
		if a[i].Sub(b[i]).Norm() > 1e-6 {
			t.Fatalf("rank run diverged at atom %d: %v vs %v", i, a[i], b[i])
		}
	}
	if stats.BytesSent == 0 || stats.MessagesSent == 0 {
		t.Error("rank run reported no communication")
	}
	if stats.Ranks != 4 || stats.Steps != 50 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRunRanksCommunicationScales(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := nveConfig()
	_, s2, err := RunRanks(sys, cfg, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, s8, err := RunRanks(sys, cfg, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s8.BytesPerStep <= s2.BytesPerStep {
		t.Errorf("more ranks should move more bytes/step: 2 ranks %v, 8 ranks %v",
			s2.BytesPerStep, s8.BytesPerStep)
	}
}

func TestRunRanksRejectsLangevin(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := DefaultConfig()
	cfg.Thermostat = Langevin
	if _, _, err := RunRanks(sys, cfg, 2, 1); err == nil {
		t.Error("langevin under rank decomposition should be rejected")
	}
}

func TestRunRanksSingleRank(t *testing.T) {
	sys := smallFluid(t, 64)
	cfg := nveConfig()
	_, stats, err := RunRanks(sys, cfg, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesSent != 0 {
		t.Errorf("single rank should not communicate, sent %d bytes", stats.BytesSent)
	}
}

func TestThermostatString(t *testing.T) {
	names := map[ThermostatKind]string{
		NoThermostat: "none", Berendsen: "berendsen",
		Langevin: "langevin", NoseHoover: "nose-hoover",
		ThermostatKind(99): "thermostat(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestPolymerInVacuoRuns(t *testing.T) {
	sys, err := topology.PolymerChain(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Thermostat = Langevin
	cfg.Temperature = 300
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(500); err != nil {
		t.Fatal(err)
	}
	// Bond integrity: no bond should have stretched absurdly.
	pos := s.Positions()
	for _, b := range sys.Top.Bonds {
		d := pos[b.I].Dist(pos[b.J])
		if d > 3*b.R0 {
			t.Fatalf("bond %d-%d stretched to %v nm", b.I, b.J, d)
		}
	}
}

func BenchmarkStepLJ256(b *testing.B) {
	sys, err := topology.LJFluid(256, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(sys, nveConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepWater81(b *testing.B) {
	sys, err := topology.WaterBox(81, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cutoff = 0.45
	cfg.Skin = 0.05
	s, err := New(sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeptideNVEAndNumericalForces(t *testing.T) {
	// The peptide exercises every bonded term (bonds, angles, dihedrals)
	// plus charges in one built system; its forces must match the numerical
	// gradient and its NVE energy must be stable.
	sys, err := topology.Peptide(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nveConfig()
	cfg.Temperature = 100
	cfg.Dt = 0.0005
	s, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	numericalForceCheck(t, s, 2e-3)
	if err := s.Step(200); err != nil {
		t.Fatal(err)
	}
	e0 := s.Energies().Total()
	if err := s.Step(2000); err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(s.Energies().Total()-e0) / (math.Abs(e0) + 1)
	if drift > 0.03 {
		t.Errorf("peptide NVE drift %.3g%%", drift*100)
	}
}
