package md

import (
	"fmt"
	"math"

	"copernicus/internal/vec"
)

// RadiusOfGyration returns the mass-weighted radius of gyration of the
// current configuration in nm — the standard compactness observable for the
// polymer workloads.
func (s *Sim) RadiusOfGyration() float64 {
	var com vec.V3
	m := 0.0
	for i, p := range s.pos {
		mi := s.top.Atoms[i].Mass
		com = com.Add(p.Scale(mi))
		m += mi
	}
	com = com.Scale(1 / m)
	rg2 := 0.0
	for i, p := range s.pos {
		rg2 += s.top.Atoms[i].Mass * p.Sub(com).Norm2()
	}
	return math.Sqrt(rg2 / m)
}

// MSDTracker accumulates mean-squared displacement over unwrapped
// coordinates, so periodic wrapping does not truncate diffusion paths. The
// self-diffusion coefficient follows from the Einstein relation
// D = MSD/(6t).
type MSDTracker struct {
	box      vec.Box
	origin   []vec.V3 // unwrapped start positions
	prev     []vec.V3 // previous wrapped positions
	unwrap   []vec.V3 // accumulated unwrapped positions
	times    []float64
	msd      []float64
	timeZero float64
}

// NewMSDTracker starts tracking from the simulation's current state.
func NewMSDTracker(s *Sim) *MSDTracker {
	pos := s.Positions()
	t := &MSDTracker{
		box:      s.Box(),
		origin:   append([]vec.V3(nil), pos...),
		prev:     append([]vec.V3(nil), pos...),
		unwrap:   append([]vec.V3(nil), pos...),
		timeZero: s.Time(),
	}
	return t
}

// Sample records the MSD at the simulation's current time. Calls must be
// frequent enough that no particle moves more than half a box length
// between samples (guaranteed in practice by any reasonable interval).
func (t *MSDTracker) Sample(s *Sim) {
	pos := s.Positions()
	var acc float64
	for i, p := range pos {
		// Minimum-image displacement since the previous sample extends the
		// unwrapped path.
		d := t.box.MinImage(p, t.prev[i])
		t.unwrap[i] = t.unwrap[i].Add(d)
		t.prev[i] = p
		acc += t.unwrap[i].Sub(t.origin[i]).Norm2()
	}
	t.times = append(t.times, s.Time()-t.timeZero)
	t.msd = append(t.msd, acc/float64(len(pos)))
}

// Series returns the sampled (time, MSD) pairs in (ps, nm²).
func (t *MSDTracker) Series() (times, msd []float64) { return t.times, t.msd }

// DiffusionCoefficient fits D from the Einstein relation over the second
// half of the samples (the first half is ballistic/transient), in nm²/ps.
// It returns an error with fewer than four samples.
func (t *MSDTracker) DiffusionCoefficient() (float64, error) {
	n := len(t.times)
	if n < 4 {
		return 0, fmt.Errorf("md: need at least 4 MSD samples, have %d", n)
	}
	// Least-squares slope through the second-half points, constrained
	// through the local mean rather than the origin.
	lo := n / 2
	var st, sm, stt, stm float64
	cnt := float64(n - lo)
	for i := lo; i < n; i++ {
		st += t.times[i]
		sm += t.msd[i]
		stt += t.times[i] * t.times[i]
		stm += t.times[i] * t.msd[i]
	}
	den := stt - st*st/cnt
	if den <= 0 {
		return 0, fmt.Errorf("md: degenerate time window for diffusion fit")
	}
	slope := (stm - st*sm/cnt) / den
	return slope / 6, nil
}
