package md

import (
	"fmt"
	"sync"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// RankStats reports the communication volume of a rank-decomposed run — the
// numbers behind the Fig 6 bandwidth hierarchy.
type RankStats struct {
	Ranks         int
	Steps         int
	BytesSent     int64 // total payload bytes moved between ranks
	MessagesSent  int64
	BytesPerStep  float64
	FinalEnergies Energies
}

// rankMsg is one message on the simulated interconnect. Payload sizes are
// accounted as 24 bytes per vec.V3 (three float64), matching what a real MPI
// transport would move.
type rankMsg struct {
	from    int
	vectors []vec.V3
	lo, hi  int // atom index range the payload covers
}

const bytesPerV3 = 24

// RunRanks executes a force-decomposed parallel simulation with nRanks
// goroutine "ranks" exchanging data exclusively through channels — the
// explicit message-passing ("MPI") level of the paper's parallel hierarchy.
//
// Each step performs the two collectives a force-decomposed MD code needs:
//
//  1. all-gather of positions (every rank sends its atom block to every
//     other rank), and
//  2. reduce of partial forces (every rank sends the partial forces it
//     computed for every *other* rank's atoms to their owner).
//
// The returned stats count every payload byte, which is how the Fig 6 /
// Fig 9 bandwidth numbers are measured rather than asserted. The dynamics
// are identical to the serial engine up to floating-point summation order.
func RunRanks(sys *topology.System, cfg Config, nRanks, steps int) (*Sim, RankStats, error) {
	if nRanks < 1 {
		return nil, RankStats{}, fmt.Errorf("md: need at least 1 rank, got %d", nRanks)
	}
	if nRanks > sys.Top.NAtoms() {
		nRanks = sys.Top.NAtoms()
	}
	// Thermostats other than none/Berendsen need global state each step;
	// the rank driver supports the deterministic subset.
	if cfg.Thermostat == Langevin {
		return nil, RankStats{}, fmt.Errorf("md: rank decomposition does not support the stochastic langevin thermostat")
	}
	s, err := New(sys, cfg)
	if err != nil {
		return nil, RankStats{}, err
	}

	n := s.NAtoms()
	bounds := make([]int, nRanks+1)
	for r := 0; r <= nRanks; r++ {
		bounds[r] = r * n / nRanks
	}

	// Per-rank inboxes, buffered for one superstep of traffic.
	inbox := make([]chan rankMsg, nRanks)
	for r := range inbox {
		inbox[r] = make(chan rankMsg, 2*nRanks)
	}
	var stats RankStats
	var statsMu sync.Mutex

	for step := 0; step < steps; step++ {
		if s.cfg.Thermostat == NoseHoover {
			s.noseHooverHalfKick(cfg.Dt)
		}
		// Half kick + drift (each rank owns its block; here the blocks are
		// advanced in the shared Sim arrays, but only by their owner).
		var wg sync.WaitGroup
		for r := 0; r < nRanks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := bounds[r]; i < bounds[r+1]; i++ {
					invm := 1 / s.top.Atoms[i].Mass
					s.vel[i] = s.vel[i].MulAdd(0.5*cfg.Dt*invm, s.frc[i])
					s.pos[i] = s.box.Wrap(s.pos[i].MulAdd(cfg.Dt, s.vel[i]))
				}
				// All-gather: broadcast the owned position block.
				blk := append([]vec.V3(nil), s.pos[bounds[r]:bounds[r+1]]...)
				for o := 0; o < nRanks; o++ {
					if o == r {
						continue
					}
					inbox[o] <- rankMsg{from: r, vectors: blk, lo: bounds[r], hi: bounds[r+1]}
				}
			}(r)
		}
		wg.Wait()
		// Drain the all-gather; each rank applies every other block. Because
		// the Sim arrays are shared here, applying once is sufficient, but
		// the traffic is still fully exchanged and accounted.
		gathered := 0
		for r := 0; r < nRanks; r++ {
			for len(inbox[r]) > 0 {
				m := <-inbox[r]
				gathered++
				statsMu.Lock()
				stats.BytesSent += int64(len(m.vectors) * bytesPerV3)
				stats.MessagesSent++
				statsMu.Unlock()
			}
		}
		_ = gathered

		// Neighbour list + force computation, decomposed over pair ranges.
		// The rebuild policy (displacement trigger + ceiling) is shared
		// with the in-process integrator so both paths see identical
		// schedules and identical packed lists.
		if err := s.maybeRebuild(); err != nil {
			return nil, stats, err
		}
		pl := &s.nbl.plist
		np := pl.Len()
		partials := make([][]vec.V3, nRanks)
		var eLJ, eCoul float64
		var eMu sync.Mutex
		for r := 0; r < nRanks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]vec.V3, n)
				lo, hi := chunkRange(np, nRanks, r)
				lj, coul := s.nonbondedRange(pl, lo, hi, buf)
				eMu.Lock()
				eLJ += lj
				eCoul += coul
				eMu.Unlock()
				partials[r] = buf
				// Reduce: send the partial forces for every foreign block
				// to its owning rank.
				for o := 0; o < nRanks; o++ {
					if o == r {
						continue
					}
					seg := buf[bounds[o]:bounds[o+1]]
					inbox[o] <- rankMsg{from: r, vectors: seg, lo: bounds[o], hi: bounds[o+1]}
				}
			}(r)
		}
		wg.Wait()

		// Owners fold in the received partial forces.
		for i := range s.frc {
			s.frc[i] = vec.Zero
		}
		s.pot = Energies{}
		s.pot.LJ = eLJ
		s.pot.Coulomb = eCoul
		for r := 0; r < nRanks; r++ {
			// Own partial first.
			for i := bounds[r]; i < bounds[r+1]; i++ {
				s.frc[i] = s.frc[i].Add(partials[r][i])
			}
			for len(inbox[r]) > 0 {
				m := <-inbox[r]
				for i := m.lo; i < m.hi; i++ {
					s.frc[i] = s.frc[i].Add(m.vectors[i-m.lo])
				}
				stats.BytesSent += int64(len(m.vectors) * bytesPerV3)
				stats.MessagesSent++
			}
		}
		// Bonded terms are cheap; rank 0 computes them (as small codes do).
		s.pot.Bond = s.bondRange(0, len(s.top.Bonds), s.frc)
		s.pot.Angle = s.angleRange(0, len(s.top.Angles), s.frc)
		s.pot.Dihedral = s.dihedralRange(0, len(s.top.Dihedrals), s.frc)

		// Second half kick.
		for i := range s.vel {
			invm := 1 / s.top.Atoms[i].Mass
			s.vel[i] = s.vel[i].MulAdd(0.5*cfg.Dt*invm, s.frc[i])
		}
		switch s.cfg.Thermostat {
		case Berendsen:
			s.berendsenScale(cfg.Dt)
		case NoseHoover:
			s.noseHooverHalfKick(cfg.Dt)
		}
		if s.cfg.COMEvery > 0 && s.step%int64(s.cfg.COMEvery) == 0 {
			s.removeCOM()
		}
		s.step++
		s.time += cfg.Dt
	}

	stats.Ranks = nRanks
	stats.Steps = steps
	if steps > 0 {
		stats.BytesPerStep = float64(stats.BytesSent) / float64(steps)
	}
	stats.FinalEnergies = s.Energies()
	return s, stats, nil
}
