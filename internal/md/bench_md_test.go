package md

import (
	"fmt"
	"testing"

	"copernicus/internal/topology"
	"copernicus/internal/vec"
)

// benchSim builds a simulation for kernel benchmarks, registering cleanup for
// the shard pool.
func benchSim(b *testing.B, sys *topology.System, cfg Config) *Sim {
	b.Helper()
	s, err := New(sys, cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkNonbondedKernel times the packed-pair non-bonded kernel alone: one
// pass over a prebuilt pair list into a scratch force buffer, no neighbour
// rebuilds, no integration. This is the inner loop the packed layout exists
// for.
func BenchmarkNonbondedKernel(b *testing.B) {
	sys, err := topology.LJFluid(2048, 8, 1)
	if err != nil {
		b.Fatalf("LJFluid: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Thermostat = NoThermostat
	cfg.Temperature = 120
	s := benchSim(b, sys, cfg)
	pl := &s.nbl.plist
	buf := make([]vec.V3, s.NAtoms())
	b.ReportMetric(float64(pl.Len()), "pairs")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range buf {
			buf[i] = vec.Zero
		}
		s.nonbondedRange(pl, 0, pl.Len(), buf)
	}
}

// BenchmarkNeighborRebuild times a full cell-grid rebuild (binning, slab
// traversal, parameter packing, merge sort) at fixed positions, serial vs
// slab-parallel.
func BenchmarkNeighborRebuild(b *testing.B) {
	sys, err := topology.LJFluid(2048, 8, 1)
	if err != nil {
		b.Fatalf("LJFluid: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Thermostat = NoThermostat
	cfg.Temperature = 120
	s := benchSim(b, sys, cfg)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				s.nbl.rebuildWith(s.pos, s.top, workers)
			}
		})
	}
}

// BenchmarkStepVillinBox times full MD steps on a villin-scale solvated box
// (1000 flexible waters ≈ 3000 atoms, the size regime of the paper's §3.1
// system), serial vs four force-loop shards. The shards4/serial ns-per-op
// ratio is the kernel-level speedup recorded in BENCH_md.json.
func BenchmarkStepVillinBox(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{{"serial", 1}, {"shards4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			sys, err := topology.WaterBox(1000, 1)
			if err != nil {
				b.Fatalf("WaterBox: %v", err)
			}
			cfg := DefaultConfig()
			cfg.Shards = bc.shards
			s := benchSim(b, sys, cfg)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if err := s.Step(1); err != nil {
					b.Fatalf("Step: %v", err)
				}
			}
		})
	}
}
