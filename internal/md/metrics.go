package md

import (
	"sync/atomic"

	"copernicus/internal/obs"
)

// mdMetrics is the copernicus_md_* instrument set. A nil pointer (the
// default) means instrumentation is disabled and the hot path pays only one
// atomic load per step / force call.
type mdMetrics struct {
	steps      *obs.Counter
	pairsTotal *obs.Counter

	rebuildInitial      *obs.Counter
	rebuildCeiling      *obs.Counter
	rebuildDisplacement *obs.Counter

	rebuildInterval *obs.Histogram
	forceSeconds    *obs.Histogram

	nsPerDay *obs.Gauge
	pairRate *obs.Gauge
}

var mdMetricsPtr atomic.Pointer[mdMetrics]

func loadMDMetrics() *mdMetrics { return mdMetricsPtr.Load() }

// metricsWindow is the step interval over which the throughput gauges
// (ns/day, pairs/s) are recomputed.
const metricsWindow = 128

// EnableMetrics registers the copernicus_md_* kernel metrics on the given
// observability bundle and turns on engine instrumentation process-wide:
//
//	copernicus_md_steps_total               integration steps completed
//	copernicus_md_pairs_total               pair interactions evaluated
//	copernicus_md_neighbor_rebuilds_total   rebuilds by reason (initial,
//	                                        displacement, ceiling)
//	copernicus_md_rebuild_interval_steps    steps between rebuilds
//	copernicus_md_force_seconds             force-evaluation wall time
//	copernicus_md_ns_per_day                effective simulation throughput
//	copernicus_md_pair_throughput           pair interactions per force-loop
//	                                        second
//
// Gauges reflect the most recently sampled window of whichever simulation
// wrote last; counters and histograms aggregate across all simulations in
// the process. Call once at startup (cpcworker and mdrun do); it is safe to
// call again with a different bundle.
func EnableMetrics(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	forceBuckets := []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1,
	}
	intervalBuckets := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}
	rebuilds := func(reason string) *obs.Counter {
		return o.Metrics.Counter("copernicus_md_neighbor_rebuilds_total",
			"Neighbour-list rebuilds by trigger reason.", obs.L("reason", reason))
	}
	mdMetricsPtr.Store(&mdMetrics{
		steps: o.Metrics.Counter("copernicus_md_steps_total",
			"MD integration steps completed.", nil),
		pairsTotal: o.Metrics.Counter("copernicus_md_pairs_total",
			"Non-bonded pair interactions evaluated.", nil),
		rebuildInitial:      rebuilds("initial"),
		rebuildCeiling:      rebuilds("ceiling"),
		rebuildDisplacement: rebuilds("displacement"),
		rebuildInterval: o.Metrics.Histogram("copernicus_md_rebuild_interval_steps",
			"Steps between neighbour-list rebuilds.", intervalBuckets, nil),
		forceSeconds: o.Metrics.Histogram("copernicus_md_force_seconds",
			"Wall time of one full force evaluation.", forceBuckets, nil),
		nsPerDay: o.Metrics.Gauge("copernicus_md_ns_per_day",
			"Effective simulation throughput over the last sampling window.", nil),
		pairRate: o.Metrics.Gauge("copernicus_md_pair_throughput",
			"Pair interactions per second of force-loop wall time.", nil),
	})
}
