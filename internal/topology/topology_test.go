package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func validFluid(t *testing.T, n int) *System {
	t.Helper()
	sys, err := LJFluid(n, 10, 1)
	if err != nil {
		t.Fatalf("LJFluid: %v", err)
	}
	return sys
}

func TestValidateCatchesErrors(t *testing.T) {
	lj := []LJType{{Name: "A", Sigma: 0.3, Epsilon: 1}}
	mkAtoms := func(n int) []Atom {
		as := make([]Atom, n)
		for i := range as {
			as[i] = Atom{Type: 0, Mass: 1}
		}
		return as
	}
	cases := map[string]*Topology{
		"no atoms":      {LJTypes: lj},
		"no types":      {Atoms: mkAtoms(1)},
		"bad type":      {LJTypes: lj, Atoms: []Atom{{Type: 5, Mass: 1}}},
		"bad mass":      {LJTypes: lj, Atoms: []Atom{{Type: 0, Mass: 0}}},
		"bond self":     {LJTypes: lj, Atoms: mkAtoms(2), Bonds: []Bond{{I: 1, J: 1, R0: 0.1, K: 1}}},
		"bond range":    {LJTypes: lj, Atoms: mkAtoms(2), Bonds: []Bond{{I: 0, J: 5, R0: 0.1, K: 1}}},
		"bond params":   {LJTypes: lj, Atoms: mkAtoms(2), Bonds: []Bond{{I: 0, J: 1, R0: 0, K: 1}}},
		"angle repeat":  {LJTypes: lj, Atoms: mkAtoms(3), Angles: []Angle{{I: 0, J: 0, K: 2}}},
		"dihedral rep":  {LJTypes: lj, Atoms: mkAtoms(4), Dihedrals: []Dihedral{{I: 0, J: 1, K: 1, L: 3, Mult: 1}}},
		"dihedral mult": {LJTypes: lj, Atoms: mkAtoms(4), Dihedrals: []Dihedral{{I: 0, J: 1, K: 2, L: 3, Mult: 0}}},
		"bad exclusion": {LJTypes: lj, Atoms: mkAtoms(2), Exclusions: make([][]int, 5)},
	}
	for name, top := range cases {
		if err := top.Validate(); err == nil {
			t.Errorf("Validate should reject %q", name)
		}
	}
}

func TestValidateOK(t *testing.T) {
	top := &Topology{
		LJTypes: []LJType{{Name: "A", Sigma: 0.3, Epsilon: 1}},
		Atoms: []Atom{
			{Type: 0, Mass: 10}, {Type: 0, Mass: 10}, {Type: 0, Mass: 10}, {Type: 0, Mass: 10},
		},
		Bonds:     []Bond{{I: 0, J: 1, R0: 0.1, K: 100}, {I: 1, J: 2, R0: 0.1, K: 100}},
		Angles:    []Angle{{I: 0, J: 1, K: 2, Theta0: 2, KForce: 10}},
		Dihedrals: []Dihedral{{I: 0, J: 1, K: 2, L: 3, Phi0: 0, KForce: 1, Mult: 3}},
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestExclusions(t *testing.T) {
	top := &Topology{
		LJTypes: []LJType{{Name: "A", Sigma: 0.3, Epsilon: 1}},
		Atoms:   []Atom{{Type: 0, Mass: 1}, {Type: 0, Mass: 1}, {Type: 0, Mass: 1}, {Type: 0, Mass: 1}},
		Bonds:   []Bond{{I: 0, J: 1, R0: 0.1, K: 1}, {I: 1, J: 2, R0: 0.1, K: 1}},
		Angles:  []Angle{{I: 0, J: 1, K: 2, Theta0: 2, KForce: 1}},
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1-2: (0,1), (1,2); 1-3 via angle: (0,2).
	want := map[[2]int]bool{{0, 1}: true, {1, 2}: true, {0, 2}: true}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			got := top.Excluded(i, j)
			if got != want[[2]int{i, j}] {
				t.Errorf("Excluded(%d,%d) = %v", i, j, got)
			}
			if got != top.Excluded(j, i) {
				t.Errorf("Excluded not symmetric for (%d,%d)", i, j)
			}
		}
	}
}

func TestLJPairCombination(t *testing.T) {
	top := &Topology{
		LJTypes: []LJType{
			{Name: "A", Sigma: 0.2, Epsilon: 1},
			{Name: "B", Sigma: 0.4, Epsilon: 4},
		},
		Atoms: []Atom{{Type: 0, Mass: 1}, {Type: 1, Mass: 1}},
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Lorentz-Berthelot: sigma_AB = 0.3, eps_AB = 2.
	c6, c12 := top.LJPair(0, 1)
	s6 := math.Pow(0.3, 6)
	if math.Abs(c6-4*2*s6) > 1e-12 {
		t.Errorf("c6 = %v, want %v", c6, 4*2*s6)
	}
	if math.Abs(c12-4*2*s6*s6) > 1e-12 {
		t.Errorf("c12 = %v", c12)
	}
	// Symmetry of the table.
	c6ba, c12ba := top.LJPair(1, 0)
	if c6 != c6ba || c12 != c12ba {
		t.Error("LJ pair table not symmetric")
	}
	// The LJ minimum of the combined pair sits at 2^(1/6) sigma with depth eps.
	rmin := 0.3 * math.Pow(2, 1.0/6)
	v := c12/math.Pow(rmin, 12) - c6/math.Pow(rmin, 6)
	if math.Abs(v+2) > 1e-9 {
		t.Errorf("LJ minimum = %v, want -2", v)
	}
}

func TestPropertyLJPairSymmetric(t *testing.T) {
	f := func(s1, s2, e1, e2 float64) bool {
		abs := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.3
			}
			return math.Mod(math.Abs(x), 1) + 0.05
		}
		top := &Topology{
			LJTypes: []LJType{
				{Sigma: abs(s1), Epsilon: abs(e1)},
				{Sigma: abs(s2), Epsilon: abs(e2)},
			},
			Atoms: []Atom{{Type: 0, Mass: 1}, {Type: 1, Mass: 1}},
		}
		if err := top.Validate(); err != nil {
			return false
		}
		a6, a12 := top.LJPair(0, 1)
		b6, b12 := top.LJPair(1, 0)
		return a6 == b6 && a12 == b12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLJFluid(t *testing.T) {
	sys := validFluid(t, 100)
	if sys.Top.NAtoms() != 100 || len(sys.Pos) != 100 {
		t.Fatalf("atom count mismatch: %d top, %d pos", sys.Top.NAtoms(), len(sys.Pos))
	}
	// Density check: n / V == requested.
	if d := 100 / sys.Box.Volume(); math.Abs(d-10) > 1e-9 {
		t.Errorf("density = %v, want 10", d)
	}
	// All positions inside the box.
	for i, p := range sys.Pos {
		if w := sys.Box.Wrap(p); w.Sub(p).Norm() > 1e-12 {
			t.Errorf("atom %d outside box: %v", i, p)
		}
	}
	// No two atoms ridiculously close.
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if sys.Box.Dist(sys.Pos[i], sys.Pos[j]) < 0.05 {
				t.Fatalf("atoms %d and %d overlap", i, j)
			}
		}
	}
}

func TestLJFluidErrors(t *testing.T) {
	if _, err := LJFluid(0, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := LJFluid(10, 0, 1); err == nil {
		t.Error("density=0 should fail")
	}
}

func TestLJFluidDeterministic(t *testing.T) {
	a := validFluid(t, 50)
	b := validFluid(t, 50)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("LJFluid not deterministic for fixed seed")
		}
	}
}

func TestWaterBox(t *testing.T) {
	sys, err := WaterBox(27, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Top.NAtoms() != 81 {
		t.Fatalf("NAtoms = %d, want 81", sys.Top.NAtoms())
	}
	if len(sys.Top.Bonds) != 54 || len(sys.Top.Angles) != 27 {
		t.Fatalf("bonds=%d angles=%d", len(sys.Top.Bonds), len(sys.Top.Angles))
	}
	if q := sys.Top.TotalCharge(); math.Abs(q) > 1e-9 {
		t.Errorf("water box net charge = %v", q)
	}
	// OH distances are the equilibrium bond length before any dynamics.
	for _, b := range sys.Top.Bonds {
		d := sys.Box.Dist(sys.Pos[b.I], sys.Pos[b.J])
		if math.Abs(d-b.R0) > 1e-9 {
			t.Fatalf("initial OH distance %v != R0 %v", d, b.R0)
		}
	}
	// HOH angle near equilibrium.
	a := sys.Top.Angles[0]
	v1 := sys.Box.MinImage(sys.Pos[a.I], sys.Pos[a.J])
	v2 := sys.Box.MinImage(sys.Pos[a.K], sys.Pos[a.J])
	cos := v1.Dot(v2) / (v1.Norm() * v2.Norm())
	if math.Abs(math.Acos(cos)-a.Theta0) > 1e-6 {
		t.Errorf("initial HOH angle %v != Theta0 %v", math.Acos(cos), a.Theta0)
	}
}

func TestWaterBoxErrors(t *testing.T) {
	if _, err := WaterBox(0, 1); err == nil {
		t.Error("nMol=0 should fail")
	}
}

func TestPolymerChain(t *testing.T) {
	sys, err := PolymerChain(35, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Top.NAtoms() != 35 {
		t.Fatalf("NAtoms = %d", sys.Top.NAtoms())
	}
	if len(sys.Top.Bonds) != 34 || len(sys.Top.Angles) != 33 {
		t.Fatalf("bonds=%d angles=%d", len(sys.Top.Bonds), len(sys.Top.Angles))
	}
	// Consecutive beads exactly bondLen apart at start.
	for _, b := range sys.Top.Bonds {
		d := sys.Pos[b.I].Dist(sys.Pos[b.J])
		if math.Abs(d-b.R0) > 1e-9 {
			t.Fatalf("initial bond length %v != %v", d, b.R0)
		}
	}
	if _, err := PolymerChain(1, 1); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestTotals(t *testing.T) {
	sys := validFluid(t, 10)
	if m := sys.Top.TotalMass(); math.Abs(m-399.48) > 1e-9 {
		t.Errorf("TotalMass = %v", m)
	}
	if sys.Top.DegreesOfFreedom() != 27 {
		t.Errorf("DOF = %d, want 27", sys.Top.DegreesOfFreedom())
	}
}

func TestDegreesOfFreedomFloor(t *testing.T) {
	top := &Topology{
		LJTypes: []LJType{{Sigma: 0.3, Epsilon: 1}},
		Atoms:   []Atom{{Type: 0, Mass: 1}},
	}
	if top.DegreesOfFreedom() < 1 {
		t.Error("DOF must be at least 1")
	}
}

func TestPeptide(t *testing.T) {
	sys, err := Peptide(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Top.NAtoms() != 12 {
		t.Fatalf("NAtoms = %d", sys.Top.NAtoms())
	}
	if len(sys.Top.Bonds) != 11 || len(sys.Top.Angles) != 10 || len(sys.Top.Dihedrals) != 9 {
		t.Fatalf("terms: %d bonds, %d angles, %d dihedrals",
			len(sys.Top.Bonds), len(sys.Top.Angles), len(sys.Top.Dihedrals))
	}
	// Initial geometry honours bond lengths and angles.
	for _, b := range sys.Top.Bonds {
		if d := sys.Pos[b.I].Dist(sys.Pos[b.J]); math.Abs(d-b.R0) > 1e-6 {
			t.Fatalf("bond %d-%d length %v != %v", b.I, b.J, d, b.R0)
		}
	}
	for _, a := range sys.Top.Angles {
		v1 := sys.Pos[a.I].Sub(sys.Pos[a.J])
		v2 := sys.Pos[a.K].Sub(sys.Pos[a.J])
		theta := math.Acos(v1.Dot(v2) / (v1.Norm() * v2.Norm()))
		if math.Abs(theta-a.Theta0) > 1e-4 {
			t.Fatalf("angle at %d is %v, want %v", a.J, theta, a.Theta0)
		}
	}
	// Alternating partial charges sum to zero for even n.
	if q := sys.Top.TotalCharge(); math.Abs(q) > 1e-12 {
		t.Errorf("net charge = %v", q)
	}
	if _, err := Peptide(3, 1); err == nil {
		t.Error("n=3 should fail")
	}
}
