package topology

import (
	"fmt"
	"math"

	"copernicus/internal/rng"
	"copernicus/internal/vec"
)

// System couples a topology with initial coordinates and a box — everything
// a simulation command needs to start.
type System struct {
	Top *Topology
	Pos []vec.V3
	Box vec.Box
}

// LJFluid builds a Lennard-Jones fluid of n argon-like atoms at the given
// reduced density (atoms per nm³), placed on a perturbed cubic lattice so no
// two atoms start on top of each other. It is the standard burn-in workload
// for the worker fleet.
func LJFluid(n int, density float64, seed uint64) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: LJFluid needs n > 0, got %d", n)
	}
	if density <= 0 {
		return nil, fmt.Errorf("topology: LJFluid needs density > 0, got %g", density)
	}
	top := &Topology{
		LJTypes: []LJType{{Name: "Ar", Sigma: 0.3405, Epsilon: 0.996}},
	}
	top.Atoms = make([]Atom, n)
	for i := range top.Atoms {
		top.Atoms[i] = Atom{Name: "Ar", Type: 0, Mass: 39.948}
	}
	l := math.Cbrt(float64(n) / density)
	box := vec.NewCubicBox(l)
	pos := latticeFill(n, l, 0.1, seed)
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return &System{Top: top, Pos: pos, Box: box}, nil
}

// WaterBox builds nMol flexible 3-site water molecules (SPC-like geometry,
// harmonic OH bonds and HOH angle) in a cubic box sized for roughly liquid
// density. This is the solvent workload standing in for the paper's TIP3P
// boxes: same interaction classes (LJ + charges + bonds + angles), smaller n.
func WaterBox(nMol int, seed uint64) (*System, error) {
	if nMol <= 0 {
		return nil, fmt.Errorf("topology: WaterBox needs nMol > 0, got %d", nMol)
	}
	top := &Topology{
		LJTypes: []LJType{
			{Name: "OW", Sigma: 0.3166, Epsilon: 0.650},
			{Name: "HW", Sigma: 0.0, Epsilon: 0.0},
		},
	}
	const (
		rOH     = 0.1 // nm
		thetaH  = 109.47 * math.Pi / 180
		kBond   = 345000 // kJ/(mol nm^2)
		kAngle  = 383    // kJ/(mol rad^2)
		qO      = -0.82
		qH      = 0.41
		massO   = 15.9994
		massH   = 1.008
		density = 33.0 // molecules / nm^3 ~ liquid water (33.3)
	)
	l := math.Cbrt(float64(nMol) / density)
	box := vec.NewCubicBox(l)
	centers := latticeFill(nMol, l, 0.05, seed)
	r := rng.New(seed ^ 0xDEADBEEF)
	pos := make([]vec.V3, 0, 3*nMol)
	for m := 0; m < nMol; m++ {
		o := m * 3
		top.Atoms = append(top.Atoms,
			Atom{Name: "OW", Type: 0, Mass: massO, Charge: qO},
			Atom{Name: "HW1", Type: 1, Mass: massH, Charge: qH},
			Atom{Name: "HW2", Type: 1, Mass: massH, Charge: qH},
		)
		top.Bonds = append(top.Bonds,
			Bond{I: o, J: o + 1, R0: rOH, K: kBond},
			Bond{I: o, J: o + 2, R0: rOH, K: kBond},
		)
		top.Angles = append(top.Angles,
			Angle{I: o + 1, J: o, K: o + 2, Theta0: thetaH, KForce: kAngle},
		)
		c := centers[m]
		// Random molecular orientation: two unit vectors with the right angle.
		u := randomUnit(r)
		v := perpendicularUnit(r, u)
		h1 := u.Scale(rOH)
		h2 := u.Scale(rOH * math.Cos(thetaH)).Add(v.Scale(rOH * math.Sin(thetaH)))
		pos = append(pos, c, box.Wrap(c.Add(h1)), box.Wrap(c.Add(h2)))
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return &System{Top: top, Pos: pos, Box: box}, nil
}

// PolymerChain builds a coarse-grained bead-spring polymer of n beads in a
// large aperiodic region — the in-engine stand-in for a protein chain. Beads
// interact through LJ, consecutive beads through stiff harmonic bonds, and
// triplets through a soft angle term, giving the chain realistic collapse
// dynamics for engine tests.
func PolymerChain(n int, seed uint64) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: PolymerChain needs n >= 2, got %d", n)
	}
	top := &Topology{
		LJTypes: []LJType{{Name: "CG", Sigma: 0.47, Epsilon: 1.5}},
	}
	const (
		bondLen = 0.38 // nm, Cα-Cα spacing
		kBond   = 40000
		kAngle  = 20
	)
	top.Atoms = make([]Atom, n)
	for i := range top.Atoms {
		top.Atoms[i] = Atom{Name: "CG", Type: 0, Mass: 110} // mean residue mass
	}
	for i := 0; i+1 < n; i++ {
		top.Bonds = append(top.Bonds, Bond{I: i, J: i + 1, R0: bondLen, K: kBond})
	}
	for i := 0; i+2 < n; i++ {
		top.Angles = append(top.Angles, Angle{I: i, J: i + 1, K: i + 2, Theta0: 120 * math.Pi / 180, KForce: kAngle})
	}
	// Self-avoiding-ish random walk start.
	r := rng.New(seed)
	pos := make([]vec.V3, n)
	pos[0] = vec.New(0, 0, 0)
	dir := vec.New(1, 0, 0)
	for i := 1; i < n; i++ {
		// Small random kink keeps the chain extended but not straight.
		kink := vec.New(r.Norm(), r.Norm(), r.Norm()).Scale(0.3)
		dir = dir.Add(kink).Unit()
		pos[i] = pos[i-1].Add(dir.Scale(bondLen))
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return &System{Top: top, Pos: pos, Box: vec.Box{}}, nil
}

// latticeFill places n points on the smallest simple cubic lattice that
// holds them inside an l-edged box, with Gaussian jitter of the given
// amplitude (in lattice-spacing units) to break symmetry.
func latticeFill(n int, l, jitter float64, seed uint64) []vec.V3 {
	r := rng.New(seed)
	perSide := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := l / float64(perSide)
	pos := make([]vec.V3, 0, n)
	box := vec.NewCubicBox(l)
	for ix := 0; ix < perSide && len(pos) < n; ix++ {
		for iy := 0; iy < perSide && len(pos) < n; iy++ {
			for iz := 0; iz < perSide && len(pos) < n; iz++ {
				p := vec.New(
					(float64(ix)+0.5)*spacing+r.Norm()*jitter*spacing,
					(float64(iy)+0.5)*spacing+r.Norm()*jitter*spacing,
					(float64(iz)+0.5)*spacing+r.Norm()*jitter*spacing,
				)
				pos = append(pos, box.Wrap(p))
			}
		}
	}
	return pos
}

// randomUnit draws a uniformly distributed unit vector.
func randomUnit(r *rng.Source) vec.V3 {
	for {
		v := vec.New(r.Norm(), r.Norm(), r.Norm())
		if n := v.Norm(); n > 1e-6 {
			return v.Scale(1 / n)
		}
	}
}

// perpendicularUnit draws a unit vector perpendicular to u.
func perpendicularUnit(r *rng.Source, u vec.V3) vec.V3 {
	for {
		w := randomUnit(r)
		p := w.Sub(u.Scale(w.Dot(u)))
		if n := p.Norm(); n > 1e-6 {
			return p.Scale(1 / n)
		}
	}
}

// Peptide builds a coarse backbone-like chain of n "residues" in vacuo with
// every bonded interaction class the engine supports: stiff bonds, angle
// terms, and periodic backbone dihedrals with a threefold torsional profile
// — the smallest system exercising the full Gromacs-style force field. Its
// conformational transitions are dihedral flips, making it a qualitative
// stand-in for secondary-structure dynamics in engine-level studies.
func Peptide(n int, seed uint64) (*System, error) {
	if n < 4 {
		return nil, fmt.Errorf("topology: Peptide needs n >= 4 residues, got %d", n)
	}
	top := &Topology{
		LJTypes: []LJType{{Name: "BB", Sigma: 0.40, Epsilon: 0.8}},
	}
	const (
		bondLen  = 0.35
		kBond    = 60000
		theta0   = 111 * math.Pi / 180
		kAngle   = 250
		kDihed   = 4.0 // kJ/mol barrier scale
		dihedMul = 3
	)
	top.Atoms = make([]Atom, n)
	for i := range top.Atoms {
		// Alternate partial charges give the chain weak electrostatics too.
		q := 0.1
		if i%2 == 1 {
			q = -0.1
		}
		top.Atoms[i] = Atom{Name: "BB", Type: 0, Mass: 56, Charge: q}
	}
	for i := 0; i+1 < n; i++ {
		top.Bonds = append(top.Bonds, Bond{I: i, J: i + 1, R0: bondLen, K: kBond})
	}
	for i := 0; i+2 < n; i++ {
		top.Angles = append(top.Angles, Angle{I: i, J: i + 1, K: i + 2, Theta0: theta0, KForce: kAngle})
	}
	for i := 0; i+3 < n; i++ {
		top.Dihedrals = append(top.Dihedrals, Dihedral{
			I: i, J: i + 1, K: i + 2, L: i + 3,
			Phi0: 0, KForce: kDihed, Mult: dihedMul,
		})
	}

	// Initial geometry: ideal bond lengths and angles, alternating torsions.
	r := rng.New(seed)
	pos := make([]vec.V3, n)
	pos[0] = vec.New(0, 0, 0)
	pos[1] = vec.New(bondLen, 0, 0)
	pos[2] = pos[1].Add(vec.New(-bondLen*math.Cos(theta0), bondLen*math.Sin(theta0), 0))
	for i := 3; i < n; i++ {
		// Place atom i at the ideal bond/angle from i-1, i-2, with a torsion
		// jittered around staggered positions.
		b1 := pos[i-1].Sub(pos[i-2]).Unit()
		ref := pos[i-2].Sub(pos[i-3])
		perp := ref.Sub(b1.Scale(ref.Dot(b1)))
		if perp.Norm() < 1e-9 {
			perp = vec.New(-b1.Y, b1.X, 0)
		}
		perp = perp.Unit()
		third := b1.Cross(perp)
		// All-trans start (φ = π): every torsion begins in a minimum of the
		// threefold profile and 1-4 contacts start at maximal separation.
		phi := math.Pi + 0.2*r.Norm()
		dir := b1.Scale(-math.Cos(theta0)).
			Add(perp.Scale(math.Sin(theta0) * math.Cos(phi))).
			Add(third.Scale(math.Sin(theta0) * math.Sin(phi)))
		pos[i] = pos[i-1].Add(dir.Scale(bondLen))
	}
	if err := top.Validate(); err != nil {
		return nil, err
	}
	return &System{Top: top, Pos: pos, Box: vec.Box{}}, nil
}
