// Package topology describes molecular systems for the MD substrate: atoms
// with masses and charges, Lennard-Jones interaction types with
// Lorentz–Berthelot combination rules, bonded interaction terms (harmonic
// bonds and angles, periodic dihedrals) and the non-bonded exclusion list
// derived from bonded connectivity.
//
// Units follow the Gromacs convention used throughout the reproduction:
// length nm, energy kJ/mol, mass u, charge e, time ps.
package topology

import (
	"fmt"
	"math"
	"sort"
)

// KB is Boltzmann's constant in kJ/(mol·K).
const KB = 0.0083144621

// CoulombConst is 1/(4π ε0) in kJ·nm/(mol·e²).
const CoulombConst = 138.935485

// LJType is a Lennard-Jones atom type: V(r) = 4ε[(σ/r)¹² − (σ/r)⁶].
type LJType struct {
	Name    string
	Sigma   float64 // nm
	Epsilon float64 // kJ/mol
}

// Atom is one particle.
type Atom struct {
	Name   string
	Type   int     // index into Topology.LJTypes
	Mass   float64 // u
	Charge float64 // e
}

// Bond is a harmonic bond: V = ½ K (r − R0)².
type Bond struct {
	I, J int
	R0   float64 // nm
	K    float64 // kJ/(mol·nm²)
}

// Angle is a harmonic angle: V = ½ K (θ − Theta0)², θ in radians.
type Angle struct {
	I, J, K int // J is the vertex
	Theta0  float64
	KForce  float64 // kJ/(mol·rad²)
}

// Dihedral is a periodic (proper) dihedral: V = K (1 + cos(n φ − φ0)).
type Dihedral struct {
	I, J, K, L int
	Phi0       float64 // radians
	KForce     float64 // kJ/mol
	Mult       int
}

// Topology is an immutable-after-Validate description of a molecular system.
type Topology struct {
	Atoms     []Atom
	LJTypes   []LJType
	Bonds     []Bond
	Angles    []Angle
	Dihedrals []Dihedral

	// Exclusions[i] lists atom indices j > i whose non-bonded interaction
	// with i is excluded (1-2 and 1-3 bonded neighbours). Built by
	// BuildExclusions; Validate requires it to be either nil or complete.
	Exclusions [][]int

	// pair tables, built lazily by Validate
	c6, c12 []float64 // len = nTypes², combined LJ parameters
	nTypes  int
}

// NAtoms returns the number of atoms.
func (t *Topology) NAtoms() int { return len(t.Atoms) }

// Validate checks index ranges and physical sanity, builds exclusions if
// absent, and precomputes the combined LJ pair table. It must be called once
// before the topology is used by a simulation.
func (t *Topology) Validate() error {
	n := len(t.Atoms)
	if n == 0 {
		return fmt.Errorf("topology: no atoms")
	}
	if len(t.LJTypes) == 0 {
		return fmt.Errorf("topology: no LJ types")
	}
	for i, a := range t.Atoms {
		if a.Type < 0 || a.Type >= len(t.LJTypes) {
			return fmt.Errorf("topology: atom %d has invalid LJ type %d", i, a.Type)
		}
		if a.Mass <= 0 {
			return fmt.Errorf("topology: atom %d has non-positive mass %g", i, a.Mass)
		}
	}
	for bi, b := range t.Bonds {
		if !validIdx(b.I, n) || !validIdx(b.J, n) || b.I == b.J {
			return fmt.Errorf("topology: bond %d has invalid atoms (%d,%d)", bi, b.I, b.J)
		}
		if b.R0 <= 0 || b.K < 0 {
			return fmt.Errorf("topology: bond %d has invalid parameters", bi)
		}
	}
	for ai, a := range t.Angles {
		if !validIdx(a.I, n) || !validIdx(a.J, n) || !validIdx(a.K, n) ||
			a.I == a.J || a.J == a.K || a.I == a.K {
			return fmt.Errorf("topology: angle %d has invalid atoms", ai)
		}
	}
	for di, d := range t.Dihedrals {
		idx := [4]int{d.I, d.J, d.K, d.L}
		for x := 0; x < 4; x++ {
			if !validIdx(idx[x], n) {
				return fmt.Errorf("topology: dihedral %d has invalid atoms", di)
			}
			for y := x + 1; y < 4; y++ {
				if idx[x] == idx[y] {
					return fmt.Errorf("topology: dihedral %d repeats atom %d", di, idx[x])
				}
			}
		}
		if d.Mult < 1 {
			return fmt.Errorf("topology: dihedral %d has multiplicity %d < 1", di, d.Mult)
		}
	}
	if t.Exclusions == nil {
		t.BuildExclusions()
	} else if len(t.Exclusions) != n {
		return fmt.Errorf("topology: exclusion list length %d != %d atoms", len(t.Exclusions), n)
	}
	t.buildPairTable()
	return nil
}

func validIdx(i, n int) bool { return i >= 0 && i < n }

// BuildExclusions derives the 1-2 and 1-3 exclusion list from the bond and
// angle terms. Each list contains only indices greater than the owner, since
// pair loops visit each pair once with i < j.
func (t *Topology) BuildExclusions() {
	n := len(t.Atoms)
	sets := make([]map[int]bool, n)
	add := func(i, j int) {
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		if sets[lo] == nil {
			sets[lo] = make(map[int]bool)
		}
		sets[lo][hi] = true
	}
	for _, b := range t.Bonds {
		add(b.I, b.J)
	}
	for _, a := range t.Angles {
		add(a.I, a.J)
		add(a.J, a.K)
		add(a.I, a.K)
	}
	t.Exclusions = make([][]int, n)
	for i, s := range sets {
		if s == nil {
			continue
		}
		lst := make([]int, 0, len(s))
		for j := range s {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		t.Exclusions[i] = lst
	}
}

// Excluded reports whether the non-bonded pair (i, j) is excluded.
func (t *Topology) Excluded(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	if t.Exclusions == nil || i >= len(t.Exclusions) {
		return false
	}
	lst := t.Exclusions[i]
	k := sort.SearchInts(lst, j)
	return k < len(lst) && lst[k] == j
}

// buildPairTable precomputes C6/C12 coefficients for every ordered type pair
// using Lorentz–Berthelot combination rules (arithmetic σ, geometric ε).
func (t *Topology) buildPairTable() {
	nt := len(t.LJTypes)
	t.nTypes = nt
	t.c6 = make([]float64, nt*nt)
	t.c12 = make([]float64, nt*nt)
	for a := 0; a < nt; a++ {
		for b := 0; b < nt; b++ {
			sigma := 0.5 * (t.LJTypes[a].Sigma + t.LJTypes[b].Sigma)
			eps := geomMean(t.LJTypes[a].Epsilon, t.LJTypes[b].Epsilon)
			s6 := pow6(sigma)
			t.c6[a*nt+b] = 4 * eps * s6
			t.c12[a*nt+b] = 4 * eps * s6 * s6
		}
	}
}

func geomMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b)
}

func pow6(x float64) float64 {
	x3 := x * x * x
	return x3 * x3
}

// LJPair returns the combined C6 and C12 coefficients for LJ types a and b.
// Validate must have been called.
func (t *Topology) LJPair(a, b int) (c6, c12 float64) {
	return t.c6[a*t.nTypes+b], t.c12[a*t.nTypes+b]
}

// TotalMass returns the sum of atomic masses.
func (t *Topology) TotalMass() float64 {
	m := 0.0
	for _, a := range t.Atoms {
		m += a.Mass
	}
	return m
}

// TotalCharge returns the net charge of the system.
func (t *Topology) TotalCharge() float64 {
	q := 0.0
	for _, a := range t.Atoms {
		q += a.Charge
	}
	return q
}

// DegreesOfFreedom returns the number of kinetic degrees of freedom, 3N
// minus 3 for the removed centre-of-mass motion.
func (t *Topology) DegreesOfFreedom() int {
	d := 3*len(t.Atoms) - 3
	if d < 1 {
		return 1
	}
	return d
}
