package experiments

// Ablation studies for the design choices DESIGN.md calls out: microstate
// count (why the paper used 10,000 clusters) and estimator choice (why the
// controller uses row-wise MLE instead of naive symmetrisation under
// adaptive sampling).

import (
	"math"
	"testing"

	"copernicus/internal/landscape"
	"copernicus/internal/msm"
	"copernicus/internal/rng"
)

// surrogateDataset simulates a modest trajectory ensemble directly (no
// fabric), returning the frames per trajectory.
func surrogateDataset(t testing.TB, nTraj int, durNs float64) (*landscape.Model, []landscape.Traj) {
	t.Helper()
	m, err := landscape.New(landscape.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	trajs := make([]landscape.Traj, 0, nTraj)
	for k := 0; k < nTraj; k++ {
		tr, err := m.Simulate(m.UnfoldedStart(k%9, 5), durNs, 1.5, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		trajs = append(trajs, tr)
	}
	return m, trajs
}

// foldedPi builds an MSM with k clusters at the given lag and returns the
// stationary folded population.
func foldedPi(t testing.TB, m *landscape.Model, trajs []landscape.Traj, k int, lagNs float64, symmetrize bool) float64 {
	t.Helper()
	var points [][]float64
	for _, tr := range trajs {
		points = append(points, tr.Frames...)
	}
	clu, err := msm.KCenters(points, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	var dtrajs [][]int
	for _, tr := range trajs {
		dtrajs = append(dtrajs, clu.AssignAll(tr.Frames))
	}
	lagF := int(lagNs / 1.5)
	counts, err := msm.CountTransitions(dtrajs, clu.K(), lagF)
	if err != nil {
		t.Fatal(err)
	}
	if symmetrize {
		counts = counts.Symmetrized()
	}
	tm := counts.TransitionMatrix(0)
	tm.Lag = lagNs
	lcs := tm.LargestConnectedSet()
	rt, mapping := tm.Restrict(lcs)
	rt.Lag = lagNs
	pi := rt.StationaryDistribution(1e-12, 20000)
	folded := 0.0
	for li, orig := range mapping {
		if m.RMSD(clu.Centers[orig]) <= 3.5 {
			folded += pi[li]
		}
	}
	return folded
}

// TestAblationClusterCount codifies the discretisation study recorded in
// EXPERIMENTS.md: finer microstate partitions move the MSM's equilibrium
// folded population toward the analytic value — the paper's rationale for
// 10,000 clusters.
func TestAblationClusterCount(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run skipped in -short mode")
	}
	m, trajs := surrogateDataset(t, 120, 300)
	exact := m.EquilibriumFoldedFraction()
	coarse := foldedPi(t, m, trajs, 50, 24, false)
	fine := foldedPi(t, m, trajs, 600, 24, false)
	errCoarse := abs(coarse - exact)
	errFine := abs(fine - exact)
	if errFine >= errCoarse {
		t.Errorf("finer clustering did not improve folded π: k=50 → %.3f, k=600 → %.3f (exact %.3f)",
			coarse, fine, exact)
	}
	if errFine > 0.12 {
		t.Errorf("k=600 folded π = %.3f too far from exact %.3f", fine, exact)
	}
}

// TestAblationSymmetrisationBias shows why the controller must NOT
// symmetrise counts gathered under adaptive (non-equilibrium) restarting:
// the MLE estimate lands near the truth, the symmetrised one is biased
// toward the sampling distribution.
func TestAblationSymmetrisationBias(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run skipped in -short mode")
	}
	// Build a deliberately non-equilibrium ensemble: restart half the
	// trajectories from the folded basin, half from unfolded, i.e. heavy
	// over-sampling of the folded region relative to Boltzmann transit.
	m, err := landscape.New(landscape.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	var trajs []landscape.Traj
	for k := 0; k < 120; k++ {
		var start []float64
		if k%2 == 0 {
			start = m.UnfoldedStart(k%9, 5)
		} else {
			start = []float64{0.05, 0.02, 0.01} // native basin
		}
		tr, err := m.Simulate(start, 300, 1.5, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		trajs = append(trajs, tr)
	}
	exact := m.EquilibriumFoldedFraction()
	mle := foldedPi(t, m, trajs, 400, 24, false)
	sym := foldedPi(t, m, trajs, 400, 24, true)
	if abs(mle-exact) >= abs(sym-exact) {
		// On this biased ensemble MLE must beat symmetrisation.
		t.Errorf("MLE folded π %.3f is not closer to exact %.3f than symmetrised %.3f",
			mle, exact, sym)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestMFPTMatchesFoldingTimescale cross-checks the MSM kinetics machinery
// against the surrogate's calibrated folding time: the population-weighted
// MFPT from the unfolded starting states into the folded set must land in
// the same few-hundred-nanosecond regime as the Fig 4 t½.
func TestMFPTMatchesFoldingTimescale(t *testing.T) {
	if testing.Short() {
		t.Skip("kinetics run skipped in -short mode")
	}
	m, trajs := surrogateDataset(t, 150, 400)
	var points [][]float64
	for _, tr := range trajs {
		points = append(points, tr.Frames...)
	}
	clu, err := msm.KCenters(points, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	var dtrajs [][]int
	for _, tr := range trajs {
		dtrajs = append(dtrajs, clu.AssignAll(tr.Frames))
	}
	const lagNs = 24.0
	counts, err := msm.CountTransitions(dtrajs, clu.K(), int(lagNs/1.5))
	if err != nil {
		t.Fatal(err)
	}
	tm := counts.TransitionMatrix(0)
	tm.Lag = lagNs
	lcs := tm.LargestConnectedSet()
	rt, mapping := tm.Restrict(lcs)
	rt.Lag = lagNs

	var folded []int
	local := make(map[int]int)
	for li, orig := range mapping {
		local[orig] = li
		if m.RMSD(clu.Centers[orig]) <= 3.5 {
			folded = append(folded, li)
		}
	}
	if len(folded) == 0 {
		t.Fatal("no folded states discovered")
	}
	mfpt, err := rt.MFPT(folded)
	if err != nil {
		t.Fatal(err)
	}
	// Average the MFPT over the nine unfolded starting states.
	var sum float64
	n := 0
	for s := 0; s < 9; s++ {
		if li, ok := local[clu.Assign(m.UnfoldedStart(s, 5))]; ok && !math.IsInf(mfpt[li], 1) {
			sum += mfpt[li]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no start state reaches the folded set")
	}
	avg := sum / float64(n)
	// The raw ensemble folds with t½ ≈ 450-500 ns; MFPT (a mean, not a
	// median, over a non-exponential barrier) should be the same order.
	if avg < 100 || avg > 2500 {
		t.Errorf("MFPT(unfolded→folded) = %.0f ns, expected a few hundred ns", avg)
	}
	// And committors must rise from the unfolded toward the folded side.
	var unfoldedSet []int
	for li, orig := range mapping {
		if m.RMSD(clu.Centers[orig]) > 12 {
			unfoldedSet = append(unfoldedSet, li)
		}
	}
	if len(unfoldedSet) > 0 {
		q, err := rt.Committor(unfoldedSet, folded)
		if err != nil {
			t.Fatal(err)
		}
		// Mid-funnel states (4–8 Å) should have intermediate committors on
		// average, strictly above the reactant side.
		var mid, midN float64
		for li, orig := range mapping {
			r := m.RMSD(clu.Centers[orig])
			if r > 4 && r < 8 {
				mid += q[li]
				midN++
			}
		}
		if midN > 0 && mid/midN <= 0.05 {
			t.Errorf("mid-funnel mean committor %.3f suspiciously low", mid/midN)
		}
	}
}
