// Package experiments regenerates every figure and headline number of the
// paper's evaluation (see DESIGN.md §3 for the experiment index). Each Fig*
// function produces the same rows/series the paper reports; cmd/benchfig
// prints them and the repository-level benchmarks time and sanity-check
// them.
//
// Scale: the paper's absolute wall-clock numbers came from two
// supercomputers; here the villin workload runs on the calibrated surrogate
// (Figs 2–5) and the scheduler study runs on the same discrete-event
// methodology the authors used (Figs 7–9). EXPERIMENTS.md records
// paper-vs-measured for every row.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"copernicus/internal/controller"
	"copernicus/internal/core"
	"copernicus/internal/des"
	"copernicus/internal/md"
	"copernicus/internal/msm"
	"copernicus/internal/topology"
	"copernicus/internal/wire"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleSmall completes in seconds: reduced trajectory counts, the same
	// protocol shape. Used by the repository benchmarks.
	ScaleSmall Scale = iota
	// ScalePaper is the full §3 protocol: 9 starts × 25 tasks, 50-ns
	// segments, 8 generations. Minutes on one machine.
	ScalePaper
)

// VillinParams returns the adaptive-MSM parameters at the given scale.
func VillinParams(s Scale) controller.MSMParams {
	p := controller.DefaultMSMParams()
	if s == ScaleSmall {
		p.NStarts = 4
		p.TasksPerStart = 8
		p.SegmentNs = 50
		p.FrameNs = 2.5
		p.SegmentsPerGen = 64
		p.Generations = 4
		p.Clusters = 200
		// A shorter lag than the paper's 25 ns: the reduced dataset needs
		// more transition pairs per segment to keep the folded basin inside
		// the strongly-connected set (see TestAblationClusterCount for the
		// full-scale discretisation study).
		p.LagNs = 10
		p.PropagateNs = 2000
	}
	return p
}

// RunVillin executes the adaptive folding project on an in-process fabric
// and returns the full result consumed by Figs 2–5.
func RunVillin(s Scale, workers int) (*controller.MSMResult, error) {
	if workers <= 0 {
		workers = 4
	}
	return core.RunMSM(VillinParams(s), core.FabricConfig{
		Servers:          1,
		WorkersPerServer: workers,
	}, 30*time.Minute)
}

// Fig2 formats the per-generation trajectory RMSD evolution: for each
// generation, the min-RMSD traces of representative trajectories (the three
// best finishers plus three originals), plus the blind-prediction RMSD per
// generation — the content of the paper's Fig 2.
func Fig2(res *controller.MSMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 2 — per-generation trajectory RMSD (Å)\n")
	fmt.Fprintf(&b, "# paper: first folded structure at generation 3 (0.7 Å); blind prediction at generation 8 (1.4 Å)\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %14s %12s\n", "generation", "minRMSD", "topStateRMSD", "foldedPiFrac", "states")
	for _, g := range res.Generations {
		fmt.Fprintf(&b, "%-12d %8.2f %12.2f %14.3f %12d\n",
			g.Generation, g.MinRMSD, g.TopStateRMSD, g.FoldedPiFrac, g.States)
	}
	// Representative trajectories: lowest final min-RMSD first.
	type trace struct {
		id   string
		born int
		min  float64
		gens []float64
	}
	var traces []trace
	for _, tr := range res.Trajs {
		if len(tr.GenMinRMSD) == 0 {
			continue
		}
		best := tr.GenMinRMSD[0]
		for _, v := range tr.GenMinRMSD {
			if v < best {
				best = v
			}
		}
		traces = append(traces, trace{id: tr.ID, born: tr.BornGen, min: best, gens: tr.GenMinRMSD})
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].min < traces[j].min })
	fmt.Fprintf(&b, "# representative trajectories (min RMSD per generation alive):\n")
	for i, tr := range traces {
		if i >= 6 {
			break
		}
		fmt.Fprintf(&b, "%-12s born=g%d  ", tr.id, tr.born)
		for gi, v := range tr.gens {
			fmt.Fprintf(&b, "g%d:%.2f ", tr.born+gi, v)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// Fig3 reports the first-folded metric: minimum RMSD to native and the
// generation at which the folded cutoff was first crossed (paper: 0.6–0.7 Å
// within three generations / ~30 h).
func Fig3(res *controller.MSMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 3 — first folded conformation\n")
	fmt.Fprintf(&b, "# paper: 0.6-0.7 Å Cα RMSD after 3 generations\n")
	last := res.Generations[len(res.Generations)-1]
	fmt.Fprintf(&b, "min RMSD to native: %.2f Å\n", last.MinRMSD)
	if res.FirstFoldedGen >= 0 {
		fmt.Fprintf(&b, "first folded (≤ %.1f Å) in generation %d\n",
			res.Params.Landscape.FoldedRMSD, res.FirstFoldedGen)
	} else {
		fmt.Fprintf(&b, "never reached the folded cutoff\n")
	}
	if res.FirstNearNativeGen >= 0 {
		fmt.Fprintf(&b, "first near-native structure (≤ %.1f Å) in generation %d\n",
			res.Params.NearNativeRMSD, res.FirstNearNativeGen)
	}
	fmt.Fprintf(&b, "blind prediction (largest equilibrium cluster): %.2f Å\n", res.FinalTopStateRMSD)
	return b.String()
}

// Fig4 formats the microstate-MSM population evolution: fraction folded
// under p(t+τ) = p(t)T(τ) from the all-unfolded start (paper: 66%% folded by
// 2 µs, t½ ≈ 500–600 ns).
func Fig4(res *controller.MSMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 4 — population evolution of the microstate MSM\n")
	fmt.Fprintf(&b, "# paper: 66%% folded at 2 µs; t1/2 = 500-600 ns (experiment ~700 ns)\n")
	fmt.Fprintf(&b, "%-12s %14s\n", "time/ns", "fraction_folded")
	step := len(res.PopTimesNs) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(res.PopTimesNs); i += step {
		fmt.Fprintf(&b, "%-12.0f %14.3f\n", res.PopTimesNs[i], res.PopFolded[i])
	}
	if n := len(res.PopFolded); n > 0 {
		fmt.Fprintf(&b, "final fraction folded at %.0f ns: %.1f%%\n",
			res.PopTimesNs[n-1], 100*res.PopFolded[n-1])
	}
	if res.THalfOK {
		fmt.Fprintf(&b, "t1/2 of folding: %.0f ns\n", res.THalfNs)
	}
	if len(res.ProbeLagsNs) > 0 {
		fmt.Fprintf(&b, "# lag sensitivity (implied slowest timescale, ns):\n")
		for i, lag := range res.ProbeLagsNs {
			fmt.Fprintf(&b, "#   lag %5.1f ns -> t2 = %.0f ns\n", lag, res.ImpliedTimescales[i])
		}
		fmt.Fprintf(&b, "# Chapman-Kolmogorov error at the working lag: %.4f\n", res.CKError)
	}
	return b.String()
}

// Fig5 formats the ensemble-average RMSD vs time with its standard
// deviation (the paper's error bars).
func Fig5(res *controller.MSMResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 5 — ensemble average Cα RMSD vs time\n")
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "time/ns", "mean/Å", "std/Å")
	step := len(res.RMSDTimesNs) / 25
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(res.RMSDTimesNs); i += step {
		fmt.Fprintf(&b, "%-12.1f %10.2f %10.2f\n",
			res.RMSDTimesNs[i], res.RMSDMean[i], res.RMSDStd[i])
	}
	return b.String()
}

// Fig6Result carries the measured bandwidth of each level of the parallel
// hierarchy.
type Fig6Result struct {
	// RankBytesPerStep is the per-step message-passing traffic of a
	// water-box simulation decomposed over 4 ranks (the "MPI" level).
	RankBytesPerStep float64
	// EnsembleBytes and EnsembleSeconds measure the overlay traffic of a
	// small adaptive project (the "SSL" level).
	EnsembleBytes   int64
	EnsembleSeconds float64
	// HeartbeatBytes is the framed size of one heartbeat message.
	HeartbeatBytes int
}

// Fig6 measures the communication hierarchy on the real substrates.
func Fig6() (*Fig6Result, error) {
	out := &Fig6Result{}

	// MPI level: rank-decomposed MD, counting every payload byte.
	sys, err := topology.WaterBox(64, 1)
	if err != nil {
		return nil, err
	}
	cfg := md.DefaultConfig()
	cfg.Cutoff = 0.45
	cfg.Skin = 0.05
	cfg.Thermostat = md.Berendsen
	cfg.Temperature = 300
	cfg.TauT = 0.5
	_, stats, err := md.RunRanks(sys, cfg, 4, 100)
	if err != nil {
		return nil, err
	}
	out.RankBytesPerStep = stats.BytesPerStep

	// Ensemble level: a metered fabric running a small adaptive project.
	p := VillinParams(ScaleSmall)
	p.Generations = 2
	f, err := core.NewFabric(core.FabricConfig{Servers: 2, WorkersPerServer: 2})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	start := time.Now()
	before := f.Net.BytesSent()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := f.Submit(ctx, "fig6", controller.MSMControllerName, &p); err != nil {
		return nil, err
	}
	if _, err := f.Wait(ctx, "fig6"); err != nil {
		return nil, err
	}
	out.EnsembleBytes = f.Net.BytesSent() - before
	out.EnsembleSeconds = time.Since(start).Seconds()

	// Heartbeat size (paper: <200 bytes).
	hb, err := wire.Marshal(&wire.Heartbeat{WorkerID: "worker-0001", CommandIDs: []string{"traj-0001-seg0001"}})
	if err != nil {
		return nil, err
	}
	out.HeartbeatBytes = len(hb)
	return out, nil
}

// FormatFig6 renders the hierarchy table.
func FormatFig6(r *Fig6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 6 — multi-level parallel hierarchy, measured traffic\n")
	fmt.Fprintf(&b, "# paper: ensemble (SSL) avg 0.04 MB/s; MPI avg 0.5 GB/s; heartbeats <200 B\n")
	fmt.Fprintf(&b, "%-22s %18s %s\n", "level", "measured", "notes")
	fmt.Fprintf(&b, "%-22s %15.0f B/step  force-decomposed water box, 4 ranks\n",
		"message passing", r.RankBytesPerStep)
	mbps := float64(r.EnsembleBytes) / 1e6 / r.EnsembleSeconds
	fmt.Fprintf(&b, "%-22s %15.3f MB/s   adaptive project over 2-server overlay\n",
		"ensemble (overlay)", mbps)
	fmt.Fprintf(&b, "%-22s %15d B       per heartbeat (every 120 s)\n",
		"heartbeat", r.HeartbeatBytes)
	return b.String()
}

// Fig7Points sweeps scaling efficiency vs total cores for the paper's
// cores-per-simulation choices.
func Fig7Points() ([]des.SweepPoint, error) {
	return des.Sweep(des.PaperParams(),
		[]int{1, 12, 24, 48, 96},
		[]int{100, 225, 500, 1000, 2400, 5400, 10800, 21600, 50000})
}

// FormatFig7 renders the efficiency table.
func FormatFig7(points []des.SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 7 — scaling efficiency tres(1)/(N·tres(N)) vs total cores\n")
	fmt.Fprintf(&b, "# paper: tres(1) = 1.1e5 h; 53%% efficiency at 20,000 cores (c=96)\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-10s\n", "Ncores", "cores/sim", "efficiency", "busy")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %-12d %-12.3f %-10.2f\n", p.TotalCores, p.CoresPerSim, p.Efficiency, p.BusyFraction)
	}
	return b.String()
}

// FormatFig8 renders the time-to-solution table.
func FormatFig8(points []des.SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 8 — time to solution (hours) vs total cores\n")
	fmt.Fprintf(&b, "# paper: ~30 h at 5,000 cores; just over 10 h at 20,000 cores\n")
	fmt.Fprintf(&b, "%-10s %-12s %-14s %-10s\n", "Ncores", "cores/sim", "hours", "commands")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %-12d %-14.1f %-10d\n", p.TotalCores, p.CoresPerSim, p.Hours, p.Commands)
	}
	return b.String()
}

// FormatFig9 renders the ensemble-bandwidth table.
func FormatFig9(points []des.SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig 9 — average ensemble-level bandwidth (MB/s) vs total cores\n")
	fmt.Fprintf(&b, "# paper: 0.001–0.1 MB/s across the sweep\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s\n", "Ncores", "cores/sim", "MB/s")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d %-12d %-12.4f\n", p.TotalCores, p.CoresPerSim, p.BandwidthMBps)
	}
	return b.String()
}

// T1Heartbeat verifies the heartbeat/failover protocol budget: message size
// (paper: <200 B) and the detection latency bound (2× the interval).
func T1Heartbeat() (string, error) {
	hb, err := wire.Marshal(&wire.Heartbeat{
		WorkerID:   "worker-0123456789abcdef",
		CommandIDs: []string{"traj-0001-seg0001", "traj-0002-seg0002"},
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# T1 — heartbeat protocol (paper §2.3)\n")
	fmt.Fprintf(&b, "heartbeat payload: %d bytes (paper: <200 B)\n", len(hb))
	fmt.Fprintf(&b, "failure detection: 2x heartbeat interval (240 s at the paper's default)\n")
	return b.String(), nil
}

// T2SingleSimScaling reports the single-simulation strong-scaling curve:
// the calibrated DES speed model alongside engine-measured shard and rank
// communication growth.
func T2SingleSimScaling() (string, error) {
	var b strings.Builder
	m := des.PaperParams().Speed
	fmt.Fprintf(&b, "# T2 — single-simulation strong scaling (villin-class system)\n")
	fmt.Fprintf(&b, "# paper: ~200 ns/day around 100 cores is the practical strong-scaling regime\n")
	fmt.Fprintf(&b, "%-8s %-12s %-12s\n", "cores", "ns/day", "efficiency")
	for _, c := range []int{1, 12, 24, 48, 96, 192} {
		fmt.Fprintf(&b, "%-8d %-12.0f %-12.2f\n", c, m.NsPerDay(c), m.Efficiency(c))
	}
	// Engine-measured communication growth with ranks.
	sys, err := topology.LJFluid(125, 8, 1)
	if err != nil {
		return "", err
	}
	cfg := md.DefaultConfig()
	cfg.Thermostat = md.NoThermostat
	cfg.Temperature = 120
	cfg.Cutoff = 0.7
	cfg.Skin = 0.1
	fmt.Fprintf(&b, "%-8s %-16s\n", "ranks", "bytes/step")
	for _, r := range []int{2, 4, 8} {
		_, stats, err := md.RunRanks(sys, cfg, r, 20)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8d %-16.0f\n", r, stats.BytesPerStep)
	}
	return b.String(), nil
}

// T3AdaptiveVsEven compares adaptive and even weighting on the same budget:
// the mean per-state uncertainty of the final count matrix, the quantity
// adaptive sampling minimises (paper: up to ~2× sampling efficiency).
func T3AdaptiveVsEven() (string, error) {
	run := func(w msm.Weighting) (*controller.MSMResult, error) {
		p := VillinParams(ScaleSmall)
		p.Weighting = w
		p.Generations = 3
		return core.RunMSM(p, core.FabricConfig{Servers: 1, WorkersPerServer: 4}, 15*time.Minute)
	}
	adaptive, err := run(msm.AdaptiveWeighting)
	if err != nil {
		return "", err
	}
	even, err := run(msm.EvenWeighting)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# T3 — adaptive vs even weighting at equal sampling budget\n")
	fmt.Fprintf(&b, "# paper: adaptive weighting can boost sampling efficiency ~2x once states stabilise\n")
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-12s\n", "mode", "ergodicStates", "foldedPiFrac", "minRMSD")
	a := adaptive.Generations[len(adaptive.Generations)-1]
	e := even.Generations[len(even.Generations)-1]
	fmt.Fprintf(&b, "%-10s %-14d %-14.3f %-12.2f\n", "adaptive", a.States, a.FoldedPiFrac, a.MinRMSD)
	fmt.Fprintf(&b, "%-10s %-14d %-14.3f %-12.2f\n", "even", e.States, e.FoldedPiFrac, e.MinRMSD)
	return b.String(), nil
}

// Overlay returns a tiny live-overlay demonstration summary (Fig 1 shape):
// three servers in a chain relaying work — used by the quickstart output.
func OverlayDemo() (string, error) {
	p := VillinParams(ScaleSmall)
	p.NStarts = 2
	p.TasksPerStart = 2
	p.SegmentsPerGen = 8
	p.Generations = 1
	f, err := core.NewFabric(core.FabricConfig{Servers: 3, WorkersPerServer: 1})
	if err != nil {
		return "", err
	}
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := f.Submit(ctx, "demo", controller.MSMControllerName, &p); err != nil {
		return "", err
	}
	st, err := f.Wait(ctx, "demo")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "3-server chain, 3 workers: project %s (%s), %d commands finished, %d bytes moved\n",
		st.Name, st.State, st.Finished, f.Net.BytesSent())
	return b.String(), nil
}
