package experiments

import (
	"strings"
	"testing"

	"copernicus/internal/controller"
)

func TestVillinParamsScales(t *testing.T) {
	small := VillinParams(ScaleSmall)
	paper := VillinParams(ScalePaper)
	if small.NStarts >= paper.NStarts {
		t.Error("small scale should have fewer starts")
	}
	if paper.NStarts != 9 || paper.TasksPerStart != 25 || paper.SegmentNs != 50 {
		t.Errorf("paper scale deviates from the §3 protocol: %+v", paper)
	}
	if paper.Generations != 8 {
		t.Errorf("paper generations = %d, want 8", paper.Generations)
	}
}

// runSmallOnce caches one reduced-scale run for the formatter tests.
var cachedRes *controller.MSMResult

func smallResult(t *testing.T) *controller.MSMResult {
	t.Helper()
	if cachedRes != nil {
		return cachedRes
	}
	if testing.Short() {
		t.Skip("skipping fabric run in -short mode")
	}
	res, err := RunVillin(ScaleSmall, 4)
	if err != nil {
		t.Fatal(err)
	}
	cachedRes = res
	return res
}

func TestRunVillinAndFigFormatters(t *testing.T) {
	res := smallResult(t)
	if len(res.Generations) != VillinParams(ScaleSmall).Generations {
		t.Fatalf("generations = %d", len(res.Generations))
	}
	for name, f := range map[string]func(*controller.MSMResult) string{
		"Fig2": Fig2, "Fig3": Fig3, "Fig4": Fig4, "Fig5": Fig5,
	} {
		out := f(res)
		if !strings.Contains(out, "#") || len(out) < 50 {
			t.Errorf("%s output suspiciously small:\n%s", name, out)
		}
	}
	// Fig 4 must include the fraction-folded summary line.
	if !strings.Contains(Fig4(res), "final fraction folded") {
		t.Error("Fig4 missing the headline line")
	}
	// Fig 2 must list representative trajectories.
	if !strings.Contains(Fig2(res), "traj-") {
		t.Error("Fig2 missing trajectory traces")
	}
}

func TestFig6Measurement(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fabric run in -short mode")
	}
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if r.RankBytesPerStep <= 0 {
		t.Error("no rank-level traffic measured")
	}
	if r.EnsembleBytes <= 0 || r.EnsembleSeconds <= 0 {
		t.Error("no ensemble-level traffic measured")
	}
	if r.HeartbeatBytes <= 0 || r.HeartbeatBytes >= 200 {
		t.Errorf("heartbeat = %d bytes, paper requires <200", r.HeartbeatBytes)
	}
	// The hierarchy claim: per-step simulation traffic exceeds per-second
	// ensemble traffic by orders of magnitude at these scales.
	out := FormatFig6(r)
	if !strings.Contains(out, "message passing") || !strings.Contains(out, "heartbeat") {
		t.Errorf("Fig6 table malformed:\n%s", out)
	}
}

func TestFig789Sweep(t *testing.T) {
	points, err := Fig7Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 30 {
		t.Fatalf("sweep points = %d", len(points))
	}
	f7, f8, f9 := FormatFig7(points), FormatFig8(points), FormatFig9(points)
	for name, out := range map[string]string{"Fig7": f7, "Fig8": f8, "Fig9": f9} {
		if len(strings.Split(out, "\n")) < len(points) {
			t.Errorf("%s table too short", name)
		}
	}
	// The c=96 line must reach 21,600 cores (the 96×225 saturation point).
	if !strings.Contains(f7, "21600") {
		t.Error("sweep missing the 21,600-core point")
	}
}

func TestT1T2Reports(t *testing.T) {
	s1, err := T1Heartbeat()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s1, "bytes") {
		t.Errorf("T1 report: %s", s1)
	}
	s2, err := T2SingleSimScaling()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s2, "ns/day") || !strings.Contains(s2, "bytes/step") {
		t.Errorf("T2 report: %s", s2)
	}
}

func TestOverlayDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fabric run in -short mode")
	}
	s, err := OverlayDemo()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "finished") {
		t.Errorf("demo did not finish: %s", s)
	}
}
