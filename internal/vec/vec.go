// Package vec provides small fixed-dimension vector math used throughout the
// molecular dynamics substrate: 3-vectors, periodic boundary conditions with
// minimum-image convention, and structural comparison helpers (RMSD and
// optimal superposition).
//
// All types are plain values; none of the operations allocate, which keeps
// the force kernels in internal/md free of garbage-collector pressure.
package vec

import (
	"fmt"
	"math"
)

// V3 is a three-component vector of float64, the basic coordinate type for
// positions, velocities and forces.
type V3 struct {
	X, Y, Z float64
}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Zero is the zero vector.
var Zero = V3{}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v V3) Scale(s float64) V3 { return V3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the inner product of v and w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns |v|².
func (v V3) Norm2() float64 { return v.Dot(v) }

// Norm returns |v|.
func (v V3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Unit returns v normalised to unit length. The zero vector is returned
// unchanged.
func (v V3) Unit() V3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// MulAdd returns v + s*w, the fused form used in integrators.
func (v V3) MulAdd(s float64, w V3) V3 {
	return V3{v.X + s*w.X, v.Y + s*w.Y, v.Z + s*w.Z}
}

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// Dist returns |v - w|.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Norm() }

// IsFinite reports whether all components are finite numbers.
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v V3) String() string { return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z) }

// Box is an orthorhombic periodic simulation box with edge lengths L.
// A zero component disables periodicity along that axis.
type Box struct {
	L V3
}

// NewCubicBox returns a cubic box with edge length l.
func NewCubicBox(l float64) Box { return Box{L: V3{l, l, l}} }

// Volume returns the box volume; zero-length axes contribute factor 1 so a
// fully aperiodic box reports volume 1 (useful as a neutral density factor).
func (b Box) Volume() float64 {
	v := 1.0
	for _, l := range [3]float64{b.L.X, b.L.Y, b.L.Z} {
		if l > 0 {
			v *= l
		}
	}
	return v
}

// Wrap returns p wrapped into the primary cell [0, L) on each periodic axis.
func (b Box) Wrap(p V3) V3 {
	return V3{wrap1(p.X, b.L.X), wrap1(p.Y, b.L.Y), wrap1(p.Z, b.L.Z)}
}

func wrap1(x, l float64) float64 {
	if l <= 0 {
		return x
	}
	x -= l * math.Floor(x/l)
	// Guard against x == l from floating point rounding.
	if x >= l {
		x -= l
	}
	return x
}

// MinImage returns the minimum-image displacement d = p - q, i.e. the
// shortest vector from q to p under periodic boundary conditions.
func (b Box) MinImage(p, q V3) V3 {
	d := p.Sub(q)
	return V3{minImage1(d.X, b.L.X), minImage1(d.Y, b.L.Y), minImage1(d.Z, b.L.Z)}
}

func minImage1(d, l float64) float64 {
	if l <= 0 {
		return d
	}
	d -= l * math.Round(d/l)
	return d
}

// Dist returns the minimum-image distance between p and q.
func (b Box) Dist(p, q V3) float64 { return b.MinImage(p, q).Norm() }

// Centroid returns the arithmetic mean of the points. It panics on an empty
// slice because a centroid of nothing is a programming error, not a runtime
// condition.
func Centroid(ps []V3) V3 {
	if len(ps) == 0 {
		panic("vec: centroid of empty point set")
	}
	var c V3
	for _, p := range ps {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(ps)))
}

// RMSD returns the root-mean-square deviation between two conformations of
// equal length, without superposition. It panics if the lengths differ.
func RMSD(a, b []V3) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: RMSD length mismatch %d != %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += a[i].Sub(b[i]).Norm2()
	}
	return math.Sqrt(s / float64(len(a)))
}

// CenteredRMSD translates both conformations to their centroids before
// computing the RMSD. This removes rigid translation but not rotation; it is
// the metric used by the coarse-grained folding surrogate where rotational
// alignment is already implicit in the internal-coordinate representation.
func CenteredRMSD(a, b []V3) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: CenteredRMSD length mismatch %d != %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	ca, cb := Centroid(a), Centroid(b)
	var s float64
	for i := range a {
		d := a[i].Sub(ca).Sub(b[i].Sub(cb))
		s += d.Norm2()
	}
	return math.Sqrt(s / float64(len(a)))
}

// KabschRMSD returns the minimum RMSD between conformations a and b over all
// rigid-body translations and rotations (the Kabsch superposition). It is
// the Cα-RMSD metric of the paper's Figs 2–5.
//
// The optimal rotation is found by diagonalising the 4x4 quaternion form of
// the covariance matrix (Horn's method), which is robust against reflections.
func KabschRMSD(a, b []V3) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: KabschRMSD length mismatch %d != %d", len(a), len(b)))
	}
	n := len(a)
	if n == 0 {
		return 0
	}
	ca, cb := Centroid(a), Centroid(b)

	// Covariance matrix R = sum (a_i - ca) (b_i - cb)^T and the invariant
	// G = sum |a|^2 + |b|^2 after centering.
	var r [3][3]float64
	var g float64
	for i := 0; i < n; i++ {
		p := a[i].Sub(ca)
		q := b[i].Sub(cb)
		g += p.Norm2() + q.Norm2()
		r[0][0] += p.X * q.X
		r[0][1] += p.X * q.Y
		r[0][2] += p.X * q.Z
		r[1][0] += p.Y * q.X
		r[1][1] += p.Y * q.Y
		r[1][2] += p.Y * q.Z
		r[2][0] += p.Z * q.X
		r[2][1] += p.Z * q.Y
		r[2][2] += p.Z * q.Z
	}

	// Horn's quaternion matrix.
	k := [4][4]float64{
		{r[0][0] + r[1][1] + r[2][2], r[1][2] - r[2][1], r[2][0] - r[0][2], r[0][1] - r[1][0]},
		{r[1][2] - r[2][1], r[0][0] - r[1][1] - r[2][2], r[0][1] + r[1][0], r[2][0] + r[0][2]},
		{r[2][0] - r[0][2], r[0][1] + r[1][0], -r[0][0] + r[1][1] - r[2][2], r[1][2] + r[2][1]},
		{r[0][1] - r[1][0], r[2][0] + r[0][2], r[1][2] + r[2][1], -r[0][0] - r[1][1] + r[2][2]},
	}
	lmax := largestEigenvalueSym4(k)
	msd := (g - 2*lmax) / float64(n)
	if msd < 0 {
		msd = 0 // rounding guard
	}
	return math.Sqrt(msd)
}

// largestEigenvalueSym4 returns the largest eigenvalue of a symmetric 4x4
// matrix by shifted power iteration. The shift by the Gershgorin bound makes
// the dominant eigenvalue of (K + sI) the one with the largest algebraic
// value of K, which is what superposition needs.
func largestEigenvalueSym4(k [4][4]float64) float64 {
	// Gershgorin shift so all eigenvalues of k+shift*I are positive.
	shift := 0.0
	for i := 0; i < 4; i++ {
		row := 0.0
		for j := 0; j < 4; j++ {
			if i != j {
				row += math.Abs(k[i][j])
			}
		}
		if s := row - k[i][i]; s > shift {
			shift = s
		}
	}
	shift += 1
	v := [4]float64{1, 0.5, 0.25, 0.125}
	lam := 0.0
	for iter := 0; iter < 200; iter++ {
		var w [4]float64
		for i := 0; i < 4; i++ {
			s := shift * v[i]
			for j := 0; j < 4; j++ {
				s += k[i][j] * v[j]
			}
			w[i] = s
		}
		n := math.Sqrt(w[0]*w[0] + w[1]*w[1] + w[2]*w[2] + w[3]*w[3])
		if n == 0 {
			return 0
		}
		for i := range w {
			w[i] /= n
		}
		newLam := n - shift
		if math.Abs(newLam-lam) < 1e-13*(1+math.Abs(newLam)) && iter > 3 {
			return newLam
		}
		lam = newLam
		v = w
	}
	return lam
}
