package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddSubScale(t *testing.T) {
	v := New(1, 2, 3)
	w := New(4, -5, 6)
	if got := v.Add(w); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != New(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != New(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Neg() {
		t.Errorf("y cross x = %v, want -z", got)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x dot y = %v", got)
	}
	v := New(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestUnit(t *testing.T) {
	v := New(0, 3, 4)
	u := v.Unit()
	if !almostEq(u.Norm(), 1, 1e-14) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if Zero.Unit() != Zero {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestMulAdd(t *testing.T) {
	v := New(1, 1, 1)
	got := v.MulAdd(2, New(1, 2, 3))
	if got != New(3, 5, 7) {
		t.Errorf("MulAdd = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestPropertyCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := New(clamp(ax), clamp(ay), clamp(az))
		b := New(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return math.Abs(c.Dot(a)) < 1e-9*scale*scale && math.Abs(c.Dot(b)) < 1e-9*scale*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary float64 quickcheck inputs into a well-behaved range.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func TestBoxWrap(t *testing.T) {
	b := NewCubicBox(10)
	cases := []struct{ in, want V3 }{
		{New(5, 5, 5), New(5, 5, 5)},
		{New(11, -1, 25), New(1, 9, 5)},
		{New(-0.5, 10, 0), New(9.5, 0, 0)},
	}
	for _, c := range cases {
		got := b.Wrap(c.in)
		if got.Sub(c.want).Norm() > 1e-12 {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBoxWrapAperiodic(t *testing.T) {
	b := Box{} // no periodicity
	p := New(123, -456, 789)
	if b.Wrap(p) != p {
		t.Error("aperiodic box must not wrap")
	}
	if b.MinImage(p, Zero) != p {
		t.Error("aperiodic min image must be plain difference")
	}
	if b.Volume() != 1 {
		t.Errorf("aperiodic volume = %v, want 1", b.Volume())
	}
}

func TestMinImage(t *testing.T) {
	b := NewCubicBox(10)
	// Points near opposite faces are actually close.
	d := b.MinImage(New(9.5, 0, 0), New(0.5, 0, 0))
	if !almostEq(d.Norm(), 1, 1e-12) {
		t.Errorf("MinImage distance = %v, want 1", d.Norm())
	}
	if !almostEq(b.Dist(New(9.5, 0, 0), New(0.5, 0, 0)), 1, 1e-12) {
		t.Errorf("Dist via min image wrong")
	}
}

func TestPropertyWrapInBox(t *testing.T) {
	b := NewCubicBox(7.3)
	f := func(x, y, z float64) bool {
		p := b.Wrap(New(clamp(x), clamp(y), clamp(z)))
		return p.X >= 0 && p.X < 7.3 && p.Y >= 0 && p.Y < 7.3 && p.Z >= 0 && p.Z < 7.3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMinImageShortest(t *testing.T) {
	b := NewCubicBox(5)
	f := func(x, y, z float64) bool {
		d := b.MinImage(New(clamp(x), clamp(y), clamp(z)), Zero)
		return math.Abs(d.X) <= 2.5+1e-9 && math.Abs(d.Y) <= 2.5+1e-9 && math.Abs(d.Z) <= 2.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentroid(t *testing.T) {
	ps := []V3{New(0, 0, 0), New(2, 0, 0), New(1, 3, 0)}
	c := Centroid(ps)
	if c.Sub(New(1, 1, 0)).Norm() > 1e-14 {
		t.Errorf("Centroid = %v", c)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid of empty slice should panic")
		}
	}()
	Centroid(nil)
}

func TestRMSDIdentical(t *testing.T) {
	a := []V3{New(1, 2, 3), New(4, 5, 6)}
	if RMSD(a, a) != 0 {
		t.Error("RMSD of identical conformations should be 0")
	}
	if CenteredRMSD(a, a) != 0 {
		t.Error("CenteredRMSD of identical conformations should be 0")
	}
	if KabschRMSD(a, a) > 1e-6 {
		t.Errorf("KabschRMSD of identical conformations = %v", KabschRMSD(a, a))
	}
}

func TestRMSDKnown(t *testing.T) {
	a := []V3{New(0, 0, 0), New(1, 0, 0)}
	b := []V3{New(0, 0, 0), New(1, 0, 2)}
	// Displacements are (0,0,0) and (0,0,2): RMSD = sqrt(4/2) = sqrt2.
	if !almostEq(RMSD(a, b), math.Sqrt2, 1e-12) {
		t.Errorf("RMSD = %v", RMSD(a, b))
	}
}

func TestCenteredRMSDTranslationInvariant(t *testing.T) {
	a := []V3{New(0, 0, 0), New(1, 0, 0), New(0, 2, 0)}
	shift := New(5, -3, 7)
	b := make([]V3, len(a))
	for i := range a {
		b[i] = a[i].Add(shift)
	}
	if got := CenteredRMSD(a, b); got > 1e-12 {
		t.Errorf("CenteredRMSD after pure translation = %v, want 0", got)
	}
}

func TestKabschRotationInvariant(t *testing.T) {
	a := []V3{New(0, 0, 0), New(1, 0, 0), New(0, 2, 0), New(0, 0, 3), New(1, 1, 1)}
	// Rotate by 90 degrees about z and translate.
	b := make([]V3, len(a))
	for i, p := range a {
		b[i] = New(-p.Y, p.X, p.Z).Add(New(10, -4, 2))
	}
	if got := KabschRMSD(a, b); got > 1e-6 {
		t.Errorf("KabschRMSD after rigid motion = %v, want ~0", got)
	}
	// Plain RMSD must be large in comparison.
	if RMSD(a, b) < 1 {
		t.Error("sanity: plain RMSD should be large for translated conformation")
	}
}

func TestKabschLessOrEqualPlain(t *testing.T) {
	a := []V3{New(0, 0, 0), New(1.2, 0.1, 0), New(0.3, 2.1, 0.2), New(-1, 0.5, 3)}
	b := []V3{New(0.1, 0, 0.2), New(1, 0.3, -0.1), New(0.5, 1.9, 0.4), New(-0.9, 0.4, 2.7)}
	if KabschRMSD(a, b) > CenteredRMSD(a, b)+1e-9 {
		t.Errorf("Kabsch %v exceeds centered %v", KabschRMSD(a, b), CenteredRMSD(a, b))
	}
	if CenteredRMSD(a, b) > RMSD(a, b)+1e-9 {
		t.Errorf("Centered %v exceeds plain %v", CenteredRMSD(a, b), RMSD(a, b))
	}
}

func TestRMSDLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"RMSD":         func() { RMSD([]V3{Zero}, nil) },
		"CenteredRMSD": func() { CenteredRMSD([]V3{Zero}, nil) },
		"KabschRMSD":   func() { KabschRMSD([]V3{Zero}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestVolume(t *testing.T) {
	if got := NewCubicBox(2).Volume(); got != 8 {
		t.Errorf("Volume = %v", got)
	}
	b := Box{L: New(2, 0, 3)} // one aperiodic axis
	if got := b.Volume(); got != 6 {
		t.Errorf("Volume with aperiodic axis = %v", got)
	}
}
