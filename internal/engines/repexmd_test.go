package engines

import (
	"bytes"
	"context"
	"testing"

	"copernicus/internal/md"
	"copernicus/internal/wire"
)

func repexCfg(temp float64) md.Config {
	cfg := md.DefaultConfig()
	cfg.Thermostat = md.NoseHoover
	cfg.Temperature = temp
	cfg.Cutoff = 0.7
	cfg.Skin = 0.1
	cfg.Shards = 1
	return cfg
}

func repexSpec(t *testing.T, p *RepexMDPayload, ck []byte) wire.CommandSpec {
	t.Helper()
	payload, err := wire.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return wire.CommandSpec{ID: "rx", Project: "p", Type: RepexMDName,
		MinCores: 1, MaxCores: 1, Payload: payload, Checkpoint: ck}
}

// TestRepexMDSegmentChain runs two chained segments with a temperature
// change at the boundary — the exchange hand-off a controller performs
// after an accepted swap — and checks the step counter carries through.
func TestRepexMDSegmentChain(t *testing.T) {
	eng := &RepexMDEngine{}
	p1 := &RepexMDPayload{SystemKind: "ljfluid", SystemN: 64, Density: 8,
		BuildSeed: 1, Config: repexCfg(120), TargetStep: 60}
	raw1, err := eng.Run(context.Background(), repexSpec(t, p1, nil), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out1 RepexMDOutput
	if err := wire.Unmarshal(raw1, &out1); err != nil {
		t.Fatal(err)
	}
	if out1.Steps != 60 || len(out1.State) == 0 || out1.Potential == 0 {
		t.Fatalf("segment 1 = %+v", out1)
	}

	// Segment 2 continues the configuration on a hotter rung.
	p2 := &RepexMDPayload{SystemKind: "ljfluid", SystemN: 64, Density: 8,
		BuildSeed: 1, Config: repexCfg(180), TargetStep: 120, StartState: out1.State}
	raw2, err := eng.Run(context.Background(), repexSpec(t, p2, nil), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out2 RepexMDOutput
	if err := wire.Unmarshal(raw2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Steps != 120 {
		t.Errorf("segment 2 steps = %d, want cumulative 120", out2.Steps)
	}
}

// TestRepexMDPreemptionResumeBitwise: a segment preempted mid-way and
// resumed from its checkpoint must land on exactly the boundary state of
// an uninterrupted run — REMD failover depends on md's bitwise-exact
// checkpoint resume surviving the engine layer.
func TestRepexMDPreemptionResumeBitwise(t *testing.T) {
	eng := &RepexMDEngine{}
	p := &RepexMDPayload{SystemKind: "ljfluid", SystemN: 64, Density: 8,
		BuildSeed: 1, Config: repexCfg(120), TargetStep: 100, CheckpointEvery: 40}

	var ck []byte
	full, err := eng.Run(context.Background(), repexSpec(t, p, nil), 1, func(c []byte) {
		if ck == nil {
			ck = append([]byte(nil), c...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no preemption checkpoint emitted")
	}
	resumed, err := eng.Run(context.Background(), repexSpec(t, p, ck), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, resumed) {
		var a, b RepexMDOutput
		_ = wire.Unmarshal(full, &a)
		_ = wire.Unmarshal(resumed, &b)
		t.Fatalf("resumed output differs: %+v vs %+v", a, b)
	}
}

func TestRepexMDErrors(t *testing.T) {
	eng := &RepexMDEngine{}
	p := &RepexMDPayload{SystemKind: "ljfluid", SystemN: 16, Config: repexCfg(120)}
	if _, err := eng.Run(context.Background(), repexSpec(t, p, nil), 1, nil); err == nil {
		t.Error("zero target step accepted")
	}
	p.TargetStep = 10
	p.SystemKind = "nonsense"
	if _, err := eng.Run(context.Background(), repexSpec(t, p, nil), 1, nil); err == nil {
		t.Error("unknown system kind accepted")
	}
}
