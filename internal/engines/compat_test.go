package engines

import (
	"testing"

	"copernicus/internal/landscape"
	"copernicus/internal/wire"
)

// TestPreStreamLandscapePayloadDecodes pins the streaming rollout contract
// at the engine payload layer: a payload encoded before StreamEveryNs
// existed decodes with StreamEveryNs == 0 — exactly the "batch mode" value,
// so commands journaled by a pre-streaming server replay with the old
// behaviour instead of an error.
func TestPreStreamLandscapePayloadDecodes(t *testing.T) {
	type landscapePayloadPreStream struct {
		Params     landscape.Params
		Start      []float64
		DurationNs float64
		FrameNs    float64
		Seed       uint64
	}
	raw, err := wire.Marshal(&landscapePayloadPreStream{
		Start: []float64{1, 2}, DurationNs: 50, FrameNs: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got LandscapePayload
	if err := wire.Unmarshal(raw, &got); err != nil {
		t.Fatalf("pre-stream payload failed to decode: %v", err)
	}
	if got.DurationNs != 50 || got.FrameNs != 2 || got.Seed != 7 || len(got.Start) != 2 {
		t.Errorf("pre-stream fields corrupted: %+v", got)
	}
	if got.StreamEveryNs != 0 {
		t.Errorf("StreamEveryNs must decode as 0 from pre-stream payloads, got %g", got.StreamEveryNs)
	}
}

// TestStreamPayloadDecodesByPreStreamShape covers the reverse direction: a
// streaming payload decodes under the pre-stream field set (gob drops
// unknown fields), so an old engine fed by a new controller simply runs the
// segment without streaming — the final result blob still carries every
// frame.
func TestStreamPayloadDecodesByPreStreamShape(t *testing.T) {
	type landscapePayloadPreStream struct {
		Params     landscape.Params
		Start      []float64
		DurationNs float64
		FrameNs    float64
		Seed       uint64
	}
	raw, err := wire.Marshal(&LandscapePayload{
		Start: []float64{0, 0}, DurationNs: 20, FrameNs: 2, Seed: 3, StreamEveryNs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got landscapePayloadPreStream
	if err := wire.Unmarshal(raw, &got); err != nil {
		t.Fatalf("stream payload failed to decode under pre-stream shape: %v", err)
	}
	if got.DurationNs != 20 || got.FrameNs != 2 || got.Seed != 3 {
		t.Errorf("shared fields corrupted: %+v", got)
	}
}
