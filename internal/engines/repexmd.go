package engines

import (
	"context"
	"fmt"

	"copernicus/internal/md"
	"copernicus/internal/wire"
)

// --- replica-exchange MD segment engine ---

// RepexMDName is the executable name of the REMD segment engine.
const RepexMDName = "repex-md"

// RepexMDPayload describes one replica-exchange segment: run a replica of
// the payload's system at Config.Temperature until TargetStep, starting
// from StartState (the previous segment's boundary state, possibly handed
// over from a neighbouring rung after an accepted exchange) or fresh when
// empty. A mid-segment preemption checkpoint in spec.Checkpoint takes
// precedence over StartState — it is the same run, further along.
type RepexMDPayload struct {
	SystemKind string // "ljfluid", "water", "polymer", "peptide"
	SystemN    int
	Density    float64
	BuildSeed  uint64
	Config     md.Config // Temperature carries this segment's rung
	// TargetStep is the absolute step count at the segment boundary.
	// Absolute, not relative: resuming from a mid-segment checkpoint must
	// stop at the same boundary as the original dispatch.
	TargetStep int64
	// CheckpointEvery emits a preemption checkpoint every that many steps.
	CheckpointEvery int
	// StartState is the md checkpoint the segment continues from.
	StartState []byte
}

// RepexMDOutput reports the segment-boundary state the exchange decision
// needs: the final potential energy and the checkpoint to hand to the next
// segment (on this rung or, after an accepted swap, a neighbouring one).
type RepexMDOutput struct {
	Potential   float64 // final potential energy U, kJ/mol
	Temperature float64 // instantaneous kinetic temperature at the boundary
	Steps       int64
	State       []byte // md checkpoint at the segment boundary
}

// RepexMDEngine runs replica-exchange MD segments.
type RepexMDEngine struct{}

// Name implements Engine.
func (e *RepexMDEngine) Name() string { return RepexMDName }

// Run implements Engine.
func (e *RepexMDEngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	var p RepexMDPayload
	if err := wire.Unmarshal(spec.Payload, &p); err != nil {
		return nil, fmt.Errorf("engines: repex payload: %w", err)
	}
	if p.TargetStep <= 0 {
		return nil, fmt.Errorf("engines: repex segment with no target step")
	}
	mp := MDPayload{SystemKind: p.SystemKind, SystemN: p.SystemN,
		Density: p.Density, BuildSeed: p.BuildSeed}
	sys, err := mp.BuildSystem()
	if err != nil {
		return nil, err
	}
	cfg := p.Config
	if cores < 1 {
		cores = 1
	}
	if cfg.Shards <= 0 || cfg.Shards > cores {
		cfg.Shards = cores
	}
	// Checkpoint precedence: a preemption checkpoint is this segment
	// partway done; StartState is the previous segment's boundary. The
	// rung temperature always comes from cfg — that is how an accepted
	// exchange re-thermostats the handed-over configuration.
	source := spec.Checkpoint
	if len(source) == 0 {
		source = p.StartState
	}
	var sim *md.Sim
	if len(source) > 0 {
		sim, err = md.Resume(sys, cfg, source)
	} else {
		sim, err = md.New(sys, cfg)
	}
	if err != nil {
		return nil, err
	}
	defer sim.Close()

	for sim.StepCount() < p.TargetStep {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		chunk := int(p.TargetStep - sim.StepCount())
		if p.CheckpointEvery > 0 && chunk > p.CheckpointEvery {
			chunk = p.CheckpointEvery
		}
		if err := sim.Step(chunk); err != nil {
			return nil, err
		}
		if p.CheckpointEvery > 0 && progress != nil && sim.StepCount() < p.TargetStep {
			if ck, cerr := sim.Checkpoint(); cerr == nil {
				progress(ck)
			}
		}
	}
	state, err := sim.Checkpoint()
	if err != nil {
		return nil, err
	}
	out := RepexMDOutput{
		Potential:   sim.Energies().Potential(),
		Temperature: sim.Temperature(),
		Steps:       sim.StepCount(),
		State:       state,
	}
	return wire.Marshal(&out)
}
