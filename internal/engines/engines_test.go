package engines

import (
	"context"
	"math"
	"testing"

	"copernicus/internal/landscape"
	"copernicus/internal/md"
	"copernicus/internal/stats"
	"copernicus/internal/wire"
)

func landscapeSpec(t *testing.T, p *LandscapePayload) wire.CommandSpec {
	t.Helper()
	payload, err := wire.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return wire.CommandSpec{ID: "c1", Project: "p", Type: LandscapeName, MinCores: 1, MaxCores: 1, Payload: payload}
}

func defaultLandscapePayload() *LandscapePayload {
	lp := landscape.DefaultParams()
	m, _ := landscape.New(lp)
	return &LandscapePayload{
		Params:     lp,
		Start:      m.UnfoldedStart(0, 1),
		DurationNs: 20,
		FrameNs:    2,
		Seed:       42,
	}
}

func TestLandscapeEngineBasics(t *testing.T) {
	eng := &LandscapeEngine{}
	out, err := eng.Run(context.Background(), landscapeSpec(t, defaultLandscapePayload()), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var res LandscapeOutput
	if err := wire.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 11 { // start + 10 frames
		t.Fatalf("frames = %d, want 11", len(res.Frames))
	}
	if len(res.RMSD) != len(res.Frames) || len(res.Times) != len(res.Frames) {
		t.Fatal("parallel arrays misaligned")
	}
	if math.Abs(res.Times[len(res.Times)-1]-20) > 1e-9 {
		t.Errorf("final time = %v", res.Times[len(res.Times)-1])
	}
	for _, r := range res.RMSD {
		if r < 0 || r > 30 {
			t.Errorf("implausible RMSD %v", r)
		}
	}
}

func TestLandscapeEngineDeterministic(t *testing.T) {
	eng := &LandscapeEngine{}
	run := func() LandscapeOutput {
		out, err := eng.Run(context.Background(), landscapeSpec(t, defaultLandscapePayload()), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		var res LandscapeOutput
		if err := wire.Unmarshal(out, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Frames {
		for d := range a.Frames[i] {
			if a.Frames[i][d] != b.Frames[i][d] {
				t.Fatal("engine not deterministic")
			}
		}
	}
}

func TestLandscapeEngineCheckpointResume(t *testing.T) {
	// Run to completion with checkpoints every 4 ns, capture the one at
	// ~8 ns, resume from it, and verify the tail matches the uninterrupted
	// run exactly — the §2.3 hand-off guarantee.
	eng := &LandscapeEngine{CheckpointEveryNs: 4}
	var checkpoints [][]byte
	spec := landscapeSpec(t, defaultLandscapePayload())
	full, err := eng.Run(context.Background(), spec, 1, func(ck []byte) {
		checkpoints = append(checkpoints, append([]byte(nil), ck...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(checkpoints) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	var fullOut LandscapeOutput
	if err := wire.Unmarshal(full, &fullOut); err != nil {
		t.Fatal(err)
	}

	resumeSpec := spec
	resumeSpec.Checkpoint = checkpoints[0]
	resumed, err := eng.Run(context.Background(), resumeSpec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resOut LandscapeOutput
	if err := wire.Unmarshal(resumed, &resOut); err != nil {
		t.Fatal(err)
	}
	if len(resOut.Frames) != len(fullOut.Frames) {
		t.Fatalf("resumed run has %d frames, full run %d", len(resOut.Frames), len(fullOut.Frames))
	}
	for i := range fullOut.Frames {
		for d := range fullOut.Frames[i] {
			if fullOut.Frames[i][d] != resOut.Frames[i][d] {
				t.Fatalf("frame %d differs after resume", i)
			}
		}
	}
}

func TestLandscapeEngineErrors(t *testing.T) {
	eng := &LandscapeEngine{}
	bad := landscapeSpec(t, defaultLandscapePayload())
	bad.Payload = []byte("junk")
	if _, err := eng.Run(context.Background(), bad, 1, nil); err == nil {
		t.Error("garbage payload accepted")
	}
	p := defaultLandscapePayload()
	p.DurationNs = 0
	if _, err := eng.Run(context.Background(), landscapeSpec(t, p), 1, nil); err == nil {
		t.Error("zero duration accepted")
	}
	p = defaultLandscapePayload()
	p.Params.Dimension = 0
	if _, err := eng.Run(context.Background(), landscapeSpec(t, p), 1, nil); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestLandscapeEngineCancellation(t *testing.T) {
	eng := &LandscapeEngine{}
	p := defaultLandscapePayload()
	p.DurationNs = 1e6 // would take forever
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, landscapeSpec(t, p), 1, nil); err == nil {
		t.Error("cancelled run returned no error")
	}
}

func TestMDEngineRuns(t *testing.T) {
	cfg := md.DefaultConfig()
	cfg.Thermostat = md.Berendsen
	cfg.Temperature = 120
	cfg.TauT = 0.1
	cfg.Cutoff = 0.7
	cfg.Skin = 0.1
	p := &MDPayload{
		SystemKind: "ljfluid", SystemN: 64, Density: 8, BuildSeed: 1,
		Config: cfg, Steps: 200, SampleEvery: 50,
	}
	payload, err := wire.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	spec := wire.CommandSpec{ID: "md1", Project: "p", Type: MDName, MinCores: 1, MaxCores: 1, Payload: payload}
	out, err := (&MDEngine{}).Run(context.Background(), spec, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var res MDOutput
	if err := wire.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if res.Steps != 200 {
		t.Errorf("steps = %d", res.Steps)
	}
	if len(res.Temperatures) < 4 {
		t.Errorf("samples = %d", len(res.Temperatures))
	}
	if res.Final.Total() == 0 {
		t.Error("final energies empty")
	}
}

func TestMDEngineCheckpointResume(t *testing.T) {
	cfg := md.DefaultConfig()
	cfg.Thermostat = md.NoseHoover
	cfg.Temperature = 120
	cfg.Cutoff = 0.7
	cfg.Skin = 0.1
	mk := func(ck []byte) wire.CommandSpec {
		p := &MDPayload{
			SystemKind: "ljfluid", SystemN: 64, Density: 8, BuildSeed: 1,
			Config: cfg, Steps: 100, CheckpointEvery: 40,
		}
		payload, err := wire.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return wire.CommandSpec{
			ID: "md1", Project: "p", Type: MDName, MinCores: 1, MaxCores: 1,
			Payload: payload, Checkpoint: ck,
		}
	}
	var ck []byte
	full, err := (&MDEngine{}).Run(context.Background(), mk(nil), 1, func(c []byte) {
		if ck == nil {
			ck = append([]byte(nil), c...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint emitted")
	}
	resumed, err := (&MDEngine{}).Run(context.Background(), mk(ck), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b MDOutput
	if err := wire.Unmarshal(full, &a); err != nil {
		t.Fatal(err)
	}
	if err := wire.Unmarshal(resumed, &b); err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final {
		t.Errorf("resumed energies differ: %+v vs %+v", a.Final, b.Final)
	}
}

func TestMDEngineErrors(t *testing.T) {
	eng := &MDEngine{}
	p := &MDPayload{SystemKind: "nonsense", SystemN: 10, Steps: 10, Config: md.DefaultConfig()}
	payload, _ := wire.Marshal(p)
	spec := wire.CommandSpec{ID: "x", Project: "p", Type: MDName, MinCores: 1, MaxCores: 1, Payload: payload}
	if _, err := eng.Run(context.Background(), spec, 1, nil); err == nil {
		t.Error("unknown system kind accepted")
	}
	p.SystemKind = "ljfluid"
	p.Steps = 0
	payload, _ = wire.Marshal(p)
	spec.Payload = payload
	if _, err := eng.Run(context.Background(), spec, 1, nil); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestBAREngineStatistics(t *testing.T) {
	p := &BARPayload{
		LambdaFrom: 0, LambdaTo: 1,
		Displacement: 1.0, Offset: 2.0,
		NSamples: 20000, Seed: 3,
	}
	payload, err := wire.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	spec := wire.CommandSpec{ID: "b", Project: "p", Type: BARName, MinCores: 1, MaxCores: 1, Payload: payload}
	out, err := (&BAREngine{}).Run(context.Background(), spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var res BAROutput
	if err := wire.Unmarshal(out, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Forward) != 20000 || len(res.Reverse) != 20000 {
		t.Fatalf("samples: %d fwd, %d rev", len(res.Forward), len(res.Reverse))
	}
	// ⟨W_F⟩ = ΔU mean from state 0 = d²/2 + offset; ⟨W_R⟩ = d²/2 − offset.
	wantF := 0.5*p.Displacement*p.Displacement + p.Offset
	wantR := 0.5*p.Displacement*p.Displacement - p.Offset
	if got := stats.Mean(res.Forward); math.Abs(got-wantF) > 0.05 {
		t.Errorf("⟨W_F⟩ = %v, want %v", got, wantF)
	}
	if got := stats.Mean(res.Reverse); math.Abs(got-wantR) > 0.05 {
		t.Errorf("⟨W_R⟩ = %v, want %v", got, wantR)
	}
	// The BAR estimate over these samples recovers the offset.
	est, err := EstimateWindow(res.Forward, res.Reverse, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.DeltaF-2.0) > 0.05 {
		t.Errorf("ΔF = %v, want 2.0", est.DeltaF)
	}
}

func TestBAREngineErrors(t *testing.T) {
	p := &BARPayload{NSamples: 0}
	payload, _ := wire.Marshal(p)
	spec := wire.CommandSpec{ID: "b", Project: "p", Type: BARName, MinCores: 1, MaxCores: 1, Payload: payload}
	if _, err := (&BAREngine{}).Run(context.Background(), spec, 1, nil); err == nil {
		t.Error("zero samples accepted")
	}
	spec.Payload = []byte("junk")
	if _, err := (&BAREngine{}).Run(context.Background(), spec, 1, nil); err == nil {
		t.Error("garbage payload accepted")
	}
}

func TestDefaultEngineSet(t *testing.T) {
	engs := Default()
	if len(engs) != 4 {
		t.Fatalf("default engines = %d", len(engs))
	}
	names := map[string]bool{}
	for _, e := range engs {
		names[e.Name()] = true
	}
	for _, want := range []string{LandscapeName, MDName, BARName, RepexMDName} {
		if !names[want] {
			t.Errorf("missing engine %q", want)
		}
	}
}
