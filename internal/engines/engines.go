// Package engines defines the simulation "executables" workers install —
// the pieces that play Gromacs' role in the paper's architecture — together
// with the payload structures controllers use to parameterise them.
//
// Three engines ship with the reproduction:
//
//   - "landscape-md": Brownian dynamics on the villin folding surrogate
//     (internal/landscape), the workhorse of the MSM experiments.
//   - "mdrun": the classical MD engine (internal/md) on LJ-fluid, water-box
//     or polymer systems, with full checkpoint/resume support.
//   - "bar-sample": work-value sampling for the BAR free-energy plugin.
//
// An engine checkpoints through the progress callback so the control plane
// can hand a half-finished command to another worker after a failure.
package engines

import (
	"context"
	"fmt"

	"copernicus/internal/bar"
	"copernicus/internal/landscape"
	"copernicus/internal/md"
	"copernicus/internal/rng"
	"copernicus/internal/topology"
	"copernicus/internal/wire"
)

// Engine executes commands of one type. Implementations must be safe for
// concurrent Run calls (workers run several commands at once).
type Engine interface {
	// Name is the executable name matched against CommandSpec.Type.
	Name() string
	// Run executes the command with the given core assignment. It may call
	// progress with intermediate checkpoints. A non-nil spec.Checkpoint
	// resumes a previous partial execution.
	Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func(checkpoint []byte)) (output []byte, err error)
}

// Streamer is an optional Engine extension: engines that can flush
// trajectory frames to the project server while a command runs implement
// it. Workers call RunStream instead of Run when the engine supports it;
// whether anything is actually emitted is decided by the command's payload
// (the landscape engine streams only when StreamEveryNs > 0), so the
// controller stays in charge of the flush cadence. Emitted chunks are an
// optimisation: the final output must still carry the complete trajectory,
// and emit must be called synchronously from the run goroutine.
type Streamer interface {
	Engine
	RunStream(ctx context.Context, spec wire.CommandSpec, cores int,
		progress func(checkpoint []byte), emit func(chunk *wire.FrameChunk)) (output []byte, err error)
}

// --- landscape engine ---

// LandscapeName is the executable name of the folding-surrogate engine.
const LandscapeName = "landscape-md"

// LandscapePayload parameterises one landscape trajectory segment.
type LandscapePayload struct {
	Params     landscape.Params
	Start      []float64 // starting conformation
	DurationNs float64
	FrameNs    float64 // frame recording interval
	Seed       uint64
	// StreamEveryNs, when positive, makes the engine flush accumulated
	// frames to the project server at this simulated-time interval (the
	// streaming-analysis pipeline). 0 disables streaming; decodes as 0 from
	// pre-stream frames, so old controllers get the batch behaviour.
	StreamEveryNs float64
}

// LandscapeOutput is the engine's result: the recorded trajectory and its
// RMSD-to-native series.
type LandscapeOutput struct {
	Times  []float64
	Frames [][]float64
	RMSD   []float64
}

// LandscapeCheckpoint is the mid-command resume state.
type LandscapeCheckpoint struct {
	X        []float64
	DoneNs   float64
	RngState []byte
	// Accumulated frames so far.
	Times  []float64
	Frames [][]float64
}

// LandscapeEngine runs folding-surrogate segments.
type LandscapeEngine struct {
	// CheckpointEveryNs inserts progress checkpoints at this interval;
	// 0 disables intermediate checkpoints.
	CheckpointEveryNs float64
}

// Name implements Engine.
func (e *LandscapeEngine) Name() string { return LandscapeName }

// Run implements Engine.
func (e *LandscapeEngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	return e.RunStream(ctx, spec, cores, progress, nil)
}

// RunStream implements Streamer: identical to Run, but when the payload
// sets StreamEveryNs (and emit is non-nil) the frames accumulated over each
// flush interval are emitted as a FrameChunk before the run completes. On a
// checkpoint resume, emission restarts after the checkpointed frames —
// anything the previous worker streamed beyond the checkpoint is
// re-produced deterministically and trimmed by the receiver's watermark.
func (e *LandscapeEngine) RunStream(ctx context.Context, spec wire.CommandSpec, cores int,
	progress func([]byte), emit func(*wire.FrameChunk)) ([]byte, error) {
	var p LandscapePayload
	if err := wire.Unmarshal(spec.Payload, &p); err != nil {
		return nil, fmt.Errorf("engines: landscape payload: %w", err)
	}
	model, err := landscape.New(p.Params)
	if err != nil {
		return nil, err
	}
	if p.DurationNs <= 0 || p.FrameNs <= 0 {
		return nil, fmt.Errorf("engines: landscape duration and frame interval must be positive")
	}

	// Either a fresh start or a checkpoint resume.
	x := append([]float64(nil), p.Start...)
	r := rng.New(p.Seed)
	var acc LandscapeCheckpoint
	if len(spec.Checkpoint) > 0 {
		if err := wire.Unmarshal(spec.Checkpoint, &acc); err != nil {
			return nil, fmt.Errorf("engines: landscape checkpoint: %w", err)
		}
		x = append(x[:0], acc.X...)
		if err := r.UnmarshalBinary(acc.RngState); err != nil {
			return nil, fmt.Errorf("engines: landscape checkpoint rng: %w", err)
		}
	} else {
		acc.Times = append(acc.Times, 0)
		acc.Frames = append(acc.Frames, append([]float64(nil), x...))
	}

	streaming := emit != nil && p.StreamEveryNs > 0
	seq := 0
	// emitted is the index of the first not-yet-streamed frame. Frame 0
	// duplicates the previous segment's end and is never streamed; after a
	// resume, the checkpointed prefix is the previous run's responsibility.
	emitted := len(acc.Frames)
	if emitted < 1 {
		emitted = 1
	}
	nextFlush := acc.DoneNs + p.StreamEveryNs
	flush := func(final bool) {
		if !streaming || emitted >= len(acc.Frames) {
			return
		}
		chunk := &wire.FrameChunk{
			Project:    spec.Project,
			CommandID:  spec.ID,
			Seq:        seq,
			FirstFrame: emitted,
			Times:      acc.Times[emitted:len(acc.Times):len(acc.Times)],
			Frames:     acc.Frames[emitted:len(acc.Frames):len(acc.Frames)],
			Final:      final,
		}
		chunk.RMSD = make([]float64, len(chunk.Frames))
		for i, f := range chunk.Frames {
			chunk.RMSD[i] = model.RMSD(f)
		}
		emit(chunk)
		seq++
		emitted = len(acc.Frames)
	}

	grad := make([]float64, len(x))
	stepsPerFrame := int(p.FrameNs/p.Params.Dt + 0.5)
	if stepsPerFrame < 1 {
		stepsPerFrame = 1
	}
	nextCkpt := acc.DoneNs + e.CheckpointEveryNs
	for acc.DoneNs+1e-9 < p.DurationNs {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		for s := 0; s < stepsPerFrame; s++ {
			model.Step(x, grad, r)
		}
		acc.DoneNs += p.FrameNs
		acc.Times = append(acc.Times, acc.DoneNs)
		acc.Frames = append(acc.Frames, append([]float64(nil), x...))

		if streaming && acc.DoneNs+1e-9 >= nextFlush && acc.DoneNs+1e-9 < p.DurationNs {
			nextFlush += p.StreamEveryNs
			flush(false)
		}
		if e.CheckpointEveryNs > 0 && progress != nil && acc.DoneNs >= nextCkpt && acc.DoneNs+1e-9 < p.DurationNs {
			nextCkpt += e.CheckpointEveryNs
			acc.X = append(acc.X[:0], x...)
			if st, err := r.MarshalBinary(); err == nil {
				acc.RngState = st
				if ck, err := wire.Marshal(&acc); err == nil {
					progress(ck)
				}
			}
		}
	}
	// Trailing frames since the last flush ride one Final chunk; the result
	// blob below still carries the complete trajectory either way.
	flush(true)

	out := LandscapeOutput{Times: acc.Times, Frames: acc.Frames}
	out.RMSD = make([]float64, len(out.Frames))
	for i, f := range out.Frames {
		out.RMSD[i] = model.RMSD(f)
	}
	return wire.Marshal(&out)
}

// --- md engine ---

// MDName is the executable name of the classical MD engine.
const MDName = "mdrun"

// MDPayload describes a classical MD command on a generated system.
type MDPayload struct {
	SystemKind string // "ljfluid", "water", "polymer", "peptide"
	SystemN    int    // atoms (ljfluid), molecules (water), beads (polymer)
	Density    float64
	BuildSeed  uint64
	Config     md.Config
	Steps      int
	// SampleEvery records energies every that many steps (0 = only final).
	SampleEvery int
	// CheckpointEvery emits a progress checkpoint every that many steps.
	CheckpointEvery int
}

// MDOutput reports the sampled observables.
type MDOutput struct {
	Times        []float64 // ps
	Temperatures []float64
	Potentials   []float64
	Final        md.Energies
	Steps        int64
}

// BuildSystem constructs the payload's molecular system.
func (p *MDPayload) BuildSystem() (*topology.System, error) {
	switch p.SystemKind {
	case "ljfluid":
		d := p.Density
		if d == 0 {
			d = 8
		}
		return topology.LJFluid(p.SystemN, d, p.BuildSeed)
	case "water":
		return topology.WaterBox(p.SystemN, p.BuildSeed)
	case "polymer":
		return topology.PolymerChain(p.SystemN, p.BuildSeed)
	case "peptide":
		return topology.Peptide(p.SystemN, p.BuildSeed)
	default:
		return nil, fmt.Errorf("engines: unknown system kind %q", p.SystemKind)
	}
}

// MDEngine runs classical MD commands.
type MDEngine struct{}

// Name implements Engine.
func (e *MDEngine) Name() string { return MDName }

// Run implements Engine.
func (e *MDEngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	var p MDPayload
	if err := wire.Unmarshal(spec.Payload, &p); err != nil {
		return nil, fmt.Errorf("engines: md payload: %w", err)
	}
	if p.Steps <= 0 {
		return nil, fmt.Errorf("engines: md command with no steps")
	}
	sys, err := p.BuildSystem()
	if err != nil {
		return nil, err
	}
	cfg := p.Config
	// Shard auto-sizing: the force-loop fan-out is clamped to the command's
	// core grant (a worker announcing -cores N must never run wider than
	// its grant), and Shards <= 0 auto-sizes to the full grant.
	if cores < 1 {
		cores = 1
	}
	if cfg.Shards <= 0 || cfg.Shards > cores {
		cfg.Shards = cores
	}
	var sim *md.Sim
	if len(spec.Checkpoint) > 0 {
		sim, err = md.Resume(sys, cfg, spec.Checkpoint)
	} else {
		sim, err = md.New(sys, cfg)
	}
	if err != nil {
		return nil, err
	}
	defer sim.Close()

	var out MDOutput
	sample := func() {
		out.Times = append(out.Times, sim.Time())
		out.Temperatures = append(out.Temperatures, sim.Temperature())
		out.Potentials = append(out.Potentials, sim.Energies().Potential())
	}
	if p.SampleEvery > 0 {
		sample()
	}
	target := int64(p.Steps)
	for sim.StepCount() < target {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		chunk := int(target - sim.StepCount())
		if p.SampleEvery > 0 && chunk > p.SampleEvery {
			chunk = p.SampleEvery
		}
		if p.CheckpointEvery > 0 && chunk > p.CheckpointEvery {
			chunk = p.CheckpointEvery
		}
		if err := sim.Step(chunk); err != nil {
			return nil, err
		}
		if p.SampleEvery > 0 && sim.StepCount()%int64(p.SampleEvery) == 0 {
			sample()
		}
		if p.CheckpointEvery > 0 && progress != nil && sim.StepCount() < target &&
			sim.StepCount()%int64(p.CheckpointEvery) == 0 {
			if ck, err := sim.Checkpoint(); err == nil {
				progress(ck)
			}
		}
	}
	out.Final = sim.Energies()
	out.Steps = sim.StepCount()
	return wire.Marshal(&out)
}

// --- BAR sampling engine ---

// BARName is the executable name of the free-energy sampling engine.
const BARName = "bar-sample"

// BARPayload asks for work-value samples between two harmonic alchemical
// states u_λ(x) = (x − λ·Displacement)²/2 + λ·Offset — the analytically
// solvable stand-in for the paper's solvation perturbations, with exact
// ΔF(0→1) = Offset.
type BARPayload struct {
	LambdaFrom, LambdaTo float64
	Displacement         float64
	Offset               float64
	NSamples             int
	Seed                 uint64
}

// BAROutput carries the sampled work values for one window.
type BAROutput struct {
	Forward []float64 // from λFrom ensemble
	Reverse []float64 // from λTo ensemble
}

// BAREngine samples alchemical work values.
type BAREngine struct{}

// Name implements Engine.
func (e *BAREngine) Name() string { return BARName }

// Run implements Engine.
func (e *BAREngine) Run(ctx context.Context, spec wire.CommandSpec, cores int, progress func([]byte)) ([]byte, error) {
	var p BARPayload
	if err := wire.Unmarshal(spec.Payload, &p); err != nil {
		return nil, fmt.Errorf("engines: bar payload: %w", err)
	}
	if p.NSamples <= 0 {
		return nil, fmt.Errorf("engines: bar command with no samples")
	}
	u := func(lambda, x float64) float64 {
		d := x - lambda*p.Displacement
		return d*d/2 + lambda*p.Offset
	}
	r := rng.New(p.Seed)
	var out BAROutput
	for i := 0; i < p.NSamples; i++ {
		// Exact canonical samples of each harmonic state.
		xa := p.LambdaFrom*p.Displacement + r.Norm()
		out.Forward = append(out.Forward, u(p.LambdaTo, xa)-u(p.LambdaFrom, xa))
		xb := p.LambdaTo*p.Displacement + r.Norm()
		out.Reverse = append(out.Reverse, u(p.LambdaFrom, xb)-u(p.LambdaTo, xb))
	}
	return wire.Marshal(&out)
}

// EstimateWindow runs BAR on a window's accumulated work values.
func EstimateWindow(fw, rv []float64, nBoot int, seed uint64) (bar.Result, error) {
	return bar.Estimate(fw, rv, nBoot, seed)
}

// Default returns the standard engine set a stock worker installs.
func Default() []Engine {
	return []Engine{
		&LandscapeEngine{CheckpointEveryNs: 10},
		&MDEngine{},
		&BAREngine{},
		&RepexMDEngine{},
	}
}
