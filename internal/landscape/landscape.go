// Package landscape implements the coarse-grained protein-folding surrogate
// that stands in for villin-in-explicit-solvent (see DESIGN.md §1): real
// villin trajectories need ~500,000 core-hours, but the MSM pipeline only
// consumes time series of conformations with two-state folding kinetics,
// metastable intermediates and an RMSD-to-native observable. This model
// produces exactly that statistical structure at laptop cost.
//
// The model is overdamped Langevin (Brownian) dynamics on a funnel free
// energy surface in d dimensions (d = 3 by default). The radial coordinate
// r = |x| is the folding progress variable: the native basin sits near
// r = 0, the unfolded ensemble near r = 1, separated by a tunable barrier.
// An angular modulation carves metastable intermediate wells at mid-radius,
// giving the Markov state model non-trivial structure, and the 3-d volume
// element supplies the configurational entropy that makes the unfolded state
// broad, just as for a real chain.
//
// Reduced units: energies in kT, times in ns, lengths dimensionless. The
// RMSD observable maps radius to Ångström so the analysis pipeline speaks
// the paper's units.
package landscape

import (
	"fmt"
	"math"

	"copernicus/internal/rng"
)

// Params defines the surrogate free-energy surface and its dynamics.
type Params struct {
	// Dimension is the configuration-space dimension (>= 2).
	Dimension int

	// Barrier is the folding barrier height in kT at the transition radius.
	Barrier float64

	// Tilt is a linear bias (kT per unit radius) toward the native basin;
	// larger values increase the equilibrium folded population.
	Tilt float64

	// Wells is the number of angular intermediate wells at mid-radius
	// (0 disables them) and WellDepth their depth in kT.
	Wells     int
	WellDepth float64

	// Diffusion is the diffusion coefficient in (length)²/ns, which sets
	// the overall folding timescale.
	Diffusion float64

	// Dt is the Brownian integration timestep in ns.
	Dt float64

	// RMSDPerRadius converts the radial coordinate to Cα-RMSD in Å.
	RMSDPerRadius float64

	// FoldedRMSD is the folded-state cutoff in Å (the paper uses 3.5 Å).
	FoldedRMSD float64
}

// DefaultParams returns the calibrated surface: folding t½ of roughly
// 500–600 ns and ~2/3 of the population folded by 2 µs under the paper's
// simulation protocol (see EXPERIMENTS.md for the measured values).
func DefaultParams() Params {
	return Params{
		Dimension:     3,
		Barrier:       5.0,
		Tilt:          7.6,
		Wells:         3,
		WellDepth:     1.5,
		Diffusion:     0.003,
		Dt:            0.005,
		RMSDPerRadius: 14.0,
		FoldedRMSD:    3.5,
	}
}

// Model is an immutable folding surrogate. It is safe for concurrent use;
// all mutable state lives in the caller-supplied RNG and coordinates.
type Model struct {
	p Params
}

// New validates the parameters and returns a Model.
func New(p Params) (*Model, error) {
	if p.Dimension < 2 {
		return nil, fmt.Errorf("landscape: dimension must be >= 2, got %d", p.Dimension)
	}
	if p.Barrier < 0 || p.WellDepth < 0 {
		return nil, fmt.Errorf("landscape: negative barrier or well depth")
	}
	if p.Wells < 0 {
		return nil, fmt.Errorf("landscape: negative well count")
	}
	if p.Diffusion <= 0 {
		return nil, fmt.Errorf("landscape: diffusion must be positive, got %g", p.Diffusion)
	}
	if p.Dt <= 0 {
		return nil, fmt.Errorf("landscape: timestep must be positive, got %g", p.Dt)
	}
	if p.RMSDPerRadius <= 0 || p.FoldedRMSD <= 0 {
		return nil, fmt.Errorf("landscape: RMSD mapping must be positive")
	}
	return &Model{p: p}, nil
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// Dim returns the configuration-space dimension.
func (m *Model) Dim() int { return m.p.Dimension }

// Potential returns the potential energy (in kT) at x.
//
// U(x) = 16·B·r²(r−1)² + Tilt·r + WellDepth·(1−cos(Wells·θ))·g(r)
//
// where the quartic has minima at r = 0 (native) and r = 1 (unfolded) with a
// barrier of height B at r = ½, the tilt favours the native basin, and the
// angular term (θ in the x₀x₁-plane, gated by a Gaussian g centred on the
// barrier region) carves intermediate wells.
func (m *Model) Potential(x []float64) float64 {
	r := norm(x)
	u := m.radialU(r)
	if m.p.Wells > 0 {
		theta := math.Atan2(x[1], x[0])
		u += m.p.WellDepth * (1 - math.Cos(float64(m.p.Wells)*theta)) * gate(r)
	}
	return u
}

func (m *Model) radialU(r float64) float64 {
	d := r - 1
	return 16*m.p.Barrier*r*r*d*d + m.p.Tilt*r
}

// gate localises the angular wells around the transition region.
func gate(r float64) float64 {
	d := r - 0.5
	return math.Exp(-d * d / 0.045)
}

// dGate is the derivative of gate with respect to r.
func dGate(r float64) float64 {
	d := r - 0.5
	return gate(r) * (-2 * d / 0.045)
}

// Gradient computes ∇U at x into out (len must equal Dim). It returns out.
func (m *Model) Gradient(x, out []float64) []float64 {
	r := norm(x)
	// dU_radial/dr
	d := r - 1
	dUdr := 16*m.p.Barrier*(2*r*d*d+2*r*r*d) + m.p.Tilt

	var dUdTheta, wellR float64
	if m.p.Wells > 0 {
		theta := math.Atan2(x[1], x[0])
		k := float64(m.p.Wells)
		dUdTheta = m.p.WellDepth * k * math.Sin(k*theta) * gate(r)
		wellR = m.p.WellDepth * (1 - math.Cos(k*theta)) * dGate(r)
	}

	if r < 1e-12 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	for i := range x {
		out[i] = (dUdr + wellR) * x[i] / r
	}
	if m.p.Wells > 0 {
		// θ depends only on x₀, x₁: ∂θ/∂x₀ = −x₁/ρ², ∂θ/∂x₁ = x₀/ρ².
		rho2 := x[0]*x[0] + x[1]*x[1]
		if rho2 > 1e-12 {
			out[0] += dUdTheta * (-x[1] / rho2)
			out[1] += dUdTheta * (x[0] / rho2)
		}
	}
	return out
}

// RMSD maps a conformation to its Cα-RMSD from the native structure in Å.
func (m *Model) RMSD(x []float64) float64 { return m.p.RMSDPerRadius * norm(x) }

// Folded reports whether x is within the folded-state RMSD cutoff.
func (m *Model) Folded(x []float64) bool { return m.RMSD(x) <= m.p.FoldedRMSD }

// FoldedRadius returns the radial coordinate of the folded cutoff.
func (m *Model) FoldedRadius() float64 { return m.p.FoldedRMSD / m.p.RMSDPerRadius }

// UnfoldedStart returns the i-th canonical unfolded starting conformation,
// mirroring the paper's nine extended-chain starts: points at radius ~1
// spread deterministically over directions, with seed-controlled jitter.
func (m *Model) UnfoldedStart(i int, seed uint64) []float64 {
	r := rng.New(seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
	x := make([]float64, m.p.Dimension)
	// Deterministic base direction from the index via a low-discrepancy
	// angle, jittered by the seed.
	theta := 2 * math.Pi * math.Mod(float64(i)*0.61803398875, 1)
	x[0] = math.Cos(theta)
	x[1] = math.Sin(theta)
	for d := 2; d < m.p.Dimension; d++ {
		x[d] = 0.3 * r.Norm()
	}
	// Jitter and renormalise to r ≈ 1.05 (slightly outside the unfolded
	// minimum so early dynamics relax inward, as extended chains do).
	for d := range x {
		x[d] += 0.05 * r.Norm()
	}
	n := norm(x)
	for d := range x {
		x[d] *= 1.05 / n
	}
	return x
}

// Step advances x in place by one Brownian step using the supplied RNG:
// x ← x − D ∇U dt + √(2 D dt) ξ  (kT = 1).
func (m *Model) Step(x []float64, grad []float64, r *rng.Source) {
	m.Gradient(x, grad)
	sd := math.Sqrt(2 * m.p.Diffusion * m.p.Dt)
	for i := range x {
		x[i] += -m.p.Diffusion*m.p.Dt*grad[i] + sd*r.Norm()
	}
}

// Traj is a simulated trajectory: frames of conformations at the given
// times (ns). Frames[0] is the starting conformation.
type Traj struct {
	Times  []float64
	Frames [][]float64
}

// Simulate runs Brownian dynamics from x0 for the given duration (ns),
// recording a frame every frameEvery ns (the first frame is x0 itself).
// x0 is not modified.
func (m *Model) Simulate(x0 []float64, duration, frameEvery float64, r *rng.Source) (Traj, error) {
	if len(x0) != m.p.Dimension {
		return Traj{}, fmt.Errorf("landscape: start has dimension %d, model %d", len(x0), m.p.Dimension)
	}
	if duration <= 0 || frameEvery <= 0 {
		return Traj{}, fmt.Errorf("landscape: duration and frame interval must be positive")
	}
	stepsPerFrame := int(math.Round(frameEvery / m.p.Dt))
	if stepsPerFrame < 1 {
		stepsPerFrame = 1
	}
	nFrames := int(math.Round(duration / frameEvery))
	if nFrames < 1 {
		nFrames = 1
	}

	x := append([]float64(nil), x0...)
	grad := make([]float64, len(x))
	tr := Traj{
		Times:  make([]float64, 0, nFrames+1),
		Frames: make([][]float64, 0, nFrames+1),
	}
	record := func(t float64) {
		tr.Times = append(tr.Times, t)
		tr.Frames = append(tr.Frames, append([]float64(nil), x...))
	}
	record(0)
	for f := 1; f <= nFrames; f++ {
		for s := 0; s < stepsPerFrame; s++ {
			m.Step(x, grad, r)
		}
		record(float64(f) * float64(stepsPerFrame) * m.p.Dt)
	}
	return tr, nil
}

// Last returns the final conformation of the trajectory.
func (t Traj) Last() []float64 {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// Duration returns the simulated time span in ns.
func (t Traj) Duration() float64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.Times[len(t.Times)-1] - t.Times[0]
}

// EquilibriumFoldedFraction estimates the Boltzmann-weight fraction of the
// folded region by radial quadrature of exp(−G(r)) with the d-dimensional
// volume element r^(d−1) (angular wells average out to a constant factor at
// this level). It is used to sanity-check calibrations, not in the pipeline.
func (m *Model) EquilibriumFoldedFraction() float64 {
	const rMax = 1.6
	const nBins = 4000
	dr := rMax / nBins
	var folded, total float64
	dim := float64(m.p.Dimension)
	rc := m.FoldedRadius()
	for i := 0; i < nBins; i++ {
		r := (float64(i) + 0.5) * dr
		w := math.Pow(r, dim-1) * math.Exp(-m.radialU(r))
		total += w
		if r <= rc {
			folded += w
		}
	}
	if total == 0 {
		return 0
	}
	return folded / total
}

func norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
