package landscape

import (
	"math"
	"testing"
	"testing/quick"

	"copernicus/internal/rng"
)

func defaultModel(t testing.TB) *Model {
	t.Helper()
	m, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Dimension = 1 },
		func(p *Params) { p.Barrier = -1 },
		func(p *Params) { p.WellDepth = -1 },
		func(p *Params) { p.Wells = -1 },
		func(p *Params) { p.Diffusion = 0 },
		func(p *Params) { p.Dt = 0 },
		func(p *Params) { p.RMSDPerRadius = 0 },
		func(p *Params) { p.FoldedRMSD = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPotentialShape(t *testing.T) {
	m := defaultModel(t)
	// Native (r~0) must be below unfolded (r~1) because of the tilt.
	native := m.Potential([]float64{0.01, 0, 0})
	unfolded := m.Potential([]float64{1, 0, 0})
	barrier := m.Potential([]float64{0.5, 0, 0})
	if native >= unfolded {
		t.Errorf("native U=%v should be below unfolded U=%v", native, unfolded)
	}
	if barrier <= native || barrier <= unfolded-m.Params().Tilt/2 {
		t.Errorf("barrier U=%v should sit above both basins (native %v, unfolded %v)",
			barrier, native, unfolded)
	}
}

func TestAngularWells(t *testing.T) {
	p := DefaultParams()
	p.Wells = 3
	p.WellDepth = 2
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// At the gate radius, θ=0 is a well bottom and θ=π/3 a well ridge.
	bottom := m.Potential([]float64{0.5, 0, 0})
	x := 0.5 * math.Cos(math.Pi/3)
	y := 0.5 * math.Sin(math.Pi/3)
	ridge := m.Potential([]float64{x, y, 0})
	if ridge-bottom < 1 {
		t.Errorf("angular modulation too weak: ridge %v vs bottom %v", ridge, bottom)
	}
	// With wells disabled the two points are degenerate.
	p.Wells = 0
	m0, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m0.Potential([]float64{0.5, 0, 0})-m0.Potential([]float64{x, y, 0})) > 1e-12 {
		t.Error("without wells the potential must be radially symmetric")
	}
}

func TestGradientMatchesNumerical(t *testing.T) {
	m := defaultModel(t)
	const h = 1e-6
	points := [][]float64{
		{0.3, 0.2, -0.1},
		{0.9, -0.4, 0.2},
		{0.05, 0.02, 0.01},
		{-0.5, 0.5, 0.3},
	}
	grad := make([]float64, 3)
	for _, x := range points {
		m.Gradient(x, grad)
		for d := 0; d < 3; d++ {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[d] += h
			xm[d] -= h
			num := (m.Potential(xp) - m.Potential(xm)) / (2 * h)
			if math.Abs(grad[d]-num) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("grad[%d] at %v = %v, numerical %v", d, x, grad[d], num)
			}
		}
	}
}

func TestGradientAtOrigin(t *testing.T) {
	m := defaultModel(t)
	grad := make([]float64, 3)
	m.Gradient([]float64{0, 0, 0}, grad)
	for d, g := range grad {
		if g != 0 {
			t.Errorf("gradient[%d] at origin = %v, want 0", d, g)
		}
	}
}

func TestRMSDMapping(t *testing.T) {
	m := defaultModel(t)
	if got := m.RMSD([]float64{1, 0, 0}); math.Abs(got-14) > 1e-12 {
		t.Errorf("RMSD at r=1 is %v, want 14", got)
	}
	if !m.Folded([]float64{0.1, 0, 0}) {
		t.Error("r=0.1 (1.4 Å) should be folded")
	}
	if m.Folded([]float64{0.5, 0, 0}) {
		t.Error("r=0.5 (7 Å) should not be folded")
	}
	if math.Abs(m.FoldedRadius()-3.5/14) > 1e-12 {
		t.Errorf("FoldedRadius = %v", m.FoldedRadius())
	}
}

func TestUnfoldedStarts(t *testing.T) {
	m := defaultModel(t)
	seen := make([][]float64, 9)
	for i := 0; i < 9; i++ {
		x := m.UnfoldedStart(i, 42)
		if len(x) != 3 {
			t.Fatalf("start %d has dimension %d", i, len(x))
		}
		r := math.Sqrt(x[0]*x[0] + x[1]*x[1] + x[2]*x[2])
		if math.Abs(r-1.05) > 1e-9 {
			t.Errorf("start %d radius = %v, want 1.05", i, r)
		}
		if m.Folded(x) {
			t.Errorf("start %d is folded", i)
		}
		seen[i] = x
	}
	// Distinct starts.
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			d := 0.0
			for k := range seen[i] {
				d += (seen[i][k] - seen[j][k]) * (seen[i][k] - seen[j][k])
			}
			if math.Sqrt(d) < 0.05 {
				t.Errorf("starts %d and %d nearly coincide", i, j)
			}
		}
	}
	// Deterministic for a fixed seed.
	again := m.UnfoldedStart(3, 42)
	for k := range again {
		if again[k] != seen[3][k] {
			t.Error("UnfoldedStart not deterministic")
		}
	}
}

func TestSimulateBasics(t *testing.T) {
	m := defaultModel(t)
	x0 := m.UnfoldedStart(0, 1)
	tr, err := m.Simulate(x0, 50, 0.05, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's protocol: 50 ns with 50 ps frames → 1000 frames + start.
	if len(tr.Frames) != 1001 {
		t.Fatalf("frames = %d, want 1001", len(tr.Frames))
	}
	if tr.Times[0] != 0 || math.Abs(tr.Duration()-50) > 1e-9 {
		t.Errorf("times: start %v duration %v", tr.Times[0], tr.Duration())
	}
	// x0 must be untouched and equal to frame 0.
	for k := range x0 {
		if x0[k] != tr.Frames[0][k] {
			t.Error("frame 0 is not the start conformation")
		}
	}
	if tr.Last() == nil {
		t.Error("Last returned nil for a non-empty trajectory")
	}
}

func TestSimulateErrors(t *testing.T) {
	m := defaultModel(t)
	if _, err := m.Simulate([]float64{1, 2}, 10, 1, rng.New(1)); err == nil {
		t.Error("wrong dimension should fail")
	}
	if _, err := m.Simulate(m.UnfoldedStart(0, 1), 0, 1, rng.New(1)); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := m.Simulate(m.UnfoldedStart(0, 1), 10, 0, rng.New(1)); err == nil {
		t.Error("zero frame interval should fail")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := defaultModel(t)
	x0 := m.UnfoldedStart(0, 1)
	a, _ := m.Simulate(x0, 10, 0.5, rng.New(5))
	b, _ := m.Simulate(x0, 10, 0.5, rng.New(5))
	for i := range a.Frames {
		for k := range a.Frames[i] {
			if a.Frames[i][k] != b.Frames[i][k] {
				t.Fatal("Simulate not deterministic")
			}
		}
	}
}

func TestTrajEmpty(t *testing.T) {
	var tr Traj
	if tr.Last() != nil {
		t.Error("Last of empty trajectory should be nil")
	}
	if tr.Duration() != 0 {
		t.Error("Duration of empty trajectory should be 0")
	}
}

func TestEquilibriumFoldedFractionCalibration(t *testing.T) {
	m := defaultModel(t)
	eq := m.EquilibriumFoldedFraction()
	// Calibration target: roughly two thirds folded at equilibrium
	// (the paper reports 66% folded by 2 µs).
	if eq < 0.55 || eq < 0 || eq > 0.85 {
		t.Errorf("equilibrium folded fraction = %v, calibration target ~0.66", eq)
	}
	// More tilt, more folded.
	p := DefaultParams()
	p.Tilt += 2
	m2, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if m2.EquilibriumFoldedFraction() <= eq {
		t.Error("increasing tilt must increase folded population")
	}
}

func TestFoldingHappensOnSimulationTimescale(t *testing.T) {
	// A short ensemble must show some folding by 500 ns but not instant
	// folding — the separation of timescales the MSM pipeline needs.
	m := defaultModel(t)
	r := rng.New(11)
	folded200, folded500 := 0, 0
	const nTraj = 40
	for k := 0; k < nTraj; k++ {
		tr, err := m.Simulate(m.UnfoldedStart(k%9, 3), 500, 25, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range tr.Frames {
			if m.Folded(f) {
				if tr.Times[i] <= 200 {
					folded200++
				}
				folded500++
				break
			}
		}
	}
	if folded500 == 0 {
		t.Error("no trajectory folded within 500 ns; kinetics far too slow")
	}
	if folded200 > nTraj*3/4 {
		t.Errorf("%d/%d trajectories folded within 200 ns; kinetics far too fast", folded200, nTraj)
	}
}

func TestPropertyPotentialRotationInvariantWithoutWells(t *testing.T) {
	p := DefaultParams()
	p.Wells = 0
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y, z, angle float64) bool {
		c := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.3
			}
			return math.Mod(v, 2)
		}
		x, y, z, angle = c(x), c(y), c(z), c(angle)
		u1 := m.Potential([]float64{x, y, z})
		// Rotate about z.
		xr := x*math.Cos(angle) - y*math.Sin(angle)
		yr := x*math.Sin(angle) + y*math.Cos(angle)
		u2 := m.Potential([]float64{xr, yr, z})
		return math.Abs(u1-u2) < 1e-9*(1+math.Abs(u1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStep(b *testing.B) {
	m, err := New(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	x := m.UnfoldedStart(0, 1)
	grad := make([]float64, len(x))
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(x, grad, r)
	}
}

func BenchmarkSimulate50ns(b *testing.B) {
	m, err := New(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Simulate(m.UnfoldedStart(i%9, 1), 50, 1.5, r.Split()); err != nil {
			b.Fatal(err)
		}
	}
}
