package wire

// Cross-version compatibility tests for the protocol v2 (multi-tenant)
// additions. Two guarantees are under test:
//
//  1. Payload compatibility: frames encoded by a v1 node — before Tenant,
//     Priority, Deadline and ErrCode existed — must decode into the current
//     structs with the new fields at their zero values, never an error.
//     The fixtures below are captured byte-for-byte from the v1 encoder.
//
//  2. Version skew: a whole v1 envelope must be refused by ReadEnvelope with
//     ErrProtoVersion (a typed, matchable error), not a mis-decode.

import (
	"bytes"
	"errors"
	"testing"
)

// Captured v1 fixtures. Do not regenerate from current structs — the point
// is that these bytes were produced by the old field layout.
var (
	// gob(ProjectSubmit{Name:"villin", Controller:"adaptive-md", Params:"k=v"})
	// encoded when ProjectSubmit had only those three fields.
	submitV1Fixture = []byte("=\x7f\x03\x01\x01\rProjectSubmit\x01\xff\x80\x00\x01\x03\x01\x04Name\x01\f\x00\x01\nController\x01\f\x00\x01\x06Params\x01\n\x00\x00\x00\x1d\xff\x80\x01\x06villin\x01\vadaptive-md\x01\x03k=v\x00")

	// gob(CommandSpec{...}) from before the Tenant field.
	specV1Fixture = []byte("\xff\x82\xff\x81\x03\x01\x01\vCommandSpec\x01\xff\x82\x00\x01\t\x01\x02ID\x01\f\x00\x01\aProject\x01\f\x00\x01\x06Origin\x01\f\x00\x01\x04Type\x01\f\x00\x01\bMinCores\x01\x04\x00\x01\bMaxCores\x01\x04\x00\x01\bPriority\x01\x04\x00\x01\aPayload\x01\n\x00\x01\nCheckpoint\x01\n\x00\x00\x009\xff\x82\x01\x05cmd-1\x01\x06villin\x01\x05srv-a\x01\flandscape-md\x01\x02\x01\x10\x01\x06\x01\nsteps=1000\x00")

	// A complete framed v1 envelope (4-byte length prefix + gob), Version: 1,
	// Type: "submit", carrying submitV1Fixture as payload. Captured from the
	// v1 Envelope layout, which had no ErrCode field.
	frameV1Fixture = []byte("\x00\x00\x00\xf4q\xff\x83\x03\x01\x01\bEnvelope\x01\xff\x84\x00\x01\t\x01\aVersion\x01\x04\x00\x01\x04Type\x01\f\x00\x01\x04From\x01\f\x00\x01\x02To\x01\f\x00\x01\tRequestID\x01\x06\x00\x01\aIsReply\x01\x02\x00\x01\x03TTL\x01\x04\x00\x01\aPayload\x01\n\x00\x01\x03Err\x01\f\x00\x00\x00\xff\x80\xff\x84\x01\x02\x01\x06submit\x01\bclient-1\x01\x05srv-a\x01\a\x02\x10\x01\\=\x7f\x03\x01\x01\rProjectSubmit\x01\xff\x80\x00\x01\x03\x01\x04Name\x01\f\x00\x01\nController\x01\f\x00\x01\x06Params\x01\n\x00\x00\x00\x1d\xff\x80\x01\x06villin\x01\vadaptive-md\x01\x03k=v\x00\x00")
)

// Captured ProtocolVersion=2 fixtures from before the gang-scheduling
// fields (CommandSpec.GangID/GangSize) and ProjectStatus.Detail existed.
// As with the v1 fixtures: do not regenerate from current structs.
var (
	// gob(CommandSpec{ID:"cmd-7", Project:"villin", Tenant:"acme",
	// Origin:"srv-a", Type:"mdrun", MinCores:2, MaxCores:4, Priority:5,
	// Payload:"steps=500", Checkpoint:"ck"}) encoded when CommandSpec ended
	// at Checkpoint.
	specV2PreGangFixture = []byte("\xff\x8c\x7f\x03\x01\x01\vCommandSpec\x01\xff\x80\x00\x01\n\x01\x02ID\x01\f\x00\x01\aProject\x01\f\x00\x01\x06Tenant\x01\f\x00\x01\x06Origin\x01\f\x00\x01\x04Type\x01\f\x00\x01\bMinCores\x01\x04\x00\x01\bMaxCores\x01\x04\x00\x01\bPriority\x01\x04\x00\x01\aPayload\x01\n\x00\x01\nCheckpoint\x01\n\x00\x00\x00;\xff\x80\x01\x05cmd-7\x01\x06villin\x01\x04acme\x01\x05srv-a\x01\x05mdrun\x01\x04\x01\b\x01\n\x01\tsteps=500\x01\x02ck\x00")

	// gob(ProjectStatus{...}) encoded when ProjectStatus ended at Result.
	statusV2PreGangFixture = []byte("\xff\x9a\xff\x81\x03\x01\x01\rProjectStatus\x01\xff\x82\x00\x01\v\x01\x04Name\x01\f\x00\x01\nController\x01\f\x00\x01\x06Tenant\x01\f\x00\x01\x05State\x01\f\x00\x01\x06Queued\x01\x04\x00\x01\aRunning\x01\x04\x00\x01\bFinished\x01\x04\x00\x01\x06Failed\x01\x04\x00\x01\nGeneration\x01\x04\x00\x01\x04Note\x01\f\x00\x01\x06Result\x01\n\x00\x00\x000\xff\x82\x01\x06villin\x01\x03msm\x01\x04acme\x01\arunning\x01\x04\x01\x06\x01\b\x01\x02\x01\f\x01\x05gen 6\x00")
)

// TestPreGangCommandSpecDecodesWithZeroGangFields is the gang-scheduling
// compatibility guarantee: a pre-gang v2 frame decodes with GangID == "" and
// GangSize == 0 — exactly the "not gang-scheduled" state — and still
// validates, so a scheduler never mistakes old traffic for a gang (and a
// worker fed by an old server sees no phantom gang to co-schedule).
func TestPreGangCommandSpecDecodesWithZeroGangFields(t *testing.T) {
	var got CommandSpec
	if err := Unmarshal(specV2PreGangFixture, &got); err != nil {
		t.Fatalf("pre-gang CommandSpec fixture failed to decode: %v", err)
	}
	if got.ID != "cmd-7" || got.Project != "villin" || got.Tenant != "acme" ||
		got.Origin != "srv-a" || got.Type != "mdrun" || got.MinCores != 2 ||
		got.MaxCores != 4 || got.Priority != 5 || string(got.Payload) != "steps=500" ||
		string(got.Checkpoint) != "ck" {
		t.Errorf("pre-gang fields corrupted: %+v", got)
	}
	if got.GangID != "" || got.GangSize != 0 {
		t.Errorf("gang fields must decode as zero values from pre-gang frames, got GangID=%q GangSize=%d",
			got.GangID, got.GangSize)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded pre-gang spec should still validate: %v", err)
	}
}

func TestPreGangProjectStatusDecodesWithNilDetail(t *testing.T) {
	var got ProjectStatus
	if err := Unmarshal(statusV2PreGangFixture, &got); err != nil {
		t.Fatalf("pre-gang ProjectStatus fixture failed to decode: %v", err)
	}
	if got.Name != "villin" || got.Controller != "msm" || got.Tenant != "acme" ||
		got.State != "running" || got.Queued != 2 || got.Running != 3 ||
		got.Finished != 4 || got.Failed != 1 || got.Generation != 6 || got.Note != "gen 6" {
		t.Errorf("pre-gang fields corrupted: %+v", got)
	}
	if got.Detail != nil {
		t.Errorf("Detail must decode as nil from pre-gang frames, got %q", got.Detail)
	}
}

// TestGangSpecDecodesByPreGangShape covers the reverse direction: a gang
// command decodes under the pre-gang field set (gob drops unknown fields) —
// which is precisely why an old worker cannot tell a gang member from a solo
// command, and why the current worker re-checks gang completeness of every
// workload instead of trusting the dispatcher.
func TestGangSpecDecodesByPreGangShape(t *testing.T) {
	type commandSpecPreGang struct {
		ID         string
		Project    string
		Tenant     string
		Origin     string
		Type       string
		MinCores   int
		MaxCores   int
		Priority   int
		Payload    []byte
		Checkpoint []byte
	}
	raw, err := Marshal(&CommandSpec{
		ID: "rx-e00001-r03", Project: "remd", Type: "repex-md",
		MinCores: 1, MaxCores: 1, GangID: "remd/e00001", GangSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got commandSpecPreGang
	if err := Unmarshal(raw, &got); err != nil {
		t.Fatalf("gang spec failed to decode under pre-gang shape: %v", err)
	}
	if got.ID != "rx-e00001-r03" || got.Project != "remd" || got.Type != "repex-md" {
		t.Errorf("shared fields corrupted: %+v", got)
	}
}

func TestGangSpecValidate(t *testing.T) {
	base := CommandSpec{ID: "c1", Project: "p", Type: "mdrun", MinCores: 1, MaxCores: 1}
	ok := base
	ok.GangID, ok.GangSize = "p/e0", 2
	if err := ok.Validate(); err != nil {
		t.Errorf("valid gang spec rejected: %v", err)
	}
	orphanSize := base
	orphanSize.GangSize = 3
	if err := orphanSize.Validate(); err == nil {
		t.Error("GangSize without GangID must be rejected")
	}
	tiny := base
	tiny.GangID, tiny.GangSize = "p/e0", 1
	if err := tiny.Validate(); err == nil {
		t.Error("gang of one must be rejected")
	}
}

func TestOldProjectSubmitDecodesWithZeroTenantFields(t *testing.T) {
	var got ProjectSubmit
	if err := Unmarshal(submitV1Fixture, &got); err != nil {
		t.Fatalf("v1 ProjectSubmit fixture failed to decode: %v", err)
	}
	if got.Name != "villin" || got.Controller != "adaptive-md" || string(got.Params) != "k=v" {
		t.Errorf("v1 fields corrupted: %+v", got)
	}
	if got.Tenant != "" || got.Priority != 0 || got.DeadlineUnixNano != 0 {
		t.Errorf("new fields must decode as zero values from v1 frames, got Tenant=%q Priority=%d Deadline=%d",
			got.Tenant, got.Priority, got.DeadlineUnixNano)
	}
}

func TestOldCommandSpecDecodesWithZeroTenant(t *testing.T) {
	var got CommandSpec
	if err := Unmarshal(specV1Fixture, &got); err != nil {
		t.Fatalf("v1 CommandSpec fixture failed to decode: %v", err)
	}
	if got.ID != "cmd-1" || got.Project != "villin" || got.Origin != "srv-a" ||
		got.Type != "landscape-md" || got.MinCores != 1 || got.MaxCores != 8 ||
		got.Priority != 3 || string(got.Payload) != "steps=1000" {
		t.Errorf("v1 fields corrupted: %+v", got)
	}
	if got.Tenant != "" {
		t.Errorf("Tenant must decode as \"\" from v1 frames, got %q", got.Tenant)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded v1 spec should still validate: %v", err)
	}
}

func TestV1FrameRefusedWithErrProtoVersion(t *testing.T) {
	_, err := ReadEnvelope(bytes.NewReader(frameV1Fixture))
	if err == nil {
		t.Fatal("v1 frame accepted by a v2 node")
	}
	if !errors.Is(err, ErrProtoVersion) {
		t.Fatalf("version-skewed frame error = %v, want errors.Is(_, ErrProtoVersion)", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v is not a *VersionError", err)
	}
	if ve.Got != 1 || ve.Want != ProtocolVersion {
		t.Errorf("VersionError = %+v, want Got=1 Want=%d", ve, ProtocolVersion)
	}
}

// TestOldEnvelopeShapeDecodes proves the envelope *layout* itself is
// gob-compatible: a struct without ErrCode decodes into the current Envelope
// with ErrCode == "". (The version check is a policy decision layered on top;
// here we call Unmarshal directly to isolate the layout question.)
func TestOldEnvelopeShapeDecodes(t *testing.T) {
	type envelopeV1 struct {
		Version   int
		Type      MsgType
		From, To  string
		RequestID uint64
		IsReply   bool
		TTL       int
		Payload   []byte
		Err       string
	}
	raw, err := Marshal(&envelopeV1{Version: 1, Type: MsgStatus, From: "old-node", Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	var got Envelope
	if err := Unmarshal(raw, &got); err != nil {
		t.Fatalf("old envelope shape failed to decode: %v", err)
	}
	if got.Version != 1 || got.From != "old-node" || got.Err != "boom" {
		t.Errorf("v1 fields corrupted: %+v", got)
	}
	if got.ErrCode != "" {
		t.Errorf("ErrCode must decode as empty from old frames, got %q", got.ErrCode)
	}
}

// TestNewFrameDecodesByOldShape covers the reverse direction: a v2 payload
// with tenant fields decodes under the v1 field set (gob drops unknown
// fields), so an old node mid-rolling-upgrade mis-handles nothing even if a
// v2 payload slips past the handshake.
func TestNewFrameDecodesByOldShape(t *testing.T) {
	type projectSubmitV1 struct {
		Name       string
		Controller string
		Params     []byte
	}
	raw, err := Marshal(&ProjectSubmit{
		Name: "fip35", Controller: "sweep", Params: []byte("x"),
		Tenant: "acme", Priority: 9, DeadlineUnixNano: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got projectSubmitV1
	if err := Unmarshal(raw, &got); err != nil {
		t.Fatalf("v2 frame failed to decode under v1 shape: %v", err)
	}
	if got.Name != "fip35" || got.Controller != "sweep" || string(got.Params) != "x" {
		t.Errorf("shared fields corrupted: %+v", got)
	}
}

func TestErrCodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		err  error
		code string
	}{
		{ErrQuotaExceeded, ErrCodeQuota},
		{ErrAdmissionShed, ErrCodeShed},
		{ErrProtoVersion, ErrCodeProtoVersion},
	} {
		if got := CodeOf(tc.err); got != tc.code {
			t.Errorf("CodeOf(%v) = %q, want %q", tc.err, got, tc.code)
		}
		back := SentinelFor(tc.code)
		if !errors.Is(back, tc.err) {
			t.Errorf("SentinelFor(%q) = %v, does not match %v", tc.code, back, tc.err)
		}
	}
	if CodeOf(nil) != "" || CodeOf(errors.New("other")) != "" {
		t.Error("uncoded errors must map to empty code")
	}
	if SentinelFor("") != nil || SentinelFor("bogus") != nil {
		t.Error("unknown codes must map to nil")
	}
	// Wrapped errors still map: the server wraps sentinels with context.
	wrapped := errorfWrap(ErrQuotaExceeded)
	if CodeOf(wrapped) != ErrCodeQuota {
		t.Errorf("CodeOf(wrapped quota) = %q", CodeOf(wrapped))
	}
}

func errorfWrap(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "tenant acme: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

// TestFrameChunkRoundTrip pins the streamed-chunk payload: chunks are
// journaled raw into the WAL and replayed byte-for-byte, so the encoding
// must round-trip every field exactly.
func TestFrameChunkRoundTrip(t *testing.T) {
	chunk := FrameChunk{
		Project: "villin", CommandID: "cmd-9", WorkerID: "w3",
		Seq: 2, FirstFrame: 11,
		Times:  []float64{16.5, 18},
		Frames: [][]float64{{1, 2, 3}, {4, 5, 6}},
		RMSD:   []float64{0.9, 0.8},
		Final:  true,
	}
	raw, err := Marshal(&chunk)
	if err != nil {
		t.Fatal(err)
	}
	var got FrameChunk
	if err := Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Project != chunk.Project || got.CommandID != chunk.CommandID ||
		got.WorkerID != chunk.WorkerID || got.Seq != 2 || got.FirstFrame != 11 ||
		!got.Final || len(got.Times) != 2 || len(got.Frames) != 2 || len(got.RMSD) != 2 {
		t.Errorf("FrameChunk roundtrip = %+v", got)
	}
	for i := range got.Frames {
		for d := range got.Frames[i] {
			if got.Frames[i][d] != chunk.Frames[i][d] {
				t.Fatalf("frame %d corrupted: %v", i, got.Frames[i])
			}
		}
	}
}

func TestTenantPayloadRoundTrip(t *testing.T) {
	status := TenantStatus{
		ID: "acme", Weight: 4, MaxQueued: 100, MaxCores: 64, MaxStorageBytes: 1 << 30,
		Queued: 3, InflightCores: 12, CoreSeconds: 98.5, StorageBytes: 4096,
		OldestWaitSeconds: 1.25,
	}
	raw, err := Marshal(&TenantList{Tenants: []TenantStatus{status}})
	if err != nil {
		t.Fatal(err)
	}
	var got TenantList
	if err := Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Tenants) != 1 || got.Tenants[0] != status {
		t.Errorf("TenantList roundtrip = %+v", got)
	}

	upd := TenantQuotaUpdate{Tenant: "acme", Weight: 2, MaxQueued: -1, MaxCores: 32, MaxStorageBytes: -1}
	raw, err = Marshal(&upd)
	if err != nil {
		t.Fatal(err)
	}
	var gotUpd TenantQuotaUpdate
	if err := Unmarshal(raw, &gotUpd); err != nil {
		t.Fatal(err)
	}
	if gotUpd != upd {
		t.Errorf("TenantQuotaUpdate roundtrip = %+v, want %+v", gotUpd, upd)
	}
}
